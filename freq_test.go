package streamfreq

import (
	"testing"

	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestRegistryConstructsEveryAlgorithm(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 10 {
		t.Fatalf("expected 10 registered algorithms, got %d: %v", len(algos), algos)
	}
	for _, name := range algos {
		s, err := New(name, 0.01, 42)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
		s.Update(7, 3)
		s.Update(9, 1)
		if got := s.Estimate(7); got < 3 && CounterBased(name) {
			t.Errorf("%s: Estimate(7) = %d after 3 updates", name, got)
		}
		if s.N() != 4 {
			t.Errorf("%s: N = %d, want 4", name, s.N())
		}
		if s.Bytes() <= 0 {
			t.Errorf("%s: non-positive Bytes", name)
		}
	}
}

func TestRegistryRejectsBadInput(t *testing.T) {
	if _, err := New("NOPE", 0.01, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, phi := range []float64{0, 1, -0.5, 2} {
		if _, err := New("F", phi, 1); err == nil {
			t.Errorf("phi=%v accepted", phi)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("NOPE", 0.01, 1)
}

func TestCounterBasedClassification(t *testing.T) {
	for _, n := range []string{"F", "LC", "LCD", "SSL", "SSH"} {
		if !CounterBased(n) {
			t.Errorf("%s should be counter-based", n)
		}
	}
	for _, n := range []string{"CM", "CS", "CMH", "CSH", "CGT"} {
		if CounterBased(n) {
			t.Errorf("%s should be sketch-based", n)
		}
	}
}

// TestEveryAlgorithmFindsTheHead is the end-to-end smoke test of the
// whole public API: every registered algorithm, fed the same skewed
// stream at its design threshold, must report the top item.
func TestEveryAlgorithmFindsTheHead(t *testing.T) {
	const n = 50000
	const phi = 0.01
	g, err := zipf.NewGenerator(5000, 1.3, 99, true)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.New()
	sums := make([]Summary, 0, len(Algorithms()))
	for _, name := range Algorithms() {
		sums = append(sums, MustNew(name, phi, 7))
	}
	for i := 0; i < n; i++ {
		it := g.Next()
		truth.Update(it, 1)
		for _, s := range sums {
			s.Update(it, 1)
		}
	}
	top := g.ItemOfRank(1)
	threshold := int64(phi * n)
	if truth.Estimate(top) <= threshold {
		t.Fatalf("test setup broken: top item count %d below threshold", truth.Estimate(top))
	}
	for _, s := range sums {
		found := false
		for _, ic := range s.Query(threshold) {
			if ic.Item == top {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s failed to report the rank-1 item", s.Name())
		}
	}
}

func TestDecodeDispatch(t *testing.T) {
	// One representative of each wire format round-trips through the
	// top-level Decode.
	summaries := []Summary{
		NewFrequent(8),
		NewSpaceSaving(8),
		NewLossyCounting(0.05),
		NewCountMin(2, 64, 3),
		NewCountSketch(3, 64, 3),
		NewCGT(2, 32, 32, 3),
	}
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	summaries = append(summaries, h)
	for _, s := range summaries {
		s.Update(5, 9)
		m, ok := s.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			t.Fatalf("%s: no MarshalBinary", s.Name())
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name(), err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Errorf("decoded %s as %s", s.Name(), got.Name())
		}
		if got.Estimate(5) != s.Estimate(5) {
			t.Errorf("%s: estimate lost in round trip", s.Name())
		}
	}
	if _, err := Decode([]byte("????xxxx")); err == nil {
		t.Error("unknown magic accepted")
	}
	if _, err := Decode([]byte("ab")); err == nil {
		t.Error("short blob accepted")
	}
}

func TestFacadeConstructors(t *testing.T) {
	// Compile-time-ish coverage that each façade constructor produces a
	// working summary.
	if s := NewLossyCountingD(0.1); s.Name() != "LCD" {
		t.Errorf("NewLossyCountingD built %s", s.Name())
	}
	if s := NewSpaceSavingList(4); s.Name() != "SSL" {
		t.Errorf("NewSpaceSavingList built %s", s.Name())
	}
	if s := NewCountMinConservative(2, 16, 1); s.Name() != "CMC" {
		t.Errorf("NewCountMinConservative built %s", s.Name())
	}
	if s := NewStickySampling(0.01, 0.005, 0.01, 1); s.Name() != "SS-MM" {
		t.Errorf("NewStickySampling built %s", s.Name())
	}
	tr := NewTracked(NewCountSketch(3, 64, 1), 10)
	tr.Update(4, 2)
	if tr.Estimate(4) != 2 {
		t.Error("tracked sketch estimate wrong")
	}
	c := NewConcurrent(NewFrequent(4))
	c.Update(1, 1)
	if c.N() != 1 {
		t.Error("concurrent wrapper broken")
	}
	sh := NewSharded(2, func() Summary { return NewSpaceSaving(8) })
	sh.Update(3, 2)
	if sh.Estimate(3) != 2 {
		t.Error("sharded wrapper broken")
	}
	csh, err := NewCountSketchHierarchy(HierarchyConfig{Depth: 2, Width: 32, Bits: 8, Seed: 1})
	if err != nil || csh.Name() != "CSH" {
		t.Error("CSH constructor broken")
	}
}
