package streamfreq

// Snapshot fidelity, registry-wide: for every algorithm, a snapshot
// taken after a prefix of the stream must (a) answer Query(φn) and
// Estimate bit-identically to a fresh summary fed the same prefix, and
// (b) stay frozen while the parent ingests the rest of the stream —
// updates flow in neither direction between parent and snapshot. Both
// summaries are fed by the scalar Update loop so the comparison is over
// identical ingest schedules (batching equivalence is batch_test.go's
// property, not this one's).

import (
	"testing"
	"time"

	"streamfreq/internal/counters"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

// snapshotStream returns the test workload split into the snapshotted
// prefix and the post-snapshot suffix.
func snapshotStream(t testing.TB) (prefix, suffix []Item) {
	t.Helper()
	g, err := zipf.NewGenerator(1<<14, 1.1, 0xBEEF, true)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream(30_000)
	return s[:20_000], s[20_000:]
}

// feedScalar replays items through the scalar Update path.
func feedScalar(s Summary, items []Item) {
	for _, it := range items {
		s.Update(it, 1)
	}
}

// requireIdentical asserts two summaries are observationally equal at
// the frequent-items operating point: same N, byte-identical Query
// report at threshold, and equal point estimates on the report plus the
// probe items.
func requireIdentical(t *testing.T, label string, got, want Summary, threshold int64, probes []Item) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	gq, wq := got.Query(threshold), want.Query(threshold)
	if len(gq) != len(wq) {
		t.Fatalf("%s: Query(%d): %d items, want %d\ngot:  %v\nwant: %v", label, threshold, len(gq), len(wq), gq, wq)
	}
	for i := range wq {
		if gq[i] != wq[i] {
			t.Fatalf("%s: Query(%d)[%d] = %+v, want %+v", label, threshold, i, gq[i], wq[i])
		}
	}
	for _, ic := range wq {
		if ge, we := got.Estimate(ic.Item), want.Estimate(ic.Item); ge != we {
			t.Fatalf("%s: Estimate(%d) = %d, want %d", label, ic.Item, ge, we)
		}
	}
	for _, it := range probes {
		if ge, we := got.Estimate(it), want.Estimate(it); ge != we {
			t.Fatalf("%s: Estimate(probe %d) = %d, want %d", label, it, ge, we)
		}
	}
}

// snapshotProbes picks the true top items of the prefix plus a few
// untracked ones, so fidelity is checked on hits and misses alike.
func snapshotProbes(prefix []Item) []Item {
	truth := exact.New()
	for _, it := range prefix {
		truth.Update(it, 1)
	}
	probes := make([]Item, 0, 36)
	for _, ic := range truth.TopK(32) {
		probes = append(probes, ic.Item)
	}
	// Items almost surely absent from the stream (the generator scrambles
	// ranks through Mix64, so tiny raw values are out of its range).
	return append(probes, 1, 2, 3, 0xdeadbeef)
}

// checkSnapshotFidelity runs the full property for one summary factory.
func checkSnapshotFidelity(t *testing.T, label string, mk func() Summary) {
	t.Helper()
	prefix, suffix := snapshotStream(t)
	probes := snapshotProbes(prefix)
	const phi = 0.005
	threshold := int64(phi * float64(len(prefix)))

	parent := mk()
	fresh := mk()
	feedScalar(parent, prefix)
	feedScalar(fresh, prefix)

	sn, ok := parent.(Snapshotter)
	if !ok {
		t.Fatalf("%s: %T does not implement Snapshotter", label, parent)
	}
	snap := sn.Snapshot()

	// (a) The snapshot is bit-identical to a fresh summary fed the prefix.
	requireIdentical(t, label+"/post-clone", snap, fresh, threshold, probes)

	// (b) Parent updates never leak into the snapshot.
	feedScalar(parent, suffix)
	requireIdentical(t, label+"/parent-advanced", snap, fresh, threshold, probes)

	// (c) Snapshot updates never leak into the parent: a second snapshot
	// absorbs extra arrivals while a reference copy of the parent pins the
	// parent's state.
	ref := parent.(Snapshotter).Snapshot()
	snap2 := parent.(Snapshotter).Snapshot()
	feedScalar(snap2, prefix[:1000])
	requireIdentical(t, label+"/snapshot-advanced", parent, ref, threshold, probes)
}

// checkSnapshotFreeze is the weaker property for summaries whose replay
// is not deterministic across instances (StickySampling's rate-doubling
// pass draws PRNG coins in map-iteration order, so two identically
// seeded copies fed the same stream can differ): the snapshot must match
// the parent's state at the moment of the clone and stay frozen while
// the parent (or the snapshot itself) ingests more.
func checkSnapshotFreeze(t *testing.T, label string, mk func() Summary) {
	t.Helper()
	prefix, suffix := snapshotStream(t)
	probes := snapshotProbes(prefix)
	threshold := int64(0.005 * float64(len(prefix)))

	parent := mk()
	feedScalar(parent, prefix)
	atClone := parent.(Snapshotter).Snapshot()
	snap := parent.(Snapshotter).Snapshot()

	requireIdentical(t, label+"/post-clone", snap, atClone, threshold, probes)
	feedScalar(parent, suffix)
	requireIdentical(t, label+"/parent-advanced", snap, atClone, threshold, probes)

	ref := parent.(Snapshotter).Snapshot()
	feedScalar(snap, prefix[:1000])
	requireIdentical(t, label+"/snapshot-advanced", parent, ref, threshold, probes)
}

// TestSnapshotFidelityRegistry is the acceptance property over the full
// registry.
func TestSnapshotFidelityRegistry(t *testing.T) {
	const seed = 42
	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			checkSnapshotFidelity(t, algo, func() Summary {
				return MustNew(algo, 0.0025, seed)
			})
		})
	}
}

// TestSnapshotFidelityExtras extends the property to the summaries
// outside the registry roster: the ablation/extension algorithms, the
// exact baseline, and the Concurrent wrapper (whose Snapshot must equal
// its inner clone).
func TestSnapshotFidelityExtras(t *testing.T) {
	cases := []struct {
		name       string
		freezeOnly bool // replay not deterministic across instances
		mk         func() Summary
	}{
		{"CMC-tracked", false, func() Summary { return NewTracked(NewCountMinConservative(4, 512, 7), 256) }},
		{"CS-tracked", false, func() Summary { return NewTracked(NewCountSketch(5, 512, 7), 256) }},
		{"FSS", false, func() Summary { return NewFilteredSpaceSaving(400, 0, 7) }},
		{"Sticky", true, func() Summary { return NewStickySampling(0.005, 0.0025, 0.01, 7) }},
		{"F-naive", false, func() Summary { return counters.NewFrequentNaive(400) }},
		{"CGT-16bit", false, func() Summary { return NewCGT(4, 512, 16, 7) }},
		{"Exact", false, func() Summary { return exact.New() }},
		{"Concurrent(SSH)", false, func() Summary { return NewConcurrent(NewSpaceSaving(400)) }},
		// The sliding-window summary: the clone must freeze the whole
		// ring — block contents, head position, and fill — so the
		// fidelity and no-leak legs also pin that rotations on one side
		// never disturb the other.
		{"Windowed", false, func() Summary {
			w, err := NewWindowed(8000, 8, 400)
			if err != nil {
				panic(err)
			}
			return w
		}},
		// The GK quantile summary: deterministic insert/compress schedule,
		// so the full fidelity check (clone tracks replay bit for bit)
		// applies.
		{"GK", false, func() Summary { return NewQuantile(0.01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.freezeOnly {
				checkSnapshotFreeze(t, tc.name, tc.mk)
				return
			}
			checkSnapshotFidelity(t, tc.name, tc.mk)
		})
	}
}

// TestShardedSnapshotMergesShards pins Sharded.Snapshot's contract: the
// merged clone is one independent summary of the whole stream. With the
// exact counter inside, the merge must reproduce a sequential run bit
// for bit — and keep reproducing it after the parent ingests more.
func TestShardedSnapshotMergesShards(t *testing.T) {
	prefix, suffix := snapshotStream(t)
	probes := snapshotProbes(prefix)
	threshold := int64(0.005 * float64(len(prefix)))

	sh := NewSharded(4, func() Summary { return exact.New() })
	UpdateBatches(sh, prefix, 0)
	snap := sh.Snapshot()

	want := exact.New()
	feedScalar(want, prefix)
	requireIdentical(t, "sharded-merged", snap, want, threshold, probes)

	UpdateBatches(sh, suffix, 0)
	requireIdentical(t, "sharded-merged/parent-advanced", snap, want, threshold, probes)
}

// TestConcurrentServingReads pins the snapshot-serving read path's
// bounded-staleness contract on a single goroutine, where the sequence
// of events is deterministic: a read after new writes within the
// staleness window may serve the old epoch; RefreshSnapshot (and any
// read once the summary is dirty past the window) serves current state.
func TestConcurrentServingReads(t *testing.T) {
	c := NewConcurrent(exact.New()).ServeSnapshots(time.Hour)
	c.Update(1, 5)
	// The serving snapshot was taken at construction (empty, version 0);
	// the summary is dirty but well inside the 1h staleness bound, so the
	// read may not see the write yet.
	if got := c.Estimate(1); got != 0 && got != 5 {
		t.Fatalf("Estimate within staleness window = %d, want 0 (stale) or 5 (refreshed)", got)
	}
	if v := c.RefreshSnapshot(); v == nil {
		t.Fatal("RefreshSnapshot returned nil with serving enabled")
	}
	if got := c.Estimate(1); got != 5 {
		t.Fatalf("Estimate after refresh = %d, want 5", got)
	}
	if got := c.N(); got != 5 {
		t.Fatalf("N after refresh = %d, want 5", got)
	}
	st := c.SnapshotStats()
	if !st.Serving || st.AsOfN != 5 || st.Refreshes < 2 {
		t.Fatalf("SnapshotStats = %+v, want serving view of N=5 after ≥2 refreshes", st)
	}

	// ServingView pins one epoch: reads against the view stay mutually
	// consistent however much the parent ingests afterwards.
	view := c.ServingView()
	if view == nil {
		t.Fatal("ServingView returned nil with serving enabled")
	}
	c.Update(1, 100)
	if view.N() != 5 || view.Estimate(1) != 5 {
		t.Fatalf("pinned view moved: N=%d Estimate=%d, want 5/5", view.N(), view.Estimate(1))
	}

	// maxStale 0: any read that observes a mutation re-clones, so reads
	// are always fresh.
	c0 := NewConcurrent(exact.New()).ServeSnapshots(0)
	c0.Update(9, 3)
	if got := c0.Estimate(9); got != 3 {
		t.Fatalf("always-fresh Estimate = %d, want 3", got)
	}
	if NewConcurrent(exact.New()).ServingView() != nil {
		t.Fatal("ServingView must be nil without serving enabled")
	}
}
