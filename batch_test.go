package streamfreq

// Semantics-preservation of the batched ingestion pipeline: for every
// registered algorithm, replaying a stream through UpdateBatches (which
// routes through each summary's native BatchUpdater path when it has
// one) must agree with the scalar Update loop on everything observable
// at the frequent-items operating point — the stream length, the
// threshold-query report at φn, and the point estimates of the reported
// and true-heaviest items.
//
// Batch implementations pre-aggregate duplicates, so within a batch an
// item's arrivals are applied where it first appears. The comparison is
// bit-exact for every algorithm except Misra–Gries, whose decrement
// schedule is genuinely order-sensitive (see checkEquivalence), and is
// checked across batch lengths that do and do not divide the stream.

import (
	"fmt"
	"testing"

	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

// equivStreams are the workloads the equivalence property is checked on:
// a skewed stream (many duplicates per batch — the aggregation fast
// path), a flat one (mostly distinct items — the aggregation slow path),
// and a tiny-universe churn stream that keeps every counter summary at
// capacity with constant evictions.
func equivStreams(t testing.TB) map[string][]Item {
	t.Helper()
	mk := func(universe int, z float64, n int, seed uint64) []Item {
		g, err := zipf.NewGenerator(universe, z, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		return g.Stream(n)
	}
	return map[string][]Item{
		"skewed": mk(1<<16, 1.3, 40_000, 7),
		"flat":   mk(1<<16, 0.5, 40_000, 8),
		"churn":  mk(1<<10, 0.8, 40_000, 9),
	}
}

// querySlack returns the count tolerance for one algorithm's batched-
// vs-scalar comparison. It is 0 — bit-exact — for every algorithm except
// Misra–Gries ("F"): the linear sketches are exactly reorder-invariant,
// a Space-Saving weighted update is the unit rule with the arrivals
// adjacent, and the fallback algorithms run the identical scalar path.
// MG's eviction decrement is min(count, current minimum), so moving an
// item's arrivals relative to the evolving minimum (which aggregation
// does) can shift its decrement total by a few units; both runs still
// satisfy the deterministic deficit bound n/(k+1), which is the slack.
func querySlack(algo string, streamLen int, phi float64) int64 {
	if algo == "F" {
		return int64(phi/2*float64(streamLen)) + 1 // deficit bound n/(k+1) at k = ⌈2/φ⌉
	}
	return 0
}

// checkEquivalence asserts scalar and batched agree: N exactly, the
// φn-threshold report item-for-item (counts within slack, byte-for-byte
// when slack is 0), and point estimates on the reported items plus the
// true top-20 (heavy probes within the algorithm's error envelope —
// which of several tied minimum counters holds a churning sub-threshold
// item is not stable under any reordering, so exact equality of
// noise-floor tail estimates is deliberately not part of the contract).
//
// Summaries are provisioned at ε = φ/2 (the paper's equal-guarantee
// methodology, also how the registry sizes its sketches) and queried at
// φn, which keeps the query threshold strictly above the εn churn floor:
// querying a counter summary exactly at its floor reports whichever tail
// items happen to occupy floor-valued counters, a set no processing
// order stabilizes.
func checkEquivalence(t *testing.T, label string, scalar, batched Summary, stream []Item, phi float64, slack int64) {
	t.Helper()
	if got, want := batched.N(), scalar.N(); got != want {
		t.Fatalf("%s: N: batched %d, scalar %d", label, got, want)
	}
	threshold := int64(phi * float64(len(stream)))
	sq, bq := scalar.Query(threshold), batched.Query(threshold)
	if len(sq) != len(bq) {
		t.Fatalf("%s: Query(%d): batched reports %d items, scalar %d\nscalar:  %v\nbatched: %v",
			label, threshold, len(bq), len(sq), sq, bq)
	}
	scalarCounts := make(map[Item]int64, len(sq))
	for _, ic := range sq {
		scalarCounts[ic.Item] = ic.Count
	}
	for i, ic := range bq {
		want, reported := scalarCounts[ic.Item]
		if !reported {
			t.Fatalf("%s: Query(%d)[%d]: batched reports %+v, absent from scalar report", label, threshold, i, ic)
		}
		if d := ic.Count - want; d > slack || d < -slack {
			t.Fatalf("%s: Query(%d): item %d: batched count %d, scalar %d (slack %d)",
				label, threshold, ic.Item, ic.Count, want, slack)
		}
		if slack == 0 && sq[i] != ic {
			t.Fatalf("%s: Query(%d)[%d]: batched %+v, scalar %+v (order must match exactly)",
				label, threshold, i, ic, sq[i])
		}
	}
	for it := range scalarCounts {
		bs, ss := batched.Estimate(it), scalar.Estimate(it)
		if d := bs - ss; d > slack || d < -slack {
			t.Fatalf("%s: Estimate(%d) of reported item: batched %d, scalar %d (slack %d)",
				label, it, bs, ss, slack)
		}
	}
	truth := exact.New()
	for _, it := range stream {
		truth.Update(it, 1)
	}
	envelope := slack
	if envelope == 0 {
		envelope = int64(phi/2*float64(len(stream))) + 1 // the εn error bound at ε = φ/2
	}
	for _, ic := range truth.TopK(20) {
		bs, ss := batched.Estimate(ic.Item), scalar.Estimate(ic.Item)
		if d := bs - ss; d > envelope || d < -envelope {
			t.Fatalf("%s: Estimate(%d) of heavy item: batched %d vs scalar %d exceeds error envelope %d",
				label, ic.Item, bs, ss, envelope)
		}
	}
}

// TestBatchScalarEquivalence is the acceptance property over the full
// registry: batched ingest ≡ scalar ingest for every algorithm, across
// batch lengths including 1, primes, powers of two, and the default.
func TestBatchScalarEquivalence(t *testing.T) {
	const phi = 0.005
	const seed = 42
	streams := equivStreams(t)
	for _, algo := range Algorithms() {
		for streamName, stream := range streams {
			for _, batch := range []int{1, 7, 64, 1024, DefaultBatchSize} {
				label := fmt.Sprintf("%s/%s/batch=%d", algo, streamName, batch)
				scalar := MustNew(algo, phi/2, seed)
				for _, it := range stream {
					scalar.Update(it, 1)
				}
				batched := MustNew(algo, phi/2, seed)
				UpdateBatches(batched, stream, batch)
				checkEquivalence(t, label, scalar, batched, stream, phi,
					querySlack(algo, len(stream), phi))
			}
		}
	}
}

// TestBatchScalarEquivalenceWrappers runs the same property through the
// concurrency wrappers' batch paths (one lock per batch for Concurrent;
// scatter + per-shard flush for Sharded), whose reordering must also be
// invisible: every item maps to one shard and per-shard order is
// preserved.
func TestBatchScalarEquivalenceWrappers(t *testing.T) {
	const phi = 0.005
	const seed = 42
	streams := equivStreams(t)
	wrappers := []struct {
		name string
		wrap func(func() Summary) Summary
	}{
		{"Concurrent", func(f func() Summary) Summary { return NewConcurrent(f()) }},
		{"Sharded4", func(f func() Summary) Summary { return NewSharded(4, f) }},
	}
	for _, algo := range []string{"F", "SSH", "SSL", "CM"} {
		for _, w := range wrappers {
			for streamName, stream := range streams {
				label := fmt.Sprintf("%s(%s)/%s", w.name, algo, streamName)
				factory := func() Summary { return MustNew(algo, phi/2, seed) }
				scalar := w.wrap(factory)
				for _, it := range stream {
					scalar.Update(it, 1)
				}
				batched := w.wrap(factory)
				UpdateBatches(batched, stream, 512)
				checkEquivalence(t, label, scalar, batched, stream, phi,
					querySlack(algo, len(stream), phi))
			}
		}
	}
}

// TestUpdateAllFallback pins the fallback contract: a summary that does
// not implement BatchUpdater still ingests every item with unit counts.
func TestUpdateAllFallback(t *testing.T) {
	s := MustNew("LC", 0.01, 1) // Lossy Counting has no native batch path
	if _, ok := Summary(s).(BatchUpdater); ok {
		t.Fatal("test premise broken: LC now implements BatchUpdater; pick another fallback algorithm")
	}
	stream := equivStreams(t)["skewed"]
	UpdateAll(s, stream)
	if got, want := s.N(), int64(len(stream)); got != want {
		t.Fatalf("UpdateAll fallback: N = %d, want %d", got, want)
	}
}
