package streamfreq

// Fuzz wall for the coordinator's trust boundary: MergeEncoded consumes
// blobs that arrive over the network from machines the coordinator does
// not control. Arbitrary byte pairs must never panic — forged headers,
// truncations, and bit flips come back as errors — and two blobs that
// individually decode to different algorithms must always be refused
// (silently mixing estimators would corrupt every answer downstream).

import (
	"testing"

	"streamfreq/internal/zipf"
)

func FuzzMergeEncoded(f *testing.F) {
	// Seed with genuine encodings of every registry algorithm (so the
	// fuzzer starts from deep-in-the-format corpus entries), a few
	// cross-algorithm pairs, and classic corruptions.
	var blobs [][]byte
	for _, algo := range Algorithms() {
		s := MustNew(algo, 0.02, 7)
		UpdateAll(s, zipf.Sequential(2_000))
		m, ok := s.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			f.Fatalf("%s has no MarshalBinary", algo)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i, b := range blobs {
		f.Add(b, blobs[(i+1)%len(blobs)]) // mixed-algorithm pairs
		f.Add(b, b)                       // self-merge
		if len(b) > 8 {
			f.Add(b[:len(b)/2], b) // truncated left operand
			flipped := append([]byte{}, b...)
			flipped[len(flipped)-3] ^= 0x40
			f.Add(b, flipped) // bit flip in the right operand
		}
	}
	f.Add([]byte{}, []byte{})
	f.Add([]byte("SS01"), []byte("FQ01"))

	// The windowed format rides the same trust boundary: a genuine WN01
	// pair, a windowed/flat mix, and a geometry mismatch seed the corpus.
	win := mustWindowedSummary(64, 4, 8)
	UpdateAll(win, zipf.Sequential(500))
	winBlob, err := win.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	win2 := mustWindowedSummary(64, 2, 8)
	UpdateAll(win2, zipf.Sequential(300))
	win2Blob, err := win2.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(winBlob, winBlob)
	f.Add(winBlob, win2Blob)
	f.Add(winBlob, blobs[0])

	f.Fuzz(func(t *testing.T, a, b []byte) {
		merged, err := MergeEncoded(a, b)
		if err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}
		// A successful merge must yield a usable summary.
		_ = merged.N()
		_ = merged.Estimate(1)
		_ = merged.Query(1)

		// If both operands decode on their own, a successful merge
		// implies they named the same algorithm.
		sa, errA := Decode(a)
		sb, errB := Decode(b)
		if errA == nil && errB == nil && sa.Name() != sb.Name() {
			t.Fatalf("MergeEncoded combined %s with %s without error", sa.Name(), sb.Name())
		}
	})
}
