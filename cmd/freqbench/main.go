// Command freqbench regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	freqbench -exp F1                 # one experiment, paper scale
//	freqbench -exp all -n 1000000     # full suite at reduced scale
//	freqbench -exp F6 -algos CMH,CGT -csv results.csv
//	freqbench -writers 1,4,8 -n 4000000   # ingest-plane sweep: locked vs pipelined
//
// Paper scale (-n 10000000) takes minutes per experiment; start with
// -n 1000000 for a quick look. Output shapes, not absolute throughput,
// are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamfreq/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "T1", "experiment id (T1, F1..F12, X1, X2, or 'all')")
		n        = flag.Int("n", 10_000_000, "stream length")
		universe = flag.Int("universe", 1<<22, "distinct items in synthetic workloads")
		phi      = flag.Float64("phi", 0.001, "default query threshold fraction")
		seed     = flag.Uint64("seed", 20080824, "workload and hash seed")
		algos    = flag.String("algos", "", "comma-separated algorithm filter (default: all)")
		batch    = flag.Int("batch", 0, "ingest batch length (0 = default, negative = scalar per-item updates)")
		writers  = flag.String("writers", "", "ingest-plane sweep: comma-separated writer counts (e.g. 1,4,8); compares locked vs pipelined ingest instead of running -exp")
		shards   = flag.Int("shards", 4, "ingest shards for the -writers sweep (power of two)")
		csvPath  = flag.String("csv", "", "also write machine-readable rows to this file")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		check    = flag.Bool("check", false, "verify the paper's qualitative claims against the results; exit 1 on failure")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentOrder {
			fmt.Println(id)
		}
		return
	}

	if *writers != "" {
		if err := runIngestSweep(*writers, *algos, *shards, *n, *batch, *phi, *seed); err != nil {
			fatal(err)
		}
		return
	}

	cfg := harness.Config{
		N:           *n,
		Universe:    *universe,
		Phi:         *phi,
		Seed:        *seed,
		IngestBatch: *batch,
		Out:         os.Stdout,
	}
	if *algos != "" {
		cfg.Algorithms = strings.Split(*algos, ",")
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		cfg.CSVOut = f
	}

	var results []harness.Result
	if strings.EqualFold(*exp, "all") {
		rs, err := harness.RunAll(cfg)
		if err != nil {
			fatal(err)
		}
		results = rs
	} else {
		for _, id := range strings.Split(*exp, ",") {
			res, err := harness.Run(strings.TrimSpace(id), cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, res)
		}
	}
	if *check {
		if failed := harness.CheckClaims(results, os.Stdout); failed > 0 {
			fatal(fmt.Errorf("%d claims failed", failed))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqbench:", err)
	os.Exit(1)
}
