package main

// Ingest-plane sweep: freqbench -writers 1,2,4,8 pits the locked
// Sharded plane against the lock-free Pipelined plane at each writer
// count, on the same pre-sliced batch stream. This is the source for
// the README scaling table; unlike the paper experiments (-exp) it
// measures the concurrency planes, not the summaries.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/zipf"
)

// batchSink is the part of the two ingest planes the sweep exercises.
type batchSink interface {
	UpdateBatch([]core.Item)
	N() int64
}

// runIngestSweep drives both planes at each writer count and prints an
// items/ms table plus the pipelined-over-locked speedup.
func runIngestSweep(writersSpec, algosSpec string, shards, n, batch int, phi float64, seed uint64) error {
	writers, err := parseWriters(writersSpec)
	if err != nil {
		return err
	}
	algos := []string{"SSH", "CM"}
	if algosSpec != "" {
		algos = strings.Split(algosSpec, ",")
	}
	if batch <= 0 {
		batch = core.DefaultBatchSize
	}

	gen, err := zipf.NewGenerator(1<<20, 1.1, seed, true)
	if err != nil {
		return err
	}
	stream := gen.Stream(n)
	var batches [][]core.Item
	for i := 0; i < len(stream); i += batch {
		end := i + batch
		if end > len(stream) {
			end = len(stream)
		}
		batches = append(batches, stream[i:end])
	}

	fmt.Printf("ingest-plane sweep: n=%d batch=%d shards=%d GOMAXPROCS=%d\n",
		n, batch, shards, runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algo\twriters\tlocked items/ms\tpipelined items/ms\tspeedup")
	for _, algo := range algos {
		algo = strings.TrimSpace(algo)
		factory := func() core.Summary { return streamfreq.MustNew(algo, phi, seed) }
		for _, w := range writers {
			locked := drive(core.NewSharded(shards, factory), nil, batches, w)
			p := core.NewPipelined(shards, factory)
			pipelined := drive(p, p.Drain, batches, w)
			p.Close()
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.2fx\n",
				algo, w, locked, pipelined, pipelined/locked)
		}
	}
	return tw.Flush()
}

// drive feeds every batch through w writers sharing an atomic cursor
// and returns throughput in items per millisecond. drain, when set, is
// called inside the timed region: acknowledged-but-staged items are
// not done until applied.
func drive(sink batchSink, drain func(), batches [][]core.Item, w int) float64 {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(batches) {
					return
				}
				sink.UpdateBatch(batches[i])
			}
		}()
	}
	wg.Wait()
	if drain != nil {
		drain()
	}
	elapsed := time.Since(start)
	return float64(sink.N()) / float64(elapsed.Milliseconds()+1)
}

func parseWriters(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-writers wants positive counts like 1,4,8, got %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
