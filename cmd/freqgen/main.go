// Command freqgen generates workload streams and writes them in the
// binary stream format understood by freqtop and the library.
//
// Usage:
//
//	freqgen -kind zipf -z 1.2 -n 10000000 -o zipf12.stream
//	freqgen -kind http -n 10000000 -o http.stream
//	freqgen -kind udp  -n 10000000 -o udp.stream
package main

import (
	"flag"
	"fmt"
	"os"

	"streamfreq/internal/core"
	"streamfreq/internal/stream"
	"streamfreq/internal/trace"
	"streamfreq/internal/zipf"
)

func main() {
	var (
		kind     = flag.String("kind", "zipf", "workload kind: zipf, uniform, http, udp, sequential")
		n        = flag.Int("n", 10_000_000, "stream length")
		universe = flag.Int("universe", 1<<22, "distinct items (zipf/uniform)")
		z        = flag.Float64("z", 1.0, "Zipf skew (zipf kind)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-o output file is required"))
	}

	var (
		items []core.Item
		meta  string
	)
	switch *kind {
	case "zipf":
		g, err := zipf.NewGenerator(*universe, *z, *seed, true)
		if err != nil {
			fatal(err)
		}
		items = g.Stream(*n)
		meta = fmt.Sprintf("zipf z=%g universe=%d seed=%d", *z, *universe, *seed)
	case "uniform":
		g := zipf.Uniform(*universe, *seed)
		items = g.Stream(*n)
		meta = fmt.Sprintf("uniform universe=%d seed=%d", *universe, *seed)
	case "http":
		g, err := trace.NewHTTP(trace.DefaultHTTPConfig(*seed))
		if err != nil {
			fatal(err)
		}
		items = g.Stream(*n)
		meta = fmt.Sprintf("http-like trace seed=%d", *seed)
	case "udp":
		g, err := trace.NewUDP(trace.DefaultUDPConfig(*seed))
		if err != nil {
			fatal(err)
		}
		items = g.Stream(*n)
		meta = fmt.Sprintf("udp-flow trace seed=%d", *seed)
	case "sequential":
		items = zipf.Sequential(*n)
		meta = "sequential"
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := stream.Write(f, meta, items); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d items (%s) to %s\n", len(items), meta, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqgen:", err)
	os.Exit(1)
}
