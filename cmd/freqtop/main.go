// Command freqtop reports the frequent items of a stream using any
// registered algorithm, optionally scoring it against exact counts.
//
// Usage:
//
//	freqtop -algo SSH -phi 0.001 zipf12.stream
//	freqtop -algo CMH -phi 0.01 -verify http.stream
//	cat access.log | awk '{print $7}' | freqtop -text -algo SSH -phi 0.01 -
//
// With -text, input is whitespace-separated tokens (one item per token)
// read from the named file or standard input ("-"); tokens are hashed to
// 64-bit items.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/stream"
)

func main() {
	var (
		algo   = flag.String("algo", "SSH", "algorithm code (freqbench -list shows the roster)")
		phi    = flag.Float64("phi", 0.001, "report items above phi fraction of the stream")
		seed   = flag.Uint64("seed", 1, "hash seed for sketches")
		verify = flag.Bool("verify", false, "also compute exact counts and score the report")
		top    = flag.Int("top", 20, "print at most this many items")
		text   = flag.Bool("text", false, "read whitespace-separated text tokens instead of a binary stream file")
		batch  = flag.Int("batch", 0, "ingest batch length (0 = default, negative = scalar per-item updates)")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: freqtop [flags] <stream-file | ->"))
	}
	var (
		meta  string
		items []core.Item
		names map[core.Item]string
		err   error
	)
	if *text {
		items, names, err = readTokens(flag.Arg(0))
		meta = "text tokens"
	} else {
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		meta, items, err = stream.Read(f)
		f.Close()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream: %d items (%s)\n", len(items), meta)

	s, err := streamfreq.New(*algo, *phi, *seed)
	if err != nil {
		fatal(err)
	}
	timer := metrics.StartTimer()
	streamfreq.Replay(s, items, *batch)
	rate := timer.UpdatesPerMilli(len(items))

	threshold := int64(*phi * float64(len(items)))
	if threshold < 1 {
		threshold = 1
	}
	report := s.Query(threshold)
	fmt.Printf("%s: %d items above φn = %d (%.0f updates/ms, %d bytes)\n",
		s.Name(), len(report), threshold, rate, s.Bytes())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\titem\testimate")
	for i, ic := range report {
		if i >= *top {
			fmt.Fprintf(tw, "...\t(%d more)\t\n", len(report)-*top)
			break
		}
		label := fmt.Sprintf("%#x", uint64(ic.Item))
		if names != nil {
			if n, ok := names[ic.Item]; ok {
				label = n
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\n", i+1, label, ic.Count)
	}
	tw.Flush()

	if *verify {
		truth := exact.New()
		for _, it := range items {
			truth.Update(it, 1)
		}
		truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
		acc := metrics.Evaluate(report, truthMap)
		fmt.Printf("verified: %s (exact summary: %d distinct, %d bytes)\n",
			acc, truth.Distinct(), truth.Bytes())
	}
}

// readTokens reads whitespace-separated tokens from path ("-" = stdin)
// through the shared stream.TokenSource (the same reader freqd's text
// ingest uses), returning the hashed items and token spellings.
func readTokens(path string) ([]core.Item, map[core.Item]string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	return stream.ReadTokens(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqtop:", err)
	os.Exit(1)
}
