// Command freqd serves frequent-items queries over a live stream: it
// ingests items continuously over HTTP and answers top-k / point-
// estimate queries from epoch snapshots, so heavy read traffic never
// blocks the ingest hot path.
//
// Usage:
//
//	freqd -algo SSH -phi 0.001 -addr :8080
//	freqd -algo CM -phi 0.01 -shards 8 -staleness 250ms
//
// Ingest (any of):
//
//	curl -X POST --data-binary @items.raw -H 'Content-Type: application/octet-stream' localhost:8080/ingest
//	cat access.log | awk '{print $7}' | curl -X POST --data-binary @- -H 'Content-Type: text/plain' localhost:8080/ingest
//	curl -X POST --data-binary @zipf11.stream -H 'Content-Type: application/x-sfstream' localhost:8080/ingest
//
// Query:
//
//	curl 'localhost:8080/topk?phi=0.001&k=20'
//	curl 'localhost:8080/estimate?token=/index.html'
//	curl 'localhost:8080/stats'
//
// Queries are served from a snapshot refreshed at most once per
// -staleness window; POST /refresh forces a fresh one. SIGINT/SIGTERM
// shut the server down gracefully.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algo", "SSH", "algorithm code (freqbench -list shows the roster)")
		phi       = flag.Float64("phi", 0.001, "provision the summary for thresholds down to phi")
		seed      = flag.Uint64("seed", 1, "hash seed for sketches")
		shards    = flag.Int("shards", 1, "ingest shards (power of two; 1 = single mutex)")
		staleness = flag.Duration("staleness", 100*time.Millisecond, "query snapshot staleness bound (0 = always fresh)")
		batch     = flag.Int("batch", 0, "ingest batch length (0 = default)")
	)
	flag.Parse()

	target, err := buildTarget(*algo, *phi, *seed, *shards, *staleness)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(serve.Options{Target: target, Algo: *algo, IngestBatch: *batch})

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "freqd: %v, draining\n", s)
		close(stop)
	}()

	fmt.Printf("freqd: serving %s (phi=%g, shards=%d, staleness=%v) on %s\n",
		*algo, *phi, *shards, *staleness, *addr)
	if err := srv.ListenAndServe(*addr, stop); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// buildTarget wraps a registry summary for serving: Sharded across
// power-of-two shards when asked, plain Concurrent otherwise, with
// snapshot reads enabled either way.
func buildTarget(algo string, phi float64, seed uint64, shards int, staleness time.Duration) (serve.Target, error) {
	if _, err := streamfreq.New(algo, phi, seed); err != nil {
		return nil, err // validate algo/phi before wrapping
	}
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("-shards must be a positive power of two, got %d", shards)
	}
	if shards > 1 {
		s := core.NewSharded(shards, func() core.Summary {
			return streamfreq.MustNew(algo, phi, seed)
		})
		return s.ServeSnapshots(staleness), nil
	}
	return core.NewConcurrent(streamfreq.MustNew(algo, phi, seed)).ServeSnapshots(staleness), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
