// Command freqd serves frequent-items queries over a live stream: it
// ingests items continuously over HTTP and answers top-k / point-
// estimate queries from epoch snapshots, so heavy read traffic never
// blocks the ingest hot path. With -data-dir set it is durable: every
// ingest batch is write-ahead logged and the summary is checkpointed
// periodically, so a crash (kill -9 included) restarts at the last
// durable point instead of an empty summary.
//
// Usage:
//
//	freqd -algo SSH -phi 0.001 -addr :8080
//	freqd -algo CM -phi 0.01 -shards 8 -staleness 250ms
//	freqd -algo SSH -phi 0.001 -shards 8 -pipeline    # lock-free staged ingest plane
//	freqd -algo SSH -phi 0.001 -pipeline -pprof :6060 # with mutex/block profiling
//	freqd -algo SSH -phi 0.001 -data-dir /var/lib/freqd -fsync interval -checkpoint-every 1m
//	freqd -window 1000000 -window-blocks 10 -phi 0.001    # heavy hitters over the last 1M items
//	freqd -tenants -phi 0.01 -tenant-phi eu=0.001 -tenant-max-resident 4096   # namespaced summaries under /v1/t/{ns}/...
//
// With -window W the daemon serves *sliding-window* heavy hitters: /topk
// and /estimate answer over (roughly) the last W items instead of the
// whole history, ?phi= thresholds against W, and /stats gains a window
// section (live span, slack, boundary-block coverage). Durability works
// unchanged — checkpoints hold only the live blocks, WAL replay
// reconstructs block boundaries — so a recovered windowed daemon is
// bit-identical to its durable prefix, like the whole-stream modes.
//
// Ingest (any of):
//
//	curl -X POST --data-binary @items.raw -H 'Content-Type: application/octet-stream' localhost:8080/ingest
//	cat access.log | awk '{print $7}' | curl -X POST --data-binary @- -H 'Content-Type: text/plain' localhost:8080/ingest
//	curl -X POST --data-binary @zipf11.stream -H 'Content-Type: application/x-sfstream' localhost:8080/ingest
//
// Query:
//
//	curl 'localhost:8080/topk?phi=0.001&k=20'
//	curl 'localhost:8080/estimate?token=/index.html'
//	curl 'localhost:8080/stats'
//
// Durability control:
//
//	curl -X POST localhost:8080/checkpoint
//
// Queries are served from a snapshot refreshed at most once per
// -staleness window; POST /refresh forces a fresh one. SIGINT/SIGTERM
// shut the server down gracefully: with persistence on, shutdown
// writes a final checkpoint and seals the log, so the next start
// replays zero WAL records.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/tenant"
)

// phiOverrides collects repeated -tenant-phi ns=phi flags into the
// per-namespace threshold map.
type phiOverrides map[string]float64

func (p phiOverrides) String() string {
	parts := make([]string, 0, len(p))
	for ns, phi := range p {
		parts = append(parts, fmt.Sprintf("%s=%g", ns, phi))
	}
	return strings.Join(parts, ",")
}

func (p phiOverrides) Set(v string) error {
	ns, val, ok := strings.Cut(v, "=")
	if !ok || ns == "" {
		return fmt.Errorf("want ns=phi, got %q", v)
	}
	var phi float64
	if _, err := fmt.Sscanf(val, "%g", &phi); err != nil {
		return fmt.Errorf("bad phi in %q: %v", v, err)
	}
	p[ns] = phi
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algo", "SSH", "algorithm code (freqbench -list shows the roster)")
		phi       = flag.Float64("phi", 0.001, "provision the summary for thresholds down to phi")
		seed      = flag.Uint64("seed", 1, "hash seed for sketches")
		shards    = flag.Int("shards", 1, "ingest shards (power of two; 1 = single mutex)")
		pipeline  = flag.Bool("pipeline", false, "lock-free ingest plane: stage batches into per-shard rings, apply via drainer goroutines (see -shards)")
		staleness = flag.Duration("staleness", 100*time.Millisecond, "query snapshot staleness bound (0 = always fresh)")
		batch     = flag.Int("batch", 0, "ingest batch length (0 = default)")
		epoch     = flag.Uint64("epoch", 0, "process epoch stamped on summaries and ingest acks (0 = draw from the clock); explicit values are for deterministic failover drills")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof (with mutex and block profiling) on this address (empty = off)")

		windowLen = flag.Int("window", 0, "serve heavy hitters over the last W items instead of the whole stream (0 = whole-stream)")
		windowB   = flag.Int("window-blocks", 8, "block count of the sliding window (W must be a multiple of it)")

		dataDir    = flag.String("data-dir", "", "persistence directory (empty = in-memory only)")
		fsyncMode  = flag.String("fsync", "interval", "WAL durability: always | interval | never")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "group-commit window for -fsync interval")
		ckptEvery  = flag.Duration("checkpoint-every", time.Minute, "periodic checkpoint cadence (0 = only POST /checkpoint and shutdown)")
		maxLag     = flag.Int64("max-lag", 0, "shed ingest (429) once the unsynced WAL lag exceeds this many items (0 = no shedding)")

		tenants   = flag.Bool("tenants", false, "multi-tenant mode: namespaced summaries under /v1/t/{ns}/... on a shared slab (SSH only)")
		tenantMax = flag.Int("tenant-max-resident", 4096, "resident-tenant bound; idle namespaces beyond it are evicted to compact blobs (0 = unbounded)")
		tenantPhi = phiOverrides{}
	)
	flag.Var(tenantPhi, "tenant-phi", "per-namespace threshold override as ns=phi (repeatable); others use -phi")
	flag.Parse()

	var table *tenant.Table
	if *tenants {
		var err error
		table, err = buildTenantTable(*algo, *phi, *seed, *shards, *pipeline, *windowLen, *tenantMax, tenantPhi)
		if err != nil {
			fatal(err)
		}
	}
	target, store, label, err := buildTarget(*algo, *phi, *seed, *shards, *pipeline, *staleness,
		*windowLen, *windowB, *dataDir, *fsyncMode, *fsyncEvery, table)
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		// Profile the things a lock-free ingest plane is built to
		// eliminate: mutex profiling shows who still holds summary
		// locks, block profiling shows where writers wait on the rings.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000) // sample blocking events ≥100µs
		go func() {
			fmt.Printf("freqd: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "freqd: pprof:", err)
			}
		}()
	}
	srv := serve.NewServer(serve.Options{Target: target, Algo: label, IngestBatch: *batch, Store: store, MaxLag: *maxLag, Epoch: *epoch, Tenants: table})

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "freqd: %v, draining\n", s)
		close(stop)
	}()

	if store != nil && *ckptEvery > 0 {
		go checkpointLoop(store, target.(persist.Target), *ckptEvery, stop)
	}

	fmt.Printf("freqd: serving %s (phi=%g, shards=%d, staleness=%v", label, *phi, *shards, *staleness)
	if table != nil {
		fmt.Printf(", multi-tenant (max-resident=%d)", *tenantMax)
	}
	if *pipeline {
		fmt.Printf(", pipelined ingest")
	}
	if *windowLen > 0 {
		fmt.Printf(", window=%d/%d blocks", *windowLen, *windowB)
	}
	if store != nil {
		fmt.Printf(", data-dir=%s, fsync=%s", *dataDir, *fsyncMode)
	}
	fmt.Printf(") on %s\n", *addr)
	err = srv.ListenAndServe(*addr, stop)
	if store != nil {
		// Flush a final checkpoint and seal the log: a clean shutdown
		// leaves nothing to replay. For the pipelined plane the
		// checkpoint barrier drains the staging rings first, so the
		// checkpoint covers every acknowledged batch.
		if _, cerr := store.Checkpoint(target.(persist.Target)); cerr != nil {
			fmt.Fprintln(os.Stderr, "freqd: final checkpoint:", cerr)
		}
		if cerr := store.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "freqd: closing log:", cerr)
		}
	}
	if p, ok := target.(*core.Pipelined); ok {
		p.Close()
	}
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// checkpointLoop checkpoints on a timer until stop closes. Failures are
// logged and retried next tick; a persistent failure also latches the
// store, which the serving layer surfaces by refusing ingest.
func checkpointLoop(store *persist.Store, target persist.Target, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := store.Checkpoint(target); err != nil {
				fmt.Fprintln(os.Stderr, "freqd: checkpoint:", err)
			}
		}
	}
}

// buildTarget wraps a registry summary for serving: the lock-free
// Pipelined ingest plane with -pipeline, Sharded across power-of-two
// shards when asked, plain Concurrent otherwise; with -window set, the
// summary is the sliding-window Space-Saving ("SSW") and queries
// answer over the last W items. With a data directory it also opens
// the durability layer in the startup order recovery requires —
// construct, recover, wire the WAL, then enable snapshot serving. The
// returned label is the effective algorithm name — the -algo code, or
// "SSW" in windowed mode — and is the single source for both the
// serving layer's Algo and the checkpoint's mode-exclusive algo stamp.
// buildTenantTable validates the multi-tenant flag combination and
// constructs the namespaced table. Tenancy is a serving arrangement of
// many small Space-Saving summaries on one slab, so the mode excludes
// the single-summary arrangements: windows, pipelining, sharding, and
// non-SSH algorithms.
func buildTenantTable(algo string, phi float64, seed uint64, shards int, pipeline bool,
	windowLen, maxResident int, overrides map[string]float64) (*tenant.Table, error) {
	if !strings.EqualFold(algo, "SSH") {
		return nil, fmt.Errorf("-tenants serves slab-backed Space-Saving; drop -algo %s (or set SSH)", algo)
	}
	if windowLen > 0 {
		return nil, fmt.Errorf("-tenants and -window are incompatible; pick one serving arrangement")
	}
	if pipeline {
		return nil, fmt.Errorf("-tenants has per-namespace summaries, not a staged plane; drop -pipeline")
	}
	if shards != 1 {
		return nil, fmt.Errorf("-tenants is namespace-keyed, not hash-sharded; drop -shards %d", shards)
	}
	_ = seed // SSH hashes per item, not per summary; the flag stays valid
	return tenant.NewTable(tenant.Options{
		DefaultPhi:  phi,
		MaxResident: maxResident,
		Phi:         overrides,
	})
}

func buildTarget(algo string, phi float64, seed uint64, shards int, pipeline bool, staleness time.Duration,
	windowLen, windowBlocks int, dataDir, fsyncMode string, fsyncEvery time.Duration, table *tenant.Table) (serve.Target, *persist.Store, string, error) {
	if _, err := streamfreq.New(algo, phi, seed); err != nil {
		return nil, nil, "", err // validate algo/phi before wrapping
	}
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, nil, "", fmt.Errorf("-shards must be a positive power of two, got %d", shards)
	}

	label := algo
	var durable persist.Target
	switch {
	case table != nil:
		// Multi-tenant: the table is its own concurrency wrapper (one
		// lock over tiny critical sections) and its own durable target
		// (tenant-tagged WAL records, manifest checkpoints).
		durable = table
	case windowLen > 0:
		// Windowed serving: block-decomposed Space-Saving over the last
		// W items. The window is one summary with internal blocks, so it
		// is served single-shard (sharding would give each shard its own
		// last-W-of-substream, a different question); -algo must stay on
		// the Space-Saving default the blocks are built from.
		if !strings.EqualFold(algo, "SSH") {
			return nil, nil, "", fmt.Errorf("-window serves block-decomposed Space-Saving; drop -algo %s (or set SSH)", algo)
		}
		if shards != 1 {
			return nil, nil, "", fmt.Errorf("-window is single-shard; drop -shards %d", shards)
		}
		if pipeline {
			return nil, nil, "", fmt.Errorf("-window is one summary with internal blocks; drop -pipeline")
		}
		win, err := streamfreq.NewWindowedForPhi(phi, windowLen, windowBlocks)
		if err != nil {
			return nil, nil, "", err
		}
		label = "SSW" // a windowed data dir never restores into a flat summary
		durable = core.NewConcurrent(win)
	case pipeline:
		durable = core.NewPipelined(shards, func() core.Summary {
			return streamfreq.MustNew(algo, phi, seed)
		})
	case shards > 1:
		durable = core.NewSharded(shards, func() core.Summary {
			return streamfreq.MustNew(algo, phi, seed)
		})
	default:
		durable = core.NewConcurrent(streamfreq.MustNew(algo, phi, seed))
	}

	var store *persist.Store
	if dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(fsyncMode)
		if err != nil {
			return nil, nil, "", err
		}
		store, err = persist.Open(persist.Options{
			Dir:           dataDir,
			Algo:          label,
			Fsync:         policy,
			FsyncInterval: fsyncEvery,
			Decode:        streamfreq.Decode,
		})
		if err != nil {
			return nil, nil, "", err
		}
		stats, err := store.Recover(durable)
		if err != nil {
			return nil, nil, "", fmt.Errorf("recovering %s: %w", dataDir, err)
		}
		fmt.Printf("freqd: recovered n=%d (checkpoint n=%d + %d WAL records", stats.RecoveredN, stats.CheckpointN, stats.ReplayedRecords)
		if stats.TruncatedBytes > 0 {
			fmt.Printf(", torn tail of %d bytes truncated", stats.TruncatedBytes)
		}
		fmt.Println(")")
		durable.PersistTo(store)
	}

	switch t := durable.(type) {
	case *tenant.Table:
		// Served directly: tenant reads pin per-namespace views, so the
		// -staleness snapshot machinery does not apply.
		return t, store, label, nil
	case *core.Pipelined:
		return t.ServeSnapshots(staleness), store, label, nil
	case *core.Sharded:
		return t.ServeSnapshots(staleness), store, label, nil
	default:
		return durable.(*core.Concurrent).ServeSnapshots(staleness), store, label, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
