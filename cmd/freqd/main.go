// Command freqd serves frequent-items queries over a live stream: it
// ingests items continuously over HTTP and answers top-k / point-
// estimate queries from epoch snapshots, so heavy read traffic never
// blocks the ingest hot path. With -data-dir set it is durable: every
// ingest batch is write-ahead logged and the summary is checkpointed
// periodically, so a crash (kill -9 included) restarts at the last
// durable point instead of an empty summary.
//
// Usage:
//
//	freqd -algo SSH -phi 0.001 -addr :8080
//	freqd -algo CM -phi 0.01 -shards 8 -staleness 250ms
//	freqd -algo SSH -phi 0.001 -shards 8 -pipeline    # lock-free staged ingest plane
//	freqd -algo SSH -phi 0.001 -pipeline -pprof :6060 # with mutex/block profiling
//	freqd -algo SSH -phi 0.001 -data-dir /var/lib/freqd -fsync interval -checkpoint-every 1m
//	freqd -window 1000000 -window-blocks 10 -phi 0.001    # heavy hitters over the last 1M items
//	freqd -tenants -phi 0.01 -tenant-phi eu=0.001 -tenant-max-resident 4096   # namespaced summaries under /v1/t/{ns}/...
//	freqd -algo cmh -phi 0.001                  # dyadic hierarchy: /v1/hhh, /v1/range, /v1/quantile
//	freqd -algo gk -phi 0.01                    # value quantiles: /v1/quantile, /v1/range
//	freqd -algo cmh -horizons 1m,1h,24h         # wall-clock resolutions: /v1/topk?horizon=1h (memory-only)
//
// With -window W the daemon serves *sliding-window* heavy hitters: /topk
// and /estimate answer over (roughly) the last W items instead of the
// whole history, ?phi= thresholds against W, and /stats gains a window
// section (live span, slack, boundary-block coverage). Durability works
// unchanged — checkpoints hold only the live blocks, WAL replay
// reconstructs block boundaries — so a recovered windowed daemon is
// bit-identical to its durable prefix, like the whole-stream modes.
//
// Ingest (any of):
//
//	curl -X POST --data-binary @items.raw -H 'Content-Type: application/octet-stream' localhost:8080/ingest
//	cat access.log | awk '{print $7}' | curl -X POST --data-binary @- -H 'Content-Type: text/plain' localhost:8080/ingest
//	curl -X POST --data-binary @zipf11.stream -H 'Content-Type: application/x-sfstream' localhost:8080/ingest
//
// Query:
//
//	curl 'localhost:8080/topk?phi=0.001&k=20'
//	curl 'localhost:8080/estimate?token=/index.html'
//	curl 'localhost:8080/stats'
//
// Durability control:
//
//	curl -X POST localhost:8080/checkpoint
//
// Queries are served from a snapshot refreshed at most once per
// -staleness window; POST /refresh forces a fresh one. SIGINT/SIGTERM
// shut the server down gracefully: with persistence on, shutdown
// writes a final checkpoint and seals the log, so the next start
// replays zero WAL records.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/tenant"
	"streamfreq/internal/window"
)

// phiOverrides collects repeated -tenant-phi ns=phi flags into the
// per-namespace threshold map.
type phiOverrides map[string]float64

func (p phiOverrides) String() string {
	parts := make([]string, 0, len(p))
	for ns, phi := range p {
		parts = append(parts, fmt.Sprintf("%s=%g", ns, phi))
	}
	return strings.Join(parts, ",")
}

func (p phiOverrides) Set(v string) error {
	ns, val, ok := strings.Cut(v, "=")
	if !ok || ns == "" {
		return fmt.Errorf("want ns=phi, got %q", v)
	}
	var phi float64
	if _, err := fmt.Sscanf(val, "%g", &phi); err != nil {
		return fmt.Errorf("bad phi in %q: %v", v, err)
	}
	p[ns] = phi
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algo", "SSH", "algorithm code (freqbench -list shows the roster)")
		phi       = flag.Float64("phi", 0.001, "provision the summary for thresholds down to phi")
		seed      = flag.Uint64("seed", 1, "hash seed for sketches")
		shards    = flag.Int("shards", 1, "ingest shards (power of two; 1 = single mutex)")
		pipeline  = flag.Bool("pipeline", false, "lock-free ingest plane: stage batches into per-shard rings, apply via drainer goroutines (see -shards)")
		staleness = flag.Duration("staleness", 100*time.Millisecond, "query snapshot staleness bound (0 = always fresh)")
		batch     = flag.Int("batch", 0, "ingest batch length (0 = default)")
		epoch     = flag.Uint64("epoch", 0, "process epoch stamped on summaries and ingest acks (0 = draw from the clock); explicit values are for deterministic failover drills")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof (with mutex and block profiling) on this address (empty = off)")

		windowLen = flag.Int("window", 0, "serve heavy hitters over the last W items instead of the whole stream (0 = whole-stream)")
		windowB   = flag.Int("window-blocks", 8, "block count of the sliding window (W must be a multiple of it)")

		horizons = flag.String("horizons", "", "comma-separated wall-clock horizons (e.g. 1m,1h,24h) served via ?horizon= on queries; memory-only (empty = off)")
		horizonB = flag.Int("horizon-blocks", 8, "bucket-ring length per horizon (finer alignment, more merge work per query)")

		dataDir    = flag.String("data-dir", "", "persistence directory (empty = in-memory only)")
		fsyncMode  = flag.String("fsync", "interval", "WAL durability: always | interval | never")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "group-commit window for -fsync interval")
		ckptEvery  = flag.Duration("checkpoint-every", time.Minute, "periodic checkpoint cadence (0 = only POST /checkpoint and shutdown)")
		maxLag     = flag.Int64("max-lag", 0, "shed ingest (429) once the unsynced WAL lag exceeds this many items (0 = no shedding)")

		logFormat = flag.String("log-format", "text", "structured log format: text | json")
		slowQuery = flag.Duration("slow-query", 0, "log requests slower than this at warn level with per-stage timings (0 = off)")

		tenants   = flag.Bool("tenants", false, "multi-tenant mode: namespaced summaries under /v1/t/{ns}/... on a shared slab (SSH only)")
		tenantMax = flag.Int("tenant-max-resident", 4096, "resident-tenant bound; idle namespaces beyond it are evicted to compact blobs (0 = unbounded)")
		tenantPhi = phiOverrides{}
	)
	flag.Var(tenantPhi, "tenant-phi", "per-namespace threshold override as ns=phi (repeatable); others use -phi")
	flag.Parse()

	o, err := obs.New(obs.Options{
		Service:   "freqd",
		LogFormat: *logFormat,
		LogWriter: os.Stderr,
		SlowQuery: *slowQuery,
	})
	if err != nil {
		fatal(err)
	}

	var table *tenant.Table
	if *tenants {
		var err error
		table, err = buildTenantTable(*algo, *phi, *seed, *shards, *pipeline, *windowLen, *tenantMax, tenantPhi)
		if err != nil {
			fatal(err)
		}
	}
	spans, err := parseHorizons(*horizons)
	if err != nil {
		fatal(err)
	}
	target, store, label, err := buildTarget(o.Log, *algo, *phi, *seed, *shards, *pipeline, *staleness,
		*windowLen, *windowB, spans, *horizonB, *dataDir, *fsyncMode, *fsyncEvery, table)
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		// Profile the things a lock-free ingest plane is built to
		// eliminate: mutex profiling shows who still holds summary
		// locks, block profiling shows where writers wait on the rings.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000) // sample blocking events ≥100µs
		go func() {
			o.Log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				o.Log.Error("pprof server failed", "error", err)
			}
		}()
	}
	srv := serve.NewServer(serve.Options{Target: target, Algo: label, IngestBatch: *batch, Store: store, MaxLag: *maxLag, Epoch: *epoch, Tenants: table, Obs: o})

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		o.Log.Info("draining on signal", "signal", s.String())
		close(stop)
	}()

	if store != nil && *ckptEvery > 0 {
		go checkpointLoop(o.Log, store, target.(persist.Target), *ckptEvery, stop)
	}

	attrs := []any{"algo", label, "phi", *phi, "shards", *shards, "staleness", *staleness, "addr", *addr}
	if table != nil {
		attrs = append(attrs, "tenants", true, "tenant_max_resident", *tenantMax)
	}
	if *pipeline {
		attrs = append(attrs, "pipeline", true)
	}
	if *windowLen > 0 {
		attrs = append(attrs, "window", *windowLen, "window_blocks", *windowB)
	}
	if len(spans) > 0 {
		attrs = append(attrs, "horizons", *horizons, "horizon_blocks", *horizonB)
	}
	if store != nil {
		attrs = append(attrs, "data_dir", *dataDir, "fsync", *fsyncMode)
	}
	o.Log.Info("serving", attrs...)
	err = srv.ListenAndServe(*addr, stop)
	if store != nil {
		// Flush a final checkpoint and seal the log: a clean shutdown
		// leaves nothing to replay. For the pipelined plane the
		// checkpoint barrier drains the staging rings first, so the
		// checkpoint covers every acknowledged batch.
		if _, cerr := store.Checkpoint(target.(persist.Target)); cerr != nil {
			o.Log.Error("final checkpoint failed", "error", cerr)
		}
		if cerr := store.Close(); cerr != nil {
			o.Log.Error("closing log failed", "error", cerr)
		}
	}
	if p, ok := target.(*core.Pipelined); ok {
		p.Close()
	}
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// checkpointLoop checkpoints on a timer until stop closes. Failures are
// logged and retried next tick; a persistent failure also latches the
// store, which the serving layer surfaces by refusing ingest.
func checkpointLoop(log *slog.Logger, store *persist.Store, target persist.Target, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := store.Checkpoint(target); err != nil {
				log.Error("periodic checkpoint failed", "error", err)
			}
		}
	}
}

// buildTarget wraps a registry summary for serving: the lock-free
// Pipelined ingest plane with -pipeline, Sharded across power-of-two
// shards when asked, plain Concurrent otherwise; with -window set, the
// summary is the sliding-window Space-Saving ("SSW") and queries
// answer over the last W items. With a data directory it also opens
// the durability layer in the startup order recovery requires —
// construct, recover, wire the WAL, then enable snapshot serving. The
// returned label is the effective algorithm name — the -algo code, or
// "SSW" in windowed mode — and is the single source for both the
// serving layer's Algo and the checkpoint's mode-exclusive algo stamp.
// buildTenantTable validates the multi-tenant flag combination and
// constructs the namespaced table. Tenancy is a serving arrangement of
// many small Space-Saving summaries on one slab, so the mode excludes
// the single-summary arrangements: windows, pipelining, sharding, and
// non-SSH algorithms.
func buildTenantTable(algo string, phi float64, seed uint64, shards int, pipeline bool,
	windowLen, maxResident int, overrides map[string]float64) (*tenant.Table, error) {
	if !strings.EqualFold(algo, "SSH") {
		return nil, fmt.Errorf("-tenants serves slab-backed Space-Saving; drop -algo %s (or set SSH)", algo)
	}
	if windowLen > 0 {
		return nil, fmt.Errorf("-tenants and -window are incompatible; pick one serving arrangement")
	}
	if pipeline {
		return nil, fmt.Errorf("-tenants has per-namespace summaries, not a staged plane; drop -pipeline")
	}
	if shards != 1 {
		return nil, fmt.Errorf("-tenants is namespace-keyed, not hash-sharded; drop -shards %d", shards)
	}
	_ = seed // SSH hashes per item, not per summary; the flag stays valid
	return tenant.NewTable(tenant.Options{
		DefaultPhi:  phi,
		MaxResident: maxResident,
		Phi:         overrides,
	})
}

// parseHorizons splits the -horizons flag into wall-clock spans.
func parseHorizons(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-horizons: %v", err)
		}
		out = append(out, d)
	}
	return out, nil
}

// newSummary constructs the serving summary for an -algo code: the
// registry roster, plus GK — a wire citizen without a roster entry
// (quantile summaries answer /v1/quantile and /v1/range, not /topk
// recall guarantees, so the frequency-semantics roster excludes it; φ
// provisions ε the way NewQuantileForPhi defines).
func newSummary(algo string, phi float64, seed uint64) (core.Summary, error) {
	if strings.EqualFold(algo, "GK") {
		return streamfreq.NewQuantileForPhi(phi)
	}
	return streamfreq.New(algo, phi, seed)
}

func mustSummary(algo string, phi float64, seed uint64) core.Summary {
	s, err := newSummary(algo, phi, seed)
	if err != nil {
		panic(err)
	}
	return s
}

func buildTarget(log *slog.Logger, algo string, phi float64, seed uint64, shards int, pipeline bool, staleness time.Duration,
	windowLen, windowBlocks int, horizons []time.Duration, horizonBlocks int,
	dataDir, fsyncMode string, fsyncEvery time.Duration, table *tenant.Table) (serve.Target, *persist.Store, string, error) {
	probe, err := newSummary(algo, phi, seed) // validate algo/phi before wrapping
	if err != nil {
		return nil, nil, "", err
	}
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, nil, "", fmt.Errorf("-shards must be a positive power of two, got %d", shards)
	}

	// The summary's Name is the canonical algorithm code (the registry
	// convention), so -algo ssh and -algo SSH label checkpoints the same.
	label := probe.Name()
	var durable persist.Target
	switch {
	case len(horizons) > 0:
		// Wall-clock multi-resolution serving: a bucket ring per horizon.
		// The rings have no wire format, so the mode is memory-only and
		// excludes the single-summary serving arrangements.
		if dataDir != "" {
			return nil, nil, "", fmt.Errorf("-horizons is memory-only (bucket rings have no wire format); drop -data-dir")
		}
		if windowLen > 0 {
			return nil, nil, "", fmt.Errorf("-horizons and -window are different recency models; pick one")
		}
		if table != nil {
			return nil, nil, "", fmt.Errorf("-horizons and -tenants are incompatible; pick one serving arrangement")
		}
		if pipeline {
			return nil, nil, "", fmt.Errorf("-horizons is one composition with internal rings; drop -pipeline")
		}
		if shards != 1 {
			return nil, nil, "", fmt.Errorf("-horizons is single-shard; drop -shards %d", shards)
		}
		m, err := window.NewMultiRes(window.MultiResConfig{
			Horizons: horizons,
			Blocks:   horizonBlocks,
			Factory:  func() core.Summary { return mustSummary(algo, phi, seed) },
		})
		if err != nil {
			return nil, nil, "", err
		}
		label = m.Name() // "MR-" + bucket algo
		durable = core.NewConcurrent(m)
	case table != nil:
		// Multi-tenant: the table is its own concurrency wrapper (one
		// lock over tiny critical sections) and its own durable target
		// (tenant-tagged WAL records, manifest checkpoints).
		durable = table
	case windowLen > 0:
		// Windowed serving: block-decomposed Space-Saving over the last
		// W items. The window is one summary with internal blocks, so it
		// is served single-shard (sharding would give each shard its own
		// last-W-of-substream, a different question); -algo must stay on
		// the Space-Saving default the blocks are built from.
		if !strings.EqualFold(algo, "SSH") {
			return nil, nil, "", fmt.Errorf("-window serves block-decomposed Space-Saving; drop -algo %s (or set SSH)", algo)
		}
		if shards != 1 {
			return nil, nil, "", fmt.Errorf("-window is single-shard; drop -shards %d", shards)
		}
		if pipeline {
			return nil, nil, "", fmt.Errorf("-window is one summary with internal blocks; drop -pipeline")
		}
		win, err := streamfreq.NewWindowedForPhi(phi, windowLen, windowBlocks)
		if err != nil {
			return nil, nil, "", err
		}
		label = "SSW" // a windowed data dir never restores into a flat summary
		durable = core.NewConcurrent(win)
	case pipeline:
		durable = core.NewPipelined(shards, func() core.Summary {
			return mustSummary(algo, phi, seed)
		})
	case shards > 1:
		durable = core.NewSharded(shards, func() core.Summary {
			return mustSummary(algo, phi, seed)
		})
	default:
		durable = core.NewConcurrent(mustSummary(algo, phi, seed))
	}

	var store *persist.Store
	if dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(fsyncMode)
		if err != nil {
			return nil, nil, "", err
		}
		store, err = persist.Open(persist.Options{
			Dir:           dataDir,
			Algo:          label,
			Fsync:         policy,
			FsyncInterval: fsyncEvery,
			Decode:        streamfreq.Decode,
		})
		if err != nil {
			return nil, nil, "", err
		}
		stats, err := store.Recover(durable)
		if err != nil {
			return nil, nil, "", fmt.Errorf("recovering %s: %w", dataDir, err)
		}
		log.Info("recovered",
			"n", stats.RecoveredN,
			"checkpoint_n", stats.CheckpointN,
			"wal_records", stats.ReplayedRecords,
			"truncated_bytes", stats.TruncatedBytes)
		durable.PersistTo(store)
	}

	switch t := durable.(type) {
	case *tenant.Table:
		// Served directly: tenant reads pin per-namespace views, so the
		// -staleness snapshot machinery does not apply.
		return t, store, label, nil
	case *core.Pipelined:
		return t.ServeSnapshots(staleness), store, label, nil
	case *core.Sharded:
		return t.ServeSnapshots(staleness), store, label, nil
	default:
		return durable.(*core.Concurrent).ServeSnapshots(staleness), store, label, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
