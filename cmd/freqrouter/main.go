// Command freqrouter is the partitioned write tier: it accepts the same
// POST /ingest a freqd node does, consistent-hash-partitions the items
// across shards, and fans each shard's sub-batch to every replica of
// that shard — so write throughput scales with the shard count and a
// dead replica costs availability of nothing (its peers keep the shard
// acknowledged). Point clients at the router instead of a node; point a
// freqmerge at the router's /shardmap and it serves the union stream
// partition-exactly.
//
// Usage:
//
//	freqrouter -shard a=http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	           -shard b=http://10.0.0.3:8080,http://10.0.0.4:8080 \
//	           -addr :8070
//
// Ingest (identical to freqd):
//
//	curl -X POST --data-binary @items.raw -H 'Content-Type: application/octet-stream' localhost:8070/ingest
//
// Tier state:
//
//	curl 'localhost:8070/stats'      # traffic, retries, shed counts, health
//	curl 'localhost:8070/shardmap'   # the partition contract freqmerge pulls
//	curl -X POST localhost:8070/probe  # health-sweep now (re-adopt recovered replicas)
//
// Failure semantics: a replica that exhausts its retries is marked down
// and skipped (writes stop paying its timeouts) until a probe — or a
// desperation attempt when its whole shard is down — re-adopts it; a
// shard with every replica down is degraded and its items are shed
// (counted, surfaced, acked with 503) while the rest of the tier keeps
// accepting. A batch is acknowledged iff at least one replica of its
// shard accepted it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamfreq/internal/obs"
	"streamfreq/internal/router"
)

// shardFlags collects repeated -shard name=url1,url2 declarations in
// order (order matters: it is part of the ring contract only through
// the IDs, but keeping declaration order makes /shardmap readable).
type shardFlags []router.ShardConfig

func (s *shardFlags) String() string { return fmt.Sprintf("%d shards", len(*s)) }

func (s *shardFlags) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" || urls == "" {
		return fmt.Errorf("want name=url1,url2,..., got %q", v)
	}
	sc := router.ShardConfig{ID: name}
	for _, u := range strings.Split(urls, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		sc.Replicas = append(sc.Replicas, u)
	}
	*s = append(*s, sc)
	return nil
}

func main() {
	var shards shardFlags
	var (
		addr      = flag.String("addr", ":8070", "listen address")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-replica forward attempt timeout")
		retries   = flag.Int("retries", 2, "retries per replica before it is marked down")
		backoff   = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
		probe     = flag.Duration("probe", time.Second, "health-probe cadence for down replicas")
		batch     = flag.Int("batch", 0, "ingest split batch length (0 = default)")
		logFormat = flag.String("log-format", "text", "structured log format: text | json")
		slowQuery = flag.Duration("slow-query", 0, "log requests slower than this at warn level with per-stage timings (0 = off)")
	)
	flag.Var(&shards, "shard", "shard declaration name=url1,url2,... (repeat per shard; required)")
	flag.Parse()
	if len(shards) == 0 {
		fatal(fmt.Errorf("at least one -shard is required (e.g. -shard a=http://host1:8080,http://host2:8080)"))
	}
	o, err := obs.New(obs.Options{
		Service:   "freqrouter",
		LogFormat: *logFormat,
		LogWriter: os.Stderr,
		SlowQuery: *slowQuery,
	})
	if err != nil {
		fatal(err)
	}

	rt, err := router.New(router.Options{
		Shards:      shards,
		VNodes:      *vnodes,
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
		IngestBatch: *batch,
		Obs:         o,
	})
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		o.Log.Info("draining on signal", "signal", s.String())
		close(stop)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx, *probe)

	replicas := 0
	for _, sc := range shards {
		replicas += len(sc.Replicas)
	}
	o.Log.Info("routing", "shards", rt.Ring().Shards(), "replicas", replicas,
		"vnodes", rt.Ring().VNodes(), "addr", *addr)
	if err := rt.ListenAndServe(*addr, stop); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqrouter:", err)
	os.Exit(1)
}
