// Command benchjson converts `go test -bench` text output (stdin) into
// the machine-readable JSON the CI benchmark job commits and uploads as
// BENCH_*.json — the repository's performance trajectory. One entry per
// benchmark result line, with every reported metric (ns/op, MB/s, B/op,
// allocs/op, and any custom b.ReportMetric unit) keyed by its unit, plus
// the package and CPU context lines go test prints.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 2000x ./... | benchjson > BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted output.
type Report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parse consumes go test -bench output.
func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a Benchmark-prefixed non-result line (e.g. a name echo)
		}
		res := Result{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchjson: %q: bad metric value %q", fields[0], fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, sc.Err()
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
