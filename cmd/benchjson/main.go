// Command benchjson is the machine side of the repository's performance
// trajectory. It has two modes:
//
// Convert (default): turn `go test -bench` text output (stdin) into the
// JSON the CI benchmark job commits and uploads as BENCH_*.json — one
// entry per benchmark result line, with every reported metric (ns/op,
// MB/s, B/op, allocs/op, and any custom b.ReportMetric unit) keyed by
// its unit, plus the package and CPU context lines go test prints:
//
//	go test -run '^$' -bench . -benchtime 2000x ./... | benchjson > BENCH_PR4.json
//
// Diff: compare two such files and gate on regressions — the CI bench
// job runs it against the committed trajectory seed so a slowdown fails
// the build instead of relying on humans eyeballing artifacts:
//
//	benchjson -diff BENCH_PR4.json fresh.json            # 15% default
//	benchjson -diff -threshold 10 -metric ns/op old new
//	benchjson -diff -metric allocs -threshold 0 old new  # allocation gate
//
// -metric accepts the go test unit verbatim (ns/op, B/op, allocs/op,
// MB/s) or the shorthands ns, bytes, allocs. A zero baseline is a real
// measurement, not a missing metric: 0 → 0 passes, and 0 → anything
// positive is an infinite regression that fails a gated benchmark at
// any threshold — which is exactly what pins a 0 allocs/op steady
// state in CI.
//
// The diff prints one row per benchmark with the old and new value and
// the delta percentage, and exits nonzero if any benchmark shared by
// both files regressed past -threshold. Benchmarks are matched by
// package and name with the trailing -GOMAXPROCS suffix stripped, so a
// run on a 4-core runner compares against a seed from an 8-core one.
// Benchmarks present on only one side are reported (renames and
// deletions stay visible in the log) without failing — except seed
// benchmarks matching -gate, which are the gate's key set: a gated
// benchmark missing from the new run fails the diff, so deleting or
// renaming a key benchmark cannot silently vacate the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted output.
type Report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parse consumes go test -bench output.
func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a Benchmark-prefixed non-result line (e.g. a name echo)
		}
		res := Result{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchjson: %q: bad metric value %q", fields[0], fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, sc.Err()
}

// procSuffix is the -GOMAXPROCS tail go test appends to benchmark names
// (absent when GOMAXPROCS is 1). Stripped for matching so the same
// benchmark compares across machines with different core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

// benchKey identifies one benchmark across reports.
func benchKey(r Result) string {
	return r.Package + "›" + procSuffix.ReplaceAllString(r.Name, "")
}

// diffRow is one benchmark's comparison on the gated metric.
type diffRow struct {
	Key      string
	Old, New float64
	DeltaPct float64
	Gated    bool // whether this row can fail the build (-gate regexp)
}

// diffResult is a full comparison of two reports.
type diffResult struct {
	Rows         []diffRow
	MissingInNew []string // in old only: renamed or deleted benchmarks
	AddedInNew   []string // in new only: the next seed will cover them
	NoMetric     []string // shared, but one side lacks the gated metric
	Regressed    []diffRow
	// MissingGated are seed benchmarks matching -gate that the new run
	// did not produce (or produced without the gated metric). They fail
	// the diff: the gate's key set is defined by the committed seed, and
	// a gated benchmark that silently stops running would otherwise
	// vacate the gate while the CI step still looks enforced.
	MissingGated []string
}

// diffReports compares new against old on metric: positive delta means
// new is slower (for ns/op-style lower-is-better metrics). Rows past
// threshold percent whose key matches gate land in Regressed; rows
// outside the gate are still tabulated (the trend stays visible) but
// cannot fail the build — disk-bound benchmarks on shared runners swing
// far past any honest CPU threshold, so the gate names the key set.
// A nil gate means everything gates.
func diffReports(oldRep, newRep Report, metric string, threshold float64, gate *regexp.Regexp) diffResult {
	var d diffResult
	newByKey := make(map[string]Result, len(newRep.Benchmarks))
	for _, r := range newRep.Benchmarks {
		newByKey[benchKey(r)] = r
	}
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, o := range oldRep.Benchmarks {
		key := benchKey(o)
		seen[key] = true
		n, ok := newByKey[key]
		if !ok {
			d.MissingInNew = append(d.MissingInNew, key)
			if gate != nil && gate.MatchString(key) {
				d.MissingGated = append(d.MissingGated, key)
			}
			continue
		}
		ov, okO := o.Metrics[metric]
		nv, okN := n.Metrics[metric]
		if !okO || !okN {
			d.NoMetric = append(d.NoMetric, key)
			if gate != nil && gate.MatchString(key) && okO {
				// The seed gates this key on the metric, the new run lost
				// it — as enforceable as the benchmark disappearing.
				d.MissingGated = append(d.MissingGated, key)
			}
			continue
		}
		// A zero baseline is a measurement (a 0 allocs/op seed), not a
		// division hazard to skip: staying at zero is a clean pass and
		// any growth is an infinite regression, past every threshold.
		var delta float64
		switch {
		case ov == 0 && nv == 0:
			delta = 0
		case ov == 0:
			delta = math.Inf(1)
		default:
			delta = (nv - ov) / ov * 100
		}
		row := diffRow{Key: key, Old: ov, New: nv, DeltaPct: delta}
		row.Gated = gate == nil || gate.MatchString(key)
		d.Rows = append(d.Rows, row)
		if row.Gated && row.DeltaPct > threshold {
			d.Regressed = append(d.Regressed, row)
		}
	}
	for _, n := range newRep.Benchmarks {
		if key := benchKey(n); !seen[key] {
			d.AddedInNew = append(d.AddedInNew, key)
		}
	}
	sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i].Key < d.Rows[j].Key })
	sort.Strings(d.MissingInNew)
	sort.Strings(d.AddedInNew)
	sort.Strings(d.NoMetric)
	return d
}

// printDiff renders the comparison table; returns the process exit code
// (0 clean, 1 regressed).
func printDiff(w io.Writer, d diffResult, metric string, threshold float64) int {
	fmt.Fprintf(w, "%-64s %14s %14s %9s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	for _, r := range d.Rows {
		mark := ""
		switch {
		case r.Gated && r.DeltaPct > threshold:
			mark = "  << REGRESSION"
		case !r.Gated && r.DeltaPct > threshold:
			mark = "  (past threshold; outside -gate, not enforced)"
		case !r.Gated:
			mark = "  (ungated)"
		}
		fmt.Fprintf(w, "%-64s %14.2f %14.2f %+8.1f%%%s\n", r.Key, r.Old, r.New, r.DeltaPct, mark)
	}
	for _, k := range d.MissingInNew {
		fmt.Fprintf(w, "%-64s missing from new run (renamed or deleted?)\n", k)
	}
	for _, k := range d.AddedInNew {
		fmt.Fprintf(w, "%-64s new benchmark (not in the committed seed)\n", k)
	}
	for _, k := range d.NoMetric {
		fmt.Fprintf(w, "%-64s no %s on both sides; skipped\n", k, metric)
	}
	if len(d.MissingGated) > 0 {
		fmt.Fprintf(w, "FAIL: %d gated benchmark(s) missing %s in the new run: %s\n",
			len(d.MissingGated), metric, strings.Join(d.MissingGated, ", "))
		return 1
	}
	if len(d.Regressed) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed more than %+.1f%% on %s\n",
			len(d.Regressed), threshold, metric)
		return 1
	}
	fmt.Fprintf(w, "OK: %d benchmark(s) within %+.1f%% on %s\n", len(d.Rows), threshold, metric)
	return 0
}

// metricAliases maps shorthand -metric spellings to the go test units
// the reports actually carry.
var metricAliases = map[string]string{
	"ns":     "ns/op",
	"bytes":  "B/op",
	"allocs": "allocs/op",
}

// canonicalMetric resolves a -metric value: shorthands expand, full
// units pass through.
func canonicalMetric(m string) string {
	if full, ok := metricAliases[m]; ok {
		return full
	}
	return m
}

// newFlagSet builds the CLI flags; factored so tests can drive parsing.
func newFlagSet(diffMode *bool, threshold *float64, metric, gate *string) *flag.FlagSet {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.BoolVar(diffMode, "diff", false, "compare two BENCH_*.json files instead of converting stdin")
	fs.Float64Var(threshold, "threshold", 15, "max regression percent on -metric before a nonzero exit (diff mode)")
	fs.StringVar(metric, "metric", "ns/op", "metric unit the diff gates on (ns/op, B/op, allocs/op, MB/s; shorthands ns, bytes, allocs)")
	fs.StringVar(gate, "gate", "", "regexp of benchmark keys the threshold enforces (empty = all; non-matching rows are reported, never fatal)")
	return fs
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return rep, nil
}

func main() {
	var (
		diffMode  bool
		threshold float64
		metric    string
		gateExpr  string
	)
	fs := newFlagSet(&diffMode, &threshold, &metric, &gateExpr)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if diffMode {
		// The standard flag package stops at the first positional, so
		// re-parse anything after the two file arguments — both
		// `-diff -threshold 10 old new` and `-diff old new -threshold 10`
		// work. Anything the re-parse leaves over (a third file, a flag
		// wedged between the operands) is a usage error, not something to
		// guess about — a CI invocation gating the wrong pair of files
		// must fail loudly.
		args := fs.Args()
		if len(args) > 2 {
			if err := fs.Parse(args[2:]); err != nil {
				os.Exit(2)
			}
			if fs.NArg() != 0 {
				fmt.Fprintf(os.Stderr, "benchjson: unexpected arguments %v (flags go before or after the two files, not between)\n", fs.Args())
				os.Exit(2)
			}
			args = args[:2]
		}
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-threshold PCT] [-metric UNIT] [-gate RE] old.json new.json")
			os.Exit(2)
		}
		oldRep, err := readReport(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newRep, err := readReport(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var gate *regexp.Regexp
		if gateExpr != "" {
			if gate, err = regexp.Compile(gateExpr); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -gate:", err)
				os.Exit(2)
			}
		}
		metric = canonicalMetric(metric)
		d := diffReports(oldRep, newRep, metric, threshold, gate)
		os.Exit(printDiff(os.Stdout, d, metric, threshold))
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
