package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streamfreq/internal/persist
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWALAppend/interval      	    3000	     44994 ns/op	 728.27 MB/s	     101 B/op	       0 allocs/op
BenchmarkUpdateBatchWAL/nopersist         	    3000	    223693 ns/op	 146.49 MB/s
pkg: streamfreq
BenchmarkUpdateBatch/SSH-8       	  200000	        57.1 ns/op	      17.50 upd/ms	   16384 bytes
PASS
ok  	streamfreq/internal/persist	4.639s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Benchmarks))
	}
	wal := rep.Benchmarks[0]
	if wal.Name != "BenchmarkWALAppend/interval" || wal.Package != "streamfreq/internal/persist" || wal.Iterations != 3000 {
		t.Fatalf("first result = %+v", wal)
	}
	if wal.Metrics["ns/op"] != 44994 || wal.Metrics["MB/s"] != 728.27 || wal.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", wal.Metrics)
	}
	last := rep.Benchmarks[2]
	if last.Package != "streamfreq" || last.Metrics["upd/ms"] != 17.50 || last.Metrics["ns/op"] != 57.1 {
		t.Fatalf("custom metrics = %+v", last)
	}
}

func TestParseEmptyAndJunk(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok x 1s\nBenchmarkNameOnly\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("junk parsed as %d results", len(rep.Benchmarks))
	}
}
