package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streamfreq/internal/persist
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWALAppend/interval      	    3000	     44994 ns/op	 728.27 MB/s	     101 B/op	       0 allocs/op
BenchmarkUpdateBatchWAL/nopersist         	    3000	    223693 ns/op	 146.49 MB/s
pkg: streamfreq
BenchmarkUpdateBatch/SSH-8       	  200000	        57.1 ns/op	      17.50 upd/ms	   16384 bytes
PASS
ok  	streamfreq/internal/persist	4.639s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Benchmarks))
	}
	wal := rep.Benchmarks[0]
	if wal.Name != "BenchmarkWALAppend/interval" || wal.Package != "streamfreq/internal/persist" || wal.Iterations != 3000 {
		t.Fatalf("first result = %+v", wal)
	}
	if wal.Metrics["ns/op"] != 44994 || wal.Metrics["MB/s"] != 728.27 || wal.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", wal.Metrics)
	}
	last := rep.Benchmarks[2]
	if last.Package != "streamfreq" || last.Metrics["upd/ms"] != 17.50 || last.Metrics["ns/op"] != 57.1 {
		t.Fatalf("custom metrics = %+v", last)
	}
}

func TestParseEmptyAndJunk(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok x 1s\nBenchmarkNameOnly\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("junk parsed as %d results", len(rep.Benchmarks))
	}
}

// mkReport builds a Report from name→ns/op pairs (plus a package and an
// optional extra metric map), in insertion order.
func mkReport(pkg string, pairs ...any) Report {
	var rep Report
	rep.CPU = "testcpu"
	for i := 0; i+1 < len(pairs); i += 2 {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:       pairs[i].(string),
			Package:    pkg,
			Iterations: 1000,
			Metrics:    map[string]float64{"ns/op": pairs[i+1].(float64)},
		})
	}
	return rep
}

func TestDiffReports(t *testing.T) {
	const threshold = 15.0
	cases := []struct {
		name          string
		old, new      Report
		wantRegressed []string
		wantMissing   []string
		wantAdded     []string
		wantNoMetric  []string
		wantExit      int
	}{
		{
			name:     "within threshold",
			old:      mkReport("p", "BenchmarkA-8", 100.0, "BenchmarkB-8", 200.0),
			new:      mkReport("p", "BenchmarkA-8", 110.0, "BenchmarkB-8", 190.0),
			wantExit: 0,
		},
		{
			name:          "regression past threshold",
			old:           mkReport("p", "BenchmarkA-8", 100.0, "BenchmarkB-8", 200.0),
			new:           mkReport("p", "BenchmarkA-8", 116.0, "BenchmarkB-8", 200.0),
			wantRegressed: []string{"p›BenchmarkA"},
			wantExit:      1,
		},
		{
			name:     "improvement never fails",
			old:      mkReport("p", "BenchmarkA-8", 100.0),
			new:      mkReport("p", "BenchmarkA-8", 20.0),
			wantExit: 0,
		},
		{
			name:        "missing benchmark reported, not fatal",
			old:         mkReport("p", "BenchmarkA-8", 100.0, "BenchmarkGone-8", 50.0),
			new:         mkReport("p", "BenchmarkA-8", 100.0),
			wantMissing: []string{"p›BenchmarkGone"},
			wantExit:    0,
		},
		{
			name:        "renamed benchmark is a missing+added pair",
			old:         mkReport("p", "BenchmarkOldName-8", 100.0),
			new:         mkReport("p", "BenchmarkNewName-8", 100.0),
			wantMissing: []string{"p›BenchmarkOldName"},
			wantAdded:   []string{"p›BenchmarkNewName"},
			wantExit:    0,
		},
		{
			name:     "GOMAXPROCS suffix normalized across machines",
			old:      mkReport("p", "BenchmarkA-8", 100.0),
			new:      mkReport("p", "BenchmarkA-4", 105.0),
			wantExit: 0,
		},
		{
			name:          "sub-benchmark regression",
			old:           mkReport("p", "BenchmarkUpdateBatch/SSH-8", 57.1),
			new:           mkReport("p", "BenchmarkUpdateBatch/SSH-8", 90.0),
			wantRegressed: []string{"p›BenchmarkUpdateBatch/SSH"},
			wantExit:      1,
		},
		{
			name: "same name in different packages are distinct",
			old: Report{Benchmarks: []Result{
				{Name: "BenchmarkX-8", Package: "p1", Metrics: map[string]float64{"ns/op": 100}},
				{Name: "BenchmarkX-8", Package: "p2", Metrics: map[string]float64{"ns/op": 100}},
			}},
			new: Report{Benchmarks: []Result{
				{Name: "BenchmarkX-8", Package: "p1", Metrics: map[string]float64{"ns/op": 100}},
				{Name: "BenchmarkX-8", Package: "p2", Metrics: map[string]float64{"ns/op": 300}},
			}},
			wantRegressed: []string{"p2›BenchmarkX"},
			wantExit:      1,
		},
		{
			name: "metric absent on one side is skipped",
			old: Report{Benchmarks: []Result{
				{Name: "BenchmarkA-8", Package: "p", Metrics: map[string]float64{"ns/op": 100}},
			}},
			new: Report{Benchmarks: []Result{
				{Name: "BenchmarkA-8", Package: "p", Metrics: map[string]float64{"MB/s": 5}},
			}},
			wantNoMetric: []string{"p›BenchmarkA"},
			wantExit:     0,
		},
		{
			name:     "empty new run is all-missing, not a crash",
			old:      mkReport("p", "BenchmarkA-8", 100.0),
			new:      Report{},
			wantExit: 0, wantMissing: []string{"p›BenchmarkA"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := diffReports(tc.old, tc.new, "ns/op", threshold, nil)
			var regressed []string
			for _, r := range d.Regressed {
				regressed = append(regressed, r.Key)
			}
			if !equalStrings(regressed, tc.wantRegressed) {
				t.Fatalf("regressed = %v, want %v", regressed, tc.wantRegressed)
			}
			if !equalStrings(d.MissingInNew, tc.wantMissing) {
				t.Fatalf("missing = %v, want %v", d.MissingInNew, tc.wantMissing)
			}
			if !equalStrings(d.AddedInNew, tc.wantAdded) {
				t.Fatalf("added = %v, want %v", d.AddedInNew, tc.wantAdded)
			}
			if !equalStrings(d.NoMetric, tc.wantNoMetric) {
				t.Fatalf("nometric = %v, want %v", d.NoMetric, tc.wantNoMetric)
			}
			var out strings.Builder
			if exit := printDiff(&out, d, "ns/op", threshold); exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d\n%s", exit, tc.wantExit, out.String())
			}
			if tc.wantExit == 1 && !strings.Contains(out.String(), "REGRESSION") {
				t.Fatalf("regression table missing marker:\n%s", out.String())
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiffDeltaMath pins the delta computation and the exact-threshold
// edge: a delta of exactly the threshold passes (the gate is strictly
// greater-than).
func TestDiffDeltaMath(t *testing.T) {
	old := mkReport("p", "BenchmarkA-8", 200.0)
	new := mkReport("p", "BenchmarkA-8", 230.0) // exactly +15%
	d := diffReports(old, new, "ns/op", 15, nil)
	if len(d.Regressed) != 0 {
		t.Fatalf("exactly-at-threshold regressed: %+v", d.Regressed)
	}
	if got := d.Rows[0].DeltaPct; got != 15 {
		t.Fatalf("delta = %v, want 15", got)
	}
	new = mkReport("p", "BenchmarkA-8", 230.1)
	if d = diffReports(old, new, "ns/op", 15, nil); len(d.Regressed) != 1 {
		t.Fatal("just-past-threshold did not regress")
	}
}

// TestDiffFlagDefaults pins the CLI contract the CI workflow depends on.
func TestDiffFlagDefaults(t *testing.T) {
	var diffMode bool
	var threshold float64
	var metric, gate string
	fs := newFlagSet(&diffMode, &threshold, &metric, &gate)
	if err := fs.Parse([]string{"-diff", "old.json", "new.json"}); err != nil {
		t.Fatal(err)
	}
	if !diffMode || threshold != 15 || metric != "ns/op" || gate != "" {
		t.Fatalf("defaults: diff=%v threshold=%v metric=%q, want true/15/ns-op", diffMode, threshold, metric)
	}
	if fs.NArg() != 2 || fs.Arg(0) != "old.json" {
		t.Fatalf("positional args = %v", fs.Args())
	}
}

// TestDiffGateScope: rows outside -gate are tabulated but cannot fail
// the build — how CI keeps disk-bound benchmarks visible as trend data
// while enforcing the threshold on the CPU-bound key set.
func TestDiffGateScope(t *testing.T) {
	old := mkReport("p", "BenchmarkUpdateBatch/SSH-8", 100.0, "BenchmarkWALAppend/never-8", 100.0)
	new := mkReport("p", "BenchmarkUpdateBatch/SSH-8", 110.0, "BenchmarkWALAppend/never-8", 300.0)
	gate := regexp.MustCompile(`BenchmarkUpdateBatch|BenchmarkSnapshotServing`)

	d := diffReports(old, new, "ns/op", 15, gate)
	if len(d.Regressed) != 0 {
		t.Fatalf("ungated WAL noise failed the gate: %+v", d.Regressed)
	}
	var out strings.Builder
	if exit := printDiff(&out, d, "ns/op", 15); exit != 0 {
		t.Fatalf("exit = %d with only ungated regressions\n%s", exit, out.String())
	}
	if !strings.Contains(out.String(), "outside -gate") {
		t.Fatalf("ungated past-threshold row not flagged in output:\n%s", out.String())
	}

	// The same regression inside the gate still fails.
	new = mkReport("p", "BenchmarkUpdateBatch/SSH-8", 300.0, "BenchmarkWALAppend/never-8", 100.0)
	d = diffReports(old, new, "ns/op", 15, gate)
	if len(d.Regressed) != 1 || d.Regressed[0].Key != "p›BenchmarkUpdateBatch/SSH" {
		t.Fatalf("gated regression not caught: %+v", d.Regressed)
	}
}

// TestDiffGatedMissingFails: a seed benchmark inside -gate that the new
// run did not produce fails the diff — the gate cannot be vacated by
// deleting or renaming a key benchmark.
func TestDiffGatedMissingFails(t *testing.T) {
	gate := regexp.MustCompile(`BenchmarkUpdateBatch`)
	old := mkReport("p", "BenchmarkUpdateBatch/SSH-8", 100.0, "BenchmarkWALAppend/never-8", 50.0)

	// Gated benchmark gone entirely.
	d := diffReports(old, mkReport("p", "BenchmarkWALAppend/never-8", 50.0), "ns/op", 15, gate)
	if len(d.MissingGated) != 1 || d.MissingGated[0] != "p›BenchmarkUpdateBatch/SSH" {
		t.Fatalf("MissingGated = %v, want the gated key", d.MissingGated)
	}
	var out strings.Builder
	if exit := printDiff(&out, d, "ns/op", 15); exit != 1 {
		t.Fatalf("exit = %d, want 1 when a gated benchmark is missing\n%s", exit, out.String())
	}

	// Gated benchmark present but without the gated metric.
	d = diffReports(old, Report{Benchmarks: []Result{
		{Name: "BenchmarkUpdateBatch/SSH-8", Package: "p", Metrics: map[string]float64{"MB/s": 1}},
		{Name: "BenchmarkWALAppend/never-8", Package: "p", Metrics: map[string]float64{"ns/op": 50}},
	}}, "ns/op", 15, gate)
	if len(d.MissingGated) != 1 {
		t.Fatalf("metric-less gated benchmark not flagged: %+v", d)
	}

	// An ungated missing benchmark still passes.
	d = diffReports(old, mkReport("p", "BenchmarkUpdateBatch/SSH-8", 100.0), "ns/op", 15, gate)
	if len(d.MissingGated) != 0 {
		t.Fatalf("ungated missing benchmark flagged as gated: %v", d.MissingGated)
	}
	out.Reset()
	if exit := printDiff(&out, d, "ns/op", 15); exit != 0 {
		t.Fatalf("exit = %d, want 0 for ungated missing\n%s", exit, out.String())
	}
}

// TestDiffGatedMissingIgnoresThreshold: the missing-gated-key failure
// is categorical, not a regression past a percentage — a key benchmark
// that stopped running has no delta to compare, so even a -threshold
// wide enough to absorb any slowdown (100%, or 1e9) must not rescue
// the diff. Pinned separately from TestDiffGatedMissingFails because a
// plausible refactor would fold MissingGated into Regressed and
// silently inherit the threshold.
func TestDiffGatedMissingIgnoresThreshold(t *testing.T) {
	gate := regexp.MustCompile(`BenchmarkUpdateBatch`)
	old := mkReport("p", "BenchmarkUpdateBatch/SSH-8", 100.0, "BenchmarkWALAppend/never-8", 50.0)
	new := mkReport("p", "BenchmarkWALAppend/never-8", 50.0)

	for _, threshold := range []float64{100, 1e9} {
		d := diffReports(old, new, "ns/op", threshold, gate)
		if len(d.MissingGated) != 1 || d.MissingGated[0] != "p›BenchmarkUpdateBatch/SSH" {
			t.Fatalf("threshold %v: MissingGated = %v, want the gated key", threshold, d.MissingGated)
		}
		var out strings.Builder
		if exit := printDiff(&out, d, "ns/op", threshold); exit != 1 {
			t.Fatalf("threshold %v: exit = %d, want 1 — a vanished gated key is not a percentage\n%s",
				threshold, exit, out.String())
		}
	}
}

// TestSuffixNormalization pins benchKey's suffix handling across the
// run configurations CI actually mixes: plain runs, -race runs (which
// keep the -GOMAXPROCS tail but often land on different core counts or
// with -cpu pinned), and GOMAXPROCS=1 runs where go test emits no
// suffix at all. The strip must take exactly one trailing -digits
// group — sub-benchmark names that legitimately end in digits (a size
// parameter like /n-1024) must keep them.
func TestSuffixNormalization(t *testing.T) {
	for _, tc := range []struct {
		name, want string
	}{
		{"BenchmarkA-8", "p›BenchmarkA"},
		{"BenchmarkA-4", "p›BenchmarkA"},               // different core count, same key
		{"BenchmarkA", "p›BenchmarkA"},                 // GOMAXPROCS=1: no suffix emitted
		{"BenchmarkA/n-1024-8", "p›BenchmarkA/n-1024"}, // only the final group strips
		{"BenchmarkA/n-1024", "p›BenchmarkA/n"},        // no proc suffix: the size is the last group
		{"BenchmarkA-8-4", "p›BenchmarkA-8"},
	} {
		r := Result{Name: tc.name, Package: "p"}
		if got := benchKey(r); got != tc.want {
			t.Errorf("benchKey(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}

	// End to end: a -race run on a 2-core runner diffs cleanly against a
	// plain 8-core seed, and a GOMAXPROCS=1 run against either.
	old := mkReport("p", "BenchmarkUpdateBatch/SSH-8", 100.0)
	for _, raceName := range []string{"BenchmarkUpdateBatch/SSH-2", "BenchmarkUpdateBatch/SSH"} {
		d := diffReports(old, mkReport("p", raceName, 105.0), "ns/op", 15, nil)
		if len(d.MissingInNew) != 0 || len(d.AddedInNew) != 0 || len(d.Rows) != 1 {
			t.Fatalf("%q vs 8-core seed did not match up: %+v", raceName, d)
		}
	}
}

// TestDiffZeroBaseline pins the allocation-gate semantics: a 0-valued
// seed metric is a measurement, not a skip — staying at 0 passes, and
// growing from 0 is an infinite regression that fails a gated key at
// any threshold.
func TestDiffZeroBaseline(t *testing.T) {
	allocRep := func(v float64) Report {
		return Report{Benchmarks: []Result{
			{Name: "BenchmarkPipelinedIngest/SSH-8", Package: "p", Iterations: 1000,
				Metrics: map[string]float64{"allocs/op": v, "ns/op": 100}},
		}}
	}
	gate := regexp.MustCompile(`BenchmarkPipelinedIngest`)

	// 0 → 0: clean pass, tabulated (not NoMetric).
	d := diffReports(allocRep(0), allocRep(0), "allocs/op", 0, gate)
	if len(d.NoMetric) != 0 || len(d.Rows) != 1 || len(d.Regressed) != 0 {
		t.Fatalf("0→0 allocs: %+v", d)
	}
	var out strings.Builder
	if exit := printDiff(&out, d, "allocs/op", 0); exit != 0 {
		t.Fatalf("0→0 allocs exited %d\n%s", exit, out.String())
	}

	// 0 → 2: infinite regression, fails even a huge threshold.
	d = diffReports(allocRep(0), allocRep(2), "allocs/op", 1e9, gate)
	if len(d.Regressed) != 1 {
		t.Fatalf("0→2 allocs not regressed: %+v", d)
	}
	out.Reset()
	if exit := printDiff(&out, d, "allocs/op", 1e9); exit != 1 {
		t.Fatalf("0→2 allocs exited %d\n%s", exit, out.String())
	}

	// 2 → 0: an improvement, never fails.
	d = diffReports(allocRep(2), allocRep(0), "allocs/op", 0, gate)
	if len(d.Regressed) != 0 {
		t.Fatalf("2→0 allocs flagged: %+v", d.Regressed)
	}
}

// TestMetricAliases pins the -metric shorthands.
func TestMetricAliases(t *testing.T) {
	for in, want := range map[string]string{
		"ns": "ns/op", "bytes": "B/op", "allocs": "allocs/op",
		"ns/op": "ns/op", "MB/s": "MB/s", "upd/ms": "upd/ms",
	} {
		if got := canonicalMetric(in); got != want {
			t.Errorf("canonicalMetric(%q) = %q, want %q", in, got, want)
		}
	}
}
