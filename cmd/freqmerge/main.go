// Command freqmerge serves frequent-items queries over a whole cluster:
// it periodically pulls the summary blob from every freqd node, merges
// them (the paper's X2 merge experiment as a network service), and
// answers /topk and /estimate over the union stream through the same
// HTTP API as a single node — point clients at a freqmerge and they
// cannot tell the difference.
//
// Usage:
//
//	freqmerge -nodes http://10.0.0.1:8080,http://10.0.0.2:8080 -addr :8090
//	freqmerge -nodes node1:8080,node2:8080 -interval 500ms -algo SSH
//	freqmerge -router http://10.0.0.9:8070 -addr :8090
//
// With -router the coordinator pulls the write tier's /shardmap instead
// of taking -nodes: every replica of every shard is pulled, but the
// serving view is partition-exact — exactly one replica per shard (the
// most caught-up), routed by the tier's hash ring — so estimates carry
// the per-partition error bound instead of merge-inflated noise, and
// replicas are never double-counted.
//
// Query (identical to freqd):
//
//	curl 'localhost:8090/topk?phi=0.001&k=20'
//	curl 'localhost:8090/estimate?item=123'
//	curl 'localhost:8090/stats'          # + per-node freshness/epochs/errors
//	curl -X POST localhost:8090/refresh  # pull every node now
//
// Semantics under failure: an unreachable node keeps serving its last
// pulled summary (stale, surfaced in /stats) — unless -max-stale bounds
// the staleness, past which the node's contribution is dropped from the
// merge (and the merged N) until a pull succeeds again; a restarted node is
// detected by its changed epoch and its summary replaced wholesale —
// durable nodes replay their WAL and come back cumulative, so nothing
// is ever double-counted; a node running a different algorithm is
// rejected with a clear per-node error. Coordinators stack: freqmerge
// serves GET /summary of its merged state, so a higher tier can pull
// a region's coordinator exactly like a node.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/obs"
	"streamfreq/internal/router"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		nodes     = flag.String("nodes", "", "comma-separated freqd base URLs (this or -router is required)")
		routerURL = flag.String("router", "", "freqrouter base URL: pull its /shardmap and serve partition-exactly")
		interval  = flag.Duration("interval", time.Second, "summary pull cadence")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-node pull timeout")
		algo      = flag.String("algo", "", "required algorithm code; empty adopts the first node's")
		maxStale  = flag.Duration("max-stale", 0, "drop a node's contribution once its data is older than this (0 = serve stale forever)")
		tenants   = flag.Bool("tenants", false, "pull /v1/tenants/summary bundles and merge namespace by namespace (nodes must run freqd -tenants)")
		logFormat = flag.String("log-format", "text", "structured log format: text | json")
		slowQuery = flag.Duration("slow-query", 0, "log requests slower than this at warn level with per-stage timings (0 = off)")
	)
	flag.Parse()
	o, err := obs.New(obs.Options{
		Service:   "freqmerge",
		LogFormat: *logFormat,
		LogWriter: os.Stderr,
		SlowQuery: *slowQuery,
	})
	if err != nil {
		fatal(err)
	}
	switch {
	case *nodes == "" && *routerURL == "":
		fatal(fmt.Errorf("-nodes or -router is required (e.g. -nodes http://host1:8080,http://host2:8080)"))
	case *nodes != "" && *routerURL != "":
		fatal(fmt.Errorf("-nodes and -router are exclusive: the shard map already names every replica"))
	}

	opts := cluster.Options{
		Interval:     *interval,
		Timeout:      *timeout,
		Algo:         *algo,
		MaxStale:     *maxStale,
		TenantMerge:  *tenants,
		MergeEncoded: streamfreq.MergeEncoded,
		Obs:          o,
	}
	if *routerURL != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		m, err := router.FetchShardMap(ctx, nil, *routerURL)
		cancel()
		if err != nil {
			fatal(err)
		}
		opts.ShardMap = m
	} else {
		opts.Nodes = strings.Split(*nodes, ",")
	}

	coord, err := cluster.New(opts)
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		o.Log.Info("draining on signal", "signal", s.String())
		close(stop)
	}()

	if opts.ShardMap != nil {
		replicas := 0
		for _, sh := range opts.ShardMap.Shards {
			replicas += len(sh.Replicas)
		}
		o.Log.Info("serving partition-exact", "shards", len(opts.ShardMap.Shards),
			"replicas", replicas, "interval", *interval, "addr", *addr)
	} else if *tenants {
		o.Log.Info("serving tenant merge", "nodes", len(opts.Nodes), "interval", *interval, "addr", *addr)
	} else {
		o.Log.Info("serving", "nodes", len(opts.Nodes), "interval", *interval, "addr", *addr)
	}
	if err := coord.ListenAndServe(*addr, stop); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqmerge:", err)
	os.Exit(1)
}
