// The durable-summary loop in one process: ingest a Zipf stream
// through a write-ahead-logged Space-Saving summary, checkpoint
// mid-stream, crash without warning (the store is simply abandoned,
// like kill -9), recover into a fresh summary, and verify the
// recovered state is bit-identical to the run it replaces — then shut
// down cleanly and show that the next recovery replays nothing.
//
//	go run ./examples/durable
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/persist"
	"streamfreq/internal/zipf"
)

func main() {
	dir, err := os.MkdirTemp("", "freqd-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := persist.Options{
		Dir:    dir,
		Algo:   "SSH",
		Fsync:  persist.FsyncAlways, // every batch durable before it is acked
		Decode: streamfreq.Decode,
	}

	const (
		phi     = 0.001
		streamN = 500_000
	)
	g, err := zipf.NewGenerator(1<<16, 1.1, 0xD0BE, true)
	if err != nil {
		log.Fatal(err)
	}
	items := g.Stream(streamN)

	// First life: recover (a no-op on the fresh directory), wire the
	// WAL, ingest with one checkpoint partway.
	first := core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1))
	store, err := persist.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Recover(first); err != nil {
		log.Fatal(err)
	}
	first.PersistTo(store)

	const batch = 4096
	for lo := 0; lo < len(items); lo += batch {
		hi := min(lo+batch, len(items))
		first.UpdateBatch(items[lo:hi])
		if lo/batch == (len(items)/batch)/2 {
			if _, err := store.Checkpoint(first); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint at n=%d\n", first.LiveN())
		}
	}
	if err := store.Err(); err != nil {
		log.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	fmt.Printf("ingested n=%d; crashing with %d WAL segment(s) behind the checkpoint\n",
		first.LiveN(), len(segs))
	// The crash: no Close, no final checkpoint — the store is abandoned.

	// Second life: recover into a fresh summary.
	second := core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1))
	store2, err := persist.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := store2.Recover(second)
	if err != nil {
		log.Fatal(err)
	}
	second.PersistTo(store2)
	fmt.Printf("recovered n=%d (checkpoint n=%d + %d WAL records replayed)\n",
		stats.RecoveredN, stats.CheckpointN, stats.ReplayedRecords)

	// The recovered summary must match the crashed one bit for bit —
	// fsync=always made every acknowledged batch durable.
	a, _ := first.SnapshotBarrier(nil)[0].(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	b, _ := second.SnapshotBarrier(nil)[0].(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if !bytes.Equal(a, b) {
		log.Fatal("recovered state differs from the crashed summary")
	}
	fmt.Printf("recovered state is bit-identical to the crashed run (%d-byte encoding)\n", len(a))

	threshold := int64(phi * float64(second.N()))
	fmt.Printf("\ntop items above φn=%d after recovery:\n", threshold)
	for i, ic := range second.Query(threshold) {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %#016x  %d\n", uint64(ic.Item), ic.Count)
	}

	// Clean shutdown: final checkpoint + sealed log → the third life
	// replays zero records.
	if _, err := store2.Checkpoint(second); err != nil {
		log.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		log.Fatal(err)
	}
	third := core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1))
	store3, err := persist.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	stats3, err := store3.Recover(third)
	if err != nil {
		log.Fatal(err)
	}
	defer store3.Close()
	fmt.Printf("\nclean restart: n=%d recovered with %d WAL records replayed\n",
		stats3.RecoveredN, stats3.ReplayedRecords)
}
