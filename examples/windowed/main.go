// Windowed serving: the "trending now" scenario from the paper's
// applications, end to end through freqd's serving stack. Two servers
// ingest the same shifting stream over real HTTP — one serving
// whole-stream heavy hitters (SSH), one serving the last W items
// (-window, the block-decomposed sliding window) — and a breaking-news
// query that takes over the traffic mid-stream shows the difference:
// the windowed /topk surfaces it within one window and drops
// yesterday's hit, while the whole-stream /topk is still dominated by
// accumulated history.
//
// The demo validates itself and exits nonzero on any failure:
// the windowed report must have recall 1 at the φ·W operating point
// against exact counts of the final window, must not report the expired
// query, and the whole-stream report must still carry it (the lag).
//
//	go run ./examples/windowed
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/trace"
)

const (
	phi        = 0.01
	windowSize = 100_000
	blocks     = 10
)

func main() {
	// A windowed freqd and a whole-stream freqd, same φ provisioning.
	win, err := streamfreq.NewWindowedForPhi(phi, windowSize, blocks)
	if err != nil {
		log.Fatal(err)
	}
	windowed := serveTarget(core.NewConcurrent(win).ServeSnapshots(50*time.Millisecond), "SSW")
	whole := serveTarget(core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1)).
		ServeSnapshots(50*time.Millisecond), "SSH")

	// The stream: background search traffic with "yesterday's hit" at 5%
	// for three windows, then the breaking query takes its place for a
	// bit over one window (the window plus its boundary block).
	gen, err := trace.NewHTTP(trace.DefaultHTTPConfig(77))
	if err != nil {
		log.Fatal(err)
	}
	yesterday := streamfreq.HashString("celebrity wedding photos")
	breaking := streamfreq.HashString("solar eclipse live")
	var items []core.Item
	for i := 0; i < 3*windowSize; i++ {
		if i%20 == 0 {
			items = append(items, yesterday)
		} else {
			items = append(items, gen.Next())
		}
	}
	phase2 := windowSize + windowSize/blocks + 5_000
	for i := 0; i < phase2; i++ {
		if i%20 == 0 {
			items = append(items, breaking)
		} else {
			items = append(items, gen.Next())
		}
	}

	for _, url := range []string{windowed, whole} {
		post(url+"/ingest", stream.AppendRaw(nil, items))
		post(url+"/refresh", nil)
	}

	winReport := topk(windowed)
	wholeReport := topk(whole)
	fmt.Printf("after the shift (n=%d total, last %d items are breaking-news traffic):\n", len(items), phase2)
	fmt.Printf("  windowed /topk?phi=%g    (n=%d): %s\n", phi, winReport.N, describe(winReport, yesterday, breaking))
	fmt.Printf("  whole-stream /topk?phi=%g (n=%d): %s\n", phi, wholeReport.N, describe(wholeReport, yesterday, breaking))

	// --- Validation -------------------------------------------------------
	// 1. The windowed threshold is φ·W, not φ·total.
	if winReport.N != windowSize {
		log.Fatalf("windowed /topk n = %d, want W=%d", winReport.N, windowSize)
	}
	// 2. Recall 1 at φ·W against exact counts of the final window.
	exactWin := map[core.Item]int64{}
	for _, it := range items[len(items)-windowSize:] {
		exactWin[it]++
	}
	reported := map[core.Item]bool{}
	for _, r := range winReport.Items {
		reported[core.Item(r.Item)] = true
	}
	threshold := int64(phi * windowSize)
	for it, c := range exactWin {
		if c >= threshold && !reported[it] {
			log.Fatalf("recall failure: item %#x has %d ≥ φ·W=%d occurrences in the final window but is not reported", uint64(it), c, threshold)
		}
	}
	// 3. The windowed view tracks the shift: breaking in, yesterday out.
	if !reported[breaking] {
		log.Fatal("windowed report missed the breaking query")
	}
	if reported[yesterday] {
		log.Fatal("windowed report still carries the expired query")
	}
	// 4. The whole-stream view lags: three windows of accumulated mass
	// keep yesterday's hit above φ·total.
	wholeHas := map[core.Item]bool{}
	for _, r := range wholeReport.Items {
		wholeHas[core.Item(r.Item)] = true
	}
	if !wholeHas[yesterday] {
		log.Fatal("whole-stream report dropped yesterday's hit — the demo premise broke")
	}
	fmt.Println("OK: windowed top-k tracks the recent hot set; whole-stream top-k lags as expected")
}

// serveTarget starts one in-process freqd on a loopback port.
func serveTarget(target serve.Target, algo string) string {
	srv := serve.NewServer(serve.Options{Target: target, Algo: algo})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	return "http://" + ln.Addr().String()
}

type topkReport struct {
	N     int64 `json:"n"`
	Items []struct {
		Item  uint64 `json:"item"`
		Count int64  `json:"count"`
	} `json:"items"`
}

func topk(url string) topkReport {
	resp, err := http.Get(fmt.Sprintf("%s/topk?phi=%g&k=20", url, phi))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out topkReport
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func post(url string, body []byte) {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}

// describe renders a report as a one-line story.
func describe(r topkReport, yesterday, breaking core.Item) string {
	var y, b int64
	for _, it := range r.Items {
		switch core.Item(it.Item) {
		case yesterday:
			y = it.Count
		case breaking:
			b = it.Count
		}
	}
	return fmt.Sprintf("%d items; yesterday=%d breaking=%d", len(r.Items), y, b)
}
