// Distributed: the load-balancing scenario from the paper's
// introduction, run as a real cluster on loopback HTTP. Three freqd
// nodes each ingest their local access stream over the wire; a
// freqmerge coordinator pulls each node's GET /summary blob, merges
// them, and answers for the union — the full production pipeline:
//
//	node ingest → snapshot → Encode → HTTP → Decode → Merge → global query
//
// The demo validates itself against internal/exact on the union stream
// (merged Space-Saving must have perfect recall at φn) and exits
// nonzero on a miss, so CI can run it as a smoke test.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

const (
	nodes      = 3
	opsPerNode = 250_000
	phi        = 0.002
	seed       = 31337 // every node must provision with the same seed
)

func main() {
	truth := exact.New()

	// --- The nodes: real freqd serving layers on loopback ---------------
	var urls []string
	for i := 0; i < nodes; i++ {
		target := core.NewConcurrent(streamfreq.MustNew("SSH", phi, seed)).ServeSnapshots(0)
		srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)

		// Every node sees the same hot keys (global Zipf) plus a suffix
		// of node-private keys — the load-balancer scenario.
		gen, err := zipf.NewGenerator(1<<18, 1.05, 7, true) // same universe on all nodes
		if err != nil {
			log.Fatal(err)
		}
		local := zipf.Uniform(1<<16, uint64(1000+i))
		items := make([]core.Item, opsPerNode)
		for j := range items {
			if j%5 == i%5 { // 20% node-local traffic
				items[j] = local.Next() | core.Item(uint64(i+1)<<60)
			} else {
				items[j] = gen.Next()
			}
			truth.Update(items[j], 1)
		}

		// Over the wire, like production ingest.
		resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
			bytes.NewReader(stream.AppendRaw(nil, items)))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			log.Fatalf("node %d refused ingest: %s: %s", i, resp.Status, body)
		}
		resp.Body.Close()
		fmt.Printf("node %d: ingested %d ops at %s\n", i, len(items), ts.URL)
	}

	// --- The coordinator: freqmerge's engine over the same URLs ---------
	coord, err := cluster.New(cluster.Options{
		Nodes:        urls,
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		log.Fatal(err)
	}
	coord.PullAll(context.Background())
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// --- A client: queries the coordinator exactly like a node ----------
	var tr struct {
		N         int64 `json:"n"`
		Threshold int64 `json:"threshold"`
		Items     []struct {
			Item  uint64 `json:"item"`
			Count int64  `json:"count"`
		} `json:"items"`
	}
	resp, err := http.Get(fmt.Sprintf("%s/topk?phi=%g", cs.URL, phi))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("coordinator /topk: %s: %s", resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("\ncoordinator: %d total ops, %d keys above φn = %d\n\n",
		tr.N, len(tr.Items), tr.Threshold)
	fmt.Println("key                 estimate  exact")
	for i, ic := range tr.Items {
		if i >= 10 {
			fmt.Printf("... (%d more)\n", len(tr.Items)-10)
			break
		}
		fmt.Printf("%#-18x  %8d  %8d\n", ic.Item, ic.Count, truth.Estimate(core.Item(ic.Item)))
	}

	// Validation: merged Space-Saving never misses a key above φn, and
	// the merged stream position is exactly the union length.
	if tr.N != int64(nodes*opsPerNode) {
		log.Fatalf("merged n = %d, want %d", tr.N, nodes*opsPerNode)
	}
	reported := map[core.Item]bool{}
	for _, ic := range tr.Items {
		reported[core.Item(ic.Item)] = true
	}
	missed := 0
	for _, tc := range truth.Query(tr.Threshold) {
		if !reported[tc.Item] {
			missed++
		}
	}
	fmt.Printf("\nrecall check: %d hot keys missed (must be 0)\n", missed)
	if missed != 0 {
		log.Fatal("distributed merge lost heavy hitters")
	}
}
