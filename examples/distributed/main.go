// Distributed: the load-balancing scenario from the paper's introduction.
// Four database shards each summarize their local access stream,
// serialize the summary to bytes, and "ship" it to a coordinator, which
// decodes and merges all four to find the globally hottest keys.
//
// This exercises the full distributed pipeline: independent summaries →
// wire format → decode → merge → global query.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"streamfreq"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

const (
	shards       = 4
	opsPerShard  = 250_000
	phi          = 0.002
	sketchSeed   = 31337 // every shard must use the same hash seed
	counterScale = 1     // counters per 1/φ
)

func main() {
	truth := exact.New()
	blobs := make([][]byte, 0, shards)

	// --- At each shard ---------------------------------------------------
	for shard := 0; shard < shards; shard++ {
		// Every shard sees the same hot keys (global Zipf) plus a local
		// suffix of shard-private keys.
		gen, err := zipf.NewGenerator(1<<18, 1.05, 7, true) // same universe on all shards
		if err != nil {
			log.Fatal(err)
		}
		local := zipf.Uniform(1<<16, uint64(1000+shard))

		s := streamfreq.NewSpaceSaving(counterScale * int(1/phi))
		for i := 0; i < opsPerShard; i++ {
			var key streamfreq.Item
			if i%5 == shard%5 { // 20% shard-local traffic
				key = local.Next() | streamfreq.Item(uint64(shard+1)<<60)
			} else {
				key = gen.Next()
			}
			s.Update(key, 1)
			truth.Update(key, 1)
		}

		blob, err := s.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d: summarized %d ops into %d bytes\n", shard, s.N(), len(blob))
		blobs = append(blobs, blob)
	}

	// --- At the coordinator ----------------------------------------------
	decoded := make([]streamfreq.Summary, len(blobs))
	for i, blob := range blobs {
		s, err := streamfreq.Decode(blob)
		if err != nil {
			log.Fatalf("decoding shard %d: %v", i, err)
		}
		decoded[i] = s
	}
	global := decoded[0]
	for _, s := range decoded[1:] {
		if err := global.(streamfreq.Merger).Merge(s); err != nil {
			log.Fatal(err)
		}
	}

	total := global.N()
	threshold := int64(phi * float64(total))
	hot := global.Query(threshold)

	fmt.Printf("\ncoordinator: %d total ops, %d keys above φn = %d\n\n",
		total, len(hot), threshold)
	fmt.Println("key                 estimate  exact")
	for i, ic := range hot {
		if i >= 10 {
			fmt.Printf("... (%d more)\n", len(hot)-10)
			break
		}
		fmt.Printf("%#-18x  %8d  %8d\n", uint64(ic.Item), ic.Count, truth.Estimate(ic.Item))
	}

	// Validation: merged Space-Saving never misses a key above φn.
	reported := map[streamfreq.Item]bool{}
	for _, ic := range hot {
		reported[ic.Item] = true
	}
	missed := 0
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			missed++
		}
	}
	fmt.Printf("\nrecall check: %d hot keys missed (must be 0)\n", missed)
}
