// Netflow: detect elephant flows in router traffic, the networking
// motivation of the paper's introduction.
//
// Two simulated routers each summarize their own packet stream with a
// Count-Min hierarchy. The network operations center merges both
// summaries and queries for flows exceeding 0.1% of total traffic —
// without ever seeing a raw packet.
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"

	"streamfreq"
	"streamfreq/internal/exact"
	"streamfreq/internal/trace"
)

func main() {
	const (
		packetsPerRouter = 500_000
		phi              = 0.001
	)

	// The two routers must use the same sketch parameters (including
	// seed) for their summaries to be mergeable.
	cfg := streamfreq.HierarchyConfig{Depth: 4, Width: 2048, Bits: 8, Seed: 7}
	routerA, err := streamfreq.NewCountMinHierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	routerB, err := streamfreq.NewCountMinHierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth := exact.New() // omniscient observer, for validation only

	// Each router sees an independent heavy-tailed flow mix. Fewer
	// concurrent flows with a heavier tail than the defaults, so real
	// elephants (>0.1% of traffic) exist in a half-million-packet window.
	for i, seed := range []uint64{101, 202} {
		ucfg := trace.DefaultUDPConfig(seed)
		ucfg.ActiveFlows = 256
		ucfg.Alpha = 1.1
		gen, err := trace.NewUDP(ucfg)
		if err != nil {
			log.Fatal(err)
		}
		sketch := routerA
		if i == 1 {
			sketch = routerB
		}
		for p := 0; p < packetsPerRouter; p++ {
			flow := gen.Next()
			sketch.Update(flow, 1)
			truth.Update(flow, 1)
		}
	}

	// NOC: merge router B's summary into router A's.
	if err := routerA.Merge(routerB); err != nil {
		log.Fatal(err)
	}

	total := routerA.N()
	threshold := int64(phi * float64(total))
	elephants := routerA.Query(threshold)

	fmt.Printf("total packets: %d across 2 routers; elephant threshold: %d packets\n",
		total, threshold)
	fmt.Printf("merged sketch: %d bytes\n\n", routerA.Bytes())
	fmt.Println("flow                estimate  exact     error")
	for _, f := range elephants {
		ex := truth.Estimate(f.Item)
		fmt.Printf("%#-18x  %8d  %8d  %+d\n", uint64(f.Item), f.Count, ex, f.Count-ex)
	}

	// Sanity: nothing above threshold may be missing (Count-Min never
	// underestimates, so the hierarchy cannot miss).
	reported := make(map[streamfreq.Item]bool, len(elephants))
	for _, f := range elephants {
		reported[f.Item] = true
	}
	missed := 0
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			missed++
		}
	}
	fmt.Printf("\nrecall check: %d true elephants missed (must be 0)\n", missed)
}
