// Netflow: hierarchical heavy hitters over IP prefixes — the paper's
// headline networking scenario, self-validating end to end.
//
// Two simulated border routers each sketch their own packet stream
// with a Count-Min hierarchy over the 32-bit IPv4 source space (byte
// levels: /32, /24, /16, /8). The network operations center merges
// both summaries and asks one question at every granularity at once:
// which prefixes carry more than φ of total traffic, and which of
// those are heavy *beyond* their already-reported children (the HHH
// discount rule of Cormode et al.)?
//
// The planted traffic makes the distinction visible:
//
//   - three elephant flows: single source IPs heavy on their own, so
//     their /24 and /16 parents appear in the report but carry no
//     residual weight of their own (HHH=false — "heavy because one
//     child is heavy");
//   - a botnet /24: two hundred distinct sources, each far below the
//     threshold individually, whose aggregate is unmissable — no /32
//     crosses the threshold, the prefix does (HHH=true at /24);
//   - uniform background noise that no prefix below /8 accumulates.
//
// The example validates itself against an omniscient per-level exact
// count and exits nonzero if the merged report misses a single true
// heavy prefix (Count-Min never underestimates, so recall must be
// perfect), under-reports any count, or mislabels the planted
// patterns. CI runs it as part of the distributed-e2e job.
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"

	"streamfreq"
	"streamfreq/internal/prng"
)

const (
	packetsPerRouter = 400_000
	phi              = 0.001 // a heavy prefix carries ≥ 0.1% of traffic
	botnetHosts      = 200
)

// ip assembles a dotted quad into the uint32 the hierarchy sketches.
func ip(a, b, c, d uint64) streamfreq.Item {
	return streamfreq.Item(a<<24 | b<<16 | c<<8 | d)
}

// cidr renders a level-j prefix (the IP's top bits, shifted) as CIDR.
func cidr(prefix uint64, level int) string {
	v := uint32(prefix << (8 * level))
	return fmt.Sprintf("%d.%d.%d.%d/%d", v>>24, v>>16&0xff, v>>8&0xff, v&0xff, 32-8*level)
}

var (
	elephants = []streamfreq.Item{ // single flows above φ on their own
		ip(203, 0, 113, 77),
		ip(192, 0, 2, 10),
		ip(198, 18, 5, 5),
	}
	botnet = ip(198, 51, 100, 0) >> 8 // the /24 whose hosts are each light
)

// packets synthesizes one router's traffic mix: 2% per elephant, 3%
// spread across the botnet /24, the rest uniform background noise no
// fine prefix accumulates.
func packets(seed uint64) []streamfreq.Item {
	rng := prng.New(seed)
	out := make([]streamfreq.Item, packetsPerRouter)
	for i := range out {
		switch roll := rng.Uint64n(100); {
		case roll < 6:
			out[i] = elephants[roll%3]
		case roll < 9:
			out[i] = streamfreq.Item(uint64(botnet)<<8 | rng.Uint64n(botnetHosts))
		default:
			out[i] = streamfreq.Item((24+rng.Uint64n(4))<<24 | rng.Uint64n(1<<24))
		}
	}
	return out
}

func main() {
	// Identical geometry (and seed) on both routers is what makes the
	// summaries mergeable. UniverseBits 32 with Bits 8 gives the four
	// byte-boundary levels of IPv4.
	cfg := streamfreq.HierarchyConfig{Depth: 4, Width: 4096, Bits: 8, UniverseBits: 32, Seed: 7}
	routerA, err := streamfreq.NewCountMinHierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	routerB, err := streamfreq.NewCountMinHierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Each router sees its own stream; the exact per-level truth over
	// the union exists only for validation — the NOC never holds it.
	streams := [][]streamfreq.Item{packets(101), packets(202)}
	for _, p := range streams[0] {
		routerA.Update(p, 1)
	}
	for _, p := range streams[1] {
		routerB.Update(p, 1)
	}

	// NOC: merge router B's summary into router A's and query the
	// hierarchy at every level in one call.
	if err := routerA.Merge(routerB); err != nil {
		log.Fatal(err)
	}
	total := routerA.N()
	threshold := int64(phi * float64(total))
	report := routerA.HeavyPrefixes(threshold)

	fmt.Printf("total packets: %d across 2 routers; heavy threshold: %d packets (φ=%g)\n",
		total, threshold, phi)
	fmt.Printf("merged sketch: %d bytes\n\n", routerA.Bytes())
	fmt.Println("prefix               level  estimate  residual  hhh")
	for _, pc := range report {
		mark := ""
		if pc.HHH {
			mark = "  <- heavy beyond its children"
		}
		fmt.Printf("%-20s  /%d  %8d  %8d  %-5v%s\n",
			cidr(uint64(pc.Prefix), pc.Level), 32-8*pc.Level, pc.Count, pc.Residual, pc.HHH, mark)
	}

	// ── Validation ──────────────────────────────────────────────────
	// Exact truth per level over the union stream.
	truth := make([]map[uint64]int64, 4)
	for level := range truth {
		truth[level] = make(map[uint64]int64)
		for _, s := range streams {
			for _, p := range s {
				truth[level][uint64(p)>>(8*level)]++
			}
		}
	}
	reported := make(map[int]map[uint64]int64)
	flagged := make(map[int]map[uint64]bool)
	for _, pc := range report {
		if reported[pc.Level] == nil {
			reported[pc.Level] = make(map[uint64]int64)
			flagged[pc.Level] = make(map[uint64]bool)
		}
		reported[pc.Level][uint64(pc.Prefix)] = pc.Count
		flagged[pc.Level][uint64(pc.Prefix)] = pc.HHH
	}

	// Recall 1 at every level: Count-Min overestimates only, so a true
	// heavy prefix cannot dodge the frontier walk.
	missed := 0
	for level := range truth {
		for prefix, exact := range truth[level] {
			if exact < threshold {
				continue
			}
			got, ok := reported[level][prefix]
			if !ok {
				log.Printf("MISSED %s: true count %d ≥ %d not reported", cidr(prefix, level), exact, threshold)
				missed++
				continue
			}
			if got < exact {
				log.Fatalf("%s: estimate %d underestimates true %d", cidr(prefix, level), got, exact)
			}
		}
	}
	if missed > 0 {
		log.Fatalf("recall check failed: %d true heavy prefixes missed", missed)
	}

	// The planted patterns carry the story: every elephant is heavy at
	// /32, and the botnet /24 is an HHH with no reported member flow.
	for _, e := range elephants {
		if _, ok := reported[0][uint64(e)]; !ok {
			log.Fatalf("elephant %s missing from the /32 level", cidr(uint64(e), 0))
		}
	}
	if !flagged[1][uint64(botnet)] {
		log.Fatalf("botnet %s not flagged HHH — its weight is unexplained by children and must be", cidr(uint64(botnet), 1))
	}
	for prefix := range reported[0] {
		if prefix>>8 == uint64(botnet) {
			log.Fatalf("botnet host %s reported at /32 — each host was planted far below threshold", cidr(prefix, 0))
		}
	}
	fmt.Printf("\nvalidation: recall 1 at all 4 levels, no underestimates, botnet /24 flagged HHH with no member /32 reported\n")
}
