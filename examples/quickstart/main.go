// Quickstart: find the frequent items of a skewed stream with
// Space-Saving and verify the report against exact counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streamfreq"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func main() {
	const (
		n   = 1_000_000 // stream length
		phi = 0.005     // report items above 0.5% of the stream
	)

	// A Zipf(1.1) stream over a million distinct items — the workload the
	// paper's synthetic experiments use.
	gen, err := zipf.NewGenerator(1<<20, 1.1, 42, true)
	if err != nil {
		log.Fatal(err)
	}

	// One Space-Saving summary with 1/φ counters: ~16 KiB of state for a
	// stream of any length, with a deterministic guarantee that nothing
	// above φn is missed.
	summary := streamfreq.NewSpaceSaving(int(1 / phi))

	// Ground truth for comparison (what the paper's introduction rules
	// out at scale: one counter per distinct item).
	truth := exact.New()

	for i := 0; i < n; i++ {
		item := gen.Next()
		summary.Update(item, 1)
		truth.Update(item, 1)
	}

	threshold := int64(phi * n)
	report := summary.Query(threshold)

	fmt.Printf("stream: %d items, %d distinct\n", n, truth.Distinct())
	fmt.Printf("exact counter: %8d bytes\n", truth.Bytes())
	fmt.Printf("space-saving:  %8d bytes (%.1f%% of exact)\n\n",
		summary.Bytes(), 100*float64(summary.Bytes())/float64(truth.Bytes()))

	fmt.Printf("items above φn = %d:\n", threshold)
	fmt.Println("rank  estimate  exact     item")
	for i, ic := range report {
		fmt.Printf("%4d  %8d  %8d  %#x\n", i+1, ic.Count, truth.Estimate(ic.Item), uint64(ic.Item))
	}
}
