// Trending: heavy hitters over the *recent* stream only — a sliding
// window of the last 100k queries — so yesterday's hits decay away and a
// newly hot query surfaces within one window. Also keeps a GK quantile
// summary of per-query latencies, the companion summary class.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"

	"streamfreq"
	"streamfreq/internal/prng"
	"streamfreq/internal/trace"
)

func main() {
	const (
		windowSize = 100_000
		phi        = 0.01
	)

	win, err := streamfreq.NewWindow(windowSize, 10, 2*int(1/phi))
	if err != nil {
		log.Fatal(err)
	}
	lat := streamfreq.NewQuantile(0.01)
	rng := prng.New(5)

	gen, err := trace.NewHTTP(trace.DefaultHTTPConfig(77))
	if err != nil {
		log.Fatal(err)
	}

	// Epoch 1: steady state, 3 windows long.
	for i := 0; i < 3*windowSize; i++ {
		win.Update(gen.Next())
		lat.Insert(rng.ExpFloat64() * 20) // ms, exponential service times
	}
	fmt.Println("epoch 1 (steady state):")
	show(win, phi)

	// Epoch 2: a breaking query takes over 5% of traffic.
	breaking := streamfreq.HashString("solar eclipse live")
	for i := 0; i < windowSize; i++ {
		q := gen.Next()
		if i%20 == 0 {
			q = breaking
		}
		win.Update(q)
		lat.Insert(rng.ExpFloat64() * 35) // load raises latency
	}
	fmt.Println("\nepoch 2 (breaking news, one window later):")
	show(win, phi)
	if est := win.Estimate(breaking); est < int64(0.04*windowSize) {
		log.Fatalf("breaking query estimate %d; window failed to surface it", est)
	}

	// Epoch 3: the story dies; two windows later it must be gone.
	for i := 0; i < 2*windowSize+windowSize/5; i++ {
		win.Update(gen.Next())
	}
	fmt.Println("\nepoch 3 (two windows after the story died):")
	show(win, phi)
	if est := win.Estimate(breaking); est > win.Slack() {
		log.Fatalf("stale query still estimated at %d (slack %d)", est, win.Slack())
	}

	p50, _ := lat.Quantile(0.5)
	p99, _ := lat.Quantile(0.99)
	fmt.Printf("\nlatency summary over %d requests: p50=%.1fms p99=%.1fms (%d tuples, %d bytes)\n",
		lat.N(), p50, p99, lat.Size(), lat.Bytes())
}

func show(win interface {
	Query(int64) []streamfreq.ItemCount
	Size() int
}, phi float64) {
	hot := win.Query(int64(phi * float64(win.Size())))
	fmt.Printf("  %d queries above %.0f%% of the window\n", len(hot), 100*phi)
	for i, ic := range hot {
		if i >= 5 {
			fmt.Printf("  ... (%d more)\n", len(hot)-5)
			break
		}
		fmt.Printf("  %#-18x %d\n", uint64(ic.Item), ic.Count)
	}
}
