// Serving: queries answered while the stream is still arriving — the
// freqd scenario. An in-process freqd server ingests a Zipf stream over
// real HTTP (binary batches, two concurrent writers) while a client
// polls /topk and /stats against whatever epoch snapshot is being
// served; at the end a forced /refresh cuts over and the final report is
// checked against exact counts.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

const (
	phi       = 0.001
	seed      = 1
	streamN   = 1_000_000
	staleness = 50 * time.Millisecond
)

func main() {
	// --- The server side --------------------------------------------------
	// Queries are served from epoch snapshots refreshed at most every
	// `staleness`, so the poll loop below never touches the ingest lock.
	target := core.NewConcurrent(streamfreq.MustNew("SSH", phi, seed)).ServeSnapshots(staleness)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("freqd serving SSH (φ=%g, staleness=%v) on %s\n\n", phi, staleness, base)

	// --- The writer side: two clients streaming binary batches ------------
	gen, err := zipf.NewGenerator(1<<18, 1.1, 7, true)
	if err != nil {
		log.Fatal(err)
	}
	items := gen.Stream(streamN)
	truth := exact.New()
	for _, it := range items {
		truth.Update(it, 1)
	}

	var wg sync.WaitGroup
	const chunk = 64 * 1024
	half := len(items) / 2
	for w, part := range [][]streamfreq.Item{items[:half], items[half:]} {
		wg.Add(1)
		go func(w int, part []streamfreq.Item) {
			defer wg.Done()
			for len(part) > 0 {
				n := min(chunk, len(part))
				body := stream.AppendRaw(nil, part[:n])
				resp, err := http.Post(base+"/ingest", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
				resp.Body.Close()
				part = part[n:]
			}
		}(w, part)
	}

	// --- The reader side: polling mid-ingest -------------------------------
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
poll:
	for {
		select {
		case <-done:
			break poll
		case <-ticker.C:
			var st struct {
				N        int64 `json:"n"`
				Snapshot struct {
					AsOfN int64 `json:"as_of_n"`
					AgeMs int64 `json:"age_ms"`
				} `json:"snapshot"`
			}
			getJSON(base+"/stats", &st)
			fmt.Printf("mid-ingest: served n=%d (snapshot age %dms, ingest at n=%d)\n",
				st.Snapshot.AsOfN, st.Snapshot.AgeMs, st.N)
		}
	}

	// --- Cutover and final report ------------------------------------------
	resp, err := http.Post(base+"/refresh", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	var tr struct {
		N         int64 `json:"n"`
		Threshold int64 `json:"threshold"`
		Items     []struct {
			Item  uint64 `json:"item"`
			Count int64  `json:"count"`
		} `json:"items"`
	}
	getJSON(fmt.Sprintf("%s/topk?phi=%g&k=10", base, phi), &tr)

	fmt.Printf("\nfinal /topk at φn = %d (n = %d):\n", tr.Threshold, tr.N)
	fmt.Println("key                 estimate  exact")
	for _, ic := range tr.Items {
		fmt.Printf("%#-18x  %8d  %8d\n", ic.Item, ic.Count, truth.Estimate(streamfreq.Item(ic.Item)))
	}

	missed := 0
	reported := map[uint64]bool{}
	for _, ic := range tr.Items {
		reported[ic.Item] = true
	}
	var trAll struct {
		Items []struct {
			Item uint64 `json:"item"`
		} `json:"items"`
	}
	getJSON(fmt.Sprintf("%s/topk?phi=%g", base, phi), &trAll)
	inReport := map[uint64]bool{}
	for _, ic := range trAll.Items {
		inReport[ic.Item] = true
	}
	for _, tc := range truth.Query(tr.Threshold) {
		if !inReport[uint64(tc.Item)] {
			missed++
		}
	}
	fmt.Printf("\nrecall check: %d hot keys missed (must be 0)\n", missed)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}
