// Queries: find the search queries whose popularity changed most between
// two time windows — the max-change problem of Charikar, Chen &
// Farach-Colton §4.2, and the "Google Zeitgeist" motivation of the
// original Count-Sketch paper.
//
// Window 1 and window 2 are sketched independently with identical
// Count-Sketch parameters. Subtracting the sketches yields a sketch of
// the frequency *difference* vector; the largest |estimates| are the
// trending (or collapsing) queries.
//
//	go run ./examples/queries
package main

import (
	"fmt"
	"log"
	"sort"

	"streamfreq"
	"streamfreq/internal/sketches"
	"streamfreq/internal/trace"
)

func main() {
	const (
		window = 400_000
		topK   = 8
	)

	// Identical parameters (and seed) make the two sketches subtractable.
	newSketch := func() *trackedCS {
		return &trackedCS{cs: streamfreq.NewCountSketch(7, 4096, 99)}
	}
	w1, w2 := newSketch(), newSketch()

	// Window 1: the base query distribution.
	gen, err := trace.NewHTTP(trace.DefaultHTTPConfig(2024))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < window; i++ {
		w1.update(gen.Next())
	}

	// Window 2: same distribution plus a breaking-news surge and one
	// formerly popular query going quiet.
	surging := streamfreq.Item(0xBEEFCAFE)
	for i := 0; i < window; i++ {
		q := gen.Next()
		if i%40 == 0 { // 2.5% of window-2 traffic is the surging query
			q = surging
		}
		w2.update(q)
	}

	// Difference sketch: w2 − w1.
	if err := w2.cs.Subtract(w1.cs); err != nil {
		log.Fatal(err)
	}

	// Candidate set: queries seen in either window (both windows tracked
	// their heavy queries; the union is the §4.2 second-pass candidate
	// list).
	candidates := map[streamfreq.Item]bool{surging: true}
	for _, it := range w1.seen {
		candidates[it] = true
	}
	for _, it := range w2.seen {
		candidates[it] = true
	}

	type change struct {
		item  streamfreq.Item
		delta int64
	}
	var changes []change
	for it := range candidates {
		d := w2.cs.Estimate(it)
		changes = append(changes, change{it, d})
	}
	sort.Slice(changes, func(i, j int) bool {
		return abs(changes[i].delta) > abs(changes[j].delta)
	})

	fmt.Printf("top-%d frequency changes between windows (%d queries candidate set):\n\n",
		topK, len(candidates))
	fmt.Println("query               Δ estimate   direction")
	for i, c := range changes {
		if i >= topK {
			break
		}
		dir := "rising"
		if c.delta < 0 {
			dir = "falling"
		}
		marker := ""
		if c.item == surging {
			marker = "   <- planted surge"
		}
		fmt.Printf("%#-18x  %+10d   %s%s\n", uint64(c.item), c.delta, dir, marker)
	}
}

// trackedCS pairs a Count Sketch with a bounded sample of heavy queries
// seen, which serves as the candidate list for the change scan.
type trackedCS struct {
	cs    *sketches.CountSketch
	seen  []streamfreq.Item
	dedup map[streamfreq.Item]bool
}

func (t *trackedCS) update(q streamfreq.Item) {
	t.cs.Update(q, 1)
	if t.dedup == nil {
		t.dedup = map[streamfreq.Item]bool{}
	}
	// Keep the first few thousand distinct queries as candidates; a
	// production system would use the paper's heap of top estimates.
	if !t.dedup[q] && len(t.seen) < 4000 {
		t.dedup[q] = true
		t.seen = append(t.seen, q)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
