// Queries: two demos of the summaries answering more than point top-k.
//
// Part 1 finds the search queries whose popularity changed most
// between two time windows — the max-change problem of Charikar, Chen
// & Farach-Colton §4.2, and the "Google Zeitgeist" motivation of the
// original Count-Sketch paper. Window 1 and window 2 are sketched
// independently with identical Count-Sketch parameters; subtracting
// the sketches yields a sketch of the frequency *difference* vector,
// and the largest |estimates| are the trending (or collapsing)
// queries.
//
// Part 2 serves range and quantile queries over loopback HTTP: a GK
// quantile summary behind the real freqd serving stack answers
// GET /v1/quantile?q= and GET /v1/range?lo=&hi= on a latency-shaped
// stream, and both answers are validated against exact order
// statistics — the example exits nonzero if either leaves the ε·N
// guarantee.
//
//	go run ./examples/queries
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/prng"
	"streamfreq/internal/serve"
	"streamfreq/internal/sketches"
	"streamfreq/internal/stream"
	"streamfreq/internal/trace"
)

func main() {
	maxChangeDemo()
	rangeQuantileDemo()
}

func maxChangeDemo() {
	const (
		window = 400_000
		topK   = 8
	)

	// Identical parameters (and seed) make the two sketches subtractable.
	newSketch := func() *trackedCS {
		return &trackedCS{cs: streamfreq.NewCountSketch(7, 4096, 99)}
	}
	w1, w2 := newSketch(), newSketch()

	// Window 1: the base query distribution.
	gen, err := trace.NewHTTP(trace.DefaultHTTPConfig(2024))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < window; i++ {
		w1.update(gen.Next())
	}

	// Window 2: same distribution plus a breaking-news surge and one
	// formerly popular query going quiet.
	surging := streamfreq.Item(0xBEEFCAFE)
	for i := 0; i < window; i++ {
		q := gen.Next()
		if i%40 == 0 { // 2.5% of window-2 traffic is the surging query
			q = surging
		}
		w2.update(q)
	}

	// Difference sketch: w2 − w1.
	if err := w2.cs.Subtract(w1.cs); err != nil {
		log.Fatal(err)
	}

	// Candidate set: queries seen in either window (both windows tracked
	// their heavy queries; the union is the §4.2 second-pass candidate
	// list).
	candidates := map[streamfreq.Item]bool{surging: true}
	for _, it := range w1.seen {
		candidates[it] = true
	}
	for _, it := range w2.seen {
		candidates[it] = true
	}

	type change struct {
		item  streamfreq.Item
		delta int64
	}
	var changes []change
	for it := range candidates {
		d := w2.cs.Estimate(it)
		changes = append(changes, change{it, d})
	}
	sort.Slice(changes, func(i, j int) bool {
		return abs(changes[i].delta) > abs(changes[j].delta)
	})

	fmt.Printf("top-%d frequency changes between windows (%d queries candidate set):\n\n",
		topK, len(candidates))
	fmt.Println("query               Δ estimate   direction")
	for i, c := range changes {
		if i >= topK {
			break
		}
		dir := "rising"
		if c.delta < 0 {
			dir = "falling"
		}
		marker := ""
		if c.item == surging {
			marker = "   <- planted surge"
		}
		fmt.Printf("%#-18x  %+10d   %s%s\n", uint64(c.item), c.delta, dir, marker)
	}
}

// rangeQuantileDemo is part 2: the same serving stack cmd/freqd wraps,
// on a loopback listener, with a GK quantile summary behind it —
// `freqd -algo gk` in miniature. Latency-shaped samples go in through
// POST /v1/ingest; /v1/quantile and /v1/range answers come out and are
// checked against exact order statistics.
func rangeQuantileDemo() {
	const (
		samples = 200_000
		phi     = 0.01 // ε = φ/2: ranks are exact to within 1% of N
	)
	gk, err := streamfreq.NewQuantileForPhi(phi)
	if err != nil {
		log.Fatal(err)
	}
	target := core.NewConcurrent(gk).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "GK"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A right-skewed latency distribution (microseconds): most requests
	// fast, a long tail — the shape quantiles exist for.
	rng := prng.New(0x1A7E)
	values := make([]streamfreq.Item, samples)
	for i := range values {
		v := 500 + rng.Uint64n(2_000) // the fast common case
		if rng.Uint64n(100) < 5 {     // 5% slow tail
			v = 10_000 + rng.Uint64n(190_000)
		}
		values[i] = streamfreq.Item(v)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/octet-stream",
		bytes.NewReader(stream.AppendRaw(nil, values)))
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("ingest: %v (%v)", err, resp.Status)
	}
	resp.Body.Close()

	// Exact order statistics for validation.
	sorted := make([]uint64, len(values))
	for i, v := range values {
		sorted[i] = uint64(v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(v uint64) int64 { // #samples ≤ v
		return int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
	}
	slack := int64(phi * samples) // 2·εN, the served guarantee

	fmt.Printf("\n\nlatency quantiles over HTTP (%d samples, GK ε=%g):\n\n", samples, phi/2)
	fmt.Println("q      value (µs)   exact rank   target rank")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		var qr struct {
			Value uint64 `json:"value"`
			N     int64  `json:"n"`
		}
		getInto(ts.URL+fmt.Sprintf("/v1/quantile?q=%g", q), &qr)
		targetRank := int64(q * samples)
		fmt.Printf("%-5g  %10d   %10d   %10d\n", q, qr.Value, rank(qr.Value), targetRank)
		if d := rank(qr.Value) - targetRank; d > slack || d < -slack {
			log.Fatalf("q=%g: served value %d sits at rank %d, > %d off target %d",
				q, qr.Value, rank(qr.Value), slack, targetRank)
		}
	}

	// Range count: how many requests took 10ms or longer? (The planted
	// tail is 5% of traffic.)
	var rr struct {
		Estimate int64 `json:"estimate"`
	}
	getInto(ts.URL+"/v1/range?lo=10000&hi=200000", &rr)
	exact := rank(200_000) - rank(9_999)
	fmt.Printf("\nrequests in [10ms, 200ms]: served %d, exact %d (ε·N = %d)\n", rr.Estimate, exact, slack)
	if d := rr.Estimate - exact; d > 2*slack || d < -2*slack {
		log.Fatalf("range estimate %d vs exact %d: outside 2·slack %d", rr.Estimate, exact, 2*slack)
	}
	fmt.Println("validation: quantile and range answers within the ε·N rank guarantee")
}

// getInto fetches a JSON endpoint or dies.
func getInto(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

// trackedCS pairs a Count Sketch with a bounded sample of heavy queries
// seen, which serves as the candidate list for the change scan.
type trackedCS struct {
	cs    *sketches.CountSketch
	seen  []streamfreq.Item
	dedup map[streamfreq.Item]bool
}

func (t *trackedCS) update(q streamfreq.Item) {
	t.cs.Update(q, 1)
	if t.dedup == nil {
		t.dedup = map[streamfreq.Item]bool{}
	}
	// Keep the first few thousand distinct queries as candidates; a
	// production system would use the paper's heap of top estimates.
	if !t.dedup[q] && len(t.seen) < 4000 {
		t.dedup[q] = true
		t.seen = append(t.seen, q)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
