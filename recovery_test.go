package streamfreq

// Crash-recovery fidelity, registry-wide: run every algorithm behind
// the durability layer, kill it without warning (no Close, WAL torn at
// an arbitrary byte offset), recover, and require the recovered summary
// to be bit-identical — compared by Encode, which
// TestEncodeDeterministicRegistry makes meaningful — to a fresh summary
// fed exactly the durable prefix with the original batch boundaries.
// This is the paper's long-lived-infrastructure scenario: restarting an
// ISP-side summary must put it at some true point of its own past, not
// merely near one.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/persist"
	"streamfreq/internal/prng"
	"streamfreq/internal/zipf"
)

// crashStream builds the workload as uneven batches, the unit the WAL
// logs and therefore the unit recovery can be truncated to.
func crashStream(t testing.TB) [][]Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<13, 1.1, 0x5EED5, true)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream(24_000)
	sizes := []int{1024, 1, 4096, 257, 2048}
	var batches [][]Item
	for i := 0; len(s) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n > len(s) {
			n = len(s)
		}
		batches = append(batches, s[:n])
		s = s[n:]
	}
	return batches
}

// lastSegment returns the path of the highest-sequence WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs) // zero-padded sequence numbers sort correctly
	return segs[len(segs)-1]
}

func marshalState(t *testing.T, target persist.Target) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range target.SnapshotBarrier(nil) {
		blob, err := c.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(blob)
	}
	return buf.Bytes()
}

// checkCrashRecovery runs one kill-at-arbitrary-offset round for one
// target factory and one truncation draw.
func checkCrashRecovery(t *testing.T, algo string, mkTarget func() persist.Target, cutSeed uint64) {
	t.Helper()
	batches := crashStream(t)
	dir := t.TempDir()
	opts := persist.Options{Dir: dir, Algo: algo, Fsync: persist.FsyncAlways, Decode: Decode}

	// Original run: recover (fresh), wire the WAL, ingest with a
	// checkpoint partway, then crash — no Close, no final checkpoint.
	orig := mkTarget()
	st, err := persist.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(orig); err != nil {
		t.Fatal(err)
	}
	orig.PersistTo(st)
	ckptAt := 2 * len(batches) / 5
	for _, b := range batches[:ckptAt] {
		orig.UpdateBatch(b)
	}
	if _, err := st.Checkpoint(orig); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for _, b := range batches[ckptAt:] {
		orig.UpdateBatch(b)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// The crash: tear the live segment at an arbitrary offset past its
	// 24-byte header.
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	const header = 24
	span := fi.Size() - header
	if span <= 0 {
		t.Fatalf("segment %s has no record bytes to tear", path)
	}
	cut := header + int64(prng.New(cutSeed).Uint64n(uint64(span)))
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh target.
	rec := mkTarget()
	st2, err := persist.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := st2.Recover(rec)
	if err != nil {
		t.Fatalf("recovery after tear at offset %d: %v", cut, err)
	}
	defer st2.Close()

	// The durable prefix is the checkpointed batches plus every WAL
	// record that survived the tear, in order — recovery can never hold
	// more than was written, nor less than was durable.
	durable := ckptAt + stats.ReplayedRecords
	if durable > len(batches) {
		t.Fatalf("recovered %d batches, only %d were ever ingested", durable, len(batches))
	}
	fresh := mkTarget()
	for _, b := range batches[:durable] {
		fresh.UpdateBatch(b)
	}
	if rec.LiveN() != fresh.LiveN() || rec.LiveN() != stats.RecoveredN {
		t.Fatalf("recovered N=%d (stats %d), durable prefix has %d", rec.LiveN(), stats.RecoveredN, fresh.LiveN())
	}
	if !bytes.Equal(marshalState(t, rec), marshalState(t, fresh)) {
		t.Fatalf("recovered state is not bit-identical to the durable prefix (tear at %d, %d/%d batches durable)",
			cut, durable, len(batches))
	}

	// Observational spot check at the φn operating point, on top of the
	// byte-level identity.
	n := fresh.LiveN()
	threshold := n / 200 // φ = 0.005
	if threshold < 1 {
		threshold = 1
	}
	gq, wq := rec.Query(threshold), fresh.Query(threshold)
	if len(gq) != len(wq) {
		t.Fatalf("Query(φn): %d items recovered vs %d fresh", len(gq), len(wq))
	}
	for i := range wq {
		if gq[i] != wq[i] {
			t.Fatalf("Query(φn)[%d] = %+v, want %+v", i, gq[i], wq[i])
		}
	}
}

// TestCrashRecoveryRegistry is the acceptance property over the full
// registry, each algorithm torn at two independently drawn offsets.
func TestCrashRecoveryRegistry(t *testing.T) {
	const phi, seed = 0.0025, 42
	for _, algo := range Algorithms() {
		for round := uint64(0); round < 2; round++ {
			t.Run(fmt.Sprintf("%s/tear-%d", algo, round), func(t *testing.T) {
				checkCrashRecovery(t, algo, func() persist.Target {
					return core.NewConcurrent(MustNew(algo, phi, seed))
				}, 0xABCD00+round*977+uint64(len(algo)))
			})
		}
	}
}

// TestCrashRecoverySharded runs the same property through the Sharded
// wrapper: the WAL logs pre-scatter batches, the checkpoint holds
// per-shard blobs, and recovery re-scatters identically.
func TestCrashRecoverySharded(t *testing.T) {
	for round := uint64(0); round < 2; round++ {
		t.Run(fmt.Sprintf("SSH-4shards/tear-%d", round), func(t *testing.T) {
			checkCrashRecovery(t, "SSH", func() persist.Target {
				return core.NewSharded(4, func() core.Summary {
					return MustNew("SSH", 0.0025, 42)
				})
			}, 0xF00D+round)
		})
	}
}

// TestCrashRecoveryWindowed runs the kill-at-arbitrary-offset property
// through the sliding-window summary, pinning the expiring-block
// durability contract: the checkpoint holds only the live ring (WN01),
// the WAL tail's batch records reconstruct block boundaries (a pure
// function of stream position), and the recovered window re-encodes
// bit-identically to a fresh window fed exactly the durable prefix —
// including the blocks that expired before the crash, which are absent
// from both.
// TestCrashRecoveryGK runs the kill-at-arbitrary-offset property
// through the quantile summary: the GK01 checkpoint carries the
// compression phase (sinceCompress), so a recovered summary replaying
// the WAL tail re-encodes bit-identically to a fresh summary fed
// exactly the durable prefix — the same contract the frequency
// summaries honour.
func TestCrashRecoveryGK(t *testing.T) {
	for round := uint64(0); round < 2; round++ {
		t.Run(fmt.Sprintf("GK/tear-%d", round), func(t *testing.T) {
			checkCrashRecovery(t, "GK", func() persist.Target {
				return core.NewConcurrent(NewQuantile(0.01))
			}, 0x6B17+round)
		})
	}
}

func TestCrashRecoveryWindowed(t *testing.T) {
	for round := uint64(0); round < 2; round++ {
		t.Run(fmt.Sprintf("SSW/tear-%d", round), func(t *testing.T) {
			checkCrashRecovery(t, "SSW", func() persist.Target {
				w, err := NewWindowed(4096, 8, 401)
				if err != nil {
					t.Fatal(err)
				}
				return core.NewConcurrent(w)
			}, 0x51EE9+round)
		})
	}
}
