package streamfreq

import (
	"fmt"
	"sort"
	"strings"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/quantile"
	"streamfreq/internal/sketches"
	"streamfreq/internal/window"
)

// Algorithms returns the paper codes of every registered algorithm, in
// the order they appear in the paper's plots (counter-based first).
func Algorithms() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return factoryOrder[names[i]] < factoryOrder[names[j]] })
	return names
}

// CounterBased reports whether the paper code names a counter-based
// (rather than sketch-based) algorithm.
func CounterBased(name string) bool {
	switch strings.ToUpper(name) {
	case "F", "LC", "LCD", "SSL", "SSH":
		return true
	}
	return false
}

// New constructs the named algorithm provisioned for threshold phi: the
// counter budget is k = ⌈1/φ⌉ for counter-based summaries, and the sketch
// dimensions are chosen so the sketch spends a comparable number of
// counters per the paper's equal-resource methodology (width 2/φ, depth
// 4, plus the hierarchy/group-testing overheads inherent to each
// structure). seed drives all hash randomness; equal (name, phi, seed)
// summaries are mergeable.
func New(name string, phi float64, seed uint64) (Summary, error) {
	if phi <= 0 || phi >= 1 {
		return nil, fmt.Errorf("streamfreq: phi must be in (0,1), got %g", phi)
	}
	f, ok := factories[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("streamfreq: unknown algorithm %q (have %s)",
			name, strings.Join(Algorithms(), ", "))
	}
	return f(phi, seed), nil
}

// MustNew is New for static configurations known to be valid; it panics
// on error.
func MustNew(name string, phi float64, seed uint64) Summary {
	s, err := New(name, phi, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// kForPhi is the canonical counter budget for threshold φ.
func kForPhi(phi float64) int {
	k := int(1/phi) + 1
	if k < 2 {
		k = 2
	}
	return k
}

// sketch sizing constants: depth 4 matches the paper's default of a few
// rows; width 2/φ gives ε = φ/2 collision noise so sketch precision is
// comparable to the counter algorithms' guarantee at equal order of
// space.
const sketchDepth = 4

func sketchWidth(phi float64) int {
	w := int(2 / phi)
	if w < 8 {
		w = 8
	}
	return w
}

var factories = map[string]func(phi float64, seed uint64) Summary{
	"F": func(phi float64, _ uint64) Summary {
		return counters.NewFrequent(kForPhi(phi))
	},
	"LC": func(phi float64, _ uint64) Summary {
		return counters.NewLossyCounting(phi/2, counters.VariantLC)
	},
	"LCD": func(phi float64, _ uint64) Summary {
		return counters.NewLossyCounting(phi/2, counters.VariantLCD)
	},
	"SSH": func(phi float64, _ uint64) Summary {
		return counters.NewSpaceSavingHeap(kForPhi(phi))
	},
	"SSL": func(phi float64, _ uint64) Summary {
		return counters.NewSpaceSavingList(kForPhi(phi))
	},
	"CM": func(phi float64, seed uint64) Summary {
		// Flat Count-Min with a top-2/φ heap tracker (point sketch made
		// enumerable, as in the paper's CS+heap usage).
		cm := sketches.NewCountMin(sketchDepth, sketchWidth(phi), seed)
		return core.NewTracked(cm, 2*kForPhi(phi))
	},
	"CS": func(phi float64, seed uint64) Summary {
		cs := sketches.NewCountSketch(sketchDepth+1, sketchWidth(phi), seed)
		return core.NewTracked(cs, 2*kForPhi(phi))
	},
	"CMH": func(phi float64, seed uint64) Summary {
		h, err := sketches.NewCountMinHierarchy(sketches.HierarchyConfig{
			Depth: sketchDepth, Width: sketchWidth(phi), Bits: 8, Seed: seed,
		})
		if err != nil {
			panic(err) // static config; cannot fail
		}
		return h
	},
	"CSH": func(phi float64, seed uint64) Summary {
		h, err := sketches.NewCountSketchHierarchy(sketches.HierarchyConfig{
			Depth: sketchDepth + 1, Width: sketchWidth(phi), Bits: 8, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		return h
	},
	"CGT": func(phi float64, seed uint64) Summary {
		return sketches.NewCGT(sketchDepth, sketchWidth(phi), 64, seed)
	},
}

var factoryOrder = map[string]int{
	"F": 0, "LC": 1, "LCD": 2, "SSL": 3, "SSH": 4,
	"CM": 5, "CS": 6, "CMH": 7, "CSH": 8, "CGT": 9,
}

// decoders maps each wire-format magic to its decoder. Keep in sync with
// the MarshalBinary implementations in internal/counters and
// internal/sketches.
var decoders = map[string]func([]byte) (Summary, error){
	"CM01": func(b []byte) (Summary, error) { return sketches.DecodeCountMin(b) },
	"CS01": func(b []byte) (Summary, error) { return sketches.DecodeCountSketch(b) },
	"CG01": func(b []byte) (Summary, error) { return sketches.DecodeCGT(b) },
	"HI01": func(b []byte) (Summary, error) { return sketches.DecodeHierarchical(b) },
	"FQ01": func(b []byte) (Summary, error) { return counters.DecodeFrequent(b) },
	"SS01": func(b []byte) (Summary, error) { return counters.DecodeSpaceSavingHeap(b) },
	"LC01": func(b []byte) (Summary, error) { return counters.DecodeLossyCounting(b) },
	"SL01": func(b []byte) (Summary, error) { return counters.DecodeSpaceSavingList(b) },
	// WN01 is the sliding-window summary ("SSW"): not in the factories
	// roster — it answers a different question (last-W counts, not
	// whole-stream) and is provisioned by window geometry, not φ alone —
	// but a first-class wire citizen, so windowed checkpoints, /summary
	// pulls, and cluster merges dispatch like any flat summary.
	"WN01": func(b []byte) (Summary, error) { return window.DecodeWindowed(b) },
	// GK01 is the Greenwald–Khanna quantile summary ("GK"), the same
	// wire-citizen-not-roster arrangement as WN01: it answers rank/range
	// queries rather than FrequentItems(φ) and is provisioned by ε, but
	// its checkpoints, /summary pulls, and cluster merges dispatch
	// through the generic machinery.
	"GK01": func(b []byte) (Summary, error) { return quantile.DecodeGK(b) },
}

// The TK01 decoder recursively dispatches through Decode for the nested
// sketch blob, so it is registered in init to break the initialization
// cycle a map-literal entry would create.
func init() {
	decoders["TK01"] = func(b []byte) (Summary, error) { return core.DecodeTracked(b, decodeTrackedInner) }
}

// decodeTrackedInner dispatches a Tracked wrapper's nested sketch blob.
// Nesting a Tracked inside a Tracked is not a configuration New can
// produce, and rejecting it here bounds decode recursion, so a forged
// blob cannot wind the stack (FuzzDecode leans on this).
func decodeTrackedInner(b []byte) (core.Summary, error) {
	if len(b) >= 4 && string(b[:4]) == "TK01" {
		return nil, fmt.Errorf("streamfreq: nested Tracked blobs are not supported")
	}
	return Decode(b)
}

// SupportedMagics returns the wire-format magics Decode can dispatch on,
// sorted for stable display.
func SupportedMagics() []string {
	out := make([]string, 0, len(decoders))
	for m := range decoders {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// MergeEncoded decodes each blob and merges them all into one summary —
// the coordinator primitive: per-node Encode blobs in, one summary of
// the union stream out. Every blob must decode to the same algorithm
// with the same parameters; the first failure names the offending blob
// by index (mixed-algorithm and parameter mismatches come back wrapping
// ErrIncompatible). The blobs themselves are not retained, and the
// result is independent of them: callers can merge the same stored
// blobs again on the next cycle.
func MergeEncoded(blobs ...[]byte) (Summary, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("streamfreq: MergeEncoded needs at least one blob")
	}
	merged, err := Decode(blobs[0])
	if err != nil {
		return nil, fmt.Errorf("streamfreq: blob 0: %w", err)
	}
	if len(blobs) == 1 {
		return merged, nil
	}
	m, ok := merged.(Merger)
	if !ok {
		return nil, fmt.Errorf("streamfreq: %s does not support merging", merged.Name())
	}
	for i, b := range blobs[1:] {
		s, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("streamfreq: blob %d: %w", i+1, err)
		}
		if err := m.Merge(s); err != nil {
			return nil, fmt.Errorf("streamfreq: merging blob %d (%s into %s): %w",
				i+1, s.Name(), merged.Name(), err)
		}
	}
	return merged, nil
}

// Decode reconstructs a serialized summary, dispatching on the blob's
// 4-byte magic. It supports every type with a MarshalBinary method.
func Decode(data []byte) (Summary, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("streamfreq: blob too short to identify (%d bytes, magic needs 4)", len(data))
	}
	if d, ok := decoders[string(data[:4])]; ok {
		return d(data)
	}
	// The magic may be arbitrary (possibly non-printable) bytes — a
	// truncated upload, a foreign format — so render it as hex, and name
	// the formats this build can decode.
	return nil, fmt.Errorf("streamfreq: unknown blob magic 0x%x (supported: %s)",
		data[:4], strings.Join(SupportedMagics(), " "))
}
