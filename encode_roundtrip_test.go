package streamfreq

// Wire-format properties the durability layer stands on (internal/
// persist checkpoints are Encode blobs, and the crash-recovery tests
// compare states by their encodings):
//
//  1. determinism — identically-fed summaries marshal to identical
//     bytes, for every registry algorithm;
//  2. structural round-trip — Decode(Encode(s)) re-encodes to the same
//     bytes AND keeps behaving identically to s under further ingest,
//     exercised here for the formats this PR introduces (SL01, TK01).

import (
	"bytes"
	"testing"

	"streamfreq/internal/zipf"
)

// roundTripStream is a modest zipf workload with heavy duplicate
// pressure, split into uneven batches like a real ingest schedule.
func roundTripStream(t testing.TB) [][]Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, 0xC0FFEE, true)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream(24_000)
	var batches [][]Item
	sizes := []int{1, 700, 4096, 33, 2048, 5000}
	for i := 0; len(s) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n > len(s) {
			n = len(s)
		}
		batches = append(batches, s[:n])
		s = s[n:]
	}
	return batches
}

// mustWindowedSummary builds the windowed summary for the wall's extra
// cases; the geometry is static and valid, so errors are test bugs.
func mustWindowedSummary(size, blocks, k int) Summary {
	w, err := NewWindowed(size, blocks, k)
	if err != nil {
		panic(err)
	}
	return w
}

func marshal(t *testing.T, label string, s Summary) []byte {
	t.Helper()
	m, ok := s.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		t.Fatalf("%s: %T has no MarshalBinary", label, s)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: MarshalBinary: %v", label, err)
	}
	return blob
}

// TestEncodeDeterministicRegistry: two instances fed the same batch
// schedule marshal to byte-identical blobs, for every registry
// algorithm. This pins the canonical entry ordering (LC01 sorts its
// map) and means "bit-identical via Encode" is a meaningful comparison.
func TestEncodeDeterministicRegistry(t *testing.T) {
	batches := roundTripStream(t)
	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			a := MustNew(algo, 0.005, 42)
			b := MustNew(algo, 0.005, 42)
			for _, batch := range batches {
				UpdateAll(a, batch)
				UpdateAll(b, batch)
			}
			if !bytes.Equal(marshal(t, algo, a), marshal(t, algo, b)) {
				t.Fatalf("%s: identically-fed summaries marshal to different bytes", algo)
			}
		})
	}
	// The windowed summary sits outside the factories roster (it is
	// provisioned by geometry, not φ alone), so its determinism leg is
	// pinned here explicitly with the same batch schedule.
	t.Run("Windowed", func(t *testing.T) {
		a := mustWindowedSummary(8192, 8, 201)
		b := mustWindowedSummary(8192, 8, 201)
		for _, batch := range batches {
			UpdateAll(a, batch)
			UpdateAll(b, batch)
		}
		if !bytes.Equal(marshal(t, "SSW", a), marshal(t, "SSW", b)) {
			t.Fatal("SSW: identically-fed windowed summaries marshal to different bytes")
		}
	})
	// The GK quantile summary is also a wire citizen outside the roster
	// (provisioned by ε, frequency semantics don't apply).
	t.Run("GK", func(t *testing.T) {
		a := NewQuantile(0.01)
		b := NewQuantile(0.01)
		for _, batch := range batches {
			UpdateAll(a, batch)
			UpdateAll(b, batch)
		}
		if !bytes.Equal(marshal(t, "GK", a), marshal(t, "GK", b)) {
			t.Fatal("GK: identically-fed quantile summaries marshal to different bytes")
		}
	})
}

// TestEncodeRoundTripNewFormats: the SL01, TK01, and WN01 formats
// decode to a summary that re-encodes byte-identically and stays in
// lockstep with the original through further ingest — the exact
// situation of a checkpoint restore that keeps consuming the stream.
// For the windowed summary the lockstep half is the expiring-block
// durability contract in miniature: the restored ring must keep
// rotating on the same boundaries the original does.
func TestEncodeRoundTripNewFormats(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Summary
	}{
		{"SSL", func() Summary { return NewSpaceSavingList(201) }},
		{"Tracked-CM", func() Summary { return NewTracked(NewCountMin(4, 512, 7), 128) }},
		{"Tracked-CS", func() Summary { return NewTracked(NewCountSketch(5, 512, 7), 128) }},
		{"Windowed", func() Summary { return mustWindowedSummary(8192, 8, 201) }},
		// GK01: the decode-then-continue leg is the recovery contract —
		// sinceCompress rides the wire so the restored compression
		// schedule stays in phase with uninterrupted ingest.
		{"GK", func() Summary { return NewQuantile(0.015) }},
	}
	batches := roundTripStream(t)
	half := len(batches) / 2
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			for _, batch := range batches[:half] {
				UpdateAll(orig, batch)
			}
			blob := marshal(t, tc.name, orig)
			dec, err := Decode(blob)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got := marshal(t, tc.name, dec); !bytes.Equal(got, blob) {
				t.Fatalf("re-encode of decoded blob differs (%d vs %d bytes)", len(got), len(blob))
			}
			// The decoded summary must keep evolving exactly like the
			// original: same ingest → same bytes, N, and report.
			for _, batch := range batches[half:] {
				UpdateAll(orig, batch)
				UpdateAll(dec, batch)
			}
			if dec.N() != orig.N() {
				t.Fatalf("N diverged after restore: %d vs %d", dec.N(), orig.N())
			}
			if !bytes.Equal(marshal(t, tc.name, dec), marshal(t, tc.name, orig)) {
				t.Fatalf("decoded summary diverged from original under further ingest")
			}
		})
	}
}
