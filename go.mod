module streamfreq

go 1.24
