package streamfreq

// Cross-module integration tests: every registered algorithm against
// exact truth on each workload family, exercising generator → summary →
// metrics end to end (the same path the harness uses, asserted at test
// granularity).

import (
	"fmt"
	"testing"

	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/trace"
	"streamfreq/internal/zipf"
)

type workload struct {
	name string
	gen  func(n int) []Item
	// minPrecision is the weakest acceptable precision for sketches on
	// this workload at the test scale; counter-based algorithms are held
	// to a higher bar in-loop.
	minPrecision float64
}

func workloads(t *testing.T) []workload {
	t.Helper()
	return []workload{
		{
			name: "zipf-1.1",
			gen: func(n int) []Item {
				g, err := zipf.NewGenerator(1<<14, 1.1, 11, true)
				if err != nil {
					t.Fatal(err)
				}
				return g.Stream(n)
			},
			minPrecision: 0.5,
		},
		{
			name: "http",
			gen: func(n int) []Item {
				cfg := trace.DefaultHTTPConfig(13)
				cfg.Objects = 1 << 14
				g, err := trace.NewHTTP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return g.Stream(n)
			},
			minPrecision: 0.4,
		},
		{
			name: "udp",
			gen: func(n int) []Item {
				cfg := trace.DefaultUDPConfig(17)
				cfg.ActiveFlows = 512
				g, err := trace.NewUDP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return g.Stream(n)
			},
			minPrecision: 0.4,
		},
	}
}

func TestAllAlgorithmsAllWorkloads(t *testing.T) {
	const (
		n   = 60_000
		phi = 0.005
	)
	for _, wl := range workloads(t) {
		stream := wl.gen(n)
		truth := exact.New()
		for _, it := range stream {
			truth.Update(it, 1)
		}
		threshold := int64(phi * n)
		truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)

		for _, algo := range Algorithms() {
			t.Run(fmt.Sprintf("%s/%s", wl.name, algo), func(t *testing.T) {
				s := MustNew(algo, phi, 23)
				for _, it := range stream {
					s.Update(it, 1)
				}
				acc := metrics.Evaluate(s.Query(threshold), truthMap)

				if CounterBased(algo) {
					// Recall is the deterministic guarantee; precision
					// depends on how many items sit just below φn in the
					// workload, so it shares the per-workload floor.
					if acc.Recall < 0.999 {
						t.Errorf("recall %.3f; counter-based must not miss", acc.Recall)
					}
					if acc.Precision < wl.minPrecision {
						t.Errorf("precision %.3f below workload floor %.2f", acc.Precision, wl.minPrecision)
					}
				} else {
					if acc.Recall < 0.8 {
						t.Errorf("recall %.3f below 0.8", acc.Recall)
					}
					if acc.Precision < wl.minPrecision {
						t.Errorf("precision %.3f below workload floor %.2f", acc.Precision, wl.minPrecision)
					}
				}
				if s.N() != int64(n) {
					t.Errorf("N = %d, want %d", s.N(), n)
				}
			})
		}
	}
}

func TestMergeableAlgorithmsShardConsistency(t *testing.T) {
	// Shard → merge → query must retain counter-based recall and sketch
	// exactness on every workload.
	const (
		n      = 40_000
		phi    = 0.005
		shards = 4
	)
	for _, wl := range workloads(t) {
		stream := wl.gen(n)
		truth := exact.New()
		for _, it := range stream {
			truth.Update(it, 1)
		}
		threshold := int64(phi * n)
		truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)

		for _, algo := range []string{"F", "SSH", "LC", "CM", "CMH", "CGT"} {
			t.Run(fmt.Sprintf("%s/%s", wl.name, algo), func(t *testing.T) {
				parts := make([]Summary, shards)
				for i := range parts {
					parts[i] = MustNew(algo, phi, 29)
				}
				for i, it := range stream {
					parts[i%shards].Update(it, 1)
				}
				merged := parts[0]
				for _, p := range parts[1:] {
					if err := merged.(Merger).Merge(p); err != nil {
						t.Fatal(err)
					}
				}
				acc := metrics.Evaluate(merged.Query(threshold), truthMap)
				if acc.Recall < 0.999 {
					t.Errorf("merged recall %.3f", acc.Recall)
				}
			})
		}
	}
}

func TestSerializeShipDecodeQueryPipeline(t *testing.T) {
	// The full distributed pipeline for every wire format, on a real
	// workload: summarize → marshal → decode → merge with a fresh
	// summary → query.
	const n = 20_000
	stream := workloads(t)[0].gen(n)

	mk := map[string]func() Summary{
		"F":   func() Summary { return NewFrequent(200) },
		"SSH": func() Summary { return NewSpaceSaving(200) },
		"LC":  func() Summary { return NewLossyCounting(0.005) },
		"CM":  func() Summary { return NewCountMin(4, 512, 7) },
		"CS":  func() Summary { return NewCountSketch(5, 512, 7) },
		"CGT": func() Summary { return NewCGT(3, 256, 64, 7) },
	}
	for name, factory := range mk {
		t.Run(name, func(t *testing.T) {
			a, b := factory(), factory()
			for i, it := range stream {
				if i%2 == 0 {
					a.Update(it, 1)
				} else {
					b.Update(it, 1)
				}
			}
			blob, err := a.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := decoded.(Merger).Merge(b); err != nil {
				t.Fatal(err)
			}
			if decoded.N() != int64(n) {
				t.Errorf("pipeline N = %d, want %d", decoded.N(), n)
			}
			// The hottest item of the stream must be visible post-pipeline.
			truth := exact.New()
			for _, it := range stream {
				truth.Update(it, 1)
			}
			top := truth.TopK(1)[0]
			est := decoded.Estimate(top.Item)
			if est < top.Count/2 {
				t.Errorf("top item estimated %d, true %d", est, top.Count)
			}
		})
	}
}
