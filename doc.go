// Package streamfreq finds the frequent items in data streams.
//
// It is a complete Go implementation of the algorithm roster compared in
// "Finding frequent items in data streams" (VLDB 2008): the counter-based
// summaries Frequent (Misra–Gries), Lossy Counting, and Space-Saving, and
// the sketch-based summaries Count-Min (with dyadic hierarchy), Count
// Sketch (Charikar, Chen & Farach-Colton), and Combinatorial Group
// Testing — together with the workload generators, metrics, and benchmark
// harness that regenerate the paper's experimental comparison.
//
// # The problem
//
// Given a stream of n items and a threshold φ, report every item
// occurring more than φn times (perfect recall) while reporting as few
// items below (φ−ε)n as possible (precision), using memory that does not
// grow with the stream. Counter-based summaries solve this
// deterministically with ⌈1/ε⌉ counters on insert-only streams; sketches
// solve it with probability 1−δ, and additionally support deletions,
// merging, and stream differencing.
//
// # Quick start
//
//	s := streamfreq.NewSpaceSaving(1000) // ε = 0.1%
//	for _, item := range stream {
//	    s.Update(item, 1)
//	}
//	for _, hh := range s.Query(int64(0.01 * float64(s.N()))) {
//	    fmt.Println(hh.Item, hh.Count)
//	}
//
// Use New(algo, phi, seed) to construct any summary by its paper code
// ("F", "LC", "LCD", "SSL", "SSH", "CM", "CS", "CMH", "CSH", "CGT")
// sized for threshold φ, which is how the benchmark harness provisions
// the contenders fairly.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results.
package streamfreq
