// Package streamfreq finds the frequent items in data streams.
//
// It is a complete Go implementation of the algorithm roster compared in
// "Finding frequent items in data streams" (VLDB 2008): the counter-based
// summaries Frequent (Misra–Gries), Lossy Counting, and Space-Saving, and
// the sketch-based summaries Count-Min (with dyadic hierarchy), Count
// Sketch (Charikar, Chen & Farach-Colton), and Combinatorial Group
// Testing — together with the workload generators, metrics, and benchmark
// harness that regenerate the paper's experimental comparison.
//
// # The problem
//
// Given a stream of n items and a threshold φ, report every item
// occurring more than φn times (perfect recall) while reporting as few
// items below (φ−ε)n as possible (precision), using memory that does not
// grow with the stream. Counter-based summaries solve this
// deterministically with ⌈1/ε⌉ counters on insert-only streams; sketches
// solve it with probability 1−δ, and additionally support deletions,
// merging, and stream differencing.
//
// # Quick start
//
//	s := streamfreq.NewSpaceSaving(1000) // ε = 0.1%
//	for _, item := range stream {
//	    s.Update(item, 1)
//	}
//	for _, hh := range s.Query(int64(0.01 * float64(s.N()))) {
//	    fmt.Println(hh.Item, hh.Count)
//	}
//
// Use New(algo, phi, seed) to construct any summary by its paper code
// ("F", "LC", "LCD", "SSL", "SSH", "CM", "CS", "CMH", "CSH", "CGT")
// sized for threshold φ, which is how the benchmark harness provisions
// the contenders fairly.
//
// # Serving queries under ingest
//
// Every summary implements Snapshotter: Snapshot() returns an
// independent deep copy, frozen at the moment it is taken. The
// Concurrent and Sharded wrappers build on this with ServeSnapshots,
// which answers Query/Estimate/N from an epoch snapshot refreshed at
// most once per staleness window — readers never take the ingest lock,
// so query traffic does not slow the batched ingest hot path. The freqd
// command (cmd/freqd) exposes the combination over HTTP: continuous
// binary or text ingest on POST /v1/ingest, heavy-hitter reports on
// GET /v1/topk, point estimates on GET /v1/estimate, and snapshot
// freshness on GET /v1/stats (pre-versioning paths remain as aliases;
// errors are a uniform JSON envelope).
//
// # Lock-free ingest plane
//
// For write-heavy deployments, NewPipelined replaces the locked
// Sharded scatter with staged ingest: writers claim one global stream
// position with an atomic add, append to the write-ahead log at that
// ticket, stage the batch into per-shard bounded rings (internal/ring,
// sequence-stamped slots in the Vyukov MPSC style), and return; one
// drainer goroutine per shard applies slots strictly in claimed order.
// Per-shard apply order therefore equals global claim order, which
// makes the plane a drop-in: single-writer pipelined ingest is
// bit-identical to sequential Sharded ingest, the WAL is never behind
// memory (append happens before staging), checkpoints and snapshot
// refreshes quiesce the rings at an exact cross-shard cut, and the
// steady-state hot path allocates nothing (slot buffers are reused
// after the first ring wrap; CI gates allocs/op at zero). freqd
// -pipeline serves it; freqbench -writers measures it against the
// locked plane.
//
// # Durability
//
// The serving stack is durable when given a data directory
// (internal/persist, freqd -data-dir): ingest batches are write-ahead
// logged before they are applied, checkpoints serialize the summary
// with the same per-algorithm wire formats Decode dispatches on, and
// startup recovery replays the log tail on top of the last checkpoint —
// so a crashed server restarts bit-identically to an unfailed run at
// its last durable point, the paper's long-lived-deployment assumption
// made operational. Every registry algorithm is checkpointable; the
// crash contract is pinned registry-wide by recovery_test.go.
//
// # Windowed serving
//
// The sliding-window summary (NewWindowed, "SSW") answers the
// recent-past form of the question: heavy hitters over roughly the
// last W arrivals, via B blocks of Space-Saving summaries whose oldest
// block expires as the window slides. It implements the full summary
// contract — batched ingest split at block boundaries, deep-copy
// snapshots, the WN01 wire format, and recency-aligned merging — so
// the same serving, durability, and cluster machinery carries it:
// freqd -window serves /topk at the φ·W operating point, checkpoints
// hold only the live blocks (durable state is O(W) forever, and a
// recovered window is bit-identical to its durable prefix), and a
// coordinator over windowed nodes merges the cluster's recent traffic.
// Estimates are one-sided, overestimating by at most the advertised
// Slack (εW of per-block error plus one boundary block of expired
// items).
//
// # Rich queries and wall-clock horizons
//
// Beyond point estimates and top-k, the serving surface answers three
// richer questions, capability-dispatched by the algorithm behind the
// view: GET /v1/hhh reports hierarchical heavy hitters — every heavy
// prefix at every granularity of the item space, with the residual
// discount of Cormode et al. separating prefixes heavy in aggregate
// from prefixes heavy only through one elephant child (the dyadic
// hierarchies, -algo cmh or csh) — GET /v1/range estimates the
// arrivals in a value interval (hierarchies via a dyadic cover, GK via
// a rank difference), and GET /v1/quantile returns the value at rank
// q·N (the Greenwald–Khanna summary, -algo gk, natively at ε = φ/2;
// the hierarchies via prefix sums). The routes are always registered;
// a summary without the capability answers 404 naming the -algo
// choices that have it. All three ride the registry contract —
// snapshots, merging, and the HI01/GK01 wire formats — so a freqmerge
// coordinator answers the same queries over the cluster's union
// stream, and a WAL-recovered node serves them bit-identically.
// Orthogonally, freqd -horizons 1m,1h,24h keeps an
// exponential-histogram bucket ring per wall-clock horizon, and
// ?horizon= on topk/hhh/range/quantile answers over roughly that much
// recent past (memory-only; thresholds scale against the horizon's
// own stream length).
//
// # Distributed merge
//
// Summaries merge: MergeEncoded(blobs...) decodes per-node Encode blobs
// and folds them into one summary of the union stream, with each
// algorithm's guarantee intact (the paper's X2 experiment). The cluster
// layer (internal/cluster, cmd/freqmerge) runs this as a service: every
// freqd node ships its state on GET /summary (a snapshot blob plus its
// stream position and process epoch), and a coordinator pulls all of
// them on an interval, merges, and serves the union over the node API —
// replacement-not-addition semantics make re-pulls and WAL-recovered
// restarts double-count-proof, unreachable nodes are served stale with
// the staleness surfaced, and mixed-algorithm nodes are rejected.
// Coordinators serve GET /summary themselves, so tiers stack. Merge
// fidelity is pinned registry-wide by merge_test.go.
//
// # Partitioned writes
//
// Merging scales reads over independently-fed nodes; the router tier
// (internal/router, cmd/freqrouter) scales writes. A consistent-hash
// ring over the shard IDs assigns every item to exactly one shard, the
// router splits each ingest batch along ring ownership, and forwards
// each piece to its shard's replicas concurrently — so the shards hold
// disjoint substreams and each one is an exact partition, not an
// overlapping replica. That changes the serving math: a coordinator
// given the router's shard map (freqmerge -router) answers Estimate
// from the one shard that owns the item, at that shard's own substream
// length n_p — a strictly tighter error envelope than φ·N — and never
// merges partitions (merging would re-add the collision noise and
// overestimate inflation that partitioning just removed). Replication
// is for failover, not fan-in: a batch is acknowledged when at least
// one replica of its shard accepted it, dead replicas are skipped and
// re-adopted by epoch-aware probes, and the coordinator reads exactly
// one replica per shard, so restarts never double-count. The chaos
// wall (TestRouterKillRecover) kills a follower and a primary mid-run,
// WAL-recovers both under new epochs, and requires the merged N to
// equal the acknowledged arrivals exactly.
//
// # Observability
//
// Every daemon carries one observability plane (internal/obs, zero
// dependencies): GET /v1/metrics serves Prometheus text exposition —
// atomic counters and gauges plus fixed-boundary log₂ latency
// histograms, so hot-path instrumentation is an atomic add or two,
// never a lock or an allocation. WAL fsync latency and lag, ingest
// apply time, ring occupancy, snapshot age, tenant residency, per-
// shard routing and replica health, and coordinator pull freshness
// are all first-class series, with cardinality bounded by
// construction (per-shard labels, never per-tenant or per-item).
// Requests carry an X-Freq-Trace ID — adopted from the caller or
// minted, echoed on the response, propagated across router forwards
// and coordinator pulls — and every daemon logs structured log/slog
// request records (-log-format text|json) where the same ID appears,
// so one grep follows a request across the whole tier. A -slow-query
// threshold upgrades slow requests to warnings with per-stage
// timings. /stats stays the human-readable JSON view of the same
// counters.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results.
package streamfreq
