package streamfreq

// Merge fidelity across the registry: the distributed-merge service
// rests on Decode(Encode(a)).Merge(Decode(Encode(b))) answering for the
// concatenated stream. For every algorithm with a wire format this
// asserts (1) MergeEncoded is behaviourally identical to merging the
// live summaries — the wire round-trip adds nothing and loses nothing —
// and (2) the merged summary honours the algorithm's documented
// estimate bound at the φn operating point of the union stream, which
// is the guarantee the paper's X2 merge experiment measures.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

// mergeBounds returns the documented |estimate − true| envelope of one
// merged summary at the φn operating point: under is how far estimates
// may fall below the true union count, over how far above. The registry
// provisions counter summaries at k = ⌈1/φ⌉+1 and ε = φ/2, and sketches
// at width 2/φ, so every deterministic bound lands at or under φn; the
// randomized sketches (CS family) get their variance bound from the
// union stream's second moment with a safety factor — all hash seeds
// are fixed, so the check is deterministic run to run.
func mergeBounds(t *testing.T, algo string, n int64, phi, f2 float64) (under, over int64) {
	t.Helper()
	phiN := int64(phi*float64(n)) + 1
	csBound := int64(4*math.Sqrt(f2*phi/2)) + 1 // 4·sqrt(F2/width), width = 2/φ
	switch algo {
	case "F": // Misra–Gries: underestimates by ≤ n/(k+1)
		return phiN, 0
	case "LC": // observed counts: underestimate ≤ εn, ε = φ/2
		return int64(phi/2*float64(n)) + 1, 0
	case "LCD": // count+Δ upper bounds: overestimate ≤ εn
		return 0, int64(phi/2*float64(n)) + 1
	case "SSL", "SSH": // Space-Saving: overestimate ≤ n/k
		return 0, phiN
	case "CM", "CMH", "CGT": // Count-Min family: overestimate ≤ εn
		return 0, phiN
	case "CS", "CSH": // Count-Sketch: two-sided variance bound
		return csBound, csBound
	}
	t.Fatalf("mergeBounds: unknown algorithm %s — extend the table", algo)
	return 0, 0
}

// mergeStreams builds the two per-node workloads: overlapping Zipf
// streams with different skews and seeds, so hot items appear on both
// sides (merge must add their counts) and each side has mass the other
// never saw.
func mergeStreams(t testing.TB) (a, b []Item) {
	t.Helper()
	ga, err := zipf.NewGenerator(1<<14, 1.2, 21, true)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := zipf.NewGenerator(1<<14, 0.9, 22, true)
	if err != nil {
		t.Fatal(err)
	}
	return ga.Stream(40_000), gb.Stream(25_000)
}

func TestMergeEncodedFidelityRegistry(t *testing.T) {
	const (
		phi  = 0.005
		seed = 42
	)
	streamA, streamB := mergeStreams(t)
	n := int64(len(streamA) + len(streamB))
	threshold := int64(phi * float64(n))

	truth := exact.New()
	for _, it := range streamA {
		truth.Update(it, 1)
	}
	for _, it := range streamB {
		truth.Update(it, 1)
	}
	f2 := truth.SecondMoment()

	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			feed := func(items []Item) Summary {
				s := MustNew(algo, phi, seed)
				UpdateAll(s, items)
				return s
			}
			a, b := feed(streamA), feed(streamB)
			blobA := marshal(t, algo+"/a", a)
			blobB := marshal(t, algo+"/b", b)

			merged, err := MergeEncoded(blobA, blobB)
			if err != nil {
				t.Fatalf("MergeEncoded: %v", err)
			}
			if merged.N() != n {
				t.Fatalf("merged N = %d, want %d", merged.N(), n)
			}

			// (1) Wire fidelity: merging through blobs re-encodes to the
			// same bytes as merging the live summaries (Encode is
			// deterministic registry-wide, so bit equality is meaningful).
			direct := feed(streamA)
			if err := direct.(Merger).Merge(feed(streamB)); err != nil {
				t.Fatalf("direct merge: %v", err)
			}
			if got, want := marshal(t, algo+"/merged", merged), marshal(t, algo+"/direct", direct); string(got) != string(want) {
				t.Fatalf("MergeEncoded and live Merge encode differently (%d vs %d bytes)", len(got), len(want))
			}

			// (2) The documented estimate bound at the φn operating point,
			// on every true heavy hitter of the union stream.
			under, over := mergeBounds(t, algo, n, phi, f2)
			for _, ic := range truth.TopK(truth.Distinct()) {
				if ic.Count < threshold {
					break
				}
				est := merged.Estimate(ic.Item)
				if est < ic.Count-under {
					t.Fatalf("item %#x: merged estimate %d below true %d − bound %d",
						uint64(ic.Item), est, ic.Count, under)
				}
				if est > ic.Count+over {
					t.Fatalf("item %#x: merged estimate %d above true %d + bound %d",
						uint64(ic.Item), est, ic.Count, over)
				}
			}

			// Recall over the union: querying at φn + under-slack must
			// return every item whose true count clears the slackened
			// threshold (for never-underestimating algorithms under = 0,
			// i.e. perfect recall at φn exactly).
			report := merged.Query(threshold)
			reported := make(map[Item]bool, len(report))
			for _, ic := range report {
				reported[ic.Item] = true
			}
			for _, ic := range truth.TopK(truth.Distinct()) {
				if ic.Count < threshold+under {
					break
				}
				if !reported[ic.Item] {
					t.Fatalf("item %#x with true count %d ≥ %d missing from merged Query(%d)",
						uint64(ic.Item), ic.Count, threshold+under, threshold)
				}
			}
		})
	}
}

// TestMergeEncodedWindowed extends the merge wall to the windowed
// summary (WN01): merging through blobs is byte-identical to merging
// the live summaries, the union answers for both nodes' recent windows
// (N and coverage sum, recent hot items reported, neither side's
// windowed estimate floor is ever undercut), and geometry mismatches
// come back wrapping ErrIncompatible like any parameter mismatch.
func TestMergeEncodedWindowed(t *testing.T) {
	const size, blocks, k = 2000, 4, 100
	mkFed := func(hot Item, seed uint64) Summary {
		s := mustWindowedSummary(size, blocks, k)
		g, err := zipf.NewGenerator(1<<13, 0.9, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]Item, 9000)
		for i := range items {
			if i%4 == 0 {
				items[i] = hot
			} else {
				items[i] = g.Next()
			}
		}
		UpdateBatches(s, items, 512)
		return s
	}
	a, b := mkFed(5001, 91), mkFed(5002, 92)
	blobA, blobB := marshal(t, "SSW/a", a), marshal(t, "SSW/b", b)

	merged, err := MergeEncoded(blobA, blobB)
	if err != nil {
		t.Fatalf("MergeEncoded: %v", err)
	}
	if merged.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), a.N()+b.N())
	}

	// Wire fidelity: blob-merge ≡ live-merge, byte for byte.
	direct := mkFed(5001, 91)
	if err := direct.(Merger).Merge(mkFed(5002, 92)); err != nil {
		t.Fatalf("direct merge: %v", err)
	}
	if got, want := marshal(t, "SSW/merged", merged), marshal(t, "SSW/direct", direct); string(got) != string(want) {
		t.Fatalf("MergeEncoded and live Merge encode differently (%d vs %d bytes)", len(got), len(want))
	}

	// Union semantics: both hot items reported at 5% of the union span,
	// and the merged estimate never undercuts either side's own.
	wn := merged.(interface{ WindowN() int64 }).WindowN()
	if wn <= int64(size) || wn > int64(2*size) {
		t.Fatalf("merged WindowN = %d, want within (W, 2W]", wn)
	}
	reported := map[Item]bool{}
	for _, ic := range merged.Query(wn / 20) {
		reported[ic.Item] = true
	}
	for _, hot := range []Item{5001, 5002} {
		if !reported[hot] {
			t.Fatalf("hot item %d missing from merged windowed report", hot)
		}
		if mergedEst, own := merged.Estimate(hot), a.Estimate(hot); hot == 5001 && mergedEst < own {
			t.Fatalf("merged estimate %d undercuts node A's own %d", mergedEst, own)
		}
	}

	// Geometry mismatch: refused, wrapping ErrIncompatible.
	other := mustWindowedSummary(size, 2*blocks, k)
	UpdateAll(other, zipf.Sequential(500))
	if _, err := MergeEncoded(blobA, marshal(t, "SSW/other", other)); err == nil {
		t.Fatal("geometry-mismatched windowed MergeEncoded succeeded")
	} else if !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("mismatch error %q does not name the geometry", err)
	}
	// Cross-family: a windowed blob never merges into a flat one.
	ssh := MustNew("SSH", 0.01, 1)
	UpdateAll(ssh, zipf.Sequential(500))
	if _, err := MergeEncoded(marshal(t, "ssh", ssh), blobA); err == nil {
		t.Fatal("flat+windowed MergeEncoded succeeded")
	}
}

// TestMergeEncodedGK extends the merge wall to the quantile summary
// (GK01): merging through blobs is byte-identical to merging the live
// summaries, the merged summary stays ε₁n₁+ε₂n₂-approximate over the
// union stream's ranks, and ε mismatches (a GK merge requires equal
// error budgets) come back wrapping ErrIncompatible like any parameter
// mismatch.
func TestMergeEncodedGK(t *testing.T) {
	const eps = 0.01
	mkFed := func(seed uint64, n int) Summary {
		s := NewQuantile(eps)
		g, err := zipf.NewGenerator(1<<12, 1.1, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		UpdateBatches(s, g.Stream(n), 777)
		return s
	}
	a, b := mkFed(41, 18000), mkFed(43, 26000)
	blobA, blobB := marshal(t, "GK/a", a), marshal(t, "GK/b", b)

	merged, err := MergeEncoded(blobA, blobB)
	if err != nil {
		t.Fatalf("MergeEncoded: %v", err)
	}
	if merged.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), a.N()+b.N())
	}

	// Wire fidelity: blob-merge ≡ live-merge, byte for byte.
	direct := mkFed(41, 18000)
	if err := direct.(Merger).Merge(mkFed(43, 26000)); err != nil {
		t.Fatalf("direct merge: %v", err)
	}
	if got, want := marshal(t, "GK/merged", merged), marshal(t, "GK/direct", direct); string(got) != string(want) {
		t.Fatalf("MergeEncoded and live Merge encode differently (%d vs %d bytes)", len(got), len(want))
	}

	// Union rank accuracy: the merged median's rank over a reference
	// union summary stays within the summed error budgets (checked via
	// the quantile surface both daemons serve).
	q, ok := merged.(interface {
		QuantileQuery(float64) (uint64, error)
	})
	if !ok {
		t.Fatalf("merged %T has no QuantileQuery", merged)
	}
	union := NewQuantile(eps)
	g1, _ := zipf.NewGenerator(1<<12, 1.1, 41, true)
	g2, _ := zipf.NewGenerator(1<<12, 1.1, 43, true)
	UpdateBatches(union, g1.Stream(18000), 777)
	UpdateBatches(union, g2.Stream(26000), 777)
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		mv, err := q.QuantileQuery(frac)
		if err != nil {
			t.Fatal(err)
		}
		uv, err := union.QuantileQuery(frac)
		if err != nil {
			t.Fatal(err)
		}
		// Both values approximate the same rank; their rank gap is
		// bounded by the two summaries' combined ε budgets, so compare
		// through the union summary's rank of each value.
		loM, hiM := union.Rank(float64(mv))
		loU, hiU := union.Rank(float64(uv))
		slack := int64(3*eps*float64(union.N())) + 2
		if loM-hiU > slack || loU-hiM > slack {
			t.Errorf("q=%.1f: merged value %d (rank [%d,%d]) vs union value %d (rank [%d,%d]) beyond ±%d",
				frac, mv, loM, hiM, uv, loU, hiU, slack)
		}
	}

	// ε mismatch: refused, wrapping ErrIncompatible.
	other := NewQuantile(2 * eps)
	UpdateAll(other, zipf.Sequential(500))
	if _, err := MergeEncoded(blobA, marshal(t, "GK/other", other)); err == nil {
		t.Fatal("ε-mismatched GK MergeEncoded succeeded")
	} else if !strings.Contains(err.Error(), "epsilon") {
		t.Fatalf("mismatch error %q does not name the epsilon", err)
	}
	// Cross-family: a quantile blob never merges into a frequency one.
	ssh := MustNew("SSH", 0.01, 1)
	UpdateAll(ssh, zipf.Sequential(500))
	if _, err := MergeEncoded(blobA, marshal(t, "ssh", ssh)); err == nil {
		t.Fatal("GK+SSH MergeEncoded succeeded")
	}
}

// TestMergeEncodedErrors: the coordinator-facing failure modes are
// errors with useful text, never panics.
func TestMergeEncodedErrors(t *testing.T) {
	ssh := MustNew("SSH", 0.01, 1)
	UpdateAll(ssh, zipf.Sequential(500))
	blobSSH := marshal(t, "ssh", ssh)
	f := MustNew("F", 0.01, 1)
	UpdateAll(f, zipf.Sequential(500))
	blobF := marshal(t, "f", f)

	if _, err := MergeEncoded(); err == nil {
		t.Fatal("MergeEncoded() with no blobs succeeded")
	}
	if s, err := MergeEncoded(blobSSH); err != nil || s.N() != 500 {
		t.Fatalf("single-blob MergeEncoded: %v (N=%v)", err, s)
	}
	if _, err := MergeEncoded(blobSSH, blobF); err == nil {
		t.Fatal("mixed-algorithm MergeEncoded succeeded")
	} else if !strings.Contains(err.Error(), "blob 1") {
		t.Fatalf("mixed-algorithm error %q does not name the offending blob", err)
	}
	if _, err := MergeEncoded(blobSSH, []byte("XXXXnot a blob")); err == nil {
		t.Fatal("garbage blob MergeEncoded succeeded")
	}
	if _, err := MergeEncoded([]byte{1}); err == nil {
		t.Fatal("truncated blob MergeEncoded succeeded")
	}

	// Same algorithm, different parameters: the summary's own Merge
	// rejects it, and MergeEncoded forwards that cleanly — for sketches
	// (dimension check) and counter summaries (budget check) alike.
	cmA := MustNew("CM", 0.01, 1)
	cmB := MustNew("CM", 0.001, 1)
	UpdateAll(cmA, zipf.Sequential(100))
	UpdateAll(cmB, zipf.Sequential(100))
	if _, err := MergeEncoded(marshal(t, "cmA", cmA), marshal(t, "cmB", cmB)); err == nil {
		t.Fatal("parameter-mismatched MergeEncoded succeeded")
	}
	sshB := MustNew("SSH", 0.001, 1) // different φ → different counter budget
	UpdateAll(sshB, zipf.Sequential(100))
	if _, err := MergeEncoded(blobSSH, marshal(t, "sshB", sshB)); err == nil {
		t.Fatal("budget-mismatched Space-Saving MergeEncoded succeeded")
	}
}

// TestMergeEncodedManyNodes: the coordinator's actual shape — one blob
// per node, many nodes — folds associatively: N adds exactly and the
// result matches a pairwise fold of the same blobs.
func TestMergeEncodedManyNodes(t *testing.T) {
	const nodes = 8
	g, err := zipf.NewGenerator(1<<12, 1.1, 77, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(64_000)
	blobs := make([][]byte, nodes)
	for i := 0; i < nodes; i++ {
		s := MustNew("SSH", 0.01, 1)
		UpdateAll(s, items[i*len(items)/nodes:(i+1)*len(items)/nodes])
		blobs[i] = marshal(t, fmt.Sprintf("node%d", i), s)
	}
	merged, err := MergeEncoded(blobs...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != int64(len(items)) {
		t.Fatalf("merged N = %d, want %d", merged.N(), len(items))
	}
	fold, err := MergeEncoded(blobs[0], blobs[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blobs[2:] {
		next, err := MergeEncoded(marshal(t, "fold", fold), b)
		if err != nil {
			t.Fatal(err)
		}
		fold = next
	}
	if got, want := marshal(t, "flat", merged), marshal(t, "folded", fold); string(got) != string(want) {
		t.Fatal("flat MergeEncoded and pairwise fold disagree")
	}
}
