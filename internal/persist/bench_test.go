package persist

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/zipf"
)

// benchBatches materializes a zipf stream as 4096-item batches, the
// serving daemon's ingest granularity.
func benchBatches(b *testing.B, n int) [][]core.Item {
	b.Helper()
	g, err := zipf.NewGenerator(1<<16, 1.1, 0xBE7C4, true)
	if err != nil {
		b.Fatal(err)
	}
	s := g.Stream(n)
	var out [][]core.Item
	for len(s) > 0 {
		k := core.DefaultBatchSize
		if k > len(s) {
			k = len(s)
		}
		out = append(out, s[:k])
		s = s[k:]
	}
	return out
}

// BenchmarkWALAppend measures the raw log-append cost per 4096-item
// batch under each fsync policy — the durability tax before any summary
// work. interval is the production default; always pays one fsync per
// op and bounds the worst case.
func BenchmarkWALAppend(b *testing.B) {
	batches := benchBatches(b, 1<<20)
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			st, err := Open(Options{Dir: b.TempDir(), Algo: "SSH", Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(1001))); err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.SetBytes(int64(core.DefaultBatchSize * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.AppendBatch(batches[i%len(batches)])
			}
			b.StopTimer()
			if err := st.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkUpdateBatchWAL is the acceptance benchmark of the durability
// layer: batched SSH ingest through core.Concurrent with the WAL off,
// group-committed (interval, the default), and fsync-per-batch. Compare
// ns/op across the sub-benchmarks: the acceptance target is <10%
// overhead for wal-interval over nopersist.
func BenchmarkUpdateBatchWAL(b *testing.B) {
	batches := benchBatches(b, 1<<20)
	run := func(b *testing.B, wire func(*core.Concurrent)) {
		target := core.NewConcurrent(counters.NewSpaceSavingHeap(1001))
		if wire != nil {
			wire(target)
		}
		b.SetBytes(int64(core.DefaultBatchSize * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target.UpdateBatch(batches[i%len(batches)])
		}
		b.StopTimer()
	}
	b.Run("nopersist", func(b *testing.B) { run(b, nil) })
	for _, policy := range []FsyncPolicy{FsyncInterval, FsyncAlways} {
		b.Run("wal-"+policy.String(), func(b *testing.B) {
			st, err := Open(Options{Dir: b.TempDir(), Algo: "SSH", Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			run(b, func(c *core.Concurrent) {
				if _, err := st.Recover(c); err != nil {
					b.Fatal(err)
				}
				c.PersistTo(st)
			})
			if err := st.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRecovery measures cold-start recovery of a directory holding
// a checkpoint plus a WAL tail (the restart-under-traffic path): one op
// is a full Open+Recover of ~256k logged items on top of a checkpointed
// summary.
func BenchmarkRecovery(b *testing.B) {
	// Build the pristine directory once.
	pristine := b.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncNever, Decode: benchDecode}
	orig := core.NewConcurrent(counters.NewSpaceSavingHeap(1001))
	st, err := Open(optsWithDir(opts, pristine))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Recover(orig); err != nil {
		b.Fatal(err)
	}
	orig.PersistTo(st)
	batches := benchBatches(b, 1<<19)
	half := len(batches) / 2
	for _, bt := range batches[:half] {
		orig.UpdateBatch(bt)
	}
	if _, err := st.Checkpoint(orig); err != nil {
		b.Fatal(err)
	}
	for _, bt := range batches[half:] {
		orig.UpdateBatch(bt)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		copyDir(b, pristine, dir)
		b.StartTimer()
		st, err := Open(optsWithDir(opts, dir))
		if err != nil {
			b.Fatal(err)
		}
		stats, err := st.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(1001)))
		if err != nil {
			b.Fatal(err)
		}
		if stats.RecoveredN != orig.LiveN() {
			b.Fatalf("recovered n=%d, want %d", stats.RecoveredN, orig.LiveN())
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

func benchDecode(blob []byte) (core.Summary, error) {
	return counters.DecodeSpaceSavingHeap(blob)
}

func optsWithDir(o Options, dir string) Options {
	o.Dir = dir
	return o
}

func copyDir(b *testing.B, from, to string) {
	b.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		src, err := os.Open(filepath.Join(from, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		dst, err := os.Create(filepath.Join(to, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(dst, src); err != nil {
			b.Fatal(err)
		}
		src.Close()
		if err := dst.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
