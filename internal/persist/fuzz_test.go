package persist

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
)

// segmentBytes assembles a syntactically valid segment in memory.
func segmentBytes(seq uint64, startN int64, batches ...[]core.Item) []byte {
	var out []byte
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(startN))
	out = append(out, hdr[:]...)
	for _, b := range batches {
		out = appendRecord(out, recUnit, "", 0, b, 0, 0)
	}
	return out
}

// FuzzWALReplay: arbitrary bytes dropped into the data directory as a
// WAL segment must never panic recovery, and whenever recovery
// succeeds it must have committed a stable prefix: recovering the
// (now truncated) directory a second time reproduces the same stream
// position with nothing further to truncate. The target is a counter
// summary whose Update panics on non-positive counts, so forged
// weighted records exercise the panic-to-error containment too.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(segMagic))
	f.Add(segmentBytes(1, 0))
	f.Add(segmentBytes(1, 0, []core.Item{1, 2, 3, 2, 1}, []core.Item{9, 9, 9}))
	f.Add(segmentBytes(2, 77, []core.Item{5}))
	valid := segmentBytes(1, 0, []core.Item{1, 2, 3})
	f.Add(valid[:len(valid)-3]) // torn payload
	crcFlip := append([]byte(nil), segmentBytes(1, 0, []core.Item{4, 4})...)
	crcFlip[segHeaderSize+5] ^= 0xFF
	f.Add(crcFlip)
	// A forged weighted record with a negative count, aimed at a
	// counter-based target: replay must contain the panic.
	neg := segmentBytes(1, 0)
	neg = appendRecord(neg, recWeighted, "", 0, nil, 123, -5)
	f.Add(neg)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir, Algo: "SSH"})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := st.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(8)))
		if err != nil {
			return // rejected (bad magic, discontinuity, …) — fine, no panic
		}
		st.Close()
		// Success means the valid prefix is now the whole file: replaying
		// again must land on the same position, cleanly.
		st2, err := Open(Options{Dir: dir, Algo: "SSH"})
		if err != nil {
			t.Fatal(err)
		}
		stats2, err := st2.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(8)))
		if err != nil {
			t.Fatalf("second recovery failed after a successful first: %v", err)
		}
		st2.Close()
		if stats2.RecoveredN != stats.RecoveredN || stats2.TruncatedSegments != 0 {
			t.Fatalf("unstable prefix: first %+v, second %+v", stats, stats2)
		}
	})
}

// TestFuzzSeedsDirect runs the seed corpus through the fuzz body so the
// containment properties are exercised in every plain `go test` run,
// not only under -fuzz.
func TestFuzzSeedsDirect(t *testing.T) {
	neg := segmentBytes(1, 0)
	neg = appendRecord(neg, recWeighted, "", 0, nil, 123, -5)
	valid := segmentBytes(1, 0, []core.Item{1, 2, 3})
	seeds := [][]byte{
		nil,
		[]byte(segMagic),
		segmentBytes(1, 0, []core.Item{1, 2, 3, 2, 1}, []core.Item{9, 9, 9}),
		valid[:len(valid)-3],
		neg,
		bytes.Repeat([]byte{0xAB}, 300),
	}
	for i, data := range seeds {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir, Algo: "SSH"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(8))); err == nil {
			st.Close()
		}
		_ = i
	}
	// The negative-count forge specifically: recovery survives and keeps
	// the records before the poison.
	dir := t.TempDir()
	poisoned := segmentBytes(1, 0, []core.Item{7, 7})
	poisoned = appendRecord(poisoned, recWeighted, "", 0, nil, 123, -5)
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000001.seg"), poisoned, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: dir, Algo: "SSH"})
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewConcurrent(counters.NewSpaceSavingHeap(8))
	stats, err := st.Recover(target)
	if err != nil {
		t.Fatalf("poisoned-record recovery failed: %v", err)
	}
	st.Close()
	if stats.RecoveredN != 2 || target.LiveN() != 2 {
		t.Fatalf("recovered n=%d (target %d), want the 2 items before the poison", stats.RecoveredN, target.LiveN())
	}

	// Poison with valid records BEHIND it is not a tail to trim —
	// truncating would drop acknowledged data — so recovery must fail
	// loudly instead.
	dir2 := t.TempDir()
	mid := segmentBytes(1, 0, []core.Item{7, 7})
	mid = appendRecord(mid, recWeighted, "", 0, nil, 123, -5)
	mid = appendRecord(mid, recUnit, "", 0, []core.Item{8, 8, 8}, 0, 0)
	if err := os.WriteFile(filepath.Join(dir2, "wal-0000000001.seg"), mid, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir2, Algo: "SSH"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recover(core.NewConcurrent(counters.NewSpaceSavingHeap(8))); err == nil {
		t.Fatal("poison record with valid records after it must fail recovery, not truncate them away")
	}
}
