package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"streamfreq/internal/core"
	"streamfreq/internal/stream"
)

// RecoveryStats describes what startup recovery found and did.
type RecoveryStats struct {
	// CheckpointN is the stream position restored from the checkpoint
	// (0 when no checkpoint existed).
	CheckpointN int64
	// CheckpointShards is how many per-shard blobs the checkpoint held.
	CheckpointShards int
	// ReplayedSegments/ReplayedRecords/ReplayedItems count the WAL tail
	// replayed on top of the checkpoint. A clean shutdown (final
	// checkpoint, closed log) replays zero records.
	ReplayedSegments int
	ReplayedRecords  int
	ReplayedItems    int64
	// TruncatedBytes is the torn tail dropped from the last segment
	// (crash mid-write); TruncatedSegments counts segments it happened
	// to (0 or 1 — only the last segment may legally be torn).
	TruncatedBytes    int64
	TruncatedSegments int
	// RecoveredN is the stream position after recovery: CheckpointN plus
	// ReplayedItems, verified against the summary's own N.
	RecoveredN int64
}

// Recover rebuilds target from the data directory: load the checkpoint
// (if any), replay the WAL tail through the batched ingest path with
// the original batch boundaries, truncate a torn tail, and verify
// stream-position continuity end to end. It must run once, before
// PersistTo wires the target to the store and before the target is
// shared — recovery drives the target's own Update/UpdateBatch, which
// must not re-append to the log.
//
// On a fresh (or empty) directory it recovers nothing and simply opens
// the first segment.
func (st *Store) Recover(target Target) (RecoveryStats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var stats RecoveryStats
	if st.recovered {
		return stats, fmt.Errorf("persist: Recover must run exactly once")
	}
	if st.closed {
		return stats, fmt.Errorf("persist: store is closed")
	}

	// 1. Checkpoint.
	var curN int64
	var minSeq uint64
	ckptPath := filepath.Join(st.opts.Dir, ckptName)
	if data, err := os.ReadFile(ckptPath); err == nil {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			// A checkpoint is only ever renamed into place whole, so a
			// parse failure is disk corruption, and the segments it
			// covered are gone — nothing sound to recover from.
			return stats, err
		}
		if ck.algo != st.opts.Algo {
			return stats, fmt.Errorf("persist: checkpoint is for algorithm %q, store configured for %q — wrong data directory?", ck.algo, st.opts.Algo)
		}
		if st.opts.Decode == nil {
			return stats, fmt.Errorf("persist: checkpoint present but Options.Decode is nil")
		}
		tt, tenanted := target.(TenantTarget)
		switch {
		case ck.tenants != nil && !tenanted:
			return stats, fmt.Errorf("persist: checkpoint holds a multi-tenant manifest (%d namespaces) but the target is single-tenant", len(ck.tenants))
		case ck.tenants != nil:
			// Hand blobs over still encoded; the table decodes a tenant
			// the first time it is touched (replay or query), so a
			// million-namespace restart costs no upfront decode sweep.
			if err := tt.RestoreTenants(ck.tenants); err != nil {
				return stats, fmt.Errorf("persist: restoring tenant checkpoint: %w", err)
			}
			stats.CheckpointShards = len(ck.tenants)
		case tenanted && len(ck.blobs) == 1:
			// A pre-tenant (SFCKPT01) directory adopted by a multi-tenant
			// table: its single summary becomes the default namespace
			// (K=0 means "derive the budget from the blob").
			if err := tt.RestoreTenants([]TenantState{{NS: "", Blob: ck.blobs[0]}}); err != nil {
				return stats, fmt.Errorf("persist: restoring legacy checkpoint into the default namespace: %w", err)
			}
			stats.CheckpointShards = 1
		case tenanted:
			return stats, fmt.Errorf("persist: %d-shard legacy checkpoint cannot restore into a multi-tenant table (only single-shard directories adopt)", len(ck.blobs))
		default:
			shards := make([]core.Summary, len(ck.blobs))
			for i, blob := range ck.blobs {
				s, err := st.opts.Decode(blob)
				if err != nil {
					return stats, fmt.Errorf("persist: decoding checkpoint shard %d: %w", i, err)
				}
				shards[i] = s
			}
			if err := target.RestoreState(shards); err != nil {
				return stats, fmt.Errorf("persist: restoring checkpoint: %w", err)
			}
			stats.CheckpointShards = len(ck.blobs)
		}
		if got := target.LiveN(); got != ck.n {
			return stats, fmt.Errorf("persist: restored state is at n=%d, checkpoint header says %d", got, ck.n)
		}
		curN = ck.n
		minSeq = ck.walSeq
		stats.CheckpointN = ck.n
	} else if !os.IsNotExist(err) {
		return stats, fmt.Errorf("persist: reading checkpoint: %w", err)
	}

	// 2. WAL tail.
	seqs, err := st.listSegments()
	if err != nil {
		return stats, err
	}
	live := seqs[:0]
	for _, seq := range seqs {
		if seq < minSeq {
			// Covered by the checkpoint; a crash between its rename and
			// the prune left them behind. Finish the prune.
			_ = os.Remove(st.segPath(seq))
			continue
		}
		live = append(live, seq)
	}
	if minSeq > 0 && (len(live) == 0 || live[0] != minSeq) {
		// The checkpoint's cut segment is created and synced before the
		// checkpoint is renamed into place and survives until the next
		// checkpoint supersedes it, so its absence means the log tail
		// was lost externally — recovering just the checkpoint would
		// silently drop whatever that tail held. (A lost segment later
		// in the chain is caught by the startN continuity check; only
		// trailing segments beyond the last durable rotation are
		// undetectable, the same exposure class as the un-synced tail.)
		return stats, fmt.Errorf("persist: checkpoint expects WAL segment %d, which is missing — log tail lost", minSeq)
	}
	itemBuf := make([]core.Item, 0, core.DefaultBatchSize)
	apply := func(kind byte, body []byte) (int64, error) {
		switch kind {
		case recUnit:
			var err error
			if itemBuf, err = stream.DecodeRaw(itemBuf[:0], body); err != nil {
				return 0, err
			}
			target.UpdateBatch(itemBuf)
			return int64(len(itemBuf)), nil
		case recTenant: // applyRecord validated the framing
			tt, ok := target.(TenantTarget)
			if !ok {
				return 0, fmt.Errorf("tenant-tagged record in a single-tenant store")
			}
			nsLen := int(binary.LittleEndian.Uint16(body[0:2]))
			ns := string(body[2 : 2+nsLen])
			k := int(binary.LittleEndian.Uint32(body[2+nsLen:]))
			if k <= 0 {
				return 0, fmt.Errorf("tenant record for %q with budget k=%d", ns, k)
			}
			var err error
			if itemBuf, err = stream.DecodeRaw(itemBuf[:0], body[2+nsLen+4:]); err != nil {
				return 0, err
			}
			tt.UpdateTenantBatch(ns, k, itemBuf)
			return int64(len(itemBuf)), nil
		default: // recWeighted; applyRecord validated the shape
			x := core.Item(binary.LittleEndian.Uint64(body[0:8]))
			count := int64(binary.LittleEndian.Uint64(body[8:16]))
			target.Update(x, count)
			return count, nil
		}
	}
	for i, seq := range live {
		path := st.segPath(seq)
		res, err := replaySegment(path, seq, curN, apply)
		if err != nil {
			return stats, err
		}
		if res.torn {
			if i != len(live)-1 {
				// Only a crash can tear a segment, and a crash tears the
				// *last* one; damage mid-chain means the disk lied.
				return stats, fmt.Errorf("persist: %s is corrupt mid-chain (%s) with later segments present", path, res.tornWhy)
			}
			fi, statErr := os.Stat(path)
			if statErr == nil {
				stats.TruncatedBytes = fi.Size() - res.validEnd
			}
			stats.TruncatedSegments = 1
			if err := truncateSegment(path, res.validEnd); err != nil {
				return stats, fmt.Errorf("persist: truncating torn tail of %s: %w", path, err)
			}
		}
		if res.records > 0 || !res.torn {
			stats.ReplayedSegments++
		}
		stats.ReplayedRecords += res.records
		stats.ReplayedItems += res.items
		curN += res.items
	}
	if got := target.LiveN(); got != curN {
		return stats, fmt.Errorf("persist: replayed state is at n=%d, log accounting says %d", got, curN)
	}
	stats.RecoveredN = curN

	// 3. Open a fresh segment for new appends. The torn tail (if any) is
	// already truncated and sealed, so the whole chain behind the new
	// segment is durable.
	seqs, err = st.listSegments()
	if err != nil {
		return stats, err
	}
	st.ioMu.Lock()
	st.nextSeq = minSeq + 1
	if n := len(seqs); n > 0 {
		st.nextSeq = seqs[n-1] + 1
	}
	if st.nextSeq == 0 {
		st.nextSeq = 1
	}
	st.segCount.Store(int32(len(seqs)))
	st.walN = curN
	st.writtenN = curN
	err = st.rotateLocked(curN)
	st.ioMu.Unlock()
	if err != nil {
		return stats, err
	}
	st.durableN.Store(curN)
	st.recovered = true
	st.recovery = stats
	st.writeStop = make(chan struct{})
	st.writeDone = make(chan struct{})
	go st.writer()
	return stats, nil
}
