package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"streamfreq/internal/core"
)

// Checkpoint file: magic "SFCKPT01", then a body of
//
//	u32 algo length | algo label
//	u64 stream position N
//	u64 walSeq — the first WAL segment needed on top of this state
//	u32 shard count
//	per shard: u32 blob length | Encode blob
//
// closed by a u32 CRC-32C of the whole body. The file is written to a
// temporary name, fsynced, and renamed over checkpoint.ckpt, so the
// directory always holds exactly one complete checkpoint — the rename
// either happened or it didn't.
//
// Magic "SFCKPT02" extends the body with a named tenant manifest after
// the shard section:
//
//	u32 tenant count
//	per tenant: u16 ns length | ns | u32 k | u64 n | u32 blob length | blob
//
// and relaxes the shard count to allow zero (a multi-tenant table keeps
// all state, the default namespace included, in the tenant section).
// SFCKPT01 files remain decodable — recovery treats them as a tenant
// manifest of zero, and a single-shard 01 checkpoint restores into a
// TenantTarget's default namespace.

const (
	ckptMagic  = "SFCKPT01"
	ckptMagic2 = "SFCKPT02"
	ckptName   = "checkpoint.ckpt"
	// maxCkptShards/maxCkptTenants/maxCkptBlob bound a corrupt header's
	// allocations.
	maxCkptShards  = 1 << 12
	maxCkptTenants = 1 << 24
	maxCkptBlob    = 1 << 30
)

// checkpoint is a parsed checkpoint file.
type checkpoint struct {
	algo    string
	n       int64
	walSeq  uint64
	blobs   [][]byte
	tenants []TenantState // Blob set; Summary nil
}

// encodeCheckpoint renders the file bytes: the SFCKPT01 layout when the
// checkpoint has no tenant manifest (single-summary stores keep their
// format, and old binaries keep reading their directories), SFCKPT02
// when it does.
func encodeCheckpoint(c checkpoint) []byte {
	size := len(ckptMagic) + 4 + len(c.algo) + 8 + 8 + 4 + 4 + 4
	for _, b := range c.blobs {
		size += 4 + len(b)
	}
	for _, t := range c.tenants {
		size += 2 + len(t.NS) + 4 + 8 + 4 + len(t.Blob)
	}
	tenanted := c.tenants != nil
	out := make([]byte, 0, size)
	if tenanted {
		out = append(out, ckptMagic2...)
	} else {
		out = append(out, ckptMagic...)
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(u16[:], v)
		out = append(out, u16[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		out = append(out, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		out = append(out, u64[:]...)
	}
	put32(uint32(len(c.algo)))
	out = append(out, c.algo...)
	put64(uint64(c.n))
	put64(c.walSeq)
	put32(uint32(len(c.blobs)))
	for _, b := range c.blobs {
		put32(uint32(len(b)))
		out = append(out, b...)
	}
	if tenanted {
		put32(uint32(len(c.tenants)))
		for _, t := range c.tenants {
			put16(uint16(len(t.NS)))
			out = append(out, t.NS...)
			put32(uint32(t.K))
			put64(uint64(t.N))
			put32(uint32(len(t.Blob)))
			out = append(out, t.Blob...)
		}
	}
	put32(crc32.Checksum(out[len(ckptMagic):], crcTable))
	return out
}

// decodeCheckpoint parses and verifies checkpoint bytes, accepting both
// formats.
func decodeCheckpoint(data []byte) (checkpoint, error) {
	var c checkpoint
	if len(data) < len(ckptMagic)+4 {
		return c, fmt.Errorf("persist: not a checkpoint file")
	}
	magic := string(data[:len(ckptMagic)])
	if magic != ckptMagic && magic != ckptMagic2 {
		return c, fmt.Errorf("persist: not a checkpoint file")
	}
	tenanted := magic == ckptMagic2
	body, trailer := data[len(ckptMagic):len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return c, fmt.Errorf("persist: checkpoint CRC mismatch (corrupt file)")
	}
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(body) {
			return 0, fmt.Errorf("persist: truncated checkpoint at offset %d", pos)
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if pos+8 > len(body) {
			return 0, fmt.Errorf("persist: truncated checkpoint at offset %d", pos)
		}
		v := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		return v, nil
	}
	algoLen, err := u32()
	if err != nil {
		return c, err
	}
	if algoLen > 256 || pos+int(algoLen) > len(body) {
		return c, fmt.Errorf("persist: implausible checkpoint algo length %d", algoLen)
	}
	c.algo = string(body[pos : pos+int(algoLen)])
	pos += int(algoLen)
	n, err := u64()
	if err != nil {
		return c, err
	}
	c.n = int64(n)
	if c.walSeq, err = u64(); err != nil {
		return c, err
	}
	shards, err := u32()
	if err != nil {
		return c, err
	}
	if (shards == 0 && !tenanted) || shards > maxCkptShards {
		return c, fmt.Errorf("persist: implausible checkpoint shard count %d", shards)
	}
	for i := uint32(0); i < shards; i++ {
		blobLen, err := u32()
		if err != nil {
			return c, err
		}
		if blobLen > maxCkptBlob || pos+int(blobLen) > len(body) {
			return c, fmt.Errorf("persist: implausible checkpoint blob length %d (shard %d)", blobLen, i)
		}
		c.blobs = append(c.blobs, body[pos:pos+int(blobLen)])
		pos += int(blobLen)
	}
	if tenanted {
		tenants, err := u32()
		if err != nil {
			return c, err
		}
		if tenants > maxCkptTenants {
			return c, fmt.Errorf("persist: implausible checkpoint tenant count %d", tenants)
		}
		for i := uint32(0); i < tenants; i++ {
			if pos+2 > len(body) {
				return c, fmt.Errorf("persist: truncated checkpoint at offset %d", pos)
			}
			nsLen := int(binary.LittleEndian.Uint16(body[pos:]))
			pos += 2
			if nsLen > MaxNamespaceLen || pos+nsLen > len(body) {
				return c, fmt.Errorf("persist: implausible checkpoint namespace length %d (tenant %d)", nsLen, i)
			}
			ns := string(body[pos : pos+nsLen])
			pos += nsLen
			k, err := u32()
			if err != nil {
				return c, err
			}
			n, err := u64()
			if err != nil {
				return c, err
			}
			blobLen, err := u32()
			if err != nil {
				return c, err
			}
			if k == 0 || int64(n) < 0 || blobLen > maxCkptBlob || pos+int(blobLen) > len(body) {
				return c, fmt.Errorf("persist: implausible checkpoint tenant entry (ns=%q k=%d blob=%d)", ns, k, blobLen)
			}
			c.tenants = append(c.tenants, TenantState{NS: ns, K: int(k), N: int64(n), Blob: body[pos : pos+int(blobLen)]})
			pos += int(blobLen)
		}
	}
	if pos != len(body) {
		return c, fmt.Errorf("persist: %d trailing checkpoint bytes", len(body)-pos)
	}
	return c, nil
}

// Checkpoint writes a durable snapshot of target's current state and
// truncates the WAL to the segments past it:
//
//  1. under the target's snapshot barrier, clone every shard and rotate
//     the log — the clone and the new segment describe the same instant;
//  2. off the hot path, Encode the clones and atomically rename the
//     checkpoint file into place;
//  3. delete the segments the checkpoint covers.
//
// Ingest is blocked only for step 1 (a deep copy of the counters, the
// same cost as a serving-snapshot refresh). On any failure before the
// rename the previous checkpoint remains authoritative and the log is
// still continuous — a rotation without a checkpoint just leaves one
// more segment to replay.
func (st *Store) Checkpoint(target Target) (Stats, error) {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()

	st.mu.Lock()
	if err := st.failed; err != nil {
		st.mu.Unlock()
		return Stats{}, fmt.Errorf("persist: store failed: %w", err)
	}
	if !st.recovered || st.closed {
		st.mu.Unlock()
		return Stats{}, fmt.Errorf("persist: checkpoint before Recover or after Close")
	}
	st.mu.Unlock()

	var (
		cutN   int64
		newSeq uint64
		cutErr error
	)
	cut := func(n int64) {
		// The barrier quiesces appends, so the staged tail is complete:
		// drain it to the old segment, seal, and rotate — the new segment
		// begins exactly at the clone's stream position.
		st.mu.Lock()
		if n != st.walN {
			// Updates reached the summary without passing through the log
			// (PersistTo not wired, or wired late). A checkpoint would
			// paper over the hole, so refuse and latch.
			cutErr = fmt.Errorf("persist: summary is at n=%d but the log ends at n=%d — updates bypassed the WAL", n, st.walN)
			st.fail(cutErr)
			st.mu.Unlock()
			return
		}
		chunk := st.pending
		st.pending = st.takeSpareLocked()
		st.ioMu.Lock()
		st.mu.Unlock()
		cutErr = st.writeChunkLocked(chunk, n)
		if cutErr == nil {
			cutErr = st.rotateLocked(n)
		}
		if cutErr == nil {
			cutN = n
			newSeq = st.seg.seq
		}
		st.ioMu.Unlock()

		st.mu.Lock()
		st.recycleLocked(chunk)
		if cutErr != nil {
			st.fail(cutErr)
		}
		st.mu.Unlock()
	}

	ck := checkpoint{algo: st.opts.Algo}
	if tt, ok := target.(TenantTarget); ok {
		// Multi-tenant manifest: every namespace, resident or evicted,
		// named and tagged with its counter budget. Entries arriving
		// with Blob already set (evicted tenants) are written as-is —
		// encode→decode→encode is byte-identical, so re-encoding would
		// only cost time.
		tenants := tt.TenantSnapshotBarrier(cut)
		if cutErr != nil {
			return Stats{}, cutErr
		}
		for i := range tenants {
			if tenants[i].Blob != nil {
				continue
			}
			blob, err := core.EncodeSummary(tenants[i].Summary)
			if err != nil {
				return Stats{}, fmt.Errorf("persist: encoding tenant %q: %w", tenants[i].NS, err)
			}
			tenants[i].Blob = blob
			tenants[i].Summary = nil
		}
		ck.tenants = tenants
		if len(tenants) == 0 {
			// An empty table still needs a valid file; SFCKPT02 allows
			// zero shards and zero tenants.
			ck.tenants = []TenantState{}
		}
	} else {
		clones := target.SnapshotBarrier(cut)
		if cutErr != nil {
			return Stats{}, cutErr
		}
		blobs := make([][]byte, len(clones))
		for i, c := range clones {
			blob, err := core.EncodeSummary(c)
			if err != nil {
				return Stats{}, fmt.Errorf("persist: encoding shard %d: %w", i, err)
			}
			blobs[i] = blob
		}
		ck.blobs = blobs
	}
	ck.n, ck.walSeq = cutN, newSeq
	data := encodeCheckpoint(ck)
	if err := writeFileAtomic(st.opts.Dir, ckptName, data); err != nil {
		return Stats{}, fmt.Errorf("persist: writing checkpoint: %w", err)
	}
	st.pruneSegments(newSeq)

	st.mu.Lock()
	st.checkpoints++
	st.lastCkptN = cutN
	st.lastCkptBytes = int64(len(data))
	st.lastCkptTime = time.Now()
	st.mu.Unlock()
	return st.Stats(), nil
}

// pruneSegments deletes WAL segments before keepSeq; they are covered
// by the checkpoint just renamed into place. Deletion failures are
// logged into no one — the segments are garbage, harmless to leave, and
// the next checkpoint retries — but the segment count stays honest.
func (st *Store) pruneSegments(keepSeq uint64) {
	seqs, err := st.listSegments()
	if err != nil {
		return
	}
	removed := 0
	for _, seq := range seqs {
		if seq < keepSeq {
			if os.Remove(st.segPath(seq)) == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		_ = syncDir(st.opts.Dir)
		st.segCount.Add(int32(-removed))
	}
}

// writeFileAtomic writes name under dir via a temporary file, fsync,
// rename, and directory fsync.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
