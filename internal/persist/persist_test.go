package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/sketches"
	"streamfreq/internal/zipf"
)

// testDecode is the registry dispatch the tests inject: enough formats
// to recover everything the tests checkpoint.
func testDecode(b []byte) (core.Summary, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("short blob")
	}
	switch string(b[:4]) {
	case "SS01":
		return counters.DecodeSpaceSavingHeap(b)
	case "SL01":
		return counters.DecodeSpaceSavingList(b)
	case "CM01":
		return sketches.DecodeCountMin(b)
	}
	return nil, fmt.Errorf("unknown magic %q", b[:4])
}

func testStream(t testing.TB, n int) []core.Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, 0xD15C, true)
	if err != nil {
		t.Fatal(err)
	}
	return g.Stream(n)
}

// batchesOf splits items into uneven batches like a live ingest mix.
func batchesOf(items []core.Item) [][]core.Item {
	sizes := []int{512, 3, 1024, 97, 4096}
	var out [][]core.Item
	for i := 0; len(items) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n > len(items) {
			n = len(items)
		}
		out = append(out, items[:n])
		items = items[n:]
	}
	return out
}

func openStore(t testing.TB, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	if opts.Decode == nil {
		opts.Decode = testDecode
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newSSH(k int) *core.Concurrent { return core.NewConcurrent(counters.NewSpaceSavingHeap(k)) }

func encodeState(t testing.TB, target Target) []byte {
	t.Helper()
	clones := target.SnapshotBarrier(nil)
	var buf bytes.Buffer
	for _, c := range clones {
		blob, err := c.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(blob)
	}
	return buf.Bytes()
}

// recoverFresh opens a store over dir and recovers target, failing the
// test on error.
func recoverFresh(t testing.TB, dir string, opts Options, target Target) (*Store, RecoveryStats) {
	t.Helper()
	st := openStore(t, dir, opts)
	stats, err := st.Recover(target)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return st, stats
}

// TestWALRoundTrip: append-only run (no checkpoint), dirty "crash"
// (no Close, but fsync=always so everything reached disk), recover:
// the recovered state is bit-identical to the original and the stats
// account for every record.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncAlways}

	orig := newSSH(101)
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	batches := batchesOf(testStream(t, 10_000))
	for _, b := range batches {
		orig.UpdateBatch(b)
	}
	orig.Update(42, 7) // weighted scalar path
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Checkpoint.

	rec := newSSH(101)
	st2, stats := recoverFresh(t, dir, opts, rec)
	defer st2.Close()
	if stats.ReplayedRecords != len(batches)+1 {
		t.Fatalf("replayed %d records, want %d", stats.ReplayedRecords, len(batches)+1)
	}
	if stats.ReplayedItems != 10_007 || stats.RecoveredN != 10_007 {
		t.Fatalf("replayed %d items, recovered n=%d, want 10007", stats.ReplayedItems, stats.RecoveredN)
	}
	if rec.LiveN() != orig.LiveN() {
		t.Fatalf("recovered N=%d, original %d", rec.LiveN(), orig.LiveN())
	}
	if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
		t.Fatal("recovered state is not bit-identical to the original")
	}
}

// TestCheckpointCycle: checkpoint mid-stream prunes covered segments;
// recovery = checkpoint + tail replay; a clean shutdown (final
// checkpoint + Close) replays zero records.
func TestCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncAlways, SegmentMaxBytes: 16 << 10}

	orig := newSSH(101)
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	batches := batchesOf(testStream(t, 20_000))
	half := len(batches) / 2
	var preN int64
	for _, b := range batches[:half] {
		orig.UpdateBatch(b)
		preN += int64(len(b))
	}
	ckStats, err := st.Checkpoint(orig)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ckStats.LastCkptN != preN || ckStats.Checkpoints != 1 {
		t.Fatalf("checkpoint stats = %+v, want n=%d", ckStats, preN)
	}
	seqs, _ := st.listSegments()
	if len(seqs) != 1 {
		t.Fatalf("checkpoint left %d segments, want 1 (the fresh active one)", len(seqs))
	}
	for _, b := range batches[half:] {
		orig.UpdateBatch(b)
	}

	// Crash-recover: checkpoint + tail.
	rec := newSSH(101)
	st2, stats := recoverFresh(t, dir, opts, rec)
	if stats.CheckpointN != preN {
		t.Fatalf("CheckpointN = %d, want %d", stats.CheckpointN, preN)
	}
	if stats.ReplayedRecords != len(batches)-half {
		t.Fatalf("replayed %d records, want %d", stats.ReplayedRecords, len(batches)-half)
	}
	if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
		t.Fatal("recovered state differs from original")
	}

	// Clean shutdown: final checkpoint, close, recover replays nothing.
	if _, err := st2.Checkpoint(rec); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec2 := newSSH(101)
	st3, stats3 := recoverFresh(t, dir, opts, rec2)
	defer st3.Close()
	if stats3.ReplayedRecords != 0 || stats3.TruncatedBytes != 0 {
		t.Fatalf("clean restart replayed %d records, truncated %d bytes; want 0/0", stats3.ReplayedRecords, stats3.TruncatedBytes)
	}
	if !bytes.Equal(encodeState(t, rec2), encodeState(t, rec)) {
		t.Fatal("clean-restart state differs")
	}
}

// TestTornTailTruncated: cutting the last segment at an arbitrary byte
// offset loses only the records past the cut; recovery truncates the
// tear, recovers the longest durable prefix, and a second recovery of
// the same directory replays the identical prefix with nothing left to
// truncate.
func TestTornTailTruncated(t *testing.T) {
	for _, cutBack := range []int64{1, 7, 9, 64, 1000} {
		t.Run(fmt.Sprintf("cut-%d", cutBack), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Algo: "SSH", Fsync: FsyncAlways}
			orig := newSSH(101)
			st, _ := recoverFresh(t, dir, opts, orig)
			orig.PersistTo(st)
			for _, b := range batchesOf(testStream(t, 8_000)) {
				orig.UpdateBatch(b)
			}
			seqs, _ := st.listSegments()
			path := st.segPath(seqs[len(seqs)-1])
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-cutBack); err != nil {
				t.Fatal(err)
			}

			rec := newSSH(101)
			_, stats := recoverFresh(t, dir, opts, rec)
			if stats.TruncatedSegments != 1 {
				t.Fatalf("stats = %+v, want one truncated segment", stats)
			}
			if rec.LiveN() >= orig.LiveN() || rec.LiveN() != stats.RecoveredN {
				t.Fatalf("recovered n=%d (stats %d), original %d — tear must cost at least the cut record",
					rec.LiveN(), stats.RecoveredN, orig.LiveN())
			}
			rec2 := newSSH(101)
			_, stats2 := recoverFresh(t, dir, opts, rec2)
			if stats2.TruncatedSegments != 0 || stats2.RecoveredN != stats.RecoveredN {
				t.Fatalf("second recovery = %+v, want clean replay to n=%d", stats2, stats.RecoveredN)
			}
			if !bytes.Equal(encodeState(t, rec2), encodeState(t, rec)) {
				t.Fatal("second recovery produced different state")
			}
		})
	}
}

// TestMidChainCorruptionFails: damage in a non-last segment is not a
// tear and must fail recovery loudly.
func TestMidChainCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncAlways, SegmentMaxBytes: 8 << 10}
	orig := newSSH(101)
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	for _, b := range batchesOf(testStream(t, 30_000)) {
		orig.UpdateBatch(b)
	}
	seqs, _ := st.listSegments()
	if len(seqs) < 3 {
		t.Fatalf("want ≥3 segments for a mid-chain wound, got %d", len(seqs))
	}
	path := st.segPath(seqs[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, opts)
	if _, err := st2.Recover(newSSH(101)); err == nil {
		t.Fatal("recovery over mid-chain corruption must fail")
	}
}

// TestWeightedAndTurnstile: scalar weighted updates — including
// negative turnstile counts into a sketch — replay exactly.
func TestWeightedAndTurnstile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "CM", Fsync: FsyncAlways}
	orig := core.NewConcurrent(sketches.NewCountMin(4, 256, 9))
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	orig.Update(5, 100)
	orig.Update(9, 40)
	orig.Update(5, -30)
	orig.UpdateBatch([]core.Item{5, 5, 9})

	rec := core.NewConcurrent(sketches.NewCountMin(4, 256, 9))
	st2, stats := recoverFresh(t, dir, opts, rec)
	defer st2.Close()
	if stats.RecoveredN != 113 {
		t.Fatalf("recovered n=%d, want 113", stats.RecoveredN)
	}
	if got, want := rec.Estimate(5), orig.Estimate(5); got != want {
		t.Fatalf("Estimate(5) = %d, want %d", got, want)
	}
	if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
		t.Fatal("recovered sketch differs")
	}
}

// TestShardedCheckpointRestore: per-shard blobs restore into the same
// shard layout; a different shard count is refused.
func TestShardedCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncAlways}
	mk := func() core.Summary { return counters.NewSpaceSavingHeap(101) }
	orig := core.NewSharded(4, mk)
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	for _, b := range batchesOf(testStream(t, 12_000)) {
		orig.UpdateBatch(b)
	}
	if _, err := st.Checkpoint(orig); err != nil {
		t.Fatal(err)
	}
	orig.UpdateBatch([]core.Item{1, 2, 3, 4, 5, 6, 7, 8})

	rec := core.NewSharded(4, mk)
	st2, stats := recoverFresh(t, dir, opts, rec)
	st2.Close()
	if stats.CheckpointShards != 4 {
		t.Fatalf("CheckpointShards = %d, want 4", stats.CheckpointShards)
	}
	if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
		t.Fatal("recovered sharded state differs")
	}

	st3 := openStore(t, dir, opts)
	if _, err := st3.Recover(core.NewSharded(2, mk)); err == nil {
		t.Fatal("restoring a 4-shard checkpoint into 2 shards must fail")
	}
}

// TestAlgoMismatchRefused: a checkpoint taken for one algorithm refuses
// to load into a store configured for another.
func TestAlgoMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	orig := newSSH(51)
	st, _ := recoverFresh(t, dir, Options{Algo: "SSH", Fsync: FsyncAlways}, orig)
	orig.PersistTo(st)
	orig.UpdateBatch([]core.Item{1, 2, 3})
	if _, err := st.Checkpoint(orig); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, Options{Algo: "CM"})
	if _, err := st2.Recover(core.NewConcurrent(sketches.NewCountMin(4, 256, 9))); err == nil {
		t.Fatal("algo mismatch must fail recovery")
	}
}

// TestAppendBeforeRecoverLatches: wiring PersistTo without Recover is a
// bug the store latches as a failure instead of logging into the void.
func TestAppendBeforeRecoverLatches(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{Algo: "SSH"})
	st.AppendBatch([]core.Item{1})
	if st.Err() == nil {
		t.Fatal("append before Recover must latch a failure")
	}
}

// TestFsyncPolicies: the interval and never policies still produce a
// fully recoverable log across a clean Close, and the interval flusher
// advances durability on its own.
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Algo: "SSH", Fsync: policy, FsyncInterval: 5 * time.Millisecond}
			orig := newSSH(101)
			st, _ := recoverFresh(t, dir, opts, orig)
			orig.PersistTo(st)
			for _, b := range batchesOf(testStream(t, 6_000)) {
				orig.UpdateBatch(b)
			}
			if policy == FsyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for {
					if st.Stats().DurableN == orig.LiveN() {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("flusher never made the log durable (durable=%d, n=%d)", st.Stats().DurableN, orig.LiveN())
					}
					time.Sleep(time.Millisecond)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			rec := newSSH(101)
			st2, _ := recoverFresh(t, dir, opts, rec)
			st2.Close()
			if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
				t.Fatal("recovered state differs after clean close")
			}
		})
	}
}

// TestCheckpointWithoutWALWiringRefused: a checkpoint over a target
// whose updates bypassed the log would hide a durability hole; the
// store detects the position mismatch and latches.
func TestCheckpointWithoutWALWiringRefused(t *testing.T) {
	dir := t.TempDir()
	orig := newSSH(51)
	st, _ := recoverFresh(t, dir, Options{Algo: "SSH"}, orig)
	// PersistTo deliberately not called.
	orig.UpdateBatch([]core.Item{1, 2, 3})
	if _, err := st.Checkpoint(orig); err == nil {
		t.Fatal("checkpoint with bypassed WAL must fail")
	}
	if st.Err() == nil {
		t.Fatal("the mismatch must latch the store")
	}
}

// TestMissingCheckpointSegmentFails: the checkpoint's cut segment is
// guaranteed on disk; losing it means losing the log tail, and recovery
// must say so instead of silently serving the checkpoint alone.
func TestMissingCheckpointSegmentFails(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "SSH", Fsync: FsyncAlways}
	orig := newSSH(51)
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	orig.UpdateBatch([]core.Item{1, 2, 3})
	if _, err := st.Checkpoint(orig); err != nil {
		t.Fatal(err)
	}
	orig.UpdateBatch([]core.Item{4, 5})
	seqs, _ := st.listSegments()
	if err := os.Remove(st.segPath(seqs[len(seqs)-1])); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, opts)
	if _, err := st2.Recover(newSSH(51)); err == nil {
		t.Fatal("recovery with the checkpoint's WAL segment missing must fail")
	}
}

// TestOversizedBatchSplits: a batch past the per-record cap is logged
// as several records — never as one record replay would reject — and
// the full item count survives. The bit-level assertion uses a linear
// sketch, which is insensitive to the (documented) batch-boundary
// shift the split introduces for counter summaries' internals.
func TestOversizedBatchSplits(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algo: "CM", Fsync: FsyncAlways}
	mk := func() *core.Concurrent { return core.NewConcurrent(sketches.NewCountMin(4, 256, 9)) }
	orig := mk()
	st, _ := recoverFresh(t, dir, opts, orig)
	orig.PersistTo(st)
	big := make([]core.Item, maxBatchItemsPerRecord+3)
	for i := range big {
		big[i] = core.Item(i % 97)
	}
	orig.UpdateBatch(big)
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	rec := mk()
	st2, stats := recoverFresh(t, dir, opts, rec)
	defer st2.Close()
	if stats.ReplayedRecords != 2 || stats.ReplayedItems != int64(len(big)) {
		t.Fatalf("stats = %+v, want 2 records covering %d items", stats, len(big))
	}
	if !bytes.Equal(encodeState(t, rec), encodeState(t, orig)) {
		t.Fatal("recovered sketch differs after oversized-batch split")
	}
}

// TestLeftoverTmpSwept: interrupted checkpoint temporaries are removed
// at Open.
func TestLeftoverTmpSwept(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ckptName+".123.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	openStore(t, dir, Options{Algo: "SSH"})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("tmp file survived Open")
	}
}
