package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"streamfreq/internal/core"
)

// Segment and record framing. See the package comment for the layout.

const (
	segMagic      = "SFWAL001"
	segHeaderSize = 24
	recHeaderSize = 8
	// maxRecordBytes bounds one record's payload against corrupt length
	// fields: far above any real ingest batch (serve bounds bodies, and
	// the wrappers pass batches of a few thousand items), far below
	// anything that could balloon replay memory.
	maxRecordBytes = 1 << 26

	recUnit     = 0 // body = stream.AppendRaw items, one unit count each
	recWeighted = 1 // body = item u64, count i64
	// recTenant tags a unit-count batch with its namespace and the
	// tenant's counter budget: u16 ns length | ns bytes | u32 k | items.
	// Carrying k in every record makes replay self-sufficient — a tenant
	// first seen after the last checkpoint is instantiated at exactly
	// the budget it had when the record was written, which is what makes
	// per-tenant recovery bit-identical. Old logs (kinds 0 and 1 only)
	// replay unchanged.
	recTenant = 2
)

// MaxNamespaceLen bounds a tenant namespace in WAL records, checkpoint
// manifests, and the serving layer. 128 bytes covers any sane tenant
// key and keeps the per-record framing overhead trivial.
const MaxNamespaceLen = 128

// segment is the active WAL file. Chunks of framed records are written
// directly (the Store's pending buffer is the write buffer); fsync is
// decoupled from writes.
type segment struct {
	f      *os.File
	seq    uint64
	startN int64
	size   int64 // bytes written, including the header
	// syncMu serializes fsync against close so the background flusher
	// can sync without holding any append-path lock (an fsync can take
	// tens of milliseconds; holding a write lock across it would stall
	// ingest — see Store.flusher and Store.writer).
	syncMu sync.Mutex
}

// createSegment creates, headers, and syncs a new segment file, so a
// segment observed by recovery is never headerless unless the creating
// process died mid-write (which replay treats as a torn, empty
// segment).
func createSegment(path string, seq uint64, startN int64) (*segment, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: creating segment: %w", err)
	}
	s := &segment{f: f, seq: seq, startN: startN}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(startN))
	if _, err := f.Write(hdr[:]); err == nil {
		err = s.sync()
	} else {
		err = fmt.Errorf("persist: writing segment header: %w", err)
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	s.size = segHeaderSize
	return s, nil
}

// write appends a chunk of framed records to the file.
func (s *segment) write(chunk []byte) error {
	if _, err := s.f.Write(chunk); err != nil {
		return err
	}
	s.size += int64(len(chunk))
	return nil
}

// sync fsyncs the file.
func (s *segment) sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	return s.f.Sync()
}

// seal is sync; the name marks call sites where the segment stops being
// the active one (rotation, close).
func (s *segment) seal() error { return s.sync() }

func (s *segment) close() {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	_ = s.f.Close()
}

// appendRecord frames one record into dst: header (length, CRC) then
// payload (kind byte + body). The body encoding is stream.AppendRaw's
// little-endian item layout, emitted with direct index writes into a
// pre-grown buffer — this runs under the ingest lock for every batch,
// so the per-item append-call overhead is worth shaving.
func appendRecord(dst []byte, kind byte, ns string, k int, items []core.Item, x core.Item, count int64) []byte {
	var bodyLen int
	switch kind {
	case recUnit:
		bodyLen = 8 * len(items)
	case recWeighted:
		bodyLen = 16
	case recTenant:
		bodyLen = 2 + len(ns) + 4 + 8*len(items)
	}
	start := len(dst)
	need := recHeaderSize + 1 + bodyLen
	if cap(dst)-start < need {
		// Grow geometrically: exact-fit growth would make a run of
		// staged appends quadratic (every record re-copying the whole
		// buffer), and this runs under the ingest lock.
		newCap := 2*cap(dst) + need
		grown := make([]byte, start, newCap)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+need]
	dst[start+recHeaderSize] = kind
	body := dst[start+recHeaderSize+1:]
	switch kind {
	case recUnit:
		for i, it := range items {
			binary.LittleEndian.PutUint64(body[i*8:], uint64(it))
		}
	case recWeighted:
		binary.LittleEndian.PutUint64(body[0:8], uint64(x))
		binary.LittleEndian.PutUint64(body[8:16], uint64(count))
	case recTenant:
		binary.LittleEndian.PutUint16(body[0:2], uint16(len(ns)))
		copy(body[2:], ns)
		off := 2 + len(ns)
		binary.LittleEndian.PutUint32(body[off:], uint32(k))
		off += 4
		for i, it := range items {
			binary.LittleEndian.PutUint64(body[off+i*8:], uint64(it))
		}
	}
	payload := dst[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// replayResult is what scanning one segment yields.
type replayResult struct {
	records  int
	items    int64 // stream advance applied (weighted counts included)
	validEnd int64 // file offset just past the last whole, applied record
	torn     bool  // the scan stopped before EOF (tear or corruption)
	tornWhy  string
}

// replaySegment scans one segment file, verifying the header against
// the expected sequence and stream position, and applies each whole,
// CRC-clean record through apply (which returns the record's stream
// advance). The scan stops at the first invalid record — a short
// header, short payload, CRC mismatch, malformed body, or an apply
// that panics. A stop with nothing valid after it is a tear (torn=true;
// the caller truncates); a stop with a CRC-clean frame still following
// is mid-file damage in front of acknowledged data and returns an
// error, as does damage in a non-last segment (the caller's
// position-in-chain check). The file is never modified here.
func replaySegment(path string, wantSeq uint64, wantStartN int64, apply func(kind byte, body []byte) (int64, error)) (replayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return replayResult{}, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<18)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// Headerless or short file: a segment torn at creation. Nothing
		// to replay; the caller truncates it away entirely.
		return replayResult{torn: true, tornWhy: "short segment header"}, nil
	}
	if string(hdr[:8]) != segMagic {
		return replayResult{}, fmt.Errorf("persist: %s: bad segment magic %q", path, hdr[:8])
	}
	if seq := binary.LittleEndian.Uint64(hdr[8:16]); seq != wantSeq {
		return replayResult{}, fmt.Errorf("persist: %s: header sequence %d does not match filename", path, seq)
	}
	if startN := int64(binary.LittleEndian.Uint64(hdr[16:24])); startN != wantStartN {
		return replayResult{}, fmt.Errorf("persist: %s: starts at stream position %d, expected %d — the log chain is not continuous", path, startN, wantStartN)
	}

	res := replayResult{validEnd: segHeaderSize}
	var rh [recHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err != io.EOF {
				res.torn, res.tornWhy = true, "short record header"
			}
			return res, nil
		}
		length := binary.LittleEndian.Uint32(rh[0:4])
		crc := binary.LittleEndian.Uint32(rh[4:8])
		if length == 0 || length > maxRecordBytes {
			res.torn, res.tornWhy = true, fmt.Sprintf("implausible record length %d", length)
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			res.torn, res.tornWhy = true, "short record payload"
			return res, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			if nextFrameValid(br) {
				return res, fmt.Errorf("persist: %s: record at offset %d fails its CRC with valid records after it — mid-segment corruption, not a tear", path, res.validEnd)
			}
			res.torn, res.tornWhy = true, "record CRC mismatch"
			return res, nil
		}
		advance, err := applyRecord(payload, apply)
		if err != nil {
			if nextFrameValid(br) {
				// A tear happens at the tail and cannot be followed by
				// CRC-clean frames: this record is poison (malformed
				// body or panicking apply) sitting in front of
				// acknowledged data. Truncating would silently drop
				// that data — fail loudly instead.
				return res, fmt.Errorf("persist: %s: record at offset %d does not replay (%v) and valid records follow it", path, res.validEnd, err)
			}
			res.torn, res.tornWhy = true, err.Error()
			return res, nil
		}
		res.records++
		res.items += advance
		res.validEnd += int64(recHeaderSize + len(payload))
	}
}

// nextFrameValid reports whether another whole, CRC-clean record frame
// follows on br — the decider between "poison at the exact tail" (trim
// it like a tear) and "poison mid-segment" (fail recovery rather than
// drop the valid records behind it). br is consumed; the caller is
// aborting the scan either way.
func nextFrameValid(br *bufio.Reader) bool {
	var rh [recHeaderSize]byte
	if _, err := io.ReadFull(br, rh[:]); err != nil {
		return false
	}
	length := binary.LittleEndian.Uint32(rh[0:4])
	if length == 0 || length > maxRecordBytes {
		return false
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return false
	}
	return crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(rh[4:8])
}

// applyRecord validates the payload's shape and applies it, converting
// an apply panic into an error: recovery feeds bytes from disk into
// summaries whose Update contracts panic on counts they reject (a
// counter summary offered a negative count), and a forged-but-CRC-valid
// record must degrade into an error, never crash the daemon.
func applyRecord(payload []byte, apply func(kind byte, body []byte) (int64, error)) (advance int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			advance, err = 0, fmt.Errorf("record replay panicked: %v", r)
		}
	}()
	kind, body := payload[0], payload[1:]
	switch kind {
	case recUnit:
		if len(body) == 0 || len(body)%8 != 0 {
			return 0, fmt.Errorf("unit record body of %d bytes", len(body))
		}
	case recWeighted:
		if len(body) != 16 {
			return 0, fmt.Errorf("weighted record body of %d bytes", len(body))
		}
	case recTenant:
		if len(body) < 2 {
			return 0, fmt.Errorf("tenant record body of %d bytes", len(body))
		}
		nsLen := int(binary.LittleEndian.Uint16(body[0:2]))
		if nsLen > MaxNamespaceLen || len(body) < 2+nsLen+4 {
			return 0, fmt.Errorf("tenant record with implausible namespace length %d", nsLen)
		}
		if itemsLen := len(body) - 2 - nsLen - 4; itemsLen == 0 || itemsLen%8 != 0 {
			return 0, fmt.Errorf("tenant record item section of %d bytes", len(body)-2-nsLen-4)
		}
	default:
		return 0, fmt.Errorf("unknown record kind %d", kind)
	}
	return apply(kind, body)
}

// truncateSegment drops a torn tail, leaving the longest valid prefix
// durable, so the next recovery replays the same prefix cleanly. A
// segment torn inside its header is removed outright.
func truncateSegment(path string, validEnd int64) error {
	if validEnd < segHeaderSize {
		return os.Remove(path)
	}
	if err := os.Truncate(path, validEnd); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
