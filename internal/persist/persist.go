// Package persist makes a freqd summary durable: a segmented
// write-ahead log of ingest batches plus periodic checkpoint snapshots,
// so a crashed server restarts from its last durable position instead
// of replaying the whole stream — the operating mode the paper's
// ISP/search-engine deployments assume for their long-lived summaries.
//
// On-disk layout (all little-endian), inside one data directory:
//
//	wal-NNNNNNNNNN.seg   WAL segments, ascending sequence numbers
//	checkpoint.ckpt      latest checkpoint (atomically renamed into place)
//
// Each segment starts with a 24-byte header —
//
//	offset  size  field
//	0       8     magic "SFWAL001"
//	8       8     sequence number (must match the filename)
//	16      8     startN: the stream position (Summary.N) the log had
//	              when this segment was created
//
// — followed by records, each framed as
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// where the payload is one kind byte then the body: kind 0 is a
// unit-count batch (the stream.AppendRaw item encoding, exactly the
// slice passed to UpdateBatch, boundaries preserved — order-sensitive
// summaries like Misra–Gries replay bit-identically only if batch
// boundaries survive), kind 1 is a single weighted update (item,
// count), covering the scalar Update path and turnstile deletions.
//
// The contract with the core wrappers (core.Persister): every update is
// offered to the log under the ingest lock before it is applied, so log
// order equals apply order and a crash can only lose the un-synced
// tail, never reorder it. Checkpoints use core.SnapshotBarrier to clone
// the summary and rotate the log at one quiesced instant: the
// checkpoint blob plus the segments at or after its cut reproduce the
// stream exactly, and older segments are deleted.
//
// Durability is group-committed: an append encodes its record into an
// in-memory staging buffer (microseconds, under the ingest lock) and a
// single writer goroutine drains staged chunks to the segment file,
// with fsync on a policy-controlled cadence off every hot lock. fsync
// policy "always" makes the append itself write and sync — nothing
// acknowledged is ever lost; "interval" bounds loss to one commit
// window; "never" leaves syncing to the OS. If staging outruns the
// disk past a fixed cap, appends write inline — backpressure instead
// of unbounded memory.
//
// Recovery (Store.Recover) loads the latest checkpoint — per-shard
// Encode blobs, decoded through the caller-supplied registry dispatch —
// then replays the WAL tail through UpdateBatch/Update, verifying
// stream-position continuity at every segment boundary. A torn tail
// (crash mid-write) is truncated to the last whole record, not fatal;
// a bad record with acknowledged data still behind it — valid frames
// following it in the same segment, or later segments in the chain —
// is real corruption and fails recovery loudly rather than dropping
// that data.
package persist

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
)

// FsyncPolicy says when WAL appends become durable.
type FsyncPolicy int

const (
	// FsyncInterval group-commits: appends are staged in memory and the
	// writer syncs the segment every Options.FsyncInterval, so a crash
	// loses at most one interval of acknowledged ingest. The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways writes and syncs inside every append: nothing
	// acknowledged is ever lost, at the cost of one fsync per batch.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache (and segment
	// rotation/close, which always sync): fastest, weakest.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (have always, interval, never)", s)
}

// Target is the wrapper surface a durable summary must expose:
// core.Concurrent and core.Sharded both satisfy it.
type Target interface {
	core.Summary
	core.BatchUpdater
	// LiveN reports the live (non-snapshot) stream position; recovery
	// verifies it against the log's continuity accounting.
	LiveN() int64
	// PersistTo routes subsequent updates through the log; see
	// core.Persister.
	PersistTo(core.Persister)
	// SnapshotBarrier clones the state and cuts the log at one quiesced
	// instant; see core.Concurrent.SnapshotBarrier.
	SnapshotBarrier(cut func(n int64)) []core.Summary
	// RestoreState injects recovered per-shard state at startup.
	RestoreState([]core.Summary) error
}

// TenantState is one namespace's durable state: its counter budget at
// instantiation, its stream position, and its summary — decoded
// (Summary set) on the snapshot side, or still encoded (Blob set) on
// the restore side, where the multi-tenant table keeps blobs inert
// until the tenant is touched. N rides in the manifest so a restore can
// verify global stream continuity without decoding a single blob.
type TenantState struct {
	NS      string
	K       int
	N       int64
	Summary core.Summary
	Blob    []byte
}

// TenantTarget extends Target for the multi-tenant table: tenant-tagged
// WAL records replay through UpdateTenantBatch, and checkpoints carry a
// named per-tenant manifest instead of anonymous shard blobs. A durable
// target that does not implement TenantTarget never sees recTenant
// records (they are only written through AppendTenantBatch) and keeps
// the SFCKPT01 checkpoint format.
type TenantTarget interface {
	Target
	// UpdateTenantBatch applies one replayed batch to namespace ns,
	// lazily instantiating it with k counters if absent.
	UpdateTenantBatch(ns string, k int, items []core.Item)
	// TenantSnapshotBarrier clones every known tenant (resident and
	// evicted) and cuts the log at one quiesced instant, mirroring
	// Target.SnapshotBarrier.
	TenantSnapshotBarrier(cut func(n int64)) []TenantState
	// RestoreTenants injects recovered tenant state at startup; entries
	// arrive with Blob set and may be decoded lazily.
	RestoreTenants([]TenantState) error
}

// Options configures a Store.
type Options struct {
	// Dir is the data directory (required); created if absent.
	Dir string
	// Algo is the algorithm label stamped into checkpoints; recovery
	// refuses a checkpoint taken for a different algorithm, so pointing
	// freqd -algo CM at an SSH data directory fails fast instead of
	// merging incompatible state.
	Algo string
	// Fsync is the WAL durability policy.
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit window for FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentMaxBytes rotates the active segment when it grows past this
	// size (default 64 MiB), bounding both per-file replay work and the
	// space reclaimed lazily at checkpoints.
	SegmentMaxBytes int64
	// Decode turns a checkpoint blob back into a summary — the root
	// package's magic dispatch (streamfreq.Decode), injected so this
	// package depends only on core. Required to recover a checkpoint.
	Decode func([]byte) (core.Summary, error)
}

// drainThresholdBytes is the staging high-water mark: an append that
// fills staging past it writes the whole chunk out inline. One write()
// per ~threshold of log amortizes the syscall and filesystem cost far
// below a write-per-batch, bounds staging memory at a few hundred KiB,
// and — when the disk genuinely cannot keep up — makes the appender pay
// the wait, which is exactly the backpressure a log must exert. Records
// under the threshold are drained by the background writer's tick, so
// an idle tail never lingers in memory beyond one commit window.
const drainThresholdBytes = 256 << 10

// Store is the durability state of one summary. It implements
// core.Persister.
//
// Locking: mu guards the staging buffer, stream accounting, and the
// failure latch — everything an append touches; ioMu guards the active
// segment, rotation, and file writes. Drains hold mu only to detach the
// staged chunk (lock coupling: ioMu is acquired before mu is released,
// so chunks reach the file in stage order), then write under ioMu
// alone, so appends keep staging while the disk works. fsync runs under
// neither — only the per-segment syncMu, which exists to serialize
// against close.
type Store struct {
	opts Options

	mu        sync.Mutex
	pending   []byte   // staged records not yet handed to the file
	spares    [][]byte // recycled chunk buffers (bounded freelist)
	walN      int64    // stream position at the end of the log (incl. staged)
	failed    error    // first failure; latches the store read-only
	closed    bool
	recovered bool

	// Append-side stats, under mu.
	appendedRecords int64
	appendedBytes   int64
	inlineDrains    int64
	checkpoints     int64
	lastCkptN       int64
	lastCkptBytes   int64
	lastCkptTime    time.Time
	recovery        RecoveryStats

	ioMu     sync.Mutex
	seg      *segment // active segment, under ioMu (nil until Recover)
	nextSeq  uint64   // under ioMu after Recover
	writtenN int64    // stream position handed to the OS, under ioMu

	// Observability mirrors, readable without locks.
	durableN  atomic.Int64 // stream position fsynced to disk
	fsyncs    atomic.Int64
	segCount  atomic.Int32
	activeSeq atomic.Uint64

	// ckptMu serializes whole checkpoints.
	ckptMu sync.Mutex

	// appendH/fsyncH time the two WAL latencies that matter
	// operationally: what an ingest append pays (staging, plus the
	// inline write or fsync its policy charges it) and what one fsync
	// costs the disk. Set by Instrument before the store is shared;
	// nil means uninstrumented and the hot path skips the clock reads.
	appendH *obs.Histogram
	fsyncH  *obs.Histogram

	writeStop chan struct{}
	writeDone chan struct{}
}

// Instrument registers the store's metric series on reg and enables
// the append/fsync latency histograms. Call at setup time (before the
// store is shared with writers), like PersistTo.
func (st *Store) Instrument(reg *obs.Registry) {
	st.appendH = reg.Histogram("freq_wal_append_seconds",
		"WAL append latency as paid by the ingest path (staging plus any inline write or fsync).",
		obs.LatencyOpts())
	st.fsyncH = reg.Histogram("freq_wal_fsync_seconds",
		"WAL fsync latency.", obs.LatencyOpts())
	reg.GaugeFunc("freq_wal_lag_items", "Acknowledged-but-not-yet-durable items (WAL end minus durable position).",
		func() float64 { return float64(st.Lag()) })
	reg.GaugeFunc("freq_wal_durable_n", "Stream position fsynced to disk.",
		func() float64 { return float64(st.durableN.Load()) })
	reg.GaugeFunc("freq_wal_segments", "WAL segment count on disk.",
		func() float64 { return float64(st.segCount.Load()) })
	reg.CounterFunc("freq_wal_fsyncs_total", "WAL fsyncs issued.",
		func() float64 { return float64(st.fsyncs.Load()) })
	reg.CounterFunc("freq_wal_appended_records_total", "Records appended to the WAL.",
		func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.appendedRecords) })
	reg.CounterFunc("freq_wal_appended_bytes_total", "Bytes appended to the WAL.",
		func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.appendedBytes) })
	reg.CounterFunc("freq_wal_inline_drains_total", "Appends that hit the staging cap and paid the write inline.",
		func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.inlineDrains) })
	reg.CounterFunc("freq_checkpoints_total", "Checkpoints written.",
		func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.checkpoints) })
	reg.GaugeFunc("freq_checkpoint_age_seconds", "Seconds since the last checkpoint (0 before the first).",
		func() float64 {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.lastCkptTime.IsZero() {
				return 0
			}
			return time.Since(st.lastCkptTime).Seconds()
		})
	reg.GaugeFunc("freq_checkpoint_last_n", "Stream position of the last checkpoint.",
		func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.lastCkptN) })
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms freqd runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open prepares a Store over dir: creates the directory, sweeps
// leftover temporaries from an interrupted checkpoint, and inventories
// existing segments. It does not touch summary state — call Recover
// next (even on a fresh directory), then Target.PersistTo(store).
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: Options.Dir is required")
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = 64 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(opts.Dir, "*.tmp"))
	for _, t := range tmps {
		_ = os.Remove(t)
	}
	return &Store{opts: opts}, nil
}

// segPath names a segment file.
func (st *Store) segPath(seq uint64) string {
	return filepath.Join(st.opts.Dir, fmt.Sprintf("wal-%010d.seg", seq))
}

// listSegments returns the on-disk segment sequences, ascending.
func (st *Store) listSegments() ([]uint64, error) {
	paths, err := filepath.Glob(filepath.Join(st.opts.Dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, 0, len(paths))
	for _, p := range paths {
		name := filepath.Base(p)
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		seq, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: alien file %q in data dir", name)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// fail latches the first failure (mu held); the store stops accepting
// appends and checkpoints, and the serving layer surfaces Err to stop
// acknowledging writes it can no longer make durable.
func (st *Store) fail(err error) {
	if st.failed == nil {
		st.failed = err
	}
}

// Err returns the sticky failure, nil while the store is healthy.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed
}

// maxBatchItemsPerRecord bounds one unit record's item count so its
// payload (8 bytes each) stays far under wal.go's maxRecordBytes replay
// cap — a record the log writes but replay rejects would turn an
// acknowledged batch into silent data loss. Batches above the bound
// (three orders of magnitude past DefaultBatchSize; only direct library
// callers can produce them) are logged as consecutive records, which
// splits the replayed batch boundary at the 4M-item mark — outside the
// regime where any summary's batch path is boundary-sensitive in
// practice.
const maxBatchItemsPerRecord = 1 << 22

// AppendBatch implements core.Persister: it logs one unit-count batch
// exactly as passed to UpdateBatch, preserving batch boundaries.
func (st *Store) AppendBatch(items []core.Item) {
	for len(items) > maxBatchItemsPerRecord {
		st.append(recUnit, "", 0, items[:maxBatchItemsPerRecord], 0, 0, maxBatchItemsPerRecord)
		items = items[maxBatchItemsPerRecord:]
	}
	if len(items) == 0 {
		return
	}
	st.append(recUnit, "", 0, items, 0, 0, int64(len(items)))
}

// AppendUpdate implements core.Persister for the scalar weighted path
// (including turnstile deletions: count may be negative).
func (st *Store) AppendUpdate(x core.Item, count int64) {
	st.append(recWeighted, "", 0, nil, x, count, count)
}

// AppendTenantBatch logs one unit-count batch tagged with its tenant
// namespace and the tenant's counter budget k (see the recTenant record
// layout in wal.go). The multi-tenant table calls this under its ingest
// lock, so — exactly like AppendBatch — log order equals apply order.
func (st *Store) AppendTenantBatch(ns string, k int, items []core.Item) {
	if len(ns) > MaxNamespaceLen {
		st.mu.Lock()
		st.fail(fmt.Errorf("persist: tenant namespace of %d bytes exceeds the %d-byte bound", len(ns), MaxNamespaceLen))
		st.mu.Unlock()
		return
	}
	for len(items) > maxBatchItemsPerRecord {
		st.append(recTenant, ns, k, items[:maxBatchItemsPerRecord], 0, 0, maxBatchItemsPerRecord)
		items = items[maxBatchItemsPerRecord:]
	}
	if len(items) == 0 {
		return
	}
	st.append(recTenant, ns, k, items, 0, 0, int64(len(items)))
}

// append stages one record and hands it onward per policy, timing the
// whole thing — including any inline drain or always-fsync the policy
// charges to this call — when instrumented.
func (st *Store) append(kind byte, ns string, k int, items []core.Item, x core.Item, count, deltaN int64) {
	if h := st.appendH; h != nil {
		t0 := time.Now()
		st.appendRecordStaged(kind, ns, k, items, x, count, deltaN)
		h.Observe(int64(time.Since(t0)))
		return
	}
	st.appendRecordStaged(kind, ns, k, items, x, count, deltaN)
}

func (st *Store) appendRecordStaged(kind byte, ns string, k int, items []core.Item, x core.Item, count, deltaN int64) {
	st.mu.Lock()
	if st.failed != nil {
		st.mu.Unlock()
		return
	}
	if st.closed || !st.recovered {
		st.fail(fmt.Errorf("persist: append before Recover or after Close"))
		st.mu.Unlock()
		return
	}
	before := len(st.pending)
	st.pending = appendRecord(st.pending, kind, ns, k, items, x, count)
	st.walN += deltaN
	st.appendedRecords++
	st.appendedBytes += int64(len(st.pending) - before)

	switch {
	case st.opts.Fsync == FsyncAlways:
		// Drain and sync inside the append: the record is durable before
		// the update is acknowledged.
		st.drainCoupled(true)
		return
	case len(st.pending) >= drainThresholdBytes:
		st.inlineDrains++
		st.drainCoupled(false)
		return
	}
	st.mu.Unlock()
}

// takeSpareLocked pops a recycled staging buffer (mu held).
func (st *Store) takeSpareLocked() []byte {
	if n := len(st.spares); n > 0 {
		b := st.spares[n-1][:0]
		st.spares = st.spares[:n-1]
		return b
	}
	return nil
}

// recycleLocked returns a drained chunk to the freelist (mu held).
func (st *Store) recycleLocked(chunk []byte) {
	if chunk != nil && len(st.spares) < 4 {
		st.spares = append(st.spares, chunk[:0])
	}
}

// drainCoupled detaches the staged chunk and writes it out, entered
// with mu held and leaving both locks released. ioMu is acquired before
// mu is released, so concurrent drains hit the file in stage order.
func (st *Store) drainCoupled(sync bool) {
	chunk := st.pending
	endN := st.walN
	st.pending = st.takeSpareLocked()
	st.ioMu.Lock()
	st.mu.Unlock()
	err := st.writeChunkLocked(chunk, endN)
	if err == nil && sync {
		t0 := time.Now()
		if err = st.seg.sync(); err == nil {
			if h := st.fsyncH; h != nil {
				h.Observe(int64(time.Since(t0)))
			}
			st.fsyncs.Add(1)
			st.durableN.Store(endN)
		}
	}
	st.ioMu.Unlock()

	st.mu.Lock()
	st.recycleLocked(chunk)
	if err != nil {
		st.fail(err)
	}
	st.mu.Unlock()
}

// writeChunkLocked (ioMu held) writes one staged chunk to the active
// segment, rotating first when the segment is full. endN is the stream
// position at the chunk's end.
func (st *Store) writeChunkLocked(chunk []byte, endN int64) error {
	if len(chunk) == 0 {
		return nil
	}
	if st.seg.size+int64(len(chunk)) > st.opts.SegmentMaxBytes && st.seg.size > segHeaderSize {
		if err := st.rotateLocked(st.writtenN); err != nil {
			return err
		}
	}
	if err := st.seg.write(chunk); err != nil {
		return fmt.Errorf("persist: appending to %s: %w", st.segPath(st.seg.seq), err)
	}
	st.writtenN = endN
	return nil
}

// rotateLocked (ioMu held) seals the active segment — fsync, so every
// non-active segment is fully durable — and opens the next one, whose
// header records startN as its stream position.
func (st *Store) rotateLocked(startN int64) error {
	if st.seg != nil {
		if err := st.seg.seal(); err != nil {
			return fmt.Errorf("persist: sealing segment %d: %w", st.seg.seq, err)
		}
		st.fsyncs.Add(1)
		if st.writtenN > st.durableN.Load() {
			st.durableN.Store(st.writtenN)
		}
		st.seg.close()
	}
	seq := st.nextSeq
	seg, err := createSegment(st.segPath(seq), seq, startN)
	if err != nil {
		return err
	}
	if err := syncDir(st.opts.Dir); err != nil {
		seg.close()
		return fmt.Errorf("persist: syncing data dir: %w", err)
	}
	st.nextSeq++
	st.seg = seg
	st.activeSeq.Store(seq)
	st.segCount.Add(1)
	return nil
}

// writer is the background half of group commit: on each tick it
// drains the staged tail (records that never reached the inline-drain
// threshold) and, under the interval policy, fsyncs the segment. The
// fsync holds neither mu nor ioMu — only the segment's own syncMu — so
// neither appends nor drains ever wait on the disk flush.
func (st *Store) writer() {
	defer close(st.writeDone)
	period := st.opts.FsyncInterval
	if st.opts.Fsync != FsyncInterval {
		period = 25 * time.Millisecond // drain cadence only; no fsync promise
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-st.writeStop:
			return
		case <-t.C:
			st.mu.Lock()
			if st.failed != nil {
				st.mu.Unlock()
				continue
			}
			if len(st.pending) > 0 {
				st.drainCoupled(false)
			} else {
				st.mu.Unlock()
			}
			if st.opts.Fsync != FsyncInterval {
				continue
			}
			st.ioMu.Lock()
			seg := st.seg
			target := st.writtenN
			st.ioMu.Unlock()
			if seg == nil || target <= st.durableN.Load() {
				continue
			}
			syncStart := time.Now()
			if err := seg.sync(); err != nil {
				// Rotation may have sealed and closed this segment between
				// our capture and the sync — in which case it is already
				// durable and the error against its dead descriptor is
				// moot, not a disk failure to latch on.
				st.ioMu.Lock()
				stale := seg != st.seg
				st.ioMu.Unlock()
				if !stale {
					st.mu.Lock()
					st.fail(fmt.Errorf("persist: background fsync: %w", err))
					st.mu.Unlock()
				}
				continue
			}
			if h := st.fsyncH; h != nil {
				h.Observe(int64(time.Since(syncStart)))
			}
			st.fsyncs.Add(1)
			for {
				cur := st.durableN.Load()
				if target <= cur || st.durableN.CompareAndSwap(cur, target) {
					break
				}
			}
		}
	}
}

// Close seals the log: stops the writer, drains the staged tail, fsyncs
// the active segment, and latches the store closed. Pair with a final
// Checkpoint for a clean shutdown that replays zero records on restart.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	stop := st.writeStop
	st.mu.Unlock()
	if stop != nil {
		close(stop)
		<-st.writeDone
	}

	st.mu.Lock()
	chunk := st.pending
	endN := st.walN
	st.pending = nil
	st.ioMu.Lock()
	st.mu.Unlock()
	defer st.ioMu.Unlock()
	if st.seg == nil {
		return nil
	}
	err := st.writeChunkLocked(chunk, endN)
	if err == nil {
		err = st.seg.seal()
	}
	if err == nil {
		st.fsyncs.Add(1)
		st.durableN.Store(endN)
	}
	st.seg.close()
	st.seg = nil
	if err != nil {
		return fmt.Errorf("persist: closing log: %w", err)
	}
	return nil
}

// Stats is the observability snapshot surfaced by freqd /stats.
type Stats struct {
	Dir             string
	Fsync           string
	WALSegments     int
	ActiveSegment   uint64
	WALEndN         int64 // stream position at the end of the log (incl. staged)
	DurableN        int64 // stream position guaranteed on disk
	AppendedRecords int64
	AppendedBytes   int64
	InlineDrains    int64 // appends that hit the staging cap and paid the write
	Fsyncs          int64
	Checkpoints     int64
	LastCkptN       int64
	LastCkptBytes   int64
	LastCkptAge     time.Duration // zero when no checkpoint has been taken
	Recovery        RecoveryStats
	Err             string
}

// Lag returns the acknowledged-but-not-yet-durable item count — the
// stream distance between the end of the log (staged included) and the
// last fsynced position. It is the backpressure signal the serving
// layer's load shedding gates on, so it reads just the two counters it
// needs (one locked integer, one atomic) instead of building a full
// Stats snapshot on the ingest hot path.
func (st *Store) Lag() int64 {
	st.mu.Lock()
	walN := st.walN
	st.mu.Unlock()
	if lag := walN - st.durableN.Load(); lag > 0 {
		return lag
	}
	return 0
}

// Stats reports the store's current counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	s := Stats{
		Dir:             st.opts.Dir,
		Fsync:           st.opts.Fsync.String(),
		WALEndN:         st.walN,
		AppendedRecords: st.appendedRecords,
		AppendedBytes:   st.appendedBytes,
		InlineDrains:    st.inlineDrains,
		Checkpoints:     st.checkpoints,
		LastCkptN:       st.lastCkptN,
		LastCkptBytes:   st.lastCkptBytes,
		Recovery:        st.recovery,
	}
	if !st.lastCkptTime.IsZero() {
		s.LastCkptAge = time.Since(st.lastCkptTime)
	}
	if st.failed != nil {
		s.Err = st.failed.Error()
	}
	st.mu.Unlock()
	s.WALSegments = int(st.segCount.Load())
	s.ActiveSegment = st.activeSeq.Load()
	s.DurableN = st.durableN.Load()
	s.Fsyncs = st.fsyncs.Load()
	return s
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
