package router

import (
	"net"
	"net/http"
	"time"
)

// NewHTTPClient is the one intra-cluster HTTP client configuration:
// forwards, probes, shard-map fetches, and coordinator pulls all build
// their default client here, so every hop between daemons carries the
// same transport-level guards instead of whatever zero value each call
// site reached for. http.DefaultClient in particular has none — a
// black-holed peer would pin a goroutine forever.
//
// The per-request deadline still comes from the caller's context (the
// router's and coordinator's Timeout options); these bounds catch the
// phases a context cancel can least afford to wait out — dialing a
// dead host, a peer that accepts but never sends headers — and keep
// idle connections pooled per replica so steady traffic does not
// re-handshake.
func NewHTTPClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   timeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   timeout,
			ResponseHeaderTimeout: timeout,
			MaxIdleConns:          64,
			MaxIdleConnsPerHost:   8,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}
