package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The shard map is the router's published partition contract: which
// shard IDs exist (and with how many virtual nodes, so anyone can
// rebuild the identical ring), which replicas serve each shard, and how
// healthy they are. A shard-map-aware freqmerge pulls it to discover
// the topology and to merge partition-exactly — exactly one replica per
// shard, never replica-summed.

// ReplicaStatus is one replica's health as the router last observed it.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Epoch is the replica's process epoch, 0 until first observed.
	Epoch uint64 `json:"epoch,omitempty"`
	// N is the replica's acknowledged stream position at last contact.
	N int64 `json:"n"`
	// Restarts counts observed epoch changes since the router started.
	Restarts int64 `json:"restarts"`
	// Failures counts failed forward/probe attempt sequences.
	Failures int64  `json:"failures"`
	Error    string `json:"error,omitempty"`
}

// ShardStatus is one partition: identity, health, and routing totals.
type ShardStatus struct {
	ID string `json:"id"`
	// Degraded means every replica is down: new writes for this shard
	// are shed (the rest of the tier keeps acknowledging).
	Degraded bool `json:"degraded"`
	// Routed counts items acknowledged by at least one replica.
	Routed int64 `json:"routed_items"`
	// Shed counts items dropped because no replica accepted them.
	Shed     int64           `json:"shed_items"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ShardMap is the router's published topology (GET /shardmap).
type ShardMap struct {
	VNodes int           `json:"vnodes"`
	Shards []ShardStatus `json:"shards"`
}

// Ring rebuilds the hash ring the map describes. Any process holding
// the same map routes every item to the same shard the router does —
// the property partition-exact merging rests on.
func (m *ShardMap) Ring() (*Ring, error) {
	ids := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		ids[i] = s.ID
	}
	return NewRing(ids, m.VNodes)
}

// ShardMap snapshots the router's current topology and health.
func (rt *Router) ShardMap() *ShardMap {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := &ShardMap{VNodes: rt.ring.VNodes(), Shards: make([]ShardStatus, len(rt.shards))}
	for i, s := range rt.shards {
		st := ShardStatus{
			ID:       s.id,
			Degraded: true,
			Routed:   s.routed,
			Shed:     s.shed,
			Replicas: make([]ReplicaStatus, len(s.replicas)),
		}
		for j, rep := range s.replicas {
			if !rep.down {
				st.Degraded = false
			}
			st.Replicas[j] = ReplicaStatus{
				URL:      rep.url,
				Healthy:  !rep.down,
				Epoch:    rep.epoch,
				N:        rep.n,
				Restarts: rep.restarts,
				Failures: rep.failures,
				Error:    rep.lastErr,
			}
		}
		m.Shards[i] = st
	}
	return m
}

// FetchShardMap pulls a router's shard map (GET base/shardmap) — the
// discovery step of a shard-map-aware coordinator. A bare host:port
// base gets http:// prefixed, matching every other URL flag in the
// daemons.
func FetchShardMap(ctx context.Context, client *http.Client, base string) (*ShardMap, error) {
	if client == nil {
		// Not http.DefaultClient: the shared config bounds dialing and
		// header waits, so a black-holed router fails the fetch instead
		// of hanging freqmerge startup past its context.
		client = NewHTTPClient(0)
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/shardmap", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("router: shard map fetch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var m ShardMap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("router: bad shard map body: %v", err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("router: shard map has no shards")
	}
	return &m, nil
}
