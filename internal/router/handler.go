package router

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
)

// The router's HTTP surface. POST /ingest is wire-compatible with a
// freqd node's — same Content-Types, same decoders (stream.OpenIngest),
// same ack shape — so clients point at the tier instead of a node and
// change nothing. The tier-only endpoints are /shardmap (the partition
// contract), /stats (traffic and health counters), and POST /probe
// (an on-demand health sweep, so operators and tests can force
// re-adoption instead of waiting out the probe interval).
//
// Text-mode ingest is hashed at the router and forwarded as binary
// items; token spellings are not propagated to shards, so label lookups
// (/topk tokens) are a per-node feature the tier does not aggregate.

// Handler returns the router's HTTP API mux: the /v1 surface with the
// pre-versioning paths as aliases, like the other daemons.
func (rt *Router) Handler() http.Handler { return rt.API().Handler() }

// API returns the router's assembled route set — exposed so the docs
// test can diff the README API-reference table against the live mux.
func (rt *Router) API() *serve.API {
	api := serve.NewAPI(rt.obs)
	api.Route("POST", "/ingest", rt.handleIngest, "/ingest")
	api.Route("GET", "/stats", rt.handleStats, "/stats")
	api.Route("GET", "/shardmap", rt.handleShardMap, "/shardmap")
	api.Route("POST", "/probe", rt.handleProbe, "/probe")
	return api
}

// handleIngest streams the request body in bounded batches: decode,
// split by ring, fan each shard's sub-batch to its replicas, and only
// then decode the next batch — so per-shard arrival order is the
// client's send order, and a slow shard backpressures the request
// instead of buffering the body.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, rt.maxIn)
	src, err := stream.OpenIngest(r.Header.Get("Content-Type"), body, 0)
	if err != nil {
		rt.mu.Lock()
		rt.rejected++
		rt.mu.Unlock()
		rt.counters.Add("router.rejected", 1)
		if errors.Is(err, stream.ErrUnsupportedMedia) {
			serve.HTTPError(w, http.StatusUnsupportedMediaType, "%v", err)
			return
		}
		serve.HTTPError(w, http.StatusBadRequest, "bad stream file: %v", err)
		return
	}

	buf := make([]core.Item, rt.batch)
	perShard := make([][]core.Item, rt.ring.Shards())
	var acked, shed int64
	forwardStart := time.Now()
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		for i := range perShard {
			perShard[i] = perShard[i][:0]
		}
		rt.ring.Split(buf[:n], perShard)
		var wg sync.WaitGroup
		for si, items := range perShard {
			if len(items) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int, items []core.Item) {
				defer wg.Done()
				if rt.forwardShard(r.Context(), si, items) {
					atomic.AddInt64(&acked, int64(len(items)))
				} else {
					atomic.AddInt64(&shed, int64(len(items)))
				}
			}(si, items)
		}
		wg.Wait()
	}
	rt.mu.Lock()
	rt.requests++
	total := rt.acked
	rt.mu.Unlock()
	rt.counters.Add("router.requests", 1)
	obs.AddStage(r.Context(), "forward", time.Since(forwardStart))
	obs.Annotate(r.Context(), "items", acked)
	if shed > 0 {
		obs.Annotate(r.Context(), "shed", shed)
	}

	if err := src.Err(); err != nil {
		// Batches decoded before the failure are already forwarded (the
		// stream model has no transactions), matching single-node ingest
		// semantics: report what landed, signal the cut.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			serve.HTTPError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d-byte ingest limit (ingested %d items); split into smaller requests", tooBig.Limit, acked)
			return
		}
		serve.HTTPError(w, http.StatusBadRequest, "body truncated or corrupt after %d items: %v", acked, err)
		return
	}
	// The ack mirrors a node's ({"ingested", "n"}) plus the tier-only
	// shed count. Shed items mean degraded shards dropped part of the
	// body: the client must not treat the write as fully acknowledged,
	// so the status says so even though the rest landed.
	status := http.StatusOK
	if shed > 0 {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, map[string]int64{
		"ingested": acked,
		"shed":     shed,
		"n":        total,
	})
}

// handleStats reports tier traffic and per-shard health.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	m := rt.ShardMap()
	rt.mu.Lock()
	resp := map[string]any{
		"shards":    len(rt.shards),
		"vnodes":    rt.ring.VNodes(),
		"uptime_ms": time.Since(rt.start).Milliseconds(),
		"requests":  rt.requests,
		"n":         rt.acked,
		"shed":      rt.shedN,
		"retries":   rt.retried,
		"rejected":  rt.rejected,
	}
	rt.mu.Unlock()
	resp["counters"] = rt.counters.Snapshot()
	resp["shard_status"] = m.Shards
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handleShardMap publishes the partition contract.
func (rt *Router) handleShardMap(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, rt.ShardMap())
}

// handleProbe runs one health sweep now and returns the refreshed map.
func (rt *Router) handleProbe(w http.ResponseWriter, r *http.Request) {
	rt.Probe(r.Context())
	serve.WriteJSON(w, http.StatusOK, rt.ShardMap())
}

// ListenAndServe serves the API on addr until stop is closed, then
// drains in-flight requests — the testable core of cmd/freqrouter,
// mirroring serve.Server.ListenAndServe.
func (rt *Router) ListenAndServe(addr string, stop <-chan struct{}) error {
	srv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
