package router_test

// Router behaviour against real serve.Server replicas on loopback HTTP:
// replication (every replica of a shard holds the shard's full
// substream), partitioning (shards hold disjoint substreams that sum to
// the input), failover (a dead replica is marked down and skipped, a
// dead shard sheds only its own items), re-adoption via probe with
// epoch-based restart counting, and the ingest front's error contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

// swappable lets a test replace the handler behind a fixed URL — the
// loopback stand-in for a replica process dying and coming back on the
// same host:port.
type swappable struct {
	h atomic.Pointer[http.Handler]
}

func (s *swappable) set(h http.Handler) { s.h.Store(&h) }

func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

func down() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "replica is down", http.StatusServiceUnavailable)
	})
}

// replica spins up one in-memory freqd behind a swappable handler.
func replica(t *testing.T, epoch uint64) (*httptest.Server, *swappable, *serve.Server) {
	t.Helper()
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.001, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Epoch: epoch})
	sw := &swappable{}
	sw.set(srv.Handler())
	return httptest.NewServer(sw), sw, srv
}

// tier builds a router over shards×replicas fresh in-memory freqds and
// returns the router, its HTTP server, and the per-[shard][replica]
// test handles.
func tier(t *testing.T, shards, reps int) (*router.Router, *httptest.Server, [][]*swappable, [][]*httptest.Server) {
	t.Helper()
	var cfgs []router.ShardConfig
	sws := make([][]*swappable, shards)
	tss := make([][]*httptest.Server, shards)
	epoch := uint64(100)
	for s := 0; s < shards; s++ {
		cfg := router.ShardConfig{ID: string(rune('a' + s))}
		for r := 0; r < reps; r++ {
			ts, sw, _ := replica(t, epoch)
			epoch++
			t.Cleanup(ts.Close)
			cfg.Replicas = append(cfg.Replicas, ts.URL)
			sws[s] = append(sws[s], sw)
			tss[s] = append(tss[s], ts)
		}
		cfgs = append(cfgs, cfg)
	}
	rt, err := router.New(router.Options{
		Shards:  cfgs,
		Retries: 1,
		Backoff: time.Millisecond,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(rt.Handler())
	t.Cleanup(rs.Close)
	return rt, rs, sws, tss
}

type ingestAck struct {
	Ingested int64 `json:"ingested"`
	Shed     int64 `json:"shed"`
	N        int64 `json:"n"`
}

func postItems(t *testing.T, url string, items []core.Item) (ingestAck, int) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/octet-stream",
		bytes.NewReader(stream.AppendRaw(nil, items)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack ingestAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decoding ingest ack: %v", err)
	}
	return ack, resp.StatusCode
}

func nodeN(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		N int64 `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.N
}

// TestRouterReplicatesAndPartitions: every replica of a shard holds the
// shard's whole substream (replication), and the shards' substreams are
// disjoint and sum to the input (partitioning).
func TestRouterReplicatesAndPartitions(t *testing.T) {
	const total = 30_000
	rt, rs, _, tss := tier(t, 3, 2)
	items := zipf.Sequential(total)

	ack, code := postItems(t, rs.URL, items)
	if code != http.StatusOK || ack.Ingested != total || ack.Shed != 0 {
		t.Fatalf("ingest ack = %+v (HTTP %d), want %d acked, 0 shed", ack, code, total)
	}

	var sum int64
	for s := range tss {
		n0, n1 := nodeN(t, tss[s][0].URL), nodeN(t, tss[s][1].URL)
		if n0 != n1 {
			t.Fatalf("shard %d replicas diverge: %d vs %d items", s, n0, n1)
		}
		if n0 == 0 {
			t.Fatalf("shard %d received nothing: the ring starved an arc", s)
		}
		sum += n0
	}
	if sum != total {
		t.Fatalf("per-shard substreams sum to %d, want %d (lost or duplicated in the split)", sum, total)
	}

	// The shard map agrees with the replicas' own accounting.
	m := rt.ShardMap()
	for s, sh := range m.Shards {
		if sh.Degraded || sh.Shed != 0 {
			t.Fatalf("healthy shard %d reported degraded/shedding: %+v", s, sh)
		}
		if sh.Routed != nodeN(t, tss[s][0].URL) {
			t.Fatalf("shard %d routed=%d, replicas hold %d", s, sh.Routed, nodeN(t, tss[s][0].URL))
		}
	}
}

// TestRouterFailoverAndReadoption: a dead replica is marked down after
// its retries and the shard keeps acknowledging through the survivor; a
// probe re-adopts the recovered replica and counts its restart when it
// comes back under a new epoch.
func TestRouterFailoverAndReadoption(t *testing.T) {
	rt, rs, sws, tss := tier(t, 2, 2)

	ack, code := postItems(t, rs.URL, zipf.Sequential(4_000))
	if code != http.StatusOK || ack.Shed != 0 {
		t.Fatalf("healthy ingest: ack=%+v HTTP %d", ack, code)
	}

	// Kill shard 0's second replica. Writes must keep flowing: acked by
	// the survivor, the dead replica marked down.
	sws[0][1].set(down())
	ack, code = postItems(t, rs.URL, zipf.Sequential(4_000))
	if code != http.StatusOK || ack.Ingested != 4_000 || ack.Shed != 0 {
		t.Fatalf("ingest with one dead replica: ack=%+v HTTP %d, want all acked", ack, code)
	}
	m := rt.ShardMap()
	if m.Shards[0].Degraded {
		t.Fatal("shard 0 degraded with a live survivor")
	}
	if rep := m.Shards[0].Replicas[1]; rep.Healthy || rep.Failures == 0 || rep.Error == "" {
		t.Fatalf("dead replica not marked down: %+v", rep)
	}
	if rep := m.Shards[0].Replicas[0]; !rep.Healthy {
		t.Fatalf("survivor marked down: %+v", rep)
	}

	// A down replica is skipped, not retried per write: further ingest
	// must not grow its failure count.
	failures := m.Shards[0].Replicas[1].Failures
	_, _ = postItems(t, rs.URL, zipf.Sequential(1_000))
	if got := rt.ShardMap().Shards[0].Replicas[1].Failures; got != failures {
		t.Fatalf("down replica still being dialed: failures %d -> %d", failures, got)
	}

	// The replica comes back as a new process (fresh summary, new
	// epoch) on the same URL. A probe re-adopts it and, because the
	// epoch changed, counts exactly one restart.
	_, _, srv := replica(t, 999)
	sws[0][1].set(srv.Handler())
	rt.Probe(context.Background())
	rep := rt.ShardMap().Shards[0].Replicas[1]
	if !rep.Healthy || rep.Epoch != 999 || rep.Restarts != 1 {
		t.Fatalf("after probe: %+v, want healthy epoch=999 restarts=1", rep)
	}

	// Re-adopted means written to again.
	before := nodeN(t, tss[0][1].URL)
	_ = before // the recovered replica is empty; any growth proves writes resumed
	_, _ = postItems(t, rs.URL, zipf.Sequential(4_000))
	if after := nodeN(t, tss[0][1].URL); after <= before {
		t.Fatalf("recovered replica received no writes (n %d -> %d)", before, after)
	}
}

// TestRouterShedsOnlyTheDegradedShard: with every replica of one shard
// down, that shard's items are shed (503, counted) while other shards'
// items are still acknowledged — and the next write re-adopts the shard
// the moment a replica returns (the desperation fan doubles as probe).
func TestRouterShedsOnlyTheDegradedShard(t *testing.T) {
	rt, rs, sws, _ := tier(t, 2, 2)
	items := zipf.Sequential(6_000)

	// Split the stream the way the router will, so the expectation is
	// exact: shard 1's items shed, shard 0's acked.
	perShard := make([][]core.Item, 2)
	rt.Ring().Split(items, perShard)

	sws[1][0].set(down())
	sws[1][1].set(down())
	ack, code := postItems(t, rs.URL, items)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest with a degraded shard: HTTP %d, want 503", code)
	}
	if ack.Ingested != int64(len(perShard[0])) || ack.Shed != int64(len(perShard[1])) {
		t.Fatalf("ack=%+v, want ingested=%d shed=%d", ack, len(perShard[0]), len(perShard[1]))
	}
	m := rt.ShardMap()
	if !m.Shards[1].Degraded || m.Shards[1].Shed != int64(len(perShard[1])) {
		t.Fatalf("degraded shard status: %+v", m.Shards[1])
	}
	if m.Shards[0].Degraded || m.Shards[0].Shed != 0 {
		t.Fatalf("healthy shard status: %+v", m.Shards[0])
	}

	// One replica of the dead shard returns. No probe: the next write's
	// desperation fan must find it and stop shedding.
	_, _, srv := replica(t, 777)
	sws[1][0].set(srv.Handler())
	ack, code = postItems(t, rs.URL, items)
	if code != http.StatusOK || ack.Shed != 0 {
		t.Fatalf("ingest after one replica returned: ack=%+v HTTP %d, want fully acked", ack, code)
	}
}

// TestRouterIngestErrors: the ingest front fails the same way a node
// does — 415 for an unknown Content-Type, 400 for a torn binary body,
// and nothing is forwarded from the malformed part.
func TestRouterIngestErrors(t *testing.T) {
	_, rs, _, _ := tier(t, 2, 1)

	resp, err := http.Post(rs.URL+"/ingest", "application/weird", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown media type: HTTP %d, want 415", resp.StatusCode)
	}

	// 17 bytes: two whole items and a torn third.
	torn := append(stream.AppendRaw(nil, []core.Item{1, 2}), 0xFF)
	resp, err = http.Post(rs.URL+"/ingest", "application/octet-stream", bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn body: HTTP %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestShardMapRingRoundTrip: a coordinator that rebuilds the ring from
// the published shard map routes every item exactly like the router —
// the property partition-exact reads depend on.
func TestShardMapRingRoundTrip(t *testing.T) {
	rt, rs, _, _ := tier(t, 4, 1)
	m, err := router.FetchShardMap(context.Background(), nil, rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := m.Ring()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range zipf.Sequential(10_000) {
		if got, want := ring.Shard(it), rt.Ring().Shard(it); got != want {
			t.Fatalf("item %d: rebuilt ring routes to %d, router to %d", it, got, want)
		}
	}
}
