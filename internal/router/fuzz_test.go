package router_test

// FuzzShardSplit pins the splitter's conservation law: for any batch
// and any (shards, vnodes) geometry, the per-shard buffers are a
// permutation of the input — no item lost, duplicated, or misrouted —
// with order preserved within each shard, and the split is a pure
// function of the ring (a second ring built from the same inputs splits
// identically). Everything downstream rests on this: replication
// fans what Split produced, and partition-exact serving assumes every
// arrival landed on exactly the shard that answers for it.

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/router"
	"streamfreq/internal/stream"
)

func FuzzShardSplit(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add(stream.AppendRaw(nil, []core.Item{1, 2, 3, 4, 5}), uint8(3), uint8(8))
	f.Add(stream.AppendRaw(nil, []core.Item{42, 42, 42, 7, 42}), uint8(2), uint8(64))
	f.Add([]byte{0xFF, 0xEE, 0xDD}, uint8(5), uint8(16)) // torn tail: decoder drops it

	f.Fuzz(func(t *testing.T, raw []byte, nshards, vnodes uint8) {
		shards := int(nshards%16) + 1
		vn := int(vnodes%128) + 1
		// Items from arbitrary bytes: whole 8-byte words only, matching
		// the wire decoder the router actually feeds the splitter from.
		batch, err := stream.DecodeRaw(nil, raw[:len(raw)-len(raw)%8])
		if err != nil {
			t.Fatalf("whole-word decode failed: %v", err)
		}

		ids := make([]string, shards)
		for i := range ids {
			ids[i] = "shard-" + string(rune('A'+i))
		}
		ring, err := router.NewRing(ids, vn)
		if err != nil {
			t.Fatal(err)
		}

		perShard := ring.Split(batch, make([][]core.Item, shards))

		// Conservation: the multiset union of the buffers is the input.
		counts := make(map[core.Item]int, len(batch))
		for _, it := range batch {
			counts[it]++
		}
		total := 0
		for si, items := range perShard {
			total += len(items)
			for _, it := range items {
				if ring.Shard(it) != si {
					t.Fatalf("item %d in shard %d's buffer, but the ring owns it to %d", it, si, ring.Shard(it))
				}
				counts[it]--
				if counts[it] < 0 {
					t.Fatalf("item %d duplicated by the split", it)
				}
			}
		}
		if total != len(batch) {
			t.Fatalf("split conserved %d of %d items", total, len(batch))
		}

		// Order preservation: each buffer is the input subsequence of
		// its shard's items.
		idx := make([]int, shards)
		for _, it := range batch {
			s := ring.Shard(it)
			if perShard[s][idx[s]] != it {
				t.Fatalf("shard %d buffer out of arrival order at %d", s, idx[s])
			}
			idx[s]++
		}

		// Determinism: an independently built ring splits identically.
		ring2, err := router.NewRing(ids, vn)
		if err != nil {
			t.Fatal(err)
		}
		perShard2 := ring2.Split(batch, make([][]core.Item, shards))
		for si := range perShard {
			if len(perShard[si]) != len(perShard2[si]) {
				t.Fatalf("shard %d: fresh ring split %d items, first ring %d", si, len(perShard2[si]), len(perShard[si]))
			}
			for i := range perShard[si] {
				if perShard[si][i] != perShard2[si][i] {
					t.Fatalf("shard %d diverges at position %d across identical rings", si, i)
				}
			}
		}
	})
}
