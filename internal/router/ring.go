// Package router implements the partitioned write tier: an HTTP ingest
// front that consistent-hash-partitions items across freqd shards, so
// write load scales horizontally the way internal/cluster scales reads.
//
// Each shard owns a disjoint slice of the key space (the arc of the hash
// ring its virtual nodes cover), so the per-shard summaries are *exact
// partitions* of the stream: an item's every arrival lands on exactly
// one shard, and that shard's summary answers for it with the error
// bound of its own substream length n_p — tighter than the φ·N bound a
// single summary of the whole stream advertises. A shard-map-aware
// freqmerge (internal/cluster in partitioned mode) exploits exactly
// that: it routes point queries to the owning shard and unions
// threshold reports, never paying cross-partition merge noise.
//
// Availability comes from per-shard replica sets: every sub-batch is
// fanned to all live replicas of its shard, with bounded retry, timeout,
// and backoff per replica. A replica that keeps failing is marked down
// (writes stop paying its timeouts) and re-adopted by the health probe
// once it answers again; its process epoch (X-Freq-Epoch, the PR-4
// restart-detection machinery) makes recoveries observable as restart
// counters. Only when *every* replica of a shard is down is the shard
// degraded — its items are shed, counted, and surfaced, while the rest
// of the tier keeps acknowledging.
//
// Failover guarantee: a batch is acknowledged iff at least one replica
// of its shard accepted it, and a replica that fails is immediately
// removed from the live set — so every replica that has been live
// continuously since the stream began holds every acknowledged item of
// its shard. As long as one replica per shard either survives or
// recovers its full durable state (freqd -data-dir -fsync always), no
// acknowledged write is lost, which is what the chaos wall
// (TestRouterKillRecover) pins. Retries are at-least-once per replica: a
// replica that applied a batch but lost the ack may double-apply on
// retry, which inflates that replica only — the partition-exact merge
// reads one replica per shard, so divergence is visible in /shardmap
// (replica stream positions) and never double-counted in a merged view.
package router

import (
	"fmt"
	"sort"
	"strconv"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
)

// DefaultVNodes is the virtual-node count per shard when Options does
// not choose one: enough points that the largest arc over-allocates a
// shard by a few percent, cheap enough that ring construction and the
// per-item binary search stay negligible.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard uint32
}

// Ring is a consistent-hash ring over shard IDs with virtual nodes. It
// is immutable after construction and safe for concurrent use; routing
// is a pure function of (shard IDs, vnodes, item), so any process that
// builds a Ring from the same inputs — the router splitting writes, a
// coordinator routing reads, a property test replaying history — routes
// every item identically.
type Ring struct {
	ids    []string
	vnodes int
	points []ringPoint
}

// NewRing builds a ring over the given shard IDs with vnodes virtual
// nodes per shard (0 selects DefaultVNodes). IDs must be non-empty and
// unique — the ring positions are derived from them, so two shards with
// the same ID would own the same arcs.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("router: a ring needs at least one shard")
	}
	if len(ids) > 1<<16 {
		return nil, fmt.Errorf("router: %d shards exceeds the %d-shard limit", len(ids), 1<<16)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 || vnodes > 1<<12 {
		return nil, fmt.Errorf("router: vnodes must be in [1,%d], got %d", 1<<12, vnodes)
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{ids: append([]string(nil), ids...), vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(ids)*vnodes)
	for i, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("router: shard %d has an empty ID", i)
		}
		if seen[id] {
			return nil, fmt.Errorf("router: duplicate shard ID %q (its arcs would collide)", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			h := uint64(core.HashString(id + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, shard: uint32(i)})
		}
	}
	// Ties between distinct (id, vnode) pairs are astronomically unlikely
	// but must still be deterministic: break by shard index so the same
	// inputs always produce the same ring.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return len(r.ids) }

// IDs returns the shard IDs in declared order (shared, not copied — the
// ring is immutable).
func (r *Ring) IDs() []string { return r.ids }

// VNodes returns the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// Shard returns the index of the shard owning item it: the first virtual
// node at or clockwise of the item's mixed hash. Raw item identifiers
// can be dense integers (sequential streams), so the position is the
// SplitMix64 finalizer of the item, not the item itself — without the
// mix, consecutive items would all land on one arc.
func (r *Ring) Shard(it core.Item) int {
	h := hash.Mix64(uint64(it))
	// First point with hash >= h, wrapping past the last point to the
	// first (the ring property).
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}

// Split appends each item of batch to its owning shard's buffer and
// returns the buffers (append may grow them). perShard must have exactly
// Shards() entries; callers reuse the buffers across batches by
// truncating them to zero length first. Order within each shard's buffer
// is the arrival order of the batch — the split is a deterministic
// order-preserving partition, which FuzzShardSplit pins: the
// concatenation of the per-shard buffers is a permutation of batch with
// no item lost, duplicated, or misrouted.
func (r *Ring) Split(batch []core.Item, perShard [][]core.Item) [][]core.Item {
	if len(perShard) != len(r.ids) {
		panic(fmt.Sprintf("router: Split needs %d per-shard buffers, got %d", len(r.ids), len(perShard)))
	}
	for _, it := range batch {
		s := r.Shard(it)
		perShard[s] = append(perShard[s], it)
	}
	return perShard
}
