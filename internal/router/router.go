package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
)

// ShardConfig declares one shard of the write tier: a stable ID (the
// ring hashes it, so renaming a shard moves its arcs) and the base URLs
// of its freqd replicas. Every replica receives every write routed to
// the shard; one surviving replica is enough to acknowledge.
type ShardConfig struct {
	ID       string
	Replicas []string
}

// Options configures a Router.
type Options struct {
	// Shards declares the partitions and their replica sets (required,
	// at least one shard with at least one replica each).
	Shards []ShardConfig
	// VNodes is the virtual-node count per shard on the hash ring
	// (defaults to DefaultVNodes). It must match what a shard-map-aware
	// coordinator uses, which is why /shardmap publishes it.
	VNodes int
	// Timeout bounds one forward (or probe) attempt to one replica
	// (defaults to 5s).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried per replica
	// before the replica is marked down (defaults to 2). Only transport
	// errors and retryable statuses (429, 5xx) are retried; a 4xx is the
	// client's fault and fails fast.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (defaults to 50ms).
	Backoff time.Duration
	// IngestBatch is how many items are decoded, split, and forwarded
	// per round (defaults to core.DefaultBatchSize).
	IngestBatch int
	// MaxIngestBytes bounds one /ingest request body (defaults to 64 MiB).
	MaxIngestBytes int64
	// Client is the forwarding HTTP client (defaults to
	// NewHTTPClient(Timeout), the shared intra-cluster transport
	// config; attempt deadlines come from Timeout, not the client).
	Client *http.Client
	// Obs is the observability plane: metric registry, structured
	// logger, slow-query threshold. Defaults to obs.Discard
	// ("freqrouter") — metrics still accumulate, logs go nowhere.
	Obs *obs.Obs
}

// replicaState is the router's view of one freqd replica. All fields
// are guarded by Router.mu; network calls never happen under the lock.
type replicaState struct {
	url      string
	down     bool
	epoch    uint64 // last observed process epoch (ingest ack or probe)
	hasEpoch bool
	n        int64 // last acknowledged stream position
	restarts int64 // observed epoch changes
	failures int64 // forward/probe failures (attempt sequences, not retries)
	lastErr  string
}

// shardState is one partition: its replica set and routed/shed item
// accounting.
type shardState struct {
	id       string
	replicas []*replicaState
	routed   int64 // items acknowledged by >=1 replica
	shed     int64 // items dropped because no replica accepted them

	// Per-shard Prometheus series (bounded cardinality: one shard ID
	// label each, mirroring the mu-guarded totals above).
	routedC *obs.Counter
	shedC   *obs.Counter
}

// Router is the partitioned write tier: it splits ingest bodies across
// shards by consistent hash and fans each sub-batch to the shard's live
// replicas. It is safe for concurrent use.
type Router struct {
	ring    *Ring
	client  *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	batch   int
	maxIn   int64
	start   time.Time

	obs *obs.Obs
	// counters splits what used to be a handful of mu-guarded ints into
	// individually scrapeable series: router.retries (retry attempts
	// beyond the first try), router.shed_items, router.down_marks
	// (live→down transitions), router.readoptions (down→live), plus
	// request/reject traffic. Keys surface verbatim in /stats and as
	// freq_router_*_total in /v1/metrics.
	counters *obs.Set

	mu       sync.Mutex
	shards   []*shardState
	requests int64
	acked    int64 // cumulative items acknowledged (the tier's "n")
	shedN    int64 // cumulative items shed
	retried  int64 // retry attempts (beyond each first try)
	rejected int64 // malformed/oversized ingest requests
}

// New builds a Router over opts.Shards.
func New(opts Options) (*Router, error) {
	ids := make([]string, len(opts.Shards))
	for i, sc := range opts.Shards {
		ids[i] = sc.ID
		if len(sc.Replicas) == 0 {
			return nil, fmt.Errorf("router: shard %q has no replicas", sc.ID)
		}
		for _, u := range sc.Replicas {
			if u == "" {
				return nil, fmt.Errorf("router: shard %q has an empty replica URL", sc.ID)
			}
		}
	}
	ring, err := NewRing(ids, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("router: negative retry count %d", opts.Retries)
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.IngestBatch <= 0 {
		opts.IngestBatch = core.DefaultBatchSize
	}
	if opts.MaxIngestBytes <= 0 {
		opts.MaxIngestBytes = 64 << 20
	}
	if opts.Client == nil {
		opts.Client = NewHTTPClient(opts.Timeout)
	}
	if opts.Obs == nil {
		opts.Obs = obs.Discard("freqrouter")
	}
	rt := &Router{
		obs:      opts.Obs,
		counters: obs.NewSet(opts.Obs.Reg, "freq"),
		ring:     ring,
		client:   opts.Client,
		timeout:  opts.Timeout,
		retries:  opts.Retries,
		backoff:  opts.Backoff,
		batch:    opts.IngestBatch,
		maxIn:    opts.MaxIngestBytes,
		start:    time.Now(),
		shards:   make([]*shardState, len(opts.Shards)),
	}
	// Pre-create the split series so they scrape as 0 from the first
	// request instead of materializing on first increment — dashboards
	// and the chaos test can assert "shed is zero", not "shed is absent".
	for _, key := range []string{
		"router.requests", "router.rejected", "router.routed_items",
		"router.shed_items", "router.retries", "router.down_marks",
		"router.readoptions",
	} {
		rt.counters.Counter(key)
	}
	reg := opts.Obs.Reg
	for i, sc := range opts.Shards {
		s := &shardState{
			id:       sc.ID,
			replicas: make([]*replicaState, len(sc.Replicas)),
			routedC: reg.Counter("freq_router_shard_routed_items_total",
				"Items acknowledged by at least one replica of the shard.",
				obs.Label{Key: "shard", Value: sc.ID}),
			shedC: reg.Counter("freq_router_shard_shed_items_total",
				"Items dropped because no replica of the shard accepted them.",
				obs.Label{Key: "shard", Value: sc.ID}),
		}
		for j, u := range sc.Replicas {
			s.replicas[j] = &replicaState{url: strings.TrimRight(u, "/")}
		}
		rt.shards[i] = s
		reg.GaugeFunc("freq_router_replicas_up",
			"Replicas of the shard currently considered live.",
			func() float64 {
				rt.mu.Lock()
				defer rt.mu.Unlock()
				up := 0
				for _, rep := range s.replicas {
					if !rep.down {
						up++
					}
				}
				return float64(up)
			}, obs.Label{Key: "shard", Value: sc.ID})
		reg.CounterFunc("freq_router_replica_restarts_total",
			"Replica process restarts observed (epoch changes) across the shard.",
			func() float64 {
				rt.mu.Lock()
				defer rt.mu.Unlock()
				var n int64
				for _, rep := range s.replicas {
					n += rep.restarts
				}
				return float64(n)
			}, obs.Label{Key: "shard", Value: sc.ID})
	}
	reg.GaugeFunc("freq_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(rt.start).Seconds() })
	return rt, nil
}

// Counters exposes the router's named counter set (router.retries,
// router.shed_items, router.down_marks, router.readoptions, ...) for
// tests and embedders; HTTP clients read the same values via /stats
// and /v1/metrics.
func (rt *Router) Counters() *obs.Set { return rt.counters }

// Ring returns the router's hash ring (immutable, shared).
func (rt *Router) Ring() *Ring { return rt.ring }

// statusError is a non-200 ingest ack; 429 and 5xx are retryable (the
// replica is alive but shedding or failing transiently), other statuses
// are permanent for this payload.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	if e.body == "" {
		return fmt.Sprintf("HTTP %d", e.code)
	}
	return fmt.Sprintf("HTTP %d: %s", e.code, e.body)
}

func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code == http.StatusTooManyRequests || se.code >= 500
	}
	return true // transport errors: the replica may be back next attempt
}

// ack is the replica's answer to one accepted forward: its cumulative
// stream position and process epoch.
type ack struct {
	n        int64
	epoch    uint64
	hasEpoch bool
}

// sendOnce forwards payload to one replica's /ingest and parses the ack.
func (rt *Router) sendOnce(ctx context.Context, base string, payload []byte) (ack, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/ingest", bytes.NewReader(payload))
	if err != nil {
		return ack{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// Propagate the request's trace ID so one client ingest is
	// correlatable across the router's log line and every replica's.
	if tid := obs.TraceFrom(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return ack{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ack{}, &statusError{code: resp.StatusCode, body: strings.TrimSpace(string(b))}
	}
	var body struct {
		N int64 `json:"n"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	a := ack{n: body.N}
	if h := resp.Header.Get(serve.HeaderEpoch); h != "" {
		if v, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			a.epoch, a.hasEpoch = v, true
		}
	}
	return a, nil
}

// send forwards payload to one replica with bounded retry: up to
// 1+retries attempts, doubling backoff between them, giving up early on
// a non-retryable status or a cancelled request context.
func (rt *Router) send(ctx context.Context, base string, payload []byte) (ack, error) {
	backoff := rt.backoff
	for attempt := 0; ; attempt++ {
		a, err := rt.sendOnce(ctx, base, payload)
		if err == nil || attempt >= rt.retries || !retryable(err) || ctx.Err() != nil {
			return a, err
		}
		rt.mu.Lock()
		rt.retried++
		rt.mu.Unlock()
		rt.counters.Add("router.retries", 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return a, err
		}
		backoff *= 2
	}
}

// targets snapshots the replicas of shard si that should receive the
// next write: the live set — or, when every replica is down, all of
// them. The desperation fan doubles as an inline probe, so a shard
// whose replicas all crashed re-adopts the first one to come back on
// the very next write, without waiting out a probe interval.
func (rt *Router) targets(si int) []*replicaState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.shards[si]
	live := make([]*replicaState, 0, len(s.replicas))
	for _, rep := range s.replicas {
		if !rep.down {
			live = append(live, rep)
		}
	}
	if len(live) == 0 {
		return append(live, s.replicas...)
	}
	return live
}

// record applies one forward outcome to a replica's state. An epoch
// change on a successful ack is a restart observation: the replica came
// back as a new process (its recovered state replaces, never adds, on
// the read path — the coordinator's epoch machinery guarantees that;
// here it is counted so operators see the churn).
func (rt *Router) record(rep *replicaState, a ack, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err != nil {
		if !rep.down {
			rt.counters.Add("router.down_marks", 1)
		}
		rep.down = true
		rep.failures++
		rep.lastErr = err.Error()
		return
	}
	if rep.down {
		rt.counters.Add("router.readoptions", 1)
	}
	rep.down = false
	rep.lastErr = ""
	rep.n = a.n
	if a.hasEpoch {
		if rep.hasEpoch && rep.epoch != a.epoch {
			rep.restarts++
		}
		rep.epoch, rep.hasEpoch = a.epoch, true
	}
}

// forwardShard fans one sub-batch to shard si's replicas concurrently
// and returns whether the batch was acknowledged (>=1 replica accepted
// it). A replica whose retries are exhausted is marked down immediately
// — this is what makes the failover guarantee hold: a replica is either
// in the live set and receiving every acknowledged write, or down and
// receiving none, never silently skipping some.
func (rt *Router) forwardShard(ctx context.Context, si int, items []core.Item) bool {
	payload := stream.AppendRaw(make([]byte, 0, len(items)*8), items)
	targets := rt.targets(si)
	okc := make(chan bool, len(targets))
	for _, rep := range targets {
		go func(rep *replicaState) {
			a, err := rt.send(ctx, rep.url, payload)
			rt.record(rep, a, err)
			okc <- err == nil
		}(rep)
	}
	acked := false
	for range targets {
		if <-okc {
			acked = true
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if acked {
		rt.shards[si].routed += int64(len(items))
		rt.acked += int64(len(items))
		rt.shards[si].routedC.Add(int64(len(items)))
		rt.counters.Add("router.routed_items", int64(len(items)))
	} else {
		rt.shards[si].shed += int64(len(items))
		rt.shedN += int64(len(items))
		rt.shards[si].shedC.Add(int64(len(items)))
		rt.counters.Add("router.shed_items", int64(len(items)))
	}
	return acked
}

// probeOne health-checks one replica via GET /stats. Success re-adopts
// a down replica (and refreshes n/epoch for a live one); failure marks
// it down. The epoch field in the stats body is the same process epoch
// the ingest ack header carries, so a restart observed only between
// writes is still counted.
func (rt *Router) probeOne(ctx context.Context, rep *replicaState) {
	ctx, cancel := context.WithTimeout(ctx, rt.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/stats", nil)
	if err != nil {
		rt.record(rep, ack{}, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.record(rep, ack{}, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		rt.record(rep, ack{}, &statusError{code: resp.StatusCode, body: strings.TrimSpace(string(b))})
		return
	}
	// Decoding epoch straight into a uint64 keeps it exact; a float64
	// round-trip would corrupt nanosecond epochs (they exceed 2^53).
	var body struct {
		N     int64  `json:"n"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		rt.record(rep, ack{}, fmt.Errorf("bad stats body: %v", err))
		return
	}
	rt.record(rep, ack{n: body.N, epoch: body.Epoch, hasEpoch: true}, nil)
}

// Probe health-checks every replica concurrently: down replicas are
// re-adopted when they answer, live ones refresh their observed stream
// position and epoch. POST /probe triggers it on demand; Run does it on
// an interval.
func (rt *Router) Probe(ctx context.Context) {
	rt.mu.Lock()
	var reps []*replicaState
	for _, s := range rt.shards {
		reps = append(reps, s.replicas...)
	}
	rt.mu.Unlock()
	var wg sync.WaitGroup
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *replicaState) {
			defer wg.Done()
			rt.probeOne(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// Run probes on the given interval until ctx is cancelled. An interval
// of 0 selects one second.
func (rt *Router) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.Probe(ctx)
		}
	}
}
