package counters

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"streamfreq/internal/core"
)

// Binary serialization for counter-based summaries, used when shipping
// per-shard summaries to a coordinator for merging. Formats are versioned
// by a 4-byte magic and little-endian throughout.

const (
	magicFQ = "FQ01"
	magicSS = "SS01"
	magicLC = "LC01"
	magicSL = "SL01"
)

// maxEntries bounds decoded entry counts against corrupt headers.
const maxEntries = 1 << 22

type entWriter struct{ buf bytes.Buffer }

func (w *entWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *entWriter) i64(v int64) { w.u64(uint64(v)) }

type entReader struct {
	data []byte
	pos  int
	err  error
}

func (r *entReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.err = fmt.Errorf("counters: truncated payload at offset %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *entReader) i64() int64 { return int64(r.u64()) }

func (r *entReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("counters: %d trailing bytes", len(r.data)-r.pos)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Logical counts are
// stored (the offset is folded in), so the decoded summary is logically
// identical with offset zero.
func (f *Frequent) MarshalBinary() ([]byte, error) {
	var w entWriter
	w.buf.WriteString(magicFQ)
	w.u64(uint64(f.k))
	w.i64(f.n)
	w.i64(f.decs)
	w.u64(uint64(len(f.heap)))
	for _, e := range f.heap {
		w.u64(uint64(e.item))
		w.i64(e.count - f.offset)
	}
	return w.buf.Bytes(), nil
}

// DecodeFrequent parses a summary produced by (*Frequent).MarshalBinary.
func DecodeFrequent(data []byte) (*Frequent, error) {
	if len(data) < 4 || string(data[:4]) != magicFQ {
		return nil, fmt.Errorf("counters: not a Frequent blob")
	}
	r := entReader{data: data[4:]}
	k := r.u64()
	n := r.i64()
	decs := r.i64()
	cnt := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if k == 0 || k > maxEntries || cnt > k {
		return nil, fmt.Errorf("counters: implausible Frequent header (k=%d, entries=%d)", k, cnt)
	}
	// Validate the payload length before allocating k-sized structures.
	if remaining := len(r.data) - r.pos; uint64(remaining) != cnt*16 {
		return nil, fmt.Errorf("counters: Frequent payload %d bytes, want %d", remaining, cnt*16)
	}
	f := NewFrequent(int(k))
	f.n = n
	f.decs = decs
	for i := uint64(0); i < cnt; i++ {
		item := core.Item(r.u64())
		count := r.i64()
		if count <= 0 {
			return nil, fmt.Errorf("counters: non-positive stored count %d", count)
		}
		e := &entry{item: item, count: count}
		f.index[item] = e
		f.heap.push(e)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(f.index) != len(f.heap) {
		return nil, fmt.Errorf("counters: duplicate items in Frequent blob")
	}
	return f, nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Entries are
// written in heap-structural order; the flat storage's heap evolves
// exactly as the old pointer heap did, so blobs stay byte-identical
// across the slab refactor (the crash-recovery walls compare on this).
func (s *SpaceSavingHeap) MarshalBinary() ([]byte, error) {
	var w entWriter
	w.buf.WriteString(magicSS)
	w.u64(uint64(s.k))
	w.i64(s.n)
	w.u64(uint64(len(s.st.heap)))
	for _, id := range s.st.heap {
		nd := &s.st.nodes[id]
		w.u64(uint64(nd.item))
		w.i64(nd.count)
		w.i64(nd.err)
	}
	return w.buf.Bytes(), nil
}

// DecodeSpaceSavingHeap parses a summary produced by
// (*SpaceSavingHeap).MarshalBinary.
func DecodeSpaceSavingHeap(data []byte) (*SpaceSavingHeap, error) {
	return decodeSpaceSavingHeap(data, nil)
}

// DecodeSpaceSaving parses an SS01 blob into slab-drawn storage — the
// reload half of the multi-tenant table's evict/reload cycle, so a
// tenant coming back from its compact blob lands in the same arena it
// left.
func (sl *Slab) DecodeSpaceSaving(data []byte) (*SpaceSavingHeap, error) {
	return decodeSpaceSavingHeap(data, sl)
}

func decodeSpaceSavingHeap(data []byte, sl *Slab) (*SpaceSavingHeap, error) {
	if len(data) < 4 || string(data[:4]) != magicSS {
		return nil, fmt.Errorf("counters: not a SpaceSaving blob")
	}
	r := entReader{data: data[4:]}
	k := r.u64()
	n := r.i64()
	cnt := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if k == 0 || k > maxEntries || cnt > k {
		return nil, fmt.Errorf("counters: implausible SpaceSaving header (k=%d, entries=%d)", k, cnt)
	}
	if remaining := len(r.data) - r.pos; uint64(remaining) != cnt*24 {
		return nil, fmt.Errorf("counters: SpaceSaving payload %d bytes, want %d", remaining, cnt*24)
	}
	var s *SpaceSavingHeap
	if sl != nil {
		s = sl.NewSpaceSaving(int(k))
	} else {
		s = NewSpaceSavingHeap(int(k))
	}
	s.n = n
	for i := uint64(0); i < cnt; i++ {
		item := core.Item(r.u64())
		count := r.i64()
		errv := r.i64()
		if count < 0 || errv < 0 || errv > count {
			s.Release()
			return nil, fmt.Errorf("counters: invalid SpaceSaving entry (count=%d err=%d)", count, errv)
		}
		if s.st.lookup(item) >= 0 {
			return nil, fmt.Errorf("counters: duplicate items in SpaceSaving blob")
		}
		id := int32(len(s.st.nodes))
		s.st.nodes = append(s.st.nodes, ssNode{item: item, count: count, err: errv})
		s.st.insert(item, id)
		s.st.heapPush(id)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Entries are written
// in ascending item order — the index map has no inherent order, and a
// canonical layout makes the encoding deterministic: logically equal
// summaries produce byte-equal blobs, the property the crash-recovery
// tests (and any content-addressed checkpoint store) compare on.
func (l *LossyCounting) MarshalBinary() ([]byte, error) {
	var w entWriter
	w.buf.WriteString(magicLC)
	w.u64(math.Float64bits(l.epsilon))
	w.u64(uint64(l.variant))
	w.i64(l.n)
	w.u64(uint64(len(l.index)))
	items := make([]core.Item, 0, len(l.index))
	for it := range l.index {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, it := range items {
		e := l.index[it]
		w.u64(uint64(it))
		w.i64(e.count)
		w.i64(e.delta)
	}
	return w.buf.Bytes(), nil
}

// DecodeLossyCounting parses a summary produced by
// (*LossyCounting).MarshalBinary.
func DecodeLossyCounting(data []byte) (*LossyCounting, error) {
	if len(data) < 4 || string(data[:4]) != magicLC {
		return nil, fmt.Errorf("counters: not a LossyCounting blob")
	}
	r := entReader{data: data[4:]}
	eps := math.Float64frombits(r.u64())
	variant := r.u64()
	n := r.i64()
	cnt := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if !(eps > 0 && eps < 1) || variant > 1 || cnt > maxEntries {
		return nil, fmt.Errorf("counters: implausible LossyCounting header (ε=%v variant=%d entries=%d)", eps, variant, cnt)
	}
	if remaining := len(r.data) - r.pos; uint64(remaining) != cnt*24 {
		return nil, fmt.Errorf("counters: LossyCounting payload %d bytes, want %d", remaining, cnt*24)
	}
	l := NewLossyCounting(eps, LCVariant(variant))
	l.n = n
	l.bucket = (n + l.width - 1) / l.width
	if l.bucket < 1 {
		l.bucket = 1
	}
	for i := uint64(0); i < cnt; i++ {
		item := core.Item(r.u64())
		count := r.i64()
		delta := r.i64()
		if count <= 0 || delta < 0 {
			return nil, fmt.Errorf("counters: invalid LossyCounting entry (count=%d Δ=%d)", count, delta)
		}
		if _, dup := l.index[item]; dup {
			return nil, fmt.Errorf("counters: duplicate item in LossyCounting blob")
		}
		l.index[item] = &lcEntry{count: count, delta: delta}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return l, nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the
// Stream-Summary variant. Entries are written in structural order —
// buckets ascending by count, entries within a bucket from the head —
// and DecodeSpaceSavingList rebuilds exactly that linkage, so
// encode→decode→encode is byte-identical and the decoded structure is
// validate-clean like a Clone.
func (s *SpaceSavingList) MarshalBinary() ([]byte, error) {
	var w entWriter
	w.buf.WriteString(magicSL)
	w.u64(uint64(s.k))
	w.i64(s.n)
	w.u64(uint64(s.size))
	for b := s.min; b != nil; b = b.next {
		for e := b.head; e != nil; e = e.next {
			w.u64(uint64(e.item))
			w.i64(b.count)
			w.i64(e.err)
		}
	}
	return w.buf.Bytes(), nil
}

// DecodeSpaceSavingList parses a summary produced by
// (*SpaceSavingList).MarshalBinary, reconstructing the bucket list
// directly: consecutive entries sharing a count share a bucket, and
// counts must be non-decreasing (the structural order MarshalBinary
// emits), so a shuffled or hand-forged blob is rejected.
func DecodeSpaceSavingList(data []byte) (*SpaceSavingList, error) {
	if len(data) < 4 || string(data[:4]) != magicSL {
		return nil, fmt.Errorf("counters: not a SpaceSavingList blob")
	}
	r := entReader{data: data[4:]}
	k := r.u64()
	n := r.i64()
	cnt := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if k == 0 || k > maxEntries || cnt > k {
		return nil, fmt.Errorf("counters: implausible SpaceSavingList header (k=%d, entries=%d)", k, cnt)
	}
	if remaining := len(r.data) - r.pos; uint64(remaining) != cnt*24 {
		return nil, fmt.Errorf("counters: SpaceSavingList payload %d bytes, want %d", remaining, cnt*24)
	}
	s := NewSpaceSavingList(int(k))
	s.n = n
	s.size = int(cnt)
	var curB *ssBucket
	var lastE *ssEntry
	for i := uint64(0); i < cnt; i++ {
		item := core.Item(r.u64())
		count := r.i64()
		errv := r.i64()
		if count <= 0 || errv < 0 || errv > count {
			return nil, fmt.Errorf("counters: invalid SpaceSavingList entry (count=%d err=%d)", count, errv)
		}
		if curB == nil || count != curB.count {
			if curB != nil && count < curB.count {
				return nil, fmt.Errorf("counters: SpaceSavingList blob buckets out of order (%d after %d)", count, curB.count)
			}
			nb := &ssBucket{count: count, prev: curB}
			if curB != nil {
				curB.next = nb
			} else {
				s.min = nb
			}
			curB, lastE = nb, nil
		}
		if _, dup := s.index[item]; dup {
			return nil, fmt.Errorf("counters: duplicate item in SpaceSavingList blob")
		}
		e := &ssEntry{item: item, err: errv, bucket: curB, prev: lastE}
		if lastE != nil {
			lastE.next = e
		} else {
			curB.head = e
		}
		s.index[item] = e
		lastE = e
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}
