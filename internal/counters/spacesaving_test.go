package counters

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

// ssSummary is the common behaviour of the two Space-Saving variants,
// letting the invariant tests run against both.
type ssSummary interface {
	core.Summary
	Min() int64
	GuaranteedCount(core.Item) int64
	Entries() []core.ItemCount
	K() int
}

func ssVariants(k int) map[string]ssSummary {
	return map[string]ssSummary{
		"SSH": NewSpaceSavingHeap(k),
		"SSL": NewSpaceSavingList(k),
	}
}

// ssInvariants checks the Space-Saving guarantees against exact truth.
func ssInvariants(t *testing.T, name string, s ssSummary, truth *exact.Counter, universe []core.Item) {
	t.Helper()
	min := s.Min()
	if maxErr := truth.N() / int64(s.K()); min > maxErr {
		t.Fatalf("%s: min counter %d exceeds n/k = %d", name, min, maxErr)
	}
	for _, it := range universe {
		est, tru := s.Estimate(it), truth.Estimate(it)
		if est < tru {
			t.Fatalf("%s: item %d estimate %d underestimates true %d", name, it, est, tru)
		}
		if est > tru+min {
			t.Fatalf("%s: item %d estimate %d exceeds true %d + min %d", name, it, est, tru, min)
		}
		if g := s.GuaranteedCount(it); g > tru {
			t.Fatalf("%s: item %d guaranteed %d exceeds true %d", name, it, g, tru)
		}
	}
}

func TestSpaceSavingInvariantsZipf(t *testing.T) {
	for name, s := range ssVariants(64) {
		g, err := zipf.NewGenerator(3000, 1.1, 31, true)
		if err != nil {
			t.Fatal(err)
		}
		truth := exact.New()
		var universe []core.Item
		for r := 1; r <= 3000; r++ {
			universe = append(universe, g.ItemOfRank(r))
		}
		for i := 0; i < 80000; i++ {
			it := g.Next()
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		ssInvariants(t, name, s, truth, universe)
	}
}

func TestSpaceSavingInvariantsSequential(t *testing.T) {
	// Sequential streams force an eviction on every arrival.
	for name, s := range ssVariants(16) {
		truth := exact.New()
		items := zipf.Sequential(5000)
		for _, it := range items {
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		ssInvariants(t, name, s, truth, items)
	}
}

func TestSpaceSavingRecall(t *testing.T) {
	// Every item with count > n/k must be tracked (both variants).
	for name, s := range ssVariants(50) {
		g, _ := zipf.NewGenerator(1000, 1.4, 17, true)
		truth := exact.New()
		const n = 60000
		for i := 0; i < n; i++ {
			it := g.Next()
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		tracked := map[core.Item]bool{}
		for _, ic := range s.Entries() {
			tracked[ic.Item] = true
		}
		for _, tc := range truth.Query(n/50 + 1) {
			if !tracked[tc.Item] {
				t.Errorf("%s: untracked heavy item %d (count %d > n/k)", name, tc.Item, tc.Count)
			}
		}
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	// With fewer distinct items than counters, Space-Saving is exact.
	for name, s := range ssVariants(100) {
		g, _ := zipf.NewGenerator(50, 1.0, 7, true)
		truth := exact.New()
		for i := 0; i < 20000; i++ {
			it := g.Next()
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		for r := 1; r <= 50; r++ {
			it := g.ItemOfRank(r)
			if s.Estimate(it) != truth.Estimate(it) {
				t.Errorf("%s: item %d inexact under capacity: %d vs %d",
					name, it, s.Estimate(it), truth.Estimate(it))
			}
			if s.GuaranteedCount(it) != truth.Estimate(it) {
				t.Errorf("%s: item %d guaranteed bound should be exact", name, it)
			}
		}
		if s.Min() != 0 {
			t.Errorf("%s: Min = %d with free capacity", name, s.Min())
		}
	}
}

func TestSpaceSavingVariantsAgreeOnCounterMultiset(t *testing.T) {
	// Same stream, same k: the multiset of counter values must match
	// between SSH and SSL whenever no eviction ties occur. Use a skewed
	// stream where the head is unambiguous, and compare total counter sum,
	// which is tie-insensitive: each update adds its weight plus exactly
	// the evicted minimum.
	h := NewSpaceSavingHeap(32)
	l := NewSpaceSavingList(32)
	g, _ := zipf.NewGenerator(500, 1.5, 3, true)
	for i := 0; i < 40000; i++ {
		it := g.Next()
		h.Update(it, 1)
		l.Update(it, 1)
	}
	var hs, ls int64
	for _, e := range h.Entries() {
		hs += e.Count
	}
	for _, e := range l.Entries() {
		ls += e.Count
	}
	if hs != ls {
		t.Errorf("counter mass differs: SSH %d vs SSL %d", hs, ls)
	}
	if h.Min() != l.Min() {
		t.Errorf("min differs: SSH %d vs SSL %d", h.Min(), l.Min())
	}
	// Top-of-head estimates must agree (no ties in the head of a skewed
	// distribution).
	top := g.ItemOfRank(1)
	if h.Estimate(top) != l.Estimate(top) {
		t.Errorf("rank-1 estimate differs: %d vs %d", h.Estimate(top), l.Estimate(top))
	}
}

func TestSpaceSavingListStructure(t *testing.T) {
	l := NewSpaceSavingList(8)
	g, _ := zipf.NewGenerator(100, 1.0, 13, true)
	for i := 0; i < 5000; i++ {
		l.Update(g.Next(), 1)
		if i%97 == 0 && !l.validate() {
			t.Fatalf("stream-summary structure invalid at step %d", i)
		}
	}
	if !l.validate() {
		t.Fatal("stream-summary structure invalid at end")
	}
	if l.buckets() > 8 {
		t.Errorf("%d buckets for 8 entries", l.buckets())
	}
}

func TestSpaceSavingWeightedUpdates(t *testing.T) {
	for name, s := range ssVariants(4) {
		s.Update(1, 10)
		s.Update(2, 5)
		s.Update(1, 3)
		if got := s.Estimate(1); got != 13 {
			t.Errorf("%s: Estimate(1) = %d, want 13", name, got)
		}
		// Fill and overflow.
		s.Update(3, 1)
		s.Update(4, 1)
		s.Update(5, 2) // evicts a count-1 entry; estimate 3
		if got := s.Estimate(5); got != 3 {
			t.Errorf("%s: Estimate(5) = %d, want 3 (1 inherited + 2)", name, got)
		}
	}
}

func TestSpaceSavingQueryOrder(t *testing.T) {
	for name, s := range ssVariants(10) {
		for i := int64(1); i <= 5; i++ {
			for j := int64(0); j < i*10; j++ {
				s.Update(core.Item(i), 1)
			}
		}
		q := s.Query(20)
		if len(q) != 4 {
			t.Fatalf("%s: Query(20) returned %d items, want 4", name, len(q))
		}
		for i := 1; i < len(q); i++ {
			if q[i].Count > q[i-1].Count {
				t.Errorf("%s: query results not descending", name)
			}
		}
	}
}

func TestSpaceSavingHeapMergeInvariants(t *testing.T) {
	const k, n = 30, 20000
	a, b := NewSpaceSavingHeap(k), NewSpaceSavingHeap(k)
	gA, _ := zipf.NewGenerator(400, 1.2, 41, true)
	gB, _ := zipf.NewGenerator(400, 1.0, 42, true)
	truth := exact.New()
	seen := map[core.Item]bool{}
	var universe []core.Item
	feed := func(s *SpaceSavingHeap, g *zipf.Generator) {
		for i := 0; i < n; i++ {
			it := g.Next()
			s.Update(it, 1)
			truth.Update(it, 1)
			if !seen[it] {
				seen[it] = true
				universe = append(universe, it)
			}
		}
	}
	feed(a, gA)
	feed(b, gB)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 2*n {
		t.Fatalf("merged N = %d", a.N())
	}
	// Post-merge: estimates never underestimate; guaranteed counts never
	// overestimate.
	for _, it := range universe {
		tru := truth.Estimate(it)
		if est := a.Estimate(it); est < tru {
			t.Fatalf("merged estimate %d underestimates %d for item %d", est, tru, it)
		}
		if g := a.GuaranteedCount(it); g > tru {
			t.Fatalf("merged guarantee %d exceeds true %d for item %d", g, tru, it)
		}
	}
}

func TestSpaceSavingMergeIncompatible(t *testing.T) {
	if err := NewSpaceSavingHeap(3).Merge(NewFrequent(3)); err == nil {
		t.Error("expected incompatibility error")
	}
}

func TestSpaceSavingPropertyOverestimateBounded(t *testing.T) {
	f := func(items []uint8, k uint8) bool {
		kk := int(k%12) + 1
		s := NewSpaceSavingHeap(kk)
		truth := exact.New()
		for _, b := range items {
			it := core.Item(b % 24)
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		min := s.Min()
		for v := core.Item(0); v < 24; v++ {
			est, tru := s.Estimate(v), truth.Estimate(v)
			if est < tru || est > tru+min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpaceSavingListPropertyMatchesInvariant(t *testing.T) {
	f := func(items []uint8, k uint8) bool {
		kk := int(k%12) + 1
		s := NewSpaceSavingList(kk)
		truth := exact.New()
		for _, b := range items {
			it := core.Item(b % 24)
			s.Update(it, 1)
			truth.Update(it, 1)
		}
		if !s.validate() {
			return false
		}
		min := s.Min()
		for v := core.Item(0); v < 24; v++ {
			est, tru := s.Estimate(v), truth.Estimate(v)
			if est < tru || est > tru+min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSpaceSavingMergeGuarantee: Merge(A, B) of either Space-Saving
// variant must satisfy the Space-Saving invariants for the concatenated
// stream — no underestimates, overestimates bounded by the combined
// minimum inflation (≤ n_a/k + n_b/k) — and the two variants, which use
// the same deterministic merge construction, must produce identical
// threshold reports.
func TestSpaceSavingMergeGuarantee(t *testing.T) {
	const k = 48
	ga, err := zipf.NewGenerator(2000, 1.1, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := zipf.NewGenerator(2000, 0.9, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	streamA, streamB := ga.Stream(30_000), gb.Stream(20_000)

	truth := exact.New()
	for _, it := range append(append([]core.Item{}, streamA...), streamB...) {
		truth.Update(it, 1)
	}

	as, bs := ssVariants(k), ssVariants(k)
	for _, it := range streamA {
		for _, s := range as {
			s.Update(it, 1)
		}
	}
	for _, it := range streamB {
		for _, s := range bs {
			s.Update(it, 1)
		}
	}

	var reports map[string][]core.ItemCount = map[string][]core.ItemCount{}
	for name, a := range as {
		if err := a.(core.Merger).Merge(bs[name]); err != nil {
			t.Fatalf("%s: merge: %v", name, err)
		}
		n := int64(len(streamA) + len(streamB))
		if a.N() != n {
			t.Fatalf("%s: merged N = %d, want %d", name, a.N(), n)
		}
		// Merged min inflation bounds every estimate's overshoot; the
		// underestimate side must still be zero.
		maxOver := n / int64(k)
		for _, ic := range truth.TopK(50) {
			est := a.Estimate(ic.Item)
			if est < ic.Count {
				t.Fatalf("%s: merged estimate %d underestimates true %d (item %d)",
					name, est, ic.Count, ic.Item)
			}
			if est > ic.Count+maxOver {
				t.Fatalf("%s: merged estimate %d exceeds true %d + n/k %d (item %d)",
					name, est, ic.Count, maxOver, ic.Item)
			}
		}
		reports[name] = a.Query(n / int64(k+1))
	}
	if lh, ll := len(reports["SSH"]), len(reports["SSL"]); lh != ll {
		t.Fatalf("merged SSH reports %d items, SSL %d", lh, ll)
	}
	for i, ic := range reports["SSH"] {
		if reports["SSL"][i] != ic {
			t.Fatalf("merged report[%d]: SSH %+v, SSL %+v", i, ic, reports["SSL"][i])
		}
	}
	if l := as["SSL"].(*SpaceSavingList); !l.validate() {
		t.Fatal("merged SSL fails structural validation")
	}
}

// TestSpaceSavingListMergeIncompatible: the list variant rejects foreign
// summaries (including its heap sibling — their structures don't mix).
func TestSpaceSavingListMergeIncompatible(t *testing.T) {
	s := NewSpaceSavingList(4)
	if err := s.Merge(NewSpaceSavingHeap(4)); err == nil {
		t.Fatal("SSL merged an SSH summary without error")
	}
	if err := s.Merge(NewFrequent(4)); err == nil {
		t.Fatal("SSL merged a Frequent summary without error")
	}
}
