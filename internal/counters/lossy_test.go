package counters

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestLossyCountingValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for epsilon %v", eps)
				}
			}()
			NewLossyCounting(eps, VariantLC)
		}()
	}
}

// lcBounds checks true − εN ≤ estimate ≤ true for the LC variant.
func lcBounds(t *testing.T, l *LossyCounting, truth *exact.Counter, universe []core.Item) {
	t.Helper()
	slack := int64(l.Epsilon()*float64(truth.N())) + 1
	for _, it := range universe {
		est, tru := l.Estimate(it), truth.Estimate(it)
		if est > tru {
			t.Fatalf("item %d: LC estimate %d exceeds true %d", it, est, tru)
		}
		if est < tru-slack {
			t.Fatalf("item %d: LC estimate %d below true %d − εN %d", it, est, tru, slack)
		}
	}
}

func TestLossyCountingBoundsZipf(t *testing.T) {
	g, err := zipf.NewGenerator(2000, 1.1, 55, true)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLossyCounting(0.005, VariantLC)
	truth := exact.New()
	var universe []core.Item
	for r := 1; r <= 2000; r++ {
		universe = append(universe, g.ItemOfRank(r))
	}
	for i := 0; i < 100000; i++ {
		it := g.Next()
		l.Update(it, 1)
		truth.Update(it, 1)
	}
	lcBounds(t, l, truth, universe)
}

func TestLossyCountingBoundsSequential(t *testing.T) {
	l := NewLossyCounting(0.01, VariantLC)
	truth := exact.New()
	items := zipf.Sequential(20000)
	for _, it := range items {
		l.Update(it, 1)
		truth.Update(it, 1)
	}
	lcBounds(t, l, truth, items)
	// A sequential stream leaves at most one full bucket of live entries.
	if l.EntryCount() > 200 {
		t.Errorf("sequential stream left %d live entries; pruning is broken", l.EntryCount())
	}
}

func TestLCDEstimateIsUpperBound(t *testing.T) {
	g, _ := zipf.NewGenerator(1000, 1.0, 66, true)
	lcd := NewLossyCounting(0.01, VariantLCD)
	truth := exact.New()
	const n = 50000
	for i := 0; i < n; i++ {
		it := g.Next()
		lcd.Update(it, 1)
		truth.Update(it, 1)
	}
	slack := int64(0.01*n) + 1
	for r := 1; r <= 1000; r++ {
		it := g.ItemOfRank(r)
		est, tru := lcd.Estimate(it), truth.Estimate(it)
		if est != 0 && est < tru {
			t.Errorf("item %d: LCD estimate %d below true %d (must be upper bound when tracked)", it, est, tru)
		}
		if est > tru+slack {
			t.Errorf("item %d: LCD estimate %d exceeds true + εN = %d", it, est, tru+slack)
		}
	}
}

func TestLossyCountingRecall(t *testing.T) {
	// Every item with count ≥ φN must be reported for threshold φN when
	// φ > ε.
	g, _ := zipf.NewGenerator(800, 1.3, 12, true)
	l := NewLossyCounting(0.002, VariantLC)
	truth := exact.New()
	const n = 80000
	for i := 0; i < n; i++ {
		it := g.Next()
		l.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.01 * n)
	reported := map[core.Item]bool{}
	for _, ic := range l.Query(threshold) {
		reported[ic.Item] = true
	}
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("missed heavy item %d (count %d)", tc.Item, tc.Count)
		}
	}
}

func TestLossyCountingSpaceBounded(t *testing.T) {
	// Live entries stay well below the distinct count for a skewed stream
	// (the whole point of the algorithm).
	g, _ := zipf.NewGenerator(50000, 1.0, 8, true)
	l := NewLossyCounting(0.001, VariantLC)
	for i := 0; i < 200000; i++ {
		l.Update(g.Next(), 1)
	}
	if l.EntryCount() > 20000 {
		t.Errorf("%d live entries; space bound violated", l.EntryCount())
	}
	if l.Bytes() != entryBytes*l.EntryCount() {
		t.Errorf("Bytes accounting inconsistent")
	}
}

func TestLossyCountingWeightedCrossesBuckets(t *testing.T) {
	// A weighted update spanning several buckets must trigger pruning.
	l := NewLossyCounting(0.1, VariantLC) // w = 10
	l.Update(1, 1)
	l.Update(2, 35) // crosses at least 3 bucket boundaries
	// Item 1 (count 1, delta 0) must be pruned: 1 + 0 ≤ bucket−1.
	if l.Estimate(1) != 0 {
		t.Errorf("item 1 should have been pruned, estimate %d", l.Estimate(1))
	}
	if l.Estimate(2) != 35 {
		t.Errorf("item 2 estimate %d, want 35", l.Estimate(2))
	}
}

func TestLossyCountingMerge(t *testing.T) {
	gA, _ := zipf.NewGenerator(500, 1.2, 31, true)
	gB, _ := zipf.NewGenerator(500, 1.0, 32, true)
	const n = 30000
	la := NewLossyCounting(0.005, VariantLC)
	lb := NewLossyCounting(0.005, VariantLC)
	truth := exact.New()
	seen := map[core.Item]bool{}
	var universe []core.Item
	feed := func(l *LossyCounting, g *zipf.Generator) {
		for i := 0; i < n; i++ {
			it := g.Next()
			l.Update(it, 1)
			truth.Update(it, 1)
			if !seen[it] {
				seen[it] = true
				universe = append(universe, it)
			}
		}
	}
	feed(la, gA)
	feed(lb, gB)
	if err := la.Merge(lb); err != nil {
		t.Fatal(err)
	}
	if la.N() != 2*n {
		t.Fatalf("merged N = %d", la.N())
	}
	// Post-merge LC bound with the concatenated stream's εN slack.
	lcBounds(t, la, truth, universe)
}

func TestLossyCountingMergeRejectsMismatch(t *testing.T) {
	a := NewLossyCounting(0.01, VariantLC)
	if err := a.Merge(NewLossyCounting(0.02, VariantLC)); err == nil {
		t.Error("expected epsilon mismatch error")
	}
	if err := a.Merge(NewLossyCounting(0.01, VariantLCD)); err == nil {
		t.Error("expected variant mismatch error")
	}
	if err := a.Merge(NewFrequent(3)); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestLossyCountingPropertyBounds(t *testing.T) {
	f := func(items []uint8) bool {
		l := NewLossyCounting(0.05, VariantLC)
		truth := exact.New()
		for _, b := range items {
			it := core.Item(b % 20)
			l.Update(it, 1)
			truth.Update(it, 1)
		}
		slack := int64(0.05*float64(truth.N())) + 1
		for v := core.Item(0); v < 20; v++ {
			est, tru := l.Estimate(v), truth.Estimate(v)
			if est > tru || est < tru-slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
