package counters

import (
	"sync"

	"streamfreq/internal/core"
)

// Slab-backed storage for Space-Saving (SSH). A multi-tenant daemon
// holds millions of small instances, and the dominant cost of the old
// layout was not the counters — it was the per-instance Go map and the
// per-entry heap pointers: three heap objects and a map bucket chain
// per counter, each a GC-visible pointer. The flat layout replaces all
// of it with three slices per instance:
//
//	nodes []ssNode — the counters themselves (item, count, err, heap
//	                 position), node id = position, never moved;
//	heap  []int32  — a min-heap of node ids ordered by count;
//	index []int32  — an open-addressed hash table item → node id.
//
// Space-Saving never frees a counter (replacement overwrites the
// victim's item in place), so node ids are stable for the instance's
// lifetime and the only index deletions are the one-out-one-in pairs of
// replacement — handled with tombstones and an O(k) rebuild when they
// accumulate. The layout is pointer-free below the three slice headers,
// so a million instances cost the GC a million objects, not a hundred
// million.
//
// A Slab carves those slices out of per-k chunk arenas and recycles
// whole blocks through a free list, so tenant churn (lazy instantiation
// + idle eviction) allocates nothing in steady state and the per-tenant
// footprint is exactly blockBytes(k) — the bound the multi-tenant
// benchmark reports. Standalone instances (NewSpaceSavingHeap) use the
// same layout with directly allocated slices; the Slab is an allocator,
// not a semantic change.

// ssNode is one Space-Saving counter in the flat layout: 32 bytes,
// pointer-free. heapIdx mirrors the node's position in the heap slice,
// maintained by the heap operations exactly as entry.idx was.
type ssNode struct {
	item    core.Item
	count   int64
	err     int64
	heapIdx int32
}

// ssStorage is the storage of one SpaceSavingHeap. index slots hold
// node id + 1; 0 is empty, ssTombstone marks a deleted slot that probes
// must walk through.
type ssStorage struct {
	nodes []ssNode
	heap  []int32
	// hcnt mirrors each heap slot's count (hcnt[i] ==
	// nodes[heap[i]].count): sift comparisons read one contiguous
	// array instead of chasing heap[i] through the node table, which
	// is where a φ-provisioned summary's update time goes.
	hcnt  []int64
	index []int32
	tombs int32 // live tombstones in index
	shift uint  // 64 − log2(len(index)): hash top bits pick the slot
}

const ssTombstone = int32(-1)

// ssIndexCap returns the index capacity for k counters: the smallest
// power of two holding k live entries at ≤ 50% load (minimum 8 slots,
// so tiny k still probes sanely).
func ssIndexCap(k int) (capacity int, shift uint) {
	capacity = 8
	bits := uint(3)
	for capacity < 2*k {
		capacity *= 2
		bits++
	}
	return capacity, 64 - bits
}

// newSSStorage allocates standalone storage for k counters. Slices are
// capped at exactly k so appends never reallocate out of a slab block
// (the same code path serves both allocators).
func newSSStorage(k int) ssStorage {
	capacity, shift := ssIndexCap(k)
	return ssStorage{
		nodes: make([]ssNode, 0, k),
		heap:  make([]int32, 0, k),
		hcnt:  make([]int64, 0, k),
		index: make([]int32, capacity),
		shift: shift,
	}
}

// ssBlockBytes is the exact per-instance storage footprint for k
// counters under the flat layout; Bytes reports it and the slab's
// accounting sums it.
func ssBlockBytes(k int) int {
	capacity, _ := ssIndexCap(k)
	return 32*k + 4*k + 8*k + 4*capacity
}

// ssHash spreads an item over the index: one Fibonacci multiply with
// the slot taken from the product's top bits, the same mixing the batch
// pre-aggregation scratch uses (strong top bits even for sequential
// identifiers).
func ssHash(x core.Item) uint64 { return uint64(x) * 0x9E3779B97F4A7C15 }

// lookup returns the node id tracking x, or -1.
func (st *ssStorage) lookup(x core.Item) int32 {
	mask := uint64(len(st.index) - 1)
	i := ssHash(x) >> st.shift
	for {
		s := st.index[i]
		if s == 0 {
			return -1
		}
		if s != ssTombstone && st.nodes[s-1].item == x {
			return s - 1
		}
		i = (i + 1) & mask
	}
}

// insert records x → id. x must not be present. The first tombstone on
// the probe path is reused, keeping the table dense under the
// replacement churn of a full summary.
func (st *ssStorage) insert(x core.Item, id int32) {
	mask := uint64(len(st.index) - 1)
	i := ssHash(x) >> st.shift
	slot := uint64(0)
	haveSlot := false
	for {
		s := st.index[i]
		if s == 0 {
			if !haveSlot {
				slot = i
			} else {
				st.tombs--
			}
			st.index[slot] = id + 1
			return
		}
		if s == ssTombstone && !haveSlot {
			slot, haveSlot = i, true
		}
		i = (i + 1) & mask
	}
}

// remove deletes x's slot, leaving a tombstone; when tombstones exceed
// a quarter of the table the index is rebuilt from the nodes (O(k)),
// which bounds probe lengths: ≤ 1/2 live + ≤ 1/4 tombstones keeps
// occupancy under 3/4 at all times.
func (st *ssStorage) remove(x core.Item) {
	mask := uint64(len(st.index) - 1)
	i := ssHash(x) >> st.shift
	for {
		s := st.index[i]
		if s == 0 {
			return // absent; callers only remove tracked items
		}
		if s != ssTombstone && st.nodes[s-1].item == x {
			st.index[i] = ssTombstone
			st.tombs++
			if int(st.tombs) > len(st.index)/4 {
				st.rebuildIndex()
			}
			return
		}
		i = (i + 1) & mask
	}
}

// rebuildIndex re-inserts every node into a cleared table, discarding
// tombstones.
func (st *ssStorage) rebuildIndex() {
	clear(st.index)
	st.tombs = 0
	for id := range st.nodes {
		st.insert(st.nodes[id].item, int32(id))
	}
}

// reset empties the storage for reuse, keeping capacity.
func (st *ssStorage) reset() {
	st.nodes = st.nodes[:0]
	st.heap = st.heap[:0]
	st.hcnt = st.hcnt[:0]
	clear(st.index)
	st.tombs = 0
}

// clone returns an independent deep copy with standalone slices (a
// snapshot must outlive its source's slab block).
func (st *ssStorage) clone(k int) ssStorage {
	ns := ssStorage{
		nodes: make([]ssNode, len(st.nodes), k),
		heap:  make([]int32, len(st.heap), k),
		hcnt:  make([]int64, len(st.hcnt), k),
		index: make([]int32, len(st.index)),
		tombs: st.tombs,
		shift: st.shift,
	}
	copy(ns.nodes, st.nodes)
	copy(ns.heap, st.heap)
	copy(ns.hcnt, st.hcnt)
	copy(ns.index, st.index)
	return ns
}

// The heap operations mirror minHeap (heap.go) exactly — same
// comparison (count only, no tie-break), same swap order — so a flat
// instance fed the same update sequence produces the identical heap
// arrangement, which keeps the SS01 wire encoding (heap-structural
// order) bit-identical across the storage refactor.

func (st *ssStorage) heapLess(i, j int) bool {
	return st.hcnt[i] < st.hcnt[j]
}

func (st *ssStorage) heapPush(id int32) {
	st.nodes[id].heapIdx = int32(len(st.heap))
	st.heap = append(st.heap, id)
	st.hcnt = append(st.hcnt, st.nodes[id].count)
	st.heapUp(len(st.heap) - 1)
}

func (st *ssStorage) heapFix(i int) {
	if !st.heapDown(i) {
		st.heapUp(i)
	}
}

// heapUp and heapDown sift hole-style: the moving slot is held in
// registers while lighter/heavier slots shift one level, and written
// exactly once at its final position — the arrangement is identical to
// pairwise-swap sifting (so the SS01 heap-structural encoding is
// unchanged), with half the stores per level.

func (st *ssStorage) heapUp(i int) {
	start := i
	id, cnt := st.heap[i], st.hcnt[i]
	for i > 0 {
		parent := (i - 1) / 2
		if st.hcnt[parent] <= cnt {
			break
		}
		st.heap[i], st.hcnt[i] = st.heap[parent], st.hcnt[parent]
		st.nodes[st.heap[i]].heapIdx = int32(i)
		i = parent
	}
	if i != start {
		st.heap[i], st.hcnt[i] = id, cnt
		st.nodes[id].heapIdx = int32(i)
	}
}

func (st *ssStorage) heapDown(i int) bool {
	start := i
	n := len(st.heap)
	id, cnt := st.heap[i], st.hcnt[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small, sc := l, st.hcnt[l]
		if r := l + 1; r < n && st.hcnt[r] < sc {
			small, sc = r, st.hcnt[r]
		}
		if sc >= cnt {
			break
		}
		st.heap[i], st.hcnt[i] = st.heap[small], sc
		st.nodes[st.heap[i]].heapIdx = int32(i)
		i = small
	}
	if i != start {
		st.heap[i], st.hcnt[i] = id, cnt
		st.nodes[id].heapIdx = int32(i)
	}
	return i != start
}

// validateStorage checks the structural invariants (heap order, heapIdx
// mirrors, index consistency); used only by tests.
func (st *ssStorage) validateStorage() bool {
	if len(st.nodes) != len(st.heap) {
		return false
	}
	if len(st.hcnt) != len(st.heap) {
		return false
	}
	for i, id := range st.heap {
		if id < 0 || int(id) >= len(st.nodes) || st.nodes[id].heapIdx != int32(i) {
			return false
		}
		if st.hcnt[i] != st.nodes[id].count {
			return false
		}
		if l := 2*i + 1; l < len(st.heap) && st.heapLess(l, i) {
			return false
		}
		if r := 2*i + 2; r < len(st.heap) && st.heapLess(r, i) {
			return false
		}
	}
	for id := range st.nodes {
		if st.lookup(st.nodes[id].item) != int32(id) {
			return false
		}
	}
	return true
}

// Slab is a shared allocator of SpaceSavingHeap storage: per-k size
// classes, chunked arenas (a block's slices never move once carved, so
// handed-out storage stays valid as the slab grows), and a free list of
// released blocks. Safe for concurrent use; the instances it hands out
// are not (same contract as every summary — wrap or lock above).
type Slab struct {
	mu      sync.Mutex
	classes map[int]*slabClass
	chunkB  int64 // cumulative chunk bytes, for accounting
	live    int64 // blocks currently handed out
	freeN   int64 // blocks parked on free lists
}

type slabClass struct {
	free []ssStorage
	// remainder of the current chunk, carved front-to-back
	nodes []ssNode
	heap  []int32
	hcnt  []int64
	index []int32
}

// NewSlab returns an empty slab.
func NewSlab() *Slab {
	return &Slab{classes: make(map[int]*slabClass)}
}

// slabChunkBlocks sizes a chunk: ~1 MiB of nodes per chunk, between 8
// and 4096 blocks, so tiny-k tenants amortize allocation without huge-k
// classes over-reserving.
func slabChunkBlocks(k int) int {
	b := (1 << 20) / (32 * k)
	if b < 8 {
		b = 8
	}
	if b > 4096 {
		b = 4096
	}
	return b
}

// get hands out reset storage for k counters.
func (sl *Slab) get(k int) ssStorage {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	c := sl.classes[k]
	if c == nil {
		c = &slabClass{}
		sl.classes[k] = c
	}
	if n := len(c.free); n > 0 {
		st := c.free[n-1]
		c.free[n-1] = ssStorage{}
		c.free = c.free[:n-1]
		st.reset()
		sl.freeN--
		sl.live++
		return st
	}
	capacity, shift := ssIndexCap(k)
	if len(c.nodes) < k {
		blocks := slabChunkBlocks(k)
		c.nodes = make([]ssNode, blocks*k)
		c.heap = make([]int32, blocks*k)
		c.hcnt = make([]int64, blocks*k)
		c.index = make([]int32, blocks*capacity)
		sl.chunkB += int64(blocks) * int64(ssBlockBytes(k))
	}
	st := ssStorage{
		nodes: c.nodes[:0:k],
		heap:  c.heap[:0:k],
		hcnt:  c.hcnt[:0:k],
		index: c.index[:capacity:capacity],
		shift: shift,
	}
	c.nodes = c.nodes[k:]
	c.heap = c.heap[k:]
	c.hcnt = c.hcnt[k:]
	c.index = c.index[capacity:]
	sl.live++
	return st
}

// put parks a released block on its class free list.
func (sl *Slab) put(k int, st ssStorage) {
	if cap(st.nodes) == 0 {
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	c := sl.classes[k]
	if c == nil {
		c = &slabClass{}
		sl.classes[k] = c
	}
	c.free = append(c.free, st)
	sl.live--
	sl.freeN++
}

// NewSpaceSaving returns an SSH summary whose storage comes from the
// slab. Release it when the instance is dropped so the block recycles.
func (sl *Slab) NewSpaceSaving(k int) *SpaceSavingHeap {
	if k <= 0 {
		panic("counters: SpaceSaving requires k > 0")
	}
	return &SpaceSavingHeap{k: k, st: sl.get(k), slab: sl}
}

// SlabStats is the slab's accounting snapshot.
type SlabStats struct {
	ChunkBytes int64 `json:"chunk_bytes"` // bytes reserved in chunk arenas
	LiveBlocks int64 `json:"live_blocks"` // blocks handed out and not released
	FreeBlocks int64 `json:"free_blocks"` // blocks parked for reuse
}

// Stats reports the slab's footprint.
func (sl *Slab) Stats() SlabStats {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return SlabStats{ChunkBytes: sl.chunkB, LiveBlocks: sl.live, FreeBlocks: sl.freeN}
}

// BlockBytes reports the exact per-instance storage footprint for k
// counters — the documented bytes/tenant bound of the multi-tenant
// table (nodes + heap + index, all flat).
func BlockBytes(k int) int { return ssBlockBytes(k) }
