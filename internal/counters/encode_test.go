package counters

import (
	"testing"

	"streamfreq/internal/zipf"
)

func TestFrequentRoundTrip(t *testing.T) {
	f := NewFrequent(32)
	g, _ := zipf.NewGenerator(500, 1.1, 3, true)
	for i := 0; i < 20000; i++ {
		f.Update(g.Next(), 1)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrequent(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != f.N() || got.K() != f.K() || got.MaxError() != f.MaxError() {
		t.Fatal("metadata lost in round trip")
	}
	for r := 1; r <= 500; r++ {
		it := g.ItemOfRank(r)
		if got.Estimate(it) != f.Estimate(it) {
			t.Fatalf("estimate mismatch for item %d", it)
		}
	}
	// Decoded summary must continue to work.
	got.Update(g.ItemOfRank(1), 5)
	if got.Estimate(g.ItemOfRank(1)) != f.Estimate(g.ItemOfRank(1))+5 {
		t.Error("decoded summary broken after further updates")
	}
}

func TestSpaceSavingRoundTrip(t *testing.T) {
	s := NewSpaceSavingHeap(40)
	g, _ := zipf.NewGenerator(600, 1.2, 7, true)
	for i := 0; i < 30000; i++ {
		s.Update(g.Next(), 1)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpaceSavingHeap(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Min() != s.Min() {
		t.Fatal("metadata lost")
	}
	for r := 1; r <= 600; r++ {
		it := g.ItemOfRank(r)
		if got.Estimate(it) != s.Estimate(it) || got.GuaranteedCount(it) != s.GuaranteedCount(it) {
			t.Fatalf("estimate mismatch for item %d", it)
		}
	}
}

func TestLossyCountingRoundTrip(t *testing.T) {
	for _, v := range []LCVariant{VariantLC, VariantLCD} {
		l := NewLossyCounting(0.005, v)
		g, _ := zipf.NewGenerator(400, 1.0, 9, true)
		for i := 0; i < 25000; i++ {
			l.Update(g.Next(), 1)
		}
		blob, err := l.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeLossyCounting(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != l.Name() || got.N() != l.N() || got.EntryCount() != l.EntryCount() {
			t.Fatal("metadata lost")
		}
		for r := 1; r <= 400; r++ {
			it := g.ItemOfRank(r)
			if got.Estimate(it) != l.Estimate(it) {
				t.Fatalf("estimate mismatch for item %d", it)
			}
		}
	}
}

func TestCounterDecodeRejectsCorruption(t *testing.T) {
	f := NewFrequent(8)
	f.Update(1, 5)
	f.Update(2, 3)
	fb, _ := f.MarshalBinary()

	s := NewSpaceSavingHeap(8)
	s.Update(1, 5)
	sb, _ := s.MarshalBinary()

	l := NewLossyCounting(0.1, VariantLC)
	l.Update(1, 5)
	lb, _ := l.MarshalBinary()

	if _, err := DecodeFrequent(fb[:len(fb)-3]); err == nil {
		t.Error("truncated Frequent accepted")
	}
	if _, err := DecodeFrequent(sb); err == nil {
		t.Error("Frequent decoder accepted SpaceSaving blob")
	}
	if _, err := DecodeSpaceSavingHeap(lb); err == nil {
		t.Error("SpaceSaving decoder accepted LossyCounting blob")
	}
	if _, err := DecodeLossyCounting(append(lb, 9)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeLossyCounting([]byte("LC01")); err == nil {
		t.Error("header-only blob accepted")
	}

	// Forged entry count exceeding k must be rejected.
	forged := append([]byte{}, fb...)
	forged[4+24] = 0xFF // entries field low byte
	if _, err := DecodeFrequent(forged); err == nil {
		t.Error("forged entry count accepted")
	}
}

func TestCounterRoundTripPreservesMergeability(t *testing.T) {
	a := NewSpaceSavingHeap(16)
	b := NewSpaceSavingHeap(16)
	g, _ := zipf.NewGenerator(100, 1.0, 11, true)
	for i := 0; i < 5000; i++ {
		it := g.Next()
		a.Update(it, 1)
		b.Update(it, 1)
	}
	blob, _ := a.MarshalBinary()
	decoded, err := DecodeSpaceSavingHeap(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Merge(b); err != nil {
		t.Fatalf("decoded summary not mergeable: %v", err)
	}
	if decoded.N() != a.N()+b.N() {
		t.Errorf("merged N = %d, want %d", decoded.N(), a.N()+b.N())
	}
}
