package counters

import (
	"streamfreq/internal/core"
)

// FrequentNaive is the textbook Misra–Gries implementation: when a new
// item arrives and all k counters are taken, *every* counter is
// decremented — a Θ(k) scan per eviction. It exists as the ablation
// baseline for the offset-trick implementation in Frequent
// (BenchmarkAblationMGOffset): the two are semantically identical — for
// any input stream they hold exactly the same (item, count) set — which
// TestFrequentOffsetEquivalence verifies, so the speedup is pure
// implementation.
type FrequentNaive struct {
	k      int
	counts map[core.Item]int64
	n      int64
	decs   int64
}

// NewFrequentNaive returns a textbook Misra–Gries summary with k
// counters.
func NewFrequentNaive(k int) *FrequentNaive {
	if k <= 0 {
		panic("counters: Frequent requires k > 0")
	}
	return &FrequentNaive{k: k, counts: make(map[core.Item]int64, k)}
}

// Name implements core.Summary.
func (f *FrequentNaive) Name() string { return "F-naive" }

// K returns the counter budget.
func (f *FrequentNaive) K() int { return f.k }

// N implements core.Summary.
func (f *FrequentNaive) N() int64 { return f.n }

// MaxError returns the total decrement mass (≤ n/(k+1)).
func (f *FrequentNaive) MaxError() int64 { return f.decs }

// Update processes count arrivals of x. count must be positive.
func (f *FrequentNaive) Update(x core.Item, count int64) {
	mustPositive("Frequent", count)
	f.n += count

	if _, ok := f.counts[x]; ok {
		f.counts[x] += count
		return
	}
	if len(f.counts) < f.k {
		f.counts[x] = count
		return
	}
	// Decrement-all by m = min(count, smallest counter); survivors keep
	// their excess, zeros are evicted, and the new item enters with any
	// remaining mass.
	min := int64(1<<63 - 1)
	for _, c := range f.counts {
		if c < min {
			min = c
		}
	}
	m := count
	if min < m {
		m = min
	}
	f.decs += m
	for it, c := range f.counts {
		if c-m <= 0 {
			delete(f.counts, it)
		} else {
			f.counts[it] = c - m
		}
	}
	if count > m {
		f.counts[x] = count - m
	}
}

// Estimate returns the stored (lower-bound) count, 0 when untracked.
func (f *FrequentNaive) Estimate(x core.Item) int64 { return f.counts[x] }

// Query mirrors Frequent.Query: tracked items whose count may reach
// threshold after compensation.
func (f *FrequentNaive) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for it, c := range f.counts {
		if c+f.decs >= threshold {
			out = append(out, core.ItemCount{Item: it, Count: c})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Entries returns all tracked pairs, descending.
func (f *FrequentNaive) Entries() []core.ItemCount {
	out := make([]core.ItemCount, 0, len(f.counts))
	for it, c := range f.counts {
		out = append(out, core.ItemCount{Item: it, Count: c})
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy.
func (f *FrequentNaive) Clone() *FrequentNaive {
	nf := &FrequentNaive{k: f.k, n: f.n, decs: f.decs, counts: make(map[core.Item]int64, len(f.counts))}
	for it, c := range f.counts {
		nf.counts[it] = c
	}
	return nf
}

// Snapshot implements core.Snapshotter.
func (f *FrequentNaive) Snapshot() core.Summary { return f.Clone() }

// Bytes implements core.Summary.
func (f *FrequentNaive) Bytes() int { return entryBytes * f.k }
