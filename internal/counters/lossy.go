package counters

import (
	"math"

	"streamfreq/internal/core"
)

// LossyCounting implements the Manku–Motwani lossy counting algorithm
// ("LC" in the paper). The stream is conceptually divided into buckets of
// width w = ⌈1/ε⌉. Each tracked entry stores its observed count and Δ,
// the bucket index when it was inserted minus one — an upper bound on how
// many occurrences were missed before tracking began. At every bucket
// boundary, entries whose count + Δ no longer exceeds the current bucket
// index are pruned.
//
// Invariants, with N the stream length:
//
//	true(x) − εN ≤ Estimate(x) ≤ true(x)
//	every item with true(x) ≥ εN is tracked
//
// Space is O((1/ε)·log(εN)) in the worst case — unlike Frequent and
// Space-Saving, the live entry set can exceed 1/ε, which is exactly the
// space overshoot the paper's space plots show for LC at low skew.
//
// The Variant field distinguishes the paper's two flavors:
//
//   - VariantLC reports the observed count (an underestimate); its Query
//     compensates with +Δ so recall is preserved.
//   - VariantLCD reports count + Δ (an upper bound, like Space-Saving),
//     trading precision for one-sided error in the other direction.
type LossyCounting struct {
	epsilon float64
	width   int64 // bucket width w = ceil(1/epsilon)
	bucket  int64 // current bucket id b = ceil(N/w)
	index   map[core.Item]*lcEntry
	n       int64
	variant LCVariant
}

type lcEntry struct {
	count int64
	delta int64
}

// LCVariant selects the reporting flavor.
type LCVariant int

const (
	// VariantLC reports observed counts (underestimates).
	VariantLC LCVariant = iota
	// VariantLCD reports count+Δ upper bounds.
	VariantLCD
)

// NewLossyCounting returns an LC summary with error parameter epsilon in
// (0, 1).
func NewLossyCounting(epsilon float64, variant LCVariant) *LossyCounting {
	if epsilon <= 0 || epsilon >= 1 {
		panic("counters: LossyCounting requires 0 < epsilon < 1")
	}
	return &LossyCounting{
		epsilon: epsilon,
		width:   int64(math.Ceil(1 / epsilon)),
		bucket:  1,
		index:   make(map[core.Item]*lcEntry),
		variant: variant,
	}
}

// Name implements core.Summary.
func (l *LossyCounting) Name() string {
	if l.variant == VariantLCD {
		return "LCD"
	}
	return "LC"
}

// Epsilon returns the configured error parameter.
func (l *LossyCounting) Epsilon() float64 { return l.epsilon }

// N implements core.Summary.
func (l *LossyCounting) N() int64 { return l.n }

// Entries returns the number of live tracked entries (the space plots'
// quantity of interest for LC).
func (l *LossyCounting) EntryCount() int { return len(l.index) }

// Update processes count arrivals of x. count must be positive.
func (l *LossyCounting) Update(x core.Item, count int64) {
	mustPositive("LossyCounting", count)
	if e, ok := l.index[x]; ok {
		e.count += count
	} else {
		l.index[x] = &lcEntry{count: count, delta: l.bucket - 1}
	}
	// Advance the stream position one unit at a time across bucket
	// boundaries; weighted arrivals may span several buckets.
	l.n += count
	newBucket := (l.n + l.width - 1) / l.width // ceil(n/w)
	if newBucket > l.bucket {
		l.bucket = newBucket
		l.prune()
	}
}

// prune removes entries whose upper bound fell below the bucket index.
func (l *LossyCounting) prune() {
	for it, e := range l.index {
		if e.count+e.delta <= l.bucket-1 {
			delete(l.index, it)
		}
	}
}

// Estimate returns the variant-appropriate estimate (0 when untracked).
func (l *LossyCounting) Estimate(x core.Item) int64 {
	e, ok := l.index[x]
	if !ok {
		return 0
	}
	if l.variant == VariantLCD {
		return e.count + e.delta
	}
	return e.count
}

// Query returns items that may reach threshold: count + Δ ≥ threshold,
// reported with the variant's estimate, in descending order. For
// threshold = φN with φ > ε this has perfect recall.
func (l *LossyCounting) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for it, e := range l.index {
		if e.count+e.delta >= threshold {
			est := e.count
			if l.variant == VariantLCD {
				est = e.count + e.delta
			}
			out = append(out, core.ItemCount{Item: it, Count: est})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy (entries duplicated, parameters
// and bucket position shared by value).
func (l *LossyCounting) Clone() *LossyCounting {
	nl := &LossyCounting{
		epsilon: l.epsilon,
		width:   l.width,
		bucket:  l.bucket,
		n:       l.n,
		variant: l.variant,
		index:   make(map[core.Item]*lcEntry, len(l.index)),
	}
	for it, e := range l.index {
		nl.index[it] = &lcEntry{count: e.count, delta: e.delta}
	}
	return nl
}

// Snapshot implements core.Snapshotter.
func (l *LossyCounting) Snapshot() core.Summary { return l.Clone() }

// Bytes charges the live entries at the common accounting rate. LC's
// footprint floats with the data distribution; Bytes reports the current
// footprint, and the harness additionally records the high-water mark.
func (l *LossyCounting) Bytes() int { return entryBytes * len(l.index) }

// Merge combines another LossyCounting summary with identical epsilon and
// variant. Counts add; deltas add (each side's Δ bounds its own missed
// mass, and the bound for the concatenation is the sum); the bucket index
// is recomputed from the combined length and a prune pass restores the
// space bound. The merged summary obeys the LC error bound for the
// concatenated stream.
func (l *LossyCounting) Merge(other core.Summary) error {
	o, ok := other.(*LossyCounting)
	if !ok {
		return core.Incompatible("LossyCounting: cannot merge %T", other)
	}
	if o.epsilon != l.epsilon || o.variant != l.variant {
		return core.Incompatible("LossyCounting: parameter mismatch (ε=%g/%g, variant=%d/%d)",
			l.epsilon, o.epsilon, l.variant, o.variant)
	}
	for it, oe := range o.index {
		if e, ok := l.index[it]; ok {
			e.count += oe.count
			e.delta += oe.delta
		} else {
			l.index[it] = &lcEntry{count: oe.count, delta: oe.delta + l.bucket - 1}
		}
	}
	// Items tracked here but not in o may have been missed by o for up to
	// o's pruning bound; widen their deltas accordingly.
	for it, e := range l.index {
		if _, inO := o.index[it]; !inO && o.n > 0 {
			_ = it
			e.delta += o.bucket - 1
		}
	}
	l.n += o.n
	l.bucket = (l.n + l.width - 1) / l.width
	if l.bucket < 1 {
		l.bucket = 1
	}
	l.prune()
	return nil
}
