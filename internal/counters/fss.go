package counters

import (
	"streamfreq/internal/core"
	"streamfreq/internal/hash"
)

// FilteredSpaceSaving implements Filtered Space-Saving (Homem & Carvalho,
// 2010), the best-known refinement of Space-Saving and a natural
// "follow-up work" extension to the paper's roster. A hashed *bitmap
// counter* filter sits in front of the monitored set: items that are not
// currently monitored accumulate error in a per-cell counter instead of
// immediately claiming a monitored slot, and an item is promoted only
// when its cell's error bound would exceed the current minimum monitored
// count. The effect is fewer spurious replacements — higher precision at
// equal k, especially on low-skew streams — for one extra hash and a
// small filter array.
//
// Invariants (with αᵢ the filter cell error and min the smallest
// monitored count):
//
//	monitored x:  true(x) ≤ Estimate(x) ≤ true(x) + err(x)
//	unmonitored x: true(x) ≤ α_cell(x)
type FilteredSpaceSaving struct {
	k      int
	filter []int64 // per-cell error bound α
	cells  hash.Bucket
	index  map[core.Item]*entry
	heap   minHeap
	n      int64
}

// NewFilteredSpaceSaving returns an FSS summary with k monitored
// counters and a filter of filterCells cells (0 selects 8k, the ratio
// the original paper found effective).
func NewFilteredSpaceSaving(k, filterCells int, seed uint64) *FilteredSpaceSaving {
	if k <= 0 {
		panic("counters: FilteredSpaceSaving requires k > 0")
	}
	if filterCells <= 0 {
		filterCells = 8 * k
	}
	return &FilteredSpaceSaving{
		k:      k,
		filter: make([]int64, filterCells),
		cells:  hash.NewBucket(2, filterCells, seed),
		index:  make(map[core.Item]*entry, k),
	}
}

// Name implements core.Summary.
func (s *FilteredSpaceSaving) Name() string { return "FSS" }

// K returns the monitored-counter budget.
func (s *FilteredSpaceSaving) K() int { return s.k }

// N implements core.Summary.
func (s *FilteredSpaceSaving) N() int64 { return s.n }

// Min returns the smallest monitored count (0 while slots remain).
func (s *FilteredSpaceSaving) Min() int64 {
	if len(s.heap) < s.k {
		return 0
	}
	return s.heap[0].count
}

// Update processes count arrivals of x. count must be positive.
func (s *FilteredSpaceSaving) Update(x core.Item, count int64) {
	mustPositive("FilteredSpaceSaving", count)
	s.n += count

	if e, ok := s.index[x]; ok {
		e.count += count
		s.heap.fix(e.idx)
		return
	}
	cell := s.cells.Hash(uint64(x))
	if len(s.heap) < s.k {
		// Free slot: monitor immediately, inheriting the cell's error.
		e := &entry{item: x, count: s.filter[cell] + count, err: s.filter[cell]}
		s.index[x] = e
		s.heap.push(e)
		return
	}
	min := s.heap[0].count
	if s.filter[cell]+count <= min {
		// Filtered out: the item's upper bound cannot beat the minimum
		// monitored count; absorb the arrival into the cell error.
		s.filter[cell] += count
		return
	}
	// Promote: replace the minimum entry. The evicted item's count flows
	// back into ITS filter cell so the unmonitored bound stays valid.
	ev := s.heap[0]
	delete(s.index, ev.item)
	evCell := s.cells.Hash(uint64(ev.item))
	if ev.count > s.filter[evCell] {
		s.filter[evCell] = ev.count
	}
	ev.item = x
	ev.err = s.filter[cell]
	ev.count = s.filter[cell] + count
	s.index[x] = ev
	s.heap.fix(0)
}

// Estimate returns the monitored estimate, or the filter-cell bound for
// unmonitored items (both upper bounds on the true count).
func (s *FilteredSpaceSaving) Estimate(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.count
	}
	return s.filter[s.cells.Hash(uint64(x))]
}

// GuaranteedCount returns the certified lower bound on x's true count.
func (s *FilteredSpaceSaving) GuaranteedCount(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.count - e.err
	}
	return 0
}

// Query returns monitored items with estimate ≥ threshold, descending.
func (s *FilteredSpaceSaving) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for _, e := range s.heap {
		if e.count >= threshold {
			out = append(out, core.ItemCount{Item: e.item, Count: e.count})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Entries returns all monitored (item, estimate) pairs, descending.
func (s *FilteredSpaceSaving) Entries() []core.ItemCount { return s.Query(0) }

// Clone returns an independent deep copy: the filter array and monitored
// entries are duplicated; the filter's hash function is shared (immutable
// after construction).
func (s *FilteredSpaceSaving) Clone() *FilteredSpaceSaving {
	ns := &FilteredSpaceSaving{
		k:      s.k,
		filter: append([]int64(nil), s.filter...),
		cells:  s.cells,
		n:      s.n,
		index:  make(map[core.Item]*entry, len(s.index)),
		heap:   make(minHeap, len(s.heap)),
	}
	for i, e := range s.heap {
		ne := &entry{item: e.item, count: e.count, err: e.err, idx: e.idx}
		ns.heap[i] = ne
		ns.index[ne.item] = ne
	}
	return ns
}

// Snapshot implements core.Snapshotter.
func (s *FilteredSpaceSaving) Snapshot() core.Summary { return s.Clone() }

// Bytes counts the monitored entries plus the filter array.
func (s *FilteredSpaceSaving) Bytes() int {
	return entryBytes*s.k + 8*len(s.filter)
}
