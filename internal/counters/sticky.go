package counters

import (
	"math"

	"streamfreq/internal/core"
	"streamfreq/internal/prng"
)

// StickySampling implements the Manku–Motwani sticky sampling algorithm,
// the probabilistic counter-based baseline the paper's survey discusses
// alongside LC. Items are sampled into the summary with a rate that
// decays geometrically as the stream grows; once sampled, an item's
// subsequent occurrences are counted exactly ("sticky").
//
// With t = (1/ε)·ln(1/(s·δ)) memory scale, the summary holds O(t) entries
// in expectation regardless of stream length, and each tracked item's
// count underestimates truth by at most εN with probability 1−δ.
type StickySampling struct {
	epsilon float64
	delta   float64
	support float64 // s, the query support the failure bound refers to
	t       float64
	index   map[core.Item]int64
	rate    int64 // current sampling is with probability 1/rate
	limit   int64 // stream position at which the rate next doubles
	n       int64
	rng     *prng.Xoshiro256
}

// NewStickySampling returns a sticky sampling summary for support s,
// error epsilon and failure probability delta, seeded deterministically.
func NewStickySampling(support, epsilon, delta float64, seed uint64) *StickySampling {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 || support <= 0 || support >= 1 {
		panic("counters: StickySampling requires support, epsilon, delta in (0,1)")
	}
	t := 1 / epsilon * math.Log(1/(support*delta))
	return &StickySampling{
		epsilon: epsilon,
		delta:   delta,
		support: support,
		t:       t,
		index:   make(map[core.Item]int64),
		rate:    1,
		limit:   int64(2 * t),
		rng:     prng.New(seed),
	}
}

// Name implements core.Summary.
func (s *StickySampling) Name() string { return "SS-MM" }

// N implements core.Summary.
func (s *StickySampling) N() int64 { return s.n }

// EntryCount returns the number of live tracked entries.
func (s *StickySampling) EntryCount() int { return len(s.index) }

// Update processes count arrivals of x. count must be positive. Weighted
// arrivals are treated as count unit arrivals (the sampling decision is
// made once; a sampled item counts the full weight).
func (s *StickySampling) Update(x core.Item, count int64) {
	mustPositive("StickySampling", count)
	for s.n+count > s.limit {
		// Rate doubles; existing entries are down-sampled to look as if
		// they had been sampled at the new rate all along: repeatedly
		// toss an unbiased coin, decrementing until heads.
		s.rate *= 2
		s.limit += int64(2*s.t) * s.rate
		for it, c := range s.index {
			for c > 0 && s.rng.Uint64()&1 == 1 {
				c--
			}
			if c == 0 {
				delete(s.index, it)
			} else {
				s.index[it] = c
			}
		}
	}
	s.n += count
	if c, ok := s.index[x]; ok {
		s.index[x] = c + count
		return
	}
	// Sample with probability 1/rate.
	if s.rate == 1 || s.rng.Uint64n(uint64(s.rate)) == 0 {
		s.index[x] = count
	}
}

// Estimate returns the tracked count (an underestimate), 0 if untracked.
func (s *StickySampling) Estimate(x core.Item) int64 { return s.index[x] }

// Query returns tracked items whose count may reach threshold,
// compensating by the εN sampling deficit bound, in descending order.
func (s *StickySampling) Query(threshold int64) []core.ItemCount {
	slack := int64(s.epsilon * float64(s.n))
	var out []core.ItemCount
	for it, c := range s.index {
		if c+slack >= threshold {
			out = append(out, core.ItemCount{Item: it, Count: c})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy, including the sampling PRNG
// state: a clone and its parent fed the same suffix make identical
// sampling decisions, which is what makes snapshot fidelity testable for
// this randomized summary.
func (s *StickySampling) Clone() *StickySampling {
	rng := *s.rng
	ns := &StickySampling{
		epsilon: s.epsilon,
		delta:   s.delta,
		support: s.support,
		t:       s.t,
		rate:    s.rate,
		limit:   s.limit,
		n:       s.n,
		rng:     &rng,
		index:   make(map[core.Item]int64, len(s.index)),
	}
	for it, c := range s.index {
		ns.index[it] = c
	}
	return ns
}

// Snapshot implements core.Snapshotter.
func (s *StickySampling) Snapshot() core.Summary { return s.Clone() }

// Bytes implements core.Summary.
func (s *StickySampling) Bytes() int { return entryBytes * len(s.index) }
