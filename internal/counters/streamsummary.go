package counters

import (
	"sort"

	"streamfreq/internal/core"
)

// SpaceSavingList implements Space-Saving over the Stream-Summary data
// structure of Metwally et al. — the "SSL" variant of the paper.
//
// The Stream-Summary is a doubly-linked list of *buckets*, one per
// distinct count value, in increasing count order; each bucket holds a
// doubly-linked list of the entries sharing that count. A unit update
// moves an entry to the adjacent bucket, which is O(1) — no heap
// rebalancing — at the cost of two extra pointers per entry and per
// bucket. The algorithm and its guarantees are identical to
// SpaceSavingHeap; only the organizing structure differs, which is
// exactly the SSH/SSL comparison the paper measures.
type SpaceSavingList struct {
	k     int
	index map[core.Item]*ssEntry
	min   *ssBucket // bucket with the smallest count (head of list)
	size  int
	n     int64
}

type ssBucket struct {
	count      int64
	head       *ssEntry // entries in this bucket (unordered)
	prev, next *ssBucket
}

type ssEntry struct {
	item       core.Item
	err        int64
	bucket     *ssBucket
	prev, next *ssEntry // neighbors within the bucket
}

// NewSpaceSavingList returns an SSL summary with k counters.
func NewSpaceSavingList(k int) *SpaceSavingList {
	if k <= 0 {
		panic("counters: SpaceSaving requires k > 0")
	}
	return &SpaceSavingList{k: k, index: make(map[core.Item]*ssEntry, k)}
}

// Name implements core.Summary.
func (s *SpaceSavingList) Name() string { return "SSL" }

// K returns the counter budget.
func (s *SpaceSavingList) K() int { return s.k }

// N implements core.Summary.
func (s *SpaceSavingList) N() int64 { return s.n }

// Min returns the smallest tracked count (0 while slots remain).
func (s *SpaceSavingList) Min() int64 {
	if s.size < s.k || s.min == nil {
		return 0
	}
	return s.min.count
}

// detach unlinks e from its bucket, removing the bucket if it empties.
func (s *SpaceSavingList) detach(e *ssEntry) {
	b := e.bucket
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.prev, e.next, e.bucket = nil, nil, nil
	if b.head == nil {
		// Unlink the empty bucket.
		if b.prev != nil {
			b.prev.next = b.next
		} else {
			s.min = b.next
		}
		if b.next != nil {
			b.next.prev = b.prev
		}
	}
}

// attach inserts e into a bucket with the given count, searching forward
// from position "after" (which may be nil to start at the minimum).
func (s *SpaceSavingList) attach(e *ssEntry, count int64, after *ssBucket) {
	// Find the bucket with count ≥ count, walking forward.
	var prev *ssBucket
	cur := s.min
	if after != nil {
		prev, cur = after, after.next
	}
	for cur != nil && cur.count < count {
		prev, cur = cur, cur.next
	}
	var b *ssBucket
	if cur != nil && cur.count == count {
		b = cur
	} else {
		b = &ssBucket{count: count, prev: prev, next: cur}
		if prev != nil {
			prev.next = b
		} else {
			s.min = b
		}
		if cur != nil {
			cur.prev = b
		}
	}
	e.bucket = b
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	e.prev = nil
}

// Update processes count arrivals of x. count must be positive.
func (s *SpaceSavingList) Update(x core.Item, count int64) {
	mustPositive("SpaceSaving", count)
	s.n += count

	if e, ok := s.index[x]; ok {
		b := e.bucket
		newCount := b.count + count
		// Buckets at or before b are unaffected; search forward from b.
		s.detach(e)
		// detach may have removed b; recompute the search start.
		start := b.prev
		if b.head == nil && start == nil {
			start = nil // bucket list restarts at s.min
		} else if b.head != nil {
			start = b
		}
		s.attach(e, newCount, start)
		return
	}
	if s.size < s.k {
		e := &ssEntry{item: x}
		s.index[x] = e
		s.attach(e, count, nil)
		s.size++
		return
	}
	// Replace an entry in the minimum bucket.
	b := s.min
	e := b.head
	delete(s.index, e.item)
	e.err = b.count
	e.item = x
	newCount := b.count + count
	s.detach(e)
	var start *ssBucket
	if b.head != nil {
		start = b
	}
	s.attach(e, newCount, start)
	s.index[x] = e
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals,
// mirroring SpaceSavingHeap.UpdateBatch: pre-aggregate, then bulk-apply
// merged counts in first-appearance order. For the Stream-Summary
// structure the amortization shows up as one bucket relink per distinct
// item per batch — and a weighted relink skips the intermediate buckets
// a unit-at-a-time walk would have created and destroyed.
func (s *SpaceSavingList) UpdateBatch(items []core.Item) {
	for len(items) > maxAggChunk {
		s.applyBatch(items[:maxAggChunk])
		items = items[maxAggChunk:]
	}
	s.applyBatch(items)
}

func (s *SpaceSavingList) applyBatch(items []core.Item) {
	a := getAgg()
	distinct := a.aggregate(items)
	for i := 0; i < distinct; i++ {
		s.Update(a.pair(i))
	}
	a.release()
	putAgg(a)
}

// Estimate mirrors SpaceSavingHeap.Estimate.
func (s *SpaceSavingList) Estimate(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.bucket.count
	}
	return s.Min()
}

// GuaranteedCount returns the certified lower bound on x's true count.
func (s *SpaceSavingList) GuaranteedCount(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.bucket.count - e.err
	}
	return 0
}

// Query returns tracked items with estimate ≥ threshold, descending.
// The bucket list is already count-ordered, so the scan starts from the
// largest bucket and stops at the threshold.
func (s *SpaceSavingList) Query(threshold int64) []core.ItemCount {
	// Find the tail.
	var tail *ssBucket
	for b := s.min; b != nil; b = b.next {
		tail = b
	}
	var out []core.ItemCount
	for b := tail; b != nil && b.count >= threshold; b = b.prev {
		for e := b.head; e != nil; e = e.next {
			out = append(out, core.ItemCount{Item: e.item, Count: b.count})
		}
	}
	core.SortByCountDesc(out) // normalize within-bucket order
	return out
}

// Entries returns all tracked (item, estimate) pairs in descending order.
func (s *SpaceSavingList) Entries() []core.ItemCount {
	return s.Query(0)
}

// Clone returns an independent deep copy, rebuilding the Stream-Summary
// bucket list in order and preserving within-bucket entry order, so the
// clone is structurally identical (validate-clean) and answers every
// query exactly as the parent does at the moment of the clone.
func (s *SpaceSavingList) Clone() *SpaceSavingList {
	ns := &SpaceSavingList{
		k:     s.k,
		size:  s.size,
		n:     s.n,
		index: make(map[core.Item]*ssEntry, len(s.index)),
	}
	var prevB *ssBucket
	for b := s.min; b != nil; b = b.next {
		nb := &ssBucket{count: b.count, prev: prevB}
		if prevB != nil {
			prevB.next = nb
		} else {
			ns.min = nb
		}
		var prevE *ssEntry
		for e := b.head; e != nil; e = e.next {
			ne := &ssEntry{item: e.item, err: e.err, bucket: nb, prev: prevE}
			if prevE != nil {
				prevE.next = ne
			} else {
				nb.head = ne
			}
			ns.index[ne.item] = ne
			prevE = ne
		}
		prevB = nb
	}
	return ns
}

// Snapshot implements core.Snapshotter.
func (s *SpaceSavingList) Snapshot() core.Summary { return s.Clone() }

// Bytes accounts the entry payload plus the two extra pointers per entry
// and the bucket nodes (charged one per entry, the worst case). Batch
// pre-aggregation scratch is pooled across summaries (see batch.go) and
// not charged per instance.
func (s *SpaceSavingList) Bytes() int {
	const listEntry = 2 * (8 + 8 + 8 + 8 + 8 + 8) // item, err, bucket ptr, 2 links + bucket share
	return listEntry * s.k
}

// Merge combines another Stream-Summary Space-Saving into this one with
// the same mergeable-summaries construction as SpaceSavingHeap.Merge:
// counters for the same item sum (errors likewise), counters present on
// one side only are inflated by the other side's Min() bound, and the k
// largest survive. The bucket list is rebuilt in ascending count order,
// so each attach extends the tail in O(1) and the merged structure is
// validate-clean.
func (s *SpaceSavingList) Merge(other core.Summary) error {
	o, ok := other.(*SpaceSavingList)
	if !ok {
		return core.Incompatible("SpaceSaving: cannot merge %T", other)
	}
	if o.k != s.k {
		return core.Incompatible("SpaceSaving: counter budget mismatch (k=%d/%d)", s.k, o.k)
	}
	type pair struct{ count, err int64 }
	combined := make(map[core.Item]pair, len(s.index)+len(o.index))
	sMin, oMin := s.Min(), o.Min()
	for it, e := range s.index {
		p := pair{e.bucket.count, e.err}
		if oe, ok := o.index[it]; ok {
			p.count += oe.bucket.count
			p.err += oe.err
		} else {
			p.count += oMin
			p.err += oMin
		}
		combined[it] = p
	}
	for it, oe := range o.index {
		if _, done := combined[it]; done {
			continue
		}
		combined[it] = pair{oe.bucket.count + sMin, oe.err + sMin}
	}
	type merged struct {
		item       core.Item
		count, err int64
	}
	all := make([]merged, 0, len(combined))
	for it, p := range combined {
		all = append(all, merged{it, p.count, p.err})
	}
	// Keep the k largest, then rebuild smallest-first so the bucket walk
	// in attach never backtracks. Ties break by item for determinism,
	// matching core.SortByCountDesc.
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].item < all[j].item
	})
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.index = make(map[core.Item]*ssEntry, s.k)
	s.min = nil
	s.size = len(all)
	var last *ssBucket
	for i := len(all) - 1; i >= 0; i-- {
		m := all[i]
		e := &ssEntry{item: m.item, err: m.err}
		if last != nil && last.count == m.count {
			// Same count as the previous entry: link into its bucket
			// directly (attach would search past it).
			e.bucket = last
			e.next = last.head
			last.head.prev = e
			last.head = e
		} else {
			s.attach(e, m.count, last)
			last = e.bucket
		}
		s.index[m.item] = e
	}
	s.n += o.n
	return nil
}

// buckets returns the number of live buckets; used by tests.
func (s *SpaceSavingList) buckets() int {
	c := 0
	for b := s.min; b != nil; b = b.next {
		c++
	}
	return c
}

// validate checks structural invariants; used only by tests. It returns
// false if any linkage, ordering, or index inconsistency is found.
func (s *SpaceSavingList) validate() bool {
	seen := 0
	var prevCount int64 = -1
	for b := s.min; b != nil; b = b.next {
		if b.count <= prevCount {
			return false
		}
		prevCount = b.count
		if b.next != nil && b.next.prev != b {
			return false
		}
		if b.head == nil {
			return false // empty buckets must be unlinked
		}
		for e := b.head; e != nil; e = e.next {
			if e.bucket != b {
				return false
			}
			if e.next != nil && e.next.prev != e {
				return false
			}
			if s.index[e.item] != e {
				return false
			}
			seen++
		}
	}
	return seen == len(s.index) && seen == s.size
}
