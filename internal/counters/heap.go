// Package counters implements the counter-based frequent-items algorithms
// compared by the paper: Frequent (Misra–Gries), Lossy Counting (LC and
// the LCD variant), Space-Saving in both its min-heap (SSH) and
// Stream-Summary linked-list (SSL) forms, and the Sticky Sampling
// baseline.
//
// All of them maintain a set of at most k (item, counter) pairs and answer
// point and threshold queries from those pairs alone. They process
// insert-only streams; calling Update with a negative count panics.
package counters

import (
	"streamfreq/internal/core"
)

// entry is one tracked (item, count) pair. err records the maximum
// possible overestimation (Space-Saving) or the insertion-time deficit
// (Lossy Counting's Δ); Frequent leaves it zero.
type entry struct {
	item  core.Item
	count int64
	err   int64
	idx   int // position in the heap, maintained by heap operations
}

// minHeap is an indexed min-heap of entries ordered by count. The idx
// field of each entry always equals its position, so an entry's heap
// location can be fixed in O(log k) after its count changes.
type minHeap []*entry

func (h minHeap) less(i, j int) bool { return h[i].count < h[j].count }

func (h minHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

// push appends e and restores heap order.
func (h *minHeap) push(e *entry) {
	e.idx = len(*h)
	*h = append(*h, e)
	h.up(e.idx)
}

// pop removes and returns the minimum entry.
func (h *minHeap) pop() *entry {
	old := *h
	n := len(old)
	top := old[0]
	old.swap(0, n-1)
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	top.idx = -1
	return top
}

// fix restores heap order after the entry at position i changed count.
func (h minHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h minHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts i downward; reports whether it moved.
func (h minHeap) down(i int) bool {
	start := i
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			break
		}
		h.swap(i, small)
		i = small
	}
	return i != start
}

// validate checks the heap invariant; used only by tests.
func (h minHeap) validate() bool {
	for i := range h {
		if h[i].idx != i {
			return false
		}
		l, r := 2*i+1, 2*i+2
		if l < len(h) && h.less(l, i) {
			return false
		}
		if r < len(h) && h.less(r, i) {
			return false
		}
	}
	return true
}

// mustPositive panics on non-positive counts; the counter-based
// algorithms support only the insert-only (cash-register) stream model,
// and a non-positive count indicates a harness wiring bug.
func mustPositive(name string, count int64) {
	if count <= 0 {
		panic("counters: " + name + " requires positive update counts (insert-only stream model)")
	}
}

// entryBytes is the charged size of one (item, count, err, heap-index)
// counter slot, doubled for map/pointer overhead. Keeping the accounting
// rule in one place makes the cross-algorithm space plots consistent.
const entryBytes = 2 * (8 + 8 + 8 + 8)
