package counters

import (
	"sync"

	"streamfreq/internal/core"
)

// batchAgg is the shared pre-aggregation scratch of the counter
// algorithms' batch paths: a batch of unit arrivals is collapsed to one
// (item, count) pair per distinct item, recorded in first-appearance
// order so the aggregated application replays the batch's item order
// deterministically.
//
// Collapsing duplicates is where the batch win comes from: each distinct
// item costs one summary map lookup and one structure maintenance step
// (heap sift, bucket relink) per batch regardless of how many times it
// repeats, which on skewed streams — the regime the paper's throughput
// plots measure — removes the large majority of the per-arrival work.
// For that trade to pay, the scratch must be much cheaper per arrival
// than the summary's own index map, so it is a flat open-addressed
// table (linear probing, power-of-two capacity, SplitMix64 finalizer
// hash) tuned for probe locality: the hot slot array packs a 32-bit
// hash tag with a 32-bit count in one uint64 — 8 bytes per slot keeps
// the table L1-resident at batch sizes — and the full 64-bit keys live
// in a parallel array touched only on insert and on tag match (to
// confirm, or skip past, the ~2⁻³² per-pair tag collisions). Occupied
// slots are remembered in first-appearance order, so iteration and
// reset touch exactly the distinct items, with no probing and no
// tombstone hazards.
//
// The scratch is pooled across summaries (getAgg/putAgg): a batch
// borrows one table for the duration of applyBatch and returns it, so
// steady-state batch ingestion still allocates nothing, but a million
// idle tenants retain zero scratch — only as many tables exist as
// there are concurrently-applying batches. Like Update itself, using a
// summary concurrently is not safe; wrap with core.Concurrent or
// core.Sharded.
type batchAgg struct {
	// table[i] holds tag<<32 | count; count 0 marks an empty slot (live
	// counts are ≥ 1, and maxAggChunk keeps counts inside 32 bits).
	table []uint64
	keys  []core.Item
	slots []uint32 // occupied table indices in first-appearance order
	mask  uint64
	shift uint // 64 − log2(capacity): the index is the product's top bits
}

// maxAggChunk bounds one aggregation round. The packed slots hold a
// 32-bit count and the occupancy list holds 32-bit slot indices, so the
// UpdateBatch entry points split anything larger (an 8 GiB+ slice from
// a direct caller — UpdateBatches-driven ingest never gets near this)
// into chunks rather than silently wrapping a count into the tag bits.
const maxAggChunk = 1 << 30

// aggPool shares pre-aggregation tables across all counter summaries.
// A table's capacity grows to the largest batch it has served and is
// kept across uses; the pool bounds the population by the batch
// concurrency of the process rather than by its summary count.
var aggPool = sync.Pool{New: func() any { return new(batchAgg) }}

func getAgg() *batchAgg  { return aggPool.Get().(*batchAgg) }
func putAgg(a *batchAgg) { aggPool.Put(a) }

// grow (re)sizes the table to hold n distinct items below ~50% load.
func (a *batchAgg) grow(n int) {
	capacity := 16
	bits := uint(4)
	for capacity < 2*n {
		capacity *= 2
		bits++
	}
	a.table = make([]uint64, capacity)
	a.keys = make([]core.Item, capacity)
	a.mask = uint64(capacity - 1)
	a.shift = 64 - bits
}

// aggregate collapses items into the scratch and returns the number of
// distinct items. Callers iterate them with pair and must finish with
// release before the next aggregate call.
func (a *batchAgg) aggregate(items []core.Item) int {
	if 2*len(items) > len(a.table) {
		a.grow(len(items))
	}
	for _, x := range items {
		// One Fibonacci-multiply is enough mixing here: the index takes
		// the product's top bits (where a multiplicative hash is
		// strongest, even for sequential identifiers), and a weak tag
		// only costs an extra key compare on the rare false match.
		v := uint64(x) * 0x9E3779B97F4A7C15
		tag := v << 32 // low product bits become the slot tag
		i := v >> a.shift
		for {
			s := a.table[i]
			if s&0xffffffff == 0 {
				a.table[i] = tag | 1
				a.keys[i] = x
				a.slots = append(a.slots, uint32(i))
				break
			}
			if s&(0xffffffff<<32) == tag && a.keys[i] == x {
				a.table[i] = s + 1
				break
			}
			i = (i + 1) & a.mask
		}
	}
	return len(a.slots)
}

// pair returns the i-th distinct item (in first-appearance order) and
// its aggregated count.
func (a *batchAgg) pair(i int) (core.Item, int64) {
	s := a.slots[i]
	return a.keys[s], int64(a.table[s] & 0xffffffff)
}

// release clears the scratch for the next batch, keeping capacity.
func (a *batchAgg) release() {
	for _, s := range a.slots {
		a.table[s] = 0
	}
	a.slots = a.slots[:0]
}
