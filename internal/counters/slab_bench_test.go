package counters_test

// BenchmarkSlabSpaceSaving quantifies what the slab refactor bought:
// instance churn (create, fill, drop — the lifecycle of an evicted
// tenant) against a standalone flat instance and against the Go-map
// layout the package migrated away from, reconstructed here as a
// bench-only baseline. The update path is measured on the same stream
// for all three, so the numbers separate allocation cost from
// per-update cost.

import (
	"container/heap"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/zipf"
)

const benchK = 64

func benchStream(b *testing.B, n int) []core.Item {
	b.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, 42, true)
	if err != nil {
		b.Fatal(err)
	}
	return g.Stream(n)
}

// mapSS is the pre-slab layout: a Go map of heap-allocated entries
// plus a pointer heap — one allocation per tracked item, pointers for
// the GC to trace. Update semantics match SpaceSavingHeap exactly.
type mapSS struct {
	k       int
	n       int64
	index   map[core.Item]*mapEntry
	minHeap []*mapEntry
}

type mapEntry struct {
	item core.Item
	cnt  int64
	err  int64
	pos  int
}

func newMapSS(k int) *mapSS {
	return &mapSS{k: k, index: make(map[core.Item]*mapEntry, k)}
}

func (m *mapSS) Len() int           { return len(m.minHeap) }
func (m *mapSS) Less(i, j int) bool { return m.minHeap[i].cnt < m.minHeap[j].cnt }
func (m *mapSS) Push(x any)         { m.minHeap = append(m.minHeap, x.(*mapEntry)) }
func (m *mapSS) Pop() any           { panic("unused") }
func (m *mapSS) Swap(i, j int) {
	m.minHeap[i], m.minHeap[j] = m.minHeap[j], m.minHeap[i]
	m.minHeap[i].pos, m.minHeap[j].pos = i, j
}

func (m *mapSS) Update(x core.Item, c int64) {
	m.n += c
	if e, ok := m.index[x]; ok {
		e.cnt += c
		heap.Fix(m, e.pos)
		return
	}
	if len(m.minHeap) < m.k {
		e := &mapEntry{item: x, cnt: c, pos: len(m.minHeap)}
		m.index[x] = e
		heap.Push(m, e)
		heap.Fix(m, e.pos)
		return
	}
	e := m.minHeap[0]
	delete(m.index, e.item)
	e.err = e.cnt
	e.item, e.cnt = x, e.cnt+c
	m.index[x] = e
	heap.Fix(m, 0)
}

func BenchmarkSlabSpaceSaving(b *testing.B) {
	stream := benchStream(b, 4096)

	// churn: the evict/reload lifecycle — how expensive is one tenant
	// instance? The slab recycles one block; the others allocate.
	b.Run("churn/slab", func(b *testing.B) {
		sl := counters.NewSlab()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sl.NewSpaceSaving(benchK)
			for _, x := range stream[:256] {
				s.Update(x, 1)
			}
			s.Release()
		}
	})
	b.Run("churn/standalone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := counters.NewSpaceSavingHeap(benchK)
			for _, x := range stream[:256] {
				s.Update(x, 1)
			}
		}
	})
	b.Run("churn/map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := newMapSS(benchK)
			for _, x := range stream[:256] {
				s.Update(x, 1)
			}
		}
	})

	// update: steady-state per-item cost on a long-lived instance.
	b.Run("update/slab", func(b *testing.B) {
		sl := counters.NewSlab()
		s := sl.NewSpaceSaving(benchK)
		defer s.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Update(stream[i&4095], 1)
		}
	})
	b.Run("update/map", func(b *testing.B) {
		s := newMapSS(benchK)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Update(stream[i&4095], 1)
		}
	})
}
