package counters

import (
	"fmt"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/prng"
)

// batchTestStream is a deterministic skewed stream over a small universe
// so the k-counter summaries run at capacity with steady evictions.
func batchTestStream(n int) []core.Item {
	rng := prng.New(0xBA7C4)
	out := make([]core.Item, n)
	for i := range out {
		// Two-tier mix: half the arrivals from a 16-item head, half from
		// a 4096-item tail.
		if rng.Uint64()&1 == 0 {
			out[i] = core.Item(rng.Uint64n(16))
		} else {
			out[i] = core.Item(1000 + rng.Uint64n(4096))
		}
	}
	return out
}

// entriesEqual compares two descending (item, estimate) reports.
func entriesEqual(a, b []core.ItemCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// headThreshold separates the stream's 16-item head tier (counts near
// n/32) from the tail churn zone (counts near the floor n/k): above it,
// batched and scalar ingest must agree bit for bit — head items are
// admitted while slots are free (zero inherited error) and never sink
// to the minimum, so aggregation cannot touch them. Below it sit the
// tied floor counters, whose occupants are not stable under any
// reordering of arrivals (the root-package equivalence test pins the
// same boundary at the φn operating point).
const headThreshold = 600

// checkSpaceSavingBatch compares a batched ingest against its scalar
// twin (exact above headThreshold) and against ground truth (the
// Space-Saving invariants, which hold for every estimate).
func checkSpaceSavingBatch(t *testing.T, label string, scalar, batched core.Summary, stream []core.Item, k int) {
	t.Helper()
	if scalar.N() != batched.N() {
		t.Fatalf("%s: N %d vs %d", label, batched.N(), scalar.N())
	}
	if !entriesEqual(scalar.Query(headThreshold), batched.Query(headThreshold)) {
		t.Fatalf("%s: head reports diverge\nscalar:  %v\nbatched: %v",
			label, scalar.Query(headThreshold), batched.Query(headThreshold))
	}
	truth := make(map[core.Item]int64)
	for _, it := range stream {
		truth[it]++
	}
	floor := batched.N() / int64(k) // Min() ≤ n/k, the replacement-error bound
	for it, true_ := range truth {
		est := batched.Estimate(it)
		if est < true_ {
			t.Fatalf("%s: Estimate(%d) = %d underestimates true %d", label, it, est, true_)
		}
		if est > true_+floor {
			t.Fatalf("%s: Estimate(%d) = %d exceeds true %d + n/k %d", label, it, est, true_, floor)
		}
	}
}

// TestSpaceSavingHeapBatch checks the heap variant's batch path across
// batch lengths that do and do not divide the stream.
func TestSpaceSavingHeapBatch(t *testing.T) {
	stream := batchTestStream(30_000)
	const k = 64
	scalar := NewSpaceSavingHeap(k)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	for _, batch := range []int{1, 13, 256, 4096} {
		batched := NewSpaceSavingHeap(k)
		core.UpdateBatches(batched, stream, batch)
		checkSpaceSavingBatch(t, fmt.Sprintf("SSH/batch=%d", batch), scalar, batched, stream, k)
	}
}

// TestSpaceSavingListBatch is the Stream-Summary counterpart, and
// additionally checks the bucket list's structural invariants survive
// weighted bulk application.
func TestSpaceSavingListBatch(t *testing.T) {
	stream := batchTestStream(30_000)
	const k = 64
	scalar := NewSpaceSavingList(k)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	batched := NewSpaceSavingList(k)
	core.UpdateBatches(batched, stream, 512)
	if !batched.validate() {
		t.Fatal("batched ingest corrupted the Stream-Summary structure")
	}
	checkSpaceSavingBatch(t, "SSL", scalar, batched, stream, k)
}

// TestFrequentBatchWithinDeficit checks the Misra–Gries batch path keeps
// every estimate inside the deterministic deficit envelope of the scalar
// run (MG's decrement schedule is order-sensitive, so bit-equality is
// not the contract — see the package-level equivalence test in the root
// package), and that the n and error accounting stay exact.
func TestFrequentBatchWithinDeficit(t *testing.T) {
	stream := batchTestStream(30_000)
	scalar := NewFrequent(64)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	batched := NewFrequent(64)
	core.UpdateBatches(batched, stream, 512)
	if scalar.N() != batched.N() {
		t.Fatalf("N %d vs %d", batched.N(), scalar.N())
	}
	// Both runs bound their deficit by n/(k+1); so any two runs' point
	// estimates differ by at most the larger deficit.
	bound := scalar.MaxError()
	if b := batched.MaxError(); b > bound {
		bound = b
	}
	if maxBound := scalar.N() / int64(scalar.K()+1); bound > maxBound {
		t.Fatalf("deficit %d exceeds the n/(k+1) bound %d", bound, maxBound)
	}
	for probe := core.Item(0); probe < 16; probe++ { // the stream's head items
		d := batched.Estimate(probe) - scalar.Estimate(probe)
		if d < 0 {
			d = -d
		}
		if d > bound {
			t.Fatalf("Estimate(%d): batched %d vs scalar %d differ beyond deficit %d",
				probe, batched.Estimate(probe), scalar.Estimate(probe), bound)
		}
	}
}

// TestBatchAggScratchReuse pins the scratch lifecycle: aggregation state
// must not leak between batches or between summaries.
func TestBatchAggScratchReuse(t *testing.T) {
	s := NewSpaceSavingHeap(8)
	s.UpdateBatch([]core.Item{1, 1, 2})
	s.UpdateBatch([]core.Item{1, 3, 3, 3})
	if got := s.Estimate(1); got != 3 {
		t.Fatalf("Estimate(1) = %d, want 3 (stale batch scratch?)", got)
	}
	if got := s.Estimate(3); got != 3 {
		t.Fatalf("Estimate(3) = %d, want 3", got)
	}
	if got := s.N(); got != 7 {
		t.Fatalf("N = %d, want 7", got)
	}
	// Empty batches are no-ops.
	s.UpdateBatch(nil)
	if got := s.N(); got != 7 {
		t.Fatalf("N after empty batch = %d, want 7", got)
	}
}
