package counters

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestFrequentBasics(t *testing.T) {
	f := NewFrequent(4)
	if f.Name() != "F" || f.K() != 4 {
		t.Fatalf("metadata wrong: %s %d", f.Name(), f.K())
	}
	for i := 0; i < 10; i++ {
		f.Update(1, 1)
	}
	f.Update(2, 1)
	if got := f.Estimate(1); got < 9 {
		t.Errorf("Estimate(1) = %d, want ≥ 9", got)
	}
	if f.N() != 11 {
		t.Errorf("N = %d, want 11", f.N())
	}
}

func TestFrequentPanicsOnNonPositive(t *testing.T) {
	f := NewFrequent(2)
	for _, c := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for count %d", c)
				}
			}()
			f.Update(1, c)
		}()
	}
}

func TestNewFrequentPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewFrequent(0)
}

// mgGuarantee checks the Misra–Gries invariant against exact truth:
// true − n/(k+1) ≤ estimate ≤ true for every item in the universe.
func mgGuarantee(t *testing.T, f *Frequent, truth *exact.Counter, universe []core.Item) {
	t.Helper()
	slack := truth.N() / int64(f.K()+1)
	for _, it := range universe {
		est, tru := f.Estimate(it), truth.Estimate(it)
		if est > tru {
			t.Fatalf("item %d: estimate %d exceeds true %d", it, est, tru)
		}
		if est < tru-slack {
			t.Fatalf("item %d: estimate %d below true %d − slack %d", it, est, tru, slack)
		}
	}
	if f.MaxError() > slack {
		t.Fatalf("MaxError %d exceeds n/(k+1) = %d", f.MaxError(), slack)
	}
}

func TestFrequentGuaranteeZipf(t *testing.T) {
	g, err := zipf.NewGenerator(2000, 1.1, 77, true)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrequent(100)
	truth := exact.New()
	universe := make([]core.Item, 0, 2000)
	for r := 1; r <= 2000; r++ {
		universe = append(universe, g.ItemOfRank(r))
	}
	for i := 0; i < 100000; i++ {
		it := g.Next()
		f.Update(it, 1)
		truth.Update(it, 1)
	}
	mgGuarantee(t, f, truth, universe)
}

func TestFrequentGuaranteeAdversarial(t *testing.T) {
	const k = 20
	s := zipf.Adversarial(50000, k, 3)
	f := NewFrequent(k)
	truth := exact.New()
	seen := map[core.Item]bool{}
	var universe []core.Item
	for _, it := range s {
		f.Update(it, 1)
		truth.Update(it, 1)
		if !seen[it] {
			seen[it] = true
			universe = append(universe, it)
		}
	}
	mgGuarantee(t, f, truth, universe)
}

func TestFrequentWeightedUpdatesEquivalent(t *testing.T) {
	// Feeding x with weight w must equal feeding x w times.
	a, b := NewFrequent(5), NewFrequent(5)
	stream := []struct {
		it core.Item
		w  int64
	}{{1, 3}, {2, 7}, {3, 1}, {1, 2}, {4, 4}, {5, 5}, {6, 6}, {2, 1}}
	for _, u := range stream {
		a.Update(u.it, u.w)
		for i := int64(0); i < u.w; i++ {
			b.Update(u.it, 1)
		}
	}
	for it := core.Item(1); it <= 6; it++ {
		if ae, be := a.Estimate(it), b.Estimate(it); ae != be {
			t.Errorf("item %d: weighted %d vs unit %d", it, ae, be)
		}
	}
}

func TestFrequentQueryRecall(t *testing.T) {
	// Every item with true count > n/(k+1) must appear in Query(threshold)
	// for any threshold ≤ its true count.
	g, _ := zipf.NewGenerator(500, 1.3, 5, true)
	const n, k = 50000, 50
	f := NewFrequent(k)
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		f.Update(it, 1)
		truth.Update(it, 1)
	}
	phi := 0.02
	threshold := int64(phi * n)
	reported := map[core.Item]bool{}
	for _, ic := range f.Query(threshold) {
		reported[ic.Item] = true
	}
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("missed true heavy hitter %d (count %d)", tc.Item, tc.Count)
		}
	}
}

func TestFrequentNeverTracksMoreThanK(t *testing.T) {
	f := NewFrequent(7)
	g, _ := zipf.NewGenerator(10000, 0.5, 9, true)
	for i := 0; i < 20000; i++ {
		f.Update(g.Next(), 1)
		if len(f.heap) > 7 || len(f.index) > 7 {
			t.Fatalf("tracked %d entries with k=7", len(f.heap))
		}
		if !f.heap.validate() {
			t.Fatal("heap invariant broken")
		}
	}
}

func TestFrequentMergeGuarantee(t *testing.T) {
	// Merge(A, B) must satisfy the MG guarantee for the concatenation.
	gA, _ := zipf.NewGenerator(300, 1.2, 21, true)
	gB, _ := zipf.NewGenerator(300, 0.9, 22, true)
	const k, n = 40, 30000
	fa, fb := NewFrequent(k), NewFrequent(k)
	truth := exact.New()
	var universe []core.Item
	seen := map[core.Item]bool{}
	feed := func(f *Frequent, g *zipf.Generator) {
		for i := 0; i < n; i++ {
			it := g.Next()
			f.Update(it, 1)
			truth.Update(it, 1)
			if !seen[it] {
				seen[it] = true
				universe = append(universe, it)
			}
		}
	}
	feed(fa, gA)
	feed(fb, gB)
	if err := fa.Merge(fb); err != nil {
		t.Fatal(err)
	}
	if fa.N() != 2*n {
		t.Fatalf("merged N = %d, want %d", fa.N(), 2*n)
	}
	mgGuarantee(t, fa, truth, universe)
}

func TestFrequentMergeIncompatible(t *testing.T) {
	f := NewFrequent(3)
	if err := f.Merge(NewSpaceSavingHeap(3)); err == nil {
		t.Error("expected incompatibility error")
	}
}

func TestFrequentBytesConstant(t *testing.T) {
	f := NewFrequent(100)
	b0 := f.Bytes()
	g, _ := zipf.NewGenerator(1000, 1, 2, true)
	for i := 0; i < 10000; i++ {
		f.Update(g.Next(), 1)
	}
	if f.Bytes() != b0 {
		t.Errorf("Bytes changed from %d to %d; F must be fixed-space", b0, f.Bytes())
	}
}

func TestFrequentPropertyNeverOverestimates(t *testing.T) {
	f := func(items []uint8, k uint8) bool {
		kk := int(k%16) + 1
		fr := NewFrequent(kk)
		truth := exact.New()
		for _, b := range items {
			it := core.Item(b % 32)
			fr.Update(it, 1)
			truth.Update(it, 1)
		}
		slack := truth.N() / int64(kk+1)
		for v := core.Item(0); v < 32; v++ {
			est, tru := fr.Estimate(v), truth.Estimate(v)
			if est > tru || est < tru-slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
