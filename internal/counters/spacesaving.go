package counters

import (
	"streamfreq/internal/core"
)

// SpaceSavingHeap implements the Space-Saving algorithm of Metwally,
// Agrawal & El Abbadi with a min-heap over the counters — the "SSH"
// variant of the paper.
//
// Space-Saving keeps exactly k counters. A new item that does not fit
// *replaces* the minimum counter, inheriting its count (plus the new
// arrival) and recording the inherited count as the entry's maximum
// possible error. Invariants, with min = smallest tracked count:
//
//	true(x) ≤ Estimate(x) ≤ true(x) + min     for tracked x
//	true(x) ≤ min                             for untracked x
//
// so every item with true count > n/k is tracked, and with k = ⌈1/ε⌉
// counters Space-Saving solves the ε-approximate problem with perfect
// recall and counts overestimated by at most εn.
type SpaceSavingHeap struct {
	k     int
	index map[core.Item]*entry
	heap  minHeap
	n     int64
	agg   batchAgg
}

// NewSpaceSavingHeap returns an SSH summary with k counters.
func NewSpaceSavingHeap(k int) *SpaceSavingHeap {
	if k <= 0 {
		panic("counters: SpaceSaving requires k > 0")
	}
	return &SpaceSavingHeap{k: k, index: make(map[core.Item]*entry, k)}
}

// Name implements core.Summary.
func (s *SpaceSavingHeap) Name() string { return "SSH" }

// K returns the counter budget.
func (s *SpaceSavingHeap) K() int { return s.k }

// N implements core.Summary.
func (s *SpaceSavingHeap) N() int64 { return s.n }

// Min returns the smallest tracked count (0 while slots remain), which
// bounds the count of every untracked item.
func (s *SpaceSavingHeap) Min() int64 {
	if len(s.heap) < s.k {
		return 0
	}
	return s.heap[0].count
}

// Update processes count arrivals of x. count must be positive.
func (s *SpaceSavingHeap) Update(x core.Item, count int64) {
	mustPositive("SpaceSaving", count)
	s.n += count

	if e, ok := s.index[x]; ok {
		e.count += count
		s.heap.fix(e.idx)
		return
	}
	if len(s.heap) < s.k {
		e := &entry{item: x, count: count}
		s.index[x] = e
		s.heap.push(e)
		return
	}
	// Replace the minimum counter: x inherits its count as error.
	e := s.heap[0]
	delete(s.index, e.item)
	e.err = e.count
	e.count += count
	e.item = x
	s.index[x] = e
	s.heap.fix(0)
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals: the
// batch is pre-aggregated and the merged counts bulk-applied in
// first-appearance order, so each distinct item pays one map lookup and
// one heap sift per batch instead of one per arrival. The Space-Saving
// invariants (no underestimates; per-entry err bounds the inherited
// overcount; every item above n/k tracked) hold for the aggregated
// replay exactly as for the scalar one, since a weighted update is the
// unit rule applied with the arrivals adjacent.
func (s *SpaceSavingHeap) UpdateBatch(items []core.Item) {
	for len(items) > maxAggChunk {
		s.applyBatch(items[:maxAggChunk])
		items = items[maxAggChunk:]
	}
	s.applyBatch(items)
}

func (s *SpaceSavingHeap) applyBatch(items []core.Item) {
	distinct := s.agg.aggregate(items)
	for i := 0; i < distinct; i++ {
		s.Update(s.agg.pair(i))
	}
	s.agg.release()
}

// Estimate returns the (over-)estimate for tracked items and the global
// minimum counter for untracked items, the tightest upper bound
// Space-Saving can certify.
func (s *SpaceSavingHeap) Estimate(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.count
	}
	return s.Min()
}

// GuaranteedCount returns a certified lower bound on x's true count
// (count − err for tracked items, 0 otherwise).
func (s *SpaceSavingHeap) GuaranteedCount(x core.Item) int64 {
	if e, ok := s.index[x]; ok {
		return e.count - e.err
	}
	return 0
}

// Query returns the tracked items with estimate ≥ threshold in
// descending order. Because Space-Saving never underestimates, this has
// perfect recall at any threshold > n/k.
func (s *SpaceSavingHeap) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for _, e := range s.heap {
		if e.count >= threshold {
			out = append(out, core.ItemCount{Item: e.item, Count: e.count})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy: entries are duplicated at
// their heap positions and the index rebuilt over the copies; the batch
// pre-aggregation scratch starts fresh.
func (s *SpaceSavingHeap) Clone() *SpaceSavingHeap {
	ns := &SpaceSavingHeap{
		k:     s.k,
		n:     s.n,
		index: make(map[core.Item]*entry, len(s.index)),
		heap:  make(minHeap, len(s.heap)),
	}
	for i, e := range s.heap {
		ne := &entry{item: e.item, count: e.count, err: e.err, idx: e.idx}
		ns.heap[i] = ne
		ns.index[ne.item] = ne
	}
	return ns
}

// Snapshot implements core.Snapshotter.
func (s *SpaceSavingHeap) Snapshot() core.Summary { return s.Clone() }

// Entries returns all tracked (item, estimate) pairs in descending order.
func (s *SpaceSavingHeap) Entries() []core.ItemCount {
	out := make([]core.ItemCount, 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, core.ItemCount{Item: e.item, Count: e.count})
	}
	core.SortByCountDesc(out)
	return out
}

// Bytes implements core.Summary; after batched ingest it includes the
// retained pre-aggregation scratch.
func (s *SpaceSavingHeap) Bytes() int { return entryBytes*s.k + s.agg.bytes() }

// Merge combines another Space-Saving summary into this one following
// the mergeable-summaries construction: counters for the same item are
// summed (errors summed likewise); counters present on one side only are
// inflated by the other side's Min() bound (added to both count and err);
// then the k largest counters are kept. The result satisfies the
// Space-Saving invariants for the concatenated stream.
func (s *SpaceSavingHeap) Merge(other core.Summary) error {
	o, ok := other.(*SpaceSavingHeap)
	if !ok {
		return core.Incompatible("SpaceSaving: cannot merge %T", other)
	}
	if o.k != s.k {
		// Different k means different provisioning (φ): folding the
		// smaller-k side in would silently widen the error bound past
		// what either summary advertises.
		return core.Incompatible("SpaceSaving: counter budget mismatch (k=%d/%d)", s.k, o.k)
	}
	type pair struct{ count, err int64 }
	combined := make(map[core.Item]pair, len(s.index)+len(o.index))
	sMin, oMin := s.Min(), o.Min()
	for it, e := range s.index {
		p := pair{e.count, e.err}
		if oe, ok := o.index[it]; ok {
			p.count += oe.count
			p.err += oe.err
		} else {
			p.count += oMin
			p.err += oMin
		}
		combined[it] = p
	}
	for it, oe := range o.index {
		if _, done := combined[it]; done {
			continue
		}
		combined[it] = pair{oe.count + sMin, oe.err + sMin}
	}
	all := make([]*entry, 0, len(combined))
	for it, p := range combined {
		all = append(all, &entry{item: it, count: p.count, err: p.err})
	}
	// Keep the k largest counts.
	sortEntriesByCountDesc(all)
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.index = make(map[core.Item]*entry, s.k)
	s.heap = s.heap[:0]
	for _, e := range all {
		e.idx = -1
		s.index[e.item] = e
		s.heap.push(e)
	}
	s.n += o.n
	return nil
}
