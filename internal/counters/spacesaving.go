package counters

import (
	"sort"

	"streamfreq/internal/core"
)

// SpaceSavingHeap implements the Space-Saving algorithm of Metwally,
// Agrawal & El Abbadi with a min-heap over the counters — the "SSH"
// variant of the paper.
//
// Space-Saving keeps exactly k counters. A new item that does not fit
// *replaces* the minimum counter, inheriting its count (plus the new
// arrival) and recording the inherited count as the entry's maximum
// possible error. Invariants, with min = smallest tracked count:
//
//	true(x) ≤ Estimate(x) ≤ true(x) + min     for tracked x
//	true(x) ≤ min                             for untracked x
//
// so every item with true count > n/k is tracked, and with k = ⌈1/ε⌉
// counters Space-Saving solves the ε-approximate problem with perfect
// recall and counts overestimated by at most εn.
//
// Storage is the flat slab layout of slab.go — counters in one
// pointer-free node slice, an int32 id heap, and an open-addressed
// index — instead of a Go map over heap-allocated entries. The
// structural behavior (heap arrangement, and with it the SS01 wire
// encoding) is identical to the old layout; what changed is that an
// instance is three slice headers over flat memory, cheap enough to
// hold millions of (NewSlab-backed) tenants resident.
type SpaceSavingHeap struct {
	k    int
	n    int64
	st   ssStorage
	slab *Slab // non-nil when st came from a slab (see Release)
}

// NewSpaceSavingHeap returns an SSH summary with k counters, its
// storage allocated standalone. Use (*Slab).NewSpaceSaving to draw the
// storage from a shared arena instead.
func NewSpaceSavingHeap(k int) *SpaceSavingHeap {
	if k <= 0 {
		panic("counters: SpaceSaving requires k > 0")
	}
	return &SpaceSavingHeap{k: k, st: newSSStorage(k)}
}

// Release returns slab-drawn storage to its slab for reuse and leaves
// the summary empty and detached. A released summary must not be used
// again; snapshots taken earlier are unaffected (Clone copies out of
// the block). No-op for standalone instances.
func (s *SpaceSavingHeap) Release() {
	if s.slab != nil {
		s.slab.put(s.k, s.st)
		s.slab = nil
	}
	s.st = ssStorage{}
	s.n = 0
}

// Name implements core.Summary.
func (s *SpaceSavingHeap) Name() string { return "SSH" }

// K returns the counter budget.
func (s *SpaceSavingHeap) K() int { return s.k }

// N implements core.Summary.
func (s *SpaceSavingHeap) N() int64 { return s.n }

// Min returns the smallest tracked count (0 while slots remain), which
// bounds the count of every untracked item.
func (s *SpaceSavingHeap) Min() int64 {
	if len(s.st.heap) < s.k {
		return 0
	}
	return s.st.nodes[s.st.heap[0]].count
}

// Update processes count arrivals of x. count must be positive.
func (s *SpaceSavingHeap) Update(x core.Item, count int64) {
	mustPositive("SpaceSaving", count)
	s.n += count

	if id := s.st.lookup(x); id >= 0 {
		nd := &s.st.nodes[id]
		nd.count += count
		s.st.hcnt[nd.heapIdx] = nd.count
		s.st.heapFix(int(nd.heapIdx))
		return
	}
	if len(s.st.heap) < s.k {
		id := int32(len(s.st.nodes))
		s.st.nodes = append(s.st.nodes, ssNode{item: x, count: count})
		s.st.insert(x, id)
		s.st.heapPush(id)
		return
	}
	// Replace the minimum counter: x inherits its count as error.
	id := s.st.heap[0]
	nd := &s.st.nodes[id]
	s.st.remove(nd.item)
	nd.err = nd.count
	nd.count += count
	nd.item = x
	s.st.insert(x, id)
	s.st.hcnt[0] = nd.count
	s.st.heapFix(0)
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals: the
// batch is pre-aggregated and the merged counts bulk-applied in
// first-appearance order, so each distinct item pays one index lookup
// and one heap sift per batch instead of one per arrival. The
// Space-Saving invariants (no underestimates; per-entry err bounds the
// inherited overcount; every item above n/k tracked) hold for the
// aggregated replay exactly as for the scalar one, since a weighted
// update is the unit rule applied with the arrivals adjacent.
func (s *SpaceSavingHeap) UpdateBatch(items []core.Item) {
	for len(items) > maxAggChunk {
		s.applyBatch(items[:maxAggChunk])
		items = items[maxAggChunk:]
	}
	s.applyBatch(items)
}

func (s *SpaceSavingHeap) applyBatch(items []core.Item) {
	a := getAgg()
	distinct := a.aggregate(items)
	for i := 0; i < distinct; i++ {
		s.Update(a.pair(i))
	}
	a.release()
	putAgg(a)
}

// Estimate returns the (over-)estimate for tracked items and the global
// minimum counter for untracked items, the tightest upper bound
// Space-Saving can certify.
func (s *SpaceSavingHeap) Estimate(x core.Item) int64 {
	if id := s.st.lookup(x); id >= 0 {
		return s.st.nodes[id].count
	}
	return s.Min()
}

// GuaranteedCount returns a certified lower bound on x's true count
// (count − err for tracked items, 0 otherwise).
func (s *SpaceSavingHeap) GuaranteedCount(x core.Item) int64 {
	if id := s.st.lookup(x); id >= 0 {
		nd := &s.st.nodes[id]
		return nd.count - nd.err
	}
	return 0
}

// Query returns the tracked items with estimate ≥ threshold in
// descending order. Because Space-Saving never underestimates, this has
// perfect recall at any threshold > n/k.
func (s *SpaceSavingHeap) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for _, id := range s.st.heap {
		nd := &s.st.nodes[id]
		if nd.count >= threshold {
			out = append(out, core.ItemCount{Item: nd.item, Count: nd.count})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy: the flat storage is copied
// wholesale (same heap arrangement, same index layout) into standalone
// slices, so a clone of a slab-backed tenant survives the tenant's
// eviction.
func (s *SpaceSavingHeap) Clone() *SpaceSavingHeap {
	return &SpaceSavingHeap{k: s.k, n: s.n, st: s.st.clone(s.k)}
}

// Snapshot implements core.Snapshotter.
func (s *SpaceSavingHeap) Snapshot() core.Summary { return s.Clone() }

// Entries returns all tracked (item, estimate) pairs in descending order.
func (s *SpaceSavingHeap) Entries() []core.ItemCount {
	out := make([]core.ItemCount, 0, len(s.st.heap))
	for _, id := range s.st.heap {
		out = append(out, core.ItemCount{Item: s.st.nodes[id].item, Count: s.st.nodes[id].count})
	}
	core.SortByCountDesc(out)
	return out
}

// Bytes implements core.Summary: the exact flat-storage footprint
// (nodes + id heap + index). Batch pre-aggregation scratch is pooled
// across summaries (see batch.go) and no longer charged per instance.
func (s *SpaceSavingHeap) Bytes() int { return ssBlockBytes(s.k) }

// Merge combines another Space-Saving summary into this one following
// the mergeable-summaries construction: counters for the same item are
// summed (errors summed likewise); counters present on one side only are
// inflated by the other side's Min() bound (added to both count and err);
// then the k largest counters are kept. The result satisfies the
// Space-Saving invariants for the concatenated stream.
func (s *SpaceSavingHeap) Merge(other core.Summary) error {
	o, ok := other.(*SpaceSavingHeap)
	if !ok {
		return core.Incompatible("SpaceSaving: cannot merge %T", other)
	}
	if o.k != s.k {
		// Different k means different provisioning (φ): folding the
		// smaller-k side in would silently widen the error bound past
		// what either summary advertises.
		return core.Incompatible("SpaceSaving: counter budget mismatch (k=%d/%d)", s.k, o.k)
	}
	sMin, oMin := s.Min(), o.Min()
	all := make([]ssNode, 0, len(s.st.nodes)+len(o.st.nodes))
	for i := range s.st.nodes {
		nd := s.st.nodes[i]
		if oid := o.st.lookup(nd.item); oid >= 0 {
			nd.count += o.st.nodes[oid].count
			nd.err += o.st.nodes[oid].err
		} else {
			nd.count += oMin
			nd.err += oMin
		}
		all = append(all, nd)
	}
	for i := range o.st.nodes {
		nd := o.st.nodes[i]
		if s.st.lookup(nd.item) >= 0 {
			continue
		}
		nd.count += sMin
		nd.err += sMin
		all = append(all, nd)
	}
	// Keep the k largest counts (ties broken by ascending item,
	// matching core.SortByCountDesc's deterministic order).
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].item < all[j].item
	})
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.st.reset()
	for i := range all {
		id := int32(len(s.st.nodes))
		s.st.nodes = append(s.st.nodes, ssNode{item: all[i].item, count: all[i].count, err: all[i].err})
		s.st.insert(all[i].item, id)
		s.st.heapPush(id)
	}
	s.n += o.n
	return nil
}

// validate checks the structural invariants; used only by tests.
func (s *SpaceSavingHeap) validate() bool { return s.st.validateStorage() }
