package counters

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestStickySamplingValidation(t *testing.T) {
	bad := [][3]float64{
		{0, 0.1, 0.1}, {1, 0.1, 0.1}, {0.1, 0, 0.1}, {0.1, 1, 0.1},
		{0.1, 0.1, 0}, {0.1, 0.1, 1},
	}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for params %v", b)
				}
			}()
			NewStickySampling(b[0], b[1], b[2], 1)
		}()
	}
}

func TestStickyNeverOverestimates(t *testing.T) {
	g, _ := zipf.NewGenerator(1000, 1.1, 44, true)
	s := NewStickySampling(0.01, 0.002, 0.01, 9)
	truth := exact.New()
	for i := 0; i < 100000; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 1000; r++ {
		it := g.ItemOfRank(r)
		if s.Estimate(it) > truth.Estimate(it) {
			t.Errorf("item %d: sticky estimate %d exceeds true %d", it, s.Estimate(it), truth.Estimate(it))
		}
	}
}

func TestStickyTracksHeavyItems(t *testing.T) {
	// With the fixed seed this is deterministic; the theory says each
	// heavy item is missed with probability ≤ δ.
	g, _ := zipf.NewGenerator(1000, 1.2, 10, true)
	s := NewStickySampling(0.01, 0.002, 0.001, 3)
	truth := exact.New()
	const n = 100000
	for i := 0; i < n; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.01 * n)
	reported := map[core.Item]bool{}
	for _, ic := range s.Query(threshold) {
		reported[ic.Item] = true
	}
	missed := 0
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("missed %d heavy items (δ=0.001 should make this vanishingly rare)", missed)
	}
}

func TestStickySpaceStaysBounded(t *testing.T) {
	g, _ := zipf.NewGenerator(100000, 0.8, 21, true)
	s := NewStickySampling(0.01, 0.005, 0.01, 5)
	for i := 0; i < 300000; i++ {
		s.Update(g.Next(), 1)
	}
	// Expected entries ≈ 2t = (2/ε)·ln(1/(sδ)); allow generous headroom.
	limit := int(6 / 0.005 * 10)
	if s.EntryCount() > limit {
		t.Errorf("%d entries exceeds bound %d", s.EntryCount(), limit)
	}
}

func TestStickyPanicsOnNonPositive(t *testing.T) {
	s := NewStickySampling(0.1, 0.1, 0.1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update(1, 0)
}
