package counters

import (
	"streamfreq/internal/core"
)

// Frequent implements the Misra–Gries algorithm ("F" in the paper), the
// generalization of the Boyer–Moore majority algorithm to k counters.
//
// Invariant: for every item x, true(x) − n/(k+1) ≤ Estimate(x) ≤ true(x).
// Consequently every item with true count > n/(k+1) is present, which with
// k = ⌈1/ε⌉ counters solves the ε-approximate frequent-items problem with
// perfect recall when queries compensate for the deficit (see Query).
//
// The textbook algorithm decrements *all* counters when a new item
// arrives and no slot is free, which is Θ(k) per eviction. This
// implementation uses the standard offset trick to make updates
// O(log k): a global offset δ is added to all logical counts, so
// "decrement everything by m" is just δ += m followed by evicting entries
// whose stored count has fallen to δ, which sit at the top of a min-heap.
type Frequent struct {
	k      int
	index  map[core.Item]*entry
	heap   minHeap
	offset int64 // logical count of entry e is e.count − offset
	n      int64
	decs   int64 // total decrement mass, for diagnostics and tests
}

// NewFrequent returns a Misra–Gries summary with k counters. k must be
// positive.
func NewFrequent(k int) *Frequent {
	if k <= 0 {
		panic("counters: Frequent requires k > 0")
	}
	return &Frequent{
		k:     k,
		index: make(map[core.Item]*entry, k),
	}
}

// Name implements core.Summary.
func (f *Frequent) Name() string { return "F" }

// K returns the counter budget.
func (f *Frequent) K() int { return f.k }

// N implements core.Summary.
func (f *Frequent) N() int64 { return f.n }

// Update processes count arrivals of x. count must be positive.
func (f *Frequent) Update(x core.Item, count int64) {
	mustPositive("Frequent", count)
	f.n += count

	if e, ok := f.index[x]; ok {
		e.count += count
		f.heap.fix(e.idx)
		return
	}
	if len(f.heap) < f.k {
		e := &entry{item: x, count: f.offset + count}
		f.index[x] = e
		f.heap.push(e)
		return
	}
	// All k slots taken: decrement all logical counts by
	// m = min(count, smallest logical count). If the new item's mass
	// survives (count > m), it replaces an evicted zero entry.
	minLogical := f.heap[0].count - f.offset
	m := count
	if minLogical < m {
		m = minLogical
	}
	f.offset += m
	f.decs += m
	// Evict entries whose logical count reached zero.
	freed := false
	for len(f.heap) > 0 && f.heap[0].count <= f.offset {
		ev := f.heap.pop()
		delete(f.index, ev.item)
		freed = true
	}
	if count > m {
		if !freed {
			// Cannot happen: count > m implies m == minLogical, so the
			// minimum entry hit zero and was evicted.
			panic("counters: Frequent invariant violated (no slot freed)")
		}
		e := &entry{item: x, count: f.offset + (count - m)}
		f.index[x] = e
		f.heap.push(e)
	}
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals: the
// batch is pre-aggregated in a scratch table and the merged counts
// applied in first-appearance order, trading per-arrival map lookups
// and heap sifts for one of each per distinct item in the batch. A
// weighted Update(x, c) is equivalent to c consecutive unit updates
// (the min(count, minLogical) decrement rule is the unit rule
// iterated), but aggregation also moves an item's later arrivals to
// its first appearance, which can shift the decrement schedule — so
// individual estimates may differ from the scalar replay by a few
// units, always within the n/(k+1) deficit bound both replays
// guarantee (see querySlack in the root package's batch_test.go).
func (f *Frequent) UpdateBatch(items []core.Item) {
	for len(items) > maxAggChunk {
		f.applyBatch(items[:maxAggChunk])
		items = items[maxAggChunk:]
	}
	f.applyBatch(items)
}

func (f *Frequent) applyBatch(items []core.Item) {
	a := getAgg()
	distinct := a.aggregate(items)
	for i := 0; i < distinct; i++ {
		f.Update(a.pair(i))
	}
	a.release()
	putAgg(a)
}

// Estimate returns the Misra–Gries lower-bound estimate of x's count
// (0 when x is not tracked). It never overestimates.
func (f *Frequent) Estimate(x core.Item) int64 {
	if e, ok := f.index[x]; ok {
		return e.count - f.offset
	}
	return 0
}

// MaxError returns the maximum amount by which any estimate can fall
// short of the true count: the total decrement mass, itself bounded by
// n/(k+1).
func (f *Frequent) MaxError() int64 { return f.decs }

// Query returns the tracked items whose count *may* reach threshold,
// i.e. Estimate(x) + MaxError() ≥ threshold, in descending estimate
// order. This is the compensation rule that gives Misra–Gries perfect
// recall at threshold φn when k ≥ 1/φ.
func (f *Frequent) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for _, e := range f.heap {
		est := e.count - f.offset
		if est+f.decs >= threshold {
			out = append(out, core.ItemCount{Item: e.item, Count: est})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy: entries are duplicated at
// their heap positions and the index rebuilt over the copies. The batch
// pre-aggregation scratch is not copied (a clone starts with fresh
// scratch; it is invisible to queries).
func (f *Frequent) Clone() *Frequent {
	nf := &Frequent{
		k:      f.k,
		offset: f.offset,
		n:      f.n,
		decs:   f.decs,
		index:  make(map[core.Item]*entry, len(f.index)),
		heap:   make(minHeap, len(f.heap)),
	}
	for i, e := range f.heap {
		ne := &entry{item: e.item, count: e.count, err: e.err, idx: e.idx}
		nf.heap[i] = ne
		nf.index[ne.item] = ne
	}
	return nf
}

// Snapshot implements core.Snapshotter.
func (f *Frequent) Snapshot() core.Summary { return f.Clone() }

// Entries returns all tracked (item, estimate) pairs in descending order.
func (f *Frequent) Entries() []core.ItemCount {
	out := make([]core.ItemCount, 0, len(f.heap))
	for _, e := range f.heap {
		out = append(out, core.ItemCount{Item: e.item, Count: e.count - f.offset})
	}
	core.SortByCountDesc(out)
	return out
}

// Bytes implements core.Summary. Batch pre-aggregation scratch is
// pooled across summaries (see batch.go) and not charged per instance.
func (f *Frequent) Bytes() int { return entryBytes * f.k }

// Merge combines another Frequent summary into this one using the
// Agarwal et al. mergeable-summaries rule: sum matching counters, then
// reduce back to k counters by subtracting the (k+1)-largest combined
// count from everything and dropping non-positive entries. The merged
// summary obeys the Misra–Gries guarantee for the concatenated stream.
func (f *Frequent) Merge(other core.Summary) error {
	o, ok := other.(*Frequent)
	if !ok {
		return core.Incompatible("Frequent: cannot merge %T", other)
	}
	if o.k != f.k {
		// Same reasoning as Space-Saving: a k mismatch is a provisioning
		// (φ) mismatch, and merging would exceed both advertised bounds.
		return core.Incompatible("Frequent: counter budget mismatch (k=%d/%d)", f.k, o.k)
	}
	combined := make(map[core.Item]int64, len(f.index)+len(o.index))
	for it, e := range f.index {
		combined[it] = e.count - f.offset
	}
	for it, e := range o.index {
		combined[it] += e.count - o.offset
	}
	all := make([]core.ItemCount, 0, len(combined))
	for it, c := range combined {
		all = append(all, core.ItemCount{Item: it, Count: c})
	}
	core.SortByCountDesc(all)

	var sub int64
	if len(all) > f.k {
		sub = all[f.k].Count
	}
	// Rebuild.
	f.index = make(map[core.Item]*entry, f.k)
	f.heap = f.heap[:0]
	f.offset = 0
	for i, ic := range all {
		if i >= f.k {
			break
		}
		c := ic.Count - sub
		if c <= 0 {
			break
		}
		e := &entry{item: ic.Item, count: c}
		f.index[ic.Item] = e
		f.heap.push(e)
	}
	f.n += o.n
	f.decs += o.decs + sub
	return nil
}
