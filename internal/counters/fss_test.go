package counters

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestFSSNeverUnderestimatesMonitored(t *testing.T) {
	g, _ := zipf.NewGenerator(3000, 1.1, 91, true)
	s := NewFilteredSpaceSaving(64, 0, 5)
	truth := exact.New()
	for i := 0; i < 80000; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 3000; r++ {
		it := g.ItemOfRank(r)
		est, tru := s.Estimate(it), truth.Estimate(it)
		if est < tru {
			t.Fatalf("rank %d: FSS estimate %d underestimates true %d", r, est, tru)
		}
		if g := s.GuaranteedCount(it); g > tru {
			t.Fatalf("rank %d: guaranteed %d exceeds true %d", r, g, tru)
		}
	}
}

func TestFSSTracksHead(t *testing.T) {
	g, _ := zipf.NewGenerator(2000, 1.3, 77, true)
	s := NewFilteredSpaceSaving(50, 0, 9)
	truth := exact.New()
	const n = 60000
	for i := 0; i < n; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.01 * n)
	reported := map[core.Item]bool{}
	for _, ic := range s.Query(threshold) {
		reported[ic.Item] = true
	}
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("FSS missed heavy item %d (count %d)", tc.Item, tc.Count)
		}
	}
}

func TestFSSMorePreciseThanSSAtEqualK(t *testing.T) {
	// The algorithm's selling point: on low-skew streams the filter
	// prevents mice from churning the monitored set, so the monitored
	// set's minimum count (the noise floor) stays lower.
	const k, n = 100, 100000
	g1, _ := zipf.NewGenerator(50000, 0.7, 13, true)
	g2, _ := zipf.NewGenerator(50000, 0.7, 13, true)
	ss := NewSpaceSavingHeap(k)
	fss := NewFilteredSpaceSaving(k, 0, 3)
	for i := 0; i < n; i++ {
		ss.Update(g1.Next(), 1)
		fss.Update(g2.Next(), 1)
	}
	if fss.Min() > ss.Min() {
		t.Errorf("FSS min %d above SS min %d; the filter provided no benefit", fss.Min(), ss.Min())
	}
}

func TestFSSPanicsOnNonPositive(t *testing.T) {
	s := NewFilteredSpaceSaving(4, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update(1, 0)
}

func TestFSSExactUnderCapacity(t *testing.T) {
	s := NewFilteredSpaceSaving(100, 0, 2)
	g, _ := zipf.NewGenerator(50, 1.0, 4, true)
	truth := exact.New()
	for i := 0; i < 10000; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 50; r++ {
		it := g.ItemOfRank(r)
		if s.Estimate(it) != truth.Estimate(it) {
			t.Errorf("rank %d inexact under capacity: %d vs %d", r, s.Estimate(it), truth.Estimate(it))
		}
	}
}

func TestFSSFilterBoundsUnmonitored(t *testing.T) {
	s := NewFilteredSpaceSaving(4, 64, 7)
	truth := exact.New()
	g, _ := zipf.NewGenerator(500, 0.9, 21, true)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		s.Update(it, 1)
		truth.Update(it, 1)
	}
	// For every unmonitored item, the filter estimate must upper-bound
	// the true count (cells aggregate colliding items' mass).
	monitored := map[core.Item]bool{}
	for _, e := range s.Entries() {
		monitored[e.Item] = true
	}
	for r := 1; r <= 500; r++ {
		it := g.ItemOfRank(r)
		if monitored[it] {
			continue
		}
		if est, tru := s.Estimate(it), truth.Estimate(it); est < tru {
			t.Fatalf("unmonitored rank %d: filter bound %d below true %d", r, est, tru)
		}
	}
}

func TestFSSBytesIncludesFilter(t *testing.T) {
	a := NewFilteredSpaceSaving(10, 64, 1)
	b := NewFilteredSpaceSaving(10, 1024, 1)
	if b.Bytes() <= a.Bytes() {
		t.Error("larger filter should cost more bytes")
	}
}
