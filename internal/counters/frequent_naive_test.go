package counters

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/core"
	"streamfreq/internal/zipf"
)

// TestFrequentOffsetEquivalence is the ablation correctness proof: the
// offset-trick Frequent and the textbook decrement-all FrequentNaive
// must produce byte-identical summaries on any stream.
func TestFrequentOffsetEquivalence(t *testing.T) {
	f := func(items []uint16, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		fast := NewFrequent(k)
		slow := NewFrequentNaive(k)
		for _, raw := range items {
			it := core.Item(raw % 64)
			w := int64(raw%3) + 1
			fast.Update(it, w)
			slow.Update(it, w)
		}
		if fast.MaxError() != slow.MaxError() {
			return false
		}
		fe, se := fast.Entries(), slow.Entries()
		if len(fe) != len(se) {
			return false
		}
		for i := range fe {
			if fe[i] != se[i] {
				return false
			}
		}
		for v := core.Item(0); v < 64; v++ {
			if fast.Estimate(v) != slow.Estimate(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFrequentOffsetEquivalenceZipf(t *testing.T) {
	// Same check on a realistic stream at realistic k.
	g, err := zipf.NewGenerator(5000, 1.0, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	const k = 100
	fast := NewFrequent(k)
	slow := NewFrequentNaive(k)
	for i := 0; i < 50000; i++ {
		it := g.Next()
		fast.Update(it, 1)
		slow.Update(it, 1)
	}
	fe, se := fast.Entries(), slow.Entries()
	if len(fe) != len(se) {
		t.Fatalf("entry counts differ: %d vs %d", len(fe), len(se))
	}
	for i := range fe {
		if fe[i] != se[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, fe[i], se[i])
		}
	}
	if fast.MaxError() != slow.MaxError() {
		t.Errorf("decrement mass differs: %d vs %d", fast.MaxError(), slow.MaxError())
	}
}

func TestFrequentNaiveGuarantee(t *testing.T) {
	g, _ := zipf.NewGenerator(1000, 1.1, 7, true)
	f := NewFrequentNaive(50)
	total := int64(0)
	truth := map[core.Item]int64{}
	for i := 0; i < 30000; i++ {
		it := g.Next()
		f.Update(it, 1)
		truth[it]++
		total++
	}
	slack := total / int64(f.K()+1)
	for it, tru := range truth {
		est := f.Estimate(it)
		if est > tru || est < tru-slack {
			t.Fatalf("item %d: estimate %d outside [true−slack, true] = [%d, %d]", it, est, tru-slack, tru)
		}
	}
}
