package metrics

import (
	"math"
	"sync"
	"testing"

	"streamfreq/internal/core"
)

func ic(item core.Item, count int64) core.ItemCount {
	return core.ItemCount{Item: item, Count: count}
}

func TestEvaluatePerfect(t *testing.T) {
	truth := map[core.Item]int64{1: 100, 2: 50}
	reported := []core.ItemCount{ic(1, 100), ic(2, 50)}
	a := Evaluate(reported, truth)
	if a.Precision != 1 || a.Recall != 1 || a.ARE != 0 || a.F1 != 1 {
		t.Errorf("perfect report scored %+v", a)
	}
}

func TestEvaluateFalsePositives(t *testing.T) {
	truth := map[core.Item]int64{1: 100}
	reported := []core.ItemCount{ic(1, 100), ic(2, 40), ic(3, 30)}
	a := Evaluate(reported, truth)
	if math.Abs(a.Precision-1.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 1/3", a.Precision)
	}
	if a.Recall != 1 {
		t.Errorf("recall = %v, want 1", a.Recall)
	}
}

func TestEvaluateMisses(t *testing.T) {
	truth := map[core.Item]int64{1: 100, 2: 80}
	reported := []core.ItemCount{ic(1, 90)}
	a := Evaluate(reported, truth)
	if a.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", a.Recall)
	}
	// ARE: item1 |90-100|/100 = 0.1; item2 missed -> |0-80|/80 = 1.
	if math.Abs(a.ARE-0.55) > 1e-12 {
		t.Errorf("ARE = %v, want 0.55", a.ARE)
	}
	if math.Abs(a.MaxRE-1.0) > 1e-12 {
		t.Errorf("MaxRE = %v, want 1", a.MaxRE)
	}
}

func TestEvaluateEmptyReport(t *testing.T) {
	a := Evaluate(nil, map[core.Item]int64{1: 10})
	if a.Precision != 1 {
		t.Errorf("empty report precision = %v, want 1 (vacuous)", a.Precision)
	}
	if a.Recall != 0 {
		t.Errorf("recall = %v, want 0", a.Recall)
	}
	if a.ARE != 1 {
		t.Errorf("ARE = %v, want 1 (all mass missed)", a.ARE)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	a := Evaluate([]core.ItemCount{ic(5, 5)}, nil)
	if a.Recall != 1 {
		t.Errorf("recall = %v, want 1 (vacuous)", a.Recall)
	}
	if a.Precision != 0 {
		t.Errorf("precision = %v, want 0", a.Precision)
	}
	if a.ARE != 0 {
		t.Errorf("ARE = %v, want 0", a.ARE)
	}
}

func TestEvaluateBothEmpty(t *testing.T) {
	a := Evaluate(nil, nil)
	if a.Precision != 1 || a.Recall != 1 {
		t.Errorf("both empty scored %+v", a)
	}
}

func TestF1(t *testing.T) {
	truth := map[core.Item]int64{1: 10, 2: 10}
	reported := []core.ItemCount{ic(1, 10), ic(3, 10)}
	a := Evaluate(reported, truth)
	// p = 0.5, r = 0.5, F1 = 0.5.
	if math.Abs(a.F1-0.5) > 1e-12 {
		t.Errorf("F1 = %v, want 0.5", a.F1)
	}
}

func TestTruthMap(t *testing.T) {
	top := []core.ItemCount{ic(1, 100), ic(2, 50), ic(3, 10)}
	m := TruthMap(top, 50)
	if len(m) != 2 || m[1] != 100 || m[2] != 50 {
		t.Errorf("TruthMap = %v", m)
	}
}

func TestThroughputPositive(t *testing.T) {
	tm := StartTimer()
	s := 0
	for i := 0; i < 1000000; i++ {
		s += i
	}
	_ = s
	rate := tm.UpdatesPerMilli(1000000)
	if rate <= 0 {
		t.Errorf("rate = %v", rate)
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series = %+v", s)
	}
}

func TestAccuracyString(t *testing.T) {
	a := Accuracy{Precision: 1, Recall: 0.5, ARE: 0.25, Reported: 3, Truth: 6}
	got := a.String()
	if got == "" {
		t.Error("empty string")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add("a", 1)
				if i%2 == 0 {
					m.Add("b", 2)
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Get("a"); got != 8000 {
		t.Errorf("Get(a) = %d, want 8000", got)
	}
	snap := m.Snapshot()
	if snap["a"] != 8000 || snap["b"] != 8000 {
		t.Errorf("Snapshot = %v, want a=8000 b=8000", snap)
	}
	if got := m.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	snap["a"] = -1 // Snapshot must be an independent copy
	if m.Get("a") != 8000 {
		t.Error("mutating the snapshot changed the meter")
	}
}
