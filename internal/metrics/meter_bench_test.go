package metrics

import (
	"fmt"
	"testing"
)

// BenchmarkMeterContention measures the mutex-serialized Meter.Add
// under concurrent callers — the hot-path contention that pushed the
// query and ingest paths onto internal/obs atomic counters (obs's
// BenchmarkSetAdd is the lock-free counterpart on the same access
// pattern). The Meter itself stays for the offline harness, where a
// single goroutine owns it and the mutex never contends.
func BenchmarkMeterContention(b *testing.B) {
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("goroutines=%d", procs), func(b *testing.B) {
			m := NewMeter()
			b.SetParallelism(procs)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					m.Add("queries.topk", 1)
				}
			})
		})
	}
}
