// Package metrics implements the measurement apparatus of the paper's
// evaluation: precision, recall, F1 and average relative error of a
// reported frequent-items set against exact ground truth, plus the
// throughput timer used for the updates-per-millisecond plots.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"

	"streamfreq/internal/core"
)

// Accuracy holds the quality metrics the paper plots for one
// (algorithm, workload, parameters) cell.
type Accuracy struct {
	// Precision is |reported ∩ truth| / |reported|; 1 if nothing reported.
	Precision float64
	// Recall is |reported ∩ truth| / |truth|; 1 if truth is empty.
	Recall float64
	// F1 is the harmonic mean of precision and recall.
	F1 float64
	// ARE is the average relative error of the estimated counts over the
	// *true* frequent items (the paper's definition): for each true heavy
	// hitter, |est − true| / true, using estimate 0 when the algorithm
	// did not report the item. Zero when truth is empty.
	ARE float64
	// MaxRE is the maximum relative error over the true frequent items.
	MaxRE float64
	// Reported and Truth are the set sizes, for context in reports.
	Reported, Truth int
}

// Evaluate compares a reported set against ground truth. truth must map
// every truly frequent item (count > threshold) to its exact count.
func Evaluate(reported []core.ItemCount, truth map[core.Item]int64) Accuracy {
	var acc Accuracy
	acc.Reported = len(reported)
	acc.Truth = len(truth)

	reportedSet := make(map[core.Item]int64, len(reported))
	for _, ic := range reported {
		reportedSet[ic.Item] = ic.Count
	}

	hits := 0
	for _, ic := range reported {
		if _, ok := truth[ic.Item]; ok {
			hits++
		}
	}
	if len(reported) == 0 {
		acc.Precision = 1
	} else {
		acc.Precision = float64(hits) / float64(len(reported))
	}
	if len(truth) == 0 {
		acc.Recall = 1
		acc.ARE = 0
		acc.F1 = f1(acc.Precision, acc.Recall)
		return acc
	}
	acc.Recall = float64(hits) / float64(len(truth))

	var sumRE float64
	for it, exact := range truth {
		est := reportedSet[it] // 0 when missed
		re := math.Abs(float64(est)-float64(exact)) / float64(exact)
		sumRE += re
		if re > acc.MaxRE {
			acc.MaxRE = re
		}
	}
	acc.ARE = sumRE / float64(len(truth))
	acc.F1 = f1(acc.Precision, acc.Recall)
	return acc
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the metrics in the compact form used by harness tables.
func (a Accuracy) String() string {
	return fmt.Sprintf("prec=%.3f recall=%.3f ARE=%.4f (reported=%d truth=%d)",
		a.Precision, a.Recall, a.ARE, a.Reported, a.Truth)
}

// TruthMap extracts the items with count ≥ threshold from exact counts,
// as a map suitable for Evaluate.
func TruthMap(exactTop []core.ItemCount, threshold int64) map[core.Item]int64 {
	t := make(map[core.Item]int64)
	for _, ic := range exactTop {
		if ic.Count >= threshold {
			t[ic.Item] = ic.Count
		}
	}
	return t
}

// Throughput measures update rate. Start it, run updates, then Stop with
// the number of updates performed.
type Throughput struct {
	start time.Time
}

// StartTimer begins a throughput measurement.
func StartTimer() Throughput {
	return Throughput{start: time.Now()}
}

// UpdatesPerMilli returns the rate after processing n updates.
func (t Throughput) UpdatesPerMilli(n int) float64 {
	elapsed := time.Since(t.start)
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(n) / (float64(elapsed) / float64(time.Millisecond))
}

// Meter is a set of named monotone counters safe for concurrent use —
// the operational-metrics companion to the offline Accuracy/Throughput
// apparatus. The freqd server meters its ingest and query traffic with
// one and reports the snapshot through /stats.
type Meter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{counts: make(map[string]int64)}
}

// Add increments the named counter by delta.
func (m *Meter) Add(name string, delta int64) {
	m.mu.Lock()
	m.counts[name] += delta
	m.mu.Unlock()
}

// Get returns the named counter's current value (0 if never added to).
func (m *Meter) Get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

// Snapshot returns an independent copy of all counters.
func (m *Meter) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// Series is a labeled sequence of (x, y) points, one plotted line of a
// paper figure.
type Series struct {
	Label  string
	X, Y   []float64
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}
