// Package stream defines the stream data model shared by the generators,
// the algorithms, and the command-line tools, together with a compact
// binary on-disk format so workloads can be generated once (freqgen) and
// replayed many times (freqtop, the harness).
//
// File format (little-endian):
//
//	offset  size  field
//	0       8     magic "SFSTRM01"
//	8       8     item count n (uint64)
//	16      8     metadata length m (uint64)
//	24      m     metadata (UTF-8, free-form description)
//	24+m    8n    items (uint64 each)
package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"streamfreq/internal/core"
)

// Magic identifies a stream file.
const Magic = "SFSTRM01"

// Source yields stream items one at a time. All workload generators in
// internal/zipf and internal/trace satisfy Source.
type Source interface {
	Next() core.Item
}

// SliceSource adapts a materialized []core.Item to a Source; it panics
// when exhausted, so callers must respect its length.
type SliceSource struct {
	items []core.Item
	pos   int
}

// NewSliceSource wraps items.
func NewSliceSource(items []core.Item) *SliceSource {
	return &SliceSource{items: items}
}

// Next returns the next item.
func (s *SliceSource) Next() core.Item {
	it := s.items[s.pos]
	s.pos++
	return it
}

// Remaining returns how many items are left.
func (s *SliceSource) Remaining() int { return len(s.items) - s.pos }

// Write writes a stream file containing items with the given metadata.
func Write(w io.Writer, meta string, items []core.Item) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("stream: writing magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(items)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(meta)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: writing header: %w", err)
	}
	if _, err := bw.WriteString(meta); err != nil {
		return fmt.Errorf("stream: writing metadata: %w", err)
	}
	var buf [8]byte
	for _, it := range items {
		binary.LittleEndian.PutUint64(buf[:], uint64(it))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("stream: writing items: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a stream file produced by Write. It validates the magic and
// bounds-checks the metadata length against sane limits before allocating.
func Read(r io.Reader) (meta string, items []core.Item, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return "", nil, fmt.Errorf("stream: bad magic %q (not a stream file?)", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("stream: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	const maxMeta = 1 << 20
	if m > maxMeta {
		return "", nil, fmt.Errorf("stream: metadata length %d exceeds limit %d", m, maxMeta)
	}
	const maxItems = 1 << 33 // 64 GiB of items; guards corrupt headers
	if n > maxItems {
		return "", nil, fmt.Errorf("stream: item count %d exceeds limit %d", n, maxItems)
	}
	mb := make([]byte, m)
	if _, err := io.ReadFull(br, mb); err != nil {
		return "", nil, fmt.Errorf("stream: reading metadata: %w", err)
	}
	items = make([]core.Item, n)
	var buf [8]byte
	for i := range items {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return "", nil, fmt.Errorf("stream: reading item %d of %d: %w", i, n, err)
		}
		items[i] = core.Item(binary.LittleEndian.Uint64(buf[:]))
	}
	return string(mb), items, nil
}

// Feed pushes n items from src into each of the summaries with unit
// counts, fanning a single generated stream to many algorithms so all see
// identical input.
func Feed(src Source, n int, summaries ...core.Summary) {
	for i := 0; i < n; i++ {
		it := src.Next()
		for _, s := range summaries {
			s.Update(it, 1)
		}
	}
}

// FeedSlice pushes every item of items into each summary with unit counts.
func FeedSlice(items []core.Item, summaries ...core.Summary) {
	for _, it := range items {
		for _, s := range summaries {
			s.Update(it, 1)
		}
	}
}
