// Package stream defines the stream data model shared by the generators,
// the algorithms, and the command-line tools, together with a compact
// binary on-disk format so workloads can be generated once (freqgen) and
// replayed many times (freqtop, the harness).
//
// File format (little-endian):
//
//	offset  size  field
//	0       8     magic "SFSTRM01"
//	8       8     item count n (uint64)
//	16      8     metadata length m (uint64)
//	24      m     metadata (UTF-8, free-form description)
//	24+m    8n    items (uint64 each)
package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"streamfreq/internal/core"
)

// Magic identifies a stream file.
const Magic = "SFSTRM01"

// Source yields stream items one at a time. All workload generators in
// internal/zipf and internal/trace satisfy Source.
type Source interface {
	Next() core.Item
}

// BatchSource yields stream items many at a time into a caller-owned
// buffer, the read-side counterpart of core.BatchUpdater: a replay loop
// that couples NextBatch to core.UpdateAll moves items from disk (or a
// materialized slice) into a summary with no per-item interface calls
// and no allocation. NextBatch fills up to len(buf) items into buf and
// returns how many it wrote; 0 means the source is exhausted.
type BatchSource interface {
	NextBatch(buf []core.Item) int
}

// SliceSource adapts a materialized []core.Item to a Source; it panics
// when exhausted, so callers must respect its length.
type SliceSource struct {
	items []core.Item
	pos   int
}

// NewSliceSource wraps items.
func NewSliceSource(items []core.Item) *SliceSource {
	return &SliceSource{items: items}
}

// Next returns the next item.
func (s *SliceSource) Next() core.Item {
	it := s.items[s.pos]
	s.pos++
	return it
}

// NextBatch implements BatchSource by copying the next run of items into
// buf. Unlike Next it does not panic at exhaustion; it returns 0.
func (s *SliceSource) NextBatch(buf []core.Item) int {
	n := copy(buf, s.items[s.pos:])
	s.pos += n
	return n
}

// Remaining returns how many items are left.
func (s *SliceSource) Remaining() int { return len(s.items) - s.pos }

// Write writes a stream file containing items with the given metadata.
func Write(w io.Writer, meta string, items []core.Item) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("stream: writing magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(items)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(meta)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: writing header: %w", err)
	}
	if _, err := bw.WriteString(meta); err != nil {
		return fmt.Errorf("stream: writing metadata: %w", err)
	}
	var buf [8]byte
	for _, it := range items {
		binary.LittleEndian.PutUint64(buf[:], uint64(it))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("stream: writing items: %w", err)
		}
	}
	return bw.Flush()
}

// Reader decodes a stream file incrementally. It validates the header on
// construction and then serves items through NextBatch, decoding into a
// reused byte buffer sized to the caller's batch — so replaying a stream
// file costs O(batch) memory however long the file is. It implements
// BatchSource and Source.
type Reader struct {
	br        *bufio.Reader
	meta      string
	total     uint64
	remaining uint64
	raw       []byte // reused little-endian staging buffer
	readErr   error  // first decode failure, surfaced by Err
	one       [1]core.Item
}

// NewReader parses the header of a stream file produced by Write,
// bounds-checking the metadata length against sane limits before
// allocating, and returns a Reader positioned at the first item.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("stream: bad magic %q (not a stream file?)", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	const maxMeta = 1 << 20
	if m > maxMeta {
		return nil, fmt.Errorf("stream: metadata length %d exceeds limit %d", m, maxMeta)
	}
	const maxItems = 1 << 33 // 64 GiB of items; guards corrupt headers
	if n > maxItems {
		return nil, fmt.Errorf("stream: item count %d exceeds limit %d", n, maxItems)
	}
	mb := make([]byte, m)
	if _, err := io.ReadFull(br, mb); err != nil {
		return nil, fmt.Errorf("stream: reading metadata: %w", err)
	}
	return &Reader{br: br, meta: string(mb), total: n, remaining: n}, nil
}

// Meta returns the file's free-form metadata string.
func (r *Reader) Meta() string { return r.meta }

// Len returns the total number of items the file declares.
func (r *Reader) Len() int { return int(r.total) }

// Remaining returns how many items have not yet been read.
func (r *Reader) Remaining() int { return int(r.remaining) }

// err records a decode failure and halts the reader.
func (r *Reader) err(e error) {
	r.readErr = e
	r.remaining = 0
}

// NextBatch implements BatchSource, decoding up to len(buf) items into
// buf. It returns 0 at end of file. On a short or failing read it
// returns what was decoded before the failure (possibly 0) and the
// error surfaces through Err; subsequent calls return 0, so replay
// loops stay a two-line for loop.
//
// The staging buffer is capped: however large buf is, the Reader never
// holds more than maxStage items' worth of raw bytes, so a caller that
// drains a whole file into one slice still reads at O(maxStage) extra
// memory.
func (r *Reader) NextBatch(buf []core.Item) int {
	want := uint64(len(buf))
	if want > r.remaining {
		want = r.remaining
	}
	if want == 0 {
		return 0
	}
	const maxStage = 1 << 16 // items per raw read: 512 KiB
	done := uint64(0)
	for done < want {
		n := want - done
		if n > maxStage {
			n = maxStage
		}
		need := int(n) * 8
		if cap(r.raw) < need {
			r.raw = make([]byte, need)
		}
		raw := r.raw[:need]
		if _, e := io.ReadFull(r.br, raw); e != nil {
			r.err(fmt.Errorf("stream: reading item %d of %d: %w",
				r.total-r.remaining+done, r.total, e))
			return int(done)
		}
		out := buf[done : done+n]
		for i := range out {
			out[i] = core.Item(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		done += n
	}
	r.remaining -= done
	return int(done)
}

// Next implements Source for compatibility with scalar consumers. It
// panics past end of file, like SliceSource.
func (r *Reader) Next() core.Item {
	if r.NextBatch(r.one[:]) != 1 {
		panic("stream: Next past end of stream file")
	}
	return r.one[0]
}

// Err returns the first item-decoding error encountered by NextBatch,
// if any. A Reader that was drained cleanly returns nil.
func (r *Reader) Err() error { return r.readErr }

// Read parses a whole stream file produced by Write, materializing every
// item. It is NewReader + a full drain; callers that can process the
// stream incrementally should use NewReader and NextBatch instead.
func Read(r io.Reader) (meta string, items []core.Item, err error) {
	sr, err := NewReader(r)
	if err != nil {
		return "", nil, err
	}
	items = make([]core.Item, sr.Len())
	got := 0
	for got < len(items) {
		n := sr.NextBatch(items[got:])
		if n == 0 {
			break
		}
		got += n
	}
	if err := sr.Err(); err != nil {
		return "", nil, err
	}
	return sr.Meta(), items, nil
}

// Feed pushes n items from src into each of the summaries with unit
// counts, fanning a single generated stream to many algorithms so all
// see identical input. The stream is staged through a bounded batch
// buffer — filled with one NextBatch call when src is a BatchSource —
// and delivered through core.UpdateAll, so summaries with a native batch
// path ingest at batch speed. A source that cannot supply n items is a
// caller bug (or a corrupt file) and panics, exactly like the scalar
// Next contract it replaces; Feed never silently under-feeds.
func Feed(src Source, n int, summaries ...core.Summary) {
	buf := make([]core.Item, core.DefaultBatchSize)
	bs, batched := src.(BatchSource)
	for n > 0 {
		want := len(buf)
		if want > n {
			want = n
		}
		var got int
		if batched {
			got = bs.NextBatch(buf[:want])
			if got == 0 {
				if e, ok := src.(interface{ Err() error }); ok && e.Err() != nil {
					panic("stream: Feed: source failed: " + e.Err().Error())
				}
				panic("stream: Feed: source exhausted with items still requested")
			}
		} else {
			for i := 0; i < want; i++ {
				buf[i] = src.Next()
			}
			got = want
		}
		for _, s := range summaries {
			core.UpdateAll(s, buf[:got])
		}
		n -= got
	}
}

// FeedSlice pushes every item of items into each summary with unit
// counts, in bounded batches via each summary's fastest ingest path.
func FeedSlice(items []core.Item, summaries ...core.Summary) {
	for _, s := range summaries {
		core.UpdateBatches(s, items, 0)
	}
}
