package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"streamfreq/internal/core"
)

// TestTokenSourceTable is the table-driven contract for the shared text
// tokenizer: whitespace handling, hashing consistency with
// core.HashString, name capture, and batch-boundary behaviour.
func TestTokenSourceTable(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string // token sequence items must hash-match
	}{
		{"empty", "", nil},
		{"single", "alpha", []string{"alpha"}},
		{"spaces", "a b c", []string{"a", "b", "c"}},
		{"repeats", "a b a a b", []string{"a", "b", "a", "a", "b"}},
		{"mixed whitespace", "a\tb\nc\r\nd   e", []string{"a", "b", "c", "d", "e"}},
		{"leading and trailing", "  \n a b \t ", []string{"a", "b"}},
		{"unicode", "héllo wörld héllo", []string{"héllo", "wörld", "héllo"}},
		{"urls", "/index.html /api?q=1 /index.html", []string{"/index.html", "/api?q=1", "/index.html"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			items, names, err := ReadTokens(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != len(tc.want) {
				t.Fatalf("got %d items, want %d", len(items), len(tc.want))
			}
			for i, tok := range tc.want {
				if items[i] != core.HashString(tok) {
					t.Fatalf("item[%d] = %#x, want HashString(%q) = %#x",
						i, uint64(items[i]), tok, uint64(core.HashString(tok)))
				}
				if got := names[items[i]]; got != tok {
					t.Fatalf("names[%#x] = %q, want %q", uint64(items[i]), got, tok)
				}
			}
			distinct := map[string]bool{}
			for _, tok := range tc.want {
				distinct[tok] = true
			}
			if len(names) != len(distinct) {
				t.Fatalf("names has %d entries, want %d distinct tokens", len(names), len(distinct))
			}
		})
	}
}

// TestTokenSourceBatchBoundaries drains a token stream through buffers
// smaller than, equal to, and larger than the token count: the
// concatenation must be invariant.
func TestTokenSourceBatchBoundaries(t *testing.T) {
	const input = "one two three four five six seven"
	want, _, err := ReadTokens(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	for _, bufLen := range []int{1, 2, 3, 7, 8, 64} {
		src := NewTokenSource(strings.NewReader(input), 0)
		var got []core.Item
		buf := make([]core.Item, bufLen)
		for {
			n := src.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if src.Err() != nil {
			t.Fatalf("buf=%d: %v", bufLen, src.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("buf=%d: %d items, want %d", bufLen, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("buf=%d: item[%d] differs", bufLen, i)
			}
		}
		if src.Names() != nil {
			t.Fatalf("buf=%d: names captured despite maxNames=0", bufLen)
		}
	}
}

// TestTokenSourceNameCap: with a positive maxNames the spelling map
// stops growing at the cap (items keep flowing), and a negative cap is
// unbounded.
func TestTokenSourceNameCap(t *testing.T) {
	const input = "a b c d e f g h"
	src := NewTokenSource(strings.NewReader(input), 3)
	buf := make([]core.Item, 32)
	n := src.NextBatch(buf)
	if n != 8 {
		t.Fatalf("NextBatch = %d items, want 8 (cap must not drop items)", n)
	}
	if got := len(src.Names()); got != 3 {
		t.Fatalf("names has %d entries, want cap 3", got)
	}
	for _, tok := range []string{"a", "b", "c"} {
		if src.Names()[core.HashString(tok)] != tok {
			t.Fatalf("first-seen token %q missing from capped names", tok)
		}
	}
	unb := NewTokenSource(strings.NewReader(input), -1)
	unb.NextBatch(buf)
	if got := len(unb.Names()); got != 8 {
		t.Fatalf("unbounded names has %d entries, want 8", got)
	}
}

// TestTokenSourceLongToken checks tokens beyond the scanner's initial
// buffer still come through, and tokens beyond the hard cap surface as
// an error, not a silent split.
func TestTokenSourceLongToken(t *testing.T) {
	long := strings.Repeat("x", 200_000)
	items, names, err := ReadTokens(strings.NewReader("pre " + long + " post"))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || names[items[1]] != long {
		t.Fatalf("long token did not round-trip (%d items)", len(items))
	}

	tooLong := strings.Repeat("y", maxToken+1)
	if _, _, err := ReadTokens(strings.NewReader(tooLong)); err == nil {
		t.Fatal("token beyond maxToken did not error")
	}
}

// TestTokenSourceNext pins the scalar Source adapter.
func TestTokenSourceNext(t *testing.T) {
	src := NewTokenSource(strings.NewReader("a b"), 0)
	if got := src.Next(); got != core.HashString("a") {
		t.Fatalf("Next() = %#x, want hash of %q", uint64(got), "a")
	}
	if got := src.Next(); got != core.HashString("b") {
		t.Fatalf("Next() = %#x, want hash of %q", uint64(got), "b")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next past EOF did not panic")
		}
	}()
	src.Next()
}

// TestRawSourceRoundTrip pins AppendRaw → RawSource as an identity, at
// several batch lengths.
func TestRawSourceRoundTrip(t *testing.T) {
	items := []core.Item{0, 1, 0xdeadbeef, 1 << 63, ^core.Item(0), 42, 42, 42}
	wire := AppendRaw(nil, items)
	if len(wire) != 8*len(items) {
		t.Fatalf("wire length %d, want %d", len(wire), 8*len(items))
	}
	for _, bufLen := range []int{1, 3, len(items), 64} {
		src := NewRawSource(bytes.NewReader(wire))
		var got []core.Item
		buf := make([]core.Item, bufLen)
		for {
			n := src.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if src.Err() != nil {
			t.Fatalf("buf=%d: %v", bufLen, src.Err())
		}
		if len(got) != len(items) {
			t.Fatalf("buf=%d: %d items, want %d", bufLen, len(got), len(items))
		}
		for i := range items {
			if got[i] != items[i] {
				t.Fatalf("buf=%d: item[%d] = %#x, want %#x", bufLen, i, uint64(got[i]), uint64(items[i]))
			}
		}
	}
}

// TestRawSourceTornItem: a stream ending mid-item delivers the complete
// prefix and surfaces ErrUnexpectedEOF.
func TestRawSourceTornItem(t *testing.T) {
	wire := AppendRaw(nil, []core.Item{7, 8})
	src := NewRawSource(bytes.NewReader(wire[:len(wire)-3]))
	buf := make([]core.Item, 8)
	if n := src.NextBatch(buf); n != 1 || buf[0] != 7 {
		t.Fatalf("NextBatch = %d (first %#x), want the 1 complete item", n, uint64(buf[0]))
	}
	if !errors.Is(src.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("Err() = %v, want ErrUnexpectedEOF", src.Err())
	}
	if n := src.NextBatch(buf); n != 0 {
		t.Fatalf("NextBatch after error = %d, want 0", n)
	}
}

// TestRawSourceEmpty: zero bytes is a clean empty stream.
func TestRawSourceEmpty(t *testing.T) {
	src := NewRawSource(bytes.NewReader(nil))
	if n := src.NextBatch(make([]core.Item, 4)); n != 0 {
		t.Fatalf("NextBatch on empty input = %d, want 0", n)
	}
	if src.Err() != nil {
		t.Fatalf("Err on empty input = %v, want nil", src.Err())
	}
}
