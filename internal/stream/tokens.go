package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"streamfreq/internal/core"
)

// Text and raw-binary ingest sources, shared by the CLIs (freqtop -text)
// and the freqd serving daemon's POST /ingest endpoint. Both implement
// BatchSource so they plug straight into the batched replay loop
// (NextBatch → core.UpdateAll), and surface decode failures through Err
// like the stream-file Reader.

// TokenSource reads whitespace-separated text tokens, hashing each to a
// 64-bit Item with core.HashString. It can also remember the first
// spelling seen for each item — bounded, so a high-cardinality stream
// cannot balloon the map — letting reports print tokens instead of
// hashes (freqtop's -text output, freqd's /topk labels).
type TokenSource struct {
	sc       *bufio.Scanner
	names    map[core.Item]string
	maxNames int
	one      [1]core.Item
}

// maxToken bounds a single token; longer tokens surface as
// bufio.ErrTooLong through Err rather than being split silently.
const maxToken = 1 << 20

// NewTokenSource returns a TokenSource over r. maxNames bounds the
// item→token spelling map: 0 disables capture, a negative value means
// unbounded (offline CLIs that materialize the stream anyway), and a
// positive value stops recording new spellings once that many distinct
// tokens are held — long-running servers pass their label-table budget
// so one hostile request cannot allocate beyond it.
func NewTokenSource(r io.Reader, maxNames int) *TokenSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxToken)
	sc.Split(bufio.ScanWords)
	t := &TokenSource{sc: sc, maxNames: maxNames}
	if maxNames != 0 {
		t.names = make(map[core.Item]string)
	}
	return t
}

// NextBatch implements BatchSource: it fills buf with the next hashed
// tokens and returns how many it wrote; 0 means the input is exhausted
// (or failed — check Err).
func (t *TokenSource) NextBatch(buf []core.Item) int {
	n := 0
	for n < len(buf) && t.sc.Scan() {
		tok := t.sc.Text()
		it := core.HashString(tok)
		buf[n] = it
		n++
		if t.names != nil && (t.maxNames < 0 || len(t.names) < t.maxNames) {
			if _, ok := t.names[it]; !ok {
				t.names[it] = tok
			}
		}
	}
	return n
}

// Next implements Source; like SliceSource it panics past end of input.
func (t *TokenSource) Next() core.Item {
	if t.NextBatch(t.one[:]) != 1 {
		panic("stream: Next past end of token input")
	}
	return t.one[0]
}

// Err returns the first read failure, nil after a clean drain.
func (t *TokenSource) Err() error { return t.sc.Err() }

// Names returns the item→token spelling map (nil when capture is
// disabled). Valid once reading is done; shared, not copied.
func (t *TokenSource) Names() map[core.Item]string { return t.names }

// ReadTokens materializes every token of r: the hashed item sequence and
// the (unbounded) spelling map. It is NewTokenSource + a full drain;
// callers that can process incrementally should use the source directly.
func ReadTokens(r io.Reader) ([]core.Item, map[core.Item]string, error) {
	src := NewTokenSource(r, -1)
	var items []core.Item
	buf := make([]core.Item, core.DefaultBatchSize)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		items = append(items, buf[:n]...)
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	return items, src.Names(), nil
}

// RawSource decodes a bare little-endian uint64 item stream — no magic,
// no length header, just 8 bytes per item until EOF. This is freqd's
// binary wire format for continuous ingest, where the total length is
// unknown when transmission starts (unlike the SFSTRM01 file format,
// whose header declares it).
type RawSource struct {
	br      *bufio.Reader
	readErr error
	one     [1]core.Item
}

// NewRawSource returns a RawSource over r.
func NewRawSource(r io.Reader) *RawSource {
	return &RawSource{br: bufio.NewReaderSize(r, 64*1024)}
}

// NextBatch implements BatchSource, decoding up to len(buf) items. It
// returns 0 at EOF. A stream that ends mid-item (1–7 trailing bytes) is
// corrupt: the partial item is dropped and the failure surfaces through
// Err.
func (s *RawSource) NextBatch(buf []core.Item) int {
	if s.readErr != nil {
		return 0
	}
	n := 0
	var raw [8]byte
	for n < len(buf) {
		if _, err := io.ReadFull(s.br, raw[:]); err != nil {
			if err == io.EOF {
				return n
			}
			s.readErr = err // ErrUnexpectedEOF (torn item) or a real read error
			return n
		}
		buf[n] = core.Item(binary.LittleEndian.Uint64(raw[:]))
		n++
	}
	return n
}

// Next implements Source; it panics past end of input.
func (s *RawSource) Next() core.Item {
	if s.NextBatch(s.one[:]) != 1 {
		panic("stream: Next past end of raw item input")
	}
	return s.one[0]
}

// Err returns the first decode failure (a torn trailing item or an
// underlying read error); nil after a clean drain.
func (s *RawSource) Err() error { return s.readErr }

// AppendRaw appends the little-endian wire encoding of items to dst and
// returns it — the encoder matching RawSource, used by clients posting
// binary batches to freqd and by the write-ahead log's record payloads
// (internal/persist).
func AppendRaw(dst []byte, items []core.Item) []byte {
	var raw [8]byte
	for _, it := range items {
		binary.LittleEndian.PutUint64(raw[:], uint64(it))
		dst = append(dst, raw[:]...)
	}
	return dst
}

// DecodeRaw decodes a complete in-memory AppendRaw payload into items,
// appending to dst. Unlike RawSource — which streams unbounded wire
// input and tolerates a torn tail by surfacing it through Err — DecodeRaw
// is for framed payloads whose length is already known and trusted
// (a CRC-verified WAL record): a length that is not a whole number of
// items is corruption, reported as an error with nothing decoded.
func DecodeRaw(dst []core.Item, b []byte) ([]core.Item, error) {
	if len(b)%8 != 0 {
		return dst, fmt.Errorf("stream: raw payload of %d bytes is not a whole number of items", len(b))
	}
	for ; len(b) > 0; b = b[8:] {
		dst = append(dst, core.Item(binary.LittleEndian.Uint64(b)))
	}
	return dst, nil
}
