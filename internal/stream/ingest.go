package stream

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"streamfreq/internal/core"
)

// The HTTP ingest body model shared by the freqd serving layer and the
// freqrouter write tier: one Content-Type selects one of the wire
// decoders in this package, and the body streams through it in bounded
// batches. Factoring the dispatch here keeps the two ingest fronts
// byte-for-byte compatible — a client that can POST to a freqd can POST
// the identical request to a freqrouter.

// ErrUnsupportedMedia reports an ingest Content-Type none of the wire
// decoders handle; HTTP layers map it to 415.
var ErrUnsupportedMedia = errors.New("stream: unsupported media type")

// IngestSource is an opened ingest body: a BatchSource plus the decode
// failure and token-spelling surfaces of whichever decoder the
// Content-Type selected.
type IngestSource struct {
	BatchSource
	err   func() error
	names func() map[core.Item]string
}

// Err returns the first decode failure, nil after a clean drain.
func (s *IngestSource) Err() error { return s.err() }

// Names returns the item→token spelling map a text-mode body
// accumulated (nil for binary bodies or disabled capture). Valid once
// reading is done; shared, not copied.
func (s *IngestSource) Names() map[core.Item]string {
	if s.names == nil {
		return nil
	}
	return s.names()
}

// OpenIngest opens an HTTP ingest request body as a batch source,
// dispatching on the Content-Type (parameters and case are ignored, per
// RFC 7231 §3.1.1.1):
//
//	application/octet-stream  bare little-endian uint64 items (also "")
//	text/plain                whitespace-separated tokens, hashed via
//	                          core.HashString; up to maxNames spellings
//	                          are captured for report labeling
//	application/x-sfstream    an SFSTRM01 stream file
//
// An unsupported type returns an error wrapping ErrUnsupportedMedia; a
// stream-file body whose header does not parse returns the header error.
func OpenIngest(contentType string, body io.Reader, maxNames int) (*IngestSource, error) {
	ct := contentType
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.ToLower(strings.TrimSpace(ct)) {
	case "text/plain":
		ts := NewTokenSource(body, maxNames)
		return &IngestSource{BatchSource: ts, err: ts.Err, names: ts.Names}, nil
	case "application/x-sfstream":
		sr, err := NewReader(body)
		if err != nil {
			return nil, err
		}
		return &IngestSource{BatchSource: sr, err: sr.Err}, nil
	case "", "application/octet-stream":
		rs := NewRawSource(body)
		return &IngestSource{BatchSource: rs, err: rs.Err}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnsupportedMedia, contentType)
	}
}
