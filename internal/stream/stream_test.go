package stream

import (
	"bytes"
	"strings"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
)

func TestRoundTrip(t *testing.T) {
	items := []core.Item{1, 2, 3, 1 << 60, 0}
	var buf bytes.Buffer
	if err := Write(&buf, "test meta ✓", items); err != nil {
		t.Fatal(err)
	}
	meta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "test meta ✓" {
		t.Errorf("meta = %q", meta)
	}
	if len(got) != len(items) {
		t.Fatalf("length %d, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Errorf("item %d = %d, want %d", i, got[i], items[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	meta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "" || len(got) != 0 {
		t.Errorf("unexpected contents: %q, %v", meta, got)
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, _, err := Read(strings.NewReader("NOTMAGIChello world padding")); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestReadTruncated(t *testing.T) {
	items := []core.Item{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := Write(&buf, "m", items); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(Magic) + 8, len(full) - 3} {
		if _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
}

func TestReadHugeMetadataRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// n=0, m=2^30 (over the limit)
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 64, 0, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("expected metadata-limit error")
	}
}

func TestReadHugeItemCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// n = 2^40, m = 0
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("expected item-count-limit error")
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]core.Item{7, 8, 9})
	if src.Remaining() != 3 {
		t.Fatalf("Remaining = %d", src.Remaining())
	}
	if src.Next() != 7 || src.Next() != 8 || src.Next() != 9 {
		t.Fatal("wrong item order")
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", src.Remaining())
	}
}

func TestFeedFansOut(t *testing.T) {
	items := []core.Item{1, 1, 2, 3, 1}
	a, b := exact.New(), exact.New()
	Feed(NewSliceSource(items), len(items), a, b)
	for _, c := range []*exact.Counter{a, b} {
		if c.Estimate(1) != 3 || c.Estimate(2) != 1 || c.Estimate(3) != 1 {
			t.Errorf("%v: wrong counts", c.Name())
		}
		if c.N() != 5 {
			t.Errorf("N = %d, want 5", c.N())
		}
	}
}

func TestFeedSlice(t *testing.T) {
	c := exact.New()
	FeedSlice([]core.Item{4, 4, 4}, c)
	if c.Estimate(4) != 3 {
		t.Errorf("count = %d, want 3", c.Estimate(4))
	}
}
