package stream

import (
	"bytes"
	"strings"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
)

func TestRoundTrip(t *testing.T) {
	items := []core.Item{1, 2, 3, 1 << 60, 0}
	var buf bytes.Buffer
	if err := Write(&buf, "test meta ✓", items); err != nil {
		t.Fatal(err)
	}
	meta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "test meta ✓" {
		t.Errorf("meta = %q", meta)
	}
	if len(got) != len(items) {
		t.Fatalf("length %d, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Errorf("item %d = %d, want %d", i, got[i], items[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	meta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "" || len(got) != 0 {
		t.Errorf("unexpected contents: %q, %v", meta, got)
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, _, err := Read(strings.NewReader("NOTMAGIChello world padding")); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestReadTruncated(t *testing.T) {
	items := []core.Item{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := Write(&buf, "m", items); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(Magic) + 8, len(full) - 3} {
		if _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
}

func TestReadHugeMetadataRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// n=0, m=2^30 (over the limit)
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 64, 0, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("expected metadata-limit error")
	}
}

func TestReadHugeItemCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// n = 2^40, m = 0
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("expected item-count-limit error")
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]core.Item{7, 8, 9})
	if src.Remaining() != 3 {
		t.Fatalf("Remaining = %d", src.Remaining())
	}
	if src.Next() != 7 || src.Next() != 8 || src.Next() != 9 {
		t.Fatal("wrong item order")
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", src.Remaining())
	}
}

func TestFeedFansOut(t *testing.T) {
	items := []core.Item{1, 1, 2, 3, 1}
	a, b := exact.New(), exact.New()
	Feed(NewSliceSource(items), len(items), a, b)
	for _, c := range []*exact.Counter{a, b} {
		if c.Estimate(1) != 3 || c.Estimate(2) != 1 || c.Estimate(3) != 1 {
			t.Errorf("%v: wrong counts", c.Name())
		}
		if c.N() != 5 {
			t.Errorf("N = %d, want 5", c.N())
		}
	}
}

func TestFeedSlice(t *testing.T) {
	c := exact.New()
	FeedSlice([]core.Item{4, 4, 4}, c)
	if c.Estimate(4) != 3 {
		t.Errorf("count = %d, want 3", c.Estimate(4))
	}
}

func TestSliceSourceNextBatch(t *testing.T) {
	src := NewSliceSource([]core.Item{1, 2, 3, 4, 5})
	buf := make([]core.Item, 2)
	var got []core.Item
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d items, want 5", len(got))
	}
	for i, it := range got {
		if it != core.Item(i+1) {
			t.Fatalf("item %d = %d, want %d", i, it, i+1)
		}
	}
	if src.NextBatch(buf) != 0 {
		t.Fatal("NextBatch after exhaustion must return 0")
	}
}

// streamFile writes a stream file and returns its bytes.
func streamFile(t *testing.T, meta string, items []core.Item) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, meta, items); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderBatchedDrain(t *testing.T) {
	items := make([]core.Item, 1000)
	for i := range items {
		items[i] = core.Item(i * 3)
	}
	data := streamFile(t, "batched", items)

	// Drain with a buffer that does not divide the item count, so the
	// final batch is short.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != "batched" || r.Len() != len(items) {
		t.Fatalf("header: meta %q len %d", r.Meta(), r.Len())
	}
	buf := make([]core.Item, 333)
	var got []core.Item
	for {
		n := r.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", r.Remaining())
	}
	if len(got) != len(items) {
		t.Fatalf("drained %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], items[i])
		}
	}
}

func TestReaderScalarNext(t *testing.T) {
	items := []core.Item{9, 8, 7}
	r, err := NewReader(bytes.NewReader(streamFile(t, "", items)))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range items {
		if got := r.Next(); got != want {
			t.Fatalf("Next = %d, want %d", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next past EOF must panic, like SliceSource")
		}
	}()
	r.Next()
}

func TestReaderTruncatedItemsSurfacesErr(t *testing.T) {
	items := []core.Item{1, 2, 3, 4, 5}
	data := streamFile(t, "m", items)
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err) // header is intact; the damage is in the items
	}
	buf := make([]core.Item, 16)
	for r.NextBatch(buf) > 0 {
	}
	if r.Err() == nil {
		t.Fatal("expected a decode error from the truncated item section")
	}
}

func TestFeedPanicsOnUnderSupply(t *testing.T) {
	// Feed must fail loudly — like the scalar Next contract — when the
	// source cannot deliver the requested items, not silently under-feed.
	items := []core.Item{1, 2, 3, 4, 5}
	data := streamFile(t, "m", items)
	r, err := NewReader(bytes.NewReader(data[:len(data)-3])) // items truncated
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Feed returned normally from a truncated source")
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, "source failed") {
			t.Fatalf("Feed panic = %v, want the source's decode failure", rec)
		}
	}()
	Feed(r, len(items), exact.New())
}

func TestFeedUsesBatchSource(t *testing.T) {
	items := make([]core.Item, 10_000)
	for i := range items {
		items[i] = core.Item(i % 37)
	}
	// SliceSource is a BatchSource, so Feed takes the batched path; the
	// result must match a scalar reference either way.
	a := exact.New()
	Feed(NewSliceSource(items), len(items), a)
	ref := exact.New()
	for _, it := range items {
		ref.Update(it, 1)
	}
	if a.N() != ref.N() {
		t.Fatalf("N = %d, want %d", a.N(), ref.N())
	}
	for probe := core.Item(0); probe < 37; probe++ {
		if a.Estimate(probe) != ref.Estimate(probe) {
			t.Fatalf("Estimate(%d) = %d, want %d", probe, a.Estimate(probe), ref.Estimate(probe))
		}
	}
}
