package ring

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingClaimOrderAcrossWrap drives 50k positions from 4 producers
// through an 8-slot ring: the consumer must see every position's
// payload in claim order, which exercises wrap-around (6250 laps) and
// full-ring backpressure (producers outrun the consumer constantly).
func TestRingClaimOrderAcrossWrap(t *testing.T) {
	r := New[uint64](8, 0)
	const total = 50_000
	var cursor atomic.Uint64
	done := make(chan []uint64, 1)
	go func() {
		out := make([]uint64, 0, total)
		for pos := uint64(0); pos < total; pos++ {
			s := r.Await(pos)
			if s.Kind == KindWeighted {
				out = append(out, s.X)
			}
			r.Release(pos)
		}
		done <- out
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := cursor.Add(1) - 1
				if pos >= total {
					return
				}
				s := r.Acquire(pos)
				s.Kind = KindWeighted
				s.X = pos
				r.Publish(pos)
			}
		}()
	}
	wg.Wait()
	out := <-done
	if len(out) != total {
		t.Fatalf("consumed %d payloads, want %d", len(out), total)
	}
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("position %d carried payload %d: consumption order != claim order", i, v)
		}
	}
}

// TestRingBatchBuffersReusedAndShed pins the slot-buffer lifecycle: a
// buffer is retained (and its capacity accounted) across laps, and a
// buffer grown past the shed bound by one outlier batch is dropped on
// Release instead of being pooled forever.
func TestRingBatchBuffersReusedAndShed(t *testing.T) {
	r := New[uint64](2, 64)
	push := func(pos uint64, n int) {
		s := r.Acquire(pos)
		s.Kind = KindBatch
		for i := 0; i < n; i++ {
			s.Items = append(s.Items, uint64(i))
		}
		r.Publish(pos)
	}
	pop := func(pos uint64) { r.Await(pos); r.Release(pos) }

	push(0, 32)
	pop(0)
	retained := r.Retained()
	if retained < 32 || retained > 64 {
		t.Fatalf("after a 32-item batch, retained = %d elements, want [32,64]", retained)
	}
	// Same slot, next lap: the buffer must be reused, not regrown.
	s := r.Acquire(2)
	if cap(s.Items) < 32 || len(s.Items) != 0 {
		t.Fatalf("slot buffer not recycled: cap=%d len=%d", cap(s.Items), len(s.Items))
	}
	s.Kind = KindBatch
	r.Publish(2)
	pop(2)

	// Outlier: 1000 items blows past the 64-element shed bound.
	push(4, 1000)
	pop(4)
	if got := r.Retained(); got >= 1000 {
		t.Fatalf("oversized buffer was pooled: retained = %d elements", got)
	}
	if s := r.SlotAt(4); s.Items != nil {
		t.Fatalf("oversized buffer not shed from the slot")
	}
}

// TestRingConsumerParksAndWakes forces the park path: the consumer
// waits on an empty ring long enough to park, then a publish must wake
// it.
func TestRingConsumerParksAndWakes(t *testing.T) {
	r := New[uint64](4, 0)
	got := make(chan uint64, 1)
	go func() {
		s := r.Await(0)
		got <- s.X
		r.Release(0)
	}()
	time.Sleep(50 * time.Millisecond) // let the consumer spin out and park
	s := r.Acquire(0)
	s.Kind = KindWeighted
	s.X = 7
	r.Publish(0)
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("woke with payload %d, want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke from park after publish")
	}
}

// TestRingRejectsBadCapacity pins the power-of-two contract.
func TestRingRejectsBadCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", capacity)
				}
			}()
			New[uint64](capacity, 0)
		}()
	}
}
