// Package ring implements the staging ring of the pipelined ingest
// plane: a fixed-capacity MPSC ring buffer in the Vyukov bounded-queue
// style, specialized for batch hand-off from many writers to one
// drainer.
//
// Coordination is a single sequence stamp per slot, no mutex anywhere:
//
//   - slot i starts with seq = i;
//   - a producer that has claimed global position pos owns slot
//     pos&mask once seq == pos (Acquire spins until then — that is the
//     full-ring backpressure), fills the payload, and publishes with
//     seq = pos+1;
//   - the single consumer walks pos = 0,1,2,…, waits at slot pos&mask
//     for seq == pos+1 (Await), applies the payload, and frees the slot
//     for its next lap with seq = pos+capacity (Release).
//
// Positions are claimed outside the ring (the pipeline holds one global
// cursor so the same position indexes every shard's ring — see
// core.Pipelined), which is what makes per-ring consumption order equal
// global claim order and keeps the pipelined plane bit-identical to
// sequential ingest.
//
// Steady state allocates nothing: slot payload buffers grow amortized
// and are reused lap after lap; a buffer left oversized by a huge batch
// is shed on Release (capacity above the shed bound is returned to the
// GC) so one outlier cannot pin its high-water mark forever. Retained
// reports the currently pooled payload capacity for footprint
// accounting.
//
// The consumer parks after a bounded spin and is woken by the next
// publish (parked flag + one-token channel, re-checked on both sides so
// a publish between "decide to park" and "sleep" is never lost);
// producers under backpressure spin with escalating yields instead,
// since a full ring means the consumer is actively draining.
package ring

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Slot payload kinds. The zero kind is an empty batch: a position
// claimed in every ring but carrying items for only some of them (the
// pipeline stages batches that way) publishes KindEmpty elsewhere, and
// the consumer just skips it.
const (
	// KindEmpty carries nothing; the consumer releases and moves on.
	KindEmpty = iota
	// KindBatch carries Items, unit count each, in stream order.
	KindBatch
	// KindWeighted carries one (X, Count) weighted update.
	KindWeighted
	// KindControl carries Ctl, a pipeline control payload (quiesce
	// barrier or shutdown); the consumer hands it back to the pipeline.
	KindControl
)

// Slot is one ring cell. Between Acquire and Publish it is owned by
// exactly one producer; between Await returning it and Release it is
// owned by the consumer; the seq transitions carry the happens-before
// edges, so the payload fields need no atomics.
type Slot[T any] struct {
	seq atomic.Uint64

	// Kind says which payload fields are live (Kind* constants).
	Kind int
	// Items is the KindBatch payload. Producers append into it
	// (Acquire hands it over length 0 with capacity from earlier
	// laps); Release recycles or sheds it.
	Items []T
	// X, Count are the KindWeighted payload.
	X     T
	Count int64
	// Ctl is the KindControl payload, opaque to the ring.
	Ctl any

	// retained is the capacity this slot was last accounted at, in
	// elements. Consumer-private (only Release touches it).
	retained int
}

// Ring is one MPSC staging ring. Producers share it through
// Acquire/Publish at externally claimed positions; exactly one
// goroutine may consume through Await/Release.
type Ring[T any] struct {
	mask  uint64
	slots []Slot[T]

	// shedCap is the per-slot payload capacity bound, in elements;
	// Release sheds buffers above it. 0 keeps every buffer.
	shedCap int
	// retained is the pooled payload capacity across slots, in
	// elements (maintained by Release, read by Retained).
	retained atomic.Int64

	// released is the consumer's progress: the position one past the
	// last Release. Single consumer, so a plain store; readers (the
	// pipeline's occupancy gauge) only need a recent value.
	released atomic.Uint64

	// parked/wake implement the consumer sleep—publish wake handshake.
	parked atomic.Bool
	wake   chan struct{}
}

// New builds a ring with capacity slots (a positive power of two).
// Payload buffers whose capacity exceeds shedCap elements are shed on
// Release; shedCap <= 0 retains all buffers.
func New[T any](capacity, shedCap int) *Ring[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("ring: capacity must be a positive power of two")
	}
	r := &Ring[T]{
		mask:    uint64(capacity - 1),
		slots:   make([]Slot[T], capacity),
		shedCap: shedCap,
		wake:    make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot count.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Retained returns the pooled payload capacity, in elements.
func (r *Ring[T]) Retained() int64 { return r.retained.Load() }

// Released returns the consumer's progress — the position one past the
// last released slot. The pipeline's occupancy gauge reads it against
// the claim cursor to report drainer lag in positions.
func (r *Ring[T]) Released() uint64 { return r.released.Load() }

// SlotAt returns the slot for position pos without any ordering check.
// Only valid between Acquire(pos) and Publish(pos) on the same
// position (producers use it to revisit their claimed slot cheaply
// during a scatter pass).
func (r *Ring[T]) SlotAt(pos uint64) *Slot[T] { return &r.slots[pos&r.mask] }

// Acquire blocks until the slot for claimed position pos is free (the
// consumer has released its previous lap) and returns it for filling.
// The wait is the ring's backpressure: it only spins while the ring is
// full, i.e. the drainer is behind by the full ring capacity.
func (r *Ring[T]) Acquire(pos uint64) *Slot[T] {
	s := &r.slots[pos&r.mask]
	for spins := 0; s.seq.Load() != pos; spins++ {
		Backoff(spins)
	}
	s.Items = s.Items[:0]
	return s
}

// Publish makes the slot claimed at pos visible to the consumer and
// wakes it if it parked.
func (r *Ring[T]) Publish(pos uint64) {
	r.slots[pos&r.mask].seq.Store(pos + 1)
	if r.parked.CompareAndSwap(true, false) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// parkAfter is how many spin rounds the consumer burns before parking.
const parkAfter = 256

// Await blocks until the slot at consumer position pos is published
// and returns it. Single consumer only.
func (r *Ring[T]) Await(pos uint64) *Slot[T] {
	s := &r.slots[pos&r.mask]
	want := pos + 1
	for spins := 0; ; spins++ {
		if s.seq.Load() == want {
			return s
		}
		if spins < parkAfter {
			Backoff(spins)
			continue
		}
		// Park. The producer side re-checks parked after its seq store
		// and we re-check seq after setting parked, so whichever wrote
		// second sees the other's write — a publish can never slip
		// between the decision to sleep and the sleep.
		r.parked.Store(true)
		if s.seq.Load() == want {
			r.parked.Store(false)
			return s
		}
		<-r.wake
		spins = 0
	}
}

// Release frees the slot consumed at pos for the producers' next lap,
// recycling its payload buffer (or shedding it when it outgrew the
// bound) and settling the retained-capacity account.
func (r *Ring[T]) Release(pos uint64) {
	s := &r.slots[pos&r.mask]
	s.Kind = KindEmpty
	s.Ctl = nil
	c := cap(s.Items)
	if r.shedCap > 0 && c > r.shedCap {
		s.Items = nil
		c = 0
	} else {
		s.Items = s.Items[:0]
	}
	if c != s.retained {
		r.retained.Add(int64(c - s.retained))
		s.retained = c
	}
	r.released.Store(pos + 1)
	s.seq.Store(pos + uint64(len(r.slots)))
}

// Backoff burns one wait round: busy-spin first, then yield the
// processor, then sleep — the sleep tier matters on machines with
// fewer cores than spinning goroutines, where pure spinning would
// starve the goroutine being waited on.
func Backoff(spins int) {
	switch {
	case spins < 64:
		// busy
	case spins < 1024:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
}
