// Package prng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Workload generation and hash-family seeding must be reproducible across
// runs and across Go releases, so the experiment harness cannot depend on
// math/rand (whose stream is not guaranteed stable between versions).
// The generators here are fixed algorithms with fixed constants:
//
//   - SplitMix64: a tiny 64-bit generator used for seeding.
//   - Xoshiro256**: the main generator for workload synthesis.
//
// Neither is cryptographically secure; they are statistical-quality
// generators appropriate for simulation.
package prng

import "math"

// SplitMix64 is a 64-bit generator with a 64-bit state. It is primarily
// used to expand a single user seed into the larger state required by
// Xoshiro256 and into independent per-row hash seeds.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256** generator of Blackman and Vigna.
// It has a 256-bit state, passes stringent statistical test batteries, and
// is extremely fast, making it suitable for generating the 10^7-item
// streams used by the experiment harness.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator deterministically seeded from seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// The all-zero state is invalid; SplitMix64 cannot produce four zero
	// outputs in a row, but guard anyway for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 1
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := x.Uint64()
		lo, hi := bitsMul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// bitsMul64 returns the 128-bit product of a and b as (lo, hi).
func bitsMul64(a, b uint64) (lo, hi uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a0 * b0
	lo32 := t & mask32
	carry := t >> 32
	t = a1*b0 + carry
	m0 := t & mask32
	m1 := t >> 32
	t = a0*b1 + m0
	lo = t<<32 | lo32
	hi = a1*b1 + m1 + t>>32
	return lo, hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inverse-CDF sampling. Used by the trace generators for
// inter-arrival gaps.
func (x *Xoshiro256) ExpFloat64() float64 {
	for {
		u := x.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(alpha, xm)-distributed value: xm * U^(-1/alpha).
// Heavy-tailed flow sizes in the UDP trace generator use this.
func (x *Xoshiro256) Pareto(alpha, xm float64) float64 {
	for {
		u := x.Float64()
		if u > 0 {
			return xm * math.Pow(u, -1/alpha)
		}
	}
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (x *Xoshiro256) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := int(x.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
}
