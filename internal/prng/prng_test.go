package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64 test vector
	// (seed 1234567).
	s := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if g := s.Next(); g != w {
			t.Fatalf("value %d: got %d, want %d", i, g, w)
		}
	}
}

func TestXoshiroDeterministicAndDistinctSeeds(t *testing.T) {
	a, b := New(7), New(7)
	c := New(8)
	same, diff := true, false
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different sequences")
	}
	if !diff {
		t.Error("different seeds produced identical sequences")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish check on 10 buckets; loose bound to avoid flakiness
	// (the generator and seed are fixed, so this is deterministic anyway).
	r := New(99)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates from expected %.0f", b, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestExpFloat64MeanApproximatelyOne(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Errorf("exponential mean %.4f not ≈ 1", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(5)
	const n = 100000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.5, 1)
		if v < 1 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316.
	frac := float64(over) / n
	if frac < 0.025 || frac > 0.04 {
		t.Errorf("Pareto tail fraction %.4f not ≈ 0.0316", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := make([]int, 100)
	r.Perm(p)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestBitsMul64MatchesBuiltin(t *testing.T) {
	f := func(a, b uint64) bool {
		lo, hi := bitsMul64(a, b)
		// Verify against the schoolbook via math: a*b mod 2^64 must equal lo.
		if lo != a*b {
			return false
		}
		// Verify hi via the identity hi = (a*b - lo) / 2^64 computed with
		// 32-bit limbs independently.
		const mask = 1<<32 - 1
		a0, a1 := a&mask, a>>32
		b0, b1 := b&mask, b>>32
		mid := a1*b0 + (a0*b0)>>32
		mid2 := a0*b1 + (mid & mask)
		wantHi := a1*b1 + (mid >> 32) + (mid2 >> 32)
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
