package zipf

import (
	"math"
	"testing"

	"streamfreq/internal/core"
)

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, 1, 1, false); err == nil {
		t.Error("expected error for m=0")
	}
	if _, err := NewGenerator(10, -0.5, 1, false); err == nil {
		t.Error("expected error for negative skew")
	}
}

func TestProbSumsToOneAndMonotone(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1.0, 2.0} {
		g, err := NewGenerator(1000, z, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		prev := math.Inf(1)
		for r := 1; r <= 1000; r++ {
			p := g.Prob(r)
			if p > prev+1e-12 {
				t.Fatalf("z=%v: probabilities not non-increasing at rank %d", z, r)
			}
			prev = p
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("z=%v: probabilities sum to %v", z, sum)
		}
	}
}

func TestEmpiricalFrequenciesMatchZipf(t *testing.T) {
	const m, n = 1000, 500000
	g, err := NewGenerator(m, 1.0, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.Item]int)
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Check the top 5 ranks are within 10% of expectation.
	for r := 1; r <= 5; r++ {
		want := g.Prob(r) * n
		got := float64(counts[core.Item(r)])
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("rank %d: observed %v, expected %v", r, got, want)
		}
	}
}

func TestScrambledIDsAreConsistent(t *testing.T) {
	g1, _ := NewGenerator(100, 1.2, 7, true)
	g2, _ := NewGenerator(100, 1.2, 7, true)
	for r := 1; r <= 100; r++ {
		if g1.ItemOfRank(r) != g2.ItemOfRank(r) {
			t.Fatal("scramble mapping not deterministic")
		}
		if g1.ItemOfRank(r) == core.Item(r) {
			t.Fatalf("rank %d not scrambled", r)
		}
	}
	// Scrambled IDs must be distinct.
	seen := map[core.Item]bool{}
	for r := 1; r <= 100; r++ {
		id := g1.ItemOfRank(r)
		if seen[id] {
			t.Fatalf("duplicate scrambled id for rank %d", r)
		}
		seen[id] = true
	}
}

func TestItemOfRankPanicsOutOfRange(t *testing.T) {
	g, _ := NewGenerator(10, 1, 1, false)
	for _, r := range []int{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for rank %d", r)
				}
			}()
			g.ItemOfRank(r)
		}()
	}
}

func TestExpectedHeavyHitters(t *testing.T) {
	g, _ := NewGenerator(1000, 1.0, 3, false)
	hh := g.ExpectedHeavyHitters(0.01)
	// Ranks are a prefix; each must have Prob > 0.01, and the next rank must not.
	for i, it := range hh {
		if g.Prob(i+1) <= 0.01 {
			t.Errorf("rank %d reported but Prob = %v", i+1, g.Prob(i+1))
		}
		if it != g.ItemOfRank(i+1) {
			t.Errorf("heavy hitter %d is not the rank-%d item", it, i+1)
		}
	}
	if next := len(hh) + 1; next <= 1000 && g.Prob(next) > 0.01 {
		t.Errorf("rank %d should have been reported (Prob=%v)", next, g.Prob(next))
	}
}

func TestExpectedHeavyHittersGrowWithSkew(t *testing.T) {
	low, _ := NewGenerator(10000, 0.6, 1, true)
	high, _ := NewGenerator(10000, 1.5, 1, true)
	if len(high.ExpectedHeavyHitters(0.001)) == 0 {
		t.Error("high skew should produce heavy hitters at phi=0.001")
	}
	// At very low skew the head is flatter: the top item's probability is
	// smaller than at high skew.
	if low.Prob(1) >= high.Prob(1) {
		t.Error("top-rank probability should increase with skew")
	}
}

func TestSequential(t *testing.T) {
	s := Sequential(5)
	want := []core.Item{1, 2, 3, 4, 5}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Sequential[%d] = %d, want %d", i, s[i], want[i])
		}
	}
}

func TestAdversarialContainsHeavyItem(t *testing.T) {
	s := Adversarial(1000, 10, 5)
	if len(s) != 1000 {
		t.Fatalf("length %d, want 1000", len(s))
	}
	counts := map[core.Item]int{}
	for _, it := range s {
		counts[it]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The heavy item recurs roughly every k+2 positions.
	if max < 1000/(10+2)-5 {
		t.Errorf("heaviest item count %d too small", max)
	}
}

func TestUniformGenerator(t *testing.T) {
	g := Uniform(50, 9)
	if g.Skew() != 0 {
		t.Errorf("Uniform skew = %v", g.Skew())
	}
	counts := map[core.Item]int{}
	for i := 0; i < 50000; i++ {
		counts[g.Next()]++
	}
	for it, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("item %d count %d far from uniform 1000", it, c)
		}
	}
}

func TestStreamLength(t *testing.T) {
	g, _ := NewGenerator(10, 1, 2, true)
	if s := g.Stream(123); len(s) != 123 {
		t.Fatalf("Stream(123) length %d", len(s))
	}
}
