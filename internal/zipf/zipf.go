// Package zipf generates the synthetic workloads of the paper's
// evaluation: Zipf-distributed streams with configurable skew, plus
// uniform, sequential and adversarial streams used by tests.
//
// The paper draws 10^7 items from Zipf distributions with skew z between
// roughly 0.5 (near-uniform) and 3 (extremely skewed). We sample *exactly*
// from the truncated Zipf distribution by inverse-CDF lookup on a
// precomputed cumulative table: item of rank r (1-based) has probability
// proportional to 1/r^z. Ranks are then scrambled through a fixed
// bijective 64-bit mix so that item identifiers are uncorrelated with
// popularity (a structure-free universe, as when hashing query strings).
package zipf

import (
	"fmt"
	"math"
	"sort"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
	"streamfreq/internal/prng"
)

// Generator produces Zipf(z) samples over a universe of m distinct items.
type Generator struct {
	cdf      []float64 // cdf[i] = P(rank <= i+1), strictly increasing to 1
	rng      *prng.Xoshiro256
	skew     float64
	scramble bool
}

// NewGenerator builds an exact Zipf(z) sampler over m items seeded by
// seed. If scramble is true, rank r is mapped to the identifier
// Mix64(r) (a fixed bijection), so IDs carry no rank structure; if false,
// item identifiers equal ranks (useful in tests).
//
// Construction is O(m); sampling is O(log m) per item.
func NewGenerator(m int, z float64, seed uint64, scramble bool) (*Generator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("zipf: universe size must be positive, got %d", m)
	}
	if z < 0 {
		return nil, fmt.Errorf("zipf: skew must be non-negative, got %g", z)
	}
	cdf := make([]float64, m)
	var total float64
	for r := 1; r <= m; r++ {
		total += math.Pow(float64(r), -z)
		cdf[r-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[m-1] = 1 // guard against FP drift
	return &Generator{cdf: cdf, rng: prng.New(seed), skew: z, scramble: scramble}, nil
}

// Skew returns the Zipf parameter z.
func (g *Generator) Skew() float64 { return g.skew }

// Universe returns the number of distinct items m.
func (g *Generator) Universe() int { return len(g.cdf) }

// rankToItem maps a 1-based rank to its item identifier.
func (g *Generator) rankToItem(rank int) core.Item {
	if g.scramble {
		return core.Item(hash.Mix64(uint64(rank)))
	}
	return core.Item(rank)
}

// ItemOfRank exposes the rank→identifier mapping so tests and the harness
// can locate the true heavy hitters without materializing a stream.
func (g *Generator) ItemOfRank(rank int) core.Item {
	if rank < 1 || rank > len(g.cdf) {
		panic(fmt.Sprintf("zipf: rank %d out of range [1,%d]", rank, len(g.cdf)))
	}
	return g.rankToItem(rank)
}

// Prob returns the probability of the item of the given 1-based rank.
func (g *Generator) Prob(rank int) float64 {
	if rank < 1 || rank > len(g.cdf) {
		panic(fmt.Sprintf("zipf: rank %d out of range [1,%d]", rank, len(g.cdf)))
	}
	if rank == 1 {
		return g.cdf[0]
	}
	return g.cdf[rank-1] - g.cdf[rank-2]
}

// Next draws one item.
func (g *Generator) Next() core.Item {
	u := g.rng.Float64()
	// Smallest index with cdf[i] >= u. sort.SearchFloat64s finds the
	// insertion point, which is exactly that index because cdf is
	// strictly increasing.
	i := sort.SearchFloat64s(g.cdf, u)
	if i >= len(g.cdf) {
		i = len(g.cdf) - 1
	}
	return g.rankToItem(i + 1)
}

// Fill draws len(dst) items into dst.
func (g *Generator) Fill(dst []core.Item) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Stream materializes a stream of n items.
func (g *Generator) Stream(n int) []core.Item {
	s := make([]core.Item, n)
	g.Fill(s)
	return s
}

// ExpectedHeavyHitters returns the ranks whose expected frequency exceeds
// phi (i.e. Prob(rank) > phi). Because Zipf probabilities are
// non-increasing in rank this is a prefix of the ranks.
func (g *Generator) ExpectedHeavyHitters(phi float64) []core.Item {
	var out []core.Item
	for r := 1; r <= len(g.cdf); r++ {
		if g.Prob(r) <= phi {
			break
		}
		out = append(out, g.rankToItem(r))
	}
	return out
}

// Uniform returns a generator of uniform samples over m scrambled items.
// Uniform streams are the hardest case for frequent-items algorithms
// (there are no frequent items), used in edge-case tests.
func Uniform(m int, seed uint64) *Generator {
	g, err := NewGenerator(m, 0, seed, true)
	if err != nil {
		panic(err) // m > 0 by construction in callers; programmer error otherwise
	}
	return g
}

// Sequential produces the deterministic stream 1, 2, ..., n (no repeats),
// used by tests for worst-case eviction churn in counter algorithms.
func Sequential(n int) []core.Item {
	s := make([]core.Item, n)
	for i := range s {
		s[i] = core.Item(i + 1)
	}
	return s
}

// Adversarial produces a stream engineered against Misra–Gries-style
// summaries with k counters: a batch of heavy items followed by rotating
// cohorts of k+1 distinct items that repeatedly trigger global decrements.
func Adversarial(n, k int, seed uint64) []core.Item {
	rng := prng.New(seed)
	s := make([]core.Item, 0, n)
	heavy := core.Item(hash.Mix64(1))
	for len(s) < n {
		// One heavy arrival, then a cohort of k+1 fresh distinct items.
		s = append(s, heavy)
		base := rng.Uint64()
		for j := 0; j <= k && len(s) < n; j++ {
			s = append(s, core.Item(hash.Mix64(base+uint64(j)+2)))
		}
	}
	return s
}
