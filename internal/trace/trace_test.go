package trace

import (
	"testing"

	"streamfreq/internal/core"
)

func TestHTTPValidation(t *testing.T) {
	if _, err := NewHTTP(HTTPConfig{Objects: 0}); err == nil {
		t.Error("expected error for Objects=0")
	}
	if _, err := NewHTTP(HTTPConfig{Objects: 10, LocalityProb: 1.5}); err == nil {
		t.Error("expected error for LocalityProb out of range")
	}
}

func TestHTTPDeterministic(t *testing.T) {
	cfg := DefaultHTTPConfig(11)
	cfg.Objects = 1 << 12
	a, err := NewHTTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewHTTP(cfg)
	sa, sb := a.Stream(20000), b.Stream(20000)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestHTTPSkewPresent(t *testing.T) {
	cfg := DefaultHTTPConfig(5)
	cfg.Objects = 1 << 14
	cfg.DriftEvery = 0
	g, err := NewHTTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := map[core.Item]int{}
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With z=0.85 over 16k objects the top object draws well over 1% of
	// requests once locality amplification is included.
	if float64(max)/n < 0.005 {
		t.Errorf("top object frequency %.4f too small; trace lost its skew", float64(max)/n)
	}
	if len(counts) < 1000 {
		t.Errorf("only %d distinct objects; trace lost its diversity", len(counts))
	}
}

func TestHTTPDriftIntroducesNewHotItems(t *testing.T) {
	cfg := DefaultHTTPConfig(6)
	cfg.Objects = 1 << 12
	cfg.DriftEvery = 5000
	g, err := NewHTTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Stream(100000)
	if len(g.remap) == 0 {
		t.Error("drift produced no remapped objects")
	}
}

func TestHTTPLocalityBoundsRecency(t *testing.T) {
	cfg := DefaultHTTPConfig(7)
	cfg.Objects = 1 << 16
	cfg.LocalityProb = 0.9
	cfg.LocalityDepth = 4
	g, err := NewHTTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 90% locality over a depth-4 window, consecutive repeats should
	// be common even though the universe is large.
	const n = 20000
	prevSeen := map[core.Item]bool{}
	repeats := 0
	var window []core.Item
	for i := 0; i < n; i++ {
		it := g.Next()
		if prevSeen[it] {
			repeats++
		}
		window = append(window, it)
		if len(window) > 8 {
			delete(prevSeen, window[0])
			window = window[1:]
		}
		prevSeen[it] = true
	}
	if float64(repeats)/n < 0.3 {
		t.Errorf("repeat fraction %.3f too low for strong locality", float64(repeats)/n)
	}
}

func TestUDPValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{ActiveFlows: 0, Alpha: 1.2}); err == nil {
		t.Error("expected error for ActiveFlows=0")
	}
	if _, err := NewUDP(UDPConfig{ActiveFlows: 10, Alpha: 0.9}); err == nil {
		t.Error("expected error for Alpha <= 1")
	}
}

func TestUDPDeterministic(t *testing.T) {
	cfg := DefaultUDPConfig(13)
	cfg.ActiveFlows = 128
	a, err := NewUDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewUDP(cfg)
	sa, sb := a.Stream(20000), b.Stream(20000)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestUDPHeavyTail(t *testing.T) {
	cfg := DefaultUDPConfig(17)
	cfg.ActiveFlows = 256
	g, err := NewUDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300000
	counts := map[core.Item]int{}
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Heavy-tailed flow sizes: some flow should be much larger than the
	// mean, and there should be many tiny flows.
	mean := float64(n) / float64(len(counts))
	var max int
	small := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if float64(c) < mean/2 {
			small++
		}
	}
	if float64(max) < 20*mean {
		t.Errorf("max flow %d not elephant-like (mean %.1f)", max, mean)
	}
	if float64(small)/float64(len(counts)) < 0.5 {
		t.Errorf("mice fraction %.3f too small", float64(small)/float64(len(counts)))
	}
}

func TestUDPFlowIDsUnique(t *testing.T) {
	cfg := DefaultUDPConfig(19)
	cfg.ActiveFlows = 64
	g, _ := NewUDP(cfg)
	// Exhaust several generations of flows; IDs must never repeat
	// (Mix64 of a strictly increasing counter).
	seenAt := map[core.Item]int{}
	lastSeen := map[core.Item]int{}
	for i := 0; i < 100000; i++ {
		it := g.Next()
		if _, ok := seenAt[it]; !ok {
			seenAt[it] = i
		}
		lastSeen[it] = i
	}
	// A flow's packets must form one contiguous-ish burst: once a flow has
	// been dead for a long stretch it must not reappear. Approximate check:
	// lifetime (last-first) is finite for all but elephants.
	// Mostly we assert no astronomically long gaps caused by ID reuse.
	for it, first := range seenAt {
		life := lastSeen[it] - first
		if life > 99000 {
			// Could legitimately be one giant elephant; allow few.
			t.Logf("flow %d lived %d packets (elephant)", it, life)
		}
	}
}
