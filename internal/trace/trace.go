// Package trace synthesizes the "real data" workloads of the paper's
// evaluation. The original study used two proprietary traces: an HTTP
// request log and a UDP/IP packet trace. Neither ships with this
// repository, so trace provides generators that reproduce the statistical
// properties those traces contribute to the experiments (see DESIGN.md §4):
//
//   - HTTPGenerator: web-object requests with power-law popularity below
//     1 (z ≈ 0.85, the regime where counter algorithms are stressed),
//     temporal locality via an LRU-stack reference model, and popularity
//     drift (new objects becoming hot over time).
//
//   - UDPGenerator: packets belonging to concurrently active flows whose
//     sizes are Pareto (heavy-tailed) and whose packets interleave, so a
//     summary sees each elephant flow as a long, interrupted run.
//
// Both generators are deterministic given a seed.
package trace

import (
	"fmt"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
	"streamfreq/internal/prng"
	"streamfreq/internal/zipf"
)

// HTTPConfig parameterizes the HTTP-like request trace.
type HTTPConfig struct {
	// Objects is the size of the base object population.
	Objects int
	// Skew is the Zipf parameter of base popularity. Web request traces
	// empirically show skew just below 1.
	Skew float64
	// LocalityProb is the probability that a request re-references one of
	// the most recently used objects instead of sampling the base
	// distribution, modeling temporal locality.
	LocalityProb float64
	// LocalityDepth is the size of the recency window.
	LocalityDepth int
	// DriftEvery introduces a popularity shift every DriftEvery requests:
	// a previously cold object is swapped into the hot set. Zero disables
	// drift.
	DriftEvery int
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultHTTPConfig mirrors the characteristics described in DESIGN.md §4.
func DefaultHTTPConfig(seed uint64) HTTPConfig {
	return HTTPConfig{
		Objects:       1 << 20,
		Skew:          0.85,
		LocalityProb:  0.2,
		LocalityDepth: 64,
		DriftEvery:    200_000,
		Seed:          seed,
	}
}

// HTTPGenerator produces an HTTP-request-like item stream.
type HTTPGenerator struct {
	cfg     HTTPConfig
	base    *zipf.Generator
	rng     *prng.Xoshiro256
	recent  []core.Item // ring buffer of recently requested objects
	pos     int
	filled  int
	emitted int
	// remap redirects a hot rank to a cold object after drift events.
	remap map[core.Item]core.Item
	drift uint64
}

// NewHTTP returns a generator for the given configuration.
func NewHTTP(cfg HTTPConfig) (*HTTPGenerator, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("trace: Objects must be positive, got %d", cfg.Objects)
	}
	if cfg.LocalityProb < 0 || cfg.LocalityProb >= 1 {
		return nil, fmt.Errorf("trace: LocalityProb must be in [0,1), got %g", cfg.LocalityProb)
	}
	if cfg.LocalityDepth <= 0 {
		cfg.LocalityDepth = 1
	}
	base, err := zipf.NewGenerator(cfg.Objects, cfg.Skew, cfg.Seed^0x48545450, true)
	if err != nil {
		return nil, err
	}
	return &HTTPGenerator{
		cfg:    cfg,
		base:   base,
		rng:    prng.New(cfg.Seed ^ 0x1ee7),
		recent: make([]core.Item, cfg.LocalityDepth),
		remap:  make(map[core.Item]core.Item),
	}, nil
}

// Next returns the next requested object identifier.
func (g *HTTPGenerator) Next() core.Item {
	g.emitted++
	if g.cfg.DriftEvery > 0 && g.emitted%g.cfg.DriftEvery == 0 {
		// Popularity drift: future references to a random top-100 object
		// are redirected to a fresh identifier ("new page goes viral").
		rank := int(g.rng.Uint64n(100)) + 1
		hot := g.base.ItemOfRank(rank)
		g.drift++
		g.remap[hot] = core.Item(hash.Mix64(uint64(g.emitted)<<20 ^ g.drift ^ 0xDEAD))
	}
	var it core.Item
	if g.filled > 0 && g.rng.Float64() < g.cfg.LocalityProb {
		// Re-reference a recent object (uniform over the recency window).
		it = g.recent[int(g.rng.Uint64n(uint64(g.filled)))]
	} else {
		it = g.base.Next()
		if to, ok := g.remap[it]; ok {
			it = to
		}
	}
	// Record in the recency ring.
	g.recent[g.pos] = it
	g.pos = (g.pos + 1) % len(g.recent)
	if g.filled < len(g.recent) {
		g.filled++
	}
	return it
}

// Stream materializes n requests.
func (g *HTTPGenerator) Stream(n int) []core.Item {
	s := make([]core.Item, n)
	for i := range s {
		s[i] = g.Next()
	}
	return s
}

// UDPConfig parameterizes the UDP-flow-like packet trace.
type UDPConfig struct {
	// ActiveFlows is the number of flows concurrently in progress.
	ActiveFlows int
	// Alpha is the Pareto shape of flow sizes (packets per flow). Values
	// near 1.1–1.3 give the elephant/mice mix of Internet traffic.
	Alpha float64
	// MinPackets is the Pareto scale (smallest flow size).
	MinPackets float64
	// MaxTrain caps the length of one packet train. Real traffic arrives
	// in trains whose length grows with the sender's backlog (congestion
	// windows, streaming buffers); trains are what let an elephant flow
	// dominate a measurement window. 0 selects 256.
	MaxTrain int
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultUDPConfig mirrors the characteristics described in DESIGN.md §4.
func DefaultUDPConfig(seed uint64) UDPConfig {
	return UDPConfig{ActiveFlows: 4096, Alpha: 1.2, MinPackets: 1, MaxTrain: 256, Seed: seed}
}

// UDPGenerator emits one item per packet; the item identifies the packet's
// flow. Flows finish and are replaced, so the stream interleaves long
// elephant flows with swarms of short mice.
type UDPGenerator struct {
	cfg       UDPConfig
	rng       *prng.Xoshiro256
	flows     []core.Item // identifier of each active flow
	remaining []int64     // packets left in each active flow
	nextID    uint64
	curSlot   int   // flow currently sending a train
	burst     int64 // packets left in the current train
}

// NewUDP returns a generator for the given configuration.
func NewUDP(cfg UDPConfig) (*UDPGenerator, error) {
	if cfg.ActiveFlows <= 0 {
		return nil, fmt.Errorf("trace: ActiveFlows must be positive, got %d", cfg.ActiveFlows)
	}
	if cfg.Alpha <= 1.0 {
		return nil, fmt.Errorf("trace: Alpha must exceed 1 for finite mean flow size, got %g", cfg.Alpha)
	}
	if cfg.MinPackets <= 0 {
		cfg.MinPackets = 1
	}
	if cfg.MaxTrain <= 0 {
		cfg.MaxTrain = 256
	}
	g := &UDPGenerator{
		cfg:       cfg,
		rng:       prng.New(cfg.Seed ^ 0x554450),
		flows:     make([]core.Item, cfg.ActiveFlows),
		remaining: make([]int64, cfg.ActiveFlows),
	}
	for i := range g.flows {
		g.startFlow(i)
	}
	return g, nil
}

// startFlow replaces slot i with a fresh flow.
func (g *UDPGenerator) startFlow(i int) {
	g.nextID++
	g.flows[i] = core.Item(hash.Mix64(g.nextID ^ g.cfg.Seed))
	size := int64(g.rng.Pareto(g.cfg.Alpha, g.cfg.MinPackets))
	if size < 1 {
		size = 1
	}
	g.remaining[i] = size
}

// Next returns the flow identifier of the next packet. Packets arrive in
// trains: a uniformly chosen flow sends a run of consecutive packets
// whose length scales with its remaining backlog, so elephant flows
// claim an airtime share proportional to their size — the property that
// makes them heavy hitters within a measurement window.
func (g *UDPGenerator) Next() core.Item {
	if g.burst <= 0 {
		g.curSlot = int(g.rng.Uint64n(uint64(len(g.flows))))
		max := g.remaining[g.curSlot] / 4
		if max < 1 {
			max = 1
		}
		if max > int64(g.cfg.MaxTrain) {
			max = int64(g.cfg.MaxTrain)
		}
		g.burst = 1 + int64(g.rng.Uint64n(uint64(max)))
	}
	i := g.curSlot
	it := g.flows[i]
	g.remaining[i]--
	g.burst--
	if g.remaining[i] <= 0 {
		g.startFlow(i)
		g.burst = 0
	}
	return it
}

// Stream materializes n packets.
func (g *UDPGenerator) Stream(n int) []core.Item {
	s := make([]core.Item, n)
	for i := range s {
		s[i] = g.Next()
	}
	return s
}
