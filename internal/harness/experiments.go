package harness

import (
	"fmt"
	"sort"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/sketches"
	"streamfreq/internal/zipf"
)

// Runner executes one experiment under a configuration.
type Runner func(Config) (Result, error)

// Experiments maps experiment ids (DESIGN.md §3) to runners, in display
// order via ExperimentOrder.
var Experiments = map[string]Runner{
	"T1": RunT1, "F1": RunF1, "F2": RunF2, "F3": RunF3, "F4": RunF4,
	"F5": RunF5, "F6": RunF6, "F7": RunF7, "F8": RunF8, "F9": RunF9,
	"F10": RunF10, "F11": RunF11, "F12": RunF12, "X1": RunX1, "X2": RunX2,
}

// ExperimentOrder lists ids in DESIGN.md order.
var ExperimentOrder = []string{
	"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
	"F10", "F11", "F12", "X1", "X2",
}

// Run executes the named experiment and emits its table.
func Run(id string, c Config) (Result, error) {
	r, ok := Experiments[id]
	if !ok {
		return Result{}, fmt.Errorf("harness: unknown experiment %q", id)
	}
	c = c.withDefaults()
	res, err := r(c)
	if err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", id, err)
	}
	if err := c.emit(res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunAll executes every experiment in order.
func RunAll(c Config) ([]Result, error) {
	var out []Result
	for _, id := range ExperimentOrder {
		res, err := Run(id, c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// sweepSkew runs one accuracy/throughput sweep over Zipf skews for the
// given roster.
func sweepSkew(c Config, exp string, algos []string) (Result, error) {
	res := Result{Exp: exp}
	for _, z := range DefaultSkews {
		stream, err := c.zipfStream(z, uint64(z*1000))
		if err != nil {
			return res, err
		}
		truth := exactTruth(stream)
		for _, algo := range algos {
			row, err := runCell(exp, algo, "skew", z, c.Phi, c.Seed, c.IngestBatch, stream, truth)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// sweepPhi runs one sweep over thresholds at fixed skew 1.0.
func sweepPhi(c Config, exp string, algos []string, mkStream func(Config) ([]core.Item, error)) (Result, error) {
	res := Result{Exp: exp}
	stream, err := mkStream(c)
	if err != nil {
		return res, err
	}
	truth := exactTruth(stream)
	for _, phi := range c.scalePhis() {
		for _, algo := range algos {
			row, err := runCell(exp, algo, "phi", phi, phi, c.Seed, c.IngestBatch, stream, truth)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// RunT1 prints the paper's Table 1: the per-algorithm summary of space
// and update-cost bounds. It is a documentation table — the measured
// columns are filled from a small calibration stream so the table also
// serves as a smoke test.
func RunT1(c Config) (Result, error) {
	res := Result{Exp: "T1", Title: "Algorithm summary (space/update bounds, calibrated at φ=" + fmt.Sprint(c.Phi) + ")"}
	stream, err := c.zipfStream(1.0, 1)
	if err != nil {
		return res, err
	}
	truth := exactTruth(stream)
	for _, algo := range c.Algorithms {
		row, err := runCell("T1", algo, "phi", c.Phi, c.Phi, c.Seed, c.IngestBatch, stream, truth)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunF1 reproduces the counter-based accuracy-vs-skew figure.
func RunF1(c Config) (Result, error) {
	res, err := sweepSkew(c, "F1", c.counterAlgos())
	res.Title = "Counter-based accuracy vs Zipf skew (φ=" + fmt.Sprint(c.Phi) + ")"
	return res, err
}

// RunF2 reproduces the counter-based throughput-vs-skew figure.
// (Throughput is measured in every cell; F2 is the same sweep presented
// throughput-first, kept as a separate id to mirror the paper's figures.)
func RunF2(c Config) (Result, error) {
	res, err := sweepSkew(c, "F2", c.counterAlgos())
	res.Title = "Counter-based update throughput vs Zipf skew"
	return res, err
}

// RunF3 reproduces the counter-based accuracy/space-vs-φ figure.
func RunF3(c Config) (Result, error) {
	res, err := sweepPhi(c, "F3", c.counterAlgos(), func(c Config) ([]core.Item, error) {
		return c.zipfStream(1.0, 3)
	})
	res.Title = "Counter-based accuracy and space vs φ (Zipf z=1.0)"
	return res, err
}

// RunF4 reproduces the counter-based HTTP-trace figure.
func RunF4(c Config) (Result, error) {
	res, err := sweepPhi(c, "F4", c.counterAlgos(), func(c Config) ([]core.Item, error) {
		return c.httpStream(4)
	})
	res.Title = "Counter-based on HTTP-like trace vs φ"
	return res, err
}

// RunF5 reproduces the counter-based UDP-trace figure.
func RunF5(c Config) (Result, error) {
	res, err := sweepPhi(c, "F5", c.counterAlgos(), func(c Config) ([]core.Item, error) {
		return c.udpStream(5)
	})
	res.Title = "Counter-based on UDP-flow trace vs φ"
	return res, err
}

// RunF6 reproduces the sketch accuracy-vs-skew figure.
func RunF6(c Config) (Result, error) {
	res, err := sweepSkew(c, "F6", c.sketchAlgos())
	res.Title = "Sketch accuracy vs Zipf skew (φ=" + fmt.Sprint(c.Phi) + ")"
	return res, err
}

// RunF7 reproduces the sketch throughput-vs-skew figure.
func RunF7(c Config) (Result, error) {
	res, err := sweepSkew(c, "F7", c.sketchAlgos())
	res.Title = "Sketch update throughput vs Zipf skew"
	return res, err
}

// RunF8 reproduces the sketch accuracy/space-vs-φ figure.
func RunF8(c Config) (Result, error) {
	res, err := sweepPhi(c, "F8", c.sketchAlgos(), func(c Config) ([]core.Item, error) {
		return c.zipfStream(1.0, 8)
	})
	res.Title = "Sketch accuracy and space vs φ (Zipf z=1.0)"
	return res, err
}

// RunF9 reproduces the sketch HTTP-trace figure.
func RunF9(c Config) (Result, error) {
	res, err := sweepPhi(c, "F9", c.sketchAlgos(), func(c Config) ([]core.Item, error) {
		return c.httpStream(9)
	})
	res.Title = "Sketch on HTTP-like trace vs φ"
	return res, err
}

// RunF10 reproduces the space-vs-φ comparison across the full roster.
func RunF10(c Config) (Result, error) {
	res, err := sweepPhi(c, "F10", c.Algorithms, func(c Config) ([]core.Item, error) {
		return c.zipfStream(1.0, 10)
	})
	res.Title = "Space vs φ, all algorithms (Zipf z=1.0)"
	return res, err
}

// RunF11 is the sketch-depth ablation: accuracy and throughput of
// Count-Min hierarchies as depth varies under a fixed total counter
// budget.
func RunF11(c Config) (Result, error) {
	res := Result{Exp: "F11", Title: "CMH depth ablation (fixed counter budget)"}
	stream, err := c.zipfStream(1.0, 11)
	if err != nil {
		return res, err
	}
	truth := exactTruth(stream)
	budget := 8 * int(2/c.Phi)
	threshold := int64(c.Phi * float64(len(stream)))
	if threshold < 1 {
		threshold = 1
	}
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	for _, depth := range []int{1, 2, 3, 4, 6, 8} {
		width := budget / depth
		h, err := sketches.NewCountMinHierarchy(sketches.HierarchyConfig{
			Depth: depth, Width: width, Bits: 8, Seed: c.Seed,
		})
		if err != nil {
			return res, err
		}
		timer := metrics.StartTimer()
		ingest(h, stream, c.IngestBatch)
		rate := timer.UpdatesPerMilli(len(stream))
		acc := metrics.Evaluate(h.Query(threshold), truthMap)
		res.Rows = append(res.Rows, Row{
			Exp: "F11", Algo: fmt.Sprintf("CMH-d%d", depth), XLabel: "depth", X: float64(depth),
			Precision: acc.Precision, Recall: acc.Recall, ARE: acc.ARE,
			UpdPerMs: rate, Bytes: h.Bytes(),
		})
	}
	return res, nil
}

// RunF12 is the stream-length scaling figure: throughput and accuracy at
// n ∈ {N/100, N/10, N}.
func RunF12(c Config) (Result, error) {
	res := Result{Exp: "F12", Title: "Stream-length scaling (Zipf z=1.0)"}
	for _, frac := range []int{100, 10, 1} {
		sub := c
		sub.N = c.N / frac
		if sub.N < 1000 {
			sub.N = 1000
		}
		stream, err := sub.zipfStream(1.0, 12)
		if err != nil {
			return res, err
		}
		truth := exactTruth(stream)
		for _, algo := range c.Algorithms {
			row, err := runCell("F12", algo, "n", float64(sub.N), c.Phi, c.Seed, c.IngestBatch, stream, truth)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// RunX1 is the extension experiment from Charikar et al. §4.2: find the
// items whose frequency changed most between two streams by sketch
// subtraction. Reported "precision" is the fraction of the true top-10
// max-change items recovered in the sketch's top-10; ARE is the relative
// error of the estimated change for those recovered.
func RunX1(c Config) (Result, error) {
	res := Result{Exp: "X1", Title: "Max-change between two streams via sketch subtraction"}
	const topK = 10
	// Two correlated streams: same base distribution, with a planted set
	// of surging/collapsing items.
	g1, err := zipf.NewGenerator(c.Universe, 1.0, c.Seed^0xA1, true)
	if err != nil {
		return res, err
	}
	g2, err := zipf.NewGenerator(c.Universe, 1.0, c.Seed^0xA2, true)
	if err != nil {
		return res, err
	}
	s1 := g1.Stream(c.N)
	s2 := g2.Stream(c.N)
	// Plant strong changes: items surging in stream 2.
	surge := c.N / 50
	for i := 0; i < topK; i++ {
		it := core.Item(0xC0FFEE + uint64(i))
		for j := 0; j < surge*(i+1)/topK; j++ {
			s2 = append(s2, it)
		}
	}

	truth1, truth2 := exactTruth(s1), exactTruth(s2)

	for _, mk := range []struct {
		name string
		new  func() core.Summary
	}{
		{"CS", func() core.Summary { return sketches.NewCountSketch(5, 2*int(2/c.Phi), c.Seed) }},
		{"CM", func() core.Summary { return sketches.NewCountMin(4, 2*int(2/c.Phi), c.Seed) }},
		{"CGT", func() core.Summary { return sketches.NewCGT(4, int(2/c.Phi), 64, c.Seed) }},
	} {
		a, b := mk.new(), mk.new()
		timer := metrics.StartTimer()
		ingest(a, s1, c.IngestBatch)
		ingest(b, s2, c.IngestBatch)
		rate := timer.UpdatesPerMilli(len(s1) + len(s2))
		if err := b.(core.Subtractor).Subtract(a); err != nil {
			return res, err
		}

		// True top-change items.
		type change struct {
			it    core.Item
			delta int64
		}
		seen := map[core.Item]bool{}
		var changes []change
		collect := func(t *exact.Counter) {
			for _, ic := range t.TopK(t.Distinct()) {
				if seen[ic.Item] {
					continue
				}
				seen[ic.Item] = true
				d := truth2.Estimate(ic.Item) - truth1.Estimate(ic.Item)
				if d < 0 {
					d = -d
				}
				changes = append(changes, change{ic.Item, d})
			}
		}
		collect(truth1)
		collect(truth2)
		sort.Slice(changes, func(i, j int) bool { return changes[i].delta > changes[j].delta })
		if len(changes) > topK {
			changes = changes[:topK]
		}

		// Sketch's view: estimate |difference| for the true candidates plus
		// planted items, and score recovery.
		hit := 0
		var sumRE float64
		for _, ch := range changes {
			est := b.Estimate(ch.it)
			if est < 0 {
				est = -est
			}
			if ch.delta > 0 {
				re := float64(abs64(est-ch.delta)) / float64(ch.delta)
				sumRE += re
				// Recovered if the sketch sees at least half the change.
				if est >= ch.delta/2 {
					hit++
				}
			}
		}
		prec := 1.0
		if len(changes) > 0 {
			prec = float64(hit) / float64(len(changes))
		}
		are := 0.0
		if len(changes) > 0 {
			are = sumRE / float64(len(changes))
		}
		res.Rows = append(res.Rows, Row{
			Exp: "X1", Algo: mk.name, XLabel: "topk", X: float64(topK),
			Precision: prec, Recall: prec, ARE: are, UpdPerMs: rate, Bytes: b.Bytes(),
		})
	}
	return res, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// RunX2 is the distributed-merge experiment: the stream is split across
// 8 shards, each summarized independently; shard summaries are merged
// and the merged summary is scored against the whole-stream truth, next
// to a single-summary control.
func RunX2(c Config) (Result, error) {
	res := Result{Exp: "X2", Title: "Merged shard summaries vs single-stream summary (8 shards)"}
	const shards = 8
	stream, err := c.zipfStream(1.0, 0xB2)
	if err != nil {
		return res, err
	}
	truth := exactTruth(stream)
	threshold := int64(c.Phi * float64(len(stream)))
	if threshold < 1 {
		threshold = 1
	}
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)

	mergeable := []string{"F", "SSH", "LC", "CM", "CS", "CMH", "CSH", "CGT"}
	for _, algo := range mergeable {
		inRoster := false
		for _, a := range c.Algorithms {
			if a == algo {
				inRoster = true
				break
			}
		}
		if !inRoster {
			continue
		}
		// Shard summaries.
		parts := make([]core.Summary, shards)
		for i := range parts {
			parts[i], err = streamfreq.New(algo, c.Phi, c.Seed)
			if err != nil {
				return res, err
			}
		}
		// Partition round-robin, then replay each part through the same
		// configured ingest path as the control, so the merged-vs-single
		// throughput comparison isolates sharding rather than the replay
		// path.
		timer := metrics.StartTimer()
		if c.IngestBatch < 0 {
			for i, it := range stream {
				parts[i%shards].Update(it, 1)
			}
		} else {
			chunk := c.IngestBatch
			if chunk <= 0 {
				chunk = core.DefaultBatchSize
			}
			buf := make([]core.Item, 0, chunk)
			for j := range parts {
				buf = buf[:0]
				for i := j; i < len(stream); i += shards {
					buf = append(buf, stream[i])
					if len(buf) == chunk {
						core.UpdateAll(parts[j], buf)
						buf = buf[:0]
					}
				}
				if len(buf) > 0 {
					core.UpdateAll(parts[j], buf)
				}
			}
		}
		rate := timer.UpdatesPerMilli(len(stream))
		merged := parts[0]
		for i := 1; i < shards; i++ {
			if err := merged.(core.Merger).Merge(parts[i]); err != nil {
				return res, fmt.Errorf("%s: %w", algo, err)
			}
		}
		acc := metrics.Evaluate(merged.Query(threshold), truthMap)
		res.Rows = append(res.Rows, Row{
			Exp: "X2", Algo: algo + "-merged", XLabel: "shards", X: shards,
			Precision: acc.Precision, Recall: acc.Recall, ARE: acc.ARE,
			UpdPerMs: rate, Bytes: merged.Bytes(),
		})

		// Single-summary control.
		control, err := streamfreq.New(algo, c.Phi, c.Seed)
		if err != nil {
			return res, err
		}
		ctimer := metrics.StartTimer()
		ingest(control, stream, c.IngestBatch)
		crate := ctimer.UpdatesPerMilli(len(stream))
		cacc := metrics.Evaluate(control.Query(threshold), truthMap)
		res.Rows = append(res.Rows, Row{
			Exp: "X2", Algo: algo + "-single", XLabel: "shards", X: 1,
			Precision: cacc.Precision, Recall: cacc.Recall, ARE: cacc.ARE,
			UpdPerMs: crate, Bytes: control.Bytes(),
		})
	}
	return res, nil
}
