// Package harness runs the reconstructed VLDB 2008 experiments and
// prints the rows/series of every figure and table in the paper's
// evaluation (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for measured results).
//
// Every experiment follows the paper's methodology:
//
//  1. Materialize one workload stream (so every algorithm sees identical
//     input).
//  2. Compute exact ground truth with a hash map.
//  3. For each algorithm, feed the stream through a freshly provisioned
//     summary under a wall-clock timer, then query at threshold φn.
//  4. Report precision, recall, ARE, update throughput, and space.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/trace"
	"streamfreq/internal/zipf"
)

// Config controls an experiment run.
type Config struct {
	// N is the stream length (the paper uses 10^7; tests use less).
	N int
	// Universe is the number of distinct items for synthetic Zipf data.
	Universe int
	// Phi is the default query threshold fraction.
	Phi float64
	// Seed drives workload and hash randomness.
	Seed uint64
	// Algorithms filters the roster (nil = all registered).
	Algorithms []string
	// IngestBatch is the replay batch length: 0 selects
	// core.DefaultBatchSize, and a negative value forces the scalar
	// per-item Update loop (the pre-batching code path, kept for A/B
	// throughput comparisons from cmd/freqbench -batch=-1).
	IngestBatch int
	// Out receives the human-readable tables.
	Out io.Writer
	// CSVOut, when non-nil, additionally receives machine-readable rows.
	CSVOut io.Writer
}

// Defaults returns the paper-scale configuration.
func Defaults() Config {
	return Config{
		N:        10_000_000,
		Universe: 1 << 22,
		Phi:      0.001,
		Seed:     20080824, // VLDB 2008 started August 24, 2008
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	d := Defaults()
	if c.N == 0 {
		c.N = d.N
	}
	if c.Universe == 0 {
		c.Universe = d.Universe
	}
	if c.Phi == 0 {
		c.Phi = d.Phi
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = streamfreq.Algorithms()
	}
	return c
}

// counterAlgos / sketchAlgos split the configured roster.
func (c Config) counterAlgos() []string {
	var out []string
	for _, a := range c.Algorithms {
		if streamfreq.CounterBased(a) {
			out = append(out, a)
		}
	}
	return out
}

func (c Config) sketchAlgos() []string {
	var out []string
	for _, a := range c.Algorithms {
		if !streamfreq.CounterBased(a) {
			out = append(out, a)
		}
	}
	return out
}

// Row is one measured cell of a figure: one algorithm at one sweep point.
type Row struct {
	Exp       string  // experiment id (e.g. "F1")
	Algo      string  // paper code
	XLabel    string  // name of the sweep variable ("skew", "phi", ...)
	X         float64 // sweep value
	Precision float64
	Recall    float64
	ARE       float64
	UpdPerMs  float64
	// QueryMs is the latency of one threshold query on the loaded
	// summary, in milliseconds (the paper reports query times for the
	// sketch structures, where they differ by orders of magnitude).
	QueryMs float64
	Bytes   int
}

// Result collects all rows of one experiment.
type Result struct {
	Exp   string
	Title string
	Rows  []Row
}

// ingest replays stream into s per Config.IngestBatch; the policy
// (negative = scalar loop, otherwise batched) lives in streamfreq.Replay
// so the CLIs' -batch flag and the harness stay in lockstep.
func ingest(s core.Summary, stream []core.Item, batch int) {
	streamfreq.Replay(s, stream, batch)
}

// runCell feeds stream to a fresh instance of algo, measures throughput,
// queries at threshold, and scores against truth. Replay is batched (see
// Config.IngestBatch) so measured throughput reflects each algorithm's
// fastest ingest path, the quantity the paper's figures rank by.
func runCell(exp, algo, xlabel string, x float64, phi float64, seed uint64, batch int,
	stream []core.Item, truth *exact.Counter) (Row, error) {
	s, err := streamfreq.New(algo, phi, seed)
	if err != nil {
		return Row{}, err
	}
	timer := metrics.StartTimer()
	ingest(s, stream, batch)
	rate := timer.UpdatesPerMilli(len(stream))

	threshold := int64(phi * float64(len(stream)))
	if threshold < 1 {
		threshold = 1
	}
	qStart := time.Now()
	reported := s.Query(threshold)
	queryMs := float64(time.Since(qStart)) / float64(time.Millisecond)
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	acc := metrics.Evaluate(reported, truthMap)

	return Row{
		Exp: exp, Algo: algo, XLabel: xlabel, X: x,
		Precision: acc.Precision, Recall: acc.Recall, ARE: acc.ARE,
		UpdPerMs: rate, QueryMs: queryMs, Bytes: s.Bytes(),
	}, nil
}

// exactTruth counts a materialized stream.
func exactTruth(stream []core.Item) *exact.Counter {
	t := exact.New()
	for _, it := range stream {
		t.Update(it, 1)
	}
	return t
}

// zipfStream materializes a Zipf(z) stream per the configuration.
func (c Config) zipfStream(z float64, salt uint64) ([]core.Item, error) {
	g, err := zipf.NewGenerator(c.Universe, z, c.Seed^salt, true)
	if err != nil {
		return nil, err
	}
	return g.Stream(c.N), nil
}

// httpStream materializes the HTTP-like trace substitute.
func (c Config) httpStream(salt uint64) ([]core.Item, error) {
	cfg := trace.DefaultHTTPConfig(c.Seed ^ salt)
	if c.Universe < cfg.Objects {
		cfg.Objects = c.Universe
	}
	g, err := trace.NewHTTP(cfg)
	if err != nil {
		return nil, err
	}
	return g.Stream(c.N), nil
}

// udpStream materializes the UDP-flow trace substitute.
func (c Config) udpStream(salt uint64) ([]core.Item, error) {
	g, err := trace.NewUDP(trace.DefaultUDPConfig(c.Seed ^ salt))
	if err != nil {
		return nil, err
	}
	return g.Stream(c.N), nil
}

// emit renders the result as an aligned table (and CSV when configured).
func (c Config) emit(res Result) error {
	fmt.Fprintf(c.Out, "\n== %s: %s ==\n", res.Exp, res.Title)
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algo\t%s\tprecision\trecall\tARE\tupd/ms\tquery ms\tbytes\n", xlabelOf(res))
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%g\t%.3f\t%.3f\t%.4f\t%.0f\t%.2f\t%d\n",
			r.Algo, r.X, r.Precision, r.Recall, r.ARE, r.UpdPerMs, r.QueryMs, r.Bytes)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if c.CSVOut != nil {
		w := csv.NewWriter(c.CSVOut)
		for _, r := range res.Rows {
			rec := []string{
				r.Exp, r.Algo, r.XLabel,
				strconv.FormatFloat(r.X, 'g', -1, 64),
				strconv.FormatFloat(r.Precision, 'f', 4, 64),
				strconv.FormatFloat(r.Recall, 'f', 4, 64),
				strconv.FormatFloat(r.ARE, 'f', 6, 64),
				strconv.FormatFloat(r.UpdPerMs, 'f', 1, 64),
				strconv.FormatFloat(r.QueryMs, 'f', 3, 64),
				strconv.Itoa(r.Bytes),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	return nil
}

func xlabelOf(res Result) string {
	if len(res.Rows) > 0 {
		return res.Rows[0].XLabel
	}
	return "x"
}

// DefaultSkews is the Zipf sweep of the skew figures.
var DefaultSkews = []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5, 3.0}

// DefaultPhis is the threshold sweep of the φ figures.
var DefaultPhis = []float64{0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01}

// scalePhis drops φ values whose threshold would round below ~5
// occurrences at the configured stream length, which would make
// precision/recall noise dominated; the paper's 10^7-item streams keep
// every default φ meaningful, but scaled-down test runs do not.
func (c Config) scalePhis() []float64 {
	var out []float64
	for _, phi := range DefaultPhis {
		if phi*float64(c.N) >= 5 {
			out = append(out, phi)
		}
	}
	if len(out) == 0 {
		out = []float64{c.Phi}
	}
	return out
}
