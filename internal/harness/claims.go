package harness

import (
	"fmt"
	"io"
)

// Claim is one qualitative finding of the paper that the reproduction
// must exhibit: "who wins, by roughly what factor, where crossovers
// fall". Claims are checked against experiment Results, and the verdicts
// feed EXPERIMENTS.md.
type Claim struct {
	ID    string // e.g. "C1"
	Exp   string // experiment the claim reads
	Text  string // the paper's finding, paraphrased
	Check func([]Result) error
}

// CheckClaims evaluates every claim against the results (matched by
// experiment id) and writes a verdict table to w. It returns the number
// of failed claims.
func CheckClaims(results []Result, w io.Writer) int {
	byExp := map[string][]Result{}
	for _, r := range results {
		byExp[r.Exp] = append(byExp[r.Exp], r)
	}
	failed := 0
	fmt.Fprintf(w, "\n== Reproduction claims ==\n")
	for _, c := range Claims {
		rs, ok := byExp[c.Exp]
		if !ok {
			fmt.Fprintf(w, "SKIP %s (%s not run): %s\n", c.ID, c.Exp, c.Text)
			continue
		}
		if err := c.Check(rs); err != nil {
			failed++
			fmt.Fprintf(w, "FAIL %s: %s\n     %v\n", c.ID, c.Text, err)
			continue
		}
		fmt.Fprintf(w, "PASS %s: %s\n", c.ID, c.Text)
	}
	return failed
}

// helpers ------------------------------------------------------------------

func rows(rs []Result, algo string) []Row {
	var out []Row
	for _, r := range rs {
		for _, row := range r.Rows {
			if row.Algo == algo {
				out = append(out, row)
			}
		}
	}
	return out
}

func meanBy(rows []Row, f func(Row) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range rows {
		s += f(r)
	}
	return s / float64(len(rows))
}

func minRecall(rows []Row) float64 {
	m := 1.0
	for _, r := range rows {
		if r.Recall < m {
			m = r.Recall
		}
	}
	return m
}

// Claims encodes the paper's qualitative findings (DESIGN.md §3 lists
// the expected shapes these formalize).
var Claims = []Claim{
	{
		ID: "C1", Exp: "F1",
		Text: "counter-based algorithms have perfect recall at every skew (deterministic guarantee)",
		Check: func(rs []Result) error {
			for _, algo := range []string{"F", "LC", "LCD", "SSL", "SSH"} {
				if r := minRecall(rows(rs, algo)); r < 0.999 {
					return fmt.Errorf("%s min recall %.3f", algo, r)
				}
			}
			return nil
		},
	},
	{
		ID: "C2", Exp: "F1",
		Text: "Space-Saving is the most accurate counter algorithm (lowest ARE), Frequent's raw estimates the least",
		Check: func(rs []Result) error {
			ssh := meanBy(rows(rs, "SSH"), func(r Row) float64 { return r.ARE })
			f := meanBy(rows(rs, "F"), func(r Row) float64 { return r.ARE })
			if ssh > f {
				return fmt.Errorf("mean ARE: SSH %.4f vs F %.4f", ssh, f)
			}
			return nil
		},
	},
	{
		ID: "C3", Exp: "F1",
		Text: "counter accuracy improves with skew (ARE at z=3 below ARE at z=0.5 for SSH)",
		Check: func(rs []Result) error {
			ssh := rows(rs, "SSH")
			if len(ssh) < 2 {
				return fmt.Errorf("missing rows")
			}
			first, last := ssh[0], ssh[len(ssh)-1]
			if last.ARE > first.ARE+1e-9 && first.ARE > 1e-4 {
				return fmt.Errorf("ARE %.4f (z=%g) -> %.4f (z=%g)", first.ARE, first.X, last.ARE, last.X)
			}
			return nil
		},
	},
	{
		ID: "C4", Exp: "F2",
		Text: "counter-based updates exceed hierarchical sketch updates by several times",
		Check: func(rs []Result) error {
			// Compared via F2 (counters) at z=1.0 against the fixed
			// relation captured in C8 on F7; here assert the counter side
			// is above 1000 upd/ms as an absolute sanity floor.
			for _, algo := range []string{"SSH", "SSL", "F", "LC"} {
				r := rows(rs, algo)
				if m := meanBy(r, func(r Row) float64 { return r.UpdPerMs }); m < 500 {
					return fmt.Errorf("%s mean throughput %.0f upd/ms implausibly low", algo, m)
				}
			}
			return nil
		},
	},
	{
		ID: "C5", Exp: "F6",
		Text: "Count-Min hierarchies never miss (recall 1); Count-Sketch hierarchies may (two-sided error)",
		Check: func(rs []Result) error {
			if r := minRecall(rows(rs, "CMH")); r < 0.999 {
				return fmt.Errorf("CMH min recall %.3f", r)
			}
			return nil
		},
	},
	{
		ID: "C6", Exp: "F6",
		Text: "CGT uses an order of magnitude more space than CMH at equal width",
		Check: func(rs []Result) error {
			cgt := meanBy(rows(rs, "CGT"), func(r Row) float64 { return float64(r.Bytes) })
			cmh := meanBy(rows(rs, "CMH"), func(r Row) float64 { return float64(r.Bytes) })
			if cgt < 3*cmh {
				return fmt.Errorf("CGT bytes %.0f not ≫ CMH bytes %.0f", cgt, cmh)
			}
			return nil
		},
	},
	{
		ID: "C7", Exp: "F3",
		Text: "counter space shrinks as φ grows",
		Check: func(rs []Result) error {
			ssh := rows(rs, "SSH")
			if len(ssh) < 2 {
				return fmt.Errorf("missing rows")
			}
			if ssh[0].Bytes <= ssh[len(ssh)-1].Bytes {
				return fmt.Errorf("bytes %d (φ=%g) -> %d (φ=%g)",
					ssh[0].Bytes, ssh[0].X, ssh[len(ssh)-1].Bytes, ssh[len(ssh)-1].X)
			}
			return nil
		},
	},
	{
		ID: "C8", Exp: "F7",
		Text: "flat-sketch updates beat hierarchical sketches; CGT is the slowest sketch",
		Check: func(rs []Result) error {
			cm := meanBy(rows(rs, "CM"), func(r Row) float64 { return r.UpdPerMs })
			cmh := meanBy(rows(rs, "CMH"), func(r Row) float64 { return r.UpdPerMs })
			cgt := meanBy(rows(rs, "CGT"), func(r Row) float64 { return r.UpdPerMs })
			if cm < cmh {
				return fmt.Errorf("CM %.0f upd/ms below CMH %.0f", cm, cmh)
			}
			if cgt > cmh {
				return fmt.Errorf("CGT %.0f upd/ms above CMH %.0f", cgt, cmh)
			}
			return nil
		},
	},
	{
		ID: "C9", Exp: "F4",
		Text: "on low-skew HTTP-like traces counter algorithms keep perfect recall and high precision",
		Check: func(rs []Result) error {
			for _, algo := range []string{"SSH", "LC"} {
				if r := minRecall(rows(rs, algo)); r < 0.999 {
					return fmt.Errorf("%s min recall %.3f", algo, r)
				}
			}
			return nil
		},
	},
	{
		ID: "C10", Exp: "X2",
		Text: "merged shard summaries match single-stream summaries (mergeability)",
		Check: func(rs []Result) error {
			var merged, single *Row
			for _, r := range rs {
				for i := range r.Rows {
					switch r.Rows[i].Algo {
					case "CM-merged":
						merged = &r.Rows[i]
					case "CM-single":
						single = &r.Rows[i]
					}
				}
			}
			if merged == nil || single == nil {
				return fmt.Errorf("missing CM rows")
			}
			if merged.Precision != single.Precision || merged.Recall != single.Recall {
				return fmt.Errorf("merged %.3f/%.3f vs single %.3f/%.3f",
					merged.Precision, merged.Recall, single.Precision, single.Recall)
			}
			return nil
		},
	},
	{
		ID: "C11", Exp: "X1",
		Text: "sketch subtraction recovers the top frequency changes between streams",
		Check: func(rs []Result) error {
			for _, algo := range []string{"CS", "CM"} {
				r := rows(rs, algo)
				if m := meanBy(r, func(r Row) float64 { return r.Precision }); m < 0.7 {
					return fmt.Errorf("%s recovered only %.0f%%", algo, 100*m)
				}
			}
			return nil
		},
	},
}
