package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckClaimsSkipsUnrunExperiments(t *testing.T) {
	var buf bytes.Buffer
	failed := CheckClaims(nil, &buf)
	if failed != 0 {
		t.Errorf("failed = %d with no results", failed)
	}
	if !strings.Contains(buf.String(), "SKIP") {
		t.Error("expected SKIP verdicts")
	}
}

func TestCheckClaimsDetectsViolation(t *testing.T) {
	// Forge an F1 result where a counter algorithm misses items.
	forged := []Result{{
		Exp: "F1",
		Rows: []Row{
			{Exp: "F1", Algo: "F", X: 1, Recall: 0.5, Precision: 1},
			{Exp: "F1", Algo: "LC", X: 1, Recall: 1, Precision: 1},
			{Exp: "F1", Algo: "LCD", X: 1, Recall: 1, Precision: 1},
			{Exp: "F1", Algo: "SSL", X: 1, Recall: 1, Precision: 1},
			{Exp: "F1", Algo: "SSH", X: 1, Recall: 1, Precision: 1},
		},
	}}
	var buf bytes.Buffer
	failed := CheckClaims(forged, &buf)
	if failed == 0 {
		t.Fatal("forged recall violation not detected")
	}
	if !strings.Contains(buf.String(), "FAIL C1") {
		t.Errorf("expected C1 failure, got:\n%s", buf.String())
	}
}

func TestClaimsPassOnRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full claim run is slow")
	}
	cfg := testConfig()
	cfg.N = 40_000
	cfg.Universe = 1 << 13
	var results []Result
	for _, id := range []string{"F1", "F2", "F3", "F4", "F6", "F7", "X1", "X2"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	var buf bytes.Buffer
	if failed := CheckClaims(results, &buf); failed > 0 {
		t.Errorf("%d claims failed on a real run:\n%s", failed, buf.String())
	}
}
