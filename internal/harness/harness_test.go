package harness

import (
	"bytes"
	"strings"
	"testing"
)

// testConfig is a scaled-down configuration that keeps every experiment
// under a second while preserving the qualitative shapes the assertions
// check.
func testConfig() Config {
	return Config{
		N:        60_000,
		Universe: 1 << 14,
		Phi:      0.005,
		Seed:     7,
	}
}

func rowsFor(t *testing.T, res Result, algo string) []Row {
	t.Helper()
	var out []Row
	for _, r := range res.Rows {
		if r.Algo == algo {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no rows for %s in %s", algo, res.Exp)
	}
	return out
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("F99", testConfig()); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestT1CoversRoster(t *testing.T) {
	res, err := Run("T1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("T1 has %d rows, want 10", len(res.Rows))
	}
}

func TestF1CounterShapes(t *testing.T) {
	res, err := RunF1(testConfig().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Counter-based algorithms must have perfect recall everywhere.
	for _, r := range res.Rows {
		if r.Recall < 0.999 {
			t.Errorf("%s at z=%g: recall %.3f < 1 (deterministic guarantee broken)",
				r.Algo, r.X, r.Recall)
		}
	}
	// Accuracy improves with skew: SSH ARE at z=3.0 must be below its ARE
	// at z=0.5, and precision at z≥2 must be high.
	ssh := rowsFor(t, res, "SSH")
	first, last := ssh[0], ssh[len(ssh)-1]
	if last.ARE > first.ARE+1e-9 && first.ARE > 0.01 {
		t.Errorf("SSH ARE did not improve with skew: %.4f (z=%g) -> %.4f (z=%g)",
			first.ARE, first.X, last.ARE, last.X)
	}
	for _, r := range ssh {
		if r.X >= 2.0 && r.Precision < 0.9 {
			t.Errorf("SSH precision %.3f at z=%g; Space-Saving should be near-exact at high skew", r.Precision, r.X)
		}
	}
}

func TestF3SpaceShapes(t *testing.T) {
	res, err := RunF3(testConfig().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Counter space must shrink as φ grows (fewer counters needed).
	ssh := rowsFor(t, res, "SSH")
	if len(ssh) >= 2 && ssh[0].Bytes <= ssh[len(ssh)-1].Bytes {
		t.Errorf("SSH bytes did not shrink with φ: %d -> %d", ssh[0].Bytes, ssh[len(ssh)-1].Bytes)
	}
}

func TestF6SketchShapes(t *testing.T) {
	res, err := RunF6(testConfig().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// CMH (Count-Min based) must have perfect recall (one-sided error).
	for _, r := range rowsFor(t, res, "CMH") {
		if r.Recall < 0.999 {
			t.Errorf("CMH recall %.3f at z=%g; Count-Min hierarchies cannot miss", r.Recall, r.X)
		}
	}
	// CGT must be the largest sketch (65 counters per bucket).
	cgt := rowsFor(t, res, "CGT")
	cmh := rowsFor(t, res, "CMH")
	if cgt[0].Bytes < cmh[0].Bytes {
		t.Errorf("CGT bytes %d below CMH bytes %d; the group-testing overhead is missing",
			cgt[0].Bytes, cmh[0].Bytes)
	}
}

func TestF11DepthAblation(t *testing.T) {
	res, err := RunF11(testConfig().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("depth ablation rows = %d, want 6", len(res.Rows))
	}
	// Throughput must fall with depth (more rows touched per update).
	if res.Rows[0].UpdPerMs < res.Rows[len(res.Rows)-1].UpdPerMs {
		t.Errorf("depth-1 throughput %.0f below depth-8 throughput %.0f",
			res.Rows[0].UpdPerMs, res.Rows[len(res.Rows)-1].UpdPerMs)
	}
}

func TestX1MaxChangeRecoversSurges(t *testing.T) {
	res, err := RunX1(testConfig().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Precision < 0.7 {
			t.Errorf("%s recovered only %.0f%% of top-change items", r.Algo, 100*r.Precision)
		}
	}
}

func TestX2MergePreservesAccuracy(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithms = []string{"SSH", "CM"}
	res, err := RunX2(cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string]Row{}
	for _, r := range res.Rows {
		byAlgo[r.Algo] = r
	}
	m, ok1 := byAlgo["SSH-merged"]
	s, ok2 := byAlgo["SSH-single"]
	if !ok1 || !ok2 {
		t.Fatal("missing SSH rows")
	}
	if m.Recall < 0.999 {
		t.Errorf("merged SSH recall %.3f; merging must preserve the deterministic guarantee", m.Recall)
	}
	if m.ARE > s.ARE+0.5 {
		t.Errorf("merged SSH ARE %.4f far above single-summary ARE %.4f", m.ARE, s.ARE)
	}
	// Linear sketches merge losslessly: merged CM must match single CM.
	cm, cs := byAlgo["CM-merged"], byAlgo["CM-single"]
	if cm.Precision != cs.Precision || cm.Recall != cs.Recall {
		t.Errorf("CM merged (%+v) differs from single (%+v); linear merge must be exact", cm, cs)
	}
}

func TestEmitTableAndCSV(t *testing.T) {
	var table, csvBuf bytes.Buffer
	cfg := testConfig()
	cfg.Out = &table
	cfg.CSVOut = &csvBuf
	cfg.Algorithms = []string{"SSH"}
	if _, err := Run("T1", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "SSH") {
		t.Error("table output missing algorithm row")
	}
	if !strings.Contains(csvBuf.String(), "T1,SSH") {
		t.Errorf("csv output malformed: %q", csvBuf.String())
	}
}

func TestScalePhisDropsTinyThresholds(t *testing.T) {
	c := Config{N: 10000}.withDefaults()
	for _, phi := range c.scalePhis() {
		if phi*float64(c.N) < 5 {
			t.Errorf("phi %g kept despite threshold < 5", phi)
		}
	}
	// Paper scale keeps everything.
	d := Defaults().withDefaults()
	if len(d.scalePhis()) != len(DefaultPhis) {
		t.Error("paper-scale config dropped phi values")
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.N = 20_000
	cfg.Universe = 1 << 12
	results, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ExperimentOrder) {
		t.Errorf("ran %d experiments, want %d", len(results), len(ExperimentOrder))
	}
	for _, res := range results {
		if len(res.Rows) == 0 {
			t.Errorf("%s produced no rows", res.Exp)
		}
	}
}
