package apitest_test

// One executable API contract, three daemons: freqd (flat and
// multi-tenant), freqmerge (flat and tenant-merge), and freqrouter all
// run through apitest.Conform with their route tables. The daemons are
// built the way their commands build them — real serve.Server,
// cluster.Coordinator over a loopback node, router.Router over a
// loopback replica — so a route that drifts out of the contract fails
// here before any client notices.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamfreq"
	"streamfreq/internal/apitest"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
	"streamfreq/internal/tenant"
)

// freqdRoutes is the node surface; tenant routes ride behind -tenants.
var freqdRoutes = []apitest.Route{
	{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
	{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
	{Method: http.MethodGet, Path: "/estimate", Aliases: []string{"/estimate"}},
	{Method: http.MethodGet, Path: "/summary", Aliases: []string{"/summary"}},
	{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
	{Method: http.MethodPost, Path: "/refresh", Aliases: []string{"/refresh"}},
	{Method: http.MethodPost, Path: "/checkpoint", Aliases: []string{"/checkpoint"}},
}

var freqdTenantRoutes = []apitest.Route{
	{Method: http.MethodPost, Path: "/t/demo/ingest"},
	{Method: http.MethodGet, Path: "/t/demo/topk"},
	{Method: http.MethodGet, Path: "/t/demo/estimate"},
	{Method: http.MethodGet, Path: "/t/demo/stats"},
	{Method: http.MethodGet, Path: "/tenants"},
	{Method: http.MethodGet, Path: "/tenants/summary"},
}

func TestFreqdConformance(t *testing.T) {
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 2, 3})
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	apitest.Conform(t, srv.Handler(), freqdRoutes)
	apitest.ConformIngest(t, srv.Handler(), "/v1/ingest")
	apitest.ConformIngest(t, srv.Handler(), "/ingest")
}

func TestFreqdTenantConformance(t *testing.T) {
	table := newDemoTable(t)
	srv := serve.NewServer(serve.Options{Target: table, Algo: "SSH", Tenants: table})
	apitest.Conform(t, srv.Handler(), append(freqdRoutes, freqdTenantRoutes...))
	apitest.ConformIngest(t, srv.Handler(), "/v1/t/demo/ingest")
}

func TestFreqmergeConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
		{Method: http.MethodGet, Path: "/estimate", Aliases: []string{"/estimate"}},
		{Method: http.MethodGet, Path: "/summary", Aliases: []string{"/summary"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodPost, Path: "/refresh", Aliases: []string{"/refresh"}},
		// POST /ingest answers 501 by design — present, enveloped, not a 404.
		{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
	}

	// A coordinator with merged data, so GET /summary exports instead of
	// 404ing "no merged summary yet".
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 1, 2})
	nodeSrv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	apitest.Conform(t, coord.Handler(), routes)
}

func TestFreqmergeTenantConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodGet, Path: "/t/demo/topk"},
		{Method: http.MethodGet, Path: "/t/demo/estimate"},
		{Method: http.MethodGet, Path: "/tenants"},
	}

	table := newDemoTable(t)
	nodeSrv := serve.NewServer(serve.Options{Target: table, Algo: "SSH", Tenants: table})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		TenantMerge:  true,
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	apitest.Conform(t, coord.Handler(), routes)
}

func TestFreqrouterConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodGet, Path: "/shardmap", Aliases: []string{"/shardmap"}},
		{Method: http.MethodPost, Path: "/probe", Aliases: []string{"/probe"}},
	}

	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	nodeSrv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	rt, err := router.New(router.Options{
		Shards: []router.ShardConfig{{ID: "s0", Replicas: []string{node.URL}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	apitest.Conform(t, rt.Handler(), routes)
	apitest.ConformIngest(t, rt.Handler(), "/v1/ingest")
	apitest.ConformIngest(t, rt.Handler(), "/ingest")
}

// newDemoTable builds a tenant table with the "demo" and default
// namespaces populated, so wildcard routes have a live target.
func newDemoTable(t *testing.T) *tenant.Table {
	t.Helper()
	table, err := tenant.NewTable(tenant.Options{DefaultPhi: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := table.IngestBatch("demo", []core.Item{7, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := table.IngestBatch("", []core.Item{1, 2}); err != nil {
		t.Fatal(err)
	}
	return table
}
