package apitest_test

// One executable API contract, three daemons: freqd (flat and
// multi-tenant), freqmerge (flat and tenant-merge), and freqrouter all
// run through apitest.Conform with their route tables. The daemons are
// built the way their commands build them — real serve.Server,
// cluster.Coordinator over a loopback node, router.Router over a
// loopback replica — so a route that drifts out of the contract fails
// here before any client notices.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamfreq"
	"streamfreq/internal/apitest"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
	"streamfreq/internal/tenant"
)

// freqdRoutes is the node surface; tenant routes ride behind -tenants.
var freqdRoutes = []apitest.Route{
	{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
	{Method: http.MethodGet, Path: "/metrics"},
	{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
	{Method: http.MethodGet, Path: "/estimate", Aliases: []string{"/estimate"}},
	{Method: http.MethodGet, Path: "/summary", Aliases: []string{"/summary"}},
	{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
	{Method: http.MethodPost, Path: "/refresh", Aliases: []string{"/refresh"}},
	{Method: http.MethodPost, Path: "/checkpoint", Aliases: []string{"/checkpoint"}},
}

// richQueryRoutes is the PR-9 capability-dispatched surface. The routes
// are always registered (only /v1, no legacy aliases — they were born
// versioned), but they answer 404 when the serving algorithm lacks the
// capability, so they are conformance-probed only against a backing
// summary that has it.
var richQueryRoutes = []apitest.Route{
	{Method: http.MethodGet, Path: "/hhh"},
	{Method: http.MethodGet, Path: "/range"},
	{Method: http.MethodGet, Path: "/quantile"},
}

var freqdTenantRoutes = []apitest.Route{
	{Method: http.MethodPost, Path: "/t/demo/ingest"},
	{Method: http.MethodGet, Path: "/t/demo/topk"},
	{Method: http.MethodGet, Path: "/t/demo/estimate"},
	{Method: http.MethodGet, Path: "/t/demo/stats"},
	{Method: http.MethodGet, Path: "/tenants"},
	{Method: http.MethodGet, Path: "/tenants/summary"},
}

func TestFreqdConformance(t *testing.T) {
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 2, 3})
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	apitest.Conform(t, srv.Handler(), freqdRoutes)
	apitest.ConformIngest(t, srv.Handler(), "/v1/ingest")
	apitest.ConformIngest(t, srv.Handler(), "/ingest")
	apitest.ConformMetrics(t, srv.Handler(),
		"freq_http_request_seconds", "freq_http_requests_total",
		"freq_build_info", "freq_uptime_seconds", "freq_stream_n",
		"freq_ingest_batch_items", "freq_ingest_apply_seconds",
		"freq_snapshot_age_seconds", "freq_snapshot_refreshes_total")
}

func TestFreqdTenantConformance(t *testing.T) {
	table := newDemoTable(t)
	srv := serve.NewServer(serve.Options{Target: table, Algo: "SSH", Tenants: table})
	apitest.Conform(t, srv.Handler(), append(freqdRoutes, freqdTenantRoutes...))
	apitest.ConformIngest(t, srv.Handler(), "/v1/t/demo/ingest")
	apitest.ConformMetrics(t, srv.Handler(),
		"freq_tenants", "freq_tenants_resident", "freq_tenants_evictions_total",
		"freq_tenants_slab_bytes")
}

func TestFreqmergeConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
		{Method: http.MethodGet, Path: "/estimate", Aliases: []string{"/estimate"}},
		{Method: http.MethodGet, Path: "/summary", Aliases: []string{"/summary"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodGet, Path: "/metrics"},
		{Method: http.MethodPost, Path: "/refresh", Aliases: []string{"/refresh"}},
		// POST /ingest answers 501 by design — present, enveloped, not a 404.
		{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
	}

	// A coordinator with merged data, so GET /summary exports instead of
	// 404ing "no merged summary yet".
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 1, 2})
	nodeSrv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	apitest.Conform(t, coord.Handler(), routes)
	apitest.ConformMetrics(t, coord.Handler(),
		"freq_pull_seconds", "freq_merges_total", "freq_merged_n",
		"freq_cluster_nodes", "freq_merge_age_seconds")
}

func TestFreqmergeTenantConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodGet, Path: "/metrics"},
		{Method: http.MethodGet, Path: "/t/demo/topk"},
		{Method: http.MethodGet, Path: "/t/demo/estimate"},
		{Method: http.MethodGet, Path: "/tenants"},
	}

	table := newDemoTable(t)
	nodeSrv := serve.NewServer(serve.Options{Target: table, Algo: "SSH", Tenants: table})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		TenantMerge:  true,
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	apitest.Conform(t, coord.Handler(), routes)
	apitest.ConformMetrics(t, coord.Handler(),
		"freq_pull_seconds", "freq_merges_total", "freq_cluster_nodes")
}

func TestFreqrouterConformance(t *testing.T) {
	routes := []apitest.Route{
		{Method: http.MethodPost, Path: "/ingest", Aliases: []string{"/ingest"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodGet, Path: "/metrics"},
		{Method: http.MethodGet, Path: "/shardmap", Aliases: []string{"/shardmap"}},
		{Method: http.MethodPost, Path: "/probe", Aliases: []string{"/probe"}},
	}

	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	nodeSrv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	rt, err := router.New(router.Options{
		Shards: []router.ShardConfig{{ID: "s0", Replicas: []string{node.URL}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	apitest.Conform(t, rt.Handler(), routes)
	apitest.ConformIngest(t, rt.Handler(), "/v1/ingest")
	apitest.ConformIngest(t, rt.Handler(), "/ingest")
	apitest.ConformMetrics(t, rt.Handler(),
		"freq_router_shard_routed_items_total", "freq_router_shard_shed_items_total",
		"freq_router_replicas_up", "freq_router_replica_restarts_total",
		"freq_http_request_seconds", "freq_uptime_seconds")
}

// TestFreqdRichQueryConformance runs the node contract with the rich
// query routes live: a CMH hierarchy answers hhh, range, and quantile,
// so all three must conform (registered under /v1, 405+Allow on wrong
// method, enveloped errors).
func TestFreqdRichQueryConformance(t *testing.T) {
	target := core.NewConcurrent(streamfreq.MustNew("CMH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 2, 3})
	srv := serve.NewServer(serve.Options{Target: target, Algo: "CMH"})
	apitest.Conform(t, srv.Handler(), append(freqdRoutes, richQueryRoutes...))
}

// TestFreqdGKConformance: a GK quantile node serves the full flat
// surface plus range and quantile; hhh stays a 404 (probed in
// TestRichQueryErrors, not here — Conform reads 404 as "unrouted").
func TestFreqdGKConformance(t *testing.T) {
	gk, err := streamfreq.NewQuantileForPhi(0.02)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewConcurrent(gk).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 2, 3})
	srv := serve.NewServer(serve.Options{Target: target, Algo: "GK"})
	routes := append(append([]apitest.Route{}, freqdRoutes...),
		apitest.Route{Method: http.MethodGet, Path: "/range"},
		apitest.Route{Method: http.MethodGet, Path: "/quantile"},
	)
	apitest.Conform(t, srv.Handler(), routes)
}

// TestFreqmergeRichQueryConformance: the coordinator over a CMH node
// serves the identical rich query surface — merged views carry the same
// capabilities the node summaries do.
func TestFreqmergeRichQueryConformance(t *testing.T) {
	routes := append([]apitest.Route{
		{Method: http.MethodGet, Path: "/topk", Aliases: []string{"/topk"}},
		{Method: http.MethodGet, Path: "/estimate", Aliases: []string{"/estimate"}},
		{Method: http.MethodGet, Path: "/summary", Aliases: []string{"/summary"}},
		{Method: http.MethodGet, Path: "/stats", Aliases: []string{"/stats"}},
		{Method: http.MethodPost, Path: "/refresh", Aliases: []string{"/refresh"}},
	}, richQueryRoutes...)

	target := core.NewConcurrent(streamfreq.MustNew("CMH", 0.01, 1)).ServeSnapshots(0)
	target.UpdateBatch([]core.Item{1, 1, 2})
	nodeSrv := serve.NewServer(serve.Options{Target: target, Algo: "CMH"})
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	apitest.Conform(t, coord.Handler(), routes)
}

// TestRichQueryErrors pins the error half of the rich-query contract on
// node and coordinator alike: an incapable algorithm is an enveloped
// 404 (the resource does not exist on this server — not a 400, the
// request was fine), and bad parameters on a capable one are enveloped
// 400s.
func TestRichQueryErrors(t *testing.T) {
	ssh := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	ssh.UpdateBatch([]core.Item{1, 2, 3})
	sshSrv := serve.NewServer(serve.Options{Target: ssh, Algo: "SSH"}).Handler()

	cmh := core.NewConcurrent(streamfreq.MustNew("CMH", 0.01, 1)).ServeSnapshots(0)
	cmh.UpdateBatch([]core.Item{1, 2, 3})
	cmhSrv := serve.NewServer(serve.Options{Target: cmh, Algo: "CMH"}).Handler()

	node := httptest.NewServer(sshSrv)
	defer node.Close()
	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())
	coordSrv := coord.Handler()

	cases := []struct {
		name     string
		h        http.Handler
		path     string
		status   int
		wantCode string
	}{
		// Capability 404s: the frequency-only node, and the coordinator
		// whose merged view is that same incapable summary.
		{"ssh-hhh", sshSrv, "/v1/hhh", http.StatusNotFound, "not_found"},
		{"ssh-range", sshSrv, "/v1/range?lo=0&hi=9", http.StatusNotFound, "not_found"},
		{"ssh-quantile", sshSrv, "/v1/quantile?q=0.5", http.StatusNotFound, "not_found"},
		{"coord-ssh-hhh", coordSrv, "/v1/hhh", http.StatusNotFound, "not_found"},
		{"coord-ssh-quantile", coordSrv, "/v1/quantile?q=0.5", http.StatusNotFound, "not_found"},
		// Parameter 400s on a capable summary.
		{"hhh-bad-phi", cmhSrv, "/v1/hhh?phi=2", http.StatusBadRequest, "bad_request"},
		{"hhh-bad-threshold", cmhSrv, "/v1/hhh?threshold=-1", http.StatusBadRequest, "bad_request"},
		{"range-missing", cmhSrv, "/v1/range", http.StatusBadRequest, "bad_request"},
		{"range-inverted", cmhSrv, "/v1/range?lo=9&hi=1", http.StatusBadRequest, "bad_request"},
		{"range-garbage", cmhSrv, "/v1/range?lo=abc&hi=9", http.StatusBadRequest, "bad_request"},
		{"quantile-missing", cmhSrv, "/v1/quantile", http.StatusBadRequest, "bad_request"},
		{"quantile-out-of-range", cmhSrv, "/v1/quantile?q=1.5", http.StatusBadRequest, "bad_request"},
		// Horizon errors: malformed is the client's 400; a well-formed
		// horizon on a summary with none configured is a 404.
		{"horizon-garbage", cmhSrv, "/v1/topk?horizon=soon", http.StatusBadRequest, "bad_request"},
		{"horizon-unbacked", cmhSrv, "/v1/hhh?horizon=1h", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.path, nil)
			w := httptest.NewRecorder()
			tc.h.ServeHTTP(w, req)
			resp := w.Result()
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("GET %s: status %d, want %d (%s)", tc.path, resp.StatusCode, tc.status, body)
			}
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("GET %s: body is not the error envelope: %v", tc.path, err)
			}
			if env.Error.Code != tc.wantCode || env.Error.Message == "" {
				t.Fatalf("GET %s: envelope code %q (message %q), want %q",
					tc.path, env.Error.Code, env.Error.Message, tc.wantCode)
			}
		})
	}
}

// newDemoTable builds a tenant table with the "demo" and default
// namespaces populated, so wildcard routes have a live target.
func newDemoTable(t *testing.T) *tenant.Table {
	t.Helper()
	table, err := tenant.NewTable(tenant.Options{DefaultPhi: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := table.IngestBatch("demo", []core.Item{7, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := table.IngestBatch("", []core.Item{1, 2}); err != nil {
		t.Fatal(err)
	}
	return table
}
