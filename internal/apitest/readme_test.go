package apitest_test

// The README's /v1 API-reference table is executable documentation:
// this test parses the markdown table and diffs it, in both
// directions, against the routes the three daemons actually register
// (serve.API.Routes(), the canonical /v1 patterns — legacy aliases are
// compatibility shims, deliberately outside the table's contract).
// Adding a route without documenting it, or documenting one that does
// not exist, fails the build.

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
)

// parseReadmeTable extracts the /v1 API table: daemon → "METHOD
// /v1/pattern" → documented. A cell counts as "served" unless it is the
// em-dash — qualifiers like "`-tenants`" or "501 by design" still mean
// the route is registered.
func parseReadmeTable(t *testing.T) map[string]map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	_, rest, found := strings.Cut(string(raw), "### The /v1 API")
	if !found {
		t.Fatal("README.md has no '### The /v1 API' section")
	}
	daemons := []string{"freqd", "freqmerge", "freqrouter"}
	out := make(map[string]map[string]bool, len(daemons))
	for _, d := range daemons {
		out[d] = make(map[string]bool)
	}
	rows := 0
	for _, line := range strings.Split(rest, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "## ") {
			break // next chapter — later tables (flags, query surface) are not route rows
		}
		if !strings.HasPrefix(line, "| `") {
			continue // header, separator, prose
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) < 5 {
			t.Fatalf("README API table row has %d cells: %q", len(cells), line)
		}
		// The route cell may list several backticked paths (the healthz
		// row); the canonical /v1 one is the mux pattern.
		var pattern string
		for _, tok := range strings.Split(cells[0], "`") {
			if strings.HasPrefix(tok, "/v1") {
				pattern = tok
			}
		}
		if pattern == "" {
			t.Fatalf("README API table row without a /v1 path: %q", line)
		}
		method := strings.TrimSpace(cells[1])
		rows++
		for i, d := range daemons {
			if strings.TrimSpace(cells[2+i]) != "—" {
				out[d][method+" "+pattern] = true
			}
		}
	}
	if rows < 10 {
		t.Fatalf("parsed only %d rows from the README API table — parser or table broken", rows)
	}
	return out
}

// routeSet flattens a live mux's route table to the README's key shape.
func routeSet(routes []serve.RouteInfo) map[string]bool {
	out := make(map[string]bool, len(routes))
	for _, rt := range routes {
		for _, m := range strings.Split(rt.Methods, ",") {
			out[m+" "+rt.Pattern] = true
		}
	}
	return out
}

func TestReadmeAPITableMatchesMux(t *testing.T) {
	documented := parseReadmeTable(t)

	// Each daemon at its maximal surface, built the way its command
	// builds it: freqd with tenancy enabled (tenant routes ride the same
	// mux), freqmerge in tenant-merge mode over a loopback node, and the
	// router over one replica.
	table := newDemoTable(t)
	freqd := serve.NewServer(serve.Options{Target: table, Algo: "SSH", Tenants: table})

	node := httptest.NewServer(freqd.Handler())
	defer node.Close()
	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{node.URL},
		TenantMerge:  true,
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PullAll(context.Background())

	rt, err := router.New(router.Options{
		Shards: []router.ShardConfig{{ID: "s0", Replicas: []string{node.URL}}},
	})
	if err != nil {
		t.Fatal(err)
	}

	live := map[string]map[string]bool{
		"freqd":      routeSet(freqd.API().Routes()),
		"freqmerge":  routeSet(coord.API().Routes()),
		"freqrouter": routeSet(rt.API().Routes()),
	}

	for daemon, mux := range live {
		docs := documented[daemon]
		for key := range mux {
			if !docs[key] {
				t.Errorf("%s: %s is registered on the mux but missing from the README API table", daemon, key)
			}
		}
		for key := range docs {
			if !mux[key] {
				t.Errorf("%s: the README API table lists %s but the mux does not register it", daemon, key)
			}
		}
	}
}
