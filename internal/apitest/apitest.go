// Package apitest checks a daemon's HTTP surface against the /v1 API
// contract every streamfreq daemon promises, whatever it serves behind
// the routes:
//
//   - every route lives under /v1/ and (when grandfathered) at its
//     pre-versioning alias, both answering identically
//   - a wrong method is 405 with an Allow header, never 404
//   - every error is the {"error":{"code","message"}} JSON envelope
//   - unknown paths are enveloped 404s, at the root and under /v1/
//   - GET /healthz answers 200 {"status":"ok"}
//
// The checker takes a handler and its route table and probes the
// contract edge by edge, so freqd, freqmerge, and freqrouter — and any
// future daemon — share one executable definition of "API-conformant"
// instead of three drifting copies.
package apitest

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamfreq/internal/obs"
)

// Route declares one endpoint of a daemon's API for conformance
// probing: the allowed method, the path under /v1 (with any {wildcard}
// segments filled in), and the legacy aliases that must answer too.
type Route struct {
	Method  string
	Path    string // e.g. "/topk" — probed as "/v1/topk"
	Aliases []string
}

// envelope is the error body contract.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// checkEnvelope asserts resp carries the JSON error envelope.
func checkEnvelope(t *testing.T, resp *http.Response, context string) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s: error Content-Type %q, want application/json", context, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: reading error body: %v", context, err)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Errorf("%s: error body %q is not the envelope: %v", context, body, err)
		return
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Errorf("%s: envelope missing code or message: %q", context, body)
	}
}

// do runs one request against the handler in-process.
func do(h http.Handler, method, path string) *http.Response {
	req := httptest.NewRequest(method, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Result()
}

// Conform probes handler against routes and the cross-cutting API
// contract. Routes are declared without the /v1 prefix; Conform adds
// it. It does not assert route-specific success bodies — that is the
// daemon's own test's job — only that the surface holds the contract.
func Conform(t *testing.T, h http.Handler, routes []Route) {
	t.Helper()

	t.Run("healthz", func(t *testing.T) {
		resp := do(h, http.MethodGet, "/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
			t.Fatalf("GET /healthz: body not {\"status\":\"ok\"} (%v)", err)
		}
		if resp := do(h, http.MethodGet, "/v1/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/healthz: status %d, want 200", resp.StatusCode)
		}
	})

	t.Run("unknown_paths_enveloped", func(t *testing.T) {
		for _, p := range []string{"/definitely-not-a-route", "/v1/definitely-not-a-route"} {
			resp := do(h, http.MethodGet, p)
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s: status %d, want 404", p, resp.StatusCode)
			}
			checkEnvelope(t, resp, "GET "+p)
		}
	})

	for _, rt := range routes {
		rt := rt
		versioned := "/v1" + rt.Path
		paths := append([]string{versioned}, rt.Aliases...)

		t.Run("routed"+strings.ReplaceAll(versioned, "/", "_"), func(t *testing.T) {
			for _, p := range paths {
				// The allowed method must reach the handler: any status
				// but 404 (unrouted) and 405 (method table wrong). Missing
				// params, empty state, etc. are fine — still conformant.
				resp := do(h, rt.Method, p)
				if resp.StatusCode == http.StatusNotFound && p == versioned {
					t.Errorf("%s %s: 404 — route not registered", rt.Method, p)
				}
				if resp.StatusCode == http.StatusMethodNotAllowed {
					t.Errorf("%s %s: 405 — method table rejects its own method", rt.Method, p)
				}
			}
		})

		t.Run("method_enforced"+strings.ReplaceAll(versioned, "/", "_"), func(t *testing.T) {
			// No streamfreq route allows DELETE, so it is the universal
			// wrong method — a 404 here would mean routing is conflated
			// with method dispatch.
			for _, p := range paths {
				resp := do(h, http.MethodDelete, p)
				if resp.StatusCode != http.StatusMethodNotAllowed {
					t.Errorf("DELETE %s: status %d, want 405", p, resp.StatusCode)
					continue
				}
				allow := resp.Header.Get("Allow")
				if !strings.Contains(allow, rt.Method) {
					t.Errorf("DELETE %s: Allow %q does not offer %s", p, allow, rt.Method)
				}
				checkEnvelope(t, resp, "DELETE "+p)
			}
		})
	}
}

// ConformMetrics probes the Prometheus scrape contract on GET
// /v1/metrics: a 200 with the text exposition content type, a body the
// strict in-tree parser accepts (every series well-formed, histograms
// cumulative), and — when want names are given — those families
// present in the scrape. Daemons always register the endpoint through
// serve.NewAPI, so every configuration runs through this.
func ConformMetrics(t *testing.T, h http.Handler, want ...string) {
	t.Helper()
	resp := do(h, http.MethodGet, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("GET /v1/metrics: Content-Type %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET /v1/metrics: reading body: %v", err)
	}
	fams, err := obs.ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("GET /v1/metrics: body is not valid exposition format: %v\n%s", err, body)
	}
	for name, f := range fams {
		if len(f.Series) == 0 {
			t.Errorf("family %s has a HELP/TYPE header but no samples", name)
		}
	}
	for _, name := range want {
		if _, ok := fams[name]; !ok {
			t.Errorf("GET /v1/metrics: family %s missing from the scrape", name)
		}
	}
}

// ConformIngest probes the shared ingest media-type contract on one
// ingest path: an undeclared Content-Type must be an enveloped 415,
// not a decode attempt.
func ConformIngest(t *testing.T, h http.Handler, path string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("POST %s with application/json: status %d, want 415", path, resp.StatusCode)
	}
	checkEnvelope(t, resp, "POST "+path)
}
