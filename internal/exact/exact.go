// Package exact implements the exact frequency counter used as ground
// truth by the experiment harness, and as the "infeasible" baseline the
// paper's introduction motivates against: it keeps one counter per
// distinct item, which is precisely what streaming algorithms avoid.
package exact

import (
	"streamfreq/internal/core"
)

// Counter counts every distinct item exactly with a hash map.
// It implements core.Summary and core.Merger.
type Counter struct {
	counts map[core.Item]int64
	n      int64
}

// New returns an empty exact counter.
func New() *Counter {
	return &Counter{counts: make(map[core.Item]int64)}
}

// Name implements core.Summary.
func (c *Counter) Name() string { return "EXACT" }

// Update adds count occurrences of x. Negative counts are allowed
// (exact counting is trivially a turnstile algorithm); entries that reach
// zero are removed so Distinct reflects the live support.
func (c *Counter) Update(x core.Item, count int64) {
	c.n += count
	nc := c.counts[x] + count
	if nc == 0 {
		delete(c.counts, x)
		return
	}
	c.counts[x] = nc
}

// Estimate returns the exact count of x.
func (c *Counter) Estimate(x core.Item) int64 { return c.counts[x] }

// N returns the total count processed.
func (c *Counter) N() int64 { return c.n }

// Distinct returns the number of distinct items with nonzero count.
func (c *Counter) Distinct() int { return len(c.counts) }

// Query returns all items with count ≥ threshold, descending by count.
func (c *Counter) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for it, ct := range c.counts {
		if ct >= threshold {
			out = append(out, core.ItemCount{Item: it, Count: ct})
		}
	}
	core.SortByCountDesc(out)
	return out
}

// TopK returns the k most frequent items in descending order.
func (c *Counter) TopK(k int) []core.ItemCount {
	all := make([]core.ItemCount, 0, len(c.counts))
	for it, ct := range c.counts {
		all = append(all, core.ItemCount{Item: it, Count: ct})
	}
	core.SortByCountDesc(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Bytes reports the approximate footprint: map overhead is charged at
// 2× the entry payload, a conventional accounting also used for the
// counter-based algorithms so space comparisons are apples-to-apples.
func (c *Counter) Bytes() int {
	const entry = 16 // 8-byte key + 8-byte count
	return 2 * entry * len(c.counts)
}

// Clone returns an independent deep copy.
func (c *Counter) Clone() *Counter {
	nc := &Counter{n: c.n, counts: make(map[core.Item]int64, len(c.counts))}
	for it, ct := range c.counts {
		nc.counts[it] = ct
	}
	return nc
}

// Snapshot implements core.Snapshotter.
func (c *Counter) Snapshot() core.Summary { return c.Clone() }

// Merge adds another exact counter into this one.
func (c *Counter) Merge(other core.Summary) error {
	o, ok := other.(*Counter)
	if !ok {
		return core.Incompatible("exact: cannot merge %T", other)
	}
	for it, ct := range o.counts {
		c.Update(it, ct)
	}
	// Update already accumulated o's total into n item by item.
	return nil
}

// SecondMoment returns F2 = Σ count², the quantity governing Count-Sketch
// error (used by property tests to compute expected error bounds).
func (c *Counter) SecondMoment() float64 {
	var f2 float64
	for _, ct := range c.counts {
		f2 += float64(ct) * float64(ct)
	}
	return f2
}

// ResidualSecondMoment returns Σ count² excluding the k largest counts,
// the residual F2 term in the Count-Sketch bound.
func (c *Counter) ResidualSecondMoment(k int) float64 {
	top := c.TopK(len(c.counts))
	var f2 float64
	for i := k; i < len(top); i++ {
		f2 += float64(top[i].Count) * float64(top[i].Count)
	}
	return f2
}
