package exact

import (
	"testing"

	"streamfreq/internal/core"
)

func TestBasicCounting(t *testing.T) {
	c := New()
	c.Update(1, 3)
	c.Update(2, 1)
	c.Update(1, 2)
	if got := c.Estimate(1); got != 5 {
		t.Errorf("Estimate(1) = %d, want 5", got)
	}
	if got := c.Estimate(2); got != 1 {
		t.Errorf("Estimate(2) = %d, want 1", got)
	}
	if got := c.Estimate(99); got != 0 {
		t.Errorf("Estimate(99) = %d, want 0", got)
	}
	if c.N() != 6 {
		t.Errorf("N = %d, want 6", c.N())
	}
	if c.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", c.Distinct())
	}
}

func TestNegativeUpdatesRemoveEntries(t *testing.T) {
	c := New()
	c.Update(1, 3)
	c.Update(1, -3)
	if c.Distinct() != 0 {
		t.Errorf("Distinct = %d after cancel, want 0", c.Distinct())
	}
	if c.Estimate(1) != 0 {
		t.Errorf("Estimate = %d after cancel", c.Estimate(1))
	}
}

func TestQueryAndTopK(t *testing.T) {
	c := New()
	for i, n := range []int64{10, 7, 7, 3, 1} {
		c.Update(core.Item(i+1), n)
	}
	q := c.Query(7)
	if len(q) != 3 {
		t.Fatalf("Query(7) returned %d items", len(q))
	}
	if q[0].Item != 1 || q[0].Count != 10 {
		t.Errorf("first = %+v", q[0])
	}
	// Ties broken by ascending item id.
	if q[1].Item != 2 || q[2].Item != 3 {
		t.Errorf("tie order wrong: %+v", q[1:])
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 2 {
		t.Errorf("TopK(2) = %+v", top)
	}
	if got := c.TopK(100); len(got) != 5 {
		t.Errorf("TopK(100) length %d", len(got))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Update(1, 5)
	a.Update(2, 2)
	b.Update(1, 5)
	b.Update(3, 9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate(1) != 10 || a.Estimate(2) != 2 || a.Estimate(3) != 9 {
		t.Errorf("merged counts wrong: %d %d %d", a.Estimate(1), a.Estimate(2), a.Estimate(3))
	}
	if a.N() != 21 {
		t.Errorf("N = %d, want 21", a.N())
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New()
	if err := a.Merge(fakeSummary{}); err == nil {
		t.Error("expected incompatibility error")
	}
}

type fakeSummary struct{}

func (fakeSummary) Update(core.Item, int64)      {}
func (fakeSummary) Estimate(core.Item) int64     { return 0 }
func (fakeSummary) Query(int64) []core.ItemCount { return nil }
func (fakeSummary) N() int64                     { return 0 }
func (fakeSummary) Bytes() int                   { return 0 }
func (fakeSummary) Name() string                 { return "fake" }

func TestMoments(t *testing.T) {
	c := New()
	c.Update(1, 3)
	c.Update(2, 4)
	if f2 := c.SecondMoment(); f2 != 25 {
		t.Errorf("F2 = %v, want 25", f2)
	}
	if r := c.ResidualSecondMoment(1); r != 9 {
		t.Errorf("residual F2 = %v, want 9", r)
	}
	if r := c.ResidualSecondMoment(2); r != 0 {
		t.Errorf("residual F2 = %v, want 0", r)
	}
}

func TestBytesGrowsWithEntries(t *testing.T) {
	c := New()
	b0 := c.Bytes()
	for i := 0; i < 100; i++ {
		c.Update(core.Item(i), 1)
	}
	if c.Bytes() <= b0 {
		t.Error("Bytes did not grow with entries")
	}
}
