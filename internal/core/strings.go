package core

// String keys. The algorithms operate on 64-bit Item identifiers; real
// deployments stream strings (search queries, URLs, flow 5-tuples).
// HashBytes folds arbitrary byte keys to Items with FNV-1a strengthened
// by a 64-bit finalizer, matching how the paper's query-log experiments
// pre-hash their inputs.
//
// Collisions merge two keys' counts. With a 64-bit digest, a stream of a
// billion distinct keys collides with probability < 3·10⁻², and any
// specific pair with probability 2⁻⁶⁴ — far below the summaries' own
// error terms.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashBytes maps a byte key to an Item.
func HashBytes(key []byte) Item {
	var h uint64 = fnvOffset
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return Item(mix(h))
}

// HashString maps a string key to an Item without allocating.
func HashString(key string) Item {
	var h uint64 = fnvOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return Item(mix(h))
}

// mix is the SplitMix64 finalizer: FNV-1a alone has weak low-bit
// avalanche for short keys, which would bias sketch bucket hashes.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
