package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamfreq/internal/ring"
)

// Pipelined is the lock-free ingest plane: updates are staged into
// per-shard MPSC rings (ring.Ring) by the writers and applied by one
// drainer goroutine per shard, so concurrent writers never contend on
// a summary mutex — the write path is an atomic position claim, a WAL
// append (when persisting), and a scatter into pre-owned ring slots.
//
// Ordering is the whole design. One global cursor allocates positions
// across ALL rings: a claimed position occupies the same slot index in
// every shard's ring (staged empty where the batch has no items for
// that shard), so each drainer applies positions in global claim
// order. Per-shard apply order therefore equals the order a purely
// sequential Sharded ingest would produce with the same batch
// boundaries, which keeps the pipelined plane bit-identical to
// sequential UpdateBatch — the PR-1 batched==scalar property survives
// verbatim (pinned by TestPipelinedMatchesSequential).
//
// Durability keeps the same WAL-append-before-apply contract as the
// locked wrappers, enforced by a ticket on the claim position: a
// writer that claimed position g waits for walTurn == g, appends,
// then advances walTurn — so log order equals claim order equals
// apply order, and the append happens before the batch is even staged,
// let alone applied. The log can only ever be AHEAD of memory, which
// is the direction crash recovery requires (a torn tail loses
// acknowledged-but-unapplied updates the same way it loses
// acknowledged-but-unsynced ones).
//
// Snapshots, checkpoints, and restores quiesce the plane with a
// barrier: a control payload claimed at one position parks every
// drainer exactly there, so the coordinator observes all shards at a
// single cross-shard stream position — everything claimed before the
// barrier applied, nothing at or after it. With persistence on, the
// barrier also holds the WAL ticket at its position, so the log cut
// it hands to persist.Checkpoint equals the cloned state's N exactly.
//
// Reads without snapshot serving lock the target shard and see the
// applied prefix (which may trail acknowledged claims by in-flight
// ring occupancy); ServeSnapshots reads are epoch snapshots taken at
// barriers and are therefore claim-exact at refresh time. Drain blocks
// until everything acknowledged so far is applied; tests and
// single-writer hand-offs use it as the flush point.
type Pipelined struct {
	shards []Summary
	locks  []sync.Mutex
	rings  []*ring.Ring[Item]
	mask   uint64

	// cursor allocates claim positions (batches, weighted updates, and
	// barriers all claim); claimedN is the acknowledged stream position
	// in items. cursor doubles as the serving snapshot's version: a
	// snapshot taken at barrier position g has version g+1, and the
	// plane is clean iff no claim happened since (cursor still g+1).
	cursor   atomic.Uint64
	claimedN atomic.Int64

	// walTurn is the WAL ticket: the claim position allowed to append
	// next. Only meaningful when persist is set.
	walTurn atomic.Uint64
	persist Persister

	// life gates the staging fast path: writers and barriers hold the
	// read side across claim+stage+publish; Close takes the write side
	// to stop the plane, after which writers fall back to the
	// synchronous path under syncMu.
	life    sync.RWMutex
	stopped bool
	syncMu  sync.Mutex
	wg      sync.WaitGroup

	// Snapshot serving state, mirroring Sharded.
	serving   bool
	maxStale  time.Duration
	snap      atomic.Pointer[shardedSnapshot]
	refreshMu sync.Mutex
	refreshes atomic.Int64
}

// DefaultRingCapacity is the staging-ring depth per shard: deep enough
// that writers only block when the drainer is a full ring behind,
// shallow enough that the staged backlog stays cache-resident.
const DefaultRingCapacity = 32

// ringShedItems is the per-slot buffer capacity bound: a slot buffer
// grown past two default batches by an outlier is shed on release
// instead of being pooled forever (the ring-level twin of the
// Sharded scatter-buffer shed).
const ringShedItems = 2 * DefaultBatchSize

// pipeCtl is a barrier or shutdown control payload staged into every
// ring at one claim position.
type pipeCtl struct {
	stop     bool
	pending  atomic.Int32  // drainers yet to arrive
	quiesced chan struct{} // closed when the last drainer arrives
	release  chan struct{} // closed by the coordinator to resume
}

// NewPipelined builds a pipelined ingest plane with shards
// power-of-two shard summaries (same factory contract as NewSharded:
// mergeable summaries with identical parameters) and starts one
// drainer goroutine per shard. Call Close to stop the drainers; a
// closed plane keeps working through a synchronous fallback path.
func NewPipelined(shards int, factory func() Summary) *Pipelined {
	return newPipelined(shards, DefaultRingCapacity, factory)
}

// newPipelined is NewPipelined with the ring depth exposed for tests
// (tiny rings force wrap-around and backpressure).
func newPipelined(shards, ringCap int, factory func() Summary) *Pipelined {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("core: Pipelined requires a positive power-of-two shard count")
	}
	p := &Pipelined{
		shards: make([]Summary, shards),
		locks:  make([]sync.Mutex, shards),
		rings:  make([]*ring.Ring[Item], shards),
		mask:   uint64(shards - 1),
	}
	for i := range p.shards {
		p.shards[i] = factory()
		p.rings[i] = ring.New[Item](ringCap, ringShedItems)
	}
	p.wg.Add(shards)
	for i := range p.rings {
		go p.drainLoop(i)
	}
	return p
}

// drainLoop is shard i's consumer: it walks claim positions in order,
// applying batch payloads under the shard lock and parking at control
// payloads until the coordinator releases them.
func (p *Pipelined) drainLoop(i int) {
	defer p.wg.Done()
	r := p.rings[i]
	for pos := uint64(0); ; pos++ {
		s := r.Await(pos)
		switch s.Kind {
		case ring.KindBatch:
			p.locks[i].Lock()
			UpdateAll(p.shards[i], s.Items)
			p.locks[i].Unlock()
		case ring.KindWeighted:
			p.locks[i].Lock()
			p.shards[i].Update(s.X, s.Count)
			p.locks[i].Unlock()
		case ring.KindControl:
			ctl := s.Ctl.(*pipeCtl)
			stop := ctl.stop
			if ctl.pending.Add(-1) == 0 {
				close(ctl.quiesced)
			}
			if stop {
				r.Release(pos)
				return
			}
			<-ctl.release
		}
		r.Release(pos)
	}
}

// awaitTurn spins until the WAL ticket reaches pos.
func (p *Pipelined) awaitTurn(pos uint64) {
	for spins := 0; p.walTurn.Load() != pos; spins++ {
		ring.Backoff(spins)
	}
}

// Name implements Summary.
func (p *Pipelined) Name() string { return p.shards[0].Name() + "-pipelined" }

// UpdateBatch implements BatchUpdater: claim a position, append to the
// WAL in claim order (when persisting), scatter the batch into the
// claimed slot of each shard ring in one hashing pass, and publish.
// The batch is acknowledged once staged; Drain (or any barrier) is the
// flush point. items is copied out before return and may be reused by
// the caller, matching the locked wrappers' contract.
func (p *Pipelined) UpdateBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	p.life.RLock()
	if p.stopped {
		p.life.RUnlock()
		p.syncUpdateBatch(items)
		return
	}
	pos := p.cursor.Add(1) - 1
	p.claimedN.Add(int64(len(items)))
	if p.persist != nil {
		p.awaitTurn(pos)
		p.persist.AppendBatch(items)
		p.walTurn.Store(pos + 1)
	}
	if len(p.rings) == 1 {
		s := p.rings[0].Acquire(pos)
		s.Kind = ring.KindBatch
		s.Items = append(s.Items, items...)
		p.rings[0].Publish(pos)
		p.life.RUnlock()
		return
	}
	// Acquire the position's slot in every ring up front (backpressure
	// happens here, before any item moves), then scatter with a single
	// hash-and-append pass — SlotAt is two loads once the slot is ours.
	for _, r := range p.rings {
		r.Acquire(pos).Kind = ring.KindEmpty
	}
	for _, x := range items {
		s := p.rings[shardIndex(x, p.mask)].SlotAt(pos)
		s.Kind = ring.KindBatch
		s.Items = append(s.Items, x)
	}
	for _, r := range p.rings {
		r.Publish(pos)
	}
	p.life.RUnlock()
}

// Update implements Summary for weighted (turnstile) arrivals. A
// weighted update claims a full position — it must, to keep every
// ring's slot sequence gap-free — so the scalar path is not the fast
// path here any more than it was under the locked wrappers.
func (p *Pipelined) Update(x Item, count int64) {
	p.life.RLock()
	if p.stopped {
		p.life.RUnlock()
		p.syncUpdate(x, count)
		return
	}
	pos := p.cursor.Add(1) - 1
	p.claimedN.Add(count)
	if p.persist != nil {
		p.awaitTurn(pos)
		p.persist.AppendUpdate(x, count)
		p.walTurn.Store(pos + 1)
	}
	target := shardIndex(x, p.mask)
	for i, r := range p.rings {
		s := r.Acquire(pos)
		if uint64(i) == target {
			s.Kind = ring.KindWeighted
			s.X = x
			s.Count = count
		} else {
			s.Kind = ring.KindEmpty
		}
	}
	for _, r := range p.rings {
		r.Publish(pos)
	}
	p.life.RUnlock()
}

// syncUpdateBatch is the post-Close fallback: scatter and apply
// synchronously under syncMu (the drainers are gone). cursor is still
// advanced so the serving snapshot's dirtiness check stays exact.
func (p *Pipelined) syncUpdateBatch(items []Item) {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	if p.persist != nil {
		p.persist.AppendBatch(items)
	}
	p.cursor.Add(1)
	p.claimedN.Add(int64(len(items)))
	bufs := make([][]Item, len(p.shards))
	for _, x := range items {
		i := shardIndex(x, p.mask)
		bufs[i] = append(bufs[i], x)
	}
	for i, b := range bufs {
		if len(b) == 0 {
			continue
		}
		p.locks[i].Lock()
		UpdateAll(p.shards[i], b)
		p.locks[i].Unlock()
	}
}

func (p *Pipelined) syncUpdate(x Item, count int64) {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	if p.persist != nil {
		p.persist.AppendUpdate(x, count)
	}
	p.cursor.Add(1)
	p.claimedN.Add(count)
	i := shardIndex(x, p.mask)
	p.locks[i].Lock()
	p.shards[i].Update(x, count)
	p.locks[i].Unlock()
}

// quiesce claims one position, parks every drainer exactly there, and
// runs f(pos) with the plane frozen: all claims before pos applied,
// none at or after. With persistence on it holds the WAL ticket at pos
// across f, so the log position f observes equals the applied state.
// Returns false (f not run) when the plane is stopped.
func (p *Pipelined) quiesce(f func(pos uint64)) bool {
	p.life.RLock()
	if p.stopped {
		p.life.RUnlock()
		return false
	}
	pos := p.cursor.Add(1) - 1
	if p.persist != nil {
		p.awaitTurn(pos)
	}
	ctl := &pipeCtl{quiesced: make(chan struct{}), release: make(chan struct{})}
	ctl.pending.Store(int32(len(p.rings)))
	for _, r := range p.rings {
		s := r.Acquire(pos)
		s.Kind = ring.KindControl
		s.Ctl = ctl
		r.Publish(pos)
	}
	<-ctl.quiesced
	f(pos)
	if p.persist != nil {
		p.walTurn.Store(pos + 1)
	}
	close(ctl.release)
	p.life.RUnlock()
	return true
}

// Drain blocks until every update acknowledged before the call is
// applied to the shard summaries. On a closed plane it returns
// immediately (Close already drained).
func (p *Pipelined) Drain() {
	p.quiesce(func(uint64) {})
}

// Close stops the drainers after applying everything acknowledged so
// far. Further updates are applied synchronously; further barriers
// observe the final state directly. Close is idempotent.
func (p *Pipelined) Close() {
	p.life.Lock()
	if p.stopped {
		p.life.Unlock()
		return
	}
	pos := p.cursor.Add(1) - 1
	if p.persist != nil {
		p.awaitTurn(pos)
		p.walTurn.Store(pos + 1)
	}
	ctl := &pipeCtl{stop: true, quiesced: make(chan struct{})}
	ctl.pending.Store(int32(len(p.rings)))
	for _, r := range p.rings {
		s := r.Acquire(pos)
		s.Kind = ring.KindControl
		s.Ctl = ctl
		r.Publish(pos)
	}
	p.stopped = true
	p.life.Unlock()
	p.wg.Wait()
}

// PersistTo routes every subsequent update through pr before it is
// staged, in claim order; see Persister. Setup-time only (after
// Recover, before the plane is shared), like the locked wrappers.
func (p *Pipelined) PersistTo(pr Persister) {
	p.persist = pr
	p.walTurn.Store(p.cursor.Load())
}

// SnapshotBarrier clones every shard at one quiesced cross-shard
// position and hands the clones' total stream position to cut; the
// pipelined counterpart of Sharded.SnapshotBarrier, with the WAL
// ticket held across the cut so cut's n equals the log's position
// exactly. cut may be nil.
func (p *Pipelined) SnapshotBarrier(cut func(n int64)) []Summary {
	var views []Summary
	clone := func(uint64) {
		views = make([]Summary, len(p.shards))
		var n int64
		for i, sh := range p.shards {
			views[i] = mustSnapshot(sh)
			n += views[i].N()
		}
		if cut != nil {
			cut(n)
		}
	}
	if !p.quiesce(clone) {
		// Stopped: writers go through syncMu, so holding it freezes the
		// plane just as completely as a barrier did.
		p.syncMu.Lock()
		defer p.syncMu.Unlock()
		clone(0)
	}
	return views
}

// RestoreState replaces each shard's summary with the corresponding
// recovered shard and resets the acknowledged stream position to the
// restored state's. Same shard-count contract as Sharded.RestoreState;
// setup-time only (startup recovery, before concurrent writers).
func (p *Pipelined) RestoreState(shards []Summary) error {
	if len(shards) != len(p.shards) {
		return fmt.Errorf("core: Pipelined restore needs %d shards, got %d (restart with the checkpoint's shard count)",
			len(p.shards), len(shards))
	}
	swap := func(uint64) {
		var n int64
		for i, sum := range shards {
			p.locks[i].Lock()
			p.shards[i] = sum
			p.locks[i].Unlock()
			n += sum.N()
		}
		p.claimedN.Store(n)
	}
	if !p.quiesce(swap) {
		p.syncMu.Lock()
		swap(0)
		p.syncMu.Unlock()
	}
	if p.serving {
		p.RefreshSnapshot()
	}
	return nil
}

// LiveN reports the acknowledged (claimed) stream position — the
// position recovery's continuity accounting checks — which may lead
// the applied position by the in-flight ring occupancy.
func (p *Pipelined) LiveN() int64 { return p.claimedN.Load() }

// ServeSnapshots enables snapshot-based reads with bounded staleness,
// mirroring Sharded.ServeSnapshots; refreshes quiesce the plane, so a
// refreshed view is exact as of every previously acknowledged update.
// Call before the plane is shared. Returns p for chaining.
func (p *Pipelined) ServeSnapshots(maxStale time.Duration) *Pipelined {
	p.serving = true
	p.maxStale = maxStale
	p.snap.Store(p.barrierClone())
	p.refreshes.Add(1)
	return p
}

// barrierClone takes a quiesced per-shard snapshot set. The version is
// the cursor value right after the barrier's claim: the plane is clean
// exactly while no further position has been claimed.
func (p *Pipelined) barrierClone() *shardedSnapshot {
	var ns *shardedSnapshot
	clone := func(pos uint64) {
		views := make([]Summary, len(p.shards))
		for i, sh := range p.shards {
			views[i] = mustSnapshot(sh)
		}
		ns = &shardedSnapshot{views: views, mask: p.mask, version: pos + 1, taken: time.Now()}
	}
	if !p.quiesce(clone) {
		p.syncMu.Lock()
		defer p.syncMu.Unlock()
		clone(p.cursor.Load() - 1)
	}
	return ns
}

// reader returns the snapshot view reads are answered from, refreshing
// when it is both dirty and past the staleness bound; nil when
// snapshot serving is off. Same protocol as Sharded.reader, with the
// claim cursor as the version clock.
func (p *Pipelined) reader() *shardedSnapshot {
	if !p.serving {
		return nil
	}
	v := p.snap.Load()
	if v.version == p.cursor.Load() || time.Since(v.taken) <= p.maxStale {
		return v
	}
	return p.refresh()
}

// refresh serializes refreshers on refreshMu (double-checked, so a
// read storm pays one barrier) and publishes a fresh quiesced view.
func (p *Pipelined) refresh() *shardedSnapshot {
	p.refreshMu.Lock()
	defer p.refreshMu.Unlock()
	if cur := p.snap.Load(); cur.version == p.cursor.Load() {
		return cur
	}
	ns := p.barrierClone()
	p.snap.Store(ns)
	p.refreshes.Add(1)
	return ns
}

// RefreshSnapshot forces a fresh quiesced serving view and returns it;
// nil when serving is not enabled. Same contract as the locked
// wrappers — freqd's POST /refresh lands here.
func (p *Pipelined) RefreshSnapshot() ReadView {
	if !p.serving {
		return nil
	}
	p.refreshMu.Lock()
	defer p.refreshMu.Unlock()
	ns := p.barrierClone()
	p.snap.Store(ns)
	p.refreshes.Add(1)
	return ns
}

// ServingView returns the current serving epoch as an immutable
// ReadView, or nil when snapshot serving is not enabled.
func (p *Pipelined) ServingView() ReadView {
	if v := p.reader(); v != nil {
		return v
	}
	return nil
}

// SnapshotStats reports the serving view's freshness; all zero when
// serving is not enabled.
func (p *Pipelined) SnapshotStats() SnapshotStats {
	if !p.serving {
		return SnapshotStats{}
	}
	v := p.snap.Load()
	return SnapshotStats{
		Serving:   true,
		AsOfN:     v.N(),
		Age:       time.Since(v.taken),
		Refreshes: p.refreshes.Load(),
		MaxStale:  p.maxStale,
	}
}

// Snapshot implements Snapshotter by merging a quiesced per-shard
// clone set into one summary; see Sharded.Snapshot for the Merger
// contract.
func (p *Pipelined) Snapshot() Summary {
	views := p.SnapshotBarrier(nil)
	merged := views[0]
	if len(views) == 1 {
		return merged
	}
	m, ok := merged.(Merger)
	if !ok {
		panic("core: Pipelined.Snapshot requires a Merger inner summary, " + merged.Name() + " is not")
	}
	for _, v := range views[1:] {
		if err := m.Merge(v); err != nil {
			panic("core: Pipelined.Snapshot merge failed: " + err.Error())
		}
	}
	return merged
}

// Estimate queries the item's shard — through the serving snapshot
// when enabled. Locked reads see the applied prefix; use a barrier
// (Drain, RefreshSnapshot) first when claim-exactness matters.
func (p *Pipelined) Estimate(x Item) int64 {
	if v := p.reader(); v != nil {
		return v.Estimate(x)
	}
	i := shardIndex(x, p.mask)
	p.locks[i].Lock()
	defer p.locks[i].Unlock()
	return p.shards[i].Estimate(x)
}

// Query gathers every shard's report (the snapshot views' when
// serving); see Estimate for the applied-prefix caveat.
func (p *Pipelined) Query(threshold int64) []ItemCount {
	if v := p.reader(); v != nil {
		return v.Query(threshold)
	}
	var out []ItemCount
	for i := range p.shards {
		p.locks[i].Lock()
		out = append(out, p.shards[i].Query(threshold)...)
		p.locks[i].Unlock()
	}
	SortByCountDesc(out)
	return out
}

// N sums the shard totals (snapshot totals when serving) — the applied
// stream position; LiveN reports the acknowledged one.
func (p *Pipelined) N() int64 {
	if v := p.reader(); v != nil {
		return v.N()
	}
	return p.appliedN()
}

func (p *Pipelined) appliedN() int64 {
	var n int64
	for i := range p.shards {
		p.locks[i].Lock()
		n += p.shards[i].N()
		p.locks[i].Unlock()
	}
	return n
}

// Bytes sums the shard footprints, the staging rings' retained buffer
// capacity, and — when serving — the retained snapshot views.
func (p *Pipelined) Bytes() int {
	var total int
	for i := range p.shards {
		p.locks[i].Lock()
		total += p.shards[i].Bytes()
		p.locks[i].Unlock()
	}
	for _, r := range p.rings {
		total += int(r.Retained()) * 8 // Item is 8 bytes
	}
	if p.serving {
		for _, view := range p.snap.Load().views {
			total += view.Bytes()
		}
	}
	return total
}

// PipelineStats describes the ingest plane's live state; freqd /stats
// reports it.
type PipelineStats struct {
	// Shards is the shard (and drainer) count; RingCapacity the
	// staging-ring depth per shard.
	Shards       int
	RingCapacity int
	// ClaimedN is the acknowledged stream position, AppliedN the
	// position the shard summaries have reached; the difference is the
	// staged in-flight backlog.
	ClaimedN int64
	AppliedN int64
	// RingBytes is the staging rings' retained buffer capacity.
	RingBytes int
	// RingOccupancy is the total in-flight slot count across rings —
	// positions claimed by writers and not yet released by drainers
	// (the drainer lag in positions); ShardOccupancy breaks it out per
	// shard.
	RingOccupancy  int64
	ShardOccupancy []int64
}

// PipelineStats reports the plane's claimed/applied positions and
// staging footprint.
func (p *Pipelined) PipelineStats() PipelineStats {
	st := PipelineStats{
		Shards:         len(p.shards),
		RingCapacity:   p.rings[0].Cap(),
		ClaimedN:       p.claimedN.Load(),
		AppliedN:       p.appliedN(),
		ShardOccupancy: make([]int64, len(p.rings)),
	}
	cursor := p.cursor.Load()
	for i, r := range p.rings {
		st.RingBytes += int(r.Retained()) * 8
		// Reads race benignly: the gauge wants a recent value, not a
		// barrier. Clamp at zero in case released advanced past the
		// cursor snapshot between the two loads.
		occ := int64(cursor) - int64(r.Released())
		if occ < 0 {
			occ = 0
		}
		st.ShardOccupancy[i] = occ
		st.RingOccupancy += occ
	}
	return st
}
