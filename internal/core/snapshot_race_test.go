package core_test

// Race coverage for the snapshot serving layer: readers hammer the
// snapshot-served Query/Estimate/N path (and take their own clones, and
// mutate those clones) while writers batch-ingest — under -race this
// proves the epoch publication protocol (atomic snapshot pointer,
// version counter bumped under the ingest lock, double-checked refresh)
// publishes no unguarded state. After ingest quiesces, a forced refresh
// must make reads exactly equal to a sequential reference run, using the
// same exact-counter methodology as concurrent_race_test.go.

import (
	"sync"
	"testing"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/exact"
)

// hammerSnapshotReads splits stream across raceWriters batch writers
// while reader goroutines spin on the snapshot-served read path and on
// Snapshot() clones of their own (which they update, proving clone
// independence under race).
func hammerSnapshotReads(t *testing.T, s core.Summary, stream []core.Item) {
	t.Helper()
	b := s.(core.BatchUpdater)
	sn := s.(core.Snapshotter)

	var wg sync.WaitGroup
	share := (len(stream) + raceWriters - 1) / raceWriters
	for w := 0; w < raceWriters; w++ {
		lo := min(w*share, len(stream))
		hi := min(lo+share, len(stream))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []core.Item) {
			defer wg.Done()
			for len(part) > 0 {
				n := min(311, len(part)) // odd batch length straddles windows
				b.UpdateBatch(part[:n])
				part = part[n:]
			}
		}(stream[lo:hi])
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func(id int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := s.N()
				_ = s.Estimate(core.Item(uint64(i)))
				rep := s.Query(n/100 + 1)
				_ = rep
				if id == 0 && i%64 == 0 {
					// A private clone taken mid-ingest must be mutable
					// without disturbing the parent.
					clone := sn.Snapshot()
					clone.Update(core.Item(1), 1)
					_ = clone.Query(1)
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
}

func TestConcurrentSnapshotReadsUnderIngest(t *testing.T) {
	stream := raceStream(t, 200_000)
	for _, maxStale := range []time.Duration{0, 2 * time.Millisecond, time.Hour} {
		s := core.NewConcurrent(exact.New()).ServeSnapshots(maxStale)
		hammerSnapshotReads(t, s, stream)
		s.RefreshSnapshot()
		checkAgainstSequential(t, s, stream, int64(len(stream)/1000))
		if st := s.SnapshotStats(); !st.Serving || st.AsOfN != int64(len(stream)) {
			t.Fatalf("maxStale=%v: SnapshotStats = %+v, want serving view of full stream", maxStale, st)
		}
	}
}

func TestShardedSnapshotReadsUnderIngest(t *testing.T) {
	stream := raceStream(t, 200_000)
	for _, maxStale := range []time.Duration{0, 2 * time.Millisecond, time.Hour} {
		s := core.NewSharded(8, func() core.Summary { return exact.New() }).ServeSnapshots(maxStale)
		hammerSnapshotReads(t, s, stream)
		s.RefreshSnapshot()
		checkAgainstSequential(t, s, stream, int64(len(stream)/1000))
		if st := s.SnapshotStats(); !st.Serving || st.AsOfN != int64(len(stream)) {
			t.Fatalf("maxStale=%v: SnapshotStats = %+v, want serving view of full stream", maxStale, st)
		}
	}
}

// TestShardedSnapshotMergeUnderIngest takes merged whole-stream
// snapshots (Sharded.Snapshot → per-shard clones folded by Merge) while
// ingest is running: every merged clone must be a self-consistent
// Space-Saving summary (N equals its tracked mass plus nothing negative,
// and its report is monotone in the threshold), and the final one must
// obey the no-underestimate guarantee for the true heavy hitters.
func TestShardedSnapshotMergeUnderIngest(t *testing.T) {
	stream := raceStream(t, 200_000)
	const k = 256
	s := core.NewSharded(4, func() core.Summary { return counters.NewSpaceSavingHeap(k) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		core.UpdateBatches(s, stream, 509)
	}()
	var sg sync.WaitGroup
	sg.Add(1)
	go func() {
		defer sg.Done()
		var lastN int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snapshot()
			if n := snap.N(); n < lastN {
				t.Errorf("merged snapshot N went backwards: %d after %d", n, lastN)
				return
			} else {
				lastN = n
			}
		}
	}()
	wg.Wait()
	close(stop)
	sg.Wait()
	if t.Failed() {
		return
	}

	final := s.Snapshot()
	if got, want := final.N(), int64(len(stream)); got != want {
		t.Fatalf("final merged snapshot N = %d, want %d", got, want)
	}
	ref := exact.New()
	for _, it := range stream {
		ref.Update(it, 1)
	}
	for _, ic := range ref.TopK(16) {
		if est := final.Estimate(ic.Item); est < ic.Count {
			t.Fatalf("merged snapshot underestimated heavy item %d: %d < true %d", ic.Item, est, ic.Count)
		}
	}
}

// BenchmarkSnapshotServing quantifies the acceptance bound "readers
// never block writers": ingest throughput under a fixed query load
// served from snapshots must stay within a few percent of ingest-only
// (compare the sub-benchmarks' ns/op). The reader is paced by a ticker —
// a serving workload, not a spin loop — so the comparison isolates what
// the snapshot design controls (blocking on the ingest lock, clone
// cost) from raw CPU competition, and stays meaningful on small-core CI
// machines. The mutex-reads variant is the before picture: the same
// query load taking the ingest lock per read.
func BenchmarkSnapshotServing(b *testing.B) {
	stream := raceStream(b, 1<<20)
	const batch = 4096
	const queryInterval = 2 * time.Millisecond // 500 queries/s + 500 estimates/s

	ingest := func(b *testing.B, s core.Summary) {
		bu := s.(core.BatchUpdater)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * batch) % (len(stream) - batch)
			bu.UpdateBatch(stream[lo : lo+batch])
		}
		b.StopTimer()
	}
	withReader := func(b *testing.B, s *core.Concurrent) {
		stop := make(chan struct{})
		var rg sync.WaitGroup
		rg.Add(1)
		go func() {
			defer rg.Done()
			tick := time.NewTicker(queryInterval)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = s.Estimate(core.Item(uint64(i)))
					_ = s.Query(s.N() / 100)
				}
			}
		}()
		ingest(b, s)
		close(stop)
		rg.Wait()
	}

	b.Run("ingest-only", func(b *testing.B) {
		ingest(b, core.NewConcurrent(counters.NewSpaceSavingHeap(1024)))
	})
	b.Run("ingest+mutex-reads", func(b *testing.B) {
		withReader(b, core.NewConcurrent(counters.NewSpaceSavingHeap(1024)))
	})
	b.Run("ingest+snapshot-reads", func(b *testing.B) {
		withReader(b, core.NewConcurrent(counters.NewSpaceSavingHeap(1024)).
			ServeSnapshots(100*time.Millisecond))
	})
}
