package core

import (
	"fmt"
	"time"
)

// Durability integration for the concurrency wrappers. The wrappers do
// not know how bytes reach disk — internal/persist does — but write-ahead
// logging needs three guarantees only the wrappers can give, because they
// own the ingest locks:
//
//   - every ingested update is offered to the log *before* it is applied
//     (WAL-append-before-apply), in apply order, so the log is always a
//     superset-prefix of memory: a crash can lose the un-synced tail,
//     never reorder or invent updates;
//   - a checkpoint can observe the summary and the log position at one
//     quiesced instant (SnapshotBarrier), so "state as of N" and "log
//     records after N" partition the stream exactly;
//   - a recovered state can be injected back before serving starts
//     (RestoreState).
//
// Persister is implemented by persist.Store; the methods here are wired
// by cmd/freqd (and tests) at startup, before the wrapper is shared.
type Persister interface {
	// AppendBatch logs one unit-count batch, exactly as passed to
	// UpdateBatch. The callee must not retain items.
	AppendBatch(items []Item)
	// AppendUpdate logs one weighted update, exactly as passed to
	// Update. count may be negative for turnstile summaries.
	AppendUpdate(x Item, count int64)
}

// PersistTo routes every subsequent update through p before it is
// applied, under the ingest lock, so log order equals apply order.
// Configure before the wrapper is shared between goroutines, like
// ServeSnapshots. Persistence failures are the Persister's to surface
// (persist.Store keeps a sticky error); the wrapper keeps applying, so
// the summary stays available while unsynced durability is lost — the
// serving layer decides whether to stop accepting writes.
func (c *Concurrent) PersistTo(p Persister) { c.persist = p }

// SnapshotBarrier clones the inner summary with ingest quiesced and, at
// the same instant, hands the clone's stream position to cut — the
// write-ahead log rotates segments there, so every logged record is
// unambiguously before or after the clone. It returns the wrapper's
// state as independent per-shard deep copies (always one for
// Concurrent). cut may be nil.
func (c *Concurrent) SnapshotBarrier(cut func(n int64)) []Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := mustSnapshot(c.inner)
	if cut != nil {
		cut(s.N())
	}
	return []Summary{s}
}

// RestoreState replaces the wrapper's summary state with the recovered
// shards — exactly one for Concurrent. It is a setup-time operation
// (startup recovery, before the wrapper is shared); the serving
// snapshot, when already enabled, is re-taken from the restored state.
func (c *Concurrent) RestoreState(shards []Summary) error {
	if len(shards) != 1 {
		return fmt.Errorf("core: Concurrent restore needs 1 shard, got %d", len(shards))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner = shards[0]
	if c.serving {
		c.snap.Store(&snapshotState{view: mustSnapshot(c.inner), version: c.version.Load(), taken: time.Now()})
		c.refreshes.Add(1)
	}
	return nil
}

// PersistTo routes every subsequent update through p before it is
// scattered to the shards; see Concurrent.PersistTo. The log sees the
// stream pre-scatter, so replaying it through UpdateBatch re-scatters
// identically (the shard hash is deterministic).
func (s *Sharded) PersistTo(p Persister) { s.persist = p }

// SnapshotBarrier clones every shard with ingest quiesced and hands the
// clones' total stream position to cut; see Concurrent.SnapshotBarrier.
// The quiescing barrier is engaged by PersistTo — writers take its read
// side only when persisting, so the non-durable hot path is untouched —
// which means the atomic-cut guarantee holds exactly for persisted
// wrappers, the only callers that need it.
func (s *Sharded) SnapshotBarrier(cut func(n int64)) []Summary {
	s.barrier.Lock()
	defer s.barrier.Unlock()
	views := make([]Summary, len(s.shards))
	var n int64
	for i, sh := range s.shards {
		views[i] = sh.Snapshot()
		n += views[i].N()
	}
	if cut != nil {
		cut(n)
	}
	return views
}

// RestoreState replaces each shard's summary with the corresponding
// recovered shard. The count must match the wrapper's shard count: a
// checkpoint taken at -shards 8 cannot restore into -shards 4 (per-item
// shard residency would change under the recovered counters — the
// operator re-shards by restarting with the original count).
func (s *Sharded) RestoreState(shards []Summary) error {
	if len(shards) != len(s.shards) {
		return fmt.Errorf("core: Sharded restore needs %d shards, got %d (restart with the checkpoint's shard count)",
			len(s.shards), len(shards))
	}
	for i, sum := range shards {
		if err := s.shards[i].RestoreState([]Summary{sum}); err != nil {
			return err
		}
	}
	if s.serving {
		s.refreshMu.Lock()
		defer s.refreshMu.Unlock()
		s.snap.Store(s.cloneShards(s.version.Load()))
		s.refreshes.Add(1)
	}
	return nil
}
