package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary serialization for the Tracked wrapper, completing the registry's
// wire-format coverage (the CM and CS roster entries are Tracked
// sketches): the persistence layer checkpoints whatever summary the
// server runs, so every registry algorithm must round-trip through
// bytes. The format nests the inner sketch's own blob, dispatched on
// decode by a caller-supplied decoder — core cannot name the sketch
// types without an import cycle, and the root package already owns the
// magic→decoder registry.

// magicTK identifies a Tracked blob.
const magicTK = "TK01"

// maxTrackedEntries bounds decoded heap sizes against corrupt headers.
const maxTrackedEntries = 1 << 22

// MarshalBinary implements encoding.BinaryMarshaler. The heap is stored
// in array order, which DecodeTracked reproduces position for position,
// so encode→decode→encode is byte-identical. The inner summary must
// itself implement encoding.BinaryMarshaler.
func (t *Tracked) MarshalBinary() ([]byte, error) {
	m, ok := t.inner.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return nil, fmt.Errorf("core: Tracked inner %s has no binary encoding", t.inner.Name())
	}
	innerBlob, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(magicTK)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	put(uint64(t.capacity))
	put(uint64(len(t.heap)))
	for _, e := range t.heap {
		put(uint64(e.item))
		put(uint64(e.est))
	}
	put(uint64(len(innerBlob)))
	buf.Write(innerBlob)
	return buf.Bytes(), nil
}

// DecodeTracked parses a blob produced by (*Tracked).MarshalBinary,
// decoding the nested inner-summary blob with decodeInner (the root
// package's magic dispatch). The heap array is rebuilt at its stored
// positions and validated as a min-heap, so a corrupt blob is rejected
// rather than yielding a tracker that silently mis-evicts.
func DecodeTracked(data []byte, decodeInner func([]byte) (Summary, error)) (*Tracked, error) {
	if len(data) < 4 || string(data[:4]) != magicTK {
		return nil, fmt.Errorf("core: not a Tracked blob")
	}
	data = data[4:]
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(data) {
			return 0, fmt.Errorf("core: truncated Tracked blob at offset %d", pos)
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, nil
	}
	capacity, err := u64()
	if err != nil {
		return nil, err
	}
	heapLen, err := u64()
	if err != nil {
		return nil, err
	}
	if capacity == 0 || capacity > maxTrackedEntries || heapLen > capacity {
		return nil, fmt.Errorf("core: implausible Tracked header (capacity=%d, entries=%d)", capacity, heapLen)
	}
	t := NewTracked(nil, int(capacity)) // inner attached below, after its blob parses
	t.heap = make(tkHeap, heapLen)
	for i := range t.heap {
		item, err := u64()
		if err != nil {
			return nil, err
		}
		est, err := u64()
		if err != nil {
			return nil, err
		}
		e := &tkEntry{item: Item(item), est: int64(est), idx: i}
		if _, dup := t.index[e.item]; dup {
			return nil, fmt.Errorf("core: duplicate item %d in Tracked blob", e.item)
		}
		t.heap[i] = e
		t.index[e.item] = e
		if i > 0 && t.heap.less(i, (i-1)/2) {
			return nil, fmt.Errorf("core: Tracked blob heap order violated at entry %d", i)
		}
	}
	innerLen, err := u64()
	if err != nil {
		return nil, err
	}
	if uint64(len(data)-pos) != innerLen {
		return nil, fmt.Errorf("core: Tracked inner blob is %d bytes, header says %d", len(data)-pos, innerLen)
	}
	inner, err := decodeInner(data[pos:])
	if err != nil {
		return nil, fmt.Errorf("core: Tracked inner blob: %w", err)
	}
	t.inner = inner
	return t, nil
}
