// Package core defines the unified abstraction of the VLDB 2008 comparison
// framework: a common Summary interface implemented by every frequent-items
// algorithm in the repository, the item/count value types, and shared
// helpers (top-k heap tracker, merging, registry, serialization headers).
//
// The central problem definition follows the paper. Given a stream of n
// item arrivals and a threshold φ ∈ (0, 1):
//
//   - FrequentItems(φ): return every item whose true count exceeds φn
//     (perfect recall), and no item whose true count is below (φ−ε)n
//     (approximate precision), together with an estimate of each reported
//     item's count.
//
// Counter-based algorithms guarantee this deterministically when given
// ⌈1/ε⌉ counters; sketch-based algorithms guarantee it with probability
// 1−δ using O((1/ε)·log(1/δ)) counters, but also tolerate deletions and
// support merging by addition.
package core

import (
	"fmt"
	"sort"
)

// Item is a stream element identifier. The paper's experiments use 32-bit
// identifiers; Item is 64-bit so the same code handles larger universes
// (e.g. IPv6 flow keys folded to 64 bits).
type Item uint64

// ItemCount pairs an item with an (estimated or exact) count.
type ItemCount struct {
	Item  Item
	Count int64
}

// Summary is the interface every frequent-items algorithm implements.
// It is the paper's common experimental harness contract.
type Summary interface {
	// Update processes count arrivals of item x. Counter-based algorithms
	// accept only positive counts (insert-only streams); sketches accept
	// negative counts (the turnstile model). Implementations document
	// which model they support; passing a negative count to an
	// insert-only summary panics, as it indicates a harness wiring bug.
	Update(x Item, count int64)

	// Estimate returns the summary's estimate of the total count of x.
	Estimate(x Item) int64

	// Query returns all items whose estimated count is at least
	// threshold, with their estimates, in descending count order.
	Query(threshold int64) []ItemCount

	// N returns the total count of all updates processed (the stream
	// length, for unit-count insert-only streams).
	N() int64

	// Bytes returns the approximate in-memory footprint of the summary,
	// the quantity the paper reports as "space".
	Bytes() int

	// Name returns the short algorithm code used in the paper's plots
	// (e.g. "F", "LC", "SSH", "CMH", "CGT").
	Name() string
}

// Merger is implemented by summaries that can absorb another summary of
// the same type and parameters, producing a summary for the concatenated
// streams. All sketches and Misra–Gries-style counter summaries support
// this; the experiment X2 exercises it.
type Merger interface {
	// Merge folds other into the receiver. It returns an error if the
	// two summaries have incompatible types or parameters.
	Merge(other Summary) error
}

// EstimateMonotone is implemented by summaries that can certify their
// point estimates never decrease while ingesting insert-only unit
// arrivals (Count-Min's min-of-counters estimator qualifies; Count
// Sketch's median of signed counters does not — another item's arrival
// can lower it). Tracked's batched ingest uses this to decide whether
// deferring heap admissions to the end of a batch is safe.
type EstimateMonotone interface {
	// MonotoneEstimates reports whether estimates are currently
	// non-decreasing under unit arrivals (false once deletions have
	// been ingested).
	MonotoneEstimates() bool
}

// Subtractor is implemented by linear sketches, which can compute the
// difference of two streams (the Charikar et al. max-change primitive,
// experiment X1).
type Subtractor interface {
	// Subtract removes other's stream from the receiver, leaving a sketch
	// of the frequency difference vector.
	Subtract(other Summary) error
}

// SortByCountDesc sorts items by descending count, breaking ties by
// ascending item identifier so output order is deterministic.
func SortByCountDesc(s []ItemCount) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Count != s[j].Count {
			return s[i].Count > s[j].Count
		}
		return s[i].Item < s[j].Item
	})
}

// TopK returns the k largest entries (by count) of s, in descending
// order. It copies; s is not modified.
func TopK(s []ItemCount, k int) []ItemCount {
	c := make([]ItemCount, len(s))
	copy(c, s)
	SortByCountDesc(c)
	if k < len(c) {
		c = c[:k]
	}
	return c
}

// ErrIncompatible is returned (wrapped) by Merge/Subtract implementations
// when the operand summary does not match the receiver.
var ErrIncompatible = fmt.Errorf("core: incompatible summaries")

// Incompatible formats a standard incompatibility error.
func Incompatible(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrIncompatible, fmt.Sprintf(format, args...))
}
