package core

import (
	"encoding"
	"fmt"
)

// EncodeSummary serializes s through its registry wire format — the
// snapshot-to-blob path the checkpointer (per-shard checkpoint blobs)
// and the /summary endpoint (shipping a node snapshot to a merge
// coordinator) share. Every registry algorithm implements
// encoding.BinaryMarshaler; a summary without one (a custom Summary
// outside the registry) is a clean error, not a panic, because the
// caller is typically holding a network request or a checkpoint that
// should fail loudly.
func EncodeSummary(s Summary) ([]byte, error) {
	m, ok := s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: %s has no binary encoding", s.Name())
	}
	return m.MarshalBinary()
}
