package core

// BatchUpdater is implemented by summaries with a native amortized path
// for the common case of unit-count arrivals: UpdateBatch(items) must
// ingest exactly the multiset items with unit counts — N() advances by
// len(items) — while preserving the summary's accuracy guarantees.
// Implementations exploit the batch shape — pre-aggregating duplicate
// items, hoisting per-row hash state out of the item loop, or taking a
// lock once per batch instead of once per arrival — which is where the
// throughput headroom of the paper's update-cost comparison lives.
//
// Equivalence to the scalar Update loop is bit-exact for
// order-insensitive summaries (the linear sketches, and Space-Saving
// above its churn floor); summaries whose state depends on arrival
// order within a batch (Misra–Gries' decrement schedule) may shift
// individual estimates within their documented deterministic error
// bound, never beyond it. The registry-wide property test
// (batch_test.go) pins the exact contract per algorithm.
//
// Implementations may retain scratch state between calls (so a single
// summary's batch path is not safe for concurrent use — exactly like
// Update), but must not retain the items slice itself: callers are free
// to reuse the buffer for the next batch.
type BatchUpdater interface {
	UpdateBatch(items []Item)
}

// UpdateAll feeds one unit-count arrival per element of items into s,
// using the native batch path when s implements BatchUpdater and the
// scalar Update loop otherwise. It is the single ingestion entry point
// the harness, benchmarks, and CLIs use, so every summary — batched or
// not — replays a stream through the same code path.
func UpdateAll(s Summary, items []Item) {
	if b, ok := s.(BatchUpdater); ok {
		b.UpdateBatch(items)
		return
	}
	for _, it := range items {
		s.Update(it, 1)
	}
}

// DefaultBatchSize is the ingest batch length used by the harness and
// CLIs when replaying materialized streams. It bounds the auxiliary
// space of pre-aggregating batch implementations (their scratch maps
// hold at most one entry per distinct item in a batch) while being long
// enough to amortize per-batch costs (lock acquisitions, hash-state
// loads) down to noise.
const DefaultBatchSize = 4096

// UpdateBatches replays items into s in batches of at most batch items
// (DefaultBatchSize when batch <= 0), preserving stream order. Unlike a
// single UpdateAll call over the whole stream, the bounded batch length
// keeps batching implementations' scratch space O(batch) rather than
// O(distinct items).
func UpdateBatches(s Summary, items []Item, batch int) {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	for len(items) > 0 {
		n := batch
		if n > len(items) {
			n = len(items)
		}
		UpdateAll(s, items[:n])
		items = items[n:]
	}
}
