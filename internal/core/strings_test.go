package core

import "testing"

func TestHashStringMatchesHashBytes(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "флоу", "\x00\xff"} {
		if HashString(s) != HashBytes([]byte(s)) {
			t.Errorf("HashString(%q) != HashBytes", s)
		}
	}
}

func TestHashStringDistributes(t *testing.T) {
	// No collisions across 100k short keys, and good bucket spread.
	seen := make(map[Item]string, 100000)
	var buckets [16]int
	for i := 0; i < 100000; i++ {
		key := "key-" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + itoa(i)
		h := HashString(key)
		if prev, dup := seen[h]; dup && prev != key {
			t.Fatalf("collision: %q and %q", prev, key)
		}
		seen[h] = key
		buckets[uint64(h)&15]++
	}
	for b, c := range buckets {
		if c < 4000 || c > 8500 {
			t.Errorf("bucket %d holds %d of 100k; low bits badly distributed", b, c)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestHashStringStable(t *testing.T) {
	// The digest is part of the wire behaviour (two nodes must agree on
	// the Item for a key): pin a golden value.
	if got := HashString("frequent"); got != HashString("frequent") {
		t.Error("unstable hash")
	}
	if HashString("frequent") == HashString("frequenT") {
		t.Error("case-insensitive collision")
	}
	if HashString("") == HashString("\x00") {
		t.Error("empty and NUL collide")
	}
}
