package core

import "time"

// Snapshotter is implemented by summaries that can produce an immutable
// point-in-time copy of themselves. Snapshot returns an independent deep
// copy: subsequent updates to the parent never change the snapshot, and
// updates to the snapshot never change the parent. The copy shares only
// state that is immutable after construction (hash families, seeds), so
// taking a snapshot costs one allocation-and-copy of the summary's
// counters — O(k) for the counter algorithms, O(d·w) for the sketches —
// and never blocks on anything.
//
// Snapshots are the serving primitive of this repository: the Concurrent
// and Sharded wrappers answer Query/Estimate from a periodically
// refreshed snapshot so readers never wait on the ingest lock, and a
// snapshot can be serialized (MarshalBinary) or merged elsewhere while
// the parent keeps ingesting.
//
// Every algorithm in the registry implements Snapshotter via a native
// typed Clone method; the registry-wide fidelity property test
// (snapshot_test.go in the root package) pins that a snapshot answers
// queries bit-identically to a fresh summary fed the same stream prefix.
type Snapshotter interface {
	// Snapshot returns an independent deep copy of the summary's current
	// state.
	Snapshot() Summary
}

// ReadView is the read-only query surface of a serving snapshot. A view
// is immutable: every call answers from the same epoch, so a caller that
// needs an internally consistent multi-read sequence (compute a
// threshold from N, then Query at it) pins one view and issues all reads
// against it. Any Summary trivially satisfies ReadView; the serving
// wrappers additionally expose their current epoch through ServingView.
type ReadView interface {
	// N returns the view's stream length.
	N() int64
	// Estimate returns the view's point estimate for x.
	Estimate(x Item) int64
	// Query returns the view's items at or above threshold, descending.
	Query(threshold int64) []ItemCount
}

// SnapshotStats describes the serving snapshot of a wrapper with
// snapshot reads enabled (Concurrent.ServeSnapshots,
// Sharded.ServeSnapshots); the freqd /stats endpoint reports it.
type SnapshotStats struct {
	// Serving reports whether snapshot serving is enabled.
	Serving bool
	// AsOfN is the stream length the serving snapshot reflects.
	AsOfN int64
	// Age is the time since the serving snapshot was taken.
	Age time.Duration
	// Refreshes counts how many snapshots have been taken so far.
	Refreshes int64
	// MaxStale is the configured staleness bound.
	MaxStale time.Duration
}

// mustSnapshot clones s, panicking with a clear message when s does not
// implement Snapshotter — enabling snapshot serving over a summary that
// cannot be cloned is a configuration error, like a non-power-of-two
// shard count.
func mustSnapshot(s Summary) Summary {
	sn, ok := s.(Snapshotter)
	if !ok {
		panic("core: " + s.Name() + " does not implement Snapshotter")
	}
	return sn.Snapshot()
}
