package core

import (
	"sync"
)

// Concurrent makes any Summary safe for concurrent use by guarding it
// with a mutex. For higher ingest parallelism use Sharded, which
// partitions the stream across independent summaries and merges at query
// time.
type Concurrent struct {
	mu    sync.Mutex
	inner Summary
}

// NewConcurrent wraps inner with a mutex.
func NewConcurrent(inner Summary) *Concurrent {
	return &Concurrent{inner: inner}
}

// Name implements Summary.
func (c *Concurrent) Name() string { return c.inner.Name() }

// Update implements Summary.
func (c *Concurrent) Update(x Item, count int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Update(x, count)
}

// Estimate implements Summary.
func (c *Concurrent) Estimate(x Item) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Estimate(x)
}

// Query implements Summary.
func (c *Concurrent) Query(threshold int64) []ItemCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Query(threshold)
}

// N implements Summary.
func (c *Concurrent) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.N()
}

// Bytes implements Summary.
func (c *Concurrent) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Bytes()
}

// Sharded partitions updates across s independent summaries by a cheap
// item hash, so concurrent writers rarely contend, and answers queries by
// merging shard clones. The factory must produce mergeable summaries with
// identical parameters (for sketches, identical seeds).
//
// Sharding by item (not round-robin) keeps each item's entire count in a
// single shard, so per-shard guarantees translate to global guarantees
// with per-shard error ε_shard = ε (each shard sees a substream).
type Sharded struct {
	shards []*Concurrent
	mask   uint64
}

// NewSharded builds a sharded summary with shards power-of-two workers.
func NewSharded(shards int, factory func() Summary) *Sharded {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("core: Sharded requires a positive power-of-two shard count")
	}
	s := &Sharded{mask: uint64(shards - 1)}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, NewConcurrent(factory()))
	}
	return s
}

// Name implements Summary.
func (s *Sharded) Name() string { return s.shards[0].Name() + "-sharded" }

func (s *Sharded) shard(x Item) *Concurrent {
	// SplitMix64 finalizer spreads low-entropy item spaces across shards.
	v := uint64(x)
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	v ^= v >> 31
	return s.shards[v&s.mask]
}

// Update routes the arrival to its item's shard.
func (s *Sharded) Update(x Item, count int64) { s.shard(x).Update(x, count) }

// Estimate queries the item's shard.
func (s *Sharded) Estimate(x Item) int64 { return s.shard(x).Estimate(x) }

// N sums the shard totals.
func (s *Sharded) N() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.N()
	}
	return n
}

// Query gathers every shard's report. Because each item lives wholly in
// one shard, the union is the correct global report.
func (s *Sharded) Query(threshold int64) []ItemCount {
	var out []ItemCount
	for _, sh := range s.shards {
		out = append(out, sh.Query(threshold)...)
	}
	SortByCountDesc(out)
	return out
}

// Bytes sums the shard footprints.
func (s *Sharded) Bytes() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Bytes()
	}
	return total
}
