package core

import (
	"sync"
	"sync/atomic"
)

// Concurrent makes any Summary safe for concurrent use by guarding it
// with a mutex. For higher ingest parallelism use Sharded, which
// partitions the stream across independent summaries and merges at query
// time.
type Concurrent struct {
	mu    sync.Mutex
	inner Summary
}

// NewConcurrent wraps inner with a mutex.
func NewConcurrent(inner Summary) *Concurrent {
	return &Concurrent{inner: inner}
}

// Name implements Summary.
func (c *Concurrent) Name() string { return c.inner.Name() }

// Update implements Summary.
func (c *Concurrent) Update(x Item, count int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Update(x, count)
}

// UpdateBatch implements BatchUpdater with a single lock acquisition for
// the whole batch, so the per-arrival cost of the mutex is amortized
// away; the inner summary's own batch path is used when it has one.
func (c *Concurrent) UpdateBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	UpdateAll(c.inner, items)
}

// Estimate implements Summary.
func (c *Concurrent) Estimate(x Item) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Estimate(x)
}

// Query implements Summary.
func (c *Concurrent) Query(threshold int64) []ItemCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Query(threshold)
}

// N implements Summary.
func (c *Concurrent) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.N()
}

// Bytes implements Summary.
func (c *Concurrent) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Bytes()
}

// Sharded partitions updates across s independent summaries by a cheap
// item hash, so concurrent writers rarely contend, and answers queries by
// merging shard clones. The factory must produce mergeable summaries with
// identical parameters (for sketches, identical seeds).
//
// Sharding by item (not round-robin) keeps each item's entire count in a
// single shard, so per-shard guarantees translate to global guarantees
// with per-shard error ε_shard = ε (each shard sees a substream).
type Sharded struct {
	shards []*Concurrent
	mask   uint64
	bufs   sync.Pool // *shardScatter, reused across UpdateBatch calls
	// scatterBytes is the high-water footprint of one scatter-buffer
	// set, charged by Bytes. It is an estimate in both directions, as
	// the pool's contents are not enumerable: W concurrently-active
	// batch writers can keep up to W sets pooled (undercharged), and a
	// GC that discards pooled sets does not reset the mark
	// (overcharged). Summary.Bytes is documented as approximate; this
	// keeps batching's resident cost visible at the usual one-writer
	// or few-writer scale.
	scatterBytes atomic.Int64
}

// shardScatter is a per-batch scatter buffer: one pending-item slice per
// shard. Pooled so concurrent batch writers each get their own set
// without allocating per batch.
type shardScatter struct {
	perShard [][]Item
}

// NewSharded builds a sharded summary with shards power-of-two workers.
func NewSharded(shards int, factory func() Summary) *Sharded {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("core: Sharded requires a positive power-of-two shard count")
	}
	s := &Sharded{mask: uint64(shards - 1)}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, NewConcurrent(factory()))
	}
	s.bufs.New = func() any {
		return &shardScatter{perShard: make([][]Item, shards)}
	}
	return s
}

// Name implements Summary.
func (s *Sharded) Name() string { return s.shards[0].Name() + "-sharded" }

func (s *Sharded) shardIndex(x Item) uint64 {
	// SplitMix64 finalizer spreads low-entropy item spaces across shards.
	v := uint64(x)
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	v ^= v >> 31
	return v & s.mask
}

func (s *Sharded) shard(x Item) *Concurrent { return s.shards[s.shardIndex(x)] }

// Update routes the arrival to its item's shard.
func (s *Sharded) Update(x Item, count int64) { s.shard(x).Update(x, count) }

// UpdateBatch implements BatchUpdater: the batch is scattered into
// per-shard buffers (paying only the shard hash per item, no locking),
// then each non-empty shard is flushed under a single lock acquisition.
// Because every item maps to exactly one shard and per-shard order is
// preserved, the result is identical to routing each arrival
// individually; the per-item mutex cost is amortized to one lock per
// shard per batch.
func (s *Sharded) UpdateBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.shards[0].UpdateBatch(items)
		return
	}
	sc := s.bufs.Get().(*shardScatter)
	for _, x := range items {
		i := s.shardIndex(x)
		sc.perShard[i] = append(sc.perShard[i], x)
	}
	var scatterCap int64
	for i, buf := range sc.perShard {
		scatterCap += int64(cap(buf)) * 8
		if len(buf) == 0 {
			continue
		}
		s.shards[i].UpdateBatch(buf)
		sc.perShard[i] = buf[:0]
	}
	for {
		old := s.scatterBytes.Load()
		if scatterCap <= old || s.scatterBytes.CompareAndSwap(old, scatterCap) {
			break
		}
	}
	s.bufs.Put(sc)
}

// Estimate queries the item's shard.
func (s *Sharded) Estimate(x Item) int64 { return s.shard(x).Estimate(x) }

// N sums the shard totals.
func (s *Sharded) N() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.N()
	}
	return n
}

// Query gathers every shard's report. Because each item lives wholly in
// one shard, the union is the correct global report.
func (s *Sharded) Query(threshold int64) []ItemCount {
	var out []ItemCount
	for _, sh := range s.shards {
		out = append(out, sh.Query(threshold)...)
	}
	SortByCountDesc(out)
	return out
}

// Bytes sums the shard footprints plus the retained scatter scratch
// (the high-water mark of one scatter-buffer set; see scatterBytes for
// the estimate's limits).
func (s *Sharded) Bytes() int {
	total := int(s.scatterBytes.Load())
	for _, sh := range s.shards {
		total += sh.Bytes()
	}
	return total
}
