package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Concurrent makes any Summary safe for concurrent use by guarding it
// with a mutex. For higher ingest parallelism use Sharded, which
// partitions the stream across independent summaries and merges at query
// time.
//
// By default reads (Estimate, Query, N) take the same mutex as ingest.
// ServeSnapshots switches reads to an epoch-style snapshot path: queries
// are answered from an immutable clone of the summary that is refreshed
// at most once per staleness window, so a storm of readers costs the
// ingest path one clone per window instead of one lock acquisition per
// read.
type Concurrent struct {
	mu    sync.Mutex
	inner Summary

	// persist, when set by PersistTo, receives every update under the
	// ingest lock before it is applied (write-ahead order).
	persist Persister

	// Snapshot serving state. serving and maxStale are set once by
	// ServeSnapshots before concurrent use; version counts mutations
	// (bumped inside the lock, read without it) so an unchanged summary
	// is never re-cloned; snap holds the immutable serving view.
	serving   bool
	maxStale  time.Duration
	version   atomic.Uint64
	snap      atomic.Pointer[snapshotState]
	refreshes atomic.Int64
}

// snapshotState is one immutable serving epoch: a deep copy of the inner
// summary plus the version and time it was taken at. All fields are
// written before the pointer is published and never after.
type snapshotState struct {
	view    Summary
	version uint64
	taken   time.Time
}

// NewConcurrent wraps inner with a mutex.
func NewConcurrent(inner Summary) *Concurrent {
	return &Concurrent{inner: inner}
}

// ServeSnapshots enables snapshot-based reads: Estimate, Query, and N are
// answered from an immutable deep copy of the inner summary instead of
// locking it, so readers never block ingest. The snapshot is refreshed on
// demand with bounded staleness: a read re-clones the summary (one lock
// acquisition, amortized over the whole window) only when the summary has
// changed since the snapshot was taken AND the snapshot is older than
// maxStale. maxStale = 0 means always-fresh: any read that observes a
// mutation re-clones, which keeps reads exact but makes heavy read
// traffic clone-bound — production servers should pick a real window
// (freqd defaults to 100ms).
//
// The inner summary must implement Snapshotter (every registry algorithm
// does); ServeSnapshots panics otherwise. Call it before the wrapper is
// shared between goroutines, like all configuration. It returns c for
// chaining.
func (c *Concurrent) ServeSnapshots(maxStale time.Duration) *Concurrent {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.serving = true
	c.maxStale = maxStale
	c.snap.Store(&snapshotState{view: mustSnapshot(c.inner), taken: time.Now()})
	c.refreshes.Add(1)
	return c
}

// Name implements Summary.
func (c *Concurrent) Name() string { return c.inner.Name() }

// Update implements Summary.
func (c *Concurrent) Update(x Item, count int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.persist != nil {
		c.persist.AppendUpdate(x, count)
	}
	c.inner.Update(x, count)
	if c.serving {
		c.version.Add(1)
	}
}

// UpdateBatch implements BatchUpdater with a single lock acquisition for
// the whole batch, so the per-arrival cost of the mutex is amortized
// away; the inner summary's own batch path is used when it has one.
func (c *Concurrent) UpdateBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.persist != nil {
		c.persist.AppendBatch(items)
	}
	UpdateAll(c.inner, items)
	if c.serving {
		c.version.Add(1)
	}
}

// reader returns the summary state reads should be answered from: the
// serving snapshot (refreshed if it is both dirty and past the staleness
// bound) when snapshot serving is on, nil when reads must take the lock.
func (c *Concurrent) reader() Summary {
	if !c.serving {
		return nil
	}
	s := c.snap.Load()
	if s.version == c.version.Load() || time.Since(s.taken) <= c.maxStale {
		return s.view
	}
	return c.refresh().view
}

// refresh takes the ingest lock and publishes a fresh snapshot. If
// another reader refreshed while we waited for the lock, its snapshot is
// reused (double-check) so a read storm performs one clone, not one per
// reader.
func (c *Concurrent) refresh() *snapshotState {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.version.Load()
	if cur := c.snap.Load(); cur.version == v {
		return cur
	}
	ns := &snapshotState{view: mustSnapshot(c.inner), version: v, taken: time.Now()}
	c.snap.Store(ns)
	c.refreshes.Add(1)
	return ns
}

// Snapshot implements Snapshotter: it returns an independent deep copy of
// the inner summary, taken under the ingest lock. It panics when the
// inner summary does not implement Snapshotter. Unlike the serving reads
// it always clones fresh state, so callers can checkpoint, serialize, or
// merge the copy while ingest continues.
func (c *Concurrent) Snapshot() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return mustSnapshot(c.inner)
}

// RefreshSnapshot forces a fresh serving snapshot (regardless of the
// staleness bound) and returns its view. It is a no-op returning nil when
// snapshot serving is not enabled. Servers call it to cut over
// deterministically — e.g. freqd's POST /refresh, or tests asserting
// exact post-ingest reads.
func (c *Concurrent) RefreshSnapshot() ReadView {
	if !c.serving {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := &snapshotState{view: mustSnapshot(c.inner), version: c.version.Load(), taken: time.Now()}
	c.snap.Store(ns)
	c.refreshes.Add(1)
	return ns.view
}

// ServingView returns the current serving epoch as an immutable
// ReadView (refreshing it first if it is dirty past the staleness
// bound), or nil when snapshot serving is not enabled. Pin the returned
// view to make a multi-read sequence internally consistent: each of
// Estimate/Query/N on the wrapper itself may cross a refresh boundary
// between calls.
func (c *Concurrent) ServingView() ReadView {
	if v := c.reader(); v != nil {
		return v
	}
	return nil
}

// LiveN returns the ingested stream length of the live summary,
// bypassing the serving snapshot: one locked integer read, so ops
// surfaces (freqd /stats) can report the ingest position next to the
// snapshot's AsOfN without forcing a snapshot refresh.
func (c *Concurrent) LiveN() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.N()
}

// SnapshotStats reports the serving snapshot's freshness; all zero when
// serving is not enabled.
func (c *Concurrent) SnapshotStats() SnapshotStats {
	if !c.serving {
		return SnapshotStats{}
	}
	s := c.snap.Load()
	return SnapshotStats{
		Serving:   true,
		AsOfN:     s.view.N(),
		Age:       time.Since(s.taken),
		Refreshes: c.refreshes.Load(),
		MaxStale:  c.maxStale,
	}
}

// Estimate implements Summary. With snapshot serving enabled it is
// answered from the serving snapshot (never blocking ingest); otherwise
// it locks.
func (c *Concurrent) Estimate(x Item) int64 {
	if v := c.reader(); v != nil {
		return v.Estimate(x)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Estimate(x)
}

// Query implements Summary; see Estimate for the snapshot-serving read
// path.
func (c *Concurrent) Query(threshold int64) []ItemCount {
	if v := c.reader(); v != nil {
		return v.Query(threshold)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Query(threshold)
}

// N implements Summary. With snapshot serving enabled it reports the
// snapshot's stream length, so thresholds computed as φ·N() are
// consistent with the state Query answers from.
func (c *Concurrent) N() int64 {
	if v := c.reader(); v != nil {
		return v.N()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.N()
}

// Bytes implements Summary. With snapshot serving enabled the retained
// serving view is charged on top of the live summary.
func (c *Concurrent) Bytes() int {
	var snapBytes int
	if c.serving {
		snapBytes = c.snap.Load().view.Bytes()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Bytes() + snapBytes
}

// Sharded partitions updates across s independent summaries by a cheap
// item hash, so concurrent writers rarely contend, and answers queries by
// merging shard clones. The factory must produce mergeable summaries with
// identical parameters (for sketches, identical seeds).
//
// Sharding by item (not round-robin) keeps each item's entire count in a
// single shard, so per-shard guarantees translate to global guarantees
// with per-shard error ε_shard = ε (each shard sees a substream).
type Sharded struct {
	shards []*Concurrent
	mask   uint64
	bufs   sync.Pool // *shardScatter, reused across UpdateBatch calls
	// scatterBytes estimates the footprint of one pooled
	// scatter-buffer set, charged by Bytes. It is an estimate in both
	// directions, as the pool's contents are not enumerable: W
	// concurrently-active batch writers can keep up to W sets pooled
	// (undercharged), and a GC that discards pooled sets does not
	// reset the mark (overcharged). It rises immediately to the
	// retained capacity of the set a batch just returned and decays
	// geometrically toward smaller sets, so one outlier batch stops
	// dominating the estimate once its oversized buffers are shed
	// (buffers past maxScatterRetain are not pooled at all).
	scatterBytes atomic.Int64

	// Snapshot serving state, mirroring Concurrent: version counts
	// completed mutations (bumped atomically after the per-shard flushes,
	// gated on serving so the non-serving hot path is untouched), snap
	// holds the immutable per-shard read view, and refreshMu serializes
	// refreshers without blocking writers on any shard.
	serving   bool
	maxStale  time.Duration
	version   atomic.Uint64
	snap      atomic.Pointer[shardedSnapshot]
	refreshMu sync.Mutex
	refreshes atomic.Int64

	// persist, when set by PersistTo, receives every update before it is
	// scattered; barrier quiesces all writers so SnapshotBarrier can cut
	// the log at an exact cross-shard position. Writers take the read
	// side only when persisting, so the non-durable path pays nothing.
	persist Persister
	barrier sync.RWMutex
}

// shardedSnapshot is an immutable ReadView of a Sharded summary: one
// clone per shard, routed by the same item hash, so snapshot reads have
// exactly the semantics of locked reads (Estimate routes to the item's
// shard, Query unions the shard reports). Cross-shard cloning is not a
// single atomic cut — each shard is cloned under its own lock in turn —
// so the view is per-shard consistent; with item-partitioned shards every
// per-item answer is still some true point-in-time answer for that item.
type shardedSnapshot struct {
	views   []Summary
	mask    uint64
	version uint64
	taken   time.Time
}

// Estimate implements ReadView by routing to the item's shard view.
func (v *shardedSnapshot) Estimate(x Item) int64 {
	return v.views[shardIndex(x, v.mask)].Estimate(x)
}

// Query implements ReadView as the union of the shard views' reports.
func (v *shardedSnapshot) Query(threshold int64) []ItemCount {
	var out []ItemCount
	for _, view := range v.views {
		out = append(out, view.Query(threshold)...)
	}
	SortByCountDesc(out)
	return out
}

// N implements ReadView as the sum of the shard views' totals.
func (v *shardedSnapshot) N() int64 {
	var n int64
	for _, view := range v.views {
		n += view.N()
	}
	return n
}

// shardScatter is a per-batch scatter buffer: one pending-item slice per
// shard. Pooled so concurrent batch writers each get their own set
// without allocating per batch.
type shardScatter struct {
	perShard [][]Item
}

// maxScatterRetain bounds the per-shard scatter buffer capacity a
// batch may leave pooled, in items: one huge batch would otherwise pin
// its full per-shard capacity in the pool forever. Buffers grown past
// two default batches are dropped on Put and reallocated (amortized)
// by the next oversized batch.
const maxScatterRetain = 2 * DefaultBatchSize

// NewSharded builds a sharded summary with shards power-of-two workers.
func NewSharded(shards int, factory func() Summary) *Sharded {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("core: Sharded requires a positive power-of-two shard count")
	}
	s := &Sharded{mask: uint64(shards - 1)}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, NewConcurrent(factory()))
	}
	s.bufs.New = func() any {
		return &shardScatter{perShard: make([][]Item, shards)}
	}
	return s
}

// ServeSnapshots enables snapshot-based reads, mirroring
// Concurrent.ServeSnapshots: Estimate, Query, and N are answered from an
// immutable set of per-shard clones refreshed at most once per staleness
// window, so readers never contend with writers on any shard lock. The
// factory's summaries must implement Snapshotter; panics otherwise. Call
// before sharing the wrapper between goroutines. Returns s for chaining.
func (s *Sharded) ServeSnapshots(maxStale time.Duration) *Sharded {
	s.serving = true
	s.maxStale = maxStale
	views := make([]Summary, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.Snapshot()
	}
	s.snap.Store(&shardedSnapshot{views: views, mask: s.mask, taken: time.Now()})
	s.refreshes.Add(1)
	return s
}

// Name implements Summary.
func (s *Sharded) Name() string { return s.shards[0].Name() + "-sharded" }

// shardIndex spreads low-entropy item spaces across shards with the
// SplitMix64 finalizer.
func shardIndex(x Item, mask uint64) uint64 {
	v := uint64(x)
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	v ^= v >> 31
	return v & mask
}

func (s *Sharded) shard(x Item) *Concurrent { return s.shards[shardIndex(x, s.mask)] }

// Update routes the arrival to its item's shard, logging it first when
// persistence is enabled.
func (s *Sharded) Update(x Item, count int64) {
	if s.persist != nil {
		s.barrier.RLock()
		s.persist.AppendUpdate(x, count)
		s.shard(x).Update(x, count)
		s.barrier.RUnlock()
	} else {
		s.shard(x).Update(x, count)
	}
	if s.serving {
		s.version.Add(1)
	}
}

// UpdateBatch implements BatchUpdater: the batch is scattered into
// per-shard buffers (paying only the shard hash per item, no locking),
// then each non-empty shard is flushed under a single lock acquisition.
// Because every item maps to exactly one shard and per-shard order is
// preserved, the result is identical to routing each arrival
// individually; the per-item mutex cost is amortized to one lock per
// shard per batch.
func (s *Sharded) UpdateBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	if s.persist != nil {
		// Log, scatter, and flush under the barrier's read side: the log
		// position and the shard applies move together, so a checkpoint
		// (which takes the write side) never splits a batch.
		s.barrier.RLock()
		defer s.barrier.RUnlock()
		s.persist.AppendBatch(items)
	}
	if len(s.shards) == 1 {
		s.shards[0].UpdateBatch(items)
		if s.serving {
			s.version.Add(1)
		}
		return
	}
	sc := s.bufs.Get().(*shardScatter)
	for _, x := range items {
		i := shardIndex(x, s.mask)
		sc.perShard[i] = append(sc.perShard[i], x)
	}
	var retained int64
	for i, buf := range sc.perShard {
		if len(buf) > 0 {
			s.shards[i].UpdateBatch(buf)
		}
		if cap(buf) > maxScatterRetain {
			// Shed: an outlier batch must not pin its capacity in the
			// pool for the rest of the process lifetime.
			sc.perShard[i] = nil
			continue
		}
		retained += int64(cap(buf)) * 8
		sc.perShard[i] = buf[:0]
	}
	// Settle the footprint estimate: rise immediately to what this call
	// put back, decay by quarters otherwise, so the estimate follows
	// shed buffers back down instead of latching the high-water mark.
	for {
		old := s.scatterBytes.Load()
		est := old - old>>2
		if retained > est {
			est = retained
		}
		if est == old || s.scatterBytes.CompareAndSwap(old, est) {
			break
		}
	}
	s.bufs.Put(sc)
	if s.serving {
		s.version.Add(1)
	}
}

// reader returns the snapshot view reads are answered from, refreshing it
// when it is both dirty and past the staleness bound; nil when snapshot
// serving is off.
func (s *Sharded) reader() *shardedSnapshot {
	if !s.serving {
		return nil
	}
	v := s.snap.Load()
	if v.version == s.version.Load() || time.Since(v.taken) <= s.maxStale {
		return v
	}
	return s.refresh()
}

// refresh re-clones every shard and publishes the new view. refreshMu
// serializes refreshers (double-checked, so a read storm clones once)
// without holding any shard lock across the whole pass: writers are
// blocked only while their own shard is being cloned. The version is
// captured before cloning, so writes that land mid-refresh make the new
// snapshot look dirty rather than hiding behind it.
func (s *Sharded) refresh() *shardedSnapshot {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	v := s.version.Load()
	if cur := s.snap.Load(); cur.version == v {
		return cur
	}
	ns := s.cloneShards(v)
	s.snap.Store(ns)
	s.refreshes.Add(1)
	return ns
}

func (s *Sharded) cloneShards(version uint64) *shardedSnapshot {
	views := make([]Summary, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.Snapshot()
	}
	return &shardedSnapshot{views: views, mask: s.mask, version: version, taken: time.Now()}
}

// Snapshot implements Snapshotter by merging per-shard clones into one
// summary via the Merger machinery: the result is a single independent
// summary of the whole stream, suitable for serialization or cross-node
// merging. It requires the factory's summaries to implement Snapshotter
// and Merger (panics otherwise — the same contract NewSharded's
// query-by-merge design already assumes). Each shard is cloned under its
// own lock; ingest on other shards proceeds during the pass.
func (s *Sharded) Snapshot() Summary {
	merged := s.shards[0].Snapshot()
	if len(s.shards) == 1 {
		return merged
	}
	m, ok := merged.(Merger)
	if !ok {
		panic("core: Sharded.Snapshot requires a Merger inner summary, " + merged.Name() + " is not")
	}
	for _, sh := range s.shards[1:] {
		if err := m.Merge(sh.Snapshot()); err != nil {
			panic("core: Sharded.Snapshot merge failed: " + err.Error())
		}
	}
	return merged
}

// RefreshSnapshot forces a fresh serving view (regardless of staleness)
// and returns it; it is a no-op returning nil when serving is not
// enabled. Same contract as Concurrent.RefreshSnapshot.
func (s *Sharded) RefreshSnapshot() ReadView {
	if !s.serving {
		return nil
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	ns := s.cloneShards(s.version.Load())
	s.snap.Store(ns)
	s.refreshes.Add(1)
	return ns
}

// ServingView returns the current serving epoch as an immutable
// ReadView, or nil when snapshot serving is not enabled; see
// Concurrent.ServingView for why callers pin it.
func (s *Sharded) ServingView() ReadView {
	if v := s.reader(); v != nil {
		return v
	}
	return nil
}

// LiveN sums the shards' live stream lengths, bypassing the serving
// snapshot; see Concurrent.LiveN.
func (s *Sharded) LiveN() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.LiveN()
	}
	return n
}

// SnapshotStats reports the serving view's freshness; all zero when
// serving is not enabled.
func (s *Sharded) SnapshotStats() SnapshotStats {
	if !s.serving {
		return SnapshotStats{}
	}
	v := s.snap.Load()
	return SnapshotStats{
		Serving:   true,
		AsOfN:     v.N(),
		Age:       time.Since(v.taken),
		Refreshes: s.refreshes.Load(),
		MaxStale:  s.maxStale,
	}
}

// Estimate queries the item's shard — through the serving snapshot when
// enabled, so it never touches a shard lock.
func (s *Sharded) Estimate(x Item) int64 {
	if v := s.reader(); v != nil {
		return v.Estimate(x)
	}
	return s.shard(x).Estimate(x)
}

// N sums the shard totals (snapshot totals when serving).
func (s *Sharded) N() int64 {
	if v := s.reader(); v != nil {
		return v.N()
	}
	var n int64
	for _, sh := range s.shards {
		n += sh.N()
	}
	return n
}

// Query gathers every shard's report. Because each item lives wholly in
// one shard, the union is the correct global report. With serving
// enabled the union is taken over the immutable shard clones instead.
func (s *Sharded) Query(threshold int64) []ItemCount {
	if v := s.reader(); v != nil {
		return v.Query(threshold)
	}
	var out []ItemCount
	for _, sh := range s.shards {
		out = append(out, sh.Query(threshold)...)
	}
	SortByCountDesc(out)
	return out
}

// Bytes sums the shard footprints plus the retained scatter scratch
// (a decaying estimate of one pooled scatter-buffer set; see
// scatterBytes for the estimate's limits) and, when serving, the
// retained snapshot views.
func (s *Sharded) Bytes() int {
	total := int(s.scatterBytes.Load())
	for _, sh := range s.shards {
		total += sh.Bytes()
	}
	if s.serving {
		for _, view := range s.snap.Load().views {
			total += view.Bytes()
		}
	}
	return total
}
