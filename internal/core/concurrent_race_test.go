package core_test

// Race-focused coverage for the concurrency wrappers' batch paths: N
// goroutines ingest disjoint slices of one stream through UpdateBatch
// (with readers querying mid-ingest), then the result is checked against
// a sequential reference run. Run under -race (CI does) these tests also
// prove the scatter buffers and per-batch locking publish no unguarded
// state.
//
// The equality assertions use the exact counter as the inner summary:
// its state is a pure function of the ingested multiset, so any
// interleaving of disjoint batches must reproduce the sequential result
// bit for bit. A Space-Saving inner exercises the same locking with a
// summary whose heap makes torn updates loudly corrupt, asserting the
// order-insensitive invariants (N, total tracked mass).

import (
	"sync"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

const raceWriters = 8

func raceStream(t testing.TB, n int) []core.Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<14, 1.1, 0xFACE, true)
	if err != nil {
		t.Fatal(err)
	}
	return g.Stream(n)
}

// ingestConcurrently splits stream across raceWriters goroutines, each
// pushing its share through s.UpdateBatch in sub-batches, while a reader
// goroutine issues queries and estimates mid-flight.
func ingestConcurrently(t *testing.T, s core.Summary, stream []core.Item) {
	t.Helper()
	b, ok := s.(core.BatchUpdater)
	if !ok {
		t.Fatalf("%T does not implement BatchUpdater", s)
	}
	var wg sync.WaitGroup
	share := (len(stream) + raceWriters - 1) / raceWriters
	for w := 0; w < raceWriters; w++ {
		lo := w * share
		hi := lo + share
		if hi > len(stream) {
			hi = len(stream)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []core.Item) {
			defer wg.Done()
			for len(part) > 0 {
				n := 257 // deliberately odd so batches straddle shard buffers
				if n > len(part) {
					n = len(part)
				}
				b.UpdateBatch(part[:n])
				part = part[n:]
			}
		}(stream[lo:hi])
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.N()
				_ = s.Estimate(core.Item(1))
				_ = s.Query(1 << 30) // high threshold: exercise the read path cheaply
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
}

// checkAgainstSequential asserts s (concurrently loaded) matches a
// sequential scalar run of the same stream into ref.
func checkAgainstSequential(t *testing.T, s core.Summary, stream []core.Item, threshold int64) {
	t.Helper()
	ref := exact.New()
	for _, it := range stream {
		ref.Update(it, 1)
	}
	if got, want := s.N(), int64(len(stream)); got != want {
		t.Fatalf("N after concurrent batch ingest = %d, want %d", got, want)
	}
	want := ref.Query(threshold)
	got := s.Query(threshold)
	if len(got) != len(want) {
		t.Fatalf("Query(%d): got %d items, sequential reference has %d", threshold, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Query(%d)[%d]: got %+v, reference %+v", threshold, i, got[i], want[i])
		}
	}
	for _, ic := range want[:min(len(want), 32)] {
		if got := s.Estimate(ic.Item); got != ic.Count {
			t.Fatalf("Estimate(%d) = %d, reference %d", ic.Item, got, ic.Count)
		}
	}
}

func TestConcurrentBatchIngestMatchesSequential(t *testing.T) {
	stream := raceStream(t, 200_000)
	s := core.NewConcurrent(exact.New())
	ingestConcurrently(t, s, stream)
	checkAgainstSequential(t, s, stream, int64(len(stream)/1000))
}

func TestShardedBatchIngestMatchesSequential(t *testing.T) {
	stream := raceStream(t, 200_000)
	s := core.NewSharded(8, func() core.Summary { return exact.New() })
	ingestConcurrently(t, s, stream)
	checkAgainstSequential(t, s, stream, int64(len(stream)/1000))
}

// TestShardedSpaceSavingBatchIngest drives the eviction-heavy
// Space-Saving heap through the sharded batch path under concurrency.
// SSH results depend on arrival interleaving, so only order-insensitive
// invariants are asserted: the total count, the per-shard capacity
// bound, and Space-Saving's no-underestimate guarantee for the heavy
// hitters of a sequential reference run.
func TestShardedSpaceSavingBatchIngest(t *testing.T) {
	stream := raceStream(t, 200_000)
	const k = 256
	s := core.NewSharded(4, func() core.Summary { return counters.NewSpaceSavingHeap(k) })
	ingestConcurrently(t, s, stream)
	if got, want := s.N(), int64(len(stream)); got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	ref := exact.New()
	for _, it := range stream {
		ref.Update(it, 1)
	}
	for _, ic := range ref.TopK(16) {
		if est := s.Estimate(ic.Item); est < ic.Count {
			t.Fatalf("Space-Saving underestimated heavy item %d: %d < true %d", ic.Item, est, ic.Count)
		}
	}
}

// TestConcurrentMixedScalarAndBatchWriters interleaves scalar Update
// calls with UpdateBatch calls from different goroutines — the two paths
// share one mutex and must compose.
func TestConcurrentMixedScalarAndBatchWriters(t *testing.T) {
	stream := raceStream(t, 100_000)
	s := core.NewConcurrent(exact.New())
	half := len(stream) / 2
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, it := range stream[:half] {
			s.Update(it, 1)
		}
	}()
	go func() {
		defer wg.Done()
		core.UpdateBatches(s, stream[half:], 1023)
	}()
	wg.Wait()
	checkAgainstSequential(t, s, stream, int64(len(stream)/1000))
}
