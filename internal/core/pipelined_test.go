package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// logSummary records every applied update in arrival order — the
// sharpest possible probe for the pipelined plane's ordering claim,
// since any reordering (not just a different final state) shows up.
type logSummary struct {
	ops []ItemCount
	n   int64
}

func (s *logSummary) Update(x Item, c int64) {
	s.ops = append(s.ops, ItemCount{Item: x, Count: c})
	s.n += c
}
func (s *logSummary) Estimate(x Item) int64 {
	var c int64
	for _, op := range s.ops {
		if op.Item == x {
			c += op.Count
		}
	}
	return c
}
func (s *logSummary) N() int64     { return s.n }
func (s *logSummary) Bytes() int   { return 16 * len(s.ops) }
func (s *logSummary) Name() string { return "oplog" }
func (s *logSummary) Query(threshold int64) []ItemCount {
	return nil
}
func (s *logSummary) Snapshot() Summary {
	return &logSummary{ops: append([]ItemCount(nil), s.ops...), n: s.n}
}

// Snapshot lets barrier-based tests clone mapSummary (defined in
// core_test.go) through the quiesce machinery.
func (s *mapSummary) Snapshot() Summary {
	c := newMapSummary()
	for k, v := range s.m {
		c.m[k] = v
	}
	c.n = s.n
	return c
}

// pipeStream builds a deterministic mixed-skew stream.
func pipeStream(n int) []Item {
	items := make([]Item, n)
	v := uint64(0x9E3779B97F4A7C15)
	for i := range items {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		// Low-cardinality head plus a random tail, so shards see both
		// repeated heavy items and spread-out light ones.
		if v%4 == 0 {
			items[i] = Item(v % 17)
		} else {
			items[i] = Item(v)
		}
	}
	return items
}

// TestPipelinedOrderMatchesSequential pins the bit-level ordering
// claim on a per-update log: a single writer's batches through tiny
// 4-slot rings (forcing wrap and backpressure) must produce, in every
// shard, exactly the op sequence a sequential scatter produces.
func TestPipelinedOrderMatchesSequential(t *testing.T) {
	const shards = 4
	p := newPipelined(shards, 4, func() Summary { return &logSummary{} })
	stream := pipeStream(20_000)
	var batches [][]Item
	for i := 0; i < len(stream); {
		n := 1 + (i*7)%613 // uneven batch boundaries
		if i+n > len(stream) {
			n = len(stream) - i
		}
		batches = append(batches, stream[i:i+n])
		i += n
	}
	for _, b := range batches {
		p.UpdateBatch(b)
	}
	p.Close()

	want := make([][]ItemCount, shards)
	for _, b := range batches {
		for _, x := range b {
			i := shardIndex(x, p.mask)
			want[i] = append(want[i], ItemCount{Item: x, Count: 1})
		}
	}
	for i := 0; i < shards; i++ {
		got := p.shards[i].(*logSummary).ops
		if len(got) != len(want[i]) {
			t.Fatalf("shard %d applied %d ops, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("shard %d op %d = %+v, want %+v — pipelined apply order diverged", i, j, got[j], want[i][j])
			}
		}
	}
}

// TestPipelinedConcurrentWriters hammers the plane with 8 writers over
// tiny rings and checks the commutative ground truth: every item's
// exact count and the total stream position survive arbitrary claim
// interleavings.
func TestPipelinedConcurrentWriters(t *testing.T) {
	const writers, perWriter, batch = 8, 5_000, 64
	p := newPipelined(4, 4, newMapSummaryFactory())
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]Item, 0, batch)
			for i := 0; i < perWriter; i++ {
				buf = append(buf, Item(i%100))
				if len(buf) == batch {
					p.UpdateBatch(buf)
					buf = buf[:0]
				}
			}
			p.UpdateBatch(buf)
		}(w)
	}
	wg.Wait()
	p.Drain()
	const total = writers * perWriter
	if got := p.N(); got != total {
		t.Fatalf("applied N = %d, want %d", got, total)
	}
	if got := p.LiveN(); got != total {
		t.Fatalf("LiveN = %d, want %d", got, total)
	}
	for x := 0; x < 100; x++ {
		want := int64(writers * perWriter / 100)
		if got := p.Estimate(Item(x)); got != want {
			t.Fatalf("Estimate(%d) = %d, want %d", x, got, want)
		}
	}
}

func newMapSummaryFactory() func() Summary {
	return func() Summary { return newMapSummary() }
}

// TestPipelinedBarrierNeverSplitsABatch runs barriers (snapshot
// refreshes and raw SnapshotBarrier cuts) concurrently with writers
// that only ever push batches of one fixed size: every barrier must
// observe a cross-shard position that is a whole number of batches,
// and successive observations must be monotone.
func TestPipelinedBarrierNeverSplitsABatch(t *testing.T) {
	const batch = 97
	p := newPipelined(4, 4, newMapSummaryFactory())
	defer p.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]Item, batch)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range buf {
					buf[j] = Item(w*1_000_000 + i*batch + j)
				}
				p.UpdateBatch(buf)
			}
		}(w)
	}
	var last int64
	for round := 0; round < 200; round++ {
		var n int64
		for _, v := range p.SnapshotBarrier(func(cut int64) { n = cut }) {
			_ = v
		}
		if n%batch != 0 {
			t.Fatalf("barrier cut at n=%d, not a multiple of the %d-item batch: a batch was split", n, batch)
		}
		if n < last {
			t.Fatalf("barrier cut went backwards: %d after %d", n, last)
		}
		last = n
	}
	close(stop)
	wg.Wait()
}

// TestPipelinedServingSnapshots pins the serving protocol: a refresh
// is claim-exact, a clean plane re-serves the same view without a new
// barrier, and a write dirties it.
func TestPipelinedServingSnapshots(t *testing.T) {
	p := NewPipelined(4, newMapSummaryFactory()).ServeSnapshots(time.Hour)
	defer p.Close()
	stream := pipeStream(10_000)
	for i := 0; i < len(stream); i += 500 {
		p.UpdateBatch(stream[i : i+500])
	}
	view := p.RefreshSnapshot()
	if view.N() != int64(len(stream)) {
		t.Fatalf("refreshed view N = %d, want %d (refresh must include every acknowledged batch)", view.N(), len(stream))
	}
	if again := p.ServingView(); again != view {
		t.Fatalf("clean plane re-cloned its serving view")
	}
	p.UpdateBatch(stream[:100])
	if st := p.SnapshotStats(); !st.Serving {
		t.Fatal("SnapshotStats lost the serving flag")
	}
	if v2 := p.RefreshSnapshot(); v2.N() != int64(len(stream))+100 {
		t.Fatalf("second refresh N = %d, want %d", v2.N(), len(stream)+100)
	}
}

// TestPipelinedCloseThenFallback: Close drains everything acknowledged
// and later writes still land through the synchronous path.
func TestPipelinedCloseThenFallback(t *testing.T) {
	p := newPipelined(2, 4, newMapSummaryFactory())
	stream := pipeStream(5_000)
	p.UpdateBatch(stream)
	p.Close()
	p.Close() // idempotent
	if got := p.N(); got != int64(len(stream)) {
		t.Fatalf("after Close, applied N = %d, want %d", got, len(stream))
	}
	p.UpdateBatch(stream[:250])
	p.Update(Item(1), 3)
	want := int64(len(stream)) + 250 + 3
	if got, live := p.N(), p.LiveN(); got != want || live != want {
		t.Fatalf("post-Close writes: N=%d LiveN=%d, want %d", got, live, want)
	}
	if views := p.SnapshotBarrier(nil); len(views) != 2 {
		t.Fatalf("post-Close SnapshotBarrier returned %d views, want 2", len(views))
	}
}

// TestPipelinedCloseRacesWriters closes the plane while writers are
// mid-stream: every acknowledged item must be applied exactly once,
// whichever side of the stop each batch landed on.
func TestPipelinedCloseRacesWriters(t *testing.T) {
	p := newPipelined(4, 4, newMapSummaryFactory())
	var wg sync.WaitGroup
	var sent int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]Item, 32)
			var mine int64
			for i := 0; i < 200; i++ {
				for j := range buf {
					buf[j] = Item(j)
				}
				p.UpdateBatch(buf)
				mine += int64(len(buf))
			}
			mu.Lock()
			sent += mine
			mu.Unlock()
		}(w)
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
	if got := p.N(); got != sent || p.LiveN() != sent {
		t.Fatalf("after racing Close: N=%d LiveN=%d, want %d", got, p.LiveN(), sent)
	}
}

// TestPipelinedRestoreState pins the setup-time restore path.
func TestPipelinedRestoreState(t *testing.T) {
	p := NewPipelined(2, newMapSummaryFactory())
	defer p.Close()
	if err := p.RestoreState([]Summary{newMapSummary()}); err == nil {
		t.Fatal("restore with wrong shard count did not error")
	}
	a, b := newMapSummary(), newMapSummary()
	a.Update(Item(1), 5)
	b.Update(Item(2), 7)
	if err := p.RestoreState([]Summary{a, b}); err != nil {
		t.Fatal(err)
	}
	if got := p.LiveN(); got != 12 {
		t.Fatalf("LiveN after restore = %d, want 12", got)
	}
	if got := p.N(); got != 12 {
		t.Fatalf("N after restore = %d, want 12", got)
	}
}

// TestPipelinedRejectsBadShardCount pins the power-of-two contract.
func TestPipelinedRejectsBadShardCount(t *testing.T) {
	for _, shards := range []int{0, -2, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPipelined(%d) did not panic", shards)
				}
			}()
			NewPipelined(shards, newMapSummaryFactory())
		}()
	}
}

// TestPipelinedName pins the wrapper suffix the serving layer reports.
func TestPipelinedName(t *testing.T) {
	p := NewPipelined(2, newMapSummaryFactory())
	defer p.Close()
	if got, want := p.Name(), "map-pipelined"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	st := p.PipelineStats()
	if st.Shards != 2 || st.RingCapacity != DefaultRingCapacity {
		t.Fatalf("PipelineStats = %+v", st)
	}
	_ = fmt.Sprintf("%+v", st)
}
