package core

import (
	"errors"
	"sort"
	"testing"
)

func TestSortByCountDesc(t *testing.T) {
	s := []ItemCount{{3, 5}, {1, 10}, {2, 5}, {4, 7}}
	SortByCountDesc(s)
	want := []ItemCount{{1, 10}, {4, 7}, {2, 5}, {3, 5}}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, s[i], want[i])
		}
	}
}

func TestTopKCopies(t *testing.T) {
	s := []ItemCount{{1, 1}, {2, 9}, {3, 5}}
	top := TopK(s, 2)
	if len(top) != 2 || top[0].Item != 2 || top[1].Item != 3 {
		t.Errorf("TopK = %+v", top)
	}
	// Original must be untouched.
	if s[0].Item != 1 || s[1].Item != 2 {
		t.Error("TopK modified its input")
	}
	if got := TopK(s, 10); len(got) != 3 {
		t.Errorf("TopK(10) length = %d", len(got))
	}
}

func TestIncompatibleWraps(t *testing.T) {
	err := Incompatible("because %d", 7)
	if !errors.Is(err, ErrIncompatible) {
		t.Error("Incompatible error does not wrap ErrIncompatible")
	}
}

// mapSummary is a minimal exact Summary used to exercise the wrappers
// without importing internal/exact (which would create an import cycle
// in tests).
type mapSummary struct {
	m map[Item]int64
	n int64
}

func newMapSummary() *mapSummary { return &mapSummary{m: map[Item]int64{}} }

func (s *mapSummary) Update(x Item, c int64) { s.m[x] += c; s.n += c }
func (s *mapSummary) Estimate(x Item) int64  { return s.m[x] }
func (s *mapSummary) N() int64               { return s.n }
func (s *mapSummary) Bytes() int             { return 32 * len(s.m) }
func (s *mapSummary) Name() string           { return "map" }

func (s *mapSummary) Query(threshold int64) []ItemCount {
	var out []ItemCount
	for it, c := range s.m {
		if c >= threshold {
			out = append(out, ItemCount{it, c})
		}
	}
	SortByCountDesc(out)
	return out
}

func (s *mapSummary) Merge(other Summary) error {
	o, ok := other.(*mapSummary)
	if !ok {
		return Incompatible("mapSummary: %T", other)
	}
	for it, c := range o.m {
		s.m[it] += c
	}
	s.n += o.n
	return nil
}

func TestTrackedAdmitsHeavyItems(t *testing.T) {
	tr := NewTracked(newMapSummary(), 3)
	// Feed counts so items 1,2,3 are heavy and 4..10 are light.
	for i := 0; i < 100; i++ {
		tr.Update(1, 1)
	}
	for i := 0; i < 80; i++ {
		tr.Update(2, 1)
	}
	for i := 0; i < 60; i++ {
		tr.Update(3, 1)
	}
	for it := Item(4); it <= 10; it++ {
		tr.Update(it, 1)
	}
	top := tr.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK length %d", len(top))
	}
	wantItems := map[Item]bool{1: true, 2: true, 3: true}
	for _, ic := range top {
		if !wantItems[ic.Item] {
			t.Errorf("unexpected tracked item %+v", ic)
		}
	}
	if top[0].Item != 1 || top[0].Count != 100 {
		t.Errorf("top item = %+v", top[0])
	}
}

func TestTrackedEvictsLightForHeavy(t *testing.T) {
	tr := NewTracked(newMapSummary(), 2)
	tr.Update(1, 1) // light, admitted (capacity)
	tr.Update(2, 1) // light, admitted (capacity)
	for i := 0; i < 50; i++ {
		tr.Update(3, 1) // heavy, must evict a light item
	}
	q := tr.Query(50)
	if len(q) != 1 || q[0].Item != 3 {
		t.Errorf("Query(50) = %+v, want item 3", q)
	}
}

func TestTrackedQueryReestimates(t *testing.T) {
	inner := newMapSummary()
	tr := NewTracked(inner, 4)
	tr.Update(5, 10)
	// Mutate the inner summary behind the tracker's back; Query must
	// reflect the inner state, not the stale heap estimate.
	inner.Update(5, 90)
	q := tr.Query(100)
	if len(q) != 1 || q[0].Count != 100 {
		t.Errorf("Query = %+v, want re-estimated count 100", q)
	}
}

func TestTrackedMerge(t *testing.T) {
	a := NewTracked(newMapSummary(), 2)
	b := NewTracked(newMapSummary(), 2)
	a.Update(1, 10)
	a.Update(2, 5)
	b.Update(3, 20)
	b.Update(1, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	top := a.TopK(2)
	if top[0].Item != 3 || top[0].Count != 20 {
		t.Errorf("top after merge = %+v", top[0])
	}
	if top[1].Item != 1 || top[1].Count != 17 {
		t.Errorf("second after merge = %+v", top[1])
	}
}

func TestTrackedPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracked(newMapSummary(), 0)
}

func TestConcurrentSummaryRace(t *testing.T) {
	c := NewConcurrent(newMapSummary())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				c.Update(Item(i%10), 1)
				_ = c.Estimate(Item(i % 10))
				if i%100 == 0 {
					_ = c.Query(1)
					_ = c.N()
					_ = c.Bytes()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.N() != 8000 {
		t.Errorf("N = %d, want 8000", c.N())
	}
}

func TestShardedPartitionsByItem(t *testing.T) {
	s := NewSharded(4, func() Summary { return newMapSummary() })
	for i := 0; i < 1000; i++ {
		s.Update(Item(i%50), 1)
	}
	if s.N() != 1000 {
		t.Errorf("N = %d", s.N())
	}
	for i := 0; i < 50; i++ {
		if got := s.Estimate(Item(i)); got != 20 {
			t.Errorf("item %d estimate %d, want 20", i, got)
		}
	}
	q := s.Query(20)
	if len(q) != 50 {
		t.Errorf("Query returned %d items, want 50", len(q))
	}
	// No duplicates across shards.
	items := map[Item]bool{}
	for _, ic := range q {
		if items[ic.Item] {
			t.Errorf("item %d reported by two shards", ic.Item)
		}
		items[ic.Item] = true
	}
}

func TestShardedConcurrentIngest(t *testing.T) {
	s := NewSharded(8, func() Summary { return newMapSummary() })
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 5000; i++ {
				s.Update(Item(i%100), 1)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.N() != 40000 {
		t.Errorf("N = %d, want 40000", s.N())
	}
	for i := 0; i < 100; i++ {
		if got := s.Estimate(Item(i)); got != 400 {
			t.Fatalf("item %d estimate %d, want 400", i, got)
		}
	}
}

func TestShardedRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %d shards", n)
				}
			}()
			NewSharded(n, func() Summary { return newMapSummary() })
		}()
	}
}

func TestSortStability(t *testing.T) {
	// Deterministic order: equal counts sort by ascending item.
	s := []ItemCount{{9, 1}, {3, 1}, {7, 1}, {1, 1}}
	SortByCountDesc(s)
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Item < s[j].Item }) {
		t.Errorf("tie order not ascending by item: %+v", s)
	}
}
