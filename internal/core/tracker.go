package core

// Tracked wraps a point-estimate summary (typically a flat Count Sketch
// or Count-Min sketch, which cannot enumerate items) and maintains a heap
// of the highest-estimate items seen so far — exactly the algorithm of
// Charikar, Chen & Farach-Colton §3.2: on each arrival, ADD to the
// sketch, then admit the item to the top-l heap if its ESTIMATE exceeds
// the current minimum.
//
// With capacity l ≥ k/(1−ε)^(1/z) (Zipf parameter z), the true top-k items
// are all tracked with high probability (paper §4.1).
type Tracked struct {
	inner    Summary
	capacity int
	index    map[Item]*tkEntry
	heap     tkHeap
	// Batch scratch: distinct items of the current batch in
	// first-appearance order (seen is reused across batches).
	seen  map[Item]struct{}
	order []Item
}

type tkEntry struct {
	item Item
	est  int64
	idx  int
}

// NewTracked wraps inner with a top-capacity item tracker.
func NewTracked(inner Summary, capacity int) *Tracked {
	if capacity <= 0 {
		panic("core: Tracked requires positive capacity")
	}
	return &Tracked{
		inner:    inner,
		capacity: capacity,
		index:    make(map[Item]*tkEntry, capacity),
	}
}

// Name reports the inner sketch's name: in the paper's plots the
// sketch+heap combination carries the sketch's label.
func (t *Tracked) Name() string { return t.inner.Name() }

// Inner exposes the wrapped summary.
func (t *Tracked) Inner() Summary { return t.inner }

// N implements Summary.
func (t *Tracked) N() int64 { return t.inner.N() }

// Update adds the arrival to the sketch and maintains the heap.
func (t *Tracked) Update(x Item, count int64) {
	t.inner.Update(x, count)
	t.admit(x, t.inner.Estimate(x))
}

// admit offers (x, est) to the top-capacity heap, the §3.2 maintenance
// step shared by the scalar and batched ingest paths.
func (t *Tracked) admit(x Item, est int64) {
	if e, ok := t.index[x]; ok {
		e.est = est
		t.heap.fix(e.idx)
		return
	}
	if len(t.heap) < t.capacity {
		e := &tkEntry{item: x, est: est}
		t.index[x] = e
		t.heap.push(e)
		return
	}
	if min := t.heap[0]; est > min.est {
		delete(t.index, min.item)
		min.item = x
		min.est = est
		t.index[x] = min
		t.heap.fix(0)
	}
}

// UpdateBatch implements BatchUpdater. When the inner sketch certifies
// monotone estimates (Count-Min under insert-only arrivals), the whole
// batch is pushed through the sketch's native batch path (row-major,
// hoisted hash state — see CountMin.UpdateBatch), then each distinct
// item is offered to the heap once, in first-appearance order, at its
// post-batch estimate: point estimates are unaffected by the linear
// sketch's reordering, a batch-end admission sees every item at an
// estimate at least as high as any mid-batch arrival would have (this
// is where monotonicity is load-bearing), and heavy items are
// re-offered on every batch in which they appear, so only the
// sub-threshold tail of the tracked heap can differ from scalar replay.
// Query re-estimates tracked items against the sketch, so reports above
// the operating threshold match the scalar path (pinned by the
// registry-wide equivalence test).
//
// Non-monotone estimators (Count Sketch: a median of signed counters
// that other items' arrivals can lower) get the exact per-arrival path
// — deferring their admissions could miss an item whose estimate was
// transiently above the heap minimum mid-batch.
func (t *Tracked) UpdateBatch(items []Item) {
	if m, ok := t.inner.(EstimateMonotone); !ok || !m.MonotoneEstimates() {
		for _, x := range items {
			t.Update(x, 1)
		}
		return
	}
	UpdateAll(t.inner, items)
	if t.seen == nil {
		t.seen = make(map[Item]struct{}, len(items))
	}
	for _, x := range items {
		if _, dup := t.seen[x]; !dup {
			t.seen[x] = struct{}{}
			t.order = append(t.order, x)
		}
	}
	for _, x := range t.order {
		t.admit(x, t.inner.Estimate(x))
	}
	clear(t.seen)
	t.order = t.order[:0]
}

// Estimate returns the sketch's point estimate.
func (t *Tracked) Estimate(x Item) int64 { return t.inner.Estimate(x) }

// Clone returns an independent deep copy: the inner sketch is cloned via
// its own Snapshotter implementation and the heap entries are copied at
// their positions. The batch dedup scratch is not copied — a clone
// starts with fresh (empty) scratch, which is state the summary's
// observable behaviour never depends on.
func (t *Tracked) Clone() *Tracked {
	nt := &Tracked{
		inner:    mustSnapshot(t.inner),
		capacity: t.capacity,
		index:    make(map[Item]*tkEntry, len(t.index)),
		heap:     make(tkHeap, len(t.heap)),
	}
	for i, e := range t.heap {
		ne := &tkEntry{item: e.item, est: e.est, idx: e.idx}
		nt.heap[i] = ne
		nt.index[ne.item] = ne
	}
	return nt
}

// Snapshot implements Snapshotter. It panics when the inner sketch does
// not implement Snapshotter itself.
func (t *Tracked) Snapshot() Summary { return t.Clone() }

// Query re-estimates every tracked item against the current sketch state
// and returns those at or above threshold, descending.
func (t *Tracked) Query(threshold int64) []ItemCount {
	var out []ItemCount
	for _, e := range t.heap {
		est := t.inner.Estimate(e.item)
		if est >= threshold {
			out = append(out, ItemCount{Item: e.item, Count: est})
		}
	}
	SortByCountDesc(out)
	return out
}

// TopK returns the k highest-estimate tracked items.
func (t *Tracked) TopK(k int) []ItemCount {
	all := t.Query(0)
	// Query(0) keeps non-negative estimates; include everything tracked.
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Bytes adds the heap footprint to the sketch's, plus (after batched
// ingest) the retained dedup scratch — charged at one map entry and one
// order slot per distinct item of the largest batch seen.
func (t *Tracked) Bytes() int {
	const entry = 2 * (8 + 8 + 8)
	const scratchEntry = 8 + 16 // order slot + map key/overhead share
	return t.inner.Bytes() + entry*t.capacity + scratchEntry*cap(t.order)
}

// Merge merges the inner sketches and re-selects tracked items from the
// union of both heaps under the merged sketch's estimates.
func (t *Tracked) Merge(other Summary) error {
	o, ok := other.(*Tracked)
	if !ok {
		return Incompatible("Tracked: cannot merge %T", other)
	}
	m, ok := t.inner.(Merger)
	if !ok {
		return Incompatible("Tracked: inner %s is not mergeable", t.inner.Name())
	}
	if err := m.Merge(o.inner); err != nil {
		return err
	}
	union := make(map[Item]struct{}, len(t.index)+len(o.index))
	for it := range t.index {
		union[it] = struct{}{}
	}
	for it := range o.index {
		union[it] = struct{}{}
	}
	candidates := make([]ItemCount, 0, len(union))
	for it := range union {
		candidates = append(candidates, ItemCount{Item: it, Count: t.inner.Estimate(it)})
	}
	SortByCountDesc(candidates)
	if len(candidates) > t.capacity {
		candidates = candidates[:t.capacity]
	}
	t.index = make(map[Item]*tkEntry, t.capacity)
	t.heap = t.heap[:0]
	for _, ic := range candidates {
		e := &tkEntry{item: ic.Item, est: ic.Count}
		t.index[ic.Item] = e
		t.heap.push(e)
	}
	return nil
}

// tkHeap is an indexed min-heap over tracked estimates.
type tkHeap []*tkEntry

func (h tkHeap) less(i, j int) bool { return h[i].est < h[j].est }

func (h tkHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *tkHeap) push(e *tkEntry) {
	e.idx = len(*h)
	*h = append(*h, e)
	h.up(e.idx)
}

func (h tkHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h tkHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h tkHeap) down(i int) bool {
	start := i
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			break
		}
		h.swap(i, small)
		i = small
	}
	return i != start
}
