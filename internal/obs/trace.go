package obs

// Request tracing: a 16-hex-digit ID minted at the edge (router or
// whichever daemon first sees the request), carried on the
// X-Freq-Trace header across router→replica forwards and
// freqmerge→node pulls, and attached to every structured log line.
// Inside a process the ID rides the context, alongside a per-request
// stage recorder feeding the slow-query log.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying the trace ID between
// daemons.
const TraceHeader = "X-Freq-Trace"

var traceSeed = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var traceCounter atomic.Uint64

// NewTraceID mints a process-unique 16-hex-digit ID: a per-process
// random seed mixed with an atomic counter (splitmix64 finalizer), so
// minting is allocation-light and never blocks on entropy.
func NewTraceID() string {
	x := traceSeed + traceCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

type ctxKey int

const (
	traceKey ctxKey = iota
	stagesKey
)

// WithTrace stores a trace ID on the context.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceFrom returns the context's trace ID, or "".
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// Stages accumulates per-stage timings and extra log attributes for
// one request; the middleware attaches one per request and folds it
// into the slow-query log line. Safe for concurrent use.
type Stages struct {
	mu    sync.Mutex
	attrs []slog.Attr
}

// WithStages attaches a fresh recorder to the context.
func WithStages(ctx context.Context) (context.Context, *Stages) {
	s := &Stages{}
	return context.WithValue(ctx, stagesKey, s), s
}

// stagesFrom returns the context's recorder, or nil.
func stagesFrom(ctx context.Context) *Stages {
	s, _ := ctx.Value(stagesKey).(*Stages)
	return s
}

// AddStage records one named stage duration on the context's
// recorder; a no-op without one (e.g. outside the middleware).
func AddStage(ctx context.Context, name string, d time.Duration) {
	if s := stagesFrom(ctx); s != nil {
		s.mu.Lock()
		s.attrs = append(s.attrs, slog.String("stage_"+name, d.String()))
		s.mu.Unlock()
	}
}

// Annotate records an extra key=value for the request's log line —
// handlers use it for bounded facts like the tenant namespace or the
// accepted item count.
func Annotate(ctx context.Context, key string, value any) {
	if s := stagesFrom(ctx); s != nil {
		s.mu.Lock()
		s.attrs = append(s.attrs, slog.Any(key, value))
		s.mu.Unlock()
	}
}

// Attrs returns the recorded attributes in insertion order.
func (s *Stages) Attrs() []slog.Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]slog.Attr(nil), s.attrs...)
}
