package obs

// Set replaces metrics.Meter on the serving path: a named-counter set
// whose Add is lock-free (one atomic add after a lock-free map
// lookup). It keeps the legacy dotted keys ("ingest.items",
// "queries.topk") so the /stats JSON "counters" section is
// byte-compatible with what Meter produced, while registering each
// key with the Prometheus registry as freq_<key>_total.
//
// The map is copy-on-write behind an atomic pointer: the steady state
// (every key already created) never takes the mutex, and key creation
// — a handful of times per process lifetime — copies a small map.

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Set is a lock-free named counter set. The zero value is not usable;
// call NewSet.
type Set struct {
	reg    *Registry
	prefix string
	mu     sync.Mutex // serializes key creation only
	m      atomic.Pointer[map[string]*Counter]
}

// NewSet returns a counter set registering its keys on reg as
// prefix_<key>_total, with dots and dashes in key flattened to
// underscores. reg may be nil for a set that only serves Snapshot.
func NewSet(reg *Registry, prefix string) *Set {
	s := &Set{reg: reg, prefix: prefix}
	empty := make(map[string]*Counter)
	s.m.Store(&empty)
	return s
}

// promName flattens a dotted key to a metric name component.
func promName(prefix, key string) string {
	flat := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, key)
	return prefix + "_" + flat + "_total"
}

// Counter returns the counter for key, creating and registering it on
// first use.
func (s *Set) Counter(key string) *Counter {
	if c := (*s.m.Load())[key]; c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.m.Load()
	if c := old[key]; c != nil {
		return c
	}
	var c *Counter
	if s.reg != nil {
		c = s.reg.Counter(promName(s.prefix, key), "Counter "+key+" (also in /stats counters).")
	} else {
		c = &Counter{}
	}
	next := make(map[string]*Counter, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = c
	s.m.Store(&next)
	return c
}

// Add increments key by d.
func (s *Set) Add(key string, d int64) { s.Counter(key).Add(d) }

// Get returns the current value of key (0 if never written).
func (s *Set) Get(key string) int64 {
	if c := (*s.m.Load())[key]; c != nil {
		return c.Value()
	}
	return 0
}

// Snapshot returns a copy of all counters under their legacy dotted
// keys — the /stats JSON "counters" section.
func (s *Set) Snapshot() map[string]int64 {
	m := *s.m.Load()
	out := make(map[string]int64, len(m))
	for k, c := range m {
		out[k] = c.Value()
	}
	return out
}
