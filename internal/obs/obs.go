package obs

// Obs bundles one daemon's observability plane: the metric registry
// behind GET /v1/metrics, the structured logger, and the slow-query
// threshold. Every daemon builds exactly one and threads it through
// its server; libraries that receive none fall back to Discard.

import (
	"fmt"
	"io"
	"log/slog"
	"time"
)

// Options configures New.
type Options struct {
	Service   string        // "freqd", "freqmerge", "freqrouter" — stamped on log lines
	LogFormat string        // "text" (default) or "json"
	LogWriter io.Writer     // defaults to io.Discard; daemons pass os.Stderr
	LogLevel  slog.Leveler  // defaults to slog.LevelInfo
	SlowQuery time.Duration // ≤0 disables the slow-request log
}

// Obs is one daemon's observability plane.
type Obs struct {
	Reg       *Registry
	Log       *slog.Logger
	Service   string
	SlowQuery time.Duration
}

// New builds a plane with a fresh registry and a slog logger in the
// requested format. The only error is an unknown LogFormat.
func New(o Options) (*Obs, error) {
	w := o.LogWriter
	if w == nil {
		w = io.Discard
	}
	hopts := &slog.HandlerOptions{Level: o.LogLevel}
	var h slog.Handler
	switch o.LogFormat {
	case "", "text":
		h = slog.NewTextHandler(w, hopts)
	case "json":
		h = slog.NewJSONHandler(w, hopts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", o.LogFormat)
	}
	logger := slog.New(h)
	if o.Service != "" {
		logger = logger.With("service", o.Service)
	}
	return &Obs{Reg: NewRegistry(), Log: logger, Service: o.Service, SlowQuery: o.SlowQuery}, nil
}

// Discard returns a plane with a working (scrapeable) registry and a
// logger that writes nowhere — the default inside libraries when the
// caller supplies no plane, so instrumentation code never nil-checks.
func Discard(service string) *Obs {
	o, _ := New(Options{Service: service})
	return o
}
