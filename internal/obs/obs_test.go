package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(HistogramOpts{Base: 0, Buckets: 4}) // bounds 1,2,4,8,+Inf
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 40, 4},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0
		}
		if got := h.bucketFor(v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if n := h.Count(); n != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", n, len(cases))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(LatencyOpts())
	for i := 0; i < 90; i++ {
		h.Observe(int64(100 * time.Microsecond)) // bucket ≤ 131072ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(50 * time.Millisecond)) // bucket ≤ 67108864ns
	}
	p50 := h.Quantile(0.50)
	if p50 < int64(100*time.Microsecond) || p50 > int64(200*time.Microsecond) {
		t.Errorf("p50 = %s, want ~100µs..200µs", time.Duration(p50))
	}
	p99 := h.Quantile(0.99)
	if p99 < int64(50*time.Millisecond) || p99 > int64(100*time.Millisecond) {
		t.Errorf("p99 = %s, want ~50ms..100ms", time.Duration(p99))
	}
	empty := newHistogram(SizeOpts())
	if empty.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestRegistryRenderAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("freq_ingest_items_total", "Items accepted.").Add(42)
	r.Counter("freq_http_requests_total", "Requests.", Label{"route", "/v1/ingest"}, Label{"code", "2xx"}).Add(7)
	r.Counter("freq_http_requests_total", "Requests.", Label{"route", "/v1/topk"}, Label{"code", "2xx"}).Add(3)
	r.Gauge("freq_wal_lag", "Records not yet durable.").Set(5)
	r.GaugeFunc("freq_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("freq_http_request_seconds", "Request latency.", LatencyOpts(), Label{"route", "/v1/topk"})
	h.Observe(int64(3 * time.Millisecond))
	h.Observe(int64(40 * time.Microsecond))
	weird := r.Counter("freq_weird_total", "Label escaping.", Label{"path", `a\b"c` + "\n"})
	weird.Inc()

	text := r.Render()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if got := fams["freq_ingest_items_total"].Series[0].Value; got != 42 {
		t.Errorf("ingest items = %v, want 42", got)
	}
	reqs := fams["freq_http_requests_total"]
	if len(reqs.Series) != 2 {
		t.Fatalf("requests series = %d, want 2", len(reqs.Series))
	}
	hist := fams["freq_http_request_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type = %q", hist.Type)
	}
	var count, sum float64
	for _, s := range hist.Series {
		switch s.Name {
		case "freq_http_request_seconds_count":
			count = s.Value
		case "freq_http_request_seconds_sum":
			sum = s.Value
		}
	}
	if count != 2 {
		t.Errorf("histogram count = %v, want 2", count)
	}
	if sum < 0.003 || sum > 0.0031 {
		t.Errorf("histogram sum = %v s, want ~0.00304", sum)
	}
	wl := fams["freq_weird_total"].Series[0].Labels["path"]
	if wl != `a\b"c`+"\n" {
		t.Errorf("escaped label round-trip = %q", wl)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"freq_orphan 1\n",              // sample without TYPE
		"# TYPE x counter\nx{le 1\n",   // unterminated labels
		"# TYPE x counter\nx 1\nx 2\n", // duplicate series
		"# TYPE x wat\n",               // unknown type
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",                          // no +Inf
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", // not cumulative
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 9\n",                       // count mismatch
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ParseExposition accepted malformed input %q", in)
		}
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("freq_x_total", "x")
	b := r.Counter("freq_x_total", "x")
	if a != b {
		t.Error("same name+labels should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("freq_x_total", "x")
}

func TestSetLegacyKeysAndPromNames(t *testing.T) {
	reg := NewRegistry()
	s := NewSet(reg, "freq")
	s.Add("ingest.items", 10)
	s.Add("ingest.items", 5)
	s.Add("queries.topk", 1)
	if s.Get("ingest.items") != 15 {
		t.Errorf("Get = %d, want 15", s.Get("ingest.items"))
	}
	if s.Get("never.written") != 0 {
		t.Error("unwritten key should read 0")
	}
	snap := s.Snapshot()
	if snap["ingest.items"] != 15 || snap["queries.topk"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	text := reg.Render()
	if !strings.Contains(text, "freq_ingest_items_total 15") {
		t.Errorf("prom name for dotted key missing:\n%s", text)
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet(NewRegistry(), "freq")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []string{"a.b", "c.d", "e.f", "g.h"}
			for i := 0; i < 1000; i++ {
				s.Add(keys[(g+i)%len(keys)], 1)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, v := range s.Snapshot() {
		total += v
	}
	if total != 8000 {
		t.Errorf("total = %d, want 8000", total)
	}
}

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestNewRejectsUnknownFormat(t *testing.T) {
	if _, err := New(Options{LogFormat: "xml"}); err == nil {
		t.Error("want error for unknown log format")
	}
}

// BenchmarkMetricsObserve is CI-gated at 0 allocs/op: the histogram
// observe path — one request's worth of instrumentation — must stay
// allocation-free and a handful of atomic adds.
func BenchmarkMetricsObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("freq_http_request_seconds", "latency", LatencyOpts(), Label{"route", "/v1/ingest"})
	c := r.Counter("freq_http_requests_total", "requests", Label{"route", "/v1/ingest"}, Label{"code", "2xx"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i&0xfffff) + 1000)
		c.Inc()
	}
}

// BenchmarkSetAdd measures the lock-free counter set against the
// mutex Meter it replaced (see BenchmarkMeterContention in
// internal/metrics) — the query-path contention satellite.
func BenchmarkSetAdd(b *testing.B) {
	s := NewSet(NewRegistry(), "freq")
	s.Add("queries.topk", 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Add("queries.topk", 1)
		}
	})
}
