package obs_test

// Daemon code logs through the structured plane or not at all: a
// stray log.Printf or fmt.Println in a serving path bypasses the
// format flag, the service attribution, and the trace field, and
// corrupts machine-parsed JSON log streams. This lint walks every
// daemon package and fails on the printing idioms. fmt.Fprint* to an
// explicit writer stays allowed (fatal() writing os.Stderr before the
// logger exists, handlers writing response bodies); the offline CLIs
// (freqgen, freqtop, freqbench, benchjson) are human-facing stdout
// tools and are deliberately out of scope.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoStrayPrintsInDaemonCode(t *testing.T) {
	daemonDirs := []string{
		"../../cmd/freqd",
		"../../cmd/freqmerge",
		"../../cmd/freqrouter",
		"../../internal/serve",
		"../../internal/router",
		"../../internal/cluster",
		"../../internal/persist",
		"../../internal/obs",
		"../../internal/tenant",
	}
	banned := []string{"log.Print", "fmt.Print"}
	checked := 0
	for _, dir := range daemonDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			checked++
			for i, ln := range strings.Split(string(src), "\n") {
				for _, bad := range banned {
					if strings.Contains(ln, bad) {
						t.Errorf("%s:%d: %s in daemon code — use the obs structured logger", path, i+1, bad)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("lint walked zero files — directory layout changed?")
	}
}
