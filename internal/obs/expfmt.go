package obs

// Prometheus text exposition format 0.0.4: renderer for Registry and
// an in-tree parser used by the conformance tests to round-trip a
// scrape without a promtool dependency.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render produces the full exposition: families sorted by name,
// series sorted by label fingerprint, histograms expanded into
// cumulative _bucket/_sum/_count lines with Scale applied.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		sorted := append([]*series(nil), fam.series...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
		for _, s := range sorted {
			switch {
			case s.hist != nil:
				renderHistogram(&b, fam.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, formatLabels(s.labels), formatValue(s.fn()))
			case s.ctr != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, formatLabels(s.labels), s.ctr.Value())
			case s.gg != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, formatLabels(s.labels), s.gg.Value())
			}
		}
	}
	return b.String()
}

func renderHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		var le string
		if i == len(h.buckets)-1 {
			le = "+Inf"
		} else {
			le = formatValue(float64(int64(1)<<(h.base+i)) / h.scale)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, formatLabels(s.labels, Label{"le", le}), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, formatLabels(s.labels), formatValue(float64(h.sum.Load())/h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, formatLabels(s.labels), cum)
}

// ParsedSeries is one sample line from a scrape. Name is the raw
// sample name — for histograms that includes the _bucket/_sum/_count
// suffix, while the owning ParsedFamily carries the base name.
type ParsedSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a scrape: its TYPE, optional
// HELP, and every sample line carrying the family's name (for
// histograms that includes the _bucket/_sum/_count suffixed lines).
type ParsedFamily struct {
	Name   string
	Type   string
	Help   string
	Series []ParsedSeries
}

// ParseExposition parses Prometheus text format 0.0.4 and validates
// what a scraper would choke on: malformed lines, samples without a
// TYPE, duplicate series, and histogram buckets that are not
// cumulative or whose +Inf bucket disagrees with _count. It exists so
// the conformance tests can round-trip /v1/metrics in-tree.
func ParseExposition(rd io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	seen := make(map[string]bool) // name + sorted labels → dup detection
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !nameOK(name) {
				return nil, fmt.Errorf("line %d: HELP for invalid name %q", lineNo, name)
			}
			fam := fams[name]
			if fam == nil {
				fam = &ParsedFamily{Name: name}
				fams[name] = fam
			}
			fam.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !nameOK(name) {
				return nil, fmt.Errorf("line %d: TYPE for invalid name %q", lineNo, name)
			}
			switch typ {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			fam := fams[name]
			if fam == nil {
				fam = &ParsedFamily{Name: name}
				fams[name] = fam
			}
			if fam.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			fam.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyFor(fams, name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE line", lineNo, name)
		}
		dupKey := name + "\x00" + canonLabels(labels)
		if seen[dupKey] {
			return nil, fmt.Errorf("line %d: duplicate series %s%v", lineNo, name, labels)
		}
		seen[dupKey] = true
		fam.Series = append(fam.Series, ParsedSeries{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", fam.Name)
		}
		if fam.Type == typeHistogram {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its family, accounting for
// histogram suffixes.
func familyFor(fams map[string]*ParsedFamily, name string) *ParsedFamily {
	if fam := fams[name]; fam != nil {
		return fam
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if fam := fams[base]; fam != nil && fam.Type == typeHistogram {
				return fam
			}
		}
	}
	return nil
}

func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:i]
	if !nameOK(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	// histogram suffixes carry the family name; label names are checked below
	labels := make(map[string]string)
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote, esc := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case esc:
				esc = false
			case c == '\\' && inQuote:
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	// timestamps (a second field) are legal in 0.0.4; we never emit
	// them, so reject to keep the round-trip strict.
	if strings.ContainsAny(valStr, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected extra fields in %q", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !nameOK(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		var val strings.Builder
		j := 1
		for ; j < len(s); j++ {
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				j++
				switch s[j] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", s[j], key)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(s) {
			return fmt.Errorf("unterminated value for label %s", key)
		}
		if _, dup := into[key]; dup {
			return fmt.Errorf("duplicate label %s", key)
		}
		into[key] = val.String()
		s = s[j+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// checkHistogram validates, per label set: cumulative bucket counts,
// a +Inf bucket present, and _count equal to the +Inf bucket.
func checkHistogram(fam *ParsedFamily) error {
	type hs struct {
		buckets  []ParsedSeries // in appearance order
		infCount float64
		sawInf   bool
		count    float64
		sawCount bool
	}
	groups := make(map[string]*hs)
	group := func(labels map[string]string) *hs {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				cp[k] = v
			}
		}
		key := canonLabels(cp)
		g := groups[key]
		if g == nil {
			g = &hs{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Series {
		switch s.Name {
		case fam.Name + "_bucket":
			g := group(s.Labels)
			g.buckets = append(g.buckets, s)
			if s.Labels["le"] == "+Inf" {
				g.sawInf, g.infCount = true, s.Value
			}
		case fam.Name + "_count":
			g := group(s.Labels)
			g.sawCount, g.count = true, s.Value
		case fam.Name + "_sum":
		default:
			return fmt.Errorf("%s: unexpected sample name %s in histogram family", fam.Name, s.Name)
		}
	}
	for key, g := range groups {
		var prev float64
		for _, b := range g.buckets {
			if b.Value < prev {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative", fam.Name, key)
			}
			prev = b.Value
		}
		if !g.sawInf {
			return fmt.Errorf("%s{%s}: histogram missing +Inf bucket", fam.Name, key)
		}
		if !g.sawCount || g.count != g.infCount {
			return fmt.Errorf("%s{%s}: _count %v disagrees with +Inf bucket %v", fam.Name, key, g.count, g.infCount)
		}
	}
	return nil
}
