// Package obs is the observability plane shared by freqd, freqmerge,
// and freqrouter: atomic counters and gauges, a fixed-boundary
// log₂-bucket latency histogram (one atomic add per observation, zero
// allocations steady-state), a registry that renders the Prometheus
// text exposition format at GET /v1/metrics, structured slog loggers,
// and X-Freq-Trace request-tracing helpers. It depends only on the
// standard library.
//
// The registry is per-process state owned by whoever builds the
// daemon — there are no package-level globals, so tests can build as
// many isolated planes as they like.
package obs

import (
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing series. The zero value is
// ready to use; Add is a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d. Counters are monotonic by contract; callers must not
// pass negative deltas.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramOpts fixes a histogram's bucket geometry. Upper bounds are
// powers of two in the histogram's native unit: bucket i covers
// observations ≤ 2^(Base+i), with one extra implicit +Inf bucket.
// Scale divides bounds and sum at render time only — a latency
// histogram observes nanoseconds (Scale 1e9) and renders seconds, so
// the hot path never touches floating point.
type HistogramOpts struct {
	Base    int     // exponent of the first upper bound (bucket 0 covers v ≤ 2^Base)
	Buckets int     // finite bucket count (excluding +Inf)
	Scale   float64 // render-time divisor; 0 means 1 (render native units)
}

// LatencyOpts covers 1.024µs .. ~17s in nanoseconds, rendered as
// seconds. 25 finite buckets: fine enough for p50/p90/p99 on the
// query path, coarse enough to stay a single cache line pair.
func LatencyOpts() HistogramOpts { return HistogramOpts{Base: 10, Buckets: 25, Scale: 1e9} }

// SizeOpts covers 1 .. 2^24 items for batch-size distributions.
func SizeOpts() HistogramOpts { return HistogramOpts{Base: 0, Buckets: 25, Scale: 1} }

// Histogram is a fixed-boundary log₂ histogram. Observe is one atomic
// add into the matched bucket plus one into the running sum — no
// locks, no allocation. Quantiles are derived from the cumulative
// bucket counts at read time.
type Histogram struct {
	base    int
	scale   float64
	sum     atomic.Int64
	buckets []atomic.Int64 // len = Buckets+1; last is +Inf
}

func newHistogram(o HistogramOpts) *Histogram {
	if o.Buckets <= 0 || o.Buckets > 62 {
		panic(fmt.Sprintf("obs: histogram bucket count %d out of range", o.Buckets))
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return &Histogram{base: o.Base, scale: o.Scale, buckets: make([]atomic.Int64, o.Buckets+1)}
}

// bucketFor returns the index of the lowest bucket whose upper bound
// covers v: the smallest i with v ≤ 2^(base+i), clamped to the +Inf
// bucket.
func (h *Histogram) bucketFor(v int64) int {
	if v <= 1<<h.base {
		return 0
	}
	i := bits.Len64(uint64(v-1)) - h.base // smallest e with v ≤ 2^e, shifted
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// Observe records one observation in the histogram's native unit.
// Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketFor(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the running sum in native units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) in
// native units: the upper bound of the bucket holding the rank. With
// log₂ buckets this is within 2× of the true value — the right
// precision for an operational p99. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == len(h.buckets)-1 {
				return h.sum.Load() // +Inf bucket: sum is the only honest bound
			}
			return 1 << (h.base + i)
		}
	}
	return 1 << (h.base + len(h.buckets) - 1)
}

// Label is one name="value" pair on a series. Cardinality discipline
// is the caller's: shard IDs and algorithm names are bounded and
// belong in labels; tenant namespaces and stream items are not and do
// not.
type Label struct{ Key, Value string }

// series kinds, also the rendered TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

type series struct {
	labels []Label
	key    string // canonical label fingerprint for dedup/sort

	ctr  *Counter
	gg   *Gauge
	hist *Histogram
	fn   func() float64 // CounterFunc/GaugeFunc collector
}

type family struct {
	name   string
	help   string
	typ    string
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Constructors are get-or-create and
// idempotent for identical (name, type, labels); re-registering a
// name with a different type panics — that is a programming error,
// not an operational condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

var nameOK = func(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameOK(l.Key) || strings.Contains(l.Key, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ}
		r.fams[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, fam.typ))
	}
	key := labelKey(labels)
	for _, s := range fam.series {
		if s.key == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	fam.series = append(fam.series, s)
	return s
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil && s.fn == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the gauge series for name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gg == nil && s.fn == nil {
		s.gg = &Gauge{}
	}
	return s.gg
}

// GaugeFunc registers a gauge whose value is read by fn at scrape
// time — the low-invasiveness way to export an existing Stats()
// accessor without threading writes through the hot path. fn must be
// safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// CounterFunc registers a counter read from fn at scrape time. fn
// must be monotonic and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// Histogram returns the histogram series for name+labels, creating it
// with the given geometry on first use. Later calls with the same
// name ignore opts.
func (r *Registry) Histogram(name, help string, opts HistogramOpts, labels ...Label) *Histogram {
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(opts)
	}
	return s.hist
}

// ContentType is the exposition media type served at /v1/metrics —
// Prometheus text format 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.Write([]byte(r.Render()))
	})
}
