// Package testutil holds the shared condition-polling helpers the test
// suites use instead of bare time.Sleep. A sleep encodes a guess about
// scheduler and I/O latency — too short flakes under -race or CI load,
// too long wastes every run forever. Polling encodes the actual
// postcondition: the test proceeds the moment it holds and fails loudly
// (with the caller's description) only when it genuinely never does.
package testutil

import (
	"testing"
	"time"
)

// pollEvery is the condition re-check cadence: fine enough that tests
// don't dawdle after the condition flips, coarse enough not to spin.
const pollEvery = 2 * time.Millisecond

// Poll re-checks cond every few milliseconds until it returns true or
// timeout elapses, reporting whether the condition held. The non-fatal
// variant, for tests that want to assert something richer on failure.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(pollEvery)
	}
}

// Eventually fails the test if cond does not hold within timeout. The
// format/args describe what was being waited for, so a timeout reads as
// a real assertion failure, not a mystery hang.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("condition never held within %v: "+format, append([]any{timeout}, args...)...)
	}
}
