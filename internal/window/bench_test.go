package window

import (
	"sync"
	"testing"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/zipf"
)

// The windowed entries of the performance trajectory (BENCH_*.json):
// BenchmarkWindowUpdateBatch is the windowed twin of the root package's
// BenchmarkUpdateBatch — per-item cost of batched ingest, here paying
// the block split plus the per-block Space-Saving batch path — and
// BenchmarkWindowSnapshotServing mirrors core's BenchmarkSnapshotServing
// over a windowed target: ingest throughput under a ticker-paced query
// load answered from ring-deep snapshots must stay within a few percent
// of ingest-only. Both are CPU-bound and gated by the CI bench job.

func benchWindowStream(b *testing.B, n int) []core.Item {
	b.Helper()
	g, err := zipf.NewGenerator(1<<20, 1.0, 20080824, true)
	if err != nil {
		b.Fatal(err)
	}
	return g.Stream(n)
}

func BenchmarkWindowUpdateBatch(b *testing.B) {
	stream := benchWindowStream(b, 1<<17)
	const batch = core.DefaultBatchSize
	s, err := NewWindowed(1<<16, 8, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		off := done % len(stream)
		n := batch
		if n > b.N-done {
			n = b.N - done
		}
		if n > len(stream)-off {
			n = len(stream) - off
		}
		s.UpdateBatch(stream[off : off+n])
		done += n
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(1e6/perOp, "upd/ms")
	}
	b.ReportMetric(float64(s.Bytes()), "bytes")
}

func BenchmarkWindowSnapshotServing(b *testing.B) {
	stream := benchWindowStream(b, 1<<20)
	const batch = 4096
	const queryInterval = 2 * time.Millisecond // 500 queries/s + 500 estimates/s

	mk := func() *core.Concurrent {
		s, err := NewWindowed(1<<16, 8, 1000)
		if err != nil {
			b.Fatal(err)
		}
		return core.NewConcurrent(s)
	}
	ingest := func(b *testing.B, c *core.Concurrent) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * batch) % (len(stream) - batch)
			c.UpdateBatch(stream[lo : lo+batch])
		}
		b.StopTimer()
	}
	withReader := func(b *testing.B, c *core.Concurrent) {
		stop := make(chan struct{})
		var rg sync.WaitGroup
		rg.Add(1)
		go func() {
			defer rg.Done()
			tick := time.NewTicker(queryInterval)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = c.Estimate(core.Item(uint64(i)))
					_ = c.Query(int64(1) << 10)
				}
			}
		}()
		ingest(b, c)
		close(stop)
		rg.Wait()
	}

	b.Run("ingest-only", func(b *testing.B) {
		ingest(b, mk())
	})
	b.Run("ingest+snapshot-reads", func(b *testing.B) {
		withReader(b, mk().ServeSnapshots(100*time.Millisecond))
	})
}
