package window

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/zipf"
)

func TestNewValidation(t *testing.T) {
	cases := [][3]int{
		{0, 4, 10}, {100, 0, 10}, {100, 4, 0}, {100, 3, 10},
		// Over the wire-format geometry bounds: rejected at construction
		// so no legally-built window can write an undecodable checkpoint.
		{100, 10, maxWNCounters + 1},
		{1 << 17, 1 << 17, 1},
	}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2]); err == nil {
			t.Errorf("New(%v) accepted", c)
		}
	}
}

func TestWindowForgetsOldItems(t *testing.T) {
	w, err := New(1000, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: item 1 is hot.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			w.Update(1)
		} else {
			w.Update(core.Item(1000 + i))
		}
	}
	if w.Estimate(1) < 450 {
		t.Fatalf("hot item estimate %d during phase 1", w.Estimate(1))
	}
	// Phase 2: item 1 vanishes; after > W + block new items its counts
	// must be fully expired.
	for i := 0; i < 1300; i++ {
		w.Update(core.Item(5000 + i))
	}
	// All of item 1's mass expired; only the Space-Saving min-counter
	// slack for untracked items may remain.
	if got := w.Estimate(1); got > w.Slack() {
		t.Errorf("expired item estimated at %d, above slack %d", got, w.Slack())
	}
}

func TestWindowRecall(t *testing.T) {
	// An item occupying 10% of the current window must always be
	// reported at a 5% threshold.
	w, _ := New(2000, 4, 100)
	g, _ := zipf.NewGenerator(1<<14, 0.8, 3, true)
	hot := core.Item(12345)
	for i := 0; i < 10000; i++ {
		if i%10 == 0 {
			w.Update(hot)
		} else {
			w.Update(g.Next())
		}
		if i > 2000 && i%500 == 0 {
			threshold := int64(0.05 * float64(w.Size()))
			found := false
			for _, ic := range w.Query(threshold) {
				if ic.Item == hot {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("step %d: hot item missing from window query", i)
			}
		}
	}
}

func TestWindowLiveBounded(t *testing.T) {
	w, _ := New(1000, 4, 20)
	for i := 0; i < 50000; i++ {
		w.Update(core.Item(i))
	}
	if w.Live() > int64(w.Size())+int64(w.Size()/4) {
		t.Errorf("live count %d exceeds W + block", w.Live())
	}
	if w.N() != 50000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWindowEstimateWithinSlack(t *testing.T) {
	w, _ := New(4000, 8, 200)
	g, _ := zipf.NewGenerator(1<<12, 1.2, 9, true)
	recent := make([]core.Item, 0, 4000)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		w.Update(it)
		recent = append(recent, it)
		if len(recent) > 4000 {
			recent = recent[1:]
		}
	}
	// Exact windowed counts.
	exactWin := map[core.Item]int64{}
	for _, it := range recent {
		exactWin[it]++
	}
	slack := w.Slack()
	for r := 1; r <= 100; r++ {
		it := g.ItemOfRank(r)
		est := w.Estimate(it)
		tru := exactWin[it]
		if est < tru {
			t.Fatalf("rank %d: windowed estimate %d underestimates true %d", r, est, tru)
		}
		if est > tru+slack {
			t.Fatalf("rank %d: windowed estimate %d exceeds true %d + slack %d", r, est, tru, slack)
		}
	}
}

func TestWindowBytesBounded(t *testing.T) {
	w, _ := New(10000, 10, 50)
	for i := 0; i < 100000; i++ {
		w.Update(core.Item(i % 1000))
	}
	// At most `blocks` live summaries of k counters each.
	if w.Bytes() > 10*50*64*2 {
		t.Errorf("window footprint %d bytes implausibly large", w.Bytes())
	}
}
