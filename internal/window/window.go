// Package window provides sliding-window frequent items: heavy hitters
// over the most recent W stream items, not the whole history. This is the
// natural "recent trends" extension the VLDB 2008 study's applications
// call for (queries trending *today*, flows hot *right now*) and a
// standard follow-up to whole-stream summaries.
//
// The construction is block decomposition: the window is covered by B
// fixed-size blocks, each summarized by an independent Space-Saving
// summary. The oldest block is dropped as the window slides; queries
// merge the live blocks. Errors compound from two sources — the per-block
// Space-Saving overestimate (εW/B per block, εW total) and the boundary
// block, whose up-to-W/B expired items may still be counted — both
// bounded and reported via Slack.
package window

import (
	"fmt"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
)

// Window summarizes the most recent Size items with B blocks of
// Space-Saving summaries.
type Window struct {
	size      int
	blocks    int
	blockLen  int
	k         int // counters per block summary
	ring      []*counters.SpaceSavingHeap
	head      int // index of the block currently being filled
	curFill   int
	liveCount int64 // items currently represented (≤ size + blockLen)
	n         int64 // total items ever seen
}

// New returns a sliding window of the given size covered by blocks
// Space-Saving summaries of k counters each. size must be a multiple of
// blocks. The geometry bounds match what the WN01 decoder accepts, so
// any window that can be constructed can also be checkpointed and
// recovered — an over-bound configuration fails here, at startup, not
// at recovery time with an unreadable data directory.
func New(size, blocks, k int) (*Window, error) {
	if size <= 0 || blocks <= 0 || k <= 0 {
		return nil, fmt.Errorf("window: size, blocks, k must be positive")
	}
	if size%blocks != 0 {
		return nil, fmt.Errorf("window: size %d not a multiple of blocks %d", size, blocks)
	}
	if blocks > maxWNBlocks || k > maxWNCounters || int64(size) > maxWNSize {
		return nil, fmt.Errorf("window: geometry out of range (W=%d B=%d k=%d; max %d/%d/%d)",
			size, blocks, k, maxWNSize, maxWNBlocks, maxWNCounters)
	}
	// The ring keeps blocks+1 summaries so the live blocks always cover at
	// least the last W items: B full blocks plus the one being filled.
	// Coverage therefore spans [W, W + W/B] items, which makes windowed
	// estimates one-sided (never below the true last-W count).
	w := &Window{
		size:     size,
		blocks:   blocks,
		blockLen: size / blocks,
		k:        k,
		ring:     make([]*counters.SpaceSavingHeap, blocks+1),
	}
	w.ring[0] = counters.NewSpaceSavingHeap(k)
	return w, nil
}

// Size returns the window length W.
func (w *Window) Size() int { return w.size }

// N returns the total number of items ever observed.
func (w *Window) N() int64 { return w.n }

// Live returns the number of items currently represented in the window
// summaries (at most W + W/B during the boundary block).
func (w *Window) Live() int64 { return w.liveCount }

// Slack returns the maximum overestimation of any windowed estimate: the
// sum of per-block Space-Saving slack plus one boundary block of expired
// items.
func (w *Window) Slack() int64 {
	return int64(w.blocks+1)*int64(w.blockLen)/int64(w.k) + int64(w.blockLen)
}

// Update observes one item (unit count).
func (w *Window) Update(x core.Item) {
	w.n++
	w.liveCount++
	w.ring[w.head].Update(x, 1)
	w.curFill++
	if w.curFill == w.blockLen {
		w.rotate()
	}
}

// rotate advances to the next ring slot once the current block is full:
// the next slot becomes current and whatever it held expires. Block
// boundaries are a pure function of the arrival count, which is what
// makes the windowed state reproducible from any stream prefix (WAL
// replay lands on the same boundaries the live run did).
func (w *Window) rotate() {
	w.head = (w.head + 1) % len(w.ring)
	if old := w.ring[w.head]; old != nil {
		w.liveCount -= old.N()
	}
	w.ring[w.head] = counters.NewSpaceSavingHeap(w.k)
	w.curFill = 0
}

// merged builds a fresh summary covering all live blocks.
func (w *Window) merged() *counters.SpaceSavingHeap {
	m := counters.NewSpaceSavingHeap(w.k)
	for _, b := range w.ring {
		if b == nil || b.N() == 0 {
			continue
		}
		// Merge never fails between same-typed summaries.
		if err := m.Merge(b); err != nil {
			panic("window: " + err.Error())
		}
	}
	return m
}

// Estimate returns an upper-bound estimate of x's count within the
// current window (plus the boundary block).
func (w *Window) Estimate(x core.Item) int64 {
	var total int64
	for _, b := range w.ring {
		if b == nil {
			continue
		}
		if g := b.Estimate(x); g > 0 {
			total += g
		}
	}
	return total
}

// Query returns the items whose windowed estimate reaches threshold,
// descending. Recall guarantee: any item with at least threshold
// occurrences in the current window is reported, because block summaries
// never underestimate.
func (w *Window) Query(threshold int64) []core.ItemCount {
	return w.merged().Query(threshold)
}

// Bytes reports the footprint of all live block summaries.
func (w *Window) Bytes() int {
	total := 0
	for _, b := range w.ring {
		if b != nil {
			total += b.Bytes()
		}
	}
	return total
}
