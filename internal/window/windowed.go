package window

import (
	"streamfreq/internal/core"
	"streamfreq/internal/counters"
)

// Windowed lifts Window to the repository's full summary contract, so
// sliding-window heavy hitters plug into every layer built on
// core.Summary: the Concurrent wrapper's snapshot serving, the
// registry wire format (WN01), checkpoints and WAL recovery, and the
// cluster merge. It answers the *recent-past* form of the frequent-items
// question — counts over (roughly) the last W arrivals instead of the
// whole stream — which is the operating point of the paper's trending-
// queries and hot-flows applications.
//
// Contracts, layer by layer:
//
//   - Summary: Update accepts weighted arrivals (count consecutive unit
//     arrivals of the same item, split across block boundaries exactly
//     where scalar arrivals would fall); Estimate/Query answer over the
//     live blocks and are one-sided (never below the true last-W count,
//     above it by at most Slack); N is the total stream length ever
//     seen, as everywhere else — the durability layer's stream-position
//     accounting depends on it. The windowed denominator for φ-style
//     thresholds is WindowN.
//   - BatchUpdater: UpdateBatch splits the batch at block boundaries and
//     feeds each segment through the block's own Space-Saving batch
//     path. Block boundaries depend only on the arrival count, so a WAL
//     replay with the original batch boundaries reproduces the live
//     run's state bit for bit.
//   - Snapshotter: Clone deep-copies the ring, so snapshot serving,
//     checkpoints, and /summary shipping work unchanged.
//   - Merger: windows of identical geometry merge block-by-block
//     aligned by recency — the same mergeable-summaries construction
//     the per-block summaries already use — so a coordinator can serve
//     the union of several nodes' recent traffic. See Merge for the
//     exact semantics.
//
// Durability semantics (the expiring-block contract): a checkpoint
// encodes only the live ring — expired blocks are gone from durable
// state, which is what keeps it O(W) however long the server runs — and
// WAL replay reconstructs block boundaries from the batch records the
// log already preserves, because boundaries are a function of stream
// position alone. A recovered window is therefore bit-identical (via
// WN01) to a fresh window fed exactly the durable prefix with the
// original batch boundaries; recovery_test.go pins this.
type Windowed struct {
	*Window
	// coverage is the total window span represented: W for a single
	// stream, summed under Merge (a merged summary covers one window per
	// contributing node). It is the cap WindowN applies to the live item
	// count.
	coverage int64
}

// NewWindowed returns a sliding-window summary over the most recent
// size items, covered by blocks Space-Saving summaries of k counters
// each; size must be a multiple of blocks.
func NewWindowed(size, blocks, k int) (*Windowed, error) {
	w, err := New(size, blocks, k)
	if err != nil {
		return nil, err
	}
	return &Windowed{Window: w, coverage: int64(size)}, nil
}

// Name implements core.Summary. "SSW" = Space-Saving, windowed.
func (s *Windowed) Name() string { return "SSW" }

// K returns the per-block counter budget.
func (s *Windowed) K() int { return s.k }

// Blocks returns the block count B.
func (s *Windowed) Blocks() int { return s.blocks }

// WindowN returns the windowed stream length — the denominator for
// φ-style thresholds over recent traffic: the live item count, capped
// at the window span (live counts run up to W + W/B while the boundary
// block drains, and capping keeps φ·WindowN at the φ·W operating point
// there). The serving layer uses it to turn /topk?phi= into a
// recent-traffic threshold instead of a whole-history one.
func (s *Windowed) WindowN() int64 {
	if s.liveCount < s.coverage {
		return s.liveCount
	}
	return s.coverage
}

// fillSegments walks total arrivals through the ring, one segment per
// block-boundary crossing: apply feeds the next m arrivals into the
// current head block, then the shared accounting advances the fill and
// rotates when the block completes. Both ingest paths run through this
// single walk, so the boundary and liveCount rules cannot drift apart —
// which is what the bit-identical WAL-replay contract leans on.
func (w *Window) fillSegments(total int64, apply func(m int64)) {
	for total > 0 {
		m := int64(w.blockLen - w.curFill)
		if m > total {
			m = total
		}
		apply(m)
		w.n += m
		w.liveCount += m
		w.curFill += int(m)
		if w.curFill == w.blockLen {
			w.rotate()
		}
		total -= m
	}
}

// Update implements core.Summary for the insert-only model: count
// consecutive arrivals of x, split across block boundaries exactly as
// count scalar arrivals would be. count must be positive.
func (s *Windowed) Update(x core.Item, count int64) {
	if count <= 0 {
		panic("window: Windowed requires positive update counts (insert-only stream model)")
	}
	w := s.Window
	w.fillSegments(count, func(m int64) {
		w.ring[w.head].Update(x, m)
	})
}

// UpdateBatch implements core.BatchUpdater: the batch is split at block
// boundaries and each segment ingested through the block summary's own
// batch path, so the amortized Space-Saving costs carry over and the
// resulting state depends only on the stream content and the batch
// boundaries — the exact reproducibility the WAL replay contract needs.
func (s *Windowed) UpdateBatch(items []core.Item) {
	w := s.Window
	off := 0
	w.fillSegments(int64(len(items)), func(m int64) {
		w.ring[w.head].UpdateBatch(items[off : off+int(m)])
		off += int(m)
	})
}

// Clone returns an independent deep copy: every live block is cloned
// and the ring geometry (head, fill, accounting) copied verbatim, so
// the clone serves exactly the parent's current window and neither side
// ever observes the other's subsequent arrivals.
func (s *Windowed) Clone() *Windowed {
	w := s.Window
	nw := &Window{
		size:      w.size,
		blocks:    w.blocks,
		blockLen:  w.blockLen,
		k:         w.k,
		ring:      make([]*counters.SpaceSavingHeap, len(w.ring)),
		head:      w.head,
		curFill:   w.curFill,
		liveCount: w.liveCount,
		n:         w.n,
	}
	for i, b := range w.ring {
		if b != nil {
			nw.ring[i] = b.Clone()
		}
	}
	return &Windowed{Window: nw, coverage: s.coverage}
}

// Snapshot implements core.Snapshotter.
func (s *Windowed) Snapshot() core.Summary { return s.Clone() }

// Merge combines another windowed summary of identical geometry (same
// W, B, k) into this one, block-by-block aligned by recency: the other
// side's freshest block folds into the receiver's freshest, its second-
// freshest into the second-freshest, and so on, each per-block merge
// being the Space-Saving mergeable-summaries construction. The result
// answers for the union of the two recent windows — every item frequent
// in either node's last W arrivals stays reported, estimates never
// underestimate the union's windowed count, and the per-side slacks
// add. coverage sums (the merged summary spans one window per node), so
// WindowN keeps φ-thresholds meaningful over the union.
//
// The merged summary is a serving artifact: it answers queries and
// re-encodes deterministically (coordinators stack), but block
// boundaries are per-stream, so continuing to *ingest* into a merged
// summary rotates on the receiver's own fill cadence only.
func (s *Windowed) Merge(other core.Summary) error {
	o, ok := other.(*Windowed)
	if !ok {
		return core.Incompatible("Windowed: cannot merge %T", other)
	}
	if o.size != s.size || o.blocks != s.blocks || o.k != s.k {
		return core.Incompatible("Windowed: geometry mismatch (W=%d/%d, B=%d/%d, k=%d/%d)",
			s.size, o.size, s.blocks, o.blocks, s.k, o.k)
	}
	ring := len(s.ring)
	for j := 0; j < ring; j++ {
		ob := o.ring[((o.head-j)%ring+ring)%ring]
		if ob == nil || ob.N() == 0 {
			continue
		}
		si := ((s.head-j)%ring + ring) % ring
		if rb := s.ring[si]; rb != nil {
			if err := rb.Merge(ob); err != nil {
				return err
			}
		} else {
			s.ring[si] = ob.Clone()
		}
	}
	s.n += o.n
	s.coverage += o.coverage
	var live int64
	for _, b := range s.ring {
		if b != nil {
			live += b.N()
		}
	}
	s.liveCount = live
	return nil
}

// Stats is the windowed observability snapshot freqd's /stats surfaces.
type Stats struct {
	// Size is the window length W; Blocks the block count B; BlockLen
	// W/B; K the per-block counter budget.
	Size, Blocks, BlockLen, K int
	// N is the total arrivals ever seen; Live the items currently
	// represented in the ring (up to W + W/B); WindowN the capped
	// φ-threshold denominator; Coverage the summed window span (W per
	// merged stream).
	N, Live, WindowN, Coverage int64
	// Slack bounds the overestimation of any windowed estimate.
	Slack int64
	// BoundaryExpired is how many already-expired items the boundary
	// (oldest) block still counts — Live − WindowN, between 0 and
	// BlockLen for an unmerged window.
	BoundaryExpired int64
}

// WindowStats reports the window's current shape and error accounting.
func (s *Windowed) WindowStats() Stats {
	return Stats{
		Size:            s.size,
		Blocks:          s.blocks,
		BlockLen:        s.blockLen,
		K:               s.k,
		N:               s.n,
		Live:            s.liveCount,
		WindowN:         s.WindowN(),
		Coverage:        s.coverage,
		Slack:           s.Slack(),
		BoundaryExpired: s.liveCount - s.WindowN(),
	}
}
