package window

import (
	"bytes"
	"testing"
)

// FuzzEHistogram is the native-fuzzing arm of the exponential
// histogram's contract: for an arbitrary Observe sequence the structure
// never panics, its space stays logarithmic, and Count stays within the
// ε relative-error envelope of an exact sliding ring buffer at every
// step — the same bound the deterministic test checks on one stochastic
// schedule, here driven by whatever adversarial event patterns the
// fuzzer invents (bursts, exact-period pulses, long silences).
func FuzzEHistogram(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF})       // saturated
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}) // silent
	f.Add([]byte{0xAA, 0x55, 0xAA, 0x55}) // alternating
	f.Add(bytes.Repeat([]byte{0x80}, 64)) // one event per 8 steps
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x01}, 32))

	const (
		window = 64
		eps    = 0.2
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 { // 8 steps per byte; 4096 steps is plenty deep
			data = data[:512]
		}
		h, err := NewEHistogram(window, eps)
		if err != nil {
			t.Fatal(err)
		}
		// The exact reference: a ring of the last `window` events.
		ring := make([]bool, window)
		var exact int64
		step := 0
		for _, b := range data {
			for bit := 0; bit < 8; bit++ {
				ev := b&(1<<bit) != 0
				// Slide the exact window before observing, mirroring
				// Observe's advance-then-record order.
				if ring[step%window] {
					exact--
				}
				ring[step%window] = ev
				if ev {
					exact++
				}
				step++
				h.Observe(ev)

				got := h.Count()
				if exact == 0 {
					if got != 0 {
						t.Fatalf("step %d: Count = %d with an event-free window", step, got)
					}
					continue
				}
				bound := int64(1.5*eps*float64(exact)) + 1
				if diff := got - exact; diff > bound || diff < -bound {
					t.Fatalf("step %d: Count = %d vs exact %d (bound ±%d)", step, got, exact, bound)
				}
				if h.Buckets() > 96 {
					t.Fatalf("step %d: %d buckets; logarithmic space bound violated", step, h.Buckets())
				}
			}
		}
	})
}
