package window

import (
	"fmt"
	"sort"
	"time"

	"streamfreq/internal/core"
)

// MultiRes composes the exponential histogram with the point/hierarchy
// summaries for wall-clock multi-resolution serving: one ingest stream
// feeds a ring of bucket summaries per configured horizon (1m, 1h, 1d,
// …), and a query for any horizon merges that ring's live buckets into
// one summary of roughly the last-horizon traffic, with the horizon's
// EHistogram supplying the event-count denominator (so φ·N thresholds
// scale to the horizon, not the whole stream).
//
// The bucket ring is the standard block decomposition: each horizon is
// split into Blocks wall-clock-aligned spans, a bucket summary per live
// span, written lazily (an idle span costs nothing) and recycled in
// place when its span number comes around again. The horizon a view
// covers is therefore approximate at block granularity — between
// span−span/Blocks and span of trailing traffic — while the EHistogram
// counts events over exactly the horizon with relative error ε.
//
// MultiRes is a serving composition, not a wire citizen: it has no
// magic-versioned format and no Merger, so it is memory-only — freqd
// rejects -horizons with -data-dir. Whole-stream durability plus
// wall-clock windows in one process is an open composition (checkpoint
// the bucket rings like Windowed checkpoints its block ring).
type MultiRes struct {
	rings   []*horizonRing
	factory func() core.Summary
	n       int64
	name    string
	now     func() time.Time
}

type horizonRing struct {
	span    time.Duration
	block   time.Duration // span / blocks
	buckets []core.Summary
	blockNo []int64 // absolute block number held by each slot; -1 = empty
	eh      *EHistogram
}

// MultiResConfig parameterizes a MultiRes.
type MultiResConfig struct {
	// Horizons are the servable wall-clock spans, e.g. 1m, 1h, 24h.
	Horizons []time.Duration
	// Blocks is the bucket-ring length per horizon (default 8): finer
	// horizon alignment for more merge work per query.
	Blocks int
	// Epsilon is the EHistogram relative error on horizon event counts
	// (default 0.01).
	Epsilon float64
	// Factory builds one bucket summary; the product must implement
	// Snapshotter and Merger (every registry algorithm does).
	Factory func() core.Summary
	// Now injects the clock; nil means time.Now. Tests drive a fake.
	Now func() time.Time
}

// NewMultiRes validates the configuration and builds the serving
// composition.
func NewMultiRes(cfg MultiResConfig) (*MultiRes, error) {
	if len(cfg.Horizons) == 0 {
		return nil, fmt.Errorf("window: MultiRes needs at least one horizon")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("window: MultiRes needs a bucket summary factory")
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 8
	}
	if cfg.Blocks < 1 {
		return nil, fmt.Errorf("window: MultiRes blocks must be positive")
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.01
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	probe := cfg.Factory()
	if _, ok := probe.(core.Snapshotter); !ok {
		return nil, fmt.Errorf("window: MultiRes bucket summary %s does not implement Snapshotter", probe.Name())
	}
	if _, ok := probe.(core.Merger); !ok {
		return nil, fmt.Errorf("window: MultiRes bucket summary %s does not implement Merger", probe.Name())
	}
	m := &MultiRes{
		factory: cfg.Factory,
		name:    "MR-" + probe.Name(),
		now:     cfg.Now,
	}
	spans := append([]time.Duration(nil), cfg.Horizons...)
	sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
	for i, span := range spans {
		if span < time.Duration(cfg.Blocks) {
			return nil, fmt.Errorf("window: MultiRes horizon %v shorter than its block count", span)
		}
		if i > 0 && span == spans[i-1] {
			return nil, fmt.Errorf("window: duplicate MultiRes horizon %v", span)
		}
		ehWindow := int64(span / time.Second)
		if ehWindow < 1 {
			ehWindow = 1
		}
		eh, err := NewEHistogram(ehWindow, cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		r := &horizonRing{
			span:    span,
			block:   span / time.Duration(cfg.Blocks),
			buckets: make([]core.Summary, cfg.Blocks),
			blockNo: make([]int64, cfg.Blocks),
			eh:      eh,
		}
		for j := range r.blockNo {
			r.blockNo[j] = -1
		}
		m.rings = append(m.rings, r)
	}
	return m, nil
}

// bucket returns the ring's summary for the block containing t, creating
// or recycling the slot as its span comes around.
func (m *MultiRes) bucket(r *horizonRing, t time.Time) core.Summary {
	blk := t.UnixNano() / int64(r.block)
	slot := int(blk % int64(len(r.buckets)))
	if r.blockNo[slot] != blk {
		r.buckets[slot] = m.factory()
		r.blockNo[slot] = blk
	}
	return r.buckets[slot]
}

// Update implements core.Summary: the arrival lands in every horizon's
// current block.
func (m *MultiRes) Update(x core.Item, count int64) {
	t := m.now()
	for _, r := range m.rings {
		m.bucket(r, t).Update(x, count)
		r.eh.AddAt(t.Unix(), count)
	}
	m.n += count
}

// UpdateBatch implements core.BatchUpdater: one bucket lookup and one
// EHistogram bulk insert per horizon per batch.
func (m *MultiRes) UpdateBatch(items []core.Item) {
	if len(items) == 0 {
		return
	}
	t := m.now()
	for _, r := range m.rings {
		core.UpdateAll(m.bucket(r, t), items)
		r.eh.AddAt(t.Unix(), int64(len(items)))
	}
	m.n += int64(len(items))
}

// Horizons returns the configured spans, ascending.
func (m *MultiRes) Horizons() []time.Duration {
	out := make([]time.Duration, len(m.rings))
	for i, r := range m.rings {
		out[i] = r.span
	}
	return out
}

// HorizonView merges the named horizon's live buckets into an immutable
// read view whose N is the horizon's event count: Query(φ·N) over the
// view asks "heavy over the last d", the wall-clock analogue of the
// windowed summary's WindowN threshold scaling. The view is built from
// bucket snapshots, so it never mutates ring state — safe against a
// shared serving snapshot.
func (m *MultiRes) HorizonView(d time.Duration) (core.ReadView, error) {
	for _, r := range m.rings {
		if r.span == d {
			return m.viewOf(r), nil
		}
	}
	return nil, fmt.Errorf("window: horizon %v not configured (have %v)", d, m.Horizons())
}

func (m *MultiRes) viewOf(r *horizonRing) *HorizonView {
	t := m.now()
	cur := t.UnixNano() / int64(r.block)
	oldest := cur - int64(len(r.buckets)) + 1
	var merged core.Summary
	for slot, blk := range r.blockNo {
		if blk < oldest || blk > cur || r.buckets[slot] == nil {
			continue
		}
		if merged == nil {
			merged = r.buckets[slot].(core.Snapshotter).Snapshot()
			continue
		}
		if err := merged.(core.Merger).Merge(r.buckets[slot]); err != nil {
			// Same-factory buckets cannot mismatch; a failure here is a
			// wiring bug, not an operational state.
			panic(fmt.Sprintf("window: MultiRes bucket merge failed: %v", err))
		}
	}
	if merged == nil {
		merged = m.factory()
	}
	return &HorizonView{span: r.span, summary: merged, windowN: r.eh.CountAt(t.Unix())}
}

// HorizonView is the merged read view of one horizon.
type HorizonView struct {
	span    time.Duration
	summary core.Summary
	windowN int64
}

// N returns the horizon's estimated event count — the denominator for
// φ·N thresholds at this horizon.
func (v *HorizonView) N() int64 { return v.windowN }

// WindowN mirrors N under the name the serving layer's threshold scaling
// dispatches on.
func (v *HorizonView) WindowN() int64 { return v.windowN }

// Span returns the horizon this view covers.
func (v *HorizonView) Span() time.Duration { return v.span }

// Estimate returns the merged bucket summaries' estimate.
func (v *HorizonView) Estimate(x core.Item) int64 { return v.summary.Estimate(x) }

// Query returns the merged bucket summaries' report at threshold.
func (v *HorizonView) Query(threshold int64) []core.ItemCount { return v.summary.Query(threshold) }

// Summary exposes the merged summary so capability queries (HHH, range,
// quantile) dispatch against horizon views too.
func (v *HorizonView) Summary() core.Summary { return v.summary }

// N implements core.Summary: the lifetime arrival count (horizon counts
// come from HorizonView.N).
func (m *MultiRes) N() int64 { return m.n }

// Estimate implements core.Summary over the longest horizon.
func (m *MultiRes) Estimate(x core.Item) int64 {
	return m.viewOf(m.rings[len(m.rings)-1]).Estimate(x)
}

// Query implements core.Summary over the longest horizon.
func (m *MultiRes) Query(threshold int64) []core.ItemCount {
	return m.viewOf(m.rings[len(m.rings)-1]).Query(threshold)
}

// Name implements core.Summary: "MR-" plus the bucket algorithm code.
func (m *MultiRes) Name() string { return m.name }

// Bytes sums the live buckets and histograms.
func (m *MultiRes) Bytes() int {
	total := 0
	for _, r := range m.rings {
		for _, b := range r.buckets {
			if b != nil {
				total += b.Bytes()
			}
		}
		total += r.eh.Bytes()
	}
	return total
}

// Clone returns an independent deep copy (the serving snapshot).
func (m *MultiRes) Clone() *MultiRes {
	nm := &MultiRes{
		factory: m.factory,
		n:       m.n,
		name:    m.name,
		now:     m.now,
	}
	for _, r := range m.rings {
		nr := &horizonRing{
			span:    r.span,
			block:   r.block,
			buckets: make([]core.Summary, len(r.buckets)),
			blockNo: append([]int64(nil), r.blockNo...),
			eh:      r.eh.Clone(),
		}
		for i, b := range r.buckets {
			if b != nil {
				nr.buckets[i] = b.(core.Snapshotter).Snapshot()
			}
		}
		nm.rings = append(nm.rings, nr)
	}
	return nm
}

// Snapshot implements core.Snapshotter.
func (m *MultiRes) Snapshot() core.Summary { return m.Clone() }

// HorizonStats describes one horizon for /stats.
type HorizonStats struct {
	Span    time.Duration
	WindowN int64
	Buckets int
}

// Stats reports per-horizon serving state as of now.
func (m *MultiRes) Stats() []HorizonStats {
	t := m.now()
	out := make([]HorizonStats, 0, len(m.rings))
	for _, r := range m.rings {
		cur := t.UnixNano() / int64(r.block)
		oldest := cur - int64(len(r.buckets)) + 1
		live := 0
		for slot, blk := range r.blockNo {
			if blk >= oldest && blk <= cur && r.buckets[slot] != nil {
				live++
			}
		}
		out = append(out, HorizonStats{Span: r.span, WindowN: r.eh.CountAt(t.Unix()), Buckets: live})
	}
	return out
}
