package window

import (
	"testing"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
)

func TestEHistogramAddAtTracksSlidingSum(t *testing.T) {
	const window = 100
	h, err := NewEHistogram(window, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := map[int64]int64{}
	now := int64(0)
	for step := 0; step < 5000; step++ {
		now += int64(step%7) + 1 // idle gaps between batches
		count := int64((step * 37) % 900)
		h.AddAt(now, count)
		arrivals[now] += count
		if step%11 != 0 {
			continue
		}
		var exactSum int64
		for ts, c := range arrivals {
			if ts > now-window && ts <= now {
				exactSum += c
			}
		}
		got := h.CountAt(now)
		slack := int64(0.05*float64(exactSum)) + 1
		if got < exactSum-slack || got > exactSum+slack {
			t.Fatalf("step %d: CountAt = %d, exact %d, beyond ±%d", step, got, exactSum, slack)
		}
	}
}

func TestEHistogramCountAtDoesNotMutate(t *testing.T) {
	h, _ := NewEHistogram(50, 0.1)
	h.AddAt(10, 100)
	h.AddAt(30, 7)
	before := h.Buckets()
	// Reading far past the window must not expire anything.
	if got := h.CountAt(1000); got != 0 {
		t.Fatalf("CountAt past the window = %d, want 0", got)
	}
	if h.Buckets() != before {
		t.Fatal("CountAt mutated the bucket list")
	}
	// And the read at the live edge matches the mutating Count.
	if c1, c2 := h.CountAt(h.now), h.Count(); c1 != c2 {
		t.Fatalf("CountAt(now) = %d, Count() = %d", c1, c2)
	}
}

func TestEHistogramClone(t *testing.T) {
	h, _ := NewEHistogram(100, 0.05)
	h.AddAt(5, 42)
	c := h.Clone()
	h.AddAt(10, 100)
	if c.CountAt(10) == h.CountAt(10) {
		t.Fatal("clone tracked the parent")
	}
}

// fakeClock is a manually advanced wall clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestMultiRes(t *testing.T, clk *fakeClock, horizons ...time.Duration) *MultiRes {
	t.Helper()
	m, err := NewMultiRes(MultiResConfig{
		Horizons: horizons,
		Blocks:   4,
		Factory:  func() core.Summary { return counters.NewSpaceSavingHeap(64) },
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiResConfigValidation(t *testing.T) {
	factory := func() core.Summary { return counters.NewSpaceSavingHeap(8) }
	if _, err := NewMultiRes(MultiResConfig{Factory: factory}); err == nil {
		t.Error("no horizons must be rejected")
	}
	if _, err := NewMultiRes(MultiResConfig{Horizons: []time.Duration{time.Minute}}); err == nil {
		t.Error("nil factory must be rejected")
	}
	if _, err := NewMultiRes(MultiResConfig{
		Horizons: []time.Duration{time.Minute, time.Minute}, Factory: factory,
	}); err == nil {
		t.Error("duplicate horizons must be rejected")
	}
}

func TestMultiResHorizonViews(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := newTestMultiRes(t, clk, time.Minute, time.Hour)

	old := []core.Item{1, 1, 1, 2}
	m.UpdateBatch(old)
	// Step past the 1m horizon but stay inside 1h.
	clk.advance(5 * time.Minute)
	recent := []core.Item{7, 7, 8}
	m.UpdateBatch(recent)

	short, err := m.HorizonView(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if short.Estimate(7) == 0 || short.Estimate(1) != 0 {
		t.Fatalf("1m view: Estimate(7)=%d Estimate(1)=%d; want recent items only",
			short.Estimate(7), short.Estimate(1))
	}
	if short.N() != int64(len(recent)) {
		t.Fatalf("1m WindowN = %d, want %d", short.N(), len(recent))
	}
	long, err := m.HorizonView(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if long.Estimate(1) == 0 || long.Estimate(7) == 0 {
		t.Fatal("1h view must cover both batches")
	}
	if long.N() != int64(len(old)+len(recent)) {
		t.Fatalf("1h WindowN = %d, want %d", long.N(), len(old)+len(recent))
	}
	if m.N() != int64(len(old)+len(recent)) {
		t.Fatalf("lifetime N = %d, want %d", m.N(), len(old)+len(recent))
	}
	if _, err := m.HorizonView(2 * time.Hour); err == nil {
		t.Fatal("unconfigured horizon must error")
	}
}

func TestMultiResBucketRecycling(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	m := newTestMultiRes(t, clk, time.Minute)
	// Write continuously for several horizon lengths; the 1m view's count
	// must stay bounded by what fits in a minute, proving slots recycle.
	for i := 0; i < 300; i++ {
		m.Update(core.Item(i%10), 1)
		clk.advance(time.Second)
	}
	v, err := m.HorizonView(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// 4 blocks of 15s: a view covers between 45s and 60s of arrivals at
	// 1/s, and the EHistogram adds ε slack.
	if n := v.N(); n < 40 || n > 70 {
		t.Fatalf("1m WindowN after 300s of 1/s arrivals = %d, want ≈45–60", n)
	}
	if m.N() != 300 {
		t.Fatalf("lifetime N = %d, want 300", m.N())
	}
}

func TestMultiResSnapshotIndependence(t *testing.T) {
	clk := &fakeClock{t: time.Unix(90_000, 0)}
	m := newTestMultiRes(t, clk, time.Minute)
	m.UpdateBatch([]core.Item{1, 2, 3})
	snap := m.Snapshot().(*MultiRes)
	m.UpdateBatch([]core.Item{4, 4, 4, 4})
	sv, err := snap.HorizonView(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Estimate(4) != 0 {
		t.Fatal("parent update leaked into snapshot")
	}
	if sv.N() != 3 {
		t.Fatalf("snapshot WindowN = %d, want 3", sv.N())
	}
	mv, _ := m.HorizonView(time.Minute)
	if mv.Estimate(4) == 0 {
		t.Fatal("parent lost its own update")
	}
}

func TestMultiResStats(t *testing.T) {
	clk := &fakeClock{t: time.Unix(70_000, 0)}
	m := newTestMultiRes(t, clk, time.Minute, time.Hour)
	m.UpdateBatch([]core.Item{1, 2})
	st := m.Stats()
	if len(st) != 2 || st[0].Span != time.Minute || st[1].Span != time.Hour {
		t.Fatalf("stats spans = %+v", st)
	}
	if st[0].WindowN != 2 || st[0].Buckets != 1 {
		t.Fatalf("1m stats = %+v, want WindowN 2, Buckets 1", st[0])
	}
}
