package window

import (
	"math"
	"testing"

	"streamfreq/internal/prng"
)

func TestEHistogramValidation(t *testing.T) {
	if _, err := NewEHistogram(0, 0.1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewEHistogram(10, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewEHistogram(10, 1.5); err == nil {
		t.Error("epsilon > 1 accepted")
	}
}

func TestEHistogramExactWhenSparse(t *testing.T) {
	h, err := NewEHistogram(100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer events than bucket capacity: count is exact (all size-1
	// buckets, oldest size 1 halves to 1 via rounding up).
	for i := 0; i < 50; i++ {
		h.Observe(i%10 == 0)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestEHistogramRelativeErrorBound(t *testing.T) {
	const window = 1000
	eps := 0.1
	h, err := NewEHistogram(window, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(3)
	var events []bool
	for step := 0; step < 20000; step++ {
		ev := rng.Float64() < 0.35
		h.Observe(ev)
		events = append(events, ev)
		if step%500 == 137 {
			// Exact sliding count.
			var exact int64
			for i := len(events) - 1; i >= 0 && i > len(events)-1-window; i-- {
				if events[i] {
					exact++
				}
			}
			got := h.Count()
			if exact == 0 {
				if got != 0 {
					t.Fatalf("step %d: Count %d with empty window", step, got)
				}
				continue
			}
			re := math.Abs(float64(got)-float64(exact)) / float64(exact)
			if re > 1.5*eps {
				t.Fatalf("step %d: Count %d vs exact %d (relative error %.3f > %.3f)",
					step, got, exact, re, 1.5*eps)
			}
		}
	}
}

func TestEHistogramAllEventsBursts(t *testing.T) {
	h, _ := NewEHistogram(256, 0.05)
	// Saturated stream: every step is an event.
	for i := 0; i < 5000; i++ {
		h.Observe(true)
	}
	got := h.Count()
	if math.Abs(float64(got)-256) > 0.1*256 {
		t.Errorf("saturated Count = %d, want ≈ 256", got)
	}
	// Then total silence: count must decay to zero after W steps.
	for i := 0; i < 257; i++ {
		h.Observe(false)
	}
	if got := h.Count(); got != 0 {
		t.Errorf("Count = %d after silent window, want 0", got)
	}
}

func TestEHistogramSpaceLogarithmic(t *testing.T) {
	h, _ := NewEHistogram(1<<16, 0.1)
	for i := 0; i < 1<<17; i++ {
		h.Observe(true)
	}
	// k/2+2 ≈ 7 buckets per size, log2(2^16) = 16 sizes → ~120 max.
	if h.Buckets() > 150 {
		t.Errorf("%d buckets; space bound violated", h.Buckets())
	}
	if h.Bytes() > 150*16 {
		t.Errorf("Bytes %d inconsistent", h.Bytes())
	}
}

func TestEHistogramEmpty(t *testing.T) {
	h, _ := NewEHistogram(10, 0.5)
	if h.Count() != 0 {
		t.Error("fresh histogram nonzero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(false)
	}
	if h.Count() != 0 {
		t.Error("event-free histogram nonzero")
	}
}
