package window

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"streamfreq/internal/counters"
)

// WN01 is the windowed summary's wire format, used by checkpoints, the
// /summary endpoint, and the cluster merge exactly like the flat
// formats. Layout, little-endian after the 4-byte magic:
//
//	u64 size | u64 blocks | u64 k | u64 n | u64 coverage
//	u64 head | u64 curFill
//	u64 liveBlocks
//	per live block, ascending ring index:
//	  u64 ring index | u64 blob length | SS01 blob
//
// Only the live ring is framed — expired blocks are not durable state —
// and the block blobs are the per-block summaries' own SS01 encoding,
// whose decode reproduces the exact heap layout, so encode → decode →
// encode is byte-identical and "bit-identical via Encode" covers the
// windowed summary the way it covers the flat ones. liveCount is
// recomputed from the decoded blocks rather than trusted from the wire.

const (
	magicWN = "WN01"
	// maxWNBlocks/maxWNCounters/maxWNSize bound a corrupt header's
	// allocations. New enforces the same bounds at construction, so the
	// decoder never rejects a blob MarshalBinary legally produced; real
	// configurations use tens of blocks and thousands of counters.
	maxWNBlocks   = 1 << 16
	maxWNCounters = 1 << 22 // counters.maxEntries, the per-block decode cap
	maxWNSize     = int64(1) << 40
	// maxWNBlob bounds one block blob against a corrupt length field.
	maxWNBlob = 1 << 28
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Windowed) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magicWN)
	var b8 [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf.Write(b8[:])
	}
	w := s.Window
	u64(uint64(w.size))
	u64(uint64(w.blocks))
	u64(uint64(w.k))
	u64(uint64(w.n))
	u64(uint64(s.coverage))
	u64(uint64(w.head))
	u64(uint64(w.curFill))
	live := 0
	for _, b := range w.ring {
		if b != nil {
			live++
		}
	}
	u64(uint64(live))
	for i, b := range w.ring {
		if b == nil {
			continue
		}
		blob, err := b.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("window: encoding block %d: %w", i, err)
		}
		u64(uint64(i))
		u64(uint64(len(blob)))
		buf.Write(blob)
	}
	return buf.Bytes(), nil
}

// DecodeWindowed parses a summary produced by (*Windowed).MarshalBinary,
// validating the geometry and every block blob so a forged or corrupt
// header comes back as an error, never a panic or a runaway allocation.
func DecodeWindowed(data []byte) (*Windowed, error) {
	if len(data) < 4 || string(data[:4]) != magicWN {
		return nil, fmt.Errorf("window: not a Windowed blob")
	}
	rest := data[4:]
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(rest) {
			return 0, fmt.Errorf("window: truncated blob at offset %d", pos)
		}
		v := binary.LittleEndian.Uint64(rest[pos:])
		pos += 8
		return v, nil
	}
	var hdr [8]uint64
	for i := range hdr {
		v, err := u64()
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	size, blocks, k := hdr[0], hdr[1], hdr[2]
	n, coverage := int64(hdr[3]), int64(hdr[4])
	head, curFill, liveBlocks := hdr[5], hdr[6], hdr[7]
	if size == 0 || blocks == 0 || blocks > maxWNBlocks || size%blocks != 0 ||
		k == 0 || k > maxWNCounters || int64(size) < 0 || int64(size) > maxWNSize {
		return nil, fmt.Errorf("window: implausible geometry (W=%d B=%d k=%d)", size, blocks, k)
	}
	blockLen := size / blocks
	ringLen := blocks + 1 // uint64 arithmetic; cast below once validated
	if head >= ringLen || curFill >= blockLen || liveBlocks == 0 || liveBlocks > ringLen {
		return nil, fmt.Errorf("window: implausible ring state (head=%d fill=%d live=%d)", head, curFill, liveBlocks)
	}
	if n < 0 || coverage < int64(size) {
		return nil, fmt.Errorf("window: implausible accounting (n=%d coverage=%d)", n, coverage)
	}
	w := &Window{
		size:     int(size),
		blocks:   int(blocks),
		blockLen: int(blockLen),
		k:        int(k),
		ring:     make([]*counters.SpaceSavingHeap, int(ringLen)),
		head:     int(head),
		curFill:  int(curFill),
		n:        n,
	}
	prev := -1
	for i := uint64(0); i < liveBlocks; i++ {
		idx, err := u64()
		if err != nil {
			return nil, err
		}
		blobLen, err := u64()
		if err != nil {
			return nil, err
		}
		if idx >= ringLen || int(idx) <= prev {
			return nil, fmt.Errorf("window: block indices out of order (index %d after %d)", idx, prev)
		}
		prev = int(idx)
		if blobLen > maxWNBlob || pos+int(blobLen) > len(rest) {
			return nil, fmt.Errorf("window: implausible block blob length %d (block %d)", blobLen, idx)
		}
		ss, err := counters.DecodeSpaceSavingHeap(rest[pos : pos+int(blobLen)])
		if err != nil {
			return nil, fmt.Errorf("window: block %d: %w", idx, err)
		}
		pos += int(blobLen)
		if ss.K() != int(k) {
			return nil, fmt.Errorf("window: block %d has k=%d, header says %d", idx, ss.K(), k)
		}
		if ss.N() < 0 {
			return nil, fmt.Errorf("window: block %d has negative N", idx)
		}
		w.ring[idx] = ss
		w.liveCount += ss.N()
	}
	if pos != len(rest) {
		return nil, fmt.Errorf("window: %d trailing bytes", len(rest)-pos)
	}
	if w.ring[w.head] == nil {
		return nil, fmt.Errorf("window: current block (ring %d) missing from blob", w.head)
	}
	if n < w.liveCount {
		return nil, fmt.Errorf("window: stream length %d below live count %d", n, w.liveCount)
	}
	return &Windowed{Window: w, coverage: coverage}, nil
}
