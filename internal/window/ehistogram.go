package window

import (
	"fmt"
)

// EHistogram is the exponential histogram of Datar, Gionis, Indyk &
// Motwani: an O((1/ε)·log²W)-bit structure counting how many events
// occurred in the last W time steps, with relative error at most ε.
// It is the classic sliding-window counting primitive — the building
// block the sliding-window heavy-hitter literature composes with
// counter summaries — and complements Window, which tracks *which*
// items are frequent while EHistogram tracks *how many* events a single
// predicate saw.
//
// Events are grouped into buckets of exponentially growing sizes
// 1, 1, …, 2, 2, …, 4, 4, …; at most ⌈k/2⌉+2 buckets of each size exist
// (k = ⌈1/ε⌉). Only the oldest bucket straddles the window boundary, and
// its size is halved in the estimate, which bounds the relative error.
type EHistogram struct {
	window int64
	k      int
	// buckets are ordered oldest first. ts is the arrival time of the
	// bucket's most recent event; size is the number of events merged in.
	buckets []ehBucket
	now     int64
	total   int64 // sum of live bucket sizes
}

type ehBucket struct {
	ts int64
	// start is the arrival time of the bucket's oldest event. Buckets
	// partition the event sequence in arrival order, so a bucket
	// straddles the window boundary only when start has left the window
	// while ts has not — which is exactly when the classic half-the-
	// oldest-bucket correction applies; counts are exact otherwise.
	start int64
	size  int64
}

// NewEHistogram returns an exponential histogram over a window of the
// given length with relative error at most epsilon.
func NewEHistogram(window int64, epsilon float64) (*EHistogram, error) {
	if window <= 0 {
		return nil, fmt.Errorf("window: EHistogram window must be positive")
	}
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("window: EHistogram epsilon must be in (0,1]")
	}
	k := int(1/epsilon) + 1
	return &EHistogram{window: window, k: k}, nil
}

// Observe advances time by one step and records whether an event
// occurred at it.
func (h *EHistogram) Observe(event bool) {
	h.now++
	h.expire()
	if !event {
		return
	}
	h.buckets = append(h.buckets, ehBucket{ts: h.now, start: h.now, size: 1})
	h.total++
	h.merge()
}

// expire drops buckets that have fallen wholly out of the window.
func (h *EHistogram) expire() {
	cut := 0
	for cut < len(h.buckets) && h.buckets[cut].ts <= h.now-h.window {
		h.total -= h.buckets[cut].size
		cut++
	}
	if cut > 0 {
		h.buckets = h.buckets[cut:]
	}
}

// merge enforces the at-most-⌈k/2⌉+2-per-size invariant by combining the
// two oldest buckets of any overfull size, cascading upward.
func (h *EHistogram) merge() {
	limit := (h.k+1)/2 + 2
	for size := int64(1); ; size *= 2 {
		// Find buckets of this size (they are contiguous from the back in
		// arrival order, but scan simply — bucket counts are O(log W)).
		first, count := -1, 0
		for i, b := range h.buckets {
			if b.size == size {
				if first < 0 {
					first = i
				}
				count++
			}
		}
		if count <= limit {
			if count == 0 && size > h.total {
				return
			}
			continue
		}
		// Merge the two oldest buckets of this size: the merged bucket
		// keeps the newer end timestamp and the older start.
		second := -1
		for i := first + 1; i < len(h.buckets); i++ {
			if h.buckets[i].size == size {
				second = i
				break
			}
		}
		h.buckets[second].size = 2 * size
		h.buckets[second].start = h.buckets[first].start
		h.buckets = append(h.buckets[:first], h.buckets[first+1:]...)
	}
}

// AddAt advances the clock to the absolute step now (expiring buckets
// that fall out of the window) and records count events at it. The count
// is inserted via its binary decomposition — one bucket per set bit,
// largest first, so bucket sizes stay non-increasing toward the newest
// end — followed by the usual merge cascade. This is the bulk-arrival
// entry point the multi-resolution serving ring uses: a batch of b items
// costs O(log b + log W) bucket operations instead of b Observe calls.
//
// A now earlier than the current clock does not rewind time: the events
// are recorded at the current step (arrival times within a group-commit
// batch are not ordered anyway).
func (h *EHistogram) AddAt(now, count int64) {
	if now > h.now {
		h.now = now
		h.expire()
	}
	for size := int64(1) << 62; size > 0; size >>= 1 {
		if count&size == 0 {
			continue
		}
		h.buckets = append(h.buckets, ehBucket{ts: h.now, start: h.now, size: size})
		h.total += size
		h.merge()
	}
}

// CountAt estimates the number of events in the window ending at the
// absolute step now, without mutating the histogram — safe for
// concurrent readers of a serving snapshot, unlike Count, whose eager
// expiry writes. A now earlier than the current clock reads as of the
// current clock.
func (h *EHistogram) CountAt(now int64) int64 {
	if now < h.now {
		now = h.now
	}
	var total, oldest, oldestStart int64
	seen := false
	for _, b := range h.buckets {
		if b.ts <= now-h.window {
			continue
		}
		if !seen {
			oldest, oldestStart, seen = b.size, b.start, true
		}
		total += b.size
	}
	if !seen {
		return 0
	}
	if oldestStart > now-h.window {
		// Even the oldest live bucket began inside the window: nothing
		// straddles the boundary and the sum is exact.
		return total
	}
	return total - oldest + (oldest+1)/2
}

// Clone returns an independent deep copy.
func (h *EHistogram) Clone() *EHistogram {
	nh := *h
	nh.buckets = make([]ehBucket, len(h.buckets))
	copy(nh.buckets, h.buckets)
	return &nh
}

// Count estimates the number of events in the last W steps: the full
// size of every bucket except the oldest, plus half the oldest (which
// may straddle the boundary).
func (h *EHistogram) Count() int64 {
	h.expire()
	if len(h.buckets) == 0 {
		return 0
	}
	if h.buckets[0].start > h.now-h.window {
		return h.total
	}
	return h.total - h.buckets[0].size + (h.buckets[0].size+1)/2
}

// Buckets returns the live bucket count (space accounting and tests).
func (h *EHistogram) Buckets() int { return len(h.buckets) }

// Bytes returns the approximate footprint.
func (h *EHistogram) Bytes() int { return 24 * len(h.buckets) }
