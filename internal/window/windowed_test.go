package window

import (
	"bytes"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/zipf"
)

func mustWindowed(t testing.TB, size, blocks, k int) *Windowed {
	t.Helper()
	s, err := NewWindowed(size, blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func windowedStream(t testing.TB, n int, seed uint64) []core.Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	return g.Stream(n)
}

// requireSameWindow asserts two windowed summaries agree on everything
// observable: geometry accounting, point estimates over the probe set,
// and the threshold report item for item.
func requireSameWindow(t *testing.T, label string, got, want *Windowed, threshold int64, probes []core.Item) {
	t.Helper()
	if got.N() != want.N() || got.Live() != want.Live() || got.WindowN() != want.WindowN() {
		t.Fatalf("%s: accounting N/Live/WindowN = %d/%d/%d, want %d/%d/%d",
			label, got.N(), got.Live(), got.WindowN(), want.N(), want.Live(), want.WindowN())
	}
	if got.head != want.head || got.curFill != want.curFill {
		t.Fatalf("%s: ring position head/fill = %d/%d, want %d/%d",
			label, got.head, got.curFill, want.head, want.curFill)
	}
	gq, wq := got.Query(threshold), want.Query(threshold)
	if len(gq) != len(wq) {
		t.Fatalf("%s: Query(%d): %d items vs %d", label, threshold, len(gq), len(wq))
	}
	for i := range wq {
		if gq[i] != wq[i] {
			t.Fatalf("%s: Query(%d)[%d] = %+v, want %+v", label, threshold, i, gq[i], wq[i])
		}
	}
	for _, p := range probes {
		if ge, we := got.Estimate(p), want.Estimate(p); ge != we {
			t.Fatalf("%s: Estimate(%d) = %d, want %d", label, p, ge, we)
		}
	}
}

func marshalWindowed(t *testing.T, s *Windowed) []byte {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// exactLastW returns the exact counts of the last w items of stream.
func exactLastW(stream []core.Item, w int) map[core.Item]int64 {
	if w > len(stream) {
		w = len(stream)
	}
	counts := make(map[core.Item]int64, w)
	for _, it := range stream[len(stream)-w:] {
		counts[it]++
	}
	return counts
}

// TestWindowedBatchBoundarySplitting: whatever batch lengths the stream
// arrives in — including lengths that straddle, exactly hit, and repeat
// within block boundaries — the resulting state lands on the same block
// boundaries as the scalar feed (head/fill/accounting are a pure
// function of the arrival count) and honours the windowed guarantees
// against exact last-W truth: one-sided estimates within Slack, perfect
// recall at the φ·W operating point. Unit-length batches are moreover
// bit-identical to the scalar feed. (Exact per-counter equality across
// batch lengths is deliberately not asserted: like the registry batch
// wall, which of several tied minimum counters holds a churning
// sub-threshold item is not stable under pre-aggregation reordering.)
func TestWindowedBatchBoundarySplitting(t *testing.T) {
	const size, blocks, k = 1200, 4, 60 // blockLen 300
	const phi = 0.05
	stream := windowedStream(t, 10_000, 0xA11CE)

	scalar := mustWindowed(t, size, blocks, k)
	for _, it := range stream {
		scalar.Update(it, 1)
	}

	unit := mustWindowed(t, size, blocks, k)
	for _, it := range stream {
		unit.UpdateBatch([]core.Item{it})
	}
	if !bytes.Equal(marshalWindowed(t, unit), marshalWindowed(t, scalar)) {
		t.Fatal("unit-length batches are not bit-identical to the scalar feed")
	}

	truth := exactLastW(stream, size)
	threshold := int64(phi * float64(size))
	for _, batch := range []int{7, 299, 300, 301, 600, 4096} {
		batched := mustWindowed(t, size, blocks, k)
		rest := stream
		for len(rest) > 0 {
			n := batch
			if n > len(rest) {
				n = len(rest)
			}
			batched.UpdateBatch(rest[:n])
			rest = rest[n:]
		}
		if batched.N() != scalar.N() || batched.Live() != scalar.Live() ||
			batched.WindowN() != scalar.WindowN() ||
			batched.head != scalar.head || batched.curFill != scalar.curFill {
			t.Fatalf("batch=%d: boundary accounting diverged from scalar (N/Live/head/fill %d/%d/%d/%d vs %d/%d/%d/%d)",
				batch, batched.N(), batched.Live(), batched.head, batched.curFill,
				scalar.N(), scalar.Live(), scalar.head, scalar.curFill)
		}
		// One-sided estimates within slack on every true last-W item.
		slack := batched.Slack()
		for it, tru := range truth {
			est := batched.Estimate(it)
			if est < tru {
				t.Fatalf("batch=%d: Estimate(%d) = %d underestimates true last-W count %d", batch, it, est, tru)
			}
			if est > tru+slack {
				t.Fatalf("batch=%d: Estimate(%d) = %d exceeds true %d + slack %d", batch, it, est, tru, slack)
			}
		}
		// Perfect recall at φ·W: block summaries never underestimate.
		reported := map[core.Item]bool{}
		for _, ic := range batched.Query(threshold) {
			reported[ic.Item] = true
		}
		for it, tru := range truth {
			if tru >= threshold && !reported[it] {
				t.Fatalf("batch=%d: item %d with true last-W count %d ≥ %d missing from Query", batch, it, tru, threshold)
			}
		}
	}
}

// TestWindowedBatchDeterminism: the same batch schedule replayed twice
// produces byte-identical state — the property WAL replay (original
// batch boundaries preserved) converts into bit-identical recovery.
func TestWindowedBatchDeterminism(t *testing.T) {
	stream := windowedStream(t, 8_000, 0xBEE)
	sizes := []int{1, 700, 299, 4096, 33}
	feed := func() *Windowed {
		s := mustWindowed(t, 900, 3, 40)
		rest := stream
		for i := 0; len(rest) > 0; i++ {
			n := sizes[i%len(sizes)]
			if n > len(rest) {
				n = len(rest)
			}
			s.UpdateBatch(rest[:n])
			rest = rest[n:]
		}
		return s
	}
	if !bytes.Equal(marshalWindowed(t, feed()), marshalWindowed(t, feed())) {
		t.Fatal("identical batch schedules produced different bytes")
	}
}

// TestWindowedWeightedUpdate: a weighted update is count adjacent unit
// arrivals — it splits across block boundaries exactly where the unit
// loop would rotate, observationally identical to it.
func TestWindowedWeightedUpdate(t *testing.T) {
	const size, blocks, k = 400, 4, 20 // blockLen 100
	weighted := mustWindowed(t, size, blocks, k)
	scalar := mustWindowed(t, size, blocks, k)
	schedule := []struct {
		item  core.Item
		count int64
	}{{1, 30}, {2, 90}, {1, 250}, {3, 1}, {2, 129}, {4, 500}}
	for _, u := range schedule {
		weighted.Update(u.item, u.count)
		for i := int64(0); i < u.count; i++ {
			scalar.Update(u.item, 1)
		}
	}
	requireSameWindow(t, "weighted", weighted, scalar, 10, []core.Item{1, 2, 3, 4, 99})

	defer func() {
		if recover() == nil {
			t.Fatal("non-positive count did not panic")
		}
	}()
	weighted.Update(1, 0)
}

// TestWindowedForgetsThroughSummaryContract: the expiry behaviour of
// the underlying window survives the lift — a formerly hot item decays
// to at most Slack once a full window of other traffic has passed.
func TestWindowedForgetsThroughSummaryContract(t *testing.T) {
	s := mustWindowed(t, 1000, 4, 50)
	hot := core.Item(77)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			s.Update(hot, 1)
		} else {
			s.Update(core.Item(10_000+i), 1)
		}
	}
	if s.Estimate(hot) < 450 {
		t.Fatalf("hot item estimate %d during its hot phase", s.Estimate(hot))
	}
	batch := make([]core.Item, 1300)
	for i := range batch {
		batch[i] = core.Item(50_000 + i)
	}
	s.UpdateBatch(batch)
	if got := s.Estimate(hot); got > s.Slack() {
		t.Fatalf("expired item estimated at %d, above slack %d", got, s.Slack())
	}
	if s.N() != 2300 {
		t.Fatalf("N = %d, want 2300", s.N())
	}
	if s.WindowN() != 1000 {
		t.Fatalf("WindowN = %d, want the window span 1000", s.WindowN())
	}
	if live := s.Live(); live < 1000 || live > 1250 {
		t.Fatalf("Live = %d, want within [W, W+W/B]", live)
	}
	st := s.WindowStats()
	if st.BoundaryExpired != st.Live-st.WindowN || st.BoundaryExpired < 0 || st.BoundaryExpired > int64(st.BlockLen) {
		t.Fatalf("WindowStats boundary accounting inconsistent: %+v", st)
	}
}

// TestWindowedCloneIndependence: the snapshot contract at the window
// level — a clone freezes the current window; rotations and arrivals on
// either side never leak to the other.
func TestWindowedCloneIndependence(t *testing.T) {
	parent := mustWindowed(t, 600, 3, 30)
	stream := windowedStream(t, 5_000, 0xC10)
	parent.UpdateBatch(stream)
	ref := parent.Clone()
	snap := parent.Clone()
	if !bytes.Equal(marshalWindowed(t, snap), marshalWindowed(t, parent)) {
		t.Fatal("clone does not encode identically to its parent")
	}
	parent.UpdateBatch(stream[:1500]) // several rotations
	if !bytes.Equal(marshalWindowed(t, snap), marshalWindowed(t, ref)) {
		t.Fatal("parent arrivals leaked into the clone")
	}
	snap.UpdateBatch(stream[:700])
	if !bytes.Equal(marshalWindowed(t, parent.Clone()), marshalWindowed(t, parent.Clone())) {
		t.Fatal("clone arrivals corrupted the parent")
	}
}

// TestWindowedMergeRecencyAligned: merging two nodes' windows unions
// their recent traffic — each node's current hot item is reported, each
// node's expired history stays expired, and the accounting (N sums,
// coverage sums, WindowN caps at the union span) holds.
func TestWindowedMergeRecencyAligned(t *testing.T) {
	const size, blocks, k = 1000, 4, 50
	mkNode := func(oldHot, newHot core.Item, seed uint64) *Windowed {
		s := mustWindowed(t, size, blocks, k)
		bg := windowedStream(t, 4_000, seed)
		// Old phase: oldHot is hot, then a full window of background +
		// newHot traffic expires it.
		for i := 0; i < 1500; i++ {
			if i%3 == 0 {
				s.Update(oldHot, 1)
			} else {
				s.Update(bg[i], 1)
			}
		}
		for i := 0; i < 1300; i++ {
			if i%4 == 0 {
				s.Update(newHot, 1)
			} else {
				s.Update(bg[1500+i], 1)
			}
		}
		return s
	}
	a := mkNode(1001, 2001, 7)
	b := mkNode(1002, 2002, 8)
	aN, bN := a.N(), b.N()

	merged := a.Clone()
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if merged.N() != aN+bN {
		t.Fatalf("merged N = %d, want %d", merged.N(), aN+bN)
	}
	if got := merged.WindowStats().Coverage; got != 2*size {
		t.Fatalf("merged coverage = %d, want %d", got, 2*size)
	}
	if wn := merged.WindowN(); wn > 2*size || wn < int64(size) {
		t.Fatalf("merged WindowN = %d, want within (W, 2W]", wn)
	}

	// Each node's recent hot item (≈25% of its last window) must be in
	// the merged report at a 5%-of-union threshold; the estimates never
	// underestimate either node's own windowed estimate floor.
	threshold := merged.WindowN() / 20
	reported := map[core.Item]int64{}
	for _, ic := range merged.Query(threshold) {
		reported[ic.Item] = ic.Count
	}
	for _, hot := range []core.Item{2001, 2002} {
		if _, ok := reported[hot]; !ok {
			t.Fatalf("recent hot item %d missing from merged Query(%d): %v", hot, threshold, reported)
		}
	}
	if est := merged.Estimate(2001); est < a.Estimate(2001) {
		t.Fatalf("merged estimate %d below node A's own %d", est, a.Estimate(2001))
	}
	// Expired history stays expired: the old hot items decay to at most
	// the merged slack (per-side slacks add).
	for _, old := range []core.Item{1001, 1002} {
		if est := merged.Estimate(old); est > 2*a.Slack() {
			t.Fatalf("expired item %d estimated at %d in the merge, above summed slack %d", old, est, 2*a.Slack())
		}
	}

	// Merge must not mutate its operand.
	if b.N() != bN {
		t.Fatalf("merge mutated its operand: N %d → %d", bN, b.N())
	}

	// Geometry mismatches are refused with ErrIncompatible.
	for _, bad := range []*Windowed{
		mustWindowed(t, 2*size, blocks, k),
		mustWindowed(t, size, 2, k),
		mustWindowed(t, size, blocks, k+1),
	} {
		if err := a.Clone().Merge(bad); err == nil {
			t.Fatalf("geometry-mismatched merge succeeded (%+v)", bad.WindowStats())
		}
	}
	if err := a.Clone().Merge(counters.NewSpaceSavingHeap(k)); err == nil {
		t.Fatal("cross-type merge succeeded")
	}
}

// TestWindowedEncodeValidation: decode rejects forged geometry and
// truncations with errors, and a valid blob round-trips byte-exactly.
func TestWindowedEncodeValidation(t *testing.T) {
	s := mustWindowed(t, 800, 4, 40)
	s.UpdateBatch(windowedStream(t, 3_000, 5))
	blob := marshalWindowed(t, s)

	dec, err := DecodeWindowed(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalWindowed(t, dec), blob) {
		t.Fatal("decode → re-encode is not byte-identical")
	}
	if dec.Live() != s.Live() || dec.WindowN() != s.WindowN() {
		t.Fatalf("decoded accounting Live/WindowN = %d/%d, want %d/%d",
			dec.Live(), dec.WindowN(), s.Live(), s.WindowN())
	}

	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeWindowed(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeWindowed([]byte("SS01")); err == nil {
		t.Fatal("foreign magic decoded")
	}
}
