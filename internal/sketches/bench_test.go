package sketches

// Query-path benchmarks of the hierarchy — the rich query surface's
// CPU cost. HeavyPrefixes is the /v1/hhh handler's whole body;
// RangeEstimate (the greedy dyadic cover) is /v1/range's. Both are
// measured over a populated sketch at the serving operating point, so
// the committed BENCH_*.json trajectory holds the endpoints' latency,
// not just ingest throughput.

import (
	"testing"

	"streamfreq/internal/zipf"
)

// benchHierarchy builds the registry geometry (φ=0.001 → width 2000,
// depth 4, byte levels over the full 64-bit universe) loaded with a
// 200k-item Zipf stream — the shape one freqd node serves.
func benchHierarchy(b *testing.B) *Hierarchical {
	b.Helper()
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 2000, Bits: 8, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	g, err := zipf.NewGenerator(1<<15, 1.1, 0xBE9C, true)
	if err != nil {
		b.Fatal(err)
	}
	h.UpdateBatch(g.Stream(200_000))
	return h
}

func BenchmarkHHHQuery(b *testing.B) {
	h := benchHierarchy(b)
	threshold := h.N() / 1000 // φ = 0.001, the provisioned operating point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := h.HeavyPrefixes(threshold); len(rep) == 0 {
			b.Fatal("empty HHH report on a loaded sketch")
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	h := benchHierarchy(b)
	// A wide range: ~2^63 values, the worst case for the dyadic cover
	// (maximal node count at every level).
	const lo, hi = uint64(1) << 8, uint64(1)<<63 + 12345
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RangeEstimate(lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}
