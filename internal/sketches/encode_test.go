package sketches

import (
	"testing"

	"streamfreq/internal/zipf"
)

func TestCountMinRoundTrip(t *testing.T) {
	cm := NewCountMin(4, 256, 77)
	g, _ := zipf.NewGenerator(200, 1.0, 5, true)
	for i := 0; i < 10000; i++ {
		cm.Update(g.Next(), 1)
	}
	blob, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCountMin(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != cm.N() || got.Depth() != cm.Depth() || got.Width() != cm.Width() {
		t.Fatal("header fields lost")
	}
	for r := 1; r <= 200; r++ {
		it := g.ItemOfRank(r)
		if got.Estimate(it) != cm.Estimate(it) {
			t.Fatalf("estimate mismatch after round trip for item %d", it)
		}
	}
	// Behavioural identity: decoded sketch must be mergeable with the
	// original (same seed-derived hashes).
	if err := got.Merge(cm); err != nil {
		t.Fatalf("decoded sketch incompatible with original: %v", err)
	}
}

func TestCountMinConservativeRoundTrip(t *testing.T) {
	cm := NewCountMinConservative(3, 128, 9)
	cm.Update(1, 10)
	cm.Update(2, 5)
	blob, _ := cm.MarshalBinary()
	got, err := DecodeCountMin(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "CMC" {
		t.Errorf("conservative flag lost: %s", got.Name())
	}
	if got.Estimate(1) != cm.Estimate(1) {
		t.Error("estimate mismatch")
	}
}

func TestCountSketchRoundTrip(t *testing.T) {
	cs := NewCountSketch(5, 512, 13)
	g, _ := zipf.NewGenerator(300, 1.2, 8, true)
	for i := 0; i < 20000; i++ {
		cs.Update(g.Next(), 1)
	}
	cs.Update(42, -17)
	blob, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCountSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 300; r++ {
		it := g.ItemOfRank(r)
		if got.Estimate(it) != cs.Estimate(it) {
			t.Fatal("estimate mismatch after round trip")
		}
	}
	if got.N() != cs.N() {
		t.Errorf("N mismatch: %d vs %d", got.N(), cs.N())
	}
}

func TestCGTRoundTrip(t *testing.T) {
	c := NewCGT(3, 128, 64, 5)
	g, _ := zipf.NewGenerator(200, 1.3, 9, true)
	for i := 0; i < 15000; i++ {
		c.Update(g.Next(), 1)
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCGT(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Query(100)
	have := got.Query(100)
	if len(want) != len(have) {
		t.Fatalf("query sizes differ: %d vs %d", len(want), len(have))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("query row %d differs", i)
		}
	}
}

func TestHierarchyRoundTrip(t *testing.T) {
	for _, mk := range []func(HierarchyConfig) (*Hierarchical, error){
		NewCountMinHierarchy, NewCountSketchHierarchy,
	} {
		h, err := mk(HierarchyConfig{Depth: 3, Width: 256, Bits: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		g, _ := zipf.NewGenerator(150, 1.4, 10, true)
		for i := 0; i < 10000; i++ {
			h.Update(g.Next(), 1)
		}
		blob, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHierarchical(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != h.Name() || got.Levels() != h.Levels() || got.N() != h.N() {
			t.Fatal("hierarchy metadata lost")
		}
		w := h.Query(50)
		v := got.Query(50)
		if len(w) != len(v) {
			t.Fatalf("%s: query sizes differ after round trip", h.Name())
		}
		for i := range w {
			if w[i] != v[i] {
				t.Fatalf("%s: query row %d differs", h.Name(), i)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	cm := NewCountMin(2, 64, 1)
	cm.Update(5, 9)
	blob, _ := cm.MarshalBinary()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XX99"), blob[4:]...),
		"truncated":      blob[:len(blob)-5],
		"trailing bytes": append(append([]byte{}, blob...), 0xFF),
	}
	for name, data := range cases {
		if _, err := DecodeCountMin(data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}

	// Implausible dimensions: forge depth=2^40.
	forged := append([]byte{}, blob...)
	for i := 12; i < 20; i++ {
		forged[i] = 0xFF
	}
	if _, err := DecodeCountMin(forged); err == nil {
		t.Error("forged dimensions: expected decode error")
	}
}

func TestDecodeWrongTypeMagic(t *testing.T) {
	cs := NewCountSketch(2, 64, 1)
	blob, _ := cs.MarshalBinary()
	if _, err := DecodeCountMin(blob); err == nil {
		t.Error("CM decoder accepted a CS blob")
	}
	if _, err := DecodeCGT(blob); err == nil {
		t.Error("CGT decoder accepted a CS blob")
	}
	if _, err := DecodeHierarchical(blob); err == nil {
		t.Error("hierarchy decoder accepted a CS blob")
	}
}

func TestHierarchyDecodeRejectsTruncatedLevel(t *testing.T) {
	h, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, Seed: 1})
	h.Update(3, 5)
	blob, _ := h.MarshalBinary()
	if _, err := DecodeHierarchical(blob[:len(blob)-9]); err == nil {
		t.Error("expected truncated-level error")
	}
}
