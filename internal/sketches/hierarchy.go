package sketches

import (
	"fmt"

	"streamfreq/internal/core"
)

// pointSketch is the subset of sketch behaviour the hierarchy needs from
// each of its per-level sketches.
type pointSketch interface {
	core.Summary
	core.Merger
	core.Subtractor
}

// Hierarchical answers heavy-hitter queries from a sketch by the dyadic
// decomposition the paper uses for CMH (and equivalently over Count
// Sketch): one sketch per prefix granularity of the item universe. A
// query walks down from the coarsest level, expanding only the prefixes
// whose estimated weight reaches the threshold — the standard
// divide-and-conquer search, with expected O((1/φ)·b·log_b(U)) estimate
// evaluations for branching factor b.
//
// Because Count-Min never underestimates, a CM hierarchy has perfect
// recall; a Count-Sketch hierarchy (two-sided error) can miss items whose
// prefix estimates dip below threshold, the recall gap the paper's sketch
// plots show.
type Hierarchical struct {
	levels       []pointSketch // levels[j] sketches items >> (j*bits)
	bits         uint          // log2 of the branching factor
	universeBits uint
	n            int64
	name         string
	// maxCandidates caps the per-level frontier to bound worst-case query
	// work on adversarial thresholds.
	maxCandidates int
	// scratch holds per-level prefix buffers between UpdateBatch calls
	// (retained like other batch implementations' scratch state; a single
	// hierarchy's batch path is not safe for concurrent use, exactly like
	// Update).
	scratch []core.Item
}

// HierarchyConfig parameterizes a Hierarchical sketch.
type HierarchyConfig struct {
	// Depth and Width are the per-level sketch dimensions.
	Depth, Width int
	// Bits is log2 of the branching factor (default 8: 256-way fanout,
	// 8 levels for a 64-bit universe).
	Bits uint
	// UniverseBits is the number of significant item bits (default 64).
	UniverseBits uint
	// Seed derives all per-level hash seeds deterministically.
	Seed uint64
}

func (cfg *HierarchyConfig) normalize() error {
	if cfg.Depth <= 0 || cfg.Width <= 0 {
		return fmt.Errorf("sketches: hierarchy requires positive depth and width")
	}
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	if cfg.UniverseBits == 0 {
		cfg.UniverseBits = 64
	}
	if cfg.Bits > 16 {
		return fmt.Errorf("sketches: hierarchy branching 2^%d too large", cfg.Bits)
	}
	if cfg.UniverseBits > 64 {
		return fmt.Errorf("sketches: universe bits %d exceeds 64", cfg.UniverseBits)
	}
	return nil
}

// levelCount returns the number of levels for the configuration.
func (cfg HierarchyConfig) levelCount() int {
	return int((cfg.UniverseBits + cfg.Bits - 1) / cfg.Bits)
}

// NewCountMinHierarchy builds the paper's CMH structure.
func NewCountMinHierarchy(cfg HierarchyConfig) (*Hierarchical, error) {
	return newHierarchy(cfg, "CMH", func(level int, seed uint64) pointSketch {
		return NewCountMin(cfg.Depth, cfg.Width, seed)
	})
}

// NewCountSketchHierarchy builds the equivalent structure over Count
// Sketch rows ("CSH").
func NewCountSketchHierarchy(cfg HierarchyConfig) (*Hierarchical, error) {
	return newHierarchy(cfg, "CSH", func(level int, seed uint64) pointSketch {
		return NewCountSketch(cfg.Depth, cfg.Width, seed)
	})
}

func newHierarchy(cfg HierarchyConfig, name string, mk func(level int, seed uint64) pointSketch) (*Hierarchical, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	h := &Hierarchical{
		bits:          cfg.Bits,
		universeBits:  cfg.UniverseBits,
		name:          name,
		maxCandidates: 1 << 20,
	}
	for j := 0; j < cfg.levelCount(); j++ {
		// Per-level seeds derived from the base seed keep same-config
		// hierarchies mergeable.
		h.levels = append(h.levels, mk(j, cfg.Seed+uint64(j)*0x9e3779b97f4a7c15))
	}
	return h, nil
}

// Name implements core.Summary.
func (h *Hierarchical) Name() string { return h.name }

// N implements core.Summary.
func (h *Hierarchical) N() int64 { return h.n }

// Levels returns the number of dyadic levels.
func (h *Hierarchical) Levels() int { return len(h.levels) }

// Update feeds every level's sketch with the item's prefix at that
// level's granularity.
func (h *Hierarchical) Update(x core.Item, count int64) {
	h.n += count
	xv := uint64(x)
	if h.universeBits < 64 {
		xv &= (1 << h.universeBits) - 1
	}
	for j, s := range h.levels {
		s.Update(core.Item(xv>>(uint(j)*h.bits)), count)
	}
}

// UpdateBatch implements core.BatchUpdater: for each level it rewrites
// the batch into that level's prefixes in a retained scratch buffer and
// feeds it through the level sketch's native batch path, so the per-row
// hash-state hoisting of the flat sketches applies per level. The level
// sketches are linear, so the result is bit-identical to the scalar
// Update loop.
func (h *Hierarchical) UpdateBatch(items []core.Item) {
	if len(items) == 0 {
		return
	}
	if cap(h.scratch) < len(items) {
		h.scratch = make([]core.Item, len(items))
	}
	buf := h.scratch[:len(items)]
	mask := ^uint64(0)
	if h.universeBits < 64 {
		mask = uint64(1)<<h.universeBits - 1
	}
	for j, s := range h.levels {
		shift := uint(j) * h.bits
		for i, x := range items {
			buf[i] = core.Item(uint64(x) & mask >> shift)
		}
		core.UpdateAll(s, buf)
	}
	h.n += int64(len(items))
}

// Estimate returns the full-resolution (level-0) estimate.
func (h *Hierarchical) Estimate(x core.Item) int64 {
	xv := uint64(x)
	if h.universeBits < 64 {
		xv &= (1 << h.universeBits) - 1
	}
	return h.levels[0].Estimate(core.Item(xv))
}

// Query descends the dyadic tree, returning the items whose level-0
// estimate reaches threshold, in descending estimate order.
func (h *Hierarchical) Query(threshold int64) []core.ItemCount {
	if threshold <= 0 {
		// A non-positive threshold would force full-universe enumeration.
		threshold = 1
	}
	top := len(h.levels) - 1
	topWidth := h.universeBits - uint(top)*h.bits // ≤ h.bits by construction
	frontier := make([]uint64, 0, 1<<topWidth)
	for p := uint64(0); p < 1<<topWidth; p++ {
		if h.levels[top].Estimate(core.Item(p)) >= threshold {
			frontier = append(frontier, p)
		}
	}
	for j := top - 1; j >= 0; j-- {
		next := frontier[:0:0]
		for _, p := range frontier {
			base := p << h.bits
			for c := uint64(0); c < 1<<h.bits; c++ {
				child := base | c
				if h.levels[j].Estimate(core.Item(child)) >= threshold {
					next = append(next, child)
				}
			}
			if len(next) > h.maxCandidates {
				break
			}
		}
		frontier = next
		if len(frontier) > h.maxCandidates {
			frontier = frontier[:h.maxCandidates]
		}
	}
	out := make([]core.ItemCount, 0, len(frontier))
	for _, p := range frontier {
		out = append(out, core.ItemCount{Item: core.Item(p), Count: h.levels[0].Estimate(core.Item(p))})
	}
	core.SortByCountDesc(out)
	return out
}

// Clone returns an independent deep copy, cloning every level sketch
// through its own Snapshotter implementation.
func (h *Hierarchical) Clone() *Hierarchical {
	nh := &Hierarchical{
		bits:          h.bits,
		universeBits:  h.universeBits,
		n:             h.n,
		name:          h.name,
		maxCandidates: h.maxCandidates,
		levels:        make([]pointSketch, len(h.levels)),
	}
	for j, lvl := range h.levels {
		sn, ok := lvl.(core.Snapshotter)
		if !ok {
			panic("sketches: hierarchy level sketch does not implement Snapshotter")
		}
		nh.levels[j] = sn.Snapshot().(pointSketch)
	}
	return nh
}

// Snapshot implements core.Snapshotter.
func (h *Hierarchical) Snapshot() core.Summary { return h.Clone() }

// Bytes sums the level sketches.
func (h *Hierarchical) Bytes() int {
	total := 0
	for _, s := range h.levels {
		total += s.Bytes()
	}
	return total
}

// Merge folds another hierarchy level-by-level. Both must have been built
// with identical configurations (including seed).
func (h *Hierarchical) Merge(other core.Summary) error {
	o, ok := other.(*Hierarchical)
	if !ok {
		return core.Incompatible("Hierarchical: cannot merge %T", other)
	}
	if err := h.compatible(o); err != nil {
		return err
	}
	for j := range h.levels {
		if err := h.levels[j].Merge(o.levels[j]); err != nil {
			return err
		}
	}
	h.n += o.n
	return nil
}

// Subtract removes another hierarchy's stream level-by-level.
func (h *Hierarchical) Subtract(other core.Summary) error {
	o, ok := other.(*Hierarchical)
	if !ok {
		return core.Incompatible("Hierarchical: cannot subtract %T", other)
	}
	if err := h.compatible(o); err != nil {
		return err
	}
	for j := range h.levels {
		if err := h.levels[j].Subtract(o.levels[j]); err != nil {
			return err
		}
	}
	h.n -= o.n
	return nil
}

func (h *Hierarchical) compatible(o *Hierarchical) error {
	if h.name != o.name || h.bits != o.bits || h.universeBits != o.universeBits || len(h.levels) != len(o.levels) {
		return core.Incompatible("Hierarchical: configuration mismatch")
	}
	return nil
}
