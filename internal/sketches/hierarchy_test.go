package sketches

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func defaultCfg(seed uint64) HierarchyConfig {
	return HierarchyConfig{Depth: 4, Width: 1024, Bits: 8, UniverseBits: 64, Seed: seed}
}

func TestHierarchyConfigValidation(t *testing.T) {
	if _, err := NewCountMinHierarchy(HierarchyConfig{Depth: 0, Width: 1}); err == nil {
		t.Error("expected error for zero depth")
	}
	if _, err := NewCountMinHierarchy(HierarchyConfig{Depth: 1, Width: 1, Bits: 20}); err == nil {
		t.Error("expected error for bits > 16")
	}
	if _, err := NewCountMinHierarchy(HierarchyConfig{Depth: 1, Width: 1, UniverseBits: 65}); err == nil {
		t.Error("expected error for universe > 64")
	}
}

func TestHierarchyLevelCount(t *testing.T) {
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, UniverseBits: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 8 {
		t.Errorf("levels = %d, want 8", h.Levels())
	}
	h2, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 4, UniverseBits: 32, Seed: 1})
	if h2.Levels() != 8 {
		t.Errorf("levels = %d, want 8", h2.Levels())
	}
	h3, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 5, UniverseBits: 32, Seed: 1})
	if h3.Levels() != 7 { // ceil(32/5)
		t.Errorf("levels = %d, want 7", h3.Levels())
	}
}

func TestCMHFindsAllHeavyHitters(t *testing.T) {
	const n = 80000
	g, err := zipf.NewGenerator(2000, 1.2, 61, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewCountMinHierarchy(defaultCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		h.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.005 * n)
	reported := map[core.Item]bool{}
	for _, ic := range h.Query(threshold) {
		reported[ic.Item] = true
	}
	// Count-Min never underestimates at any level, so recall must be 1.
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("CMH missed heavy item %d (count %d)", tc.Item, tc.Count)
		}
	}
}

func TestCMHEstimatesNeverUnderestimate(t *testing.T) {
	g, _ := zipf.NewGenerator(1000, 1.0, 3, true)
	h, _ := NewCountMinHierarchy(defaultCfg(5))
	truth := exact.New()
	for i := 0; i < 40000; i++ {
		it := g.Next()
		h.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 1000; r++ {
		it := g.ItemOfRank(r)
		if h.Estimate(it) < truth.Estimate(it) {
			t.Fatalf("CMH estimate underestimates item %d", it)
		}
	}
}

func TestCSHFindsMostHeavyHitters(t *testing.T) {
	// Count-Sketch hierarchies have two-sided error: allow a small recall
	// gap but require the bulk found.
	const n = 80000
	g, _ := zipf.NewGenerator(2000, 1.2, 62, true)
	h, err := NewCountSketchHierarchy(HierarchyConfig{Depth: 5, Width: 2048, Bits: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		h.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.005 * n)
	reported := map[core.Item]bool{}
	for _, ic := range h.Query(threshold) {
		reported[ic.Item] = true
	}
	tq := truth.Query(threshold)
	found := 0
	for _, tc := range tq {
		if reported[tc.Item] {
			found++
		}
	}
	if len(tq) > 0 && float64(found)/float64(len(tq)) < 0.9 {
		t.Errorf("CSH found only %d of %d heavy items", found, len(tq))
	}
}

func TestHierarchyQueryPrecisionReasonable(t *testing.T) {
	const n = 80000
	g, _ := zipf.NewGenerator(2000, 1.2, 63, true)
	h, _ := NewCountMinHierarchy(defaultCfg(9))
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		h.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.005 * n)
	rep := h.Query(threshold)
	truthSet := map[core.Item]bool{}
	// Accept anything above the φ−ε boundary as a legitimate report.
	nf := float64(n)
	slack := int64(nf * 2.72 / 1024)
	for _, tc := range truth.Query(threshold - slack) {
		truthSet[tc.Item] = true
	}
	bad := 0
	for _, ic := range rep {
		if !truthSet[ic.Item] {
			bad++
		}
	}
	if len(rep) > 0 && float64(bad)/float64(len(rep)) > 0.2 {
		t.Errorf("%d of %d reported items are far below threshold", bad, len(rep))
	}
}

func TestHierarchyMergeEqualsConcatenation(t *testing.T) {
	cfg := defaultCfg(33)
	a, _ := NewCountMinHierarchy(cfg)
	b, _ := NewCountMinHierarchy(cfg)
	whole, _ := NewCountMinHierarchy(cfg)
	g, _ := zipf.NewGenerator(300, 1.1, 4, true)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		if i%2 == 0 {
			a.Update(it, 1)
		} else {
			b.Update(it, 1)
		}
		whole.Update(it, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 300; r++ {
		it := g.ItemOfRank(r)
		if a.Estimate(it) != whole.Estimate(it) {
			t.Fatal("merged hierarchy diverges from whole-stream hierarchy")
		}
	}
	if a.N() != whole.N() {
		t.Errorf("N mismatch after merge")
	}
}

func TestHierarchyMergeRejectsMismatch(t *testing.T) {
	a, _ := NewCountMinHierarchy(defaultCfg(1))
	b, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 1024, Bits: 4, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Error("expected bits mismatch error")
	}
	c, _ := NewCountSketchHierarchy(defaultCfg(1))
	if err := a.Merge(c); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestHierarchySubtract(t *testing.T) {
	cfg := defaultCfg(44)
	a, _ := NewCountMinHierarchy(cfg)
	b, _ := NewCountMinHierarchy(cfg)
	for i := 0; i < 1000; i++ {
		a.Update(42, 1)
		b.Update(42, 1)
	}
	for i := 0; i < 500; i++ {
		a.Update(7, 1)
	}
	if err := a.Subtract(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(7); got < 400 || got > 600 {
		t.Errorf("difference estimate for item 7 = %d, want ≈ 500", got)
	}
	if a.N() != 500 {
		t.Errorf("N after subtract = %d, want 500", a.N())
	}
}

func TestHierarchySmallUniverse(t *testing.T) {
	// Universe of 16 bits with base 4: exhaustively verifiable.
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 3, Width: 512, Bits: 2, UniverseBits: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.New()
	g, _ := zipf.NewGenerator(200, 1.5, 6, false) // ranks as IDs, fit in 16 bits
	for i := 0; i < 30000; i++ {
		it := g.Next()
		h.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(300)
	reported := map[core.Item]bool{}
	for _, ic := range h.Query(threshold) {
		reported[ic.Item] = true
	}
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("missed item %d in small universe", tc.Item)
		}
	}
}

func TestHierarchyQueryThresholdClamped(t *testing.T) {
	h, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, UniverseBits: 16, Seed: 2})
	h.Update(3, 5)
	// threshold ≤ 0 must not enumerate the whole universe or hang.
	out := h.Query(0)
	found := false
	for _, ic := range out {
		if ic.Item == 3 {
			found = true
		}
	}
	if !found {
		t.Error("item 3 missing from clamped query")
	}
}
