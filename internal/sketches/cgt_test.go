package sketches

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/hash"
	"streamfreq/internal/zipf"
)

func TestCGTSingleItemDecodesExactly(t *testing.T) {
	c := NewCGT(3, 64, 64, 9)
	it := core.Item(hash.Mix64(12345))
	c.Update(it, 500)
	q := c.Query(400)
	if len(q) != 1 || q[0].Item != it || q[0].Count != 500 {
		t.Fatalf("Query = %+v, want exactly item %d count 500", q, it)
	}
}

func TestCGTFindsAllHeavyHitters(t *testing.T) {
	const n = 60000
	g, err := zipf.NewGenerator(1500, 1.2, 83, true)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCGT(4, 512, 64, 19)
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		c.Update(it, 1)
		truth.Update(it, 1)
	}
	threshold := int64(0.005 * n)
	reported := map[core.Item]bool{}
	for _, ic := range c.Query(threshold) {
		reported[ic.Item] = true
	}
	// Each heavy item lands in a bucket it dominates in at least one row
	// w.h.p. with width 512 ≫ 1/φ = 200.
	for _, tc := range truth.Query(threshold) {
		if !reported[tc.Item] {
			t.Errorf("CGT missed heavy item %d (count %d)", tc.Item, tc.Count)
		}
	}
}

func TestCGTEstimateNeverUnderestimates(t *testing.T) {
	g, _ := zipf.NewGenerator(800, 1.0, 29, true)
	c := NewCGT(4, 256, 64, 7)
	truth := exact.New()
	for i := 0; i < 30000; i++ {
		it := g.Next()
		c.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 800; r++ {
		it := g.ItemOfRank(r)
		if c.Estimate(it) < truth.Estimate(it) {
			t.Fatalf("CGT estimate underestimates item %d", it)
		}
	}
}

func TestCGTSupportsDeletions(t *testing.T) {
	c := NewCGT(3, 128, 64, 3)
	heavy := core.Item(hash.Mix64(1))
	noise := core.Item(hash.Mix64(2))
	c.Update(heavy, 1000)
	c.Update(noise, 800)
	c.Update(noise, -800) // full deletion
	q := c.Query(500)
	if len(q) != 1 || q[0].Item != heavy {
		t.Fatalf("after deletion Query = %+v, want only item %d", q, heavy)
	}
	if got := c.Estimate(noise); got != 0 {
		t.Errorf("deleted item estimate = %d, want 0", got)
	}
}

func TestCGTTurnstileDifference(t *testing.T) {
	// Subtract two CGT sketches and decode the max-change item directly.
	a := NewCGT(4, 256, 64, 11)
	b := NewCGT(4, 256, 64, 11)
	g, _ := zipf.NewGenerator(500, 1.0, 13, true)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		a.Update(it, 1)
		b.Update(it, 1)
	}
	surging := core.Item(hash.Mix64(0xFEED))
	b.Update(surging, 3000)
	if err := b.Subtract(a); err != nil {
		t.Fatal(err)
	}
	q := b.Query(2000)
	found := false
	for _, ic := range q {
		if ic.Item == surging {
			found = true
			if ic.Count < 2500 || ic.Count > 3500 {
				t.Errorf("surge estimate %d, want ≈ 3000", ic.Count)
			}
		}
	}
	if !found {
		t.Error("CGT difference decoding missed the surging item")
	}
}

func TestCGTMergeEqualsConcatenation(t *testing.T) {
	a := NewCGT(3, 128, 64, 5)
	b := NewCGT(3, 128, 64, 5)
	whole := NewCGT(3, 128, 64, 5)
	g, _ := zipf.NewGenerator(300, 1.1, 15, true)
	for i := 0; i < 15000; i++ {
		it := g.Next()
		if i%2 == 0 {
			a.Update(it, 1)
		} else {
			b.Update(it, 1)
		}
		whole.Update(it, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 300; r++ {
		it := g.ItemOfRank(r)
		if a.Estimate(it) != whole.Estimate(it) {
			t.Fatal("merged CGT diverges from whole-stream CGT")
		}
	}
}

func TestCGTMergeRejectsMismatch(t *testing.T) {
	a := NewCGT(3, 128, 64, 5)
	if err := a.Merge(NewCGT(3, 128, 32, 5)); err == nil {
		t.Error("expected universe mismatch error")
	}
	if err := a.Merge(NewCGT(3, 128, 64, 6)); err == nil {
		t.Error("expected seed mismatch error")
	}
	if err := a.Merge(NewCountMin(3, 128, 5)); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestCGTSmallUniverseMasksItems(t *testing.T) {
	c := NewCGT(3, 64, 16, 2)
	c.Update(core.Item(0xFFFF0003), 100) // masked to 0x0003
	if got := c.Estimate(3); got != 100 {
		t.Errorf("masked estimate = %d, want 100", got)
	}
	q := c.Query(50)
	if len(q) != 1 || q[0].Item != 3 {
		t.Errorf("Query = %+v, want item 3", q)
	}
}

func TestCGTQueryThresholdClamped(t *testing.T) {
	c := NewCGT(2, 32, 32, 1)
	c.Update(9, 4)
	out := c.Query(0)
	found := false
	for _, ic := range out {
		if ic.Item == 9 {
			found = true
		}
	}
	if !found {
		t.Error("item missing from clamped query")
	}
}

func TestCGTBytesScale(t *testing.T) {
	small := NewCGT(2, 32, 32, 1)
	big := NewCGT(2, 32, 64, 1)
	if big.Bytes() <= small.Bytes() {
		t.Error("64-bit universe CGT should cost more than 32-bit")
	}
}
