package sketches

import (
	"math"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
)

// CGT is the Combinatorial Group Testing sketch of Cormode and
// Muthukrishnan ("What's hot and what's not"), the third sketch of the
// paper's roster. It extends each Count-Min bucket with one sub-counter
// per item bit: a bucket dominated by a single heavy item can then be
// *decoded* directly — bit b of the item is 1 exactly when the bit-b
// sub-counter holds the majority of the bucket total — without any
// universe enumeration or hierarchy descent.
//
// The price is a (1 + universeBits)× blow-up in counters per bucket, the
// "large constant factor" space overhead visible in the paper's space
// plots. Like Count-Min, CGT is linear: it supports deletions, merging
// and subtraction.
type CGT struct {
	// cells is laid out as depth × width × (1+universeBits):
	// cells[(i*width+j)*(1+U) + 0] is the bucket total,
	// cells[(i*width+j)*(1+U) + 1 + b] the bit-b sub-counter.
	cells        []int64
	family       *hash.Family
	depth        int
	width        int
	universeBits uint
	stride       int
	n            int64
	neg          bool
}

// NewCGT returns a CGT sketch with the given depth (rows) and width
// (buckets per row) over a universe of universeBits-bit items
// (0 selects 64). Equal (depth, width, universeBits, seed) sketches are
// mergeable.
func NewCGT(depth, width int, universeBits uint, seed uint64) *CGT {
	if depth <= 0 || width <= 0 {
		panic("sketches: CGT requires positive depth and width")
	}
	if universeBits == 0 {
		universeBits = 64
	}
	if universeBits > 64 {
		panic("sketches: CGT universe exceeds 64 bits")
	}
	stride := 1 + int(universeBits)
	return &CGT{
		cells:        make([]int64, depth*width*stride),
		family:       hash.NewFamily(depth, width, 2, seed),
		depth:        depth,
		width:        width,
		universeBits: universeBits,
		stride:       stride,
	}
}

// Name implements core.Summary.
func (c *CGT) Name() string { return "CGT" }

// N implements core.Summary.
func (c *CGT) N() int64 { return c.n }

// Depth returns the number of rows.
func (c *CGT) Depth() int { return c.depth }

// Width returns the buckets per row.
func (c *CGT) Width() int { return c.width }

func (c *CGT) base(row, bucket int) int {
	return (row*c.width + bucket) * c.stride
}

// Update adds count (possibly negative) occurrences of x.
func (c *CGT) Update(x core.Item, count int64) {
	if count < 0 {
		c.neg = true
	}
	c.n += count
	xv := uint64(x)
	if c.universeBits < 64 {
		xv &= (1 << c.universeBits) - 1
	}
	for i := 0; i < c.depth; i++ {
		b := c.base(i, c.family.Buckets[i].Hash(xv))
		c.cells[b] += count
		for bit := uint(0); bit < c.universeBits; bit++ {
			if xv&(1<<bit) != 0 {
				c.cells[b+1+int(bit)] += count
			}
		}
	}
}

// Estimate returns the Count-Min-style point estimate from the bucket
// totals (min for insert-only, median after deletions).
func (c *CGT) Estimate(x core.Item) int64 {
	xv := uint64(x)
	if c.universeBits < 64 {
		xv &= (1 << c.universeBits) - 1
	}
	if c.neg {
		vals := make([]int64, c.depth)
		for i := 0; i < c.depth; i++ {
			vals[i] = c.cells[c.base(i, c.family.Buckets[i].Hash(xv))]
		}
		return median(vals)
	}
	est := int64(math.MaxInt64)
	for i := 0; i < c.depth; i++ {
		if v := c.cells[c.base(i, c.family.Buckets[i].Hash(xv))]; v < est {
			est = v
		}
	}
	return est
}

// Query decodes every bucket whose total reaches threshold, verifies each
// decoded candidate against the full sketch, and returns the verified
// items in descending estimate order.
func (c *CGT) Query(threshold int64) []core.ItemCount {
	if threshold <= 0 {
		threshold = 1
	}
	seen := make(map[core.Item]int64)
	for i := 0; i < c.depth; i++ {
		for j := 0; j < c.width; j++ {
			b := c.base(i, j)
			total := c.cells[b]
			if total < threshold {
				continue
			}
			// Majority-decode the candidate item bit by bit.
			var xv uint64
			for bit := uint(0); bit < c.universeBits; bit++ {
				if 2*c.cells[b+1+int(bit)] > total {
					xv |= 1 << bit
				}
			}
			it := core.Item(xv)
			if _, dup := seen[it]; dup {
				continue
			}
			// Verification 1: the candidate must hash back to this bucket
			// in this row, else the decode mixed several items.
			if c.family.Buckets[i].Hash(xv) != j {
				continue
			}
			// Verification 2: the cross-row estimate must itself clear
			// the threshold.
			if est := c.Estimate(it); est >= threshold {
				seen[it] = est
			}
		}
	}
	out := make([]core.ItemCount, 0, len(seen))
	for it, est := range seen {
		out = append(out, core.ItemCount{Item: it, Count: est})
	}
	core.SortByCountDesc(out)
	return out
}

// Bytes implements core.Summary.
func (c *CGT) Bytes() int {
	return 8*len(c.cells) + 16*c.depth
}

// Clone returns an independent deep copy of the cell array; the hash
// family is shared (immutable after construction).
func (c *CGT) Clone() *CGT {
	nc := *c
	nc.cells = append([]int64(nil), c.cells...)
	return &nc
}

// Snapshot implements core.Snapshotter.
func (c *CGT) Snapshot() core.Summary { return c.Clone() }

// Merge adds another CGT sketch built with identical parameters.
func (c *CGT) Merge(other core.Summary) error {
	o, ok := other.(*CGT)
	if !ok {
		return core.Incompatible("CGT: cannot merge %T", other)
	}
	if err := c.compatible(o); err != nil {
		return err
	}
	for i := range c.cells {
		c.cells[i] += o.cells[i]
	}
	c.n += o.n
	c.neg = c.neg || o.neg
	return nil
}

// Subtract removes another CGT sketch's stream.
func (c *CGT) Subtract(other core.Summary) error {
	o, ok := other.(*CGT)
	if !ok {
		return core.Incompatible("CGT: cannot subtract %T", other)
	}
	if err := c.compatible(o); err != nil {
		return err
	}
	for i := range c.cells {
		c.cells[i] -= o.cells[i]
	}
	c.n -= o.n
	c.neg = true
	return nil
}

func (c *CGT) compatible(o *CGT) error {
	if c.universeBits != o.universeBits {
		return core.Incompatible("CGT: universe mismatch (%d vs %d bits)", c.universeBits, o.universeBits)
	}
	if err := c.family.Compatible(o.family); err != nil {
		return core.Incompatible("CGT: %v", err)
	}
	return nil
}
