// Package sketches implements the sketch-based frequent-items algorithms
// compared by the paper: the Count-Min sketch (plain and conservative-
// update), the Count Sketch of Charikar, Chen & Farach-Colton, dyadic
// hierarchical wrappers over both (the paper's CMH and the CS hierarchy),
// and the Combinatorial Group Testing (CGT) sketch.
//
// Sketches are linear projections of the frequency vector: they support
// deletions (the turnstile model), merging by addition, and stream
// differencing by subtraction — capabilities no counter-based summary
// has, bought at the price of randomization and larger constants.
package sketches

import (
	"math"
	"sort"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
)

// CountMin is the Cormode–Muthukrishnan Count-Min sketch: a d×w array of
// counters with one pairwise-independent hash per row.
//
// For an insert-only stream, Estimate never underestimates and, with
// w = ⌈e/ε⌉ and d = ⌈ln(1/δ)⌉, overestimates by more than εN with
// probability at most δ. Under deletions the min estimator loses its
// one-sided guarantee and the sketch switches to the median estimator
// automatically.
type CountMin struct {
	rows         [][]int64
	family       *hash.Family
	width        int
	depth        int
	n            int64
	neg          bool // a negative update has been seen; use median estimator
	conservative bool
}

// NewCountMin returns a d(depth) × w(width) Count-Min sketch seeded
// deterministically by seed. Sketches built with equal (depth, width,
// seed) are mergeable.
func NewCountMin(depth, width int, seed uint64) *CountMin {
	return newCountMin(depth, width, seed, false)
}

// NewCountMinConservative returns a Count-Min sketch using conservative
// update: on increment, each row counter is raised only as far as
// necessary (to the current estimate plus the increment), never higher.
// Conservative update strictly reduces overestimation for insert-only
// streams but forfeits linearity (no Subtract, merge is approximate),
// which is why the paper's main roster uses the plain sketch; the
// ablation bench quantifies the accuracy difference.
func NewCountMinConservative(depth, width int, seed uint64) *CountMin {
	return newCountMin(depth, width, seed, true)
}

func newCountMin(depth, width int, seed uint64, conservative bool) *CountMin {
	if depth <= 0 || width <= 0 {
		panic("sketches: CountMin requires positive depth and width")
	}
	rows := make([][]int64, depth)
	backing := make([]int64, depth*width)
	for i := range rows {
		rows[i], backing = backing[:width:width], backing[width:]
	}
	return &CountMin{
		rows:         rows,
		family:       hash.NewFamily(depth, width, 2, seed),
		width:        width,
		depth:        depth,
		conservative: conservative,
	}
}

// ParamsForEpsilon returns (depth, width) achieving error εN with failure
// probability δ: w = ⌈e/ε⌉, d = ⌈ln(1/δ)⌉.
func ParamsForEpsilon(epsilon, delta float64) (depth, width int) {
	depth = int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	width = int(math.Ceil(math.E / epsilon))
	if width < 1 {
		width = 1
	}
	return depth, width
}

// Name implements core.Summary.
func (c *CountMin) Name() string {
	if c.conservative {
		return "CMC"
	}
	return "CM"
}

// MonotoneEstimates implements core.EstimateMonotone: counters (and so
// the min estimator) only grow until a deletion is ingested.
func (c *CountMin) MonotoneEstimates() bool { return !c.neg }

// Depth returns d; Width returns w.
func (c *CountMin) Depth() int { return c.depth }

// Width returns the number of counters per row.
func (c *CountMin) Width() int { return c.width }

// N implements core.Summary.
func (c *CountMin) N() int64 { return c.n }

// Update adds count (which may be negative, except for conservative
// sketches) occurrences of x.
func (c *CountMin) Update(x core.Item, count int64) {
	if c.conservative {
		if count < 0 {
			panic("sketches: conservative Count-Min does not support deletions")
		}
		c.updateConservative(x, count)
		return
	}
	if count < 0 {
		c.neg = true
	}
	c.n += count
	xv := uint64(x)
	for i := range c.rows {
		c.rows[i][c.family.Buckets[i].Hash(xv)] += count
	}
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals by
// processing the batch row by row: the row slice and its hash function
// are loaded once per row instead of once per arrival, and all writes of
// a row land in the same w-counter window, which keeps the touched
// cache lines resident across the batch (the scalar path cycles through
// all d rows between consecutive touches of any one row). Because the
// sketch is linear, the reordering is exact.
//
// Conservative sketches are not linear — each arrival's write depends on
// the estimate at that arrival — so they keep per-arrival processing.
func (c *CountMin) UpdateBatch(items []core.Item) {
	if c.conservative {
		for _, x := range items {
			c.updateConservative(x, 1)
		}
		return
	}
	c.n += int64(len(items))
	for i := range c.rows {
		row := c.rows[i]
		h := c.family.Buckets[i]
		for _, x := range items {
			row[h.Hash(uint64(x))]++
		}
	}
}

func (c *CountMin) updateConservative(x core.Item, count int64) {
	c.n += count
	xv := uint64(x)
	// First pass: current estimate.
	est := int64(math.MaxInt64)
	idx := make([]int, c.depth)
	for i := range c.rows {
		idx[i] = c.family.Buckets[i].Hash(xv)
		if v := c.rows[i][idx[i]]; v < est {
			est = v
		}
	}
	target := est + count
	for i := range c.rows {
		if c.rows[i][idx[i]] < target {
			c.rows[i][idx[i]] = target
		}
	}
}

// Estimate returns the point estimate of x's count: the row minimum for
// insert-only streams, or the row median once deletions have occurred.
func (c *CountMin) Estimate(x core.Item) int64 {
	if c.neg {
		return c.estimateMedian(x)
	}
	return c.EstimateMin(x)
}

// EstimateMin returns the classical min-row estimate (an upper bound on
// the true count for insert-only streams).
func (c *CountMin) EstimateMin(x core.Item) int64 {
	xv := uint64(x)
	est := int64(math.MaxInt64)
	for i := range c.rows {
		if v := c.rows[i][c.family.Buckets[i].Hash(xv)]; v < est {
			est = v
		}
	}
	return est
}

func (c *CountMin) estimateMedian(x core.Item) int64 {
	xv := uint64(x)
	vals := make([]int64, c.depth)
	for i := range c.rows {
		vals[i] = c.rows[i][c.family.Buckets[i].Hash(xv)]
	}
	return median(vals)
}

// Query is not supported by a flat Count-Min sketch: it cannot enumerate
// items. Wrap it in a core-level tracker or use the Hierarchical variant.
// It returns nil to satisfy core.Summary; the harness never calls it on
// flat sketches.
func (c *CountMin) Query(threshold int64) []core.ItemCount { return nil }

// Clone returns an independent deep copy of the counter array. The hash
// family is shared: it is immutable after construction, so parent and
// clone index identical bucket layouts at no copying cost.
func (c *CountMin) Clone() *CountMin {
	nc := &CountMin{
		family:       c.family,
		width:        c.width,
		depth:        c.depth,
		n:            c.n,
		neg:          c.neg,
		conservative: c.conservative,
	}
	backing := make([]int64, c.depth*c.width)
	nc.rows = make([][]int64, c.depth)
	for i := range nc.rows {
		nc.rows[i], backing = backing[:c.width:c.width], backing[c.width:]
		copy(nc.rows[i], c.rows[i])
	}
	return nc
}

// Snapshot implements core.Snapshotter.
func (c *CountMin) Snapshot() core.Summary { return c.Clone() }

// Bytes implements core.Summary.
func (c *CountMin) Bytes() int {
	return 8*c.depth*c.width + 16*c.depth // counters + per-row hash seeds
}

// Merge adds another Count-Min sketch built with identical parameters.
func (c *CountMin) Merge(other core.Summary) error {
	o, ok := other.(*CountMin)
	if !ok {
		return core.Incompatible("CountMin: cannot merge %T", other)
	}
	if err := c.family.Compatible(o.family); err != nil {
		return core.Incompatible("CountMin: %v", err)
	}
	if c.conservative || o.conservative {
		return core.Incompatible("CountMin: conservative sketches are not linear and cannot be merged exactly")
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += o.rows[i][j]
		}
	}
	c.n += o.n
	c.neg = c.neg || o.neg
	return nil
}

// Subtract removes another sketch's stream, leaving a sketch of the
// difference vector. Point queries switch to the median estimator.
func (c *CountMin) Subtract(other core.Summary) error {
	o, ok := other.(*CountMin)
	if !ok {
		return core.Incompatible("CountMin: cannot subtract %T", other)
	}
	if err := c.family.Compatible(o.family); err != nil {
		return core.Incompatible("CountMin: %v", err)
	}
	if c.conservative || o.conservative {
		return core.Incompatible("CountMin: conservative sketches are not linear and cannot be subtracted")
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] -= o.rows[i][j]
		}
	}
	c.n -= o.n
	c.neg = true
	return nil
}

// median returns the median of vals, averaging the two central values for
// even lengths (rounding toward the lower). vals is modified.
func median(vals []int64) int64 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m]
	}
	return (vals[m-1] + vals[m]) / 2
}
