package sketches

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	g, err := zipf.NewGenerator(5000, 1.1, 71, true)
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCountMin(4, 1024, 7)
	truth := exact.New()
	for i := 0; i < 100000; i++ {
		it := g.Next()
		cm.Update(it, 1)
		truth.Update(it, 1)
	}
	for r := 1; r <= 5000; r++ {
		it := g.ItemOfRank(r)
		if cm.Estimate(it) < truth.Estimate(it) {
			t.Fatalf("item %d: CM estimate %d below true %d", it, cm.Estimate(it), truth.Estimate(it))
		}
	}
}

func TestCountMinEpsilonBound(t *testing.T) {
	// With w = e/ε, overestimation beyond εN should be rare. Check that at
	// most a small fraction of the universe violates it (δ-style bound).
	const n = 100000
	eps := 0.01
	d, w := ParamsForEpsilon(eps, 0.001)
	cm := NewCountMin(d, w, 3)
	g, _ := zipf.NewGenerator(2000, 1.0, 9, true)
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		cm.Update(it, 1)
		truth.Update(it, 1)
	}
	violations := 0
	for r := 1; r <= 2000; r++ {
		it := g.ItemOfRank(r)
		if cm.Estimate(it) > truth.Estimate(it)+int64(eps*n) {
			violations++
		}
	}
	if violations > 4 { // 2000 × δ=0.001 = 2 expected
		t.Errorf("%d items exceed the εN bound", violations)
	}
}

func TestCountMinParamsForEpsilon(t *testing.T) {
	d, w := ParamsForEpsilon(0.01, 0.01)
	if d < 4 || d > 6 {
		t.Errorf("depth = %d, want ≈ ln(100) ≈ 5", d)
	}
	if w < 270 || w > 275 {
		t.Errorf("width = %d, want ≈ e/0.01 ≈ 272", w)
	}
}

func TestCountMinMergeEqualsConcatenation(t *testing.T) {
	const seed = 13
	a := NewCountMin(4, 256, seed)
	b := NewCountMin(4, 256, seed)
	whole := NewCountMin(4, 256, seed)
	g, _ := zipf.NewGenerator(500, 1.0, 3, true)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		if i%2 == 0 {
			a.Update(it, 1)
		} else {
			b.Update(it, 1)
		}
		whole.Update(it, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 500; r++ {
		it := g.ItemOfRank(r)
		if a.Estimate(it) != whole.Estimate(it) {
			t.Fatalf("merged estimate %d != whole-stream estimate %d", a.Estimate(it), whole.Estimate(it))
		}
	}
	if a.N() != whole.N() {
		t.Errorf("N mismatch: %d vs %d", a.N(), whole.N())
	}
}

func TestCountMinMergeRejectsMismatchedSeeds(t *testing.T) {
	a := NewCountMin(4, 256, 1)
	b := NewCountMin(4, 256, 2)
	if err := a.Merge(b); err == nil {
		t.Error("expected seed mismatch error")
	}
	if err := a.Merge(NewCountMin(5, 256, 1)); err == nil {
		t.Error("expected depth mismatch error")
	}
	if err := a.Merge(NewCountSketch(4, 256, 1)); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestCountMinSubtractDifference(t *testing.T) {
	const seed = 21
	a := NewCountMin(5, 512, seed)
	b := NewCountMin(5, 512, seed)
	// Stream A: item 1 ×100, item 2 ×50. Stream B: item 1 ×60, item 3 ×70.
	for i := 0; i < 100; i++ {
		a.Update(1, 1)
	}
	for i := 0; i < 50; i++ {
		a.Update(2, 1)
	}
	for i := 0; i < 60; i++ {
		b.Update(1, 1)
	}
	for i := 0; i < 70; i++ {
		b.Update(3, 1)
	}
	if err := a.Subtract(b); err != nil {
		t.Fatal(err)
	}
	// Sparse sketch: differences are exact here (no collisions expected
	// with 3 items in 512 buckets; median estimator is robust anyway).
	if got := a.Estimate(1); got != 40 {
		t.Errorf("difference for item 1 = %d, want 40", got)
	}
	if got := a.Estimate(2); got != 50 {
		t.Errorf("difference for item 2 = %d, want 50", got)
	}
	if got := a.Estimate(3); got != -70 {
		t.Errorf("difference for item 3 = %d, want -70", got)
	}
}

func TestCountMinDeletionsSwitchToMedian(t *testing.T) {
	cm := NewCountMin(5, 128, 4)
	cm.Update(1, 10)
	cm.Update(1, -4)
	if got := cm.Estimate(1); got != 6 {
		t.Errorf("estimate after deletion = %d, want 6", got)
	}
	if cm.N() != 6 {
		t.Errorf("N = %d, want 6", cm.N())
	}
}

func TestConservativeUpdateMoreAccurate(t *testing.T) {
	// Conservative update estimates are sandwiched: true ≤ CU ≤ plain CM.
	g, _ := zipf.NewGenerator(3000, 0.9, 17, true)
	plain := NewCountMin(4, 256, 5)
	cons := NewCountMinConservative(4, 256, 5)
	truth := exact.New()
	for i := 0; i < 60000; i++ {
		it := g.Next()
		plain.Update(it, 1)
		cons.Update(it, 1)
		truth.Update(it, 1)
	}
	var sumPlain, sumCons int64
	for r := 1; r <= 3000; r++ {
		it := g.ItemOfRank(r)
		tru := truth.Estimate(it)
		p, c := plain.Estimate(it), cons.Estimate(it)
		if c < tru {
			t.Fatalf("conservative underestimated item %d: %d < %d", it, c, tru)
		}
		if c > p {
			t.Fatalf("conservative exceeded plain for item %d: %d > %d", it, c, p)
		}
		sumPlain += p - tru
		sumCons += c - tru
	}
	if sumCons >= sumPlain {
		t.Errorf("conservative total error %d not below plain %d", sumCons, sumPlain)
	}
}

func TestConservativeRejectsDeletionsAndMerge(t *testing.T) {
	c := NewCountMinConservative(2, 64, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative update")
			}
		}()
		c.Update(1, -1)
	}()
	if err := c.Merge(NewCountMinConservative(2, 64, 1)); err == nil {
		t.Error("expected merge rejection for conservative sketches")
	}
}

func TestCountMinQueryReturnsNil(t *testing.T) {
	cm := NewCountMin(2, 64, 1)
	cm.Update(1, 5)
	if cm.Query(1) != nil {
		t.Error("flat sketch Query should return nil")
	}
}

func TestCountMinPanicsOnBadParams(t *testing.T) {
	for _, p := range [][2]int{{0, 10}, {10, 0}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", p)
				}
			}()
			NewCountMin(p[0], p[1], 1)
		}()
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{3}, 3},
		{[]int64{1, 2, 3}, 2},
		{[]int64{5, 1}, 3},
		{[]int64{4, 2, 6, 8}, 5},
		{[]int64{-10, 0, 10}, 0},
	}
	for _, c := range cases {
		in := append([]int64(nil), c.in...)
		if got := median(in); got != c.want {
			t.Errorf("median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountMinPropertyUpperBound(t *testing.T) {
	f := func(items []uint8) bool {
		cm := NewCountMin(3, 64, 99)
		truth := exact.New()
		for _, b := range items {
			it := core.Item(b % 16)
			cm.Update(it, 1)
			truth.Update(it, 1)
		}
		for v := core.Item(0); v < 16; v++ {
			if cm.Estimate(v) < truth.Estimate(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
