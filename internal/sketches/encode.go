package sketches

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary serialization for sketches. Sketches are the summaries a
// distributed deployment ships between nodes (they merge by addition), so
// they get a compact, versioned, little-endian wire format:
//
//	[4]byte magic   ("CM01", "CS01", "CG01", "HI01")
//	header fields   (type-specific, fixed width)
//	counter payload (8 bytes per cell)
//
// Decoding validates the magic, bounds-checks all dimensions before
// allocating, and re-derives the hash functions from the stored seed, so
// a decoded sketch is bit-identical in behaviour to the original.

const (
	magicCM = "CM01"
	magicCS = "CS01"
	magicCG = "CG01"
	magicHI = "HI01"
)

// maxDim bounds decoded sketch dimensions to catch corrupt headers before
// a huge allocation: 2^28 cells is 2 GiB of counters.
const maxDim = 1 << 28

type cellWriter struct {
	buf bytes.Buffer
}

func (w *cellWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *cellWriter) i64(v int64) { w.u64(uint64(v)) }

type cellReader struct {
	data []byte
	pos  int
	err  error
}

func (r *cellReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.err = fmt.Errorf("sketches: truncated payload at offset %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *cellReader) i64() int64 { return int64(r.u64()) }

func (r *cellReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("sketches: %d trailing bytes", len(r.data)-r.pos)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	var w cellWriter
	w.buf.WriteString(magicCM)
	flags := uint64(0)
	if c.neg {
		flags |= 1
	}
	if c.conservative {
		flags |= 2
	}
	w.u64(flags)
	w.u64(uint64(c.depth))
	w.u64(uint64(c.width))
	w.u64(c.family.Seed())
	w.i64(c.n)
	for i := range c.rows {
		for _, v := range c.rows[i] {
			w.i64(v)
		}
	}
	return w.buf.Bytes(), nil
}

// DecodeCountMin parses a sketch produced by (*CountMin).MarshalBinary.
func DecodeCountMin(data []byte) (*CountMin, error) {
	if len(data) < 4 || string(data[:4]) != magicCM {
		return nil, fmt.Errorf("sketches: not a Count-Min blob")
	}
	r := cellReader{data: data[4:]}
	flags := r.u64()
	depth := r.u64()
	width := r.u64()
	seed := r.u64()
	n := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if depth == 0 || width == 0 || depth > maxDim/width {
		return nil, fmt.Errorf("sketches: implausible Count-Min dimensions %d×%d", depth, width)
	}
	// Validate the payload length before allocating the counter array, so
	// corrupt headers fail fast instead of triggering huge allocations.
	if remaining := len(r.data) - r.pos; uint64(remaining) != depth*width*8 {
		return nil, fmt.Errorf("sketches: Count-Min payload %d bytes, want %d", remaining, depth*width*8)
	}
	c := newCountMin(int(depth), int(width), seed, flags&2 != 0)
	c.neg = flags&1 != 0
	c.n = n
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = r.i64()
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	var w cellWriter
	w.buf.WriteString(magicCS)
	w.u64(uint64(c.depth))
	w.u64(uint64(c.width))
	w.u64(c.family.Seed())
	w.i64(c.n)
	for i := range c.rows {
		for _, v := range c.rows[i] {
			w.i64(v)
		}
	}
	return w.buf.Bytes(), nil
}

// DecodeCountSketch parses a sketch produced by
// (*CountSketch).MarshalBinary.
func DecodeCountSketch(data []byte) (*CountSketch, error) {
	if len(data) < 4 || string(data[:4]) != magicCS {
		return nil, fmt.Errorf("sketches: not a Count-Sketch blob")
	}
	r := cellReader{data: data[4:]}
	depth := r.u64()
	width := r.u64()
	seed := r.u64()
	n := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if depth == 0 || width == 0 || depth > maxDim/width {
		return nil, fmt.Errorf("sketches: implausible Count-Sketch dimensions %d×%d", depth, width)
	}
	if remaining := len(r.data) - r.pos; uint64(remaining) != depth*width*8 {
		return nil, fmt.Errorf("sketches: Count-Sketch payload %d bytes, want %d", remaining, depth*width*8)
	}
	c := NewCountSketch(int(depth), int(width), seed)
	c.n = n
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = r.i64()
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CGT) MarshalBinary() ([]byte, error) {
	var w cellWriter
	w.buf.WriteString(magicCG)
	flags := uint64(0)
	if c.neg {
		flags |= 1
	}
	w.u64(flags)
	w.u64(uint64(c.depth))
	w.u64(uint64(c.width))
	w.u64(uint64(c.universeBits))
	w.u64(c.family.Seed())
	w.i64(c.n)
	for _, v := range c.cells {
		w.i64(v)
	}
	return w.buf.Bytes(), nil
}

// DecodeCGT parses a sketch produced by (*CGT).MarshalBinary.
func DecodeCGT(data []byte) (*CGT, error) {
	if len(data) < 4 || string(data[:4]) != magicCG {
		return nil, fmt.Errorf("sketches: not a CGT blob")
	}
	r := cellReader{data: data[4:]}
	flags := r.u64()
	depth := r.u64()
	width := r.u64()
	ubits := r.u64()
	seed := r.u64()
	n := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if depth == 0 || width == 0 || ubits == 0 || ubits > 64 || depth > maxDim/(width*(1+ubits)) {
		return nil, fmt.Errorf("sketches: implausible CGT dimensions %d×%d×%d", depth, width, ubits)
	}
	if remaining := len(r.data) - r.pos; uint64(remaining) != depth*width*(1+ubits)*8 {
		return nil, fmt.Errorf("sketches: CGT payload %d bytes, want %d", remaining, depth*width*(1+ubits)*8)
	}
	c := NewCGT(int(depth), int(width), uint(ubits), seed)
	c.neg = flags&1 != 0
	c.n = n
	for i := range c.cells {
		c.cells[i] = r.i64()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Each level sketch is
// nested as a length-prefixed blob.
func (h *Hierarchical) MarshalBinary() ([]byte, error) {
	var w cellWriter
	w.buf.WriteString(magicHI)
	var kind uint64
	switch h.name {
	case "CMH":
		kind = 0
	case "CSH":
		kind = 1
	default:
		return nil, fmt.Errorf("sketches: unknown hierarchy kind %q", h.name)
	}
	w.u64(kind)
	w.u64(uint64(h.bits))
	w.u64(uint64(h.universeBits))
	w.i64(h.n)
	w.u64(uint64(len(h.levels)))
	for _, s := range h.levels {
		m, ok := s.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			return nil, fmt.Errorf("sketches: level sketch %T not marshalable", s)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.u64(uint64(len(blob)))
		w.buf.Write(blob)
	}
	return w.buf.Bytes(), nil
}

// DecodeHierarchical parses a blob produced by
// (*Hierarchical).MarshalBinary.
func DecodeHierarchical(data []byte) (*Hierarchical, error) {
	if len(data) < 4 || string(data[:4]) != magicHI {
		return nil, fmt.Errorf("sketches: not a hierarchy blob")
	}
	r := cellReader{data: data[4:]}
	kind := r.u64()
	bits := r.u64()
	ubits := r.u64()
	n := r.i64()
	nlevels := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if bits == 0 || bits > 16 || ubits == 0 || ubits > 64 || nlevels == 0 || nlevels > 64 {
		return nil, fmt.Errorf("sketches: implausible hierarchy header")
	}
	h := &Hierarchical{
		bits:          uint(bits),
		universeBits:  uint(ubits),
		n:             n,
		maxCandidates: 1 << 20,
	}
	switch kind {
	case 0:
		h.name = "CMH"
	case 1:
		h.name = "CSH"
	default:
		return nil, fmt.Errorf("sketches: unknown hierarchy kind %d", kind)
	}
	for l := uint64(0); l < nlevels; l++ {
		blen := r.u64()
		if r.err != nil {
			return nil, r.err
		}
		if r.pos+int(blen) > len(r.data) {
			return nil, fmt.Errorf("sketches: truncated hierarchy level %d", l)
		}
		blob := r.data[r.pos : r.pos+int(blen)]
		r.pos += int(blen)
		var (
			s   pointSketch
			err error
		)
		if h.name == "CMH" {
			s, err = DecodeCountMin(blob)
		} else {
			s, err = DecodeCountSketch(blob)
		}
		if err != nil {
			return nil, fmt.Errorf("sketches: hierarchy level %d: %w", l, err)
		}
		h.levels = append(h.levels, s)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}
