package sketches

import (
	"math"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/zipf"
)

func TestCountSketchAccuracyWithinTheory(t *testing.T) {
	// Lemma 4: |estimate − true| ≤ 8γ where γ = sqrt(residual F2 / b).
	// We check against the slightly looser full-F2 bound, which holds for
	// every item simultaneously with the configured depth.
	const n, w, d = 100000, 2048, 9
	g, err := zipf.NewGenerator(3000, 1.1, 23, true)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCountSketch(d, w, 31)
	truth := exact.New()
	for i := 0; i < n; i++ {
		it := g.Next()
		cs.Update(it, 1)
		truth.Update(it, 1)
	}
	gamma := math.Sqrt(truth.SecondMoment() / w)
	bound := int64(8*gamma) + 1
	violations := 0
	for r := 1; r <= 3000; r++ {
		it := g.ItemOfRank(r)
		diff := cs.Estimate(it) - truth.Estimate(it)
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			violations++
		}
	}
	if violations > 3 {
		t.Errorf("%d of 3000 items exceed the 8γ error bound (γ=%.1f)", violations, gamma)
	}
}

func TestCountSketchApproximatelyUnbiased(t *testing.T) {
	// Averaged over many independent sketches, the estimate of a fixed
	// item should straddle its true count.
	const trials = 40
	var sum float64
	for s := 0; s < trials; s++ {
		cs := NewCountSketch(1, 64, uint64(1000+s))
		// 200 copies of item 7 plus noise items.
		for i := 0; i < 200; i++ {
			cs.Update(7, 1)
		}
		for i := core.Item(100); i < 400; i++ {
			cs.Update(i, 1)
		}
		sum += float64(cs.Estimate(7))
	}
	mean := sum / trials
	// Single-row estimates are exactly unbiased; sampling error with 40
	// trials and σ ≈ sqrt(300/64)·~17 stays well within ±25.
	if math.Abs(mean-200) > 25 {
		t.Errorf("mean estimate %.1f not ≈ 200; estimator looks biased", mean)
	}
}

func TestCountSketchMergeEqualsConcatenation(t *testing.T) {
	const seed = 17
	a := NewCountSketch(5, 256, seed)
	b := NewCountSketch(5, 256, seed)
	whole := NewCountSketch(5, 256, seed)
	g, _ := zipf.NewGenerator(500, 1.0, 3, true)
	for i := 0; i < 20000; i++ {
		it := g.Next()
		if i%3 == 0 {
			a.Update(it, 1)
		} else {
			b.Update(it, 1)
		}
		whole.Update(it, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 500; r++ {
		it := g.ItemOfRank(r)
		if a.Estimate(it) != whole.Estimate(it) {
			t.Fatalf("merged estimate differs from whole-stream estimate")
		}
	}
}

func TestCountSketchSubtractFindsChange(t *testing.T) {
	// The §4.2 max-change primitive: sketch two streams, subtract, and the
	// largest |difference| items must surface.
	const seed = 41
	s1 := NewCountSketch(7, 512, seed)
	s2 := NewCountSketch(7, 512, seed)
	g, _ := zipf.NewGenerator(1000, 1.0, 5, true)
	for i := 0; i < 30000; i++ {
		it := g.Next()
		s1.Update(it, 1)
		s2.Update(it, 1)
	}
	// Make item X surge in stream 2 only.
	surging := core.Item(0xABCDEF)
	for i := 0; i < 5000; i++ {
		s2.Update(surging, 1)
	}
	if err := s2.Subtract(s1); err != nil {
		t.Fatal(err)
	}
	got := s2.Estimate(surging)
	if got < 4000 || got > 6000 {
		t.Errorf("difference estimate %d for surging item, want ≈ 5000", got)
	}
	// A non-surging item's difference should be near zero.
	quiet := g.ItemOfRank(1)
	if d := s2.Estimate(quiet); d < -1500 || d > 1500 {
		t.Errorf("difference estimate %d for stable item, want ≈ 0", d)
	}
}

func TestCountSketchMergeRejectsMismatch(t *testing.T) {
	a := NewCountSketch(4, 128, 1)
	if err := a.Merge(NewCountSketch(4, 128, 2)); err == nil {
		t.Error("expected seed mismatch error")
	}
	if err := a.Merge(NewCountMin(4, 128, 1)); err == nil {
		t.Error("expected type mismatch error")
	}
	if err := a.Subtract(NewCountSketch(4, 256, 1)); err == nil {
		t.Error("expected width mismatch error")
	}
}

func TestCSParamsForEpsilon(t *testing.T) {
	d, w := CSParamsForEpsilon(0.1, 0.01)
	if d%2 == 0 {
		t.Errorf("depth %d should be odd for an exact median", d)
	}
	if w != 300 {
		t.Errorf("width = %d, want 3/0.1² = 300", w)
	}
}

func TestCountSketchQueryReturnsNil(t *testing.T) {
	cs := NewCountSketch(3, 64, 2)
	cs.Update(9, 3)
	if cs.Query(1) != nil {
		t.Error("flat sketch Query should return nil")
	}
}

func TestCountSketchWeightedAndNegative(t *testing.T) {
	cs := NewCountSketch(5, 128, 6)
	cs.Update(1, 100)
	cs.Update(1, -40)
	if got := cs.Estimate(1); got != 60 {
		t.Errorf("estimate = %d, want 60 (single item, no collisions)", got)
	}
	if cs.N() != 60 {
		t.Errorf("N = %d, want 60", cs.N())
	}
}

func TestCountSketchBytes(t *testing.T) {
	cs := NewCountSketch(4, 100, 1)
	if cs.Bytes() < 8*4*100 {
		t.Errorf("Bytes %d below raw counter size", cs.Bytes())
	}
}
