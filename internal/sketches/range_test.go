package sketches

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/prng"
	"streamfreq/internal/zipf"
)

func TestRangeEstimateNeverUnderestimates(t *testing.T) {
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 2048, Bits: 4, UniverseBits: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(9)
	exactCounts := make([]int64, 1<<16)
	const n = 200000
	for i := 0; i < n; i++ {
		// Clustered values so ranges are meaningful.
		v := rng.Uint64n(1 << 16)
		if rng.Uint64n(4) == 0 {
			v = 1000 + rng.Uint64n(64)
		}
		h.Update(core.Item(v), 1)
		exactCounts[v]++
	}
	ranges := [][2]uint64{
		{0, 0}, {1000, 1063}, {0, 1<<16 - 1}, {5, 5}, {32768, 65535}, {999, 1064},
	}
	for _, r := range ranges {
		var truth int64
		for v := r[0]; v <= r[1]; v++ {
			truth += exactCounts[v]
		}
		got, err := h.RangeEstimate(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if got < truth {
			t.Errorf("range [%d,%d]: estimate %d underestimates true %d", r[0], r[1], got, truth)
		}
		slack := int64(float64(n) * 0.1) // generous: ε·N·levels
		if got > truth+slack {
			t.Errorf("range [%d,%d]: estimate %d exceeds true %d + slack", r[0], r[1], got, truth)
		}
	}
	// Full-universe range must be within slack of n (one-sided above).
	full, err := h.RangeEstimate(0, 1<<16-1)
	if err != nil {
		t.Fatal(err)
	}
	if full < n {
		t.Errorf("full-range estimate %d below n %d", full, n)
	}
}

func TestRangeEstimateErrors(t *testing.T) {
	h, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, UniverseBits: 16, Seed: 1})
	if _, err := h.RangeEstimate(10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	// Range entirely above the universe is empty.
	got, err := h.RangeEstimate(1<<20, 1<<21)
	if err != nil || got != 0 {
		t.Errorf("above-universe range = %d, %v", got, err)
	}
}

func TestRangeEstimateTopOfUniverse(t *testing.T) {
	h, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 3, Width: 512, Bits: 8, UniverseBits: 16, Seed: 2})
	top := core.Item(1<<16 - 1)
	h.Update(top, 7)
	got, err := h.RangeEstimate(1<<16-1, 1<<16-1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 7 {
		t.Errorf("top-of-universe point range = %d, want ≥ 7", got)
	}
	// Must not loop forever or wrap; full range includes it.
	full, err := h.RangeEstimate(0, 1<<16-1)
	if err != nil || full < 7 {
		t.Errorf("full range = %d, %v", full, err)
	}
}

func TestInnerProductJoinSize(t *testing.T) {
	const seed = 5
	a := NewCountMin(5, 4096, seed)
	b := NewCountMin(5, 4096, seed)
	ea, eb := exact.New(), exact.New()
	g, _ := zipf.NewGenerator(2000, 1.1, 7, true)
	for i := 0; i < 100000; i++ {
		it := g.Next()
		a.Update(it, 1)
		ea.Update(it, 1)
	}
	g2, _ := zipf.NewGenerator(2000, 1.1, 7, true) // same distribution, same scramble
	for i := 0; i < 50000; i++ {
		it := g2.Next()
		b.Update(it, 1)
		eb.Update(it, 1)
	}
	// Exact join size.
	var truth int64
	for _, ic := range ea.TopK(ea.Distinct()) {
		truth += ic.Count * eb.Estimate(ic.Item)
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if got < truth {
		t.Errorf("join estimate %d underestimates true %d", got, truth)
	}
	// ε·Na·Nb with ε = e/4096.
	eps := 2.72 / 4096
	slack := int64(eps * 1e5 * 5e4)
	if got > truth+slack {
		t.Errorf("join estimate %d exceeds true %d + slack %d", got, truth, slack)
	}
}

func TestInnerProductRejectsMismatch(t *testing.T) {
	a := NewCountMin(4, 128, 1)
	b := NewCountMin(4, 128, 2)
	if _, err := a.InnerProduct(b); err == nil {
		t.Error("seed mismatch accepted")
	}
	c := NewCountMinConservative(4, 128, 1)
	if _, err := c.InnerProduct(c); err == nil {
		t.Error("conservative sketch accepted")
	}
}

func TestF2Estimates(t *testing.T) {
	cm := NewCountMin(5, 8192, 3)
	cs := NewCountSketch(7, 8192, 3)
	truth := exact.New()
	g, _ := zipf.NewGenerator(1000, 1.2, 11, true)
	for i := 0; i < 100000; i++ {
		it := g.Next()
		cm.Update(it, 1)
		cs.Update(it, 1)
		truth.Update(it, 1)
	}
	f2 := truth.SecondMoment()
	cmEst := float64(cm.F2Estimate())
	csEst := float64(cs.F2Estimate())
	if cmEst < f2 {
		t.Errorf("CM F2 estimate %v underestimates true %v", cmEst, f2)
	}
	if cmEst > 1.2*f2 {
		t.Errorf("CM F2 estimate %v more than 20%% above true %v", cmEst, f2)
	}
	if csEst < 0.9*f2 || csEst > 1.1*f2 {
		t.Errorf("CS F2 estimate %v not within 10%% of true %v", csEst, f2)
	}
}

func TestQuantileQuery(t *testing.T) {
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 2048, Bits: 4, UniverseBits: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform values over [0, 10000): quantiles are predictable.
	rng := prng.New(21)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Update(core.Item(rng.Uint64n(10000)), 1)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v, err := h.QuantileQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want := q * 10000
		// CM overestimation biases ranks upward, so the returned value
		// can sit below the true quantile; allow a generous band.
		if float64(v) < want-1500 || float64(v) > want+1500 {
			t.Errorf("q=%.2f: got %d, want ≈ %.0f", q, v, want)
		}
	}
	if _, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 32, Bits: 8, UniverseBits: 16, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileQueryEdges(t *testing.T) {
	h, _ := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 64, Bits: 8, UniverseBits: 16, Seed: 2})
	if _, err := h.QuantileQuery(0.5); err == nil {
		t.Error("empty-sketch quantile accepted")
	}
	h.Update(42, 10)
	v, err := h.QuantileQuery(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v > 42 {
		t.Errorf("single-item median = %d, want ≤ 42", v)
	}
	// Clamped q values must not error.
	if _, err := h.QuantileQuery(-1); err != nil {
		t.Error(err)
	}
	if _, err := h.QuantileQuery(2); err != nil {
		t.Error(err)
	}
}
