package sketches

import (
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/prng"
)

func sketchBatchStream(n int) []core.Item {
	rng := prng.New(0x5EEC)
	out := make([]core.Item, n)
	for i := range out {
		out[i] = core.Item(rng.Uint64n(1 << 18))
	}
	return out
}

// TestCountMinBatchExact: the sketch is linear, so the row-major batch
// path must land every counter exactly where the scalar path does —
// verified through point estimates over the whole touched universe
// region plus N.
func TestCountMinBatchExact(t *testing.T) {
	stream := sketchBatchStream(20_000)
	scalar := NewCountMin(4, 512, 99)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	batched := NewCountMin(4, 512, 99)
	core.UpdateBatches(batched, stream, 777)
	if scalar.N() != batched.N() {
		t.Fatalf("N %d vs %d", batched.N(), scalar.N())
	}
	for probe := core.Item(0); probe < 4096; probe++ {
		if s, b := scalar.Estimate(probe), batched.Estimate(probe); s != b {
			t.Fatalf("Estimate(%d): batched %d, scalar %d", probe, b, s)
		}
	}
}

// TestCountMinConservativeBatchExact: conservative update is not linear,
// so its batch path retains per-arrival processing; results must match
// the scalar conservative run bit for bit.
func TestCountMinConservativeBatchExact(t *testing.T) {
	stream := sketchBatchStream(20_000)
	scalar := NewCountMinConservative(4, 512, 99)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	batched := NewCountMinConservative(4, 512, 99)
	core.UpdateBatches(batched, stream, 777)
	if scalar.N() != batched.N() {
		t.Fatalf("N %d vs %d", batched.N(), scalar.N())
	}
	for probe := core.Item(0); probe < 4096; probe++ {
		if s, b := scalar.Estimate(probe), batched.Estimate(probe); s != b {
			t.Fatalf("Estimate(%d): batched %d, scalar %d", probe, b, s)
		}
	}
}

// TestCountSketchBatchExact mirrors the Count-Min check for the signed
// estimator.
func TestCountSketchBatchExact(t *testing.T) {
	stream := sketchBatchStream(20_000)
	scalar := NewCountSketch(5, 512, 99)
	for _, it := range stream {
		scalar.Update(it, 1)
	}
	batched := NewCountSketch(5, 512, 99)
	core.UpdateBatches(batched, stream, 777)
	if scalar.N() != batched.N() {
		t.Fatalf("N %d vs %d", batched.N(), scalar.N())
	}
	for probe := core.Item(0); probe < 4096; probe++ {
		if s, b := scalar.Estimate(probe), batched.Estimate(probe); s != b {
			t.Fatalf("Estimate(%d): batched %d, scalar %d", probe, b, s)
		}
	}
}

// TestBatchedSketchStillMerges: batch ingest must leave the sketch as
// mergeable/subtractable as scalar ingest does (same rows, same n, no
// mode flags flipped).
func TestBatchedSketchStillMerges(t *testing.T) {
	stream := sketchBatchStream(10_000)
	a := NewCountMin(4, 256, 5)
	b := NewCountMin(4, 256, 5)
	core.UpdateBatches(a, stream[:5_000], 512)
	core.UpdateBatches(b, stream[5_000:], 512)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	whole := NewCountMin(4, 256, 5)
	core.UpdateBatches(whole, stream, 512)
	for probe := core.Item(0); probe < 1024; probe++ {
		if m, w := a.Estimate(probe), whole.Estimate(probe); m != w {
			t.Fatalf("Estimate(%d): merged %d, whole-stream %d", probe, m, w)
		}
	}
}
