package sketches

import (
	"bytes"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/zipf"
)

func TestHierarchyBatchMatchesScalar(t *testing.T) {
	for name, mk := range map[string]func(HierarchyConfig) (*Hierarchical, error){
		"CMH": NewCountMinHierarchy,
		"CSH": NewCountSketchHierarchy,
	} {
		g, err := zipf.NewGenerator(4096, 1.1, 17, true)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]core.Item, 30000)
		for i := range items {
			items[i] = g.Next()
		}
		cfg := HierarchyConfig{Depth: 4, Width: 512, Bits: 8, UniverseBits: 32, Seed: 9}
		scalar, err := mk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := mk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			scalar.Update(it, 1)
		}
		// Uneven batch lengths, including a length-0 call.
		rest := items
		for _, cut := range []int{1, 0, 4095, 7, 10000} {
			if cut > len(rest) {
				cut = len(rest)
			}
			batched.UpdateBatch(rest[:cut])
			rest = rest[cut:]
		}
		batched.UpdateBatch(rest)
		a, err := scalar.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b, err := batched.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: batched ingest is not bit-identical to scalar ingest", name)
		}
	}
}

// buildPrefixTruth aggregates an exact per-level count table for a
// 32-bit universe with 8-bit branching.
func buildPrefixTruth(items []core.Item, levels int, bits uint) []map[uint64]int64 {
	truth := make([]map[uint64]int64, levels)
	for j := range truth {
		truth[j] = map[uint64]int64{}
	}
	for _, it := range items {
		for j := 0; j < levels; j++ {
			truth[j][uint64(it)>>(uint(j)*bits)]++
		}
	}
	return truth
}

func TestCMHHeavyPrefixesPerfectRecall(t *testing.T) {
	const n = 60000
	g, err := zipf.NewGenerator(1<<16, 1.2, 23, true)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]core.Item, n)
	for i := range items {
		// The generator hashes items over 64 bits; fold into the 32-bit
		// universe the hierarchy is configured for so the exact truth
		// table sees the same keys the sketch does.
		items[i] = g.Next() & 0xffffffff
	}
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 2048, Bits: 8, UniverseBits: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h.UpdateBatch(items)
	threshold := int64(0.002 * n)
	report := h.HeavyPrefixes(threshold)
	got := make([]map[core.Item]int64, h.Levels())
	for j := range got {
		got[j] = map[core.Item]int64{}
	}
	lastLevel := h.Levels() - 1
	for i, pc := range report {
		if pc.Level < 0 || pc.Level >= h.Levels() {
			t.Fatalf("report %d: level %d out of range", i, pc.Level)
		}
		if pc.Level > lastLevel {
			t.Fatal("report not ordered coarsest level first")
		}
		lastLevel = pc.Level
		got[pc.Level][pc.Prefix] = pc.Count
		if pc.Count < threshold {
			t.Errorf("reported prefix %x at level %d below threshold: %d", pc.Prefix, pc.Level, pc.Count)
		}
		if pc.HHH != (pc.Residual >= threshold) {
			t.Errorf("prefix %x level %d: HHH flag inconsistent with residual %d", pc.Prefix, pc.Level, pc.Residual)
		}
	}
	truth := buildPrefixTruth(items, h.Levels(), h.Bits())
	for j := 0; j < h.Levels(); j++ {
		for p, c := range truth[j] {
			if c >= threshold {
				est, ok := got[j][core.Item(p)]
				if !ok {
					t.Errorf("level %d: missed heavy prefix %x (count %d)", j, p, c)
					continue
				}
				// Count-Min hierarchies never underestimate.
				if est < c {
					t.Errorf("level %d prefix %x: estimate %d below true count %d", j, p, est, c)
				}
			}
		}
	}
}

func TestHeavyPrefixesResidualDiscount(t *testing.T) {
	// One /8-style prefix entirely explained by a single heavy child:
	// its residual must collapse to ~0, while a prefix with spread
	// children beneath threshold keeps its full count as residual.
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 4, Width: 4096, Bits: 8, UniverseBits: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const heavy = 5000
	// Item 0x0101: parent prefix 0x01 fully explained by this child.
	h.Update(core.Item(0x0101), heavy)
	// Prefix 0x02: 256 children with ~40 each — parent heavy, no heavy child.
	for c := uint64(0); c < 256; c++ {
		h.Update(core.Item(0x0200|c), 40)
	}
	threshold := int64(1000)
	byKey := map[[2]uint64]PrefixCount{}
	for _, pc := range h.HeavyPrefixes(threshold) {
		byKey[[2]uint64{uint64(pc.Level), uint64(pc.Prefix)}] = pc
	}
	parent1, ok := byKey[[2]uint64{1, 0x01}]
	if !ok {
		t.Fatal("prefix 0x01 not reported at level 1")
	}
	if parent1.HHH {
		t.Errorf("prefix 0x01 flagged HHH with residual %d; its child explains it", parent1.Residual)
	}
	parent2, ok := byKey[[2]uint64{1, 0x02}]
	if !ok {
		t.Fatal("prefix 0x02 not reported at level 1")
	}
	if !parent2.HHH {
		t.Errorf("prefix 0x02 not flagged HHH (residual %d); no reported child explains it", parent2.Residual)
	}
	child, ok := byKey[[2]uint64{0, 0x0101}]
	if !ok {
		t.Fatal("item 0x0101 not reported at level 0")
	}
	if !child.HHH || child.Residual != child.Count {
		t.Errorf("level-0 item residual %d != count %d", child.Residual, child.Count)
	}
}
