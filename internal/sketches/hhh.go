package sketches

import (
	"sort"

	"streamfreq/internal/core"
)

// Hierarchical heavy hitters (HHH) — the query the dyadic sketch stack
// exists for. A prefix at level j aggregates the 2^(j·bits) items beneath
// it; the HHH report surfaces, at every granularity, the prefixes whose
// aggregate weight reaches the threshold, and discounts each prefix by
// the reported prefixes one level finer so callers can tell "heavy
// because one child is heavy" from "heavy in its own right" (the
// classic HHH discount rule of Cormode et al.).

// PrefixCount is one reported prefix in an HHH answer.
type PrefixCount struct {
	// Prefix is the prefix value: the item's top bits, shifted right by
	// Level·Bits. At Level 0 it is a full-resolution item.
	Prefix core.Item
	// Level is the hierarchy level: 0 is full resolution, Levels()-1 the
	// coarsest.
	Level int
	// Count is the estimated total weight of items under the prefix.
	Count int64
	// Residual is Count minus the Counts of this prefix's reported
	// children one level finer — the weight not explained by heavy
	// children.
	Residual int64
	// HHH reports whether Residual itself reaches the query threshold:
	// the prefix is heavy beyond what its heavy children account for.
	HHH bool
}

// HeavyPrefixes returns every prefix, at every level, whose estimated
// weight reaches threshold — coarsest level first, descending count
// within a level — with residuals discounted by the reported children.
//
// The descent visits only children of above-threshold prefixes, the same
// frontier walk as Query: a prefix's true weight is at least any child's,
// so over a Count-Min hierarchy (one-sided overestimates) recall is
// perfect at every level; a Count-Sketch hierarchy can miss prefixes
// whose estimates dip below threshold, the same recall gap as Query.
func (h *Hierarchical) HeavyPrefixes(threshold int64) []PrefixCount {
	if threshold <= 0 {
		// A non-positive threshold would force full-universe enumeration.
		threshold = 1
	}
	top := len(h.levels) - 1
	topWidth := h.universeBits - uint(top)*h.bits // ≤ h.bits by construction
	perLevel := make([][]PrefixCount, len(h.levels))
	frontier := make([]uint64, 0, 1<<topWidth)
	for p := uint64(0); p < 1<<topWidth; p++ {
		if c := h.levels[top].Estimate(core.Item(p)); c >= threshold {
			frontier = append(frontier, p)
			perLevel[top] = append(perLevel[top], PrefixCount{Prefix: core.Item(p), Level: top, Count: c})
		}
	}
	for j := top - 1; j >= 0; j-- {
		next := frontier[:0:0]
		for _, p := range frontier {
			base := p << h.bits
			for c := uint64(0); c < 1<<h.bits; c++ {
				child := base | c
				if est := h.levels[j].Estimate(core.Item(child)); est >= threshold {
					next = append(next, child)
					perLevel[j] = append(perLevel[j], PrefixCount{Prefix: core.Item(child), Level: j, Count: est})
				}
			}
			if len(next) > h.maxCandidates {
				break
			}
		}
		if len(next) > h.maxCandidates {
			next = next[:h.maxCandidates]
			perLevel[j] = perLevel[j][:h.maxCandidates]
		}
		frontier = next
	}
	// Discount: each prefix's residual subtracts its reported children
	// one level finer.
	for j := 1; j <= top; j++ {
		childSum := make(map[core.Item]int64, len(perLevel[j-1]))
		for _, c := range perLevel[j-1] {
			childSum[core.Item(uint64(c.Prefix)>>h.bits)] += c.Count
		}
		for i := range perLevel[j] {
			perLevel[j][i].Residual = perLevel[j][i].Count - childSum[perLevel[j][i].Prefix]
		}
	}
	for i := range perLevel[0] {
		perLevel[0][i].Residual = perLevel[0][i].Count
	}
	var out []PrefixCount
	for j := top; j >= 0; j-- {
		lvl := perLevel[j]
		sortPrefixesByCountDesc(lvl)
		for i := range lvl {
			lvl[i].HHH = lvl[i].Residual >= threshold
		}
		out = append(out, lvl...)
	}
	return out
}

// sortPrefixesByCountDesc orders a level's report by descending count,
// ties by ascending prefix, matching core.SortByCountDesc's determinism.
func sortPrefixesByCountDesc(s []PrefixCount) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Count != s[j].Count {
			return s[i].Count > s[j].Count
		}
		return s[i].Prefix < s[j].Prefix
	})
}

// Bits returns log2 of the hierarchy's branching factor — the prefix
// granularity step between adjacent levels.
func (h *Hierarchical) Bits() uint { return h.bits }

// UniverseBits returns the number of significant item bits.
func (h *Hierarchical) UniverseBits() uint { return h.universeBits }
