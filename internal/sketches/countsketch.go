package sketches

import (
	"math"

	"streamfreq/internal/core"
	"streamfreq/internal/hash"
)

// CountSketch is the COUNT SKETCH of Charikar, Chen & Farach-Colton: a
// d×w array of counters where each row pairs a bucket hash h_i with a
// pairwise-independent sign hash s_i ∈ {±1}. Row i's estimate of item q
// is rows[i][h_i(q)]·s_i(q); the sketch estimate is the median across
// rows.
//
// Each row estimate is unbiased with variance bounded by F2/w (F2 the
// second frequency moment of the colliding items), so with
// w = O(F2^res(k)/(εn_k)²) and d = O(log(n/δ)) the median is within
// ±εn_k of truth for every item simultaneously, with probability 1−δ —
// Lemmas 1–4 of the paper. Errors are two-sided, unlike Count-Min.
type CountSketch struct {
	rows   [][]int64
	family *hash.Family
	width  int
	depth  int
	n      int64
}

// NewCountSketch returns a d(depth) × w(width) Count Sketch seeded
// deterministically by seed. Sketches built with equal (depth, width,
// seed) are mergeable and subtractable.
func NewCountSketch(depth, width int, seed uint64) *CountSketch {
	if depth <= 0 || width <= 0 {
		panic("sketches: CountSketch requires positive depth and width")
	}
	rows := make([][]int64, depth)
	backing := make([]int64, depth*width)
	for i := range rows {
		rows[i], backing = backing[:width:width], backing[width:]
	}
	return &CountSketch{
		rows:   rows,
		family: hash.NewFamily(depth, width, 2, seed),
		width:  width,
		depth:  depth,
	}
}

// CSParamsForEpsilon returns (depth, width) achieving additive error
// ε·√F2 with failure probability δ per the Count-Sketch analysis:
// w = ⌈3/ε²⌉ (variance term), d = ⌈ln(1/δ)·4⌉ rows for median
// concentration.
func CSParamsForEpsilon(epsilon, delta float64) (depth, width int) {
	depth = int(math.Ceil(4 * math.Log(1/delta)))
	if depth < 1 {
		depth = 1
	}
	// Odd depth gives an exact median.
	if depth%2 == 0 {
		depth++
	}
	width = int(math.Ceil(3 / (epsilon * epsilon)))
	if width < 1 {
		width = 1
	}
	return depth, width
}

// Name implements core.Summary.
func (c *CountSketch) Name() string { return "CS" }

// Depth returns d.
func (c *CountSketch) Depth() int { return c.depth }

// Width returns the number of counters per row.
func (c *CountSketch) Width() int { return c.width }

// N implements core.Summary.
func (c *CountSketch) N() int64 { return c.n }

// Update adds count (possibly negative) occurrences of x — the ADD
// operation of the paper, generalized to weighted arrivals.
func (c *CountSketch) Update(x core.Item, count int64) {
	c.n += count
	xv := uint64(x)
	for i := range c.rows {
		c.rows[i][c.family.Buckets[i].Hash(xv)] += count * c.family.Signs[i].Hash(xv)
	}
}

// UpdateBatch implements core.BatchUpdater for unit-count arrivals,
// processing row by row with the row slice, bucket hash, and sign hash
// hoisted out of the item loop (see CountMin.UpdateBatch for why the
// row-major order is also the cache-friendly one). Linearity makes the
// reordering exact.
func (c *CountSketch) UpdateBatch(items []core.Item) {
	c.n += int64(len(items))
	for i := range c.rows {
		row := c.rows[i]
		h := c.family.Buckets[i]
		sg := c.family.Signs[i]
		for _, x := range items {
			xv := uint64(x)
			row[h.Hash(xv)] += sg.Hash(xv)
		}
	}
}

// Estimate implements the ESTIMATE operation: the median over rows of the
// signed counter values.
func (c *CountSketch) Estimate(x core.Item) int64 {
	xv := uint64(x)
	vals := make([]int64, c.depth)
	for i := range c.rows {
		vals[i] = c.rows[i][c.family.Buckets[i].Hash(xv)] * c.family.Signs[i].Hash(xv)
	}
	return median(vals)
}

// Query is not supported by a flat Count Sketch (it cannot enumerate
// items); wrap it in a tracker or hierarchy. Returns nil.
func (c *CountSketch) Query(threshold int64) []core.ItemCount { return nil }

// Clone returns an independent deep copy of the counter array; the hash
// family (buckets and signs) is shared, being immutable after
// construction.
func (c *CountSketch) Clone() *CountSketch {
	nc := &CountSketch{family: c.family, width: c.width, depth: c.depth, n: c.n}
	backing := make([]int64, c.depth*c.width)
	nc.rows = make([][]int64, c.depth)
	for i := range nc.rows {
		nc.rows[i], backing = backing[:c.width:c.width], backing[c.width:]
		copy(nc.rows[i], c.rows[i])
	}
	return nc
}

// Snapshot implements core.Snapshotter.
func (c *CountSketch) Snapshot() core.Summary { return c.Clone() }

// Bytes implements core.Summary.
func (c *CountSketch) Bytes() int {
	return 8*c.depth*c.width + 32*c.depth // counters + bucket and sign hash seeds
}

// Merge adds another Count Sketch built with identical parameters; the
// result sketches the concatenated streams (sketch additivity, §1 of the
// paper).
func (c *CountSketch) Merge(other core.Summary) error {
	o, ok := other.(*CountSketch)
	if !ok {
		return core.Incompatible("CountSketch: cannot merge %T", other)
	}
	if err := c.family.Compatible(o.family); err != nil {
		return core.Incompatible("CountSketch: %v", err)
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += o.rows[i][j]
		}
	}
	c.n += o.n
	return nil
}

// Subtract removes another sketch's stream, leaving a sketch of the
// frequency *difference* vector — the primitive behind the paper's §4.2
// max-change algorithm.
func (c *CountSketch) Subtract(other core.Summary) error {
	o, ok := other.(*CountSketch)
	if !ok {
		return core.Incompatible("CountSketch: cannot subtract %T", other)
	}
	if err := c.family.Compatible(o.family); err != nil {
		return core.Incompatible("CountSketch: %v", err)
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] -= o.rows[i][j]
		}
	}
	c.n -= o.n
	return nil
}
