package sketches

import (
	"fmt"
	"math"

	"streamfreq/internal/core"
)

// Range queries and inner products — the two classic Count-Min
// applications beyond point queries (Cormode & Muthukrishnan), included
// because the paper positions these sketches as general database
// summaries, not only heavy-hitter finders.

// RangeEstimate returns an estimate of the total count of items in
// [lo, hi] (inclusive) using the dyadic decomposition already maintained
// for heavy-hitter queries: any range over a b-ary universe decomposes
// into O(b·log_b U) level nodes, each answered by that level's sketch.
//
// For Count-Min hierarchies the estimate never underestimates (each node
// estimate is one-sided) and the expected overestimate is O(ε·N·log U).
func (h *Hierarchical) RangeEstimate(lo, hi uint64) (int64, error) {
	if lo > hi {
		return 0, fmt.Errorf("sketches: empty range [%d, %d]", lo, hi)
	}
	if h.universeBits < 64 {
		mask := uint64(1)<<h.universeBits - 1
		if hi > mask {
			hi = mask
		}
		if lo > mask {
			return 0, nil
		}
	}
	var total int64
	// Greedy dyadic cover: walk from lo upward, always consuming the
	// largest aligned block that fits in the remaining range.
	for cur := lo; cur <= hi; {
		// Largest level whose block at cur is aligned and fits.
		level := 0
		for level+1 < len(h.levels) {
			shift := uint(level+1) * h.bits
			blockLen := uint64(1) << shift
			if cur&(blockLen-1) != 0 { // not aligned at the next level
				break
			}
			if blockLen-1 > hi-cur { // next level block would overshoot
				break
			}
			level++
		}
		shift := uint(level) * h.bits
		total += h.levels[level].Estimate(core.Item(cur >> shift))
		step := uint64(1) << shift
		if hi-cur < step { // avoid wrap at the top of the universe
			break
		}
		cur += step
	}
	return total, nil
}

// QuantileQuery returns an item value v such that the estimated number
// of stream items ≤ v is at least q·N — the approximate q-quantile of the
// *item values* (meaningful for ordered universes such as timestamps,
// ports, or prices). It binary-searches the universe using prefix
// RangeEstimate sums, the standard dyadic quantile construction over a
// Count-Min hierarchy.
func (h *Hierarchical) QuantileQuery(q float64) (uint64, error) {
	if h.n <= 0 {
		return 0, fmt.Errorf("sketches: quantile of an empty sketch")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	var maxItem uint64 = math.MaxUint64
	if h.universeBits < 64 {
		maxItem = 1<<h.universeBits - 1
	}
	lo, hi := uint64(0), maxItem
	for lo < hi {
		mid := lo + (hi-lo)/2
		rank, err := h.RangeEstimate(0, mid)
		if err != nil {
			return 0, err
		}
		if rank >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// InnerProduct estimates the inner product ⟨a, b⟩ = Σ_x a(x)·b(x) of the
// frequency vectors of two streams sketched with identical parameters —
// the classic equi-join size estimator. The estimate is the minimum over
// rows of the row-wise dot products; for insert-only streams it never
// underestimates, and overestimates by at most ε·N_a·N_b with probability
// 1−δ.
func (c *CountMin) InnerProduct(o *CountMin) (int64, error) {
	if err := c.family.Compatible(o.family); err != nil {
		return 0, err
	}
	if c.conservative || o.conservative {
		return 0, fmt.Errorf("sketches: inner products require linear (non-conservative) sketches")
	}
	est := int64(math.MaxInt64)
	for i := range c.rows {
		var dot int64
		for j := range c.rows[i] {
			dot += c.rows[i][j] * o.rows[i][j]
		}
		if dot < est {
			est = dot
		}
	}
	return est, nil
}

// F2Estimate estimates the second frequency moment F2 = Σ_x f(x)² of the
// sketched stream, via the self inner product. (For Count Sketch the
// analogous row-sum-of-squares median is the AMS estimator.)
func (c *CountMin) F2Estimate() int64 {
	v, err := c.InnerProduct(c)
	if err != nil {
		// Self inner product cannot be incompatible; conservative
		// sketches are rejected by construction before this point.
		panic(err)
	}
	return v
}

// F2Estimate returns the AMS/Count-Sketch estimate of the second moment:
// the median over rows of the row's sum of squared counters. Unbiased
// with relative error O(1/√width).
func (c *CountSketch) F2Estimate() int64 {
	vals := make([]int64, c.depth)
	for i := range c.rows {
		var s int64
		for _, v := range c.rows[i] {
			s += v * v
		}
		vals[i] = s
	}
	return median(vals)
}
