package cluster

import (
	"context"
	"net/http"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/serve"
)

// The coordinator's HTTP surface mirrors a node's, so clients (and
// higher-tier coordinators) cannot tell a freqmerge from a freqd:
//
//	GET  /topk      identical to a node's (shared serve.QueryHandlers)
//	GET  /estimate  identical to a node's
//	GET  /summary   the merged summary's Encode blob — coordinators stack
//	GET  /stats     a node's shape, plus a "cluster" section with
//	                per-node freshness, epochs, restarts, and errors
//	POST /refresh   pull every node now (a node's /refresh re-snapshots;
//	                the coordinator's re-pulls — same "make reads fresh
//	                and deterministic" contract)
//	POST /ingest    rejected with a pointer to the nodes: the coordinator
//	                aggregates summaries, it does not own a stream

// Handler returns the coordinator's HTTP API mux — the same /v1
// surface (with legacy aliases) a node serves, so clients cannot tell
// a freqmerge from a freqd.
func (c *Coordinator) Handler() http.Handler { return c.API().Handler() }

// API returns the coordinator's assembled route set — exposed so the
// docs test can diff the README API-reference table against the live
// mux, exactly as it does for a node.
func (c *Coordinator) API() *serve.API {
	q := &serve.QueryHandlers{View: c.ServingView, Counters: c.counters}
	api := serve.NewAPI(c.obs)
	api.Route("GET", "/topk", q.TopK, "/topk")
	api.Route("GET", "/estimate", q.Estimate, "/estimate")
	// The rich query surface dispatches on the merged summary's
	// capabilities: a cluster of CMH nodes answers /v1/hhh here because
	// the merged view is itself a Hierarchical, a GK cluster answers
	// /v1/quantile, and anything else gets the 404 envelope.
	api.Route("GET", "/hhh", q.HHH)
	api.Route("GET", "/range", q.Range)
	api.Route("GET", "/quantile", q.Quantile)
	api.Route("GET", "/summary", c.handleSummary, "/summary")
	api.Route("GET", "/stats", c.handleStats, "/stats")
	api.Route("POST", "/refresh", c.handleRefresh, "/refresh")
	api.Route("POST", "/ingest", c.handleIngest, "/ingest")
	if c.tenanted {
		api.Route("GET", "/t/{ns}/topk", c.handleTenantTopK)
		api.Route("GET", "/t/{ns}/estimate", c.handleTenantEstimate)
		api.Route("GET", "/tenants", c.handleTenants)
	}
	return api
}

// handleSummary re-exports the merged state in the node wire format, so
// a coordinator is itself a valid pull target: clusters fan in
// hierarchically with no new protocol. 404 until the first good pull —
// there is no algorithm to encode yet.
func (c *Coordinator) handleSummary(w http.ResponseWriter, r *http.Request) {
	v := c.merged.Load()
	if v == nil || v.view == nil {
		serve.HTTPError(w, http.StatusNotFound, "no merged summary to export (no successful pull, or every node is past -max-stale)")
		return
	}
	sum, ok := v.view.(core.Summary)
	if !ok {
		// A partitioned view is deliberately not one summary: collapsing
		// it to a single blob would trade its per-partition bounds for
		// merge noise. Higher tiers should pull the shards themselves.
		serve.HTTPError(w, http.StatusNotImplemented,
			"a partitioned view has no single summary blob; pull the shard replicas directly")
		return
	}
	c.mu.Lock()
	algo := c.algo
	c.mu.Unlock()
	c.counters.Add("summary.pulls", 1)
	serve.WriteSummary(w, algo, c.epoch, sum)
}

// handleStats reports the node-shaped vitals plus the cluster section.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	nodes := make([]map[string]any, len(st.Nodes))
	for i, ns := range st.Nodes {
		nodes[i] = map[string]any{
			"url":          ns.URL,
			"shard":        ns.Shard,
			"picked":       ns.Picked,
			"algo":         ns.Algo,
			"n":            ns.N,
			"epoch":        ns.Epoch,
			"pulls":        ns.Pulls,
			"failures":     ns.Failures,
			"restarts":     ns.Restarts,
			"has_data":     ns.HasData,
			"stale":        ns.Stale,
			"dropped":      ns.Dropped,
			"last_pull_ms": ns.Age.Milliseconds(),
			"error":        ns.LastErr,
		}
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"algo":      st.Algo,
		"summary":   "merged",
		"n":         st.MergedN,
		"epoch":     st.Epoch,
		"uptime_ms": st.Uptime.Milliseconds(),
		"counters":  c.counters.Snapshot(),
		"cluster": map[string]any{
			"nodes":          nodes,
			"merges":         st.Merges,
			"merge_age_ms":   st.MergeAge.Milliseconds(),
			"merge_error":    st.MergeErr,
			"fresh_nodes":    st.Fresh,
			"have_nodes":     st.Have,
			"dropped_nodes":  st.Dropped,
			"max_stale_ms":   st.MaxStale.Milliseconds(),
			"partitioned":    st.Partitioned,
			"shards":         st.Shards,
			"missing_shards": st.Missing,
		},
	})
}

// handleRefresh pulls every node synchronously, so operators and tests
// get deterministic freshness the way a node's /refresh re-snapshots.
func (c *Coordinator) handleRefresh(w http.ResponseWriter, r *http.Request) {
	c.PullAll(r.Context())
	c.counters.Add("refresh.forced", 1)
	serve.WriteJSON(w, http.StatusOK, map[string]int64{"n": c.N()})
}

// handleIngest names the contract instead of silently 404ing: streams
// are ingested at the nodes, summaries merged here.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	serve.HTTPError(w, http.StatusNotImplemented,
		"the coordinator does not ingest; POST /ingest to a node, the merge pulls it in")
}

// ListenAndServe serves the coordinator API on addr while running the
// pull loop, until stop is closed (or a listener error); then the pull
// loop is cancelled and in-flight requests drain. The freqmerge command
// is flags and signals around this.
func (c *Coordinator) ListenAndServe(addr string, stop <-chan struct{}) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	srv := &http.Server{Addr: addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		return srv.Shutdown(sctx)
	}
}

// compile-time: the coordinator is a ReadView like any node snapshot.
var _ core.ReadView = (*Coordinator)(nil)
