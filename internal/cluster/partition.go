package cluster

import (
	"sort"

	"streamfreq/internal/core"
	"streamfreq/internal/router"
)

// Partition-exact serving. When the coordinator knows the write tier's
// shard map (Options.ShardMap), the per-shard summaries are exact
// partitions of the stream: every arrival of an item landed on exactly
// one shard, so the owning shard's summary answers point queries with
// the error bound of its own substream length n_p — tighter than the
// bound a single merged summary of the whole stream could offer, and
// strictly tighter than actually merging, which *adds* cross-summary
// noise (Space-Saving's Merge inflates absent items by the other side's
// minimum bound; sketch merges add the operands' collision noise).
// A PartitionedView therefore never merges: it routes Estimate to the
// owning shard, unions Query reports at the same absolute threshold
// (an item over the threshold globally is over it on its owning shard,
// since all its mass lives there), and sums N.
//
// Replica sets make one further rule necessary: the view holds exactly
// one replica's summary per shard — replicas of a shard saw the *same*
// substream, so summing or merging them would double-count. The
// coordinator picks the replica with the highest acknowledged position
// (the most caught-up survivor), which under the router's failover
// guarantee holds every acknowledged item of the shard.

// PartitionedView is one immutable published epoch of partition-exact
// serving: one chosen replica summary per shard, indexed by the ring's
// shard order. A nil entry is a shard with no usable contribution
// (nothing pulled yet, or everything past -max-stale): its slice of the
// key space answers zero, surfaced as a missing shard in Stats.
type PartitionedView struct {
	ring   *router.Ring
	shards []core.Summary
	n      int64
}

// N reports the union stream length: the sum of the chosen replicas'
// positions (disjoint substreams, so addition is exact).
func (v *PartitionedView) N() int64 { return v.n }

// Estimate routes the point query to the shard owning x.
func (v *PartitionedView) Estimate(x core.Item) int64 {
	if s := v.shards[v.ring.Shard(x)]; s != nil {
		return s.Estimate(x)
	}
	return 0
}

// Query unions the per-shard reports at the same absolute threshold,
// ordered like a single summary's report (count descending, item
// ascending on ties). No deduplication is needed: the partitions are
// disjoint, so an item appears in at most one shard's report.
func (v *PartitionedView) Query(threshold int64) []core.ItemCount {
	var out []core.ItemCount
	for _, s := range v.shards {
		if s != nil {
			out = append(out, s.Query(threshold)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// compile-time: a partitioned epoch serves like any merged summary.
var _ core.ReadView = (*PartitionedView)(nil)
