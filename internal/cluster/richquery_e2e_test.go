package cluster_test

// The PR-9 acceptance scenario end to end, on loopback HTTP: the rich
// query routes (/v1/hhh, /v1/range, /v1/quantile) served by freqmerge
// over two durable freqd nodes holding disjoint partitions of one
// stream, with a node killed (store abandoned, no Close) and recovered
// mid-run. Two pins per algorithm family:
//
//   - recovery bit-identity at the wire: the /v1/summary blob a node
//     ships right before the kill equals the blob its recovered life
//     ships, byte for byte — the crash wall's Encode contract observed
//     through the public API, for the new HI01 and GK01 formats;
//   - cross-node answer quality: the coordinator's /v1/hhh has recall 1
//     at φ·N_total against internal/exact per-level prefix truth over
//     the union stream (Count-Min hierarchies never underestimate), and
//     its /v1/quantile lands within the merged GK rank guarantee of the
//     exact union quantile.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/zipf"
)

// durableAlgoNode is durableNode generalized over the summary factory:
// one freqd life (recover, wire the WAL, serve always-fresh snapshots)
// for any wire-format citizen, roster or not.
func durableAlgoNode(t *testing.T, dir, algo string, mk func() core.Summary, epoch uint64) *serve.Server {
	t.Helper()
	target := core.NewConcurrent(mk())
	store, err := persist.Open(persist.Options{
		Dir:    dir,
		Algo:   algo,
		Fsync:  persist.FsyncAlways,
		Decode: streamfreq.Decode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Recover(target); err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	target.PersistTo(store)
	target.ServeSnapshots(0)
	return serve.NewServer(serve.Options{Target: target, Algo: algo, Store: store, Epoch: epoch})
}

// summaryBlob pulls the node's /v1/summary Encode blob — the bytes a
// coordinator would merge, and the unit of recovery bit-identity.
func summaryBlob(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s/v1/summary: %s: %s", url, resp.Status, b)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// killRecoverBlobIdentity runs one node through ingest → blob → kill →
// recover → blob and requires the two blobs byte-identical: FsyncAlways
// means every acknowledged /ingest is durable, so the recovered life
// (checkpoint + WAL replay) must stand at exactly the same stream
// position with exactly the same encoded state.
func killRecoverBlobIdentity(t *testing.T, sw *swappable, url, dir, algo string, mk func() core.Summary) {
	t.Helper()
	before := summaryBlob(t, url)
	sw.set(down())
	srv := durableAlgoNode(t, dir, algo, mk, 2000)
	sw.set(srv.Handler())
	after := summaryBlob(t, url)
	if !bytes.Equal(before, after) {
		t.Fatalf("%s: recovered /v1/summary blob differs from pre-kill blob (%d vs %d bytes)",
			algo, len(after), len(before))
	}
}

// hhhResponse mirrors the /v1/hhh JSON envelope.
type hhhResponse struct {
	N            int64 `json:"n"`
	Threshold    int64 `json:"threshold"`
	Bits         uint  `json:"bits"`
	UniverseBits uint  `json:"universe_bits"`
	Prefixes     []struct {
		Prefix   uint64 `json:"prefix"`
		Level    int    `json:"level"`
		Count    int64  `json:"count"`
		Residual int64  `json:"residual"`
		HHH      bool   `json:"hhh"`
	} `json:"prefixes"`
}

func TestClusterHHHKillRecover(t *testing.T) {
	const (
		phi     = 0.002
		streamN = 60_000
	)
	g, err := zipf.NewGenerator(1<<15, 1.1, 0x44A1, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)
	var parts [2][]core.Item
	for i, it := range items {
		parts[i%2] = append(parts[i%2], it)
	}

	// Both nodes run the registry CMH at the same φ and seed — identical
	// geometry, the merge-compatibility requirement.
	mk := func() core.Summary { return streamfreq.MustNew("CMH", phi, 1) }

	dirs := [2]string{t.TempDir(), t.TempDir()}
	var sws [2]*swappable
	var urls []string
	for i := 0; i < 2; i++ {
		srv := durableAlgoNode(t, dirs[i], "CMH", mk, uint64(1000+i))
		sws[i] = &swappable{}
		sws[i].set(srv.Handler())
		ts := httptest.NewServer(sws[i])
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	coord, err := cluster.New(cluster.Options{
		Nodes:        urls,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First half of node 0's partition, a pull (so the coordinator holds
	// the pre-kill epoch), then the kill/recover round with the HI01
	// blob-identity pin, then the rest of the stream.
	half := len(parts[0]) / 2
	ingest(t, urls[0], parts[0][:half])
	coord.PullAll(ctx)
	killRecoverBlobIdentity(t, sws[0], urls[0], dirs[0], "CMH", mk)
	ingest(t, urls[0], parts[0][half:])
	ingest(t, urls[1], parts[1])
	coord.PullAll(ctx)
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// The restart is observable, and no arrival was double-counted or
	// lost across it.
	if got := coord.N(); got != int64(streamN) {
		t.Fatalf("merged N = %d, want exactly %d", got, streamN)
	}
	if st := coord.Stats(); st.Nodes[0].Restarts != 1 {
		t.Fatalf("node 0 restarts = %d, want 1", st.Nodes[0].Restarts)
	}

	// Cross-node HHH through the coordinator's public /v1/hhh, pinned
	// against exact per-level prefix truth over the union stream.
	threshold := int64(phi * float64(streamN))
	var hr hhhResponse
	getJSON(t, cs.URL+fmt.Sprintf("/v1/hhh?phi=%g", phi), &hr)
	if hr.N != int64(streamN) || hr.Threshold != threshold {
		t.Fatalf("/v1/hhh n=%d threshold=%d, want %d/%d", hr.N, hr.Threshold, streamN, threshold)
	}
	if hr.Bits == 0 || hr.UniverseBits%hr.Bits != 0 {
		t.Fatalf("/v1/hhh geometry bits=%d universe_bits=%d", hr.Bits, hr.UniverseBits)
	}

	reported := make(map[int]map[uint64]int64) // level → prefix → count
	for _, pc := range hr.Prefixes {
		if reported[pc.Level] == nil {
			reported[pc.Level] = make(map[uint64]int64)
		}
		reported[pc.Level][pc.Prefix] = pc.Count
	}
	levels := int(hr.UniverseBits / hr.Bits)
	for level := 0; level < levels; level++ {
		truth := make(map[uint64]int64, 1<<12)
		for _, it := range items {
			truth[uint64(it)>>(uint(level)*hr.Bits)]++
		}
		for prefix, tru := range truth {
			if tru < threshold {
				continue
			}
			got, ok := reported[level][prefix]
			if !ok {
				t.Fatalf("level %d: heavy prefix %#x (true %d ≥ %d) missing from /v1/hhh — recall < 1",
					level, prefix, tru, threshold)
			}
			// Count-Min is one-sided: the merged estimate never
			// underestimates the union truth.
			if got < tru {
				t.Fatalf("level %d: prefix %#x reported %d < true %d", level, prefix, got, tru)
			}
		}
	}

	// The same route answers on the nodes directly — freqd and freqmerge
	// serve one query surface.
	var nodeHR hhhResponse
	getJSON(t, urls[0]+fmt.Sprintf("/v1/hhh?phi=%g", phi), &nodeHR)
	if nodeHR.N != int64(len(parts[0])) {
		t.Fatalf("node 0 /v1/hhh n=%d, want its partition's %d", nodeHR.N, len(parts[0]))
	}
}

func TestClusterQuantileKillRecover(t *testing.T) {
	const (
		phi     = 0.02 // ε = φ/2 = 0.01 per node
		streamN = 40_000
	)
	g, err := zipf.NewGenerator(1<<14, 1.1, 0x61AD, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)
	var parts [2][]core.Item
	for i, it := range items {
		parts[i%2] = append(parts[i%2], it)
	}

	// GK is a wire citizen outside the factories roster; both nodes must
	// share ε or the coordinator's GK04 merge refuses.
	mk := func() core.Summary {
		q, err := streamfreq.NewQuantileForPhi(phi)
		if err != nil {
			t.Fatalf("NewQuantileForPhi(%g): %v", phi, err)
		}
		return q
	}

	dirs := [2]string{t.TempDir(), t.TempDir()}
	var sws [2]*swappable
	var urls []string
	for i := 0; i < 2; i++ {
		srv := durableAlgoNode(t, dirs[i], "GK", mk, uint64(1000+i))
		sws[i] = &swappable{}
		sws[i].set(srv.Handler())
		ts := httptest.NewServer(sws[i])
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	coord, err := cluster.New(cluster.Options{
		Nodes:        urls,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// GK01 recovery bit-identity through the public API: the format
	// carries the compression phase, so the recovered life's blob equals
	// the pre-kill blob exactly.
	half := len(parts[0]) / 2
	ingest(t, urls[0], parts[0][:half])
	coord.PullAll(ctx)
	killRecoverBlobIdentity(t, sws[0], urls[0], dirs[0], "GK", mk)
	ingest(t, urls[0], parts[0][half:])
	ingest(t, urls[1], parts[1])
	coord.PullAll(ctx)

	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()
	if got := coord.N(); got != int64(streamN) {
		t.Fatalf("merged N = %d, want exactly %d", got, streamN)
	}
	if st := coord.Stats(); st.Nodes[0].Restarts != 1 {
		t.Fatalf("node 0 restarts = %d, want 1", st.Nodes[0].Restarts)
	}

	// Exact union order statistics for the rank checks.
	sorted := make([]uint64, len(items))
	for i, it := range items {
		sorted[i] = uint64(it)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// rank bounds of a value v: [#items < v, #items ≤ v].
	rankLo := func(v uint64) int { return sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v }) }
	rankHi := func(v uint64) int { return sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }) }

	// Merged rank guarantee: the GK04 merge relaxes the tuple invariant
	// to g+Δ ≤ 2(ε₁+ε₂)N, so a query answer can sit up to 2(ε₁+ε₂)N
	// from the target rank — still far below the gap a wrong merge (max
	// instead of add, double count) would open at these q points.
	eps := phi / 2
	slack := int64(2*(eps+eps)*float64(streamN)) + 2

	for _, q := range []float64{0.1, 0.5, 0.9} {
		var qr struct {
			Q     float64 `json:"q"`
			Value uint64  `json:"value"`
			N     int64   `json:"n"`
		}
		getJSON(t, cs.URL+fmt.Sprintf("/v1/quantile?q=%g", q), &qr)
		if qr.N != int64(streamN) {
			t.Fatalf("/v1/quantile?q=%g n=%d, want %d", q, qr.N, streamN)
		}
		target := int64(q * float64(streamN))
		lo, hi := int64(rankLo(qr.Value)), int64(rankHi(qr.Value))
		if hi < target-slack || lo > target+slack {
			t.Fatalf("/v1/quantile?q=%g = %#x at true rank [%d,%d], want within %d of %d",
				q, qr.Value, lo, hi, slack, target)
		}
	}

	// /v1/range across nodes: count below the universe midpoint against
	// the exact union count, within the same merged-rank slack.
	mid := uint64(1) << 63
	var rr struct {
		Lo       uint64 `json:"lo"`
		Hi       uint64 `json:"hi"`
		Estimate int64  `json:"estimate"`
		N        int64  `json:"n"`
	}
	getJSON(t, cs.URL+fmt.Sprintf("/v1/range?lo=0&hi=%d", mid), &rr)
	exactCount := int64(rankHi(mid))
	if diff := rr.Estimate - exactCount; diff < -slack || diff > slack {
		t.Fatalf("/v1/range[0,2^63] = %d, exact %d (slack %d)", rr.Estimate, exactCount, slack)
	}
}
