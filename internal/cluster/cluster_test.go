package cluster_test

// Coordinator behaviour against real serve.Server nodes on loopback
// HTTP: merge correctness over disjoint partitions, stale serving when
// a node is unreachable, mixed-algorithm rejection, and the empty
// before-first-pull state. The kill/recover epoch semantics get their
// own file (e2e_test.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/testutil"
	"streamfreq/internal/zipf"
)

// swappable lets a test replace the handler behind a fixed URL — the
// loopback stand-in for a node process dying and coming back on the
// same host:port.
type swappable struct {
	h atomic.Pointer[http.Handler]
}

func (s *swappable) set(h http.Handler) { s.h.Store(&h) }

func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// down is the handler of a dead node: every request fails.
func down() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "node is down", http.StatusServiceUnavailable)
	})
}

// node spins up one in-memory freqd (algo at phi, given epoch) behind a
// swappable handler.
func node(t *testing.T, algo string, phi float64, epoch uint64) (*httptest.Server, *swappable, *serve.Server) {
	t.Helper()
	target := core.NewConcurrent(streamfreq.MustNew(algo, phi, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: algo, Epoch: epoch})
	sw := &swappable{}
	sw.set(srv.Handler())
	return httptest.NewServer(sw), sw, srv
}

func ingest(t *testing.T, url string, items []core.Item) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/octet-stream",
		bytes.NewReader(stream.AppendRaw(nil, items)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s/ingest: %s: %s", url, resp.Status, b)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func coordinator(t *testing.T, algo string, urls ...string) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		Nodes:        urls,
		Algo:         algo,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

type clusterStats struct {
	Algo    string `json:"algo"`
	N       int64  `json:"n"`
	Cluster struct {
		Nodes []struct {
			URL      string `json:"url"`
			Algo     string `json:"algo"`
			N        int64  `json:"n"`
			Epoch    uint64 `json:"epoch"`
			Restarts int64  `json:"restarts"`
			HasData  bool   `json:"has_data"`
			Stale    bool   `json:"stale"`
			Dropped  bool   `json:"dropped"`
			Error    string `json:"error"`
		} `json:"nodes"`
		Merges       int64  `json:"merges"`
		MergeError   string `json:"merge_error"`
		FreshNodes   int    `json:"fresh_nodes"`
		HaveNodes    int    `json:"have_nodes"`
		DroppedNodes int    `json:"dropped_nodes"`
	} `json:"cluster"`
}

type topkResponse struct {
	N         int64 `json:"n"`
	Threshold int64 `json:"threshold"`
	Items     []struct {
		Item  uint64 `json:"item"`
		Count int64  `json:"count"`
	} `json:"items"`
}

// TestCoordinatorMergesDisjointPartitions: three nodes each ingest a
// disjoint slice of one Zipf stream; the coordinator's merged state
// answers for the whole stream — N is the exact total (Space-Saving
// merge adds stream lengths) and hot-item estimates never underestimate
// the union count.
func TestCoordinatorMergesDisjointPartitions(t *testing.T) {
	const phi = 0.005
	g, err := zipf.NewGenerator(1<<14, 1.2, 0xBEEF, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(90_000)

	var urls []string
	for i := 0; i < 3; i++ {
		ts, _, _ := node(t, "SSH", phi, uint64(100+i))
		defer ts.Close()
		// Disjoint contiguous partition of the arrival sequence.
		lo, hi := i*len(items)/3, (i+1)*len(items)/3
		ingest(t, ts.URL, items[lo:hi])
		urls = append(urls, ts.URL)
	}

	c := coordinator(t, "", urls...)
	c.PullAll(context.Background())

	if got, want := c.N(), int64(len(items)); got != want {
		t.Fatalf("merged N = %d, want %d", got, want)
	}

	// Serve the merged state over HTTP and check the node-identical API.
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	var tr topkResponse
	getJSON(t, cs.URL+"/topk?phi=0.005", &tr)
	if tr.N != int64(len(items)) {
		t.Fatalf("/topk n = %d, want %d", tr.N, len(items))
	}
	if len(tr.Items) == 0 {
		t.Fatal("/topk reported nothing over a Zipf stream")
	}
	// Space-Saving never underestimates, merged or not.
	counts := map[core.Item]int64{}
	for _, it := range items {
		counts[core.Item(it)]++
	}
	for _, ic := range tr.Items {
		if truth := counts[core.Item(ic.Item)]; ic.Count < truth {
			t.Fatalf("merged estimate %d underestimates true %d (item %#x)", ic.Count, truth, ic.Item)
		}
	}

	var st clusterStats
	getJSON(t, cs.URL+"/stats", &st)
	if st.Algo != "SSH" {
		t.Fatalf("adopted algo %q, want SSH", st.Algo)
	}
	if st.Cluster.FreshNodes != 3 || st.Cluster.HaveNodes != 3 {
		t.Fatalf("fresh/have = %d/%d, want 3/3", st.Cluster.FreshNodes, st.Cluster.HaveNodes)
	}
	for _, ns := range st.Cluster.Nodes {
		if !ns.HasData || ns.Stale || ns.Error != "" {
			t.Fatalf("node %s unhealthy in stats: %+v", ns.URL, ns)
		}
	}

	// The coordinator's own /summary re-exports the merged state —
	// clusters stack. Pull it like a higher-tier coordinator would.
	resp, err := http.Get(cs.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	reexported, err := streamfreq.Decode(blob)
	if err != nil {
		t.Fatalf("decoding coordinator /summary: %v", err)
	}
	if reexported.N() != int64(len(items)) {
		t.Fatalf("re-exported N = %d, want %d", reexported.N(), len(items))
	}
}

// TestCoordinatorServesStaleOnNodeFailure: when a node dies, its last
// good summary keeps contributing to the merge, and /stats says so.
func TestCoordinatorServesStaleOnNodeFailure(t *testing.T) {
	tsA, _, _ := node(t, "SSH", 0.01, 1)
	defer tsA.Close()
	tsB, swB, _ := node(t, "SSH", 0.01, 2)
	defer tsB.Close()

	ingest(t, tsA.URL, zipf.Sequential(1000))
	ingest(t, tsB.URL, zipf.Sequential(500))

	c := coordinator(t, "SSH", tsA.URL, tsB.URL)
	c.PullAll(context.Background())
	if got := c.N(); got != 1500 {
		t.Fatalf("merged N = %d, want 1500", got)
	}

	// B dies; A keeps ingesting.
	swB.set(down())
	ingest(t, tsA.URL, zipf.Sequential(250))
	c.PullAll(context.Background())

	// Merged view: A fresh (1250) + B stale (500).
	if got := c.N(); got != 1750 {
		t.Fatalf("merged N with one stale node = %d, want 1750", got)
	}
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	var st clusterStats
	getJSON(t, cs.URL+"/stats", &st)
	if st.Cluster.FreshNodes != 1 || st.Cluster.HaveNodes != 2 {
		t.Fatalf("fresh/have = %d/%d, want 1/2", st.Cluster.FreshNodes, st.Cluster.HaveNodes)
	}
	var sawStale bool
	for _, ns := range st.Cluster.Nodes {
		if ns.URL == tsB.URL {
			sawStale = true
			if !ns.Stale || !ns.HasData || ns.Error == "" || ns.N != 500 {
				t.Fatalf("dead node stats: %+v, want stale has_data n=500 with error", ns)
			}
		}
	}
	if !sawStale {
		t.Fatal("/stats missing the dead node")
	}
}

// TestCoordinatorRejectsMixedAlgorithms: a node serving a different
// algorithm is excluded with a per-node error; the rest of the cluster
// keeps serving.
func TestCoordinatorRejectsMixedAlgorithms(t *testing.T) {
	tsA, _, _ := node(t, "SSH", 0.01, 1)
	defer tsA.Close()
	tsB, _, _ := node(t, "F", 0.01, 2)
	defer tsB.Close()
	ingest(t, tsA.URL, zipf.Sequential(800))
	ingest(t, tsB.URL, zipf.Sequential(600))

	c := coordinator(t, "SSH", tsA.URL, tsB.URL)
	c.PullAll(context.Background())

	if got := c.N(); got != 800 {
		t.Fatalf("merged N = %d, want 800 (the F node must contribute nothing)", got)
	}
	st := c.Stats()
	var mismatched bool
	for _, ns := range st.Nodes {
		if ns.URL == tsB.URL {
			if ns.HasData {
				t.Fatalf("mismatched node has data in the merge: %+v", ns)
			}
			if !strings.Contains(ns.LastErr, "algorithm mismatch") {
				t.Fatalf("mismatched node error = %q, want an algorithm mismatch", ns.LastErr)
			}
			mismatched = true
		}
	}
	if !mismatched {
		t.Fatal("stats missing the mismatched node")
	}
}

// TestCoordinatorAdoptionWithMixedNodes: with no -algo configured the
// coordinator adopts whichever algorithm it decodes first; the other
// node is then rejected — it never silently mixes estimators.
func TestCoordinatorAdoptionWithMixedNodes(t *testing.T) {
	tsA, _, _ := node(t, "SSH", 0.01, 1)
	defer tsA.Close()
	tsB, _, _ := node(t, "F", 0.01, 2)
	defer tsB.Close()
	ingest(t, tsA.URL, zipf.Sequential(300))
	ingest(t, tsB.URL, zipf.Sequential(200))

	c := coordinator(t, "", tsA.URL, tsB.URL)
	c.PullAll(context.Background())

	st := c.Stats()
	if st.Algo != "SSH" && st.Algo != "F" {
		t.Fatalf("adopted algo %q, want one of the nodes'", st.Algo)
	}
	var data, rejected int
	for _, ns := range st.Nodes {
		if ns.HasData {
			data++
		}
		if strings.Contains(ns.LastErr, "algorithm mismatch") {
			rejected++
		}
	}
	if data != 1 || rejected != 1 {
		t.Fatalf("with mixed algos: %d nodes merged, %d rejected; want exactly 1/1 (stats: %+v)",
			data, rejected, st.Nodes)
	}
}

// TestCoordinatorBeforeFirstPull: an empty coordinator answers like an
// empty node (/topk n=0) and has no /summary to export yet.
func TestCoordinatorBeforeFirstPull(t *testing.T) {
	c := coordinator(t, "SSH", "http://127.0.0.1:1") // nothing listens there
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	var tr topkResponse
	getJSON(t, cs.URL+"/topk", &tr)
	if tr.N != 0 || len(tr.Items) != 0 {
		t.Fatalf("/topk before any pull: %+v, want empty", tr)
	}
	resp, err := http.Get(cs.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/summary before any pull: %s, want 404", resp.Status)
	}

	// The unreachable pull records a failure without wedging anything.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.PullAll(ctx)
	st := c.Stats()
	if st.Nodes[0].Failures == 0 || st.Nodes[0].LastErr == "" {
		t.Fatalf("unreachable node stats: %+v, want a recorded failure", st.Nodes[0])
	}

	// /ingest names the contract.
	ir, err := http.Post(cs.URL+"/ingest", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if ir.StatusCode != http.StatusNotImplemented {
		t.Fatalf("POST /ingest on coordinator: %s, want 501", ir.Status)
	}
}

// TestNewValidation: configuration errors are loud and immediate.
func TestNewValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Options{MergeEncoded: streamfreq.MergeEncoded}); err == nil {
		t.Fatal("New with no nodes succeeded")
	}
	if _, err := cluster.New(cluster.Options{Nodes: []string{"http://a:1"}}); err == nil {
		t.Fatal("New without MergeEncoded succeeded")
	}
	_, err := cluster.New(cluster.Options{
		Nodes:        []string{"http://a:1", "http://a:1/"},
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate node URLs: err = %v, want duplicate error", err)
	}
}

// TestCoordinatorFreshnessSLO: with -max-stale set, a stalled node's
// contribution is dropped from the merge (and the merged N) once its
// data is older than the bound, surfaced in /stats — and rejoins the
// moment a pull succeeds again.
func TestCoordinatorFreshnessSLO(t *testing.T) {
	const maxStale = 80 * time.Millisecond
	tsA, _, _ := node(t, "SSH", 0.01, 1)
	defer tsA.Close()
	tsB, swB, srvB := node(t, "SSH", 0.01, 2)
	defer tsB.Close()
	ingest(t, tsA.URL, zipf.Sequential(1000))
	ingest(t, tsB.URL, zipf.Sequential(500))

	c, err := cluster.New(cluster.Options{
		Nodes:        []string{tsA.URL, tsB.URL},
		Algo:         "SSH",
		MaxStale:     maxStale,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.PullAll(context.Background())
	if got := c.N(); got != 1500 {
		t.Fatalf("merged N = %d, want 1500 (both nodes fresh)", got)
	}

	// B stalls. Until the bound passes, its last good state still
	// contributes; once past it, the contribution is dropped.
	swB.set(down())
	c.PullAll(context.Background())
	if got := c.N(); got != 1500 {
		t.Fatalf("merged N = %d immediately after the stall, want 1500 (still within -max-stale)", got)
	}
	ingest(t, tsA.URL, zipf.Sequential(250))
	// Poll, not sleep: the bound is wall-clock from B's last good pull,
	// so keep pulling until B ages out and only A's 1250 remain.
	testutil.Eventually(t, 5*time.Second, func() bool {
		c.PullAll(context.Background())
		return c.N() == 1250
	}, "stalled node never aged out of the merge (want N=1250 from A only, max-stale %v)", maxStale)

	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	var st clusterStats
	getJSON(t, cs.URL+"/stats", &st)
	if st.Cluster.DroppedNodes != 1 || st.Cluster.HaveNodes != 1 {
		t.Fatalf("dropped/have = %d/%d, want 1/1", st.Cluster.DroppedNodes, st.Cluster.HaveNodes)
	}
	var sawDropped bool
	for _, ns := range st.Cluster.Nodes {
		if ns.URL == tsB.URL {
			sawDropped = true
			if !ns.Dropped || !ns.HasData {
				t.Fatalf("stalled node stats: %+v, want dropped with retained data", ns)
			}
		}
	}
	if !sawDropped {
		t.Fatal("/stats missing the stalled node")
	}

	// B recovers: one good pull puts it back in the merge.
	swB.set(srvB.Handler())
	c.PullAll(context.Background())
	if got := c.N(); got != 1750 {
		t.Fatalf("merged N after recovery = %d, want 1750", got)
	}
}

// TestCoordinatorAllNodesDropped: when every contribution is past the
// bound the coordinator serves the empty stream — explicitly fresh-
// nothing rather than silently stale-everything.
func TestCoordinatorAllNodesDropped(t *testing.T) {
	ts, sw, _ := node(t, "SSH", 0.01, 1)
	defer ts.Close()
	ingest(t, ts.URL, zipf.Sequential(300))

	c, err := cluster.New(cluster.Options{
		Nodes:        []string{ts.URL},
		Algo:         "SSH",
		MaxStale:     50 * time.Millisecond,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.PullAll(context.Background())
	if got := c.N(); got != 300 {
		t.Fatalf("merged N = %d, want 300", got)
	}
	sw.set(down())
	// Poll, not sleep: pull until the only contribution ages past the
	// 50ms bound and the coordinator serves the empty stream.
	testutil.Eventually(t, 5*time.Second, func() bool {
		c.PullAll(context.Background())
		return c.N() == 0
	}, "last node never aged out (want merged N=0 with every contribution stale)")
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	resp, err := http.Get(cs.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/summary with everything dropped: %s, want 404", resp.Status)
	}
}

// windowedNode spins up one in-memory windowed freqd ("SSW").
func windowedNode(t *testing.T, size, blocks, k int, epoch uint64) (*httptest.Server, serve.Target) {
	t.Helper()
	win, err := streamfreq.NewWindowed(size, blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewConcurrent(win).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSW", Epoch: epoch})
	return httptest.NewServer(srv.Handler()), target
}

// TestCoordinatorMergesWindowedNodes: windowed summaries merge across
// nodes through the same pull/decode/Merge machinery as the flat ones —
// the merged view unions the nodes' *recent* windows, so each node's
// currently-hot item is reported and each node's expired history is not.
func TestCoordinatorMergesWindowedNodes(t *testing.T) {
	const size, blocks, k = 1000, 4, 100
	mkStream := func(oldHot, newHot core.Item, seed uint64) []core.Item {
		g, err := zipf.NewGenerator(1<<12, 0.8, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]core.Item, 0, 2800)
		for i := 0; i < 1500; i++ { // old phase, fully expired by the new one
			if i%3 == 0 {
				out = append(out, oldHot)
			} else {
				out = append(out, g.Next())
			}
		}
		for i := 0; i < 1300; i++ { // recent phase: newHot ≈ 25% of traffic
			if i%4 == 0 {
				out = append(out, newHot)
			} else {
				out = append(out, g.Next())
			}
		}
		return out
	}

	tsA, _ := windowedNode(t, size, blocks, k, 11)
	defer tsA.Close()
	tsB, _ := windowedNode(t, size, blocks, k, 12)
	defer tsB.Close()
	ingest(t, tsA.URL, mkStream(1001, 2001, 31))
	ingest(t, tsB.URL, mkStream(1002, 2002, 32))

	c := coordinator(t, "", tsA.URL, tsB.URL)
	c.PullAll(context.Background())
	st := c.Stats()
	if st.Algo != "SSW" {
		t.Fatalf("adopted algo %q, want SSW", st.Algo)
	}
	if c.N() != 2*2800 {
		t.Fatalf("merged N = %d, want %d", c.N(), 2*2800)
	}

	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	var tr topkResponse
	getJSON(t, cs.URL+"/topk?phi=0.05", &tr)
	if tr.N != 2*size {
		t.Fatalf("/topk windowed denominator = %d, want the union span %d", tr.N, 2*size)
	}
	reported := map[uint64]bool{}
	for _, ic := range tr.Items {
		reported[ic.Item] = true
	}
	for _, hot := range []uint64{2001, 2002} {
		if !reported[hot] {
			t.Fatalf("recent hot item %d missing from merged windowed /topk (got %v)", hot, tr.Items)
		}
	}
	for _, old := range []uint64{1001, 1002} {
		if reported[old] {
			t.Fatalf("expired item %d reported by the merged window at φ·2W", old)
		}
	}

	// Geometry mismatches are per-merge failures, like parameter
	// mismatches between flat nodes.
	tsC, _ := windowedNode(t, 2*size, blocks, k, 13)
	defer tsC.Close()
	ingest(t, tsC.URL, mkStream(1003, 2003, 33))
	c2 := coordinator(t, "", tsA.URL, tsC.URL)
	c2.PullAll(context.Background())
	if st := c2.Stats(); st.MergeErr == "" {
		t.Fatalf("geometry-mismatched windowed nodes merged without error (stats %+v)", st)
	}
}
