package cluster_test

// One trace ID through the whole plane: a client posts to the router
// with an X-Freq-Trace header, the router's request log carries it,
// the forward to the shard replica propagates it, and the replica's
// slow-query log line carries the same ID with per-stage timings. The
// pull path gets the same treatment: a coordinator round seeded with a
// trace shows up in the node's /v1/summary request log. This is the
// "grep one ID across every daemon's logs" contract, asserted on
// loopback HTTP with JSON logs captured in-process.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

// logBuffer collects a daemon's JSON log output safely across handler
// goroutines.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// lines decodes every JSON log line written so far.
func (b *logBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	raw := b.buf.String()
	b.mu.Unlock()
	var out []map[string]any
	for _, ln := range strings.Split(raw, "\n") {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

// findLine returns the first log line matching every key=value pair.
func findLine(lines []map[string]any, want map[string]any) map[string]any {
	for _, ln := range lines {
		ok := true
		for k, v := range want {
			if ln[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return ln
		}
	}
	return nil
}

func jsonObs(t *testing.T, service string, buf *logBuffer, slow time.Duration) *obs.Obs {
	t.Helper()
	o, err := obs.New(obs.Options{
		Service:   service,
		LogFormat: "json",
		LogWriter: buf,
		LogLevel:  slog.LevelDebug,
		SlowQuery: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestTraceEndToEnd(t *testing.T) {
	g, err := zipf.NewGenerator(1<<12, 1.1, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(5_000)

	// One shard, one replica, every daemon logging JSON to its own
	// buffer. The replica's slow-query threshold is 1ns so every request
	// is "slow" and logs its per-stage timings.
	var nodeLog, routerLog, coordLog logBuffer
	nodeObs := jsonObs(t, "freqd", &nodeLog, time.Nanosecond)
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Epoch: 3, Obs: nodeObs})
	ns := httptest.NewServer(srv.Handler())
	defer ns.Close()

	rt, err := router.New(router.Options{
		Shards: []router.ShardConfig{{ID: "shard-0", Replicas: []string{ns.URL}}},
		Obs:    jsonObs(t, "freqrouter", &routerLog, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	// The client names the trace; the router must echo it on the
	// response and stamp it on the forward.
	const tid = "00f0e1d2c3b4a596"
	req, err := http.NewRequest(http.MethodPost, rs.URL+"/ingest",
		bytes.NewReader(stream.AppendRaw(nil, items)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(obs.TraceHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != tid {
		t.Fatalf("response %s = %q, want the caller's %q", obs.TraceHeader, got, tid)
	}

	// The router's request log carries the caller's trace ID...
	rline := findLine(routerLog.lines(t), map[string]any{
		"msg": "request", "route": "/v1/ingest", "trace": tid,
	})
	if rline == nil {
		t.Fatalf("router log has no /v1/ingest line with trace %s:\n%v", tid, routerLog.lines(t))
	}

	// ...and so does the replica's — the forward propagated the header,
	// and the 1ns slow-query threshold upgraded the line to a slow-
	// request warning with the apply stage timed.
	nline := findLine(nodeLog.lines(t), map[string]any{
		"msg": "slow request", "route": "/v1/ingest", "trace": tid,
	})
	if nline == nil {
		t.Fatalf("node log has no slow /v1/ingest line with trace %s:\n%v", tid, nodeLog.lines(t))
	}
	if _, ok := nline["stage_apply"]; !ok {
		t.Errorf("slow-request line lacks the stage_apply timing: %v", nline)
	}
	if nline["level"] != "WARN" {
		t.Errorf("slow-request line level = %v, want WARN", nline["level"])
	}

	// Pull-path propagation: a coordinator round seeded with a trace
	// shows the same ID in the node's /v1/summary request log.
	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{ns.URL},
		MergeEncoded: streamfreq.MergeEncoded,
		Obs:          jsonObs(t, "freqmerge", &coordLog, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	const pullTID = "feedc0de00112233"
	coord.PullAll(obs.WithTrace(context.Background(), pullTID))
	if findLine(nodeLog.lines(t), map[string]any{
		"msg": "slow request", "route": "/v1/summary", "trace": pullTID,
	}) == nil {
		t.Fatalf("node log has no /v1/summary line with the coordinator's trace %s:\n%v",
			pullTID, nodeLog.lines(t))
	}
}
